/**
 * @file
 * Unit tests for the dist module: rank topology and EP-group algebra, model
 * parameter accounting against the paper's figures, inventory consistency,
 * and the Table 1 / Table 2 presets.
 */

#include <gtest/gtest.h>

#include <set>

#include "dist/inventory.h"
#include "dist/model_spec.h"
#include "dist/presets.h"
#include "dist/topology.h"

namespace moc {
namespace {

// ---------- Topology ----------

TEST(Topology, EpGroupAlgebra) {
    RankTopology topo({.dp = 16, .ep = 8, .tp = 1, .pp = 1}, 8);
    EXPECT_EQ(topo.NumEpGroups(), 2U);
    EXPECT_EQ(topo.EpGroup(0), 0U);
    EXPECT_EQ(topo.EpGroup(7), 0U);
    EXPECT_EQ(topo.EpGroup(8), 1U);
    EXPECT_EQ(topo.EpRank(9), 1U);
    EXPECT_EQ(topo.RankOf(1, 3), 11U);
    EXPECT_EQ(topo.EpGroup(topo.RankOf(1, 3)), 1U);
    EXPECT_EQ(topo.EpRank(topo.RankOf(1, 3)), 3U);
}

TEST(Topology, RejectsEpNotDividingDp) {
    EXPECT_THROW(RankTopology({.dp = 10, .ep = 4, .tp = 1, .pp = 1}, 8),
                 std::invalid_argument);
}

TEST(Topology, NodeAssignmentRespectsGpusPerNode) {
    RankTopology topo({.dp = 16, .ep = 8, .tp = 1, .pp = 1}, 8);
    EXPECT_EQ(topo.num_nodes(), 2U);
    EXPECT_EQ(topo.NodeOf(0), 0U);
    EXPECT_EQ(topo.NodeOf(7), 0U);
    EXPECT_EQ(topo.NodeOf(8), 1U);
    EXPECT_EQ(topo.RanksOn(1).size(), 8U);
}

TEST(Topology, NodeAssignmentWithTp) {
    // dp=4 with tp=2: each DP rank spans 2 devices -> 8 devices, 1 node of 8.
    RankTopology topo({.dp = 4, .ep = 2, .tp = 2, .pp = 1}, 8);
    EXPECT_EQ(topo.num_nodes(), 1U);
    EXPECT_EQ(topo.NodeOf(3), 0U);
}

TEST(Topology, ExpertOwnershipContiguous) {
    RankTopology topo({.dp = 8, .ep = 4, .tp = 1, .pp = 1}, 8);
    // 8 experts over 4 EP ranks: 2 per rank, contiguous blocks.
    EXPECT_EQ(topo.ExpertsPerRank(8), 2U);
    EXPECT_EQ(topo.OwnerEpRank(0, 8), 0U);
    EXPECT_EQ(topo.OwnerEpRank(1, 8), 0U);
    EXPECT_EQ(topo.OwnerEpRank(2, 8), 1U);
    EXPECT_EQ(topo.OwnerEpRank(7, 8), 3U);
    const auto owned = topo.ExpertsOf(1, 8);
    EXPECT_EQ(owned, (std::vector<ExpertId>{2, 3}));
}

TEST(Topology, ExpertOwnershipRejectsNonDividing) {
    RankTopology topo({.dp = 8, .ep = 4, .tp = 1, .pp = 1}, 8);
    EXPECT_THROW(topo.OwnerEpRank(0, 6), std::invalid_argument);
}

// ---------- ModelSpec ----------

TEST(ModelSpec, MoeLayerPlacementEveryOther) {
    ModelSpec spec = Gpt125M8E();
    EXPECT_EQ(spec.NumMoeLayers(), 6U);  // layers 1,3,5,7,9,11
    EXPECT_FALSE(spec.IsMoeLayer(0));
    EXPECT_TRUE(spec.IsMoeLayer(1));
    EXPECT_FALSE(spec.IsMoeLayer(2));
    EXPECT_TRUE(spec.IsMoeLayer(11));
}

TEST(ModelSpec, DenseModelHasNoMoeLayers) {
    ModelSpec spec = Gpt125M8E();
    spec.num_experts = 0;
    EXPECT_EQ(spec.NumMoeLayers(), 0U);
    EXPECT_EQ(spec.ExpertParams(), 0U);
}

TEST(ModelSpec, Gpt125MParameterCountMatchesPaper) {
    // Table 1 reports 323M parameters for GPT-125M-8E.
    const ModelSpec spec = Gpt125M8E();
    const double total = static_cast<double>(spec.TotalParams());
    EXPECT_GT(total, 280e6);
    EXPECT_LT(total, 380e6);
}

TEST(ModelSpec, Gpt350MParameterCountMatchesPaper) {
    // Table 1 reports 1.7G parameters for GPT-350M-16E.
    const ModelSpec spec = Gpt350M16E();
    const double total = static_cast<double>(spec.TotalParams());
    EXPECT_GT(total, 1.5e9);
    EXPECT_LT(total, 2.1e9);
}

TEST(ModelSpec, ExpertShareMatchesFigure2) {
    // Fig. 2: expert states are ~86% of the checkpoint for GPT-350M-16E.
    const ModelSpec spec = Gpt350M16E();
    const double frac = static_cast<double>(spec.ExpertParams()) /
                        static_cast<double>(spec.TotalParams());
    EXPECT_GT(frac, 0.80);
    EXPECT_LT(frac, 0.90);
}

TEST(ModelSpec, CheckpointSizeFormulas) {
    const ModelSpec spec = Gpt350M16E();
    const StateBytes bytes;  // B_w = 2, B_o = 12
    const Bytes full = FullCheckpointSize(spec, bytes);
    EXPECT_EQ(full, static_cast<Bytes>(spec.TotalParams()) * 14);
    // Eq. 6: monotone in k, equals full at k = N.
    Bytes prev = 0;
    for (std::size_t k = 1; k <= spec.num_experts; ++k) {
        const Bytes c = PecCheckpointSize(spec, bytes, k);
        EXPECT_GT(c, prev);
        prev = c;
    }
    EXPECT_EQ(prev, full);
}

TEST(ModelSpec, PecSizeRejectsBadK) {
    const ModelSpec spec = Gpt350M16E();
    const StateBytes bytes;
    EXPECT_THROW(PecCheckpointSize(spec, bytes, 0), std::invalid_argument);
    EXPECT_THROW(PecCheckpointSize(spec, bytes, 17), std::invalid_argument);
}

TEST(ModelSpec, LlamaSimSizesOrdered) {
    const auto small = LlamaMoeSim("small", 8);
    const auto medium = LlamaMoeSim("medium", 8);
    const auto large = LlamaMoeSim("large", 8);
    EXPECT_LT(small.TotalParams(), medium.TotalParams());
    EXPECT_LT(medium.TotalParams(), large.TotalParams());
}

// ---------- Inventory ----------

TEST(Inventory, TotalsAgreeWithSpec) {
    const ModelSpec spec = Gpt125M8E();
    const ModelStateInventory inv(spec, StateBytes{});
    EXPECT_EQ(inv.NonExpertParams(), spec.NonExpertParams());
    EXPECT_EQ(inv.ExpertParams(), spec.ExpertParams());
    EXPECT_EQ(inv.TotalStateBytes(), FullCheckpointSize(spec, StateBytes{}));
}

TEST(Inventory, ExpertGridComplete) {
    const ModelSpec spec = Gpt125M8E();
    const ModelStateInventory inv(spec, StateBytes{});
    EXPECT_EQ(inv.ExpertModules().size(),
              spec.NumMoeLayers() * spec.num_experts);
    for (std::size_t m = 0; m < spec.NumMoeLayers(); ++m) {
        for (ExpertId e = 0; e < spec.num_experts; ++e) {
            const auto& module = inv.ExpertModule(m, e);
            EXPECT_EQ(module.kind, ModuleKind::kExpert);
            EXPECT_EQ(module.moe_index, m);
            EXPECT_EQ(module.expert, e);
            EXPECT_EQ(module.params, spec.FfnParams());
        }
    }
}

TEST(Inventory, KeysAreUnique) {
    const ModelStateInventory inv(Gpt125M8E(), StateBytes{});
    std::set<std::string> keys;
    for (const auto& m : inv.modules()) {
        EXPECT_TRUE(keys.insert(m.key).second) << "duplicate key " << m.key;
    }
}

TEST(Inventory, ByteAccounting) {
    const ModelStateInventory inv(Gpt125M8E(), StateBytes{.weight = 2, .optim = 12});
    const auto& m = inv.modules().front();
    EXPECT_EQ(inv.WeightBytes(m), m.params * 2);
    EXPECT_EQ(inv.OptimBytes(m), m.params * 12);
    EXPECT_EQ(inv.StateBytesOf(m), m.params * 14);
}

// ---------- Presets ----------

TEST(Presets, Table2Cases) {
    const auto c1 = Case1();
    EXPECT_EQ(c1.parallel.dp, 8U);
    EXPECT_EQ(c1.parallel.ep, 8U);
    EXPECT_EQ(c1.GpusPerNode(), 8U);
    EXPECT_EQ(c1.Topology().NumEpGroups(), 1U);

    const auto c2 = Case2();
    EXPECT_EQ(c2.parallel.dp, 16U);
    EXPECT_EQ(c2.parallel.ep, 16U);
    EXPECT_EQ(c2.Topology().NumEpGroups(), 1U);

    const auto c3 = Case3();
    EXPECT_EQ(c3.parallel.dp, 16U);
    EXPECT_EQ(c3.parallel.ep, 8U);
    EXPECT_EQ(c3.Topology().NumEpGroups(), 2U);

    // Experts per GPU for the 16-expert model (Table 2 column).
    EXPECT_EQ(c1.Topology().ExpertsPerRank(16), 2U);
    EXPECT_EQ(c2.Topology().ExpertsPerRank(16), 1U);
    EXPECT_EQ(c3.Topology().ExpertsPerRank(16), 2U);
}

TEST(Presets, LlamaRejectsUnknownSize) {
    EXPECT_EXIT(LlamaMoeSim("xl", 8), ::testing::ExitedWithCode(1), "");
}

}  // namespace
}  // namespace moc
