/**
 * @file
 * Unit tests for the ResilientStore wrapper: transient-error retries,
 * write verification, typed timeout on budget exhaustion, CRC-checked
 * reads, and read-repair from a replica source.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>

#include "storage/faulty_store.h"
#include "storage/memory_store.h"
#include "storage/resilient_store.h"
#include "storage/store_error.h"
#include "util/crc32.h"

namespace moc {
namespace {

Blob
Pattern(std::size_t size) {
    Blob blob(size);
    for (std::size_t i = 0; i < size; ++i) {
        blob[i] = static_cast<std::uint8_t>(i * 31 + 5);
    }
    return blob;
}

std::uint32_t
CrcOf(const Blob& blob) {
    return Crc32c(blob.data(), blob.size());
}

/** Fast retries so fault-heavy tests stay quick. */
RetryPolicy
FastPolicy(std::size_t attempts = 6) {
    RetryPolicy policy;
    policy.max_attempts = attempts;
    policy.initial_backoff_s = 1e-6;
    policy.max_backoff_s = 1e-5;
    return policy;
}

TEST(ResilientStore, PassThroughOnHealthyBackend) {
    MemoryStore base;
    ResilientStore store(base, FastPolicy());
    store.Put("k", Pattern(64));
    EXPECT_EQ(*store.Get("k"), Pattern(64));
    EXPECT_EQ(*store.GetChecked("k", CrcOf(Pattern(64))), Pattern(64));
    EXPECT_FALSE(store.Get("missing").has_value());
    EXPECT_FALSE(store.GetChecked("missing", 123).has_value());
}

TEST(ResilientStore, PutRetriesTransientErrors) {
    MemoryStore base;
    FaultyStore flaky(base, /*seed=*/11);
    StorageFaultProfile profile;
    profile.put_transient_error = 0.5;
    flaky.Arm(profile);
    ResilientStore store(flaky, FastPolicy(/*attempts=*/16));
    for (int i = 0; i < 32; ++i) {
        store.Put("k" + std::to_string(i), Pattern(48));
    }
    flaky.Disarm();
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(*base.Get("k" + std::to_string(i)), Pattern(48));
    }
    EXPECT_GT(flaky.injected().transient_errors, 0u);
}

TEST(ResilientStore, ExhaustedRetriesAreTypedTimeout) {
    MemoryStore base;
    FaultyStore flaky(base, 12);
    StorageFaultProfile profile;
    profile.put_transient_error = 1.0;  // never succeeds
    flaky.Arm(profile);
    ResilientStore store(flaky, FastPolicy(/*attempts=*/3));
    try {
        store.Put("k", Pattern(16));
        FAIL() << "expected timeout after exhausted retries";
    } catch (const StoreError& e) {
        EXPECT_EQ(e.kind(), StoreErrorKind::kTimeout);
        EXPECT_EQ(e.key(), "k");
    }
}

TEST(ResilientStore, WriteVerificationDefeatsSilentWriteFaults) {
    // Torn, flipped, and lost writes report success to the writer; the
    // CRC read-back turns them into retries that eventually land clean.
    MemoryStore base;
    FaultyStore flaky(base, 13);
    StorageFaultProfile profile;
    profile.torn_write = 0.4;
    profile.bit_flip = 0.2;
    profile.lost_write = 0.2;
    flaky.Arm(profile);
    ResilientStore store(flaky, FastPolicy(/*attempts=*/32));
    for (int i = 0; i < 24; ++i) {
        store.Put("k" + std::to_string(i), Pattern(96));
    }
    flaky.Disarm();
    for (int i = 0; i < 24; ++i) {
        EXPECT_EQ(*base.Get("k" + std::to_string(i)), Pattern(96))
            << "silent write fault survived verification on k" << i;
    }
    EXPECT_GT(flaky.injected().Total(), 0u);
}

TEST(ResilientStore, GetCheckedRejectsDamageWithoutRepairSource) {
    MemoryStore base;
    ResilientStore store(base, FastPolicy());
    Blob damaged = Pattern(64);
    damaged[10] ^= 0x40;
    base.Put("k", damaged);
    try {
        store.GetChecked("k", CrcOf(Pattern(64)));
        FAIL() << "expected corrupt error";
    } catch (const StoreError& e) {
        EXPECT_EQ(e.kind(), StoreErrorKind::kCorrupt);
        EXPECT_EQ(e.key(), "k");
    }
}

TEST(ResilientStore, GetCheckedReadRepairsFromReplica) {
    MemoryStore base;
    const Blob good = Pattern(80);
    ResilientStore store(base, FastPolicy(),
                         [&](const std::string& key) -> std::optional<Blob> {
                             return key == "k" ? std::optional<Blob>(good)
                                               : std::nullopt;
                         });
    Blob damaged = good;
    damaged[3] ^= 0x01;
    base.Put("k", damaged);
    EXPECT_EQ(*store.GetChecked("k", CrcOf(good)), good);
    // The repair wrote the intact replica back over the damaged copy.
    EXPECT_EQ(*base.Get("k"), good);
}

TEST(ResilientStore, GetCheckedDistrustsDamagedReplica) {
    // A replica that itself fails the CRC must not be trusted or written.
    MemoryStore base;
    const Blob good = Pattern(40);
    Blob bad_replica = good;
    bad_replica[0] ^= 0xFF;
    ResilientStore store(base, FastPolicy(),
                         [&](const std::string&) -> std::optional<Blob> {
                             return bad_replica;
                         });
    Blob damaged = good;
    damaged[1] ^= 0x10;
    base.Put("k", damaged);
    EXPECT_THROW(store.GetChecked("k", CrcOf(good)), StoreError);
    EXPECT_EQ(*base.Get("k"), damaged);  // no bogus write-back
}

TEST(ResilientStore, DeadlineBoundsRetrying) {
    MemoryStore base;
    FaultyStore flaky(base, 14);
    StorageFaultProfile profile;
    profile.get_transient_error = 1.0;
    flaky.Arm(profile);
    RetryPolicy policy = FastPolicy(/*attempts=*/1000000);
    policy.op_deadline_s = 0.02;
    ResilientStore store(flaky, policy);
    try {
        store.Get("k");
        FAIL() << "expected deadline timeout";
    } catch (const StoreError& e) {
        EXPECT_EQ(e.kind(), StoreErrorKind::kTimeout);
    }
}

}  // namespace
}  // namespace moc
