/**
 * @file
 * Tests for cold-start restore, store copying, and the gantt renderer.
 */

#include <gtest/gtest.h>

#include <filesystem>

#include "core/cold_start.h"
#include "dist/presets.h"
#include "nn/model.h"
#include "sim/gantt.h"
#include "sim/perf_model.h"
#include "storage/file_store.h"
#include "storage/memory_store.h"

namespace moc {
namespace {

LmConfig
TinyLm() {
    LmConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.hidden = 16;
    cfg.num_heads = 2;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 4;
    cfg.seed = 5;
    return cfg;
}

TEST(ColdStart, RestoresWeightsAndOptimizerExactly) {
    MoeTransformerLm original(TinyLm());
    // Give the model a distinctive state.
    for (auto* p : original.AllParameters()) {
        p->value()[0] = 42.0F;
        p->adam_m()[0] = 7.0F;
        p->adam_v()[0] = 9.0F;
    }
    RankTopology topo({.dp = 4, .ep = 4, .tp = 1, .pp = 1}, 2);
    MocSystemConfig cfg;
    cfg.pec.k_snapshot = 4;
    cfg.pec.k_persist = 4;
    cfg.i_ckpt = 4;
    ExtraState extra{0, 0, original.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, original, topo, TinyLm().ToModelSpec(), extra);
    extra.iteration = 8;
    extra.adam_step = 8;
    system.Checkpoint(8, extra);

    MoeTransformerLm fresh(TinyLm());
    fresh.AllParameters()[0]->value()[0] = -1.0F;  // differs before restore
    const auto report = ColdStartFromStore(fresh, system.storage());
    EXPECT_EQ(report.extra.iteration, 8U);
    EXPECT_EQ(report.extra.adam_step, 8U);
    EXPECT_TRUE(report.missing.empty());
    EXPECT_GT(report.bytes_read, 0U);
    const auto orig_params = original.AllParameters();
    const auto fresh_params = fresh.AllParameters();
    ASSERT_EQ(orig_params.size(), fresh_params.size());
    for (std::size_t i = 0; i < orig_params.size(); ++i) {
        EXPECT_TRUE(fresh_params[i]->value().AllClose(orig_params[i]->value(), 0.0F));
        EXPECT_TRUE(fresh_params[i]->adam_m().AllClose(orig_params[i]->adam_m(), 0.0F));
        EXPECT_TRUE(fresh_params[i]->adam_v().AllClose(orig_params[i]->adam_v(), 0.0F));
    }
}

TEST(ColdStart, RejectsNonCheckpointStore) {
    MemoryStore store;
    store.Put("random", Blob(10, 1));
    MoeTransformerLm model(TinyLm());
    EXPECT_THROW(ColdStartFromStore(model, store), std::invalid_argument);
}

TEST(ColdStart, ReportsMissingUnits) {
    MoeTransformerLm original(TinyLm());
    RankTopology topo({.dp = 4, .ep = 4, .tp = 1, .pp = 1}, 2);
    MocSystemConfig cfg;
    cfg.pec.k_snapshot = 4;
    cfg.pec.k_persist = 4;
    cfg.i_ckpt = 4;
    ExtraState extra{0, 0, original.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, original, topo, TinyLm().ToModelSpec(), extra);
    auto& storage = system.storage();
    storage.Erase("embedding/w");
    MoeTransformerLm fresh(TinyLm());
    const auto report = ColdStartFromStore(fresh, storage);
    ASSERT_EQ(report.missing.size(), 1U);
    EXPECT_EQ(report.missing[0], "embedding/w");
}

TEST(CopyStore, CopiesEverythingAcrossBackends) {
    MemoryStore src;
    src.Put("a/b", Blob(10, 1));
    src.Put("c", Blob(20, 2));
    const auto dir = std::filesystem::temp_directory_path() / "moc_copy_test";
    std::filesystem::remove_all(dir);
    {
        FileStore dst(dir);
        const Bytes copied = CopyStore(src, dst);
        EXPECT_EQ(copied, 30U);
        EXPECT_EQ(dst.Count(), 2U);
        EXPECT_EQ(dst.Get("a/b")->front(), 1);
        EXPECT_EQ(dst.Get("c")->size(), 20U);
    }
    std::filesystem::remove_all(dir);
}

TEST(CopyStore, ColdStartThroughFileStoreRoundTrip) {
    MoeTransformerLm original(TinyLm());
    RankTopology topo({.dp = 4, .ep = 4, .tp = 1, .pp = 1}, 2);
    MocSystemConfig cfg;
    cfg.pec.k_snapshot = 4;
    cfg.pec.k_persist = 4;
    cfg.i_ckpt = 4;
    ExtraState extra{0, 0, original.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, original, topo, TinyLm().ToModelSpec(), extra);

    const auto dir = std::filesystem::temp_directory_path() / "moc_cold_file";
    std::filesystem::remove_all(dir);
    {
        FileStore disk(dir);
        CopyStore(system.storage(), disk);
        MoeTransformerLm fresh(TinyLm());
        const auto report = ColdStartFromStore(fresh, disk);
        EXPECT_TRUE(report.missing.empty());
        EXPECT_TRUE(fresh.AllParameters()[0]->value().AllClose(
            original.AllParameters()[0]->value(), 0.0F));
    }
    std::filesystem::remove_all(dir);
}

// ---------- Gantt rendering ----------

TEST(Gantt, BlockingShowsAllFourPhases) {
    TrainingSetup setup;
    setup.model = Gpt350M16E();
    setup.parallel = Case2().parallel;
    setup.gpus_per_node = Case2().GpusPerNode();
    setup.gpu = A800();
    const PerfModel model(setup);
    const auto timing = SimulateMethod(model, CkptMethod::kBaseline, 4);
    const std::string art = RenderIterationGantt(timing, 40);
    EXPECT_NE(art.find("Baseline"), std::string::npos);
    EXPECT_NE(art.find("F&B"), std::string::npos);
    EXPECT_NE(art.find("Snapshot"), std::string::npos);
    EXPECT_NE(art.find("(blocking)"), std::string::npos);
}

TEST(Gantt, AsyncAnnotatesOverlap) {
    TrainingSetup setup;
    setup.model = Gpt350M16E();
    setup.parallel = Case2().parallel;
    setup.gpus_per_node = Case2().GpusPerNode();
    setup.gpu = A800();
    setup.batch_per_gpu = 256 / setup.parallel.dp;
    const PerfModel model(setup);
    const auto timing = SimulateMethod(model, CkptMethod::kMocAsync, 4);
    const std::string art = RenderIterationGantt(timing, 40);
    EXPECT_NE(art.find("fully overlapped"), std::string::npos);
    EXPECT_NE(art.find("(background)"), std::string::npos);
}

TEST(Gantt, RejectsTinyWidth) {
    MethodTiming timing;
    timing.method = "Baseline";
    EXPECT_THROW(RenderIterationGantt(timing, 5), std::invalid_argument);
}

TEST(Gantt, BarsStayWithinWidth) {
    MethodTiming timing;
    timing.method = "Base-Async";
    timing.t_fb = 1.0;
    timing.t_update = 0.1;
    timing.t_snapshot = 2.0;
    timing.t_persist = 4.0;
    timing.iteration = 2.1;
    timing.o_save = 1.0;
    const std::string art = RenderIterationGantt(timing, 30);
    for (const auto& line : {std::string("F&B"), std::string("Persist")}) {
        const auto pos = art.find(line);
        ASSERT_NE(pos, std::string::npos);
    }
    // Every bar row is bounded by the pipe characters at width 30.
    std::istringstream is(art);
    std::string line;
    while (std::getline(is, line)) {
        const auto first = line.find('|');
        if (first == std::string::npos) {
            continue;
        }
        const auto second = line.find('|', first + 1);
        ASSERT_NE(second, std::string::npos);
        EXPECT_EQ(second - first - 1, 30U);
    }
}

}  // namespace
}  // namespace moc
