/**
 * @file
 * The membership state machine (ckpt/membership.h): epoch-gated rejoin
 * (zombie join requests carrying a stale epoch can never re-enter), the
 * join wire codecs, the persisted membership document round-trip, and the
 * ClusterAggregator resurrection path a rejoin drives through the health
 * view (exactly one `rejoin` journal event per death/rejoin cycle).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "ckpt/membership.h"
#include "obs/cluster_view.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace moc {
namespace {

using ckpt::MemberState;
using ckpt::MembershipTable;

std::size_t
CountJournal(obs::EventKind kind) {
    const auto events = obs::EventJournal::Instance().Collect();
    return static_cast<std::size_t>(
        std::count_if(events.begin(), events.end(),
                      [kind](const obs::JournalEvent& e) {
                          return e.kind == kind;
                      }));
}

class MembershipTest : public ::testing::Test {
  protected:
    void SetUp() override { obs::EventJournal::Instance().Clear(); }
};

// ---------- state machine ----------

TEST_F(MembershipTest, LifecycleTransitionsAndVersionBumps) {
    MembershipTable table;
    table.AdmitInitial(0, /*epoch=*/1);
    EXPECT_EQ(table.Info(0).state, MemberState::kJoined);
    EXPECT_EQ(table.Info(0).incarnation, 1U);

    const std::uint64_t v0 = table.version();
    table.MarkLive(0);
    EXPECT_EQ(table.Info(0).state, MemberState::kLive);
    EXPECT_GT(table.version(), v0);

    table.MarkSuspect(0);
    EXPECT_EQ(table.Info(0).state, MemberState::kSuspect);
    // A suspect sits out new barriers until it proves itself live again.
    EXPECT_TRUE(table.LiveRanks().empty());

    table.MarkLive(0);
    EXPECT_EQ(table.Info(0).state, MemberState::kLive);
    EXPECT_EQ(table.LiveRanks(), std::vector<std::size_t>{0});

    table.OnPeerDeath(0, "heartbeat_timeout");
    EXPECT_EQ(table.Info(0).state, MemberState::kDead);
    EXPECT_EQ(table.Info(0).death_cause, "heartbeat_timeout");
    EXPECT_TRUE(table.LiveRanks().empty());

    // Every transition journaled exactly once.
    EXPECT_EQ(CountJournal(obs::EventKind::kMembershipChange), 5U);
}

TEST_F(MembershipTest, DeadRankIgnoresMarkLiveAndRepeatDeaths) {
    MembershipTable table;
    table.AdmitInitial(1, 1);
    table.OnPeerDeath(1, "eof");
    const std::uint64_t v = table.version();
    table.MarkLive(1);  // no resurrection without a join handshake
    EXPECT_EQ(table.Info(1).state, MemberState::kDead);
    table.OnPeerDeath(1, "eof");  // idempotent per death
    EXPECT_EQ(table.version(), v);
}

TEST_F(MembershipTest, FreshEpochRejoinsDeadRank) {
    MembershipTable table;
    table.AdmitInitial(2, /*epoch=*/3);
    table.MarkLive(2);
    table.OnPeerDeath(2, "eof");

    const ckpt::JoinAccept verdict = table.OnJoinRequest(2, /*epoch=*/4,
                                                         /*incarnation=*/1);
    EXPECT_TRUE(verdict.accepted);
    EXPECT_EQ(verdict.membership_version, table.version());
    const ckpt::MemberInfo info = table.Info(2);
    EXPECT_EQ(info.state, MemberState::kRejoined);
    EXPECT_EQ(info.epoch, 4U);
    EXPECT_EQ(info.incarnation, 2U);  // max(table + 1, claimed + 1)
    EXPECT_TRUE(info.death_cause.empty());
    EXPECT_EQ(table.LiveRanks(), std::vector<std::size_t>{2});
    EXPECT_EQ(CountJournal(obs::EventKind::kRejoin), 1U);
}

TEST_F(MembershipTest, StaleEpochZombieIsRejected) {
    MembershipTable table;
    table.AdmitInitial(3, /*epoch=*/7);
    table.OnPeerDeath(3, "eof");

    // The old incarnation (or a partitioned twin) asks to come back under
    // the epoch it was admitted with — or anything older. Never.
    for (const std::uint32_t stale : {7U, 6U, 0U}) {
        const ckpt::JoinAccept verdict = table.OnJoinRequest(3, stale, 2);
        EXPECT_FALSE(verdict.accepted) << "epoch " << stale;
        EXPECT_FALSE(verdict.reason.empty());
        EXPECT_EQ(table.Info(3).state, MemberState::kDead);
    }
    EXPECT_EQ(CountJournal(obs::EventKind::kRejoin), 0U);

    // The genuinely fresh incarnation still gets in afterwards.
    EXPECT_TRUE(table.OnJoinRequest(3, 8, 2).accepted);
}

TEST_F(MembershipTest, UnknownRankJoinsViaRequest) {
    MembershipTable table;
    table.AdmitInitial(0, 1);
    const ckpt::JoinAccept verdict = table.OnJoinRequest(9, 2, 1);
    EXPECT_TRUE(verdict.accepted);
    EXPECT_EQ(table.size(), 2U);
    const auto live = table.LiveRanks();
    EXPECT_NE(std::find(live.begin(), live.end(), 9U), live.end());
}

// ---------- wire codecs ----------

TEST_F(MembershipTest, JoinCodecsRoundTrip) {
    ckpt::JoinRequest request;
    request.rank = 12;
    request.incarnation = 3;
    const ckpt::JoinRequest req2 =
        ckpt::DecodeJoinRequest(ckpt::EncodeJoinRequest(request));
    EXPECT_EQ(req2.rank, 12U);
    EXPECT_EQ(req2.incarnation, 3U);

    ckpt::JoinAccept accept;
    accept.accepted = true;
    accept.membership_version = 41;
    accept.placement.version = 7;
    accept.placement.assignments[0] = {1, 2};
    accept.placement.assignments[5] = {0};
    const ckpt::JoinAccept acc2 =
        ckpt::DecodeJoinAccept(ckpt::EncodeJoinAccept(accept));
    EXPECT_TRUE(acc2.accepted);
    EXPECT_EQ(acc2.membership_version, 41U);
    EXPECT_EQ(acc2.placement.version, 7U);
    EXPECT_EQ(acc2.placement.assignments, accept.placement.assignments);

    ckpt::JoinAccept reject;
    reject.accepted = false;
    reject.reason = "stale epoch";
    const ckpt::JoinAccept rej2 =
        ckpt::DecodeJoinAccept(ckpt::EncodeJoinAccept(reject));
    EXPECT_FALSE(rej2.accepted);
    EXPECT_EQ(rej2.reason, "stale epoch");
}

TEST_F(MembershipTest, JoinCodecsThrowOnTruncation) {
    ckpt::JoinRequest request;
    request.rank = 1;
    Blob wire = ckpt::EncodeJoinRequest(request);
    wire.resize(wire.size() / 2);
    EXPECT_THROW(ckpt::DecodeJoinRequest(wire), std::runtime_error);
}

TEST_F(MembershipTest, MembershipJsonRoundTrips) {
    MembershipTable table;
    table.AdmitInitial(0, 1);
    table.AdmitInitial(1, 1);
    table.MarkLive(0);
    table.OnPeerDeath(1, "eof");
    table.OnJoinRequest(1, 2, 2);

    const ckpt::MembershipSnapshot snapshot =
        ckpt::ParseMembershipJson(table.ToJson());
    EXPECT_EQ(snapshot.version, table.version());
    ASSERT_EQ(snapshot.members.size(), 2U);
    EXPECT_EQ(snapshot.LiveRanks(), table.LiveRanks());
    for (const auto& member : snapshot.members) {
        const ckpt::MemberInfo truth = table.Info(member.rank);
        EXPECT_EQ(member.state, truth.state) << "rank " << member.rank;
        EXPECT_EQ(member.epoch, truth.epoch);
        EXPECT_EQ(member.incarnation, truth.incarnation);
    }

    EXPECT_THROW(ckpt::ParseMembershipJson("{}"), std::invalid_argument);
    EXPECT_THROW(ckpt::ParseMembershipJson("not json"),
                 std::invalid_argument);
}

// ---------- aggregator resurrection ----------

TEST_F(MembershipTest, AggregatorResurrectionJournalsExactlyOnce) {
    auto& cluster = obs::ClusterAggregator::Instance();
    cluster.Reset();
    const std::uint64_t before = obs::MetricsRegistry::Instance()
                                     .GetCounter("obs.cluster.resurrections")
                                     .value();

    obs::TelemetrySample s;
    s.rank = 1;
    s.generation = 1;
    s.sent_ns = 1'000;
    cluster.Observe(s, 1'000);
    cluster.ObservePeerDeath(1, "eof");
    {
        const auto health = cluster.Health();
        ASSERT_EQ(health.size(), 1U);
        EXPECT_FALSE(health[0].alive);
        EXPECT_EQ(health[0].death_cause, "eof");
    }

    // Fresh telemetry from the respawned incarnation resurrects the row...
    s.sent_ns = 2'000;
    cluster.Observe(s, 2'000);
    const auto health = cluster.Health();
    ASSERT_EQ(health.size(), 1U);
    EXPECT_TRUE(health[0].alive);
    EXPECT_TRUE(health[0].death_cause.empty());

    // ...journaling one `rejoin` with the resurrection detail prefix.
    std::size_t resurrections = 0;
    for (const auto& e : obs::EventJournal::Instance().Collect()) {
        if (e.kind == obs::EventKind::kRejoin &&
            e.detail.rfind("resurrected", 0) == 0) {
            EXPECT_EQ(e.scope, 1);
            ++resurrections;
        }
    }
    EXPECT_EQ(resurrections, 1U);
    EXPECT_EQ(obs::MetricsRegistry::Instance()
                  .GetCounter("obs.cluster.resurrections")
                  .value(),
              before + 1);

    // A second sample is just a sample — no duplicate resurrection.
    s.sent_ns = 3'000;
    cluster.Observe(s, 3'000);
    EXPECT_EQ(CountJournal(obs::EventKind::kRejoin), 1U);
    cluster.Reset();
}

}  // namespace
}  // namespace moc
