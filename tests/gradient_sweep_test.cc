/**
 * @file
 * Parameterized gradient-check sweep: finite-difference validation of the
 * full transformer block (attention + layernorms + dense FFN or MoE) across
 * a grid of shapes — the property that makes every accuracy experiment
 * trustworthy.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "nn/block.h"

namespace moc {
namespace {

struct BlockShape {
    std::size_t hidden;
    std::size_t heads;
    std::size_t head_dim;
    std::size_t seq;
    bool moe;
    std::size_t experts;
    std::size_t top_k;
    bool causal;
};

class BlockGradient : public ::testing::TestWithParam<BlockShape> {};

TEST_P(BlockGradient, MatchesFiniteDifference) {
    const BlockShape p = GetParam();
    Rng rng(1234);
    BlockConfig cfg;
    cfg.hidden = p.hidden;
    cfg.num_heads = p.heads;
    cfg.head_dim = p.head_dim;
    cfg.ffn_mult = 2;
    cfg.causal = p.causal;
    cfg.is_moe = p.moe;
    if (p.moe) {
        cfg.moe.hidden = p.hidden;
        cfg.moe.inter = 2 * p.hidden;
        cfg.moe.num_experts = p.experts;
        cfg.moe.top_k = p.top_k;
        cfg.moe.capacity_factor = 100.0;  // no drops: keep the loss smooth
        cfg.moe.noise_std = 0.0F;
        cfg.moe.aux_loss_coeff = 0.0F;
    }
    TransformerBlock block("b", cfg, rng, 0.3F);

    auto x = Tensor::Randn({p.seq, p.hidden}, rng, 1.0F);
    auto dy = Tensor::Randn({p.seq, p.hidden}, rng, 1.0F);
    Rng noise(1);
    block.Forward(x, 1, p.seq, /*train=*/true, noise);
    const Tensor dx = block.Backward(dy);

    auto loss = [&](const Tensor& xx) {
        Rng n2(1);
        Tensor y = block.Forward(xx, 1, p.seq, true, n2);
        double l = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i) {
            l += static_cast<double>(y[i]) * dy[i];
        }
        return l;
    };

    const float eps = 1e-2F;
    std::size_t checked = 0;
    for (std::size_t i = 0; i < x.size(); i += 3) {  // stride: keep it fast
        Tensor xp = x;
        Tensor xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        const double num = (loss(xp) - loss(xm)) / (2 * eps);
        if (p.moe && std::fabs(num - dx[i]) > 0.2) {
            continue;  // crossed a routing boundary: finite diff invalid
        }
        EXPECT_NEAR(dx[i], num, 5e-2) << "input index " << i;
        ++checked;
    }
    EXPECT_GT(checked, x.size() / 6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BlockGradient,
    ::testing::Values(BlockShape{8, 1, 8, 3, false, 0, 0, true},
                      BlockShape{8, 2, 4, 4, false, 0, 0, false},
                      BlockShape{12, 3, 4, 5, false, 0, 0, true},
                      BlockShape{8, 2, 4, 4, true, 2, 1, true},
                      BlockShape{8, 2, 4, 3, true, 4, 1, false},
                      BlockShape{12, 2, 6, 4, true, 4, 2, true},
                      BlockShape{8, 1, 8, 6, true, 8, 2, true}),
    [](const auto& info) {
        const BlockShape& p = info.param;
        return "h" + std::to_string(p.hidden) + "n" + std::to_string(p.heads) +
               "s" + std::to_string(p.seq) +
               (p.moe ? "moe" + std::to_string(p.experts) + "k" +
                            std::to_string(p.top_k)
                      : std::string("dense")) +
               (p.causal ? "causal" : "bidir");
    });

}  // namespace
}  // namespace moc
