/**
 * @file
 * Unit tests for the per-iteration time-series ring (obs/timeseries.h):
 * bounded capacity, window queries, the `moc-series/1` JSON form, the
 * JSONL teardown export, and CapturePoint's registry/cluster-view reads.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/cluster_view.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "util/json.h"

namespace moc {
namespace {

obs::IterationPoint
Point(std::uint64_t iteration, double seconds) {
    obs::IterationPoint p;
    p.iteration = iteration;
    p.t_s = static_cast<double>(iteration);
    p.iter_seconds = seconds;
    p.bytes_persisted = iteration * 100;
    p.bytes_saved = iteration * 10;
    return p;
}

class TimeSeriesTest : public ::testing::Test {
  protected:
    void SetUp() override { obs::TimeSeriesRing::Instance().Reset(); }
    void TearDown() override { obs::TimeSeriesRing::Instance().Reset(); }
};

TEST_F(TimeSeriesTest, BoundedCapacityDropsOldestButKeepsTotal) {
    auto& ring = obs::TimeSeriesRing::Instance();
    ring.SetCapacity(3);
    for (std::uint64_t i = 1; i <= 5; ++i) {
        ring.Append(Point(i, 0.1));
    }
    EXPECT_EQ(ring.total(), 5u);
    const auto window = ring.Window();
    ASSERT_EQ(window.size(), 3u);
    EXPECT_EQ(window.front().iteration, 3u);  // 1 and 2 fell off
    EXPECT_EQ(window.back().iteration, 5u);
}

TEST_F(TimeSeriesTest, WindowReturnsLastNOldestFirst) {
    auto& ring = obs::TimeSeriesRing::Instance();
    for (std::uint64_t i = 1; i <= 10; ++i) {
        ring.Append(Point(i, 0.1));
    }
    const auto last3 = ring.Window(3);
    ASSERT_EQ(last3.size(), 3u);
    EXPECT_EQ(last3[0].iteration, 8u);
    EXPECT_EQ(last3[2].iteration, 10u);
    // Asking past the ring clamps to everything in it.
    EXPECT_EQ(ring.Window(100).size(), 10u);
    EXPECT_EQ(ring.Window(0).size(), 10u);
}

TEST_F(TimeSeriesTest, JsonWindowParsesAsMocSeries1) {
    auto& ring = obs::TimeSeriesRing::Instance();
    ring.Append(Point(1, 0.5));
    ring.Append(Point(2, 0.25));
    const json::Value doc = json::Parse(ring.Json());
    EXPECT_EQ(doc.At("schema").AsString(), "moc-series/1");
    EXPECT_EQ(doc.At("total").AsU64(), 2u);
    const json::Array& points = doc.At("points").AsArray();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].At("iteration").AsU64(), 1u);
    EXPECT_DOUBLE_EQ(points[0].At("iter_seconds").AsNumber(), 0.5);
    EXPECT_EQ(points[0].At("bytes_persisted").AsU64(), 100u);
    EXPECT_EQ(points[0].At("bytes_saved").AsU64(), 10u);
    EXPECT_EQ(points[1].At("iteration").AsU64(), 2u);
    // ?last=1 narrows the window but total still counts everything.
    const json::Value narrowed = json::Parse(ring.Json(1));
    EXPECT_EQ(narrowed.At("total").AsU64(), 2u);
    ASSERT_EQ(narrowed.At("points").AsArray().size(), 1u);
    EXPECT_EQ(narrowed.At("points").AsArray()[0].At("iteration").AsU64(), 2u);
}

TEST_F(TimeSeriesTest, JsonlEmitsOneParseableObjectPerLine) {
    auto& ring = obs::TimeSeriesRing::Instance();
    ring.Append(Point(1, 0.5));
    ring.Append(Point(2, 0.25));
    std::istringstream lines(ring.Jsonl());
    std::string line;
    std::size_t parsed = 0;
    while (std::getline(lines, line)) {
        const json::Value p = json::Parse(line);
        ++parsed;
        EXPECT_EQ(p.At("iteration").AsU64(), parsed);
    }
    EXPECT_EQ(parsed, 2u);
}

TEST_F(TimeSeriesTest, CapturePointReadsRegistryAndClusterView) {
    obs::ClusterAggregator::Instance().Reset();
    auto& registry = obs::MetricsRegistry::Instance();
    registry.ResetAll();
    registry.GetCounter("ckpt.persist_bytes").Add(500);
    registry.GetCounter("cluster.bytes_written").Add(200);
    registry.GetCounter("cluster.bytes_deduped").Add(40);
    registry.GetCounter("cluster.delta.bytes_saved").Add(2);

    obs::IterationPoint point = obs::CapturePoint(7, 0.125);
    EXPECT_EQ(point.iteration, 7u);
    EXPECT_DOUBLE_EQ(point.iter_seconds, 0.125);
    EXPECT_EQ(point.bytes_persisted, 700u);
    EXPECT_EQ(point.bytes_saved, 42u);
    // No checkpoint has computed a ledger PLT yet: unknown, not perfect.
    EXPECT_LT(point.plt, 0.0);
    // No cluster rows = a single-process run counts itself alive.
    EXPECT_EQ(point.live_ranks, 1u);
    EXPECT_EQ(point.stragglers, 0u);

    registry.GetGauge("ckpt.plt").Set(0.0625);
    obs::TelemetrySample sample;
    sample.rank = 0;
    obs::ClusterAggregator::Instance().Observe(sample, 0);
    sample.rank = 1;
    obs::ClusterAggregator::Instance().Observe(sample, 0);
    obs::ClusterAggregator::Instance().ObservePeerDeath(1, "eof");
    point = obs::CapturePoint(8, 0.1);
    EXPECT_DOUBLE_EQ(point.plt, 0.0625);
    EXPECT_EQ(point.live_ranks, 1u);  // rank 1 is dead

    obs::ClusterAggregator::Instance().Reset();
    registry.ResetAll();
}

TEST_F(TimeSeriesTest, SampleIterationAppendsAndCountsPoints) {
    auto& registry = obs::MetricsRegistry::Instance();
    const std::uint64_t before =
        registry.GetCounter("obs.series.points").value();
    obs::SampleIteration(1, 0.01);
    obs::SampleIteration(2, 0.02);
    EXPECT_EQ(obs::TimeSeriesRing::Instance().total(), 2u);
    EXPECT_EQ(registry.GetCounter("obs.series.points").value(), before + 2);
}

TEST_F(TimeSeriesTest, SeriesOutWritesJsonlAtExport) {
    auto& ring = obs::TimeSeriesRing::Instance();
    ring.Append(Point(1, 0.5));
    const std::string path =
        ::testing::TempDir() + "moc_series_export_test.jsonl";
    std::vector<std::string> tokens = {"--series-out", path};
    const obs::ObsOptions options = obs::ExtractObsOptions(tokens);
    EXPECT_TRUE(tokens.empty());
    EXPECT_EQ(options.series_out, path);
    EXPECT_TRUE(obs::ExportObs(options));
    std::ifstream in(path);
    std::string line;
    ASSERT_TRUE(std::getline(in, line));
    EXPECT_EQ(json::Parse(line).At("iteration").AsU64(), 1u);
}

}  // namespace
}  // namespace moc
