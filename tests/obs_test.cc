/**
 * @file
 * Tests for the observability layer: counters/gauges/histograms and their
 * registry, trace spans and ring buffers, the JSON/Chrome-trace exporters,
 * and a multi-thread smoke test that hammers the registry, the tracer, and
 * the logger concurrently (the TSan CI job runs these).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace moc {
namespace {

using obs::Counter;
using obs::ExponentialBuckets;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::TraceEvent;
using obs::Tracer;
using obs::TraceRing;
using obs::TraceSpan;

// ---------- Counter / Gauge ----------

TEST(ObsCounter, AddsAndResets) {
    Counter c;
    EXPECT_EQ(c.value(), 0U);
    c.Add();
    c.Add(41);
    EXPECT_EQ(c.value(), 42U);
    c.Reset();
    EXPECT_EQ(c.value(), 0U);
}

TEST(ObsGauge, SetAddReset) {
    Gauge g;
    g.Set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.Add(0.75);
    EXPECT_DOUBLE_EQ(g.value(), 3.25);
    g.Reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ---------- Histogram ----------

TEST(ObsHistogram, PlacesObservationsInLeBuckets) {
    Histogram h({1.0, 10.0, 100.0});
    h.Observe(0.5);    // <= 1
    h.Observe(1.0);    // <= 1 (inclusive upper bound)
    h.Observe(5.0);    // <= 10
    h.Observe(50.0);   // <= 100
    h.Observe(500.0);  // overflow
    EXPECT_EQ(h.count(), 5U);
    EXPECT_DOUBLE_EQ(h.sum(), 556.5);
    const auto counts = h.bucket_counts();
    ASSERT_EQ(counts.size(), 4U);
    EXPECT_EQ(counts[0], 2U);
    EXPECT_EQ(counts[1], 1U);
    EXPECT_EQ(counts[2], 1U);
    EXPECT_EQ(counts[3], 1U);
    h.Reset();
    EXPECT_EQ(h.count(), 0U);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(ObsHistogram, RejectsUnsortedBounds) {
    EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(ObsHistogram, ExponentialBucketsGrowGeometrically) {
    const auto bounds = ExponentialBuckets(1e-3, 10.0, 4);
    ASSERT_EQ(bounds.size(), 4U);
    EXPECT_DOUBLE_EQ(bounds[0], 1e-3);
    EXPECT_DOUBLE_EQ(bounds[3], 1.0);
    EXPECT_THROW(ExponentialBuckets(0.0, 2.0, 3), std::invalid_argument);
    EXPECT_THROW(ExponentialBuckets(1.0, 1.0, 3), std::invalid_argument);
}

// ---------- Registry ----------

TEST(ObsRegistry, SameNameReturnsSameInstance) {
    auto& registry = MetricsRegistry::Instance();
    Counter& a = registry.GetCounter("obs_test.same_name");
    Counter& b = registry.GetCounter("obs_test.same_name");
    EXPECT_EQ(&a, &b);
    Histogram& h1 = registry.GetHistogram("obs_test.same_hist", {1.0, 2.0});
    Histogram& h2 = registry.GetHistogram("obs_test.same_hist", {7.0});
    EXPECT_EQ(&h1, &h2);  // bounds of the first registration win
    ASSERT_EQ(h2.bounds().size(), 2U);
}

TEST(ObsRegistry, KindCollisionThrows) {
    auto& registry = MetricsRegistry::Instance();
    registry.GetCounter("obs_test.kind_collision");
    EXPECT_THROW(registry.GetGauge("obs_test.kind_collision"),
                 std::invalid_argument);
    EXPECT_THROW(registry.GetHistogram("obs_test.kind_collision"),
                 std::invalid_argument);
}

TEST(ObsRegistry, SnapshotReflectsValuesAndResetPreservesIdentity) {
    auto& registry = MetricsRegistry::Instance();
    Counter& c = registry.GetCounter("obs_test.snapshot_counter");
    Gauge& g = registry.GetGauge("obs_test.snapshot_gauge");
    Histogram& h = registry.GetHistogram("obs_test.snapshot_hist", {1.0});
    c.Add(7);
    g.Set(1.5);
    h.Observe(0.25);
    const auto snap = registry.Snapshot();
    EXPECT_EQ(snap.counters.at("obs_test.snapshot_counter"), 7U);
    EXPECT_DOUBLE_EQ(snap.gauges.at("obs_test.snapshot_gauge"), 1.5);
    EXPECT_EQ(snap.histograms.at("obs_test.snapshot_hist").count, 1U);

    registry.ResetAll();
    EXPECT_EQ(c.value(), 0U);  // the cached reference is still the metric
    EXPECT_EQ(&c, &registry.GetCounter("obs_test.snapshot_counter"));
    EXPECT_EQ(h.count(), 0U);
}

// ---------- Metrics JSON export ----------

TEST(ObsExport, MetricsJsonCarriesRegisteredMetrics) {
    auto& registry = MetricsRegistry::Instance();
    registry.GetCounter("obs_test.json_counter").Add(123);
    registry.GetGauge("obs_test.json_gauge").Set(0.5);
    registry.GetHistogram("obs_test.json_hist", {1.0}).Observe(2.0);
    const std::string json = obs::MetricsJson();
    EXPECT_NE(json.find("\"obs_test.json_counter\": 123"), std::string::npos);
    EXPECT_NE(json.find("\"obs_test.json_gauge\": 0.5"), std::string::npos);
    EXPECT_NE(json.find("\"obs_test.json_hist\""), std::string::npos);
    EXPECT_NE(json.find("\"+inf\""), std::string::npos);
    // Crude structural sanity: balanced braces/brackets.
    long braces = 0;
    long brackets = 0;
    for (const char ch : json) {
        braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
        brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(ObsExport, WritesMetricsFileCreatingDirectories) {
    const auto dir = std::filesystem::temp_directory_path() / "moc_obs_test";
    std::filesystem::remove_all(dir);
    const auto path = dir / "nested" / "metrics.json";
    MetricsRegistry::Instance().GetCounter("obs_test.file_counter").Add(5);
    ASSERT_TRUE(obs::WriteMetricsJson(path.string()));
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("obs_test.file_counter"), std::string::npos);
    std::filesystem::remove_all(dir);
}

// ---------- Trace ring + spans ----------

TEST(ObsTrace, RingOverwritesOldestWhenFull) {
    TraceRing ring(/*capacity=*/8, /*tid=*/0);
    for (std::uint64_t i = 0; i < 11; ++i) {
        TraceEvent event;
        event.name = "e";
        event.start_ns = i;
        ring.Push(event);
    }
    const auto events = ring.Events();
    ASSERT_EQ(events.size(), 8U);
    EXPECT_EQ(ring.dropped(), 3U);
    EXPECT_EQ(events.front().start_ns, 3U);  // oldest surviving
    EXPECT_EQ(events.back().start_ns, 10U);  // newest
    ring.Clear();
    EXPECT_TRUE(ring.Events().empty());
    EXPECT_EQ(ring.dropped(), 0U);
}

TEST(ObsTrace, SpanRecordsOnlyWhenEnabled) {
    Tracer& tracer = Tracer::Instance();
    tracer.set_enabled(false);
    tracer.Clear();
    { const TraceSpan span("obs_test.disabled", "test"); }
    EXPECT_TRUE(tracer.Collect().empty());

    tracer.set_enabled(true);
    { const TraceSpan span("obs_test.enabled", "test"); }
    tracer.set_enabled(false);
    const auto events = tracer.Collect();
    ASSERT_EQ(events.size(), 1U);
    EXPECT_STREQ(events[0].name, "obs_test.enabled");
    EXPECT_STREQ(events[0].category, "test");
    tracer.Clear();
}

TEST(ObsTrace, ChromeTraceJsonIsWellFormed) {
    Tracer& tracer = Tracer::Instance();
    tracer.Clear();
    tracer.set_enabled(true);
    { const TraceSpan span("obs_test.chrome", "test"); }
    tracer.set_enabled(false);
    const std::string json = obs::ChromeTraceJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"obs_test.chrome\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    tracer.Clear();
}

// ---------- Flag plumbing ----------

TEST(ObsExport, ExtractObsOptionsStripsFlags) {
    std::vector<std::string> tokens = {"inspect", "--metrics-out", "m.json",
                                       "dir",     "--trace-out",   "t.json"};
    const obs::ObsOptions options = obs::ExtractObsOptions(tokens);
    EXPECT_EQ(options.metrics_out, "m.json");
    EXPECT_EQ(options.trace_out, "t.json");
    EXPECT_EQ(tokens, (std::vector<std::string>{"inspect", "dir"}));
    EXPECT_TRUE(Tracer::Instance().enabled());  // --trace-out enables tracing
    Tracer::Instance().set_enabled(false);
    Tracer::Instance().Clear();

    std::vector<std::string> dangling = {"--metrics-out"};
    EXPECT_THROW(obs::ExtractObsOptions(dangling), std::invalid_argument);
}

// ---------- Multi-thread smoke test (meaningful under TSan) ----------

TEST(ObsSmoke, ConcurrentMetricsTracingAndLogging) {
    auto& registry = MetricsRegistry::Instance();
    Counter& counter = registry.GetCounter("obs_test.smoke_counter");
    Gauge& gauge = registry.GetGauge("obs_test.smoke_gauge");
    Histogram& hist = registry.GetHistogram("obs_test.smoke_hist", {0.25, 0.75});
    counter.Reset();
    hist.Reset();

    Tracer& tracer = Tracer::Instance();
    tracer.Clear();
    tracer.set_enabled(true);
    const LogLevel old_level = Logger::Instance().level();

    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 2000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (std::size_t i = 0; i < kIters; ++i) {
                const TraceSpan span("obs_test.smoke_span", "test");
                counter.Add();
                gauge.Set(static_cast<double>(t));
                hist.Observe(static_cast<double>(i % 100) / 100.0);
                // Exercises the Logger::level_ read against set_level below
                // (kDebug stays below both toggled levels, so no output).
                MOC_DEBUG << "smoke " << t << ":" << i;
            }
        });
    }
    // One thread flips the log level while the workers log...
    std::thread toggler([&] {
        for (std::size_t i = 0; i < 500; ++i) {
            Logger::Instance().set_level(i % 2 == 0 ? LogLevel::kWarn
                                                    : LogLevel::kError);
        }
    });
    // ...and one thread exports while everything is being written.
    std::thread exporter([&] {
        for (std::size_t i = 0; i < 20; ++i) {
            (void)obs::MetricsJson();
            (void)obs::ChromeTraceJson();
            (void)tracer.TotalDropped();
        }
    });
    for (auto& worker : workers) {
        worker.join();
    }
    toggler.join();
    exporter.join();
    tracer.set_enabled(false);
    Logger::Instance().set_level(old_level);

    EXPECT_EQ(counter.value(), kThreads * kIters);
    EXPECT_EQ(hist.count(), kThreads * kIters);
    const double g = gauge.value();
    EXPECT_GE(g, 0.0);
    EXPECT_LT(g, static_cast<double>(kThreads));
    // Every ring holds at most capacity events; nothing crashed or tore.
    const auto events = tracer.Collect();
    EXPECT_LE(events.size(), kThreads * Tracer::kRingCapacity);
    EXPECT_GT(events.size(), 0U);
    tracer.Clear();
}

}  // namespace
}  // namespace moc
