/**
 * @file
 * Tests for the observability layer: counters/gauges/histograms and their
 * registry, trace spans and ring buffers, the JSON/Chrome-trace exporters,
 * and a multi-thread smoke test that hammers the registry, the tracer, and
 * the logger concurrently (the TSan CI job runs these).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/expert_stats.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/run_meta.h"
#include "obs/trace.h"
#include "util/json.h"
#include "util/logging.h"

namespace moc {
namespace {

using obs::Counter;
using obs::ExponentialBuckets;
using obs::Gauge;
using obs::Histogram;
using obs::MetricsRegistry;
using obs::TraceEvent;
using obs::Tracer;
using obs::TraceRing;
using obs::TraceSpan;

// ---------- Counter / Gauge ----------

TEST(ObsCounter, AddsAndResets) {
    Counter c;
    EXPECT_EQ(c.value(), 0U);
    c.Add();
    c.Add(41);
    EXPECT_EQ(c.value(), 42U);
    c.Reset();
    EXPECT_EQ(c.value(), 0U);
}

TEST(ObsGauge, SetAddReset) {
    Gauge g;
    g.Set(2.5);
    EXPECT_DOUBLE_EQ(g.value(), 2.5);
    g.Add(0.75);
    EXPECT_DOUBLE_EQ(g.value(), 3.25);
    g.Reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

// ---------- Histogram ----------

TEST(ObsHistogram, PlacesObservationsInLeBuckets) {
    Histogram h({1.0, 10.0, 100.0});
    h.Observe(0.5);    // <= 1
    h.Observe(1.0);    // <= 1 (inclusive upper bound)
    h.Observe(5.0);    // <= 10
    h.Observe(50.0);   // <= 100
    h.Observe(500.0);  // overflow
    EXPECT_EQ(h.count(), 5U);
    EXPECT_DOUBLE_EQ(h.sum(), 556.5);
    const auto counts = h.bucket_counts();
    ASSERT_EQ(counts.size(), 4U);
    EXPECT_EQ(counts[0], 2U);
    EXPECT_EQ(counts[1], 1U);
    EXPECT_EQ(counts[2], 1U);
    EXPECT_EQ(counts[3], 1U);
    h.Reset();
    EXPECT_EQ(h.count(), 0U);
    EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(ObsHistogram, RejectsUnsortedBounds) {
    EXPECT_THROW(Histogram({2.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(Histogram({1.0, 1.0}), std::invalid_argument);
}

TEST(ObsHistogram, ExponentialBucketsGrowGeometrically) {
    const auto bounds = ExponentialBuckets(1e-3, 10.0, 4);
    ASSERT_EQ(bounds.size(), 4U);
    EXPECT_DOUBLE_EQ(bounds[0], 1e-3);
    EXPECT_DOUBLE_EQ(bounds[3], 1.0);
    EXPECT_THROW(ExponentialBuckets(0.0, 2.0, 3), std::invalid_argument);
    EXPECT_THROW(ExponentialBuckets(1.0, 1.0, 3), std::invalid_argument);
}

// ---------- Registry ----------

TEST(ObsRegistry, SameNameReturnsSameInstance) {
    auto& registry = MetricsRegistry::Instance();
    Counter& a = registry.GetCounter("obs_test.same_name");
    Counter& b = registry.GetCounter("obs_test.same_name");
    EXPECT_EQ(&a, &b);
    Histogram& h1 = registry.GetHistogram("obs_test.same_hist", {1.0, 2.0});
    Histogram& h2 = registry.GetHistogram("obs_test.same_hist", {7.0});
    EXPECT_EQ(&h1, &h2);  // bounds of the first registration win
    ASSERT_EQ(h2.bounds().size(), 2U);
}

TEST(ObsRegistry, KindCollisionThrows) {
    auto& registry = MetricsRegistry::Instance();
    registry.GetCounter("obs_test.kind_collision");
    EXPECT_THROW(registry.GetGauge("obs_test.kind_collision"),
                 std::invalid_argument);
    EXPECT_THROW(registry.GetHistogram("obs_test.kind_collision"),
                 std::invalid_argument);
}

TEST(ObsRegistry, SnapshotReflectsValuesAndResetPreservesIdentity) {
    auto& registry = MetricsRegistry::Instance();
    Counter& c = registry.GetCounter("obs_test.snapshot_counter");
    Gauge& g = registry.GetGauge("obs_test.snapshot_gauge");
    Histogram& h = registry.GetHistogram("obs_test.snapshot_hist", {1.0});
    c.Add(7);
    g.Set(1.5);
    h.Observe(0.25);
    const auto snap = registry.Snapshot();
    EXPECT_EQ(snap.counters.at("obs_test.snapshot_counter"), 7U);
    EXPECT_DOUBLE_EQ(snap.gauges.at("obs_test.snapshot_gauge"), 1.5);
    EXPECT_EQ(snap.histograms.at("obs_test.snapshot_hist").count, 1U);

    registry.ResetAll();
    EXPECT_EQ(c.value(), 0U);  // the cached reference is still the metric
    EXPECT_EQ(&c, &registry.GetCounter("obs_test.snapshot_counter"));
    EXPECT_EQ(h.count(), 0U);
}

// ---------- Metrics JSON export ----------

TEST(ObsExport, MetricsJsonCarriesRegisteredMetrics) {
    auto& registry = MetricsRegistry::Instance();
    registry.GetCounter("obs_test.json_counter").Add(123);
    registry.GetGauge("obs_test.json_gauge").Set(0.5);
    registry.GetHistogram("obs_test.json_hist", {1.0}).Observe(2.0);
    const std::string json = obs::MetricsJson();
    EXPECT_NE(json.find("\"obs_test.json_counter\": 123"), std::string::npos);
    EXPECT_NE(json.find("\"obs_test.json_gauge\": 0.5"), std::string::npos);
    EXPECT_NE(json.find("\"obs_test.json_hist\""), std::string::npos);
    EXPECT_NE(json.find("\"+inf\""), std::string::npos);
    // Crude structural sanity: balanced braces/brackets.
    long braces = 0;
    long brackets = 0;
    for (const char ch : json) {
        braces += ch == '{' ? 1 : ch == '}' ? -1 : 0;
        brackets += ch == '[' ? 1 : ch == ']' ? -1 : 0;
    }
    EXPECT_EQ(braces, 0);
    EXPECT_EQ(brackets, 0);
}

TEST(ObsExport, WritesMetricsFileCreatingDirectories) {
    const auto dir = std::filesystem::temp_directory_path() / "moc_obs_test";
    std::filesystem::remove_all(dir);
    const auto path = dir / "nested" / "metrics.json";
    MetricsRegistry::Instance().GetCounter("obs_test.file_counter").Add(5);
    ASSERT_TRUE(obs::WriteMetricsJson(path.string()));
    std::ifstream in(path);
    std::stringstream content;
    content << in.rdbuf();
    EXPECT_NE(content.str().find("obs_test.file_counter"), std::string::npos);
    std::filesystem::remove_all(dir);
}

// ---------- Trace ring + spans ----------

TEST(ObsTrace, RingOverwritesOldestWhenFull) {
    TraceRing ring(/*capacity=*/8, /*tid=*/0);
    for (std::uint64_t i = 0; i < 11; ++i) {
        TraceEvent event;
        event.name = "e";
        event.start_ns = i;
        ring.Push(event);
    }
    const auto events = ring.Events();
    ASSERT_EQ(events.size(), 8U);
    EXPECT_EQ(ring.dropped(), 3U);
    EXPECT_EQ(events.front().start_ns, 3U);  // oldest surviving
    EXPECT_EQ(events.back().start_ns, 10U);  // newest
    ring.Clear();
    EXPECT_TRUE(ring.Events().empty());
    EXPECT_EQ(ring.dropped(), 0U);
}

TEST(ObsTrace, SpanRecordsOnlyWhenEnabled) {
    Tracer& tracer = Tracer::Instance();
    tracer.set_enabled(false);
    tracer.Clear();
    { const TraceSpan span("obs_test.disabled", "test"); }
    EXPECT_TRUE(tracer.Collect().empty());

    tracer.set_enabled(true);
    { const TraceSpan span("obs_test.enabled", "test"); }
    tracer.set_enabled(false);
    const auto events = tracer.Collect();
    ASSERT_EQ(events.size(), 1U);
    EXPECT_STREQ(events[0].name, "obs_test.enabled");
    EXPECT_STREQ(events[0].category, "test");
    tracer.Clear();
}

TEST(ObsTrace, ChromeTraceJsonIsWellFormed) {
    Tracer& tracer = Tracer::Instance();
    tracer.Clear();
    tracer.set_enabled(true);
    { const TraceSpan span("obs_test.chrome", "test"); }
    tracer.set_enabled(false);
    const std::string json = obs::ChromeTraceJson();
    EXPECT_EQ(json.front(), '{');
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"obs_test.chrome\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    tracer.Clear();
}

// ---------- Flag plumbing ----------

TEST(ObsExport, ExtractObsOptionsStripsFlags) {
    std::vector<std::string> tokens = {
        "inspect",      "--metrics-out", "m.json",  "dir",
        "--trace-out",  "t.json",        "--events-out", "e.jsonl",
        "--prom-out",   "p.prom"};
    const obs::ObsOptions options = obs::ExtractObsOptions(tokens);
    EXPECT_EQ(options.metrics_out, "m.json");
    EXPECT_EQ(options.trace_out, "t.json");
    EXPECT_EQ(options.events_out, "e.jsonl");
    EXPECT_EQ(options.prom_out, "p.prom");
    EXPECT_EQ(tokens, (std::vector<std::string>{"inspect", "dir"}));
    EXPECT_TRUE(Tracer::Instance().enabled());  // --trace-out enables tracing
    Tracer::Instance().set_enabled(false);
    Tracer::Instance().Clear();

    std::vector<std::string> dangling = {"--metrics-out"};
    EXPECT_THROW(obs::ExtractObsOptions(dangling), std::invalid_argument);
}

// ---------- Histogram quantiles ----------

TEST(ObsQuantile, InterpolatesWithinBuckets) {
    obs::HistogramData data;
    data.bounds = {1.0, 2.0, 4.0};
    data.bucket_counts = {10, 10, 0, 0};
    data.count = 20;
    data.sum = 25.0;
    // Rank q*count walks the cumulative buckets; linear within a bucket.
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 0.25), 0.5);
    EXPECT_DOUBLE_EQ(obs::HistogramP50(data), 1.0);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 0.75), 1.5);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 1.0), 2.0);
}

TEST(ObsQuantile, OverflowBucketClampsToLastBound) {
    obs::HistogramData data;
    data.bounds = {1.0, 2.0};
    data.bucket_counts = {1, 0, 9};  // 9 observations beyond the last bound
    data.count = 10;
    data.sum = 100.0;
    EXPECT_DOUBLE_EQ(obs::HistogramP95(data), 2.0);
    EXPECT_DOUBLE_EQ(obs::HistogramP99(data), 2.0);
}

TEST(ObsQuantile, EmptyAndInvalidInputs) {
    obs::HistogramData empty;
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(empty, 0.5), 0.0);
    obs::HistogramData data;
    data.bounds = {1.0};
    data.bucket_counts = {1, 0};
    data.count = 1;
    EXPECT_THROW(obs::HistogramQuantile(data, -0.1), std::invalid_argument);
    EXPECT_THROW(obs::HistogramQuantile(data, 1.5), std::invalid_argument);
}

TEST(ObsQuantile, EmptyHistogramIsZeroAtEveryQuantile) {
    obs::HistogramData empty;
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(empty, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(empty, 1.0), 0.0);
    // Bounds but no observations is just as empty.
    obs::HistogramData bounded;
    bounded.bounds = {1.0, 2.0};
    bounded.bucket_counts = {0, 0, 0};
    bounded.count = 0;
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(bounded, 0.5), 0.0);
}

TEST(ObsQuantile, AllMassInOverflowBucket) {
    obs::HistogramData data;
    data.bounds = {1.0, 8.0};
    data.bucket_counts = {0, 0, 7};  // every observation above the last bound
    data.count = 7;
    data.sum = 700.0;
    // No finite edge to interpolate toward: every quantile clamps to the
    // last finite bound rather than inventing a value beyond it.
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 0.0), 8.0);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 0.5), 8.0);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 1.0), 8.0);
}

TEST(ObsQuantile, ExtremeQuantilesBracketTheDistribution) {
    obs::HistogramData data;
    data.bounds = {2.0, 4.0};
    data.bucket_counts = {5, 5, 0};
    data.count = 10;
    // q=0 lands at the lower edge of the first populated bucket (0 by the
    // histogram_quantile convention); q=1 at the upper edge of the last.
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 1.0), 4.0);
    // With the first bucket empty, q=0 starts at that bucket's lower bound.
    obs::HistogramData shifted;
    shifted.bounds = {2.0, 4.0};
    shifted.bucket_counts = {0, 4, 0};
    shifted.count = 4;
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(shifted, 0.0), 2.0);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(shifted, 1.0), 4.0);
}

TEST(ObsQuantile, SingleBucketInterpolatesLinearly) {
    obs::HistogramData data;
    data.bounds = {10.0};
    data.bucket_counts = {4, 0};
    data.count = 4;
    // One finite bucket [0, 10]: rank q*4 interpolates linearly from 0.
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 0.25), 2.5);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 0.5), 5.0);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 0.75), 7.5);
    EXPECT_DOUBLE_EQ(obs::HistogramQuantile(data, 1.0), 10.0);
}

// ---------- Per-expert telemetry ----------

TEST(ObsExpertStats, TracksStalenessAndAttribution) {
    auto& stats = obs::ExpertStatsRegistry::Instance();
    stats.Configure(2, 4);
    EXPECT_EQ(stats.num_layers(), 2U);
    EXPECT_EQ(stats.num_experts(), 4U);

    stats.SetIteration(10);
    stats.OnSnapshot(0, 1, 10, 100);
    stats.OnPersist(0, 1, 10, 50);
    stats.OnSnapshot(1, 3, 10, 100);
    stats.SetIteration(20);

    const auto snap = stats.Snapshot();
    ASSERT_EQ(snap.size(), 8U);
    const auto& cell01 = snap[0 * 4 + 1];
    EXPECT_EQ(cell01.last_snapshot_iteration, 10U);
    EXPECT_EQ(cell01.snapshot_staleness, 10U);  // 20 - 10
    EXPECT_EQ(cell01.persist_staleness, 10U);
    EXPECT_EQ(cell01.snapshots, 1U);
    EXPECT_EQ(cell01.snapshot_bytes, 100U);
    EXPECT_EQ(cell01.persist_bytes, 50U);
    // A never-saved cell is stale all the way back to iteration 0.
    EXPECT_EQ(snap[0].snapshot_staleness, 20U);
}

TEST(ObsExpertStats, RecoveryClampsBookkeeping) {
    auto& stats = obs::ExpertStatsRegistry::Instance();
    stats.Configure(1, 2);
    stats.SetIteration(30);
    stats.OnSnapshot(0, 0, 30, 10);
    stats.SetLostTokens(0, 1, 77);
    stats.OnRecovery(/*restart_iteration=*/20);  // iteration 30 was erased
    const auto snap = stats.Snapshot();
    EXPECT_EQ(snap[0].last_snapshot_iteration, 20U);
    EXPECT_EQ(snap[0].snapshot_staleness, 0U);
    EXPECT_EQ(snap[1].lost_tokens, 77U);
}

TEST(ObsExpertStats, ResetAllResetsExpertGrid) {
    auto& stats = obs::ExpertStatsRegistry::Instance();
    stats.Configure(1, 2);
    stats.SetIteration(5);
    stats.OnSnapshot(0, 0, 5, 10);
    stats.SetLostTokens(0, 1, 9);
    MetricsRegistry::Instance().ResetAll();
    const auto snap = stats.Snapshot();
    ASSERT_EQ(snap.size(), 2U);  // shape survives, values don't
    EXPECT_EQ(snap[0].snapshots, 0U);
    EXPECT_EQ(snap[0].snapshot_bytes, 0U);
    EXPECT_EQ(snap[0].snapshot_staleness, 0U);
    EXPECT_EQ(snap[1].lost_tokens, 0U);
    EXPECT_EQ(snap[1].layer, 0U);
    EXPECT_EQ(snap[1].expert, 1U);
}

TEST(ObsExpertStats, OutOfRangeCellThrows) {
    auto& stats = obs::ExpertStatsRegistry::Instance();
    stats.Configure(1, 2);
    EXPECT_THROW(stats.OnSnapshot(1, 0, 0, 0), std::invalid_argument);
    EXPECT_THROW(stats.OnPersist(0, 2, 0, 0), std::invalid_argument);
}

// ---------- Event journal ----------

TEST(ObsJournal, KindNamesRoundTrip) {
    for (const obs::EventKind kind :
         {obs::EventKind::kCkptBegin, obs::EventKind::kCkptEnd,
          obs::EventKind::kSnapshot, obs::EventKind::kPersist,
          obs::EventKind::kFault, obs::EventKind::kRecoveryBegin,
          obs::EventKind::kRecoveryEnd, obs::EventKind::kDynamicKBump}) {
        EXPECT_EQ(obs::EventKindFromName(obs::EventKindName(kind)), kind);
    }
    EXPECT_THROW(obs::EventKindFromName("bogus"), std::invalid_argument);
}

TEST(ObsJournal, AppendStampsSequenceAndWallClock) {
    auto& journal = obs::EventJournal::Instance();
    journal.Clear();
    const std::uint64_t s0 =
        journal.Append({.kind = obs::EventKind::kCkptBegin,
                        .iteration = 1,
                        .detail = {}});
    const std::uint64_t s1 =
        journal.Append({.kind = obs::EventKind::kCkptEnd,
                        .iteration = 1,
                        .bytes = 42,
                        .plt = 0.01,
                        .k = 4,
                        .detail = {}});
    EXPECT_EQ(s1, s0 + 1);
    const auto events = journal.Collect();
    ASSERT_EQ(events.size(), 2U);
    EXPECT_GE(events[1].wall_s, events[0].wall_s);
    EXPECT_EQ(events[1].bytes, 42U);
    journal.Clear();
    EXPECT_EQ(journal.size(), 0U);
    EXPECT_EQ(journal.dropped(), 0U);
}

TEST(ObsJournal, JsonlRoundTripPreservesEveryField) {
    auto& journal = obs::EventJournal::Instance();
    journal.Clear();
    journal.Append({.kind = obs::EventKind::kSnapshot,
                    .iteration = 12,
                    .scope = 3,
                    .bytes = 1024,
                    .detail = "moe/0/expert/1/w"});
    journal.Append({.kind = obs::EventKind::kFault,
                    .iteration = 17,
                    .scope = 1,
                    .detail = "nodes=1,3 \"quoted\"\n"});
    journal.Append({.kind = obs::EventKind::kRecoveryEnd,
                    .iteration = 12,
                    .bytes = 2048,
                    .plt = 0.0375,
                    .k = 8,
                    .detail = {}});

    const std::string jsonl = obs::EventsJsonl();
    // Line 1 is the meta header carrying the run metadata.
    EXPECT_EQ(jsonl.find("{\"type\": \"meta\""), 0U);
    EXPECT_NE(jsonl.find("\"schema\": \"moc-obs/1\""), std::string::npos);

    const auto parsed = obs::ParseEventsJsonl(jsonl);
    const auto original = journal.Collect();
    ASSERT_EQ(parsed.size(), original.size());
    for (std::size_t i = 0; i < parsed.size(); ++i) {
        EXPECT_EQ(parsed[i].kind, original[i].kind) << "event " << i;
        EXPECT_EQ(parsed[i].seq, original[i].seq);
        EXPECT_NEAR(parsed[i].wall_s, original[i].wall_s, 1e-9);
        EXPECT_EQ(parsed[i].iteration, original[i].iteration);
        EXPECT_EQ(parsed[i].scope, original[i].scope);
        EXPECT_EQ(parsed[i].bytes, original[i].bytes);
        EXPECT_NEAR(parsed[i].plt, original[i].plt, 1e-12);
        EXPECT_EQ(parsed[i].k, original[i].k);
        EXPECT_EQ(parsed[i].detail, original[i].detail);
    }
    journal.Clear();
}

TEST(ObsJournal, ParseRejectsMalformedLines) {
    EXPECT_THROW(obs::ParseEventsJsonl("{\"type\": \"snapshot\", }"),
                 std::invalid_argument);
    EXPECT_THROW(obs::ParseEventsJsonl("{\"type\": \"no_such_event\"}"),
                 std::invalid_argument);
    EXPECT_THROW(obs::ParseEventsJsonl("not json at all"),
                 std::invalid_argument);
    // Blank lines and the meta record are fine.
    EXPECT_TRUE(obs::ParseEventsJsonl("\n{\"type\": \"meta\"}\n\n").empty());
}

// ---------- Metrics JSON round-trip (writer vs the json reader) ----------

TEST(ObsExport, MetricsJsonRoundTripsThroughReader) {
    auto& registry = MetricsRegistry::Instance();
    registry.ResetAll();
    registry.GetCounter("obs_test.rt_counter").Add(17);
    registry.GetGauge("obs_test.rt_gauge").Set(-2.5);
    auto& hist = registry.GetHistogram("obs_test.rt_hist", {1.0, 2.0});
    hist.Observe(0.5);
    hist.Observe(1.5);
    hist.Observe(99.0);
    auto& stats = obs::ExpertStatsRegistry::Instance();
    stats.Configure(1, 2);
    stats.SetIteration(8);
    stats.OnSnapshot(0, 1, 8, 64);

    const json::Value root = json::Parse(obs::MetricsJson());
    EXPECT_EQ(root.At("meta").At("schema").AsString(), "moc-obs/1");
    EXPECT_DOUBLE_EQ(root.At("counters").At("obs_test.rt_counter").AsNumber(),
                     17.0);
    EXPECT_DOUBLE_EQ(root.At("gauges").At("obs_test.rt_gauge").AsNumber(), -2.5);
    const json::Value& h = root.At("histograms").At("obs_test.rt_hist");
    EXPECT_DOUBLE_EQ(h.At("count").AsNumber(), 3.0);
    EXPECT_DOUBLE_EQ(h.At("sum").AsNumber(), 101.0);
    const json::Array& buckets = h.At("buckets").AsArray();
    ASSERT_EQ(buckets.size(), 3U);  // two bounds + overflow
    EXPECT_DOUBLE_EQ(buckets[0].At("count").AsNumber(), 1.0);
    EXPECT_TRUE(buckets[2].At("le").is_string());  // "+inf"
    const json::Array& experts = root.At("experts").AsArray();
    ASSERT_EQ(experts.size(), 2U);
    EXPECT_DOUBLE_EQ(experts[1].At("snapshot_bytes").AsNumber(), 64.0);
    EXPECT_DOUBLE_EQ(experts[1].At("last_snapshot_iteration").AsNumber(), 8.0);
    registry.ResetAll();
}

// ---------- Prometheus exporter ----------

TEST(ObsPrometheus, MetricNameMangling) {
    EXPECT_EQ(obs::PromMetricName("ckpt.persist_bytes"),
              "moc_ckpt_persist_bytes");
    EXPECT_EQ(obs::PromMetricName("weird-name/with:stuff"),
              "moc_weird_name_with_stuff");
}

TEST(ObsPrometheus, TextRoundTripsThroughParser) {
    auto& registry = MetricsRegistry::Instance();
    registry.ResetAll();
    registry.GetCounter("obs_test.prom_counter").Add(9);
    registry.GetGauge("obs_test.prom_gauge").Set(1.25);
    auto& hist = registry.GetHistogram("obs_test.prom_hist", {1.0, 2.0});
    hist.Observe(0.5);
    hist.Observe(1.5);
    hist.Observe(9.0);
    auto& stats = obs::ExpertStatsRegistry::Instance();
    stats.Configure(1, 2);
    stats.SetIteration(4);
    stats.OnPersist(0, 0, 4, 32);

    const std::string text = obs::MetricsPrometheus();
    const auto samples = obs::ParsePrometheusText(text);
    const auto find = [&](const std::string& name,
                          const std::map<std::string, std::string>& labels)
        -> const obs::PromSample* {
        for (const auto& s : samples) {
            if (s.name == name && s.labels == labels) {
                return &s;
            }
        }
        return nullptr;
    };

    const auto* info = find("moc_run_info", {});
    // run_info carries labels, so an exact-label lookup won't match; find by
    // name instead and check the schema label.
    if (info == nullptr) {
        for (const auto& s : samples) {
            if (s.name == "moc_run_info") {
                info = &s;
                break;
            }
        }
    }
    ASSERT_NE(info, nullptr);
    EXPECT_EQ(info->labels.at("schema"), "moc-obs/1");
    EXPECT_DOUBLE_EQ(info->value, 1.0);

    const auto* counter = find("moc_obs_test_prom_counter", {});
    ASSERT_NE(counter, nullptr);
    EXPECT_DOUBLE_EQ(counter->value, 9.0);

    const auto* gauge = find("moc_obs_test_prom_gauge", {});
    ASSERT_NE(gauge, nullptr);
    EXPECT_DOUBLE_EQ(gauge->value, 1.25);

    // Histogram: cumulative buckets, +Inf == count, sum preserved.
    const auto* le1 = find("moc_obs_test_prom_hist_bucket", {{"le", "1"}});
    const auto* le2 = find("moc_obs_test_prom_hist_bucket", {{"le", "2"}});
    const auto* inf = find("moc_obs_test_prom_hist_bucket", {{"le", "+Inf"}});
    const auto* sum = find("moc_obs_test_prom_hist_sum", {});
    const auto* count = find("moc_obs_test_prom_hist_count", {});
    ASSERT_TRUE(le1 && le2 && inf && sum && count);
    EXPECT_DOUBLE_EQ(le1->value, 1.0);
    EXPECT_DOUBLE_EQ(le2->value, 2.0);  // cumulative
    EXPECT_DOUBLE_EQ(inf->value, 3.0);
    EXPECT_DOUBLE_EQ(sum->value, 11.0);
    EXPECT_DOUBLE_EQ(count->value, 3.0);

    // Expert grid series carry (layer, expert) labels.
    const auto* bytes = find("moc_expert_persist_bytes_total",
                             {{"layer", "0"}, {"expert", "0"}});
    ASSERT_NE(bytes, nullptr);
    EXPECT_DOUBLE_EQ(bytes->value, 32.0);
    registry.ResetAll();
}

TEST(ObsPrometheus, ParserRejectsJunkAndHandlesEscapes) {
    EXPECT_THROW(obs::ParsePrometheusText("no_value_here\n"),
                 std::invalid_argument);
    EXPECT_THROW(obs::ParsePrometheusText("name{unclosed=\"x\" 1\n"),
                 std::invalid_argument);
    const auto samples = obs::ParsePrometheusText(
        "# HELP x y\n# TYPE x gauge\n"
        "x{a=\"es\\\\c\\\"ap\\ne\"} 4.5\nplain 1\ninf_val +Inf\n");
    ASSERT_EQ(samples.size(), 3U);
    EXPECT_EQ(samples[0].labels.at("a"), "es\\c\"ap\ne");
    EXPECT_DOUBLE_EQ(samples[0].value, 4.5);
    EXPECT_TRUE(std::isinf(samples[2].value));
}

// ---------- Multi-thread smoke test (meaningful under TSan) ----------

TEST(ObsSmoke, ConcurrentMetricsTracingAndLogging) {
    auto& registry = MetricsRegistry::Instance();
    Counter& counter = registry.GetCounter("obs_test.smoke_counter");
    Gauge& gauge = registry.GetGauge("obs_test.smoke_gauge");
    Histogram& hist = registry.GetHistogram("obs_test.smoke_hist", {0.25, 0.75});
    counter.Reset();
    hist.Reset();

    Tracer& tracer = Tracer::Instance();
    tracer.Clear();
    tracer.set_enabled(true);
    const LogLevel old_level = Logger::Instance().level();

    constexpr std::size_t kThreads = 8;
    constexpr std::size_t kIters = 2000;
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
        workers.emplace_back([&, t] {
            for (std::size_t i = 0; i < kIters; ++i) {
                const TraceSpan span("obs_test.smoke_span", "test");
                counter.Add();
                gauge.Set(static_cast<double>(t));
                hist.Observe(static_cast<double>(i % 100) / 100.0);
                // Exercises the Logger::level_ read against set_level below
                // (kDebug stays below both toggled levels, so no output).
                MOC_DEBUG << "smoke " << t << ":" << i;
            }
        });
    }
    // One thread flips the log level while the workers log...
    std::thread toggler([&] {
        for (std::size_t i = 0; i < 500; ++i) {
            Logger::Instance().set_level(i % 2 == 0 ? LogLevel::kWarn
                                                    : LogLevel::kError);
        }
    });
    // ...and one thread exports while everything is being written.
    std::thread exporter([&] {
        for (std::size_t i = 0; i < 20; ++i) {
            (void)obs::MetricsJson();
            (void)obs::ChromeTraceJson();
            (void)tracer.TotalDropped();
        }
    });
    for (auto& worker : workers) {
        worker.join();
    }
    toggler.join();
    exporter.join();
    tracer.set_enabled(false);
    Logger::Instance().set_level(old_level);

    EXPECT_EQ(counter.value(), kThreads * kIters);
    EXPECT_EQ(hist.count(), kThreads * kIters);
    const double g = gauge.value();
    EXPECT_GE(g, 0.0);
    EXPECT_LT(g, static_cast<double>(kThreads));
    // Every ring holds at most capacity events; nothing crashed or tore.
    const auto events = tracer.Collect();
    EXPECT_LE(events.size(), kThreads * Tracer::kRingCapacity);
    EXPECT_GT(events.size(), 0U);
    tracer.Clear();
}

}  // namespace
}  // namespace moc
