/**
 * @file
 * System-level property tests:
 *  - fault transparency: with full checkpointing, training with faults at
 *    arbitrary points produces bit-identical results to fault-free training;
 *  - PEC recovery exactness: after any fault, every expert's weights are
 *    bit-identical to a state that was actually checkpointed, at exactly the
 *    iteration the recovery plan reports;
 *  - CSV writer round-trip properties.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>

#include "core/moc_system.h"
#include "data/corpus.h"
#include "faults/trainer.h"
#include "nn/adam.h"
#include "nn/model.h"
#include "util/csv.h"

namespace moc {
namespace {

LmConfig
TinyLm() {
    LmConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.hidden = 16;
    cfg.num_heads = 2;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 4;
    cfg.seed = 5;
    return cfg;
}

struct LmFixtures {
    CorpusConfig corpus_cfg;
    ZipfMarkovCorpus corpus;
    LmBatchStream train;
    LmBatchStream valid;

    LmFixtures()
        : corpus_cfg([] {
              CorpusConfig c;
              c.vocab_size = 32;
              c.seed = 3;
              return c;
          }()),
          corpus(corpus_cfg),
          train(corpus, 4, 12, 0),
          valid(corpus, 4, 12, 1) {}
};

// ---------- Fault transparency ----------

class FaultTransparency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FaultTransparency, FullCheckpointingMakesFaultsInvisible) {
    LmFixtures fx;
    LmTrainerConfig cfg;
    cfg.moc.pec.k_snapshot = 4;
    cfg.moc.pec.k_persist = 4;  // full state every checkpoint
    cfg.moc.i_ckpt = 6;
    cfg.parallel = {.dp = 4, .ep = 4, .tp = 1, .pp = 1};
    cfg.gpus_per_node = 2;
    cfg.total_iterations = 42;
    cfg.adam.lr = 3e-3;

    MoeTransformerLm reference(TinyLm());
    FaultInjector none(std::vector<FaultEvent>{});
    const auto ref_log =
        RunFaultTolerantLmTraining(reference, fx.train, fx.valid, cfg, none);

    // A random schedule of 1-3 faults at random iterations/nodes.
    Rng rng(GetParam());
    std::vector<FaultEvent> events;
    const std::size_t n_faults = 1 + rng.UniformInt(3);
    for (std::size_t i = 0; i < n_faults; ++i) {
        events.push_back(FaultEvent{6 + rng.UniformInt(34),
                                    {static_cast<NodeId>(rng.UniformInt(2))}});
    }
    FaultInjector injector(std::move(events));
    MoeTransformerLm faulty(TinyLm());
    const auto log =
        RunFaultTolerantLmTraining(faulty, fx.train, fx.valid, cfg, injector);

    EXPECT_DOUBLE_EQ(log.plt, 0.0);
    EXPECT_DOUBLE_EQ(log.final_eval_loss, ref_log.final_eval_loss);
    // Final weights bit-identical.
    const auto ref_params = reference.AllParameters();
    const auto params = faulty.AllParameters();
    ASSERT_EQ(ref_params.size(), params.size());
    for (std::size_t i = 0; i < params.size(); ++i) {
        EXPECT_TRUE(params[i]->value().AllClose(ref_params[i]->value(), 0.0F))
            << params[i]->name();
    }
}

INSTANTIATE_TEST_SUITE_P(Schedules, FaultTransparency,
                         ::testing::Values(11, 22, 33, 44));

// ---------- PEC recovery exactness ----------

class PecExactness : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PecExactness, RecoveredExpertsMatchACheckpointedState) {
    LmFixtures fx;
    MoeTransformerLm model(TinyLm());
    RankTopology topo({.dp = 4, .ep = 4, .tp = 1, .pp = 1}, 2);
    MocSystemConfig cfg;
    cfg.pec.k_snapshot = 2;
    cfg.pec.k_persist = 1;
    cfg.i_ckpt = 4;
    cfg.two_level_recovery = (GetParam() % 2) == 0;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, model, topo, TinyLm().ToModelSpec(), extra);

    Adam adam(AdamConfig{.lr = 3e-3});
    const auto params = model.AllParameters();

    // Test-side history: (expert group key, iteration) -> first-param copy.
    std::map<std::pair<std::string, std::size_t>, Tensor> history;
    auto snapshot_history = [&](std::size_t iteration) {
        for (auto& g : model.ParameterGroups()) {
            if (g.kind == ModuleKind::kExpert) {
                history[{g.key, iteration}] = g.params.front()->value();
            }
        }
    };
    snapshot_history(0);

    Rng rng(GetParam());
    std::size_t iter = 0;
    while (iter < 24) {
        model.TrainBackward(fx.train.Get(iter));
        system.RecordRouting(model.MoeLayers());
        adam.Step(params);
        ++iter;
        if (system.ShouldCheckpoint(iter)) {
            system.Checkpoint(iter, {iter, adam.step_count(),
                                     model.gating_rng().GetState()});
            snapshot_history(iter);
        }
    }

    const NodeId victim = static_cast<NodeId>(rng.UniformInt(2));
    const auto report = system.RecoverFromFault({victim});
    // Every expert must now hold EXACTLY the state recorded at its reported
    // recovery iteration.
    std::size_t checked = 0;
    for (auto& g : model.ParameterGroups()) {
        if (g.kind != ModuleKind::kExpert) {
            continue;
        }
        const std::size_t recovered_iter =
            report.plan.expert_recovered_iteration[g.moe_index][g.expert];
        const auto it = history.find({g.key, recovered_iter});
        ASSERT_NE(it, history.end())
            << g.key << " recovered at unrecorded iteration " << recovered_iter;
        EXPECT_TRUE(g.params.front()->value().AllClose(it->second, 0.0F))
            << g.key << " @ " << recovered_iter;
        ++checked;
    }
    EXPECT_EQ(checked, 4U);  // 1 MoE layer (layer 1 of 2) x 4 experts
}

INSTANTIATE_TEST_SUITE_P(Seeds, PecExactness, ::testing::Values(1, 2, 3, 4, 5, 6));

// ---------- CsvWriter ----------

TEST(Csv, BasicRender) {
    CsvWriter csv({"a", "b"});
    csv.AddRow({"1", "2"});
    csv.AddRow({"x,y", "he said \"hi\""});
    const std::string out = csv.ToString();
    EXPECT_NE(out.find("a,b\n"), std::string::npos);
    EXPECT_NE(out.find("\"x,y\""), std::string::npos);
    EXPECT_NE(out.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Csv, ArityEnforced) {
    CsvWriter csv({"a", "b"});
    EXPECT_THROW(csv.AddRow({"only"}), std::invalid_argument);
}

TEST(Csv, WritesFile) {
    CsvWriter csv({"k", "v"});
    csv.AddRow({"x", "1"});
    const std::string path = "/tmp/moc_csv_test/sub/out.csv";
    ASSERT_TRUE(csv.WriteFile(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "k,v");
    std::filesystem::remove_all("/tmp/moc_csv_test");
}

}  // namespace
}  // namespace moc
