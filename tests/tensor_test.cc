/**
 * @file
 * Unit tests for the tensor module: shape/data semantics, math kernels
 * (validated against hand computations and finite differences), and the
 * checkpoint serialization format.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace moc {
namespace {

// ---------- Tensor basics ----------

TEST(Tensor, ZeroInitialized) {
    Tensor t({2, 3});
    EXPECT_EQ(t.size(), 6U);
    EXPECT_EQ(t.rank(), 2U);
    for (std::size_t i = 0; i < t.size(); ++i) {
        EXPECT_EQ(t[i], 0.0F);
    }
}

TEST(Tensor, FromValuesAndAt) {
    auto t = Tensor::FromValues(2, 2, {1, 2, 3, 4});
    EXPECT_EQ(t.At(0, 0), 1.0F);
    EXPECT_EQ(t.At(0, 1), 2.0F);
    EXPECT_EQ(t.At(1, 0), 3.0F);
    EXPECT_EQ(t.At(1, 1), 4.0F);
}

TEST(Tensor, FromValuesRejectsSizeMismatch) {
    EXPECT_THROW(Tensor::FromValues(2, 2, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ValueSemanticsCopy) {
    auto a = Tensor::FromValues(1, 2, {1, 2});
    Tensor b = a;
    b[0] = 99.0F;
    EXPECT_EQ(a[0], 1.0F);
}

TEST(Tensor, ReshapePreservesData) {
    auto t = Tensor::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
    auto r = t.Reshape({3, 2});
    EXPECT_EQ(r.At(2, 1), 6.0F);
    EXPECT_THROW(t.Reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, RowExtracts) {
    auto t = Tensor::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
    auto row = t.Row(1);
    EXPECT_EQ(row.rank(), 1U);
    EXPECT_EQ(row[0], 4.0F);
    EXPECT_EQ(row[2], 6.0F);
}

TEST(Tensor, SumMeanNorm) {
    auto t = Tensor::FromValues(1, 4, {1, 2, 3, 4});
    EXPECT_DOUBLE_EQ(t.Sum(), 10.0);
    EXPECT_DOUBLE_EQ(t.Mean(), 2.5);
    EXPECT_NEAR(t.Norm(), std::sqrt(30.0), 1e-6);
}

TEST(Tensor, RandnStatistics) {
    Rng rng(1);
    auto t = Tensor::Randn({100, 100}, rng, 2.0F);
    EXPECT_NEAR(t.Mean(), 0.0, 0.05);
    double sq = 0.0;
    for (std::size_t i = 0; i < t.size(); ++i) {
        sq += static_cast<double>(t[i]) * t[i];
    }
    EXPECT_NEAR(std::sqrt(sq / static_cast<double>(t.size())), 2.0, 0.05);
}

TEST(Tensor, AllCloseToleratesEpsilon) {
    auto a = Tensor::FromValues(1, 2, {1.0F, 2.0F});
    auto b = Tensor::FromValues(1, 2, {1.0F + 1e-6F, 2.0F});
    EXPECT_TRUE(a.AllClose(b, 1e-5F));
    EXPECT_FALSE(a.AllClose(b, 1e-8F));
}

// ---------- MatMul family ----------

TEST(Ops, MatMulHandComputed) {
    auto a = Tensor::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
    auto b = Tensor::FromValues(3, 2, {7, 8, 9, 10, 11, 12});
    auto c = MatMul(a, b);
    EXPECT_EQ(c.At(0, 0), 58.0F);
    EXPECT_EQ(c.At(0, 1), 64.0F);
    EXPECT_EQ(c.At(1, 0), 139.0F);
    EXPECT_EQ(c.At(1, 1), 154.0F);
}

TEST(Ops, MatMulRejectsInnerMismatch) {
    Tensor a({2, 3});
    Tensor b({4, 2});
    EXPECT_THROW(MatMul(a, b), std::invalid_argument);
}

TEST(Ops, MatMulTransAMatchesExplicitTranspose) {
    Rng rng(2);
    auto a = Tensor::Randn({4, 3}, rng, 1.0F);  // [k, m]
    auto b = Tensor::Randn({4, 5}, rng, 1.0F);  // [k, n]
    auto c = MatMulTransA(a, b);                // [m, n]
    // Explicit: c[m][n] = sum_k a[k][m] * b[k][n].
    for (std::size_t m = 0; m < 3; ++m) {
        for (std::size_t n = 0; n < 5; ++n) {
            double acc = 0.0;
            for (std::size_t k = 0; k < 4; ++k) {
                acc += static_cast<double>(a.At(k, m)) * b.At(k, n);
            }
            EXPECT_NEAR(c.At(m, n), acc, 1e-4);
        }
    }
}

TEST(Ops, MatMulTransBMatchesExplicitTranspose) {
    Rng rng(3);
    auto a = Tensor::Randn({2, 4}, rng, 1.0F);  // [m, n]
    auto b = Tensor::Randn({3, 4}, rng, 1.0F);  // [k, n]
    auto c = MatMulTransB(a, b);                // [m, k]
    for (std::size_t m = 0; m < 2; ++m) {
        for (std::size_t k = 0; k < 3; ++k) {
            double acc = 0.0;
            for (std::size_t n = 0; n < 4; ++n) {
                acc += static_cast<double>(a.At(m, n)) * b.At(k, n);
            }
            EXPECT_NEAR(c.At(m, k), acc, 1e-4);
        }
    }
}

// ---------- Elementwise ----------

TEST(Ops, AddMulScaleAxpy) {
    auto a = Tensor::FromValues(1, 3, {1, 2, 3});
    auto b = Tensor::FromValues(1, 3, {10, 20, 30});
    EXPECT_EQ(Add(a, b).At(0, 2), 33.0F);
    EXPECT_EQ(Mul(a, b).At(0, 1), 40.0F);
    EXPECT_EQ(Scale(a, 2.0F).At(0, 0), 2.0F);
    Axpy(a, b, 0.5F);
    EXPECT_EQ(a.At(0, 0), 6.0F);
}

TEST(Ops, AddRowBiasAndSumRows) {
    auto x = Tensor::FromValues(2, 2, {1, 2, 3, 4});
    auto bias = Tensor::FromVector({10, 20});
    AddRowBias(x, bias);
    EXPECT_EQ(x.At(1, 1), 24.0F);
    auto sums = SumRows(x);
    EXPECT_EQ(sums[0], 24.0F);  // 11 + 13
    EXPECT_EQ(sums[1], 46.0F);  // 22 + 24
}

// ---------- Softmax ----------

TEST(Ops, RowSoftmaxSumsToOne) {
    Rng rng(4);
    auto x = Tensor::Randn({5, 7}, rng, 3.0F);
    auto y = RowSoftmax(x);
    for (std::size_t r = 0; r < 5; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < 7; ++c) {
            sum += y.At(r, c);
            EXPECT_GT(y.At(r, c), 0.0F);
        }
        EXPECT_NEAR(sum, 1.0, 1e-5);
    }
}

TEST(Ops, RowSoftmaxStableForLargeLogits) {
    auto x = Tensor::FromValues(1, 2, {1000.0F, 1000.0F});
    auto y = RowSoftmax(x);
    EXPECT_NEAR(y.At(0, 0), 0.5F, 1e-6F);
}

TEST(Ops, RowSoftmaxBackwardFiniteDifference) {
    Rng rng(5);
    auto x = Tensor::Randn({2, 4}, rng, 1.0F);
    auto dy = Tensor::Randn({2, 4}, rng, 1.0F);
    auto y = RowSoftmax(x);
    auto dx = RowSoftmaxBackward(y, dy);
    const float eps = 1e-3F;
    for (std::size_t i = 0; i < x.size(); ++i) {
        Tensor xp = x;
        Tensor xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        auto yp = RowSoftmax(xp);
        auto ym = RowSoftmax(xm);
        double num = 0.0;
        for (std::size_t j = 0; j < x.size(); ++j) {
            num += static_cast<double>(yp[j] - ym[j]) / (2.0 * eps) * dy[j];
        }
        EXPECT_NEAR(dx[i], num, 5e-3);
    }
}

// ---------- Activations ----------

TEST(Ops, GeluKnownValues) {
    auto x = Tensor::FromVector({0.0F, 1.0F, -1.0F});
    auto y = Gelu(x.Reshape({1, 3}));
    EXPECT_NEAR(y[0], 0.0F, 1e-6F);
    EXPECT_NEAR(y[1], 0.8412F, 1e-3F);
    EXPECT_NEAR(y[2], -0.1588F, 1e-3F);
}

TEST(Ops, GeluBackwardFiniteDifference) {
    Rng rng(6);
    auto x = Tensor::Randn({1, 8}, rng, 1.0F);
    Tensor dy({1, 8});
    dy.Fill(1.0F);
    auto dx = GeluBackward(x, dy);
    const float eps = 1e-3F;
    for (std::size_t i = 0; i < x.size(); ++i) {
        Tensor xp = x;
        Tensor xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        const double num =
            static_cast<double>(Gelu(xp)[i] - Gelu(xm)[i]) / (2.0 * eps);
        EXPECT_NEAR(dx[i], num, 5e-3);
    }
}

TEST(Ops, ReluAndBackward) {
    auto x = Tensor::FromValues(1, 4, {-1, 0, 2, -3});
    auto y = Relu(x);
    EXPECT_EQ(y[0], 0.0F);
    EXPECT_EQ(y[2], 2.0F);
    Tensor dy({1, 4});
    dy.Fill(1.0F);
    auto dx = ReluBackward(x, dy);
    EXPECT_EQ(dx[0], 0.0F);
    EXPECT_EQ(dx[2], 1.0F);
}

// ---------- LayerNorm ----------

TEST(Ops, LayerNormNormalizesRows) {
    Rng rng(7);
    auto x = Tensor::Randn({4, 16}, rng, 3.0F);
    Tensor gain({16});
    gain.Fill(1.0F);
    Tensor bias({16});
    std::vector<float> mean;
    std::vector<float> rstd;
    auto y = LayerNormForward(x, gain, bias, mean, rstd);
    for (std::size_t r = 0; r < 4; ++r) {
        double mu = 0.0;
        double var = 0.0;
        for (std::size_t c = 0; c < 16; ++c) {
            mu += y.At(r, c);
        }
        mu /= 16.0;
        for (std::size_t c = 0; c < 16; ++c) {
            var += (y.At(r, c) - mu) * (y.At(r, c) - mu);
        }
        var /= 16.0;
        EXPECT_NEAR(mu, 0.0, 1e-4);
        EXPECT_NEAR(var, 1.0, 1e-2);
    }
}

TEST(Ops, LayerNormBackwardFiniteDifference) {
    Rng rng(8);
    auto x = Tensor::Randn({2, 6}, rng, 1.0F);
    auto gain = Tensor::Randn({6}, rng, 0.5F);
    auto bias = Tensor::Randn({6}, rng, 0.5F);
    auto dy = Tensor::Randn({2, 6}, rng, 1.0F);

    std::vector<float> mean;
    std::vector<float> rstd;
    LayerNormForward(x, gain, bias, mean, rstd);
    Tensor dgain({6});
    Tensor dbias({6});
    auto dx = LayerNormBackward(x, dy, gain, mean, rstd, dgain, dbias);

    auto loss = [&](const Tensor& xx) {
        std::vector<float> m;
        std::vector<float> r;
        auto y = LayerNormForward(xx, gain, bias, m, r);
        double l = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i) {
            l += static_cast<double>(y[i]) * dy[i];
        }
        return l;
    };
    const float eps = 1e-3F;
    for (std::size_t i = 0; i < x.size(); ++i) {
        Tensor xp = x;
        Tensor xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        const double num = (loss(xp) - loss(xm)) / (2.0 * eps);
        EXPECT_NEAR(dx[i], num, 5e-3);
    }
}

// ---------- CrossEntropy ----------

TEST(Ops, CrossEntropyUniformLogits) {
    Tensor logits({2, 4});
    std::vector<int> targets{0, 3};
    const double loss = CrossEntropy(logits, targets, nullptr);
    EXPECT_NEAR(loss, std::log(4.0), 1e-6);
}

TEST(Ops, CrossEntropyGradientFiniteDifference) {
    Rng rng(9);
    auto logits = Tensor::Randn({3, 5}, rng, 1.0F);
    std::vector<int> targets{1, 4, 0};
    Tensor dlogits;
    CrossEntropy(logits, targets, &dlogits);
    const float eps = 1e-3F;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        Tensor lp = logits;
        Tensor lm = logits;
        lp[i] += eps;
        lm[i] -= eps;
        const double num = (CrossEntropy(lp, targets, nullptr) -
                            CrossEntropy(lm, targets, nullptr)) /
                           (2.0 * eps);
        EXPECT_NEAR(dlogits[i], num, 5e-3);
    }
}

TEST(Ops, CrossEntropyIgnoreIndexSkips) {
    Tensor logits({2, 3});
    logits.At(0, 1) = 10.0F;
    std::vector<int> targets{1, kIgnoreIndex};
    Tensor dlogits;
    const double loss = CrossEntropy(logits, targets, &dlogits);
    EXPECT_LT(loss, 0.01);
    // Ignored row contributes no gradient.
    for (std::size_t c = 0; c < 3; ++c) {
        EXPECT_EQ(dlogits.At(1, c), 0.0F);
    }
}

TEST(Ops, RowArgmaxPicksMax) {
    auto x = Tensor::FromValues(2, 3, {1, 5, 2, 9, 0, 3});
    const auto idx = RowArgmax(x);
    EXPECT_EQ(idx[0], 1);
    EXPECT_EQ(idx[1], 0);
}

// ---------- Serialization ----------

TEST(Serialize, RoundTripPreservesEverything) {
    Rng rng(10);
    auto t = Tensor::Randn({3, 4, 5}, rng, 1.0F);
    const auto blob = SerializeTensor(t);
    EXPECT_EQ(blob.size(), SerializedTensorSize(t));
    const auto back = DeserializeTensor(blob);
    EXPECT_TRUE(back.AllClose(t, 0.0F));
    EXPECT_EQ(back.shape(), t.shape());
}

TEST(Serialize, DetectsCorruption) {
    Rng rng(11);
    auto t = Tensor::Randn({8}, rng, 1.0F);
    auto blob = SerializeTensor(t);
    blob[blob.size() / 2] ^= 0xFF;
    EXPECT_THROW(DeserializeTensor(blob), std::runtime_error);
}

TEST(Serialize, DetectsTruncation) {
    Rng rng(12);
    auto t = Tensor::Randn({8}, rng, 1.0F);
    auto blob = SerializeTensor(t);
    blob.resize(blob.size() - 5);
    EXPECT_THROW(DeserializeTensor(blob), std::runtime_error);
}

TEST(Serialize, RejectsGarbage) {
    std::vector<std::uint8_t> garbage(64, 0x42);
    EXPECT_THROW(DeserializeTensor(garbage), std::runtime_error);
}

}  // namespace
}  // namespace moc
