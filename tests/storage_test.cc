/**
 * @file
 * Unit tests for the storage module: memory/persistent stores, node-failure
 * semantics, the I/O cost model, and the two-level checkpoint manifest.
 */

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "storage/manifest.h"
#include "storage/memory_store.h"
#include "storage/persistent_store.h"

namespace moc {
namespace {

Blob
MakeBlob(std::size_t size, std::uint8_t fill) {
    return Blob(size, fill);
}

// ---------- MemoryStore ----------

TEST(MemoryStore, PutGetEraseRoundTrip) {
    MemoryStore store;
    store.Put("a", MakeBlob(10, 1));
    ASSERT_TRUE(store.Contains("a"));
    EXPECT_EQ(store.Get("a")->size(), 10U);
    EXPECT_EQ(store.Count(), 1U);
    store.Erase("a");
    EXPECT_FALSE(store.Contains("a"));
    EXPECT_FALSE(store.Get("a").has_value());
}

TEST(MemoryStore, OverwriteUpdatesByteAccounting) {
    MemoryStore store;
    store.Put("a", MakeBlob(10, 1));
    store.Put("a", MakeBlob(30, 2));
    EXPECT_EQ(store.TotalBytes(), 30U);
    EXPECT_EQ(store.Count(), 1U);
    EXPECT_EQ(store.Get("a")->front(), 2);
}

TEST(MemoryStore, KeysSorted) {
    MemoryStore store;
    store.Put("b", MakeBlob(1, 0));
    store.Put("a", MakeBlob(1, 0));
    store.Put("c", MakeBlob(1, 0));
    EXPECT_EQ(store.Keys(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(MemoryStore, ClearDropsEverything) {
    MemoryStore store;
    store.Put("a", MakeBlob(5, 0));
    store.Clear();
    EXPECT_EQ(store.Count(), 0U);
    EXPECT_EQ(store.TotalBytes(), 0U);
}

// ---------- NodeMemoryPool ----------

TEST(NodeMemoryPool, FailWipesOnlyThatNode) {
    NodeMemoryPool pool(3);
    pool.Node(0).Put("x", MakeBlob(5, 0));
    pool.Node(1).Put("x", MakeBlob(5, 0));
    pool.FailNode(0);
    EXPECT_TRUE(pool.IsFailed(0));
    EXPECT_FALSE(pool.Node(0).Contains("x"));
    EXPECT_TRUE(pool.Node(1).Contains("x"));
    EXPECT_EQ(pool.TotalBytes(), 5U);
}

TEST(NodeMemoryPool, RestartClearsFailedFlag) {
    NodeMemoryPool pool(2);
    pool.FailNode(1);
    pool.RestartNode(1);
    EXPECT_FALSE(pool.IsFailed(1));
    pool.Node(1).Put("y", MakeBlob(3, 0));
    EXPECT_TRUE(pool.Node(1).Contains("y"));
}

TEST(NodeMemoryPool, BoundsChecked) {
    NodeMemoryPool pool(2);
    EXPECT_THROW(pool.Node(2), std::invalid_argument);
    EXPECT_THROW(pool.FailNode(5), std::invalid_argument);
}

// ---------- PersistentStore ----------

TEST(PersistentStore, DurableAcrossUse) {
    PersistentStore store;
    store.Put("ckpt/1", MakeBlob(100, 7));
    EXPECT_TRUE(store.Contains("ckpt/1"));
    EXPECT_EQ(store.TotalBytes(), 100U);
    EXPECT_EQ(store.Get("ckpt/1")->at(0), 7);
}

TEST(PersistentStore, TracksBytesWrittenCumulatively) {
    PersistentStore store;
    store.Put("a", MakeBlob(100, 0));
    store.Put("a", MakeBlob(100, 1));  // overwrite still counts as a write
    EXPECT_EQ(store.BytesWritten(), 200U);
    EXPECT_EQ(store.TotalBytes(), 100U);
}

TEST(PersistentStore, IoModelTimes) {
    StorageIoModel io;
    io.write_bandwidth = 100.0;
    io.read_bandwidth = 200.0;
    io.latency = 1.0;
    PersistentStore store(io);
    EXPECT_DOUBLE_EQ(store.WriteTime(100), 2.0);
    EXPECT_DOUBLE_EQ(store.ReadTime(100), 1.5);
}

TEST(PersistentStore, RejectsNonPositiveBandwidth) {
    StorageIoModel io;
    io.write_bandwidth = 0.0;
    EXPECT_THROW(PersistentStore{io}, std::invalid_argument);
}

// ---------- Manifest ----------

TEST(Manifest, PersistLatestSingleVersion) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kPersist, "k", 10, 0, 100);
    manifest.RecordSave(StoreLevel::kPersist, "k", 20, 0, 100);
    const auto v = manifest.Latest(StoreLevel::kPersist, "k");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->iteration, 20U);
}

TEST(Manifest, MemoryKeepsPerNodeReplicas) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kMemory, "k", 10, /*node=*/0, 100);
    manifest.RecordSave(StoreLevel::kMemory, "k", 20, /*node=*/1, 100);
    const auto v = manifest.Latest(StoreLevel::kMemory, "k");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->iteration, 20U);
    EXPECT_EQ(v->node, 1U);
}

TEST(Manifest, DropNodeFallsBackToSurvivingReplica) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kMemory, "k", 10, 0, 100);
    manifest.RecordSave(StoreLevel::kMemory, "k", 20, 1, 100);
    manifest.DropNodeMemory(1);
    const auto v = manifest.Latest(StoreLevel::kMemory, "k");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->iteration, 10U);
    EXPECT_EQ(v->node, 0U);
}

TEST(Manifest, DropNodeRemovesKeyWhenLastReplicaDies) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kMemory, "k", 10, 0, 100);
    manifest.DropNodeMemory(0);
    EXPECT_FALSE(manifest.Latest(StoreLevel::kMemory, "k").has_value());
    EXPECT_TRUE(manifest.KeysAt(StoreLevel::kMemory).empty());
}

TEST(Manifest, DropNodeLeavesPersistUntouched) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kPersist, "k", 10, 0, 100);
    manifest.DropNodeMemory(0);
    EXPECT_TRUE(manifest.Latest(StoreLevel::kPersist, "k").has_value());
}

TEST(Manifest, CompletionMarkers) {
    CheckpointManifest manifest;
    EXPECT_FALSE(manifest.LastCompleteIteration(StoreLevel::kPersist).has_value());
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 32);
    manifest.MarkCheckpointComplete(StoreLevel::kMemory, 48);
    EXPECT_EQ(manifest.LastCompleteIteration(StoreLevel::kPersist).value(), 32U);
    EXPECT_EQ(manifest.LastCompleteIteration(StoreLevel::kMemory).value(), 48U);
}

TEST(Manifest, SameIterationOverwriteAllowed) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kPersist, "k", 10, 0, 100);
    // Replay after recovery rewrites the same iteration: allowed.
    manifest.RecordSave(StoreLevel::kPersist, "k", 10, 0, 120);
    EXPECT_EQ(manifest.Latest(StoreLevel::kPersist, "k")->bytes, 120U);
}

TEST(Manifest, KeysAtListsLevelKeys) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kPersist, "b", 1, 0, 1);
    manifest.RecordSave(StoreLevel::kPersist, "a", 1, 0, 1);
    manifest.RecordSave(StoreLevel::kMemory, "m", 1, 0, 1);
    EXPECT_EQ(manifest.KeysAt(StoreLevel::kPersist),
              (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(manifest.KeysAt(StoreLevel::kMemory),
              (std::vector<std::string>{"m"}));
}

TEST(Manifest, GenerationEligibleOnlyWhenSealedAndAllVerified) {
    CheckpointManifest manifest;
    manifest.RecordPersistVersion("a", 4, 10, 111, /*verified=*/true);
    manifest.RecordPersistVersion("b", 4, 10, 222, /*verified=*/false);
    // Unsealed: not eligible even once every shard verifies.
    EXPECT_TRUE(manifest.EligibleGenerations().empty());
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 4);
    EXPECT_TRUE(manifest.EligibleGenerations().empty());  // b unverified
    manifest.RecordPersistVersion("b", 4, 10, 222, /*verified=*/true);
    EXPECT_EQ(manifest.EligibleGenerations(),
              (std::vector<std::size_t>{4}));
    EXPECT_EQ(manifest.LatestEligibleGeneration().value(), 4U);
}

TEST(Manifest, CorruptShardRemovesGenerationEligibility) {
    CheckpointManifest manifest;
    manifest.RecordPersistVersion("a", 4, 10, 111, true);
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 4);
    manifest.RecordPersistVersion("a", 8, 10, 112, true);
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 8);
    EXPECT_EQ(manifest.EligibleGenerations(),
              (std::vector<std::size_t>{8, 4}));  // newest first
    manifest.MarkPersistCorrupt("a", 8);
    EXPECT_EQ(manifest.EligibleGenerations(),
              (std::vector<std::size_t>{4}));
    manifest.MarkGenerationCorrupt(4);
    EXPECT_TRUE(manifest.EligibleGenerations().empty());
}

TEST(Manifest, FallbackChainSkipsCorruptAndUnverified) {
    CheckpointManifest manifest;
    manifest.RecordPersistVersion("k", 4, 10, 1, true);
    manifest.RecordPersistVersion("k", 8, 10, 2, false);
    manifest.RecordPersistVersion("k", 12, 10, 3, true);
    manifest.RecordPersistVersion("k", 16, 10, 4, true);
    manifest.MarkPersistCorrupt("k", 16);
    const auto chain = manifest.PersistFallbackChain("k", 16);
    ASSERT_EQ(chain.size(), 2U);  // 16 corrupt, 8 unverified
    EXPECT_EQ(chain[0].iteration, 12U);
    EXPECT_EQ(chain[1].iteration, 4U);
    // max_iteration caps the newest candidate.
    const auto capped = manifest.PersistFallbackChain("k", 8);
    ASSERT_EQ(capped.size(), 1U);
    EXPECT_EQ(capped[0].iteration, 4U);
}

TEST(Manifest, PruneKeepsVersionsBackingNewerGenerations) {
    CheckpointManifest manifest;
    // "full" is rewritten every checkpoint; "pec" only at iteration 4
    // (an unselected expert whose old shard backs later generations).
    for (const std::size_t iter : {4, 8, 12, 16}) {
        manifest.RecordPersistVersion("full", iter, 10, iter, true);
        manifest.MarkCheckpointComplete(StoreLevel::kPersist, iter);
    }
    manifest.RecordPersistVersion("pec", 4, 10, 99, true);
    const auto pruned = manifest.PrunePersistGenerations(2);
    // Keeping generations {16, 12}: full@4 and full@8 go; pec@4 stays
    // because it is still the newest usable version of its key.
    EXPECT_EQ(pruned,
              (std::vector<std::pair<std::string, std::size_t>>{
                  {"full", 4}, {"full", 8}}));
    EXPECT_EQ(manifest.PersistFallbackChain("full", 16).size(), 2U);
    EXPECT_EQ(manifest.PersistFallbackChain("pec", 16).size(), 1U);
}

TEST(Manifest, JsonRoundTripPreservesPersistState) {
    CheckpointManifest manifest;
    manifest.RecordPersistVersion("a", 4, 10, 111, true);
    manifest.RecordPersistVersion("b", 4, 20, 222, false);
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 4);
    manifest.RecordPersistVersion("a", 8, 12, 113, true);
    manifest.MarkPersistCorrupt("a", 8);
    manifest.MarkGenerationCorrupt(8);

    CheckpointManifest loaded;
    loaded.LoadFromJson(manifest.ToJson());
    EXPECT_EQ(loaded.ToJson(), manifest.ToJson());
    const auto generations = loaded.Generations();
    ASSERT_EQ(generations.size(), 2U);
    EXPECT_TRUE(generations[0].sealed);
    EXPECT_EQ(generations[0].verified_shards, 1U);  // b stays unverified
    EXPECT_TRUE(generations[1].marked_corrupt);
    EXPECT_EQ(generations[1].corrupt_shards, 1U);
    EXPECT_TRUE(loaded.PersistFallbackChain("a", 8).front().iteration == 4);
    EXPECT_EQ(loaded.LastCompleteIteration(StoreLevel::kPersist).value(), 4U);
}

TEST(Manifest, LoadFromJsonRejectsGarbage) {
    CheckpointManifest manifest;
    EXPECT_THROW(manifest.LoadFromJson("not json"), std::invalid_argument);
    EXPECT_THROW(manifest.LoadFromJson("{\"format\":\"other/9\"}"),
                 std::invalid_argument);
}

}  // namespace
}  // namespace moc
