/**
 * @file
 * Unit tests for the storage module: memory/persistent stores, node-failure
 * semantics, the I/O cost model, and the two-level checkpoint manifest.
 */

#include <gtest/gtest.h>

#include "storage/manifest.h"
#include "storage/memory_store.h"
#include "storage/persistent_store.h"

namespace moc {
namespace {

Blob
MakeBlob(std::size_t size, std::uint8_t fill) {
    return Blob(size, fill);
}

// ---------- MemoryStore ----------

TEST(MemoryStore, PutGetEraseRoundTrip) {
    MemoryStore store;
    store.Put("a", MakeBlob(10, 1));
    ASSERT_TRUE(store.Contains("a"));
    EXPECT_EQ(store.Get("a")->size(), 10U);
    EXPECT_EQ(store.Count(), 1U);
    store.Erase("a");
    EXPECT_FALSE(store.Contains("a"));
    EXPECT_FALSE(store.Get("a").has_value());
}

TEST(MemoryStore, OverwriteUpdatesByteAccounting) {
    MemoryStore store;
    store.Put("a", MakeBlob(10, 1));
    store.Put("a", MakeBlob(30, 2));
    EXPECT_EQ(store.TotalBytes(), 30U);
    EXPECT_EQ(store.Count(), 1U);
    EXPECT_EQ(store.Get("a")->front(), 2);
}

TEST(MemoryStore, KeysSorted) {
    MemoryStore store;
    store.Put("b", MakeBlob(1, 0));
    store.Put("a", MakeBlob(1, 0));
    store.Put("c", MakeBlob(1, 0));
    EXPECT_EQ(store.Keys(), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(MemoryStore, ClearDropsEverything) {
    MemoryStore store;
    store.Put("a", MakeBlob(5, 0));
    store.Clear();
    EXPECT_EQ(store.Count(), 0U);
    EXPECT_EQ(store.TotalBytes(), 0U);
}

// ---------- NodeMemoryPool ----------

TEST(NodeMemoryPool, FailWipesOnlyThatNode) {
    NodeMemoryPool pool(3);
    pool.Node(0).Put("x", MakeBlob(5, 0));
    pool.Node(1).Put("x", MakeBlob(5, 0));
    pool.FailNode(0);
    EXPECT_TRUE(pool.IsFailed(0));
    EXPECT_FALSE(pool.Node(0).Contains("x"));
    EXPECT_TRUE(pool.Node(1).Contains("x"));
    EXPECT_EQ(pool.TotalBytes(), 5U);
}

TEST(NodeMemoryPool, RestartClearsFailedFlag) {
    NodeMemoryPool pool(2);
    pool.FailNode(1);
    pool.RestartNode(1);
    EXPECT_FALSE(pool.IsFailed(1));
    pool.Node(1).Put("y", MakeBlob(3, 0));
    EXPECT_TRUE(pool.Node(1).Contains("y"));
}

TEST(NodeMemoryPool, BoundsChecked) {
    NodeMemoryPool pool(2);
    EXPECT_THROW(pool.Node(2), std::invalid_argument);
    EXPECT_THROW(pool.FailNode(5), std::invalid_argument);
}

// ---------- PersistentStore ----------

TEST(PersistentStore, DurableAcrossUse) {
    PersistentStore store;
    store.Put("ckpt/1", MakeBlob(100, 7));
    EXPECT_TRUE(store.Contains("ckpt/1"));
    EXPECT_EQ(store.TotalBytes(), 100U);
    EXPECT_EQ(store.Get("ckpt/1")->at(0), 7);
}

TEST(PersistentStore, TracksBytesWrittenCumulatively) {
    PersistentStore store;
    store.Put("a", MakeBlob(100, 0));
    store.Put("a", MakeBlob(100, 1));  // overwrite still counts as a write
    EXPECT_EQ(store.BytesWritten(), 200U);
    EXPECT_EQ(store.TotalBytes(), 100U);
}

TEST(PersistentStore, IoModelTimes) {
    StorageIoModel io;
    io.write_bandwidth = 100.0;
    io.read_bandwidth = 200.0;
    io.latency = 1.0;
    PersistentStore store(io);
    EXPECT_DOUBLE_EQ(store.WriteTime(100), 2.0);
    EXPECT_DOUBLE_EQ(store.ReadTime(100), 1.5);
}

TEST(PersistentStore, RejectsNonPositiveBandwidth) {
    StorageIoModel io;
    io.write_bandwidth = 0.0;
    EXPECT_THROW(PersistentStore{io}, std::invalid_argument);
}

// ---------- Manifest ----------

TEST(Manifest, PersistLatestSingleVersion) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kPersist, "k", 10, 0, 100);
    manifest.RecordSave(StoreLevel::kPersist, "k", 20, 0, 100);
    const auto v = manifest.Latest(StoreLevel::kPersist, "k");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->iteration, 20U);
}

TEST(Manifest, MemoryKeepsPerNodeReplicas) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kMemory, "k", 10, /*node=*/0, 100);
    manifest.RecordSave(StoreLevel::kMemory, "k", 20, /*node=*/1, 100);
    const auto v = manifest.Latest(StoreLevel::kMemory, "k");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->iteration, 20U);
    EXPECT_EQ(v->node, 1U);
}

TEST(Manifest, DropNodeFallsBackToSurvivingReplica) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kMemory, "k", 10, 0, 100);
    manifest.RecordSave(StoreLevel::kMemory, "k", 20, 1, 100);
    manifest.DropNodeMemory(1);
    const auto v = manifest.Latest(StoreLevel::kMemory, "k");
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(v->iteration, 10U);
    EXPECT_EQ(v->node, 0U);
}

TEST(Manifest, DropNodeRemovesKeyWhenLastReplicaDies) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kMemory, "k", 10, 0, 100);
    manifest.DropNodeMemory(0);
    EXPECT_FALSE(manifest.Latest(StoreLevel::kMemory, "k").has_value());
    EXPECT_TRUE(manifest.KeysAt(StoreLevel::kMemory).empty());
}

TEST(Manifest, DropNodeLeavesPersistUntouched) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kPersist, "k", 10, 0, 100);
    manifest.DropNodeMemory(0);
    EXPECT_TRUE(manifest.Latest(StoreLevel::kPersist, "k").has_value());
}

TEST(Manifest, CompletionMarkers) {
    CheckpointManifest manifest;
    EXPECT_FALSE(manifest.LastCompleteIteration(StoreLevel::kPersist).has_value());
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 32);
    manifest.MarkCheckpointComplete(StoreLevel::kMemory, 48);
    EXPECT_EQ(manifest.LastCompleteIteration(StoreLevel::kPersist).value(), 32U);
    EXPECT_EQ(manifest.LastCompleteIteration(StoreLevel::kMemory).value(), 48U);
}

TEST(Manifest, SameIterationOverwriteAllowed) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kPersist, "k", 10, 0, 100);
    // Replay after recovery rewrites the same iteration: allowed.
    manifest.RecordSave(StoreLevel::kPersist, "k", 10, 0, 120);
    EXPECT_EQ(manifest.Latest(StoreLevel::kPersist, "k")->bytes, 120U);
}

TEST(Manifest, KeysAtListsLevelKeys) {
    CheckpointManifest manifest;
    manifest.RecordSave(StoreLevel::kPersist, "b", 1, 0, 1);
    manifest.RecordSave(StoreLevel::kPersist, "a", 1, 0, 1);
    manifest.RecordSave(StoreLevel::kMemory, "m", 1, 0, 1);
    EXPECT_EQ(manifest.KeysAt(StoreLevel::kPersist),
              (std::vector<std::string>{"a", "b"}));
    EXPECT_EQ(manifest.KeysAt(StoreLevel::kMemory),
              (std::vector<std::string>{"m"}));
}

}  // namespace
}  // namespace moc
