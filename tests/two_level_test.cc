/**
 * @file
 * Unit tests for the TwoLevelRecoveryPlanner in isolation: source selection
 * per key, restart-point semantics, byte accounting, and the effective
 * expert age (the staler of the weight/optimizer parts).
 */

#include <gtest/gtest.h>

#include "core/two_level.h"

namespace moc {
namespace {

/** Registers a full checkpoint of a 1-layer, 2-expert model at @p iter. */
void
SaveAll(CheckpointManifest& manifest, std::size_t iter, NodeId node) {
    for (const char* key : {"embedding/w", "embedding/o", "moe/0/expert/0/w",
                            "moe/0/expert/0/o", "moe/0/expert/1/w",
                            "moe/0/expert/1/o"}) {
        manifest.RecordSave(StoreLevel::kMemory, key, iter, node, 100);
        manifest.RecordSave(StoreLevel::kPersist, key, iter, 0, 100);
    }
    manifest.MarkCheckpointComplete(StoreLevel::kMemory, iter);
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, iter);
}

const std::vector<std::string> kNonExpertKeys{"embedding/w", "embedding/o"};

TEST(TwoLevelPlanner, PrefersMemoryWhenEnabled) {
    CheckpointManifest manifest;
    SaveAll(manifest, 8, /*node=*/1);
    TwoLevelRecoveryPlanner planner(/*two_level=*/true);
    const auto plan = planner.Plan(manifest, kNonExpertKeys, 1, 2);
    EXPECT_EQ(plan.restart_iteration, 8U);
    for (const auto& d : plan.decisions) {
        EXPECT_EQ(d.source, RecoverySource::kMemory) << d.key;
        EXPECT_EQ(d.iteration, 8U);
    }
    EXPECT_GT(plan.bytes_from_memory, 0U);
    EXPECT_EQ(plan.bytes_from_storage, 0U);
}

TEST(TwoLevelPlanner, FallsBackToStorageWhenDisabled) {
    CheckpointManifest manifest;
    SaveAll(manifest, 8, 1);
    TwoLevelRecoveryPlanner planner(/*two_level=*/false);
    const auto plan = planner.Plan(manifest, kNonExpertKeys, 1, 2);
    for (const auto& d : plan.decisions) {
        EXPECT_EQ(d.source, RecoverySource::kPersist) << d.key;
    }
    EXPECT_EQ(plan.bytes_from_memory, 0U);
    EXPECT_GT(plan.bytes_from_storage, 0U);
}

TEST(TwoLevelPlanner, MemoryFresherThanPersistWins) {
    CheckpointManifest manifest;
    SaveAll(manifest, 8, 1);
    // Expert 0 snapshotted (memory only) at 16; persist still at 8.
    manifest.RecordSave(StoreLevel::kMemory, "moe/0/expert/0/w", 16, 1, 100);
    manifest.RecordSave(StoreLevel::kMemory, "moe/0/expert/0/o", 16, 1, 100);
    // Non-expert saved everywhere at 16 (full per event).
    for (const auto& key : kNonExpertKeys) {
        manifest.RecordSave(StoreLevel::kMemory, key, 16, 1, 100);
        manifest.RecordSave(StoreLevel::kPersist, key, 16, 0, 100);
    }
    manifest.RecordSave(StoreLevel::kPersist, "extra", 16, 0, 1);
    manifest.MarkCheckpointComplete(StoreLevel::kMemory, 16);
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 16);

    TwoLevelRecoveryPlanner planner(true);
    const auto plan = planner.Plan(manifest, kNonExpertKeys, 1, 2);
    EXPECT_EQ(plan.restart_iteration, 16U);
    // Expert 0 recovers at 16 from memory; expert 1 only has the 8-persist
    // or its own 8-memory copy.
    EXPECT_EQ(plan.expert_recovered_iteration[0][0], 16U);
    EXPECT_EQ(plan.expert_recovered_iteration[0][1], 8U);
}

TEST(TwoLevelPlanner, DroppedNodeMemoryForcesStorage) {
    CheckpointManifest manifest;
    SaveAll(manifest, 8, 1);
    manifest.DropNodeMemory(1);
    TwoLevelRecoveryPlanner planner(true);
    const auto plan = planner.Plan(manifest, kNonExpertKeys, 1, 2);
    for (const auto& d : plan.decisions) {
        EXPECT_EQ(d.source, RecoverySource::kPersist) << d.key;
    }
}

TEST(TwoLevelPlanner, UnsavedExpertIsInitial) {
    CheckpointManifest manifest;
    for (const auto& key : kNonExpertKeys) {
        manifest.RecordSave(StoreLevel::kPersist, key, 4, 0, 100);
    }
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 4);
    TwoLevelRecoveryPlanner planner(true);
    const auto plan = planner.Plan(manifest, kNonExpertKeys, 1, 2);
    // Experts were never saved: initial state, iteration 0.
    for (const auto& d : plan.decisions) {
        if (d.key.rfind("moe/", 0) == 0) {
            EXPECT_EQ(d.source, RecoverySource::kInitial);
            EXPECT_EQ(d.iteration, 0U);
        }
    }
    EXPECT_EQ(plan.expert_recovered_iteration[0][0], 0U);
}

TEST(TwoLevelPlanner, ExpertAgeIsStalerOfWAndO) {
    CheckpointManifest manifest;
    SaveAll(manifest, 8, 1);
    // Weights of expert 1 refreshed at 12; optimizer still at 8.
    manifest.RecordSave(StoreLevel::kMemory, "moe/0/expert/1/w", 12, 1, 100);
    for (const auto& key : kNonExpertKeys) {
        manifest.RecordSave(StoreLevel::kMemory, key, 12, 1, 100);
        manifest.RecordSave(StoreLevel::kPersist, key, 12, 0, 100);
    }
    manifest.MarkCheckpointComplete(StoreLevel::kMemory, 12);
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 12);
    TwoLevelRecoveryPlanner planner(true);
    const auto plan = planner.Plan(manifest, kNonExpertKeys, 1, 2);
    EXPECT_EQ(plan.expert_recovered_iteration[0][1], 8U);
}

TEST(TwoLevelPlanner, NoCheckpointMeansRestartAtZero) {
    CheckpointManifest manifest;
    TwoLevelRecoveryPlanner planner(true);
    const auto plan = planner.Plan(manifest, {}, 1, 1);
    EXPECT_EQ(plan.restart_iteration, 0U);
}

TEST(TwoLevelPlanner, RestartOverrideReplansAtOlderGeneration) {
    CheckpointManifest manifest;
    SaveAll(manifest, 8, 1);
    SaveAll(manifest, 16, 1);
    TwoLevelRecoveryPlanner planner(true);
    const auto plan = planner.Plan(manifest, kNonExpertKeys, 1, 2,
                                   /*restart_override=*/8);
    EXPECT_EQ(plan.restart_iteration, 8U);
    for (const auto& d : plan.decisions) {
        // Nothing may come from beyond the overridden restart point.
        EXPECT_LE(d.iteration, 8U) << d.key;
    }
}

TEST(TwoLevelPlanner, RestartOverrideRejectsFresherNonExpertMemory) {
    CheckpointManifest manifest;
    SaveAll(manifest, 8, 1);
    SaveAll(manifest, 16, 1);
    TwoLevelRecoveryPlanner planner(true);
    const auto plan = planner.Plan(manifest, kNonExpertKeys, 1, 2, 8);
    for (const auto& d : plan.decisions) {
        const bool is_expert = d.key.find("/expert/") != std::string::npos;
        if (!is_expert && d.key != "extra/state") {
            // The 16-iteration memory snapshot must not leak into an
            // 8-iteration restart: non-experts come from persist@8.
            EXPECT_EQ(d.source, RecoverySource::kPersist) << d.key;
            EXPECT_EQ(d.iteration, 8U) << d.key;
        }
    }
}

TEST(TwoLevelPlanner, RestartOverrideKeepsExpertMemoryAtOrBelowRestart) {
    CheckpointManifest manifest;
    SaveAll(manifest, 8, 1);
    // Expert 1 memory snapshot refreshed at 12; restart overridden to 8.
    manifest.RecordSave(StoreLevel::kMemory, "moe/0/expert/1/w", 12, 1, 100);
    manifest.RecordSave(StoreLevel::kMemory, "moe/0/expert/1/o", 12, 1, 100);
    TwoLevelRecoveryPlanner planner(true);
    const auto plan = planner.Plan(manifest, kNonExpertKeys, 1, 2, 8);
    EXPECT_EQ(plan.restart_iteration, 8U);
    for (const auto& d : plan.decisions) {
        EXPECT_LE(d.iteration, 8U) << d.key;
    }
    EXPECT_EQ(plan.expert_recovered_iteration[0][1], 8U);
}

}  // namespace
}  // namespace moc
