/**
 * @file
 * Unit tests for the analytical performance simulator: hardware presets,
 * iteration cost components, checkpoint payloads, and the method timelines
 * that drive Figures 11-13.
 */

#include <gtest/gtest.h>

#include "dist/presets.h"
#include "sim/hardware.h"
#include "sim/perf_model.h"
#include "sim/timeline.h"

namespace moc {
namespace {

TrainingSetup
Case2Setup() {
    TrainingSetup setup;
    setup.model = Gpt350M16E();
    setup.parallel = Case2().parallel;
    setup.gpus_per_node = Case2().GpusPerNode();
    setup.gpu = A800();
    // Global batch 256 sequences, as in DeepSpeed-MoE's GPT-350M recipe.
    setup.batch_per_gpu = 256 / setup.parallel.dp;
    setup.seq_len = 2048;
    return setup;
}

TrainingSetup
ScalingSetup(std::size_t gpus, const GpuSpec& gpu) {
    TrainingSetup setup;
    setup.model = LlamaMoeSim("medium", gpus);
    setup.parallel = {.dp = gpus, .ep = gpus, .tp = 1, .pp = 1};
    setup.gpus_per_node = 8;
    setup.gpu = gpu;
    setup.batch_per_gpu = 2;
    setup.seq_len = 2048;
    return setup;
}

TEST(Hardware, PresetsMatchPaperParameters) {
    const auto a = A800();
    EXPECT_DOUBLE_EQ(a.peak_flops, 312e12);
    EXPECT_DOUBLE_EQ(a.utilization, 0.20);
    EXPECT_DOUBLE_EQ(a.snapshot_bandwidth, 1.0e9);
    const auto h = H100();
    EXPECT_DOUBLE_EQ(h.peak_flops, 989e12);
    EXPECT_DOUBLE_EQ(h.snapshot_bandwidth, 2.0e9);
    EXPECT_GT(h.EffectiveFlops(), a.EffectiveFlops());
}

TEST(PerfModel, ComponentsPositive) {
    const PerfModel model(Case2Setup());
    EXPECT_GT(model.ComputeTime(), 0.0);
    EXPECT_GT(model.AllToAllTime(), 0.0);
    EXPECT_GT(model.GradSyncTime(), 0.0);
    EXPECT_GT(model.UpdateTime(), 0.0);
    EXPECT_NEAR(model.FbTime(),
                model.ComputeTime() + model.AllToAllTime() + model.GradSyncTime(),
                1e-12);
}

TEST(PerfModel, H100FasterThanA800) {
    auto a = ScalingSetup(64, A800());
    auto h = ScalingSetup(64, H100());
    EXPECT_LT(PerfModel(h).ComputeTime(), PerfModel(a).ComputeTime());
}

TEST(PerfModel, LongerSequencesLengthenFbOnly) {
    auto s1 = Case2Setup();
    auto s2 = Case2Setup();
    s2.seq_len = 4096;
    const PerfModel m1(s1);
    const PerfModel m2(s2);
    EXPECT_GT(m2.FbTime(), m1.FbTime());
    // Checkpointed data is model state, not activations (Fig. 13d).
    EXPECT_EQ(m1.CheckpointBytesPerRank(16, true),
              m2.CheckpointBytesPerRank(16, true));
}

TEST(PerfModel, PecShrinksPayloadMonotonically) {
    const PerfModel model(Case2Setup());
    Bytes prev = 0;
    for (std::size_t k = 1; k <= 16; ++k) {
        const Bytes b = model.CheckpointBytesPerRank(k, true);
        EXPECT_GE(b, prev);
        prev = b;
    }
}

TEST(PerfModel, FullyShardedBeatsBaselinePayload) {
    const PerfModel model(Case2Setup());
    EXPECT_LT(model.CheckpointBytesPerRank(16, true),
              model.CheckpointBytesPerRank(16, false));
}

TEST(PerfModel, PersistFileBytesScaleWithK) {
    const PerfModel model(Case2Setup());
    EXPECT_LT(model.PersistFileBytes(1), model.PersistFileBytes(16));
}

TEST(PerfModel, PipelineBubbleLengthensFb) {
    // With p stages and m micro-batches, F&B stretches by (m + p - 1) / m.
    auto flat = ScalingSetup(64, A800());
    auto piped = flat;
    piped.parallel = {.dp = 16, .ep = 16, .tp = 1, .pp = 4};
    piped.model = LlamaMoeSim("medium", 16);
    auto flat_match = piped;
    flat_match.parallel.pp = 1;
    const PerfModel with_pp(piped);
    const PerfModel without_pp(flat_match);
    // Per-GPU compute shrinks by pp, but the bubble adds it back partially:
    // compute * (1/p) * (m+p-1)/m < compute for m > 1.
    EXPECT_LT(with_pp.ComputeTime(), without_pp.ComputeTime());
    const double bubble = (8.0 + 4.0 - 1.0) / 8.0;
    EXPECT_NEAR(with_pp.FbTime() - with_pp.GradSyncTime(),
                (without_pp.ComputeTime() / 4.0 + with_pp.AllToAllTime()) * bubble,
                1e-9);
}

TEST(PerfModel, MoreMicrobatchesShrinkBubble) {
    auto setup = ScalingSetup(64, A800());
    setup.parallel = {.dp = 16, .ep = 16, .tp = 1, .pp = 4};
    setup.model = LlamaMoeSim("medium", 16);
    setup.microbatches = 4;
    const double few = PerfModel(setup).FbTime();
    setup.microbatches = 32;
    const double many = PerfModel(setup).FbTime();
    EXPECT_LT(many, few);
}

TEST(PerfModel, RejectsBadSetup) {
    auto setup = Case2Setup();
    setup.parallel.ep = 5;  // does not divide dp=16
    EXPECT_THROW(PerfModel{setup}, std::invalid_argument);
}

// ---------- Timelines ----------

TEST(Timeline, BaselineChargesEverything) {
    const PerfModel model(Case2Setup());
    const auto t = SimulateMethod(model, CkptMethod::kBaseline, 2);
    EXPECT_DOUBLE_EQ(t.o_save, t.t_snapshot + t.t_persist);
    EXPECT_DOUBLE_EQ(t.iteration, t.t_fb + t.t_update + t.o_save);
    EXPECT_DOUBLE_EQ(t.overlap, 0.0);
}

TEST(Timeline, AsyncOverheadIsStallOnly) {
    const PerfModel model(Case2Setup());
    const auto t = SimulateMethod(model, CkptMethod::kBaseAsync, 2);
    EXPECT_DOUBLE_EQ(t.o_save, std::max(0.0, t.t_snapshot - t.t_fb));
    EXPECT_LE(t.overlap, t.t_fb + 1e-12);
}

TEST(Timeline, MocAsyncNeverSlowerThanBaseAsync) {
    for (const auto& c : AllCases()) {
        auto setup = Case2Setup();
        setup.parallel = c.parallel;
        setup.gpus_per_node = c.GpusPerNode();
        const PerfModel model(setup);
        const auto base = SimulateMethod(model, CkptMethod::kBaseAsync, 2);
        const auto moc = SimulateMethod(model, CkptMethod::kMocAsync, 2);
        EXPECT_LE(moc.iteration, base.iteration + 1e-12) << c.name;
        EXPECT_LE(moc.i_ckpt_min, base.i_ckpt_min) << c.name;
    }
}

TEST(Timeline, MocAsyncCutsOsaveDrastically) {
    // The headline claim of Fig. 12: ~98% reduction in per-checkpoint
    // overhead vs the blocking baseline (we require > 90% — the shape, not
    // the authors' exact testbed numbers).
    for (const auto& c : AllCases()) {
        auto setup = Case2Setup();
        setup.parallel = c.parallel;
        setup.gpus_per_node = c.GpusPerNode();
        setup.batch_per_gpu = 256 / setup.parallel.dp;
        const PerfModel model(setup);
        const auto baseline = SimulateMethod(model, CkptMethod::kBaseline, 2);
        const auto moc = SimulateMethod(model, CkptMethod::kMocAsync, 2);
        EXPECT_LT(moc.o_save, 0.10 * baseline.o_save) << c.name;
    }
}

TEST(Timeline, SimulateAllMethodsReturnsThree) {
    const PerfModel model(Case2Setup());
    const auto all = SimulateAllMethods(model, 2);
    ASSERT_EQ(all.size(), 3U);
    EXPECT_EQ(all[0].method, "Baseline");
    EXPECT_EQ(all[1].method, "Base-Async");
    EXPECT_EQ(all[2].method, "MoC-Async");
}

TEST(Timeline, BaseAsyncEventuallyOverlapsAtScale) {
    // Fig. 13a: with enough GPUs, F&B grows (slower collectives) until the
    // Base-Async snapshot fully overlaps.
    const auto small = SimulateMethod(
        PerfModel(ScalingSetup(8, A800())), CkptMethod::kBaseAsync, 1);
    const auto large = SimulateMethod(
        PerfModel(ScalingSetup(1024, A800())), CkptMethod::kBaseAsync, 1);
    EXPECT_GT(small.o_save, 0.0);
    EXPECT_LT(large.o_save / (large.t_fb + large.t_update),
              small.o_save / (small.t_fb + small.t_update));
}

TEST(Timeline, MocAsyncRejectsBadK) {
    const PerfModel model(Case2Setup());
    EXPECT_THROW(SimulateMethod(model, CkptMethod::kMocAsync, 0),
                 std::invalid_argument);
    EXPECT_THROW(SimulateMethod(model, CkptMethod::kMocAsync, 17),
                 std::invalid_argument);
}

}  // namespace
}  // namespace moc
