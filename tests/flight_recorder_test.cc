/**
 * @file
 * Tests for the checkpoint flight recorder: the critical-path profiler on a
 * hand-built golden trace, TraceContext propagation through a real cluster
 * persist, and the stall watchdog under injected storage latency spikes.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "ckpt/cluster_engine.h"
#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/watchdog.h"
#include "storage/faulty_store.h"
#include "storage/persistent_store.h"

namespace moc {
namespace {

using obs::AnalyzeFlight;
using obs::FlightSpan;
using obs::TraceContext;

/** One span of the synthetic 4-rank golden trace. */
FlightSpan
Span(const char* name, const char* phase, std::int32_t rank,
     std::uint64_t start_us, std::uint64_t dur_us, std::uint32_t tid,
     std::uint64_t gen = 7) {
    FlightSpan s;
    s.name = name;
    s.category = "cluster";
    s.phase = phase;
    s.rank = rank;
    s.start_ns = start_us * 1000;
    s.duration_ns = dur_us * 1000;
    s.tid = tid;
    s.generation = gen;
    s.iteration = gen;
    return s;
}

/**
 * A hand-built generation with a known shape: ranks 0/1/3 finish early,
 * rank 2 serializes+snapshots+persists longest, the seal barrier ends the
 * generation. Times in µs from generation start at t=1000.
 */
std::vector<FlightSpan>
GoldenSpans() {
    std::vector<FlightSpan> spans;
    for (std::int32_t r = 0; r < 4; ++r) {
        const auto tid = static_cast<std::uint32_t>(10 + r);
        const std::uint64_t ser = r == 2 ? 400 : 100;
        const std::uint64_t snap = r == 2 ? 800 : 300;
        spans.push_back(Span("cluster.serialize", "serialize", r, 1000, ser,
                             tid));
        spans.push_back(
            Span("agent.snapshot", "snapshot", r, 1000 + ser, snap, tid));
        // Two persist shards per rank on a worker thread; rank 2's second
        // shard is the overall straggler, ending at t=6000.
        const auto wtid = static_cast<std::uint32_t>(20 + r);
        const std::uint64_t p0 = 1000 + ser + snap + 50;
        const std::uint64_t pdur = r == 2 ? 1500 : 500;
        spans.push_back(
            Span("cluster.persist_shard", "persist", r, p0, pdur, wtid));
        spans.push_back(Span("cluster.persist_shard", "persist", r, p0 + pdur,
                             pdur, wtid));
        spans.push_back(Span("cluster.verify_shard", "verify", r,
                             p0 + 2 * pdur, r == 2 ? 750 : 100, wtid));
    }
    // Seal barrier: starts before the straggler ends, ends the generation.
    spans.push_back(Span("cluster.seal", "seal", -1, 5900, 200, 99));
    // Noise: a span from another generation must not leak in.
    spans.push_back(Span("cluster.seal", "seal", -1, 9000, 10, 99, 8));
    return spans;
}

TEST(CriticalPath, GoldenFourRankTrace) {
    const auto analysis = AnalyzeFlight(GoldenSpans());
    ASSERT_EQ(analysis.generations.size(), 2u);
    const auto& gen = analysis.generations.front();
    EXPECT_EQ(gen.generation, 7u);
    EXPECT_EQ(gen.straggler, 2);
    ASSERT_EQ(gen.ranks.size(), 4u);
    EXPECT_EQ(gen.ranks[2].slack_ns, 0u);
    EXPECT_GT(gen.ranks[0].slack_ns, 0u);
    EXPECT_EQ(gen.ranks[2].shards, 2u);

    // The telescoped critical path must cover the wall time exactly.
    EXPECT_EQ(gen.wall_ns, (6100u - 1000u) * 1000u);
    EXPECT_EQ(gen.critical_ns, gen.wall_ns);

    // Causal phase order along the path: serialize before snapshot before
    // any persist/verify, seal last.
    ASSERT_GE(gen.critical_path.size(), 4u);
    EXPECT_EQ(gen.critical_path.front().phase, "serialize");
    EXPECT_EQ(gen.critical_path.front().rank, 2);
    EXPECT_EQ(gen.critical_path.back().phase, "seal");
    std::map<std::string, std::size_t> first_index;
    for (std::size_t i = 0; i < gen.critical_path.size(); ++i) {
        first_index.emplace(gen.critical_path[i].phase, i);
    }
    EXPECT_LT(first_index.at("serialize"), first_index.at("snapshot"));
    ASSERT_TRUE(first_index.count("persist") || first_index.count("verify"));

    // Phase attribution sums (with waits) to the wall time too.
    std::uint64_t total = 0;
    for (const auto& [phase, ns] : gen.phase_ns) {
        total += ns;
    }
    EXPECT_EQ(total, gen.wall_ns);
}

TEST(CriticalPath, ChromeTraceRoundTrip) {
    auto& tracer = obs::Tracer::Instance();
    tracer.Clear();
    tracer.set_enabled(true);
    {
        TraceContext ctx;
        ctx.generation = 41;
        ctx.iteration = 41;
        ctx.rank = 3;
        ctx.phase = "persist";
        const obs::TraceContextScope scope(ctx);
        const obs::TraceSpan span("cluster.persist_shard", "cluster");
    }
    {
        const obs::TraceSpan span("plain.span", "misc");  // no context
    }
    tracer.set_enabled(false);
    const auto parsed = obs::ParseChromeTraceJson(obs::ChromeTraceJson());
    tracer.Clear();

    const FlightSpan* stamped = nullptr;
    bool saw_plain = false;
    for (const auto& s : parsed) {
        if (s.name == "cluster.persist_shard") {
            stamped = &s;
        }
        saw_plain = saw_plain || s.name == "plain.span";
    }
    ASSERT_NE(stamped, nullptr);
    EXPECT_TRUE(saw_plain);
    EXPECT_EQ(stamped->generation, 41u);
    EXPECT_EQ(stamped->iteration, 41u);
    EXPECT_EQ(stamped->rank, 3);
    EXPECT_EQ(stamped->phase, "persist");

    // Round-tripped spans analyze exactly like live ones.
    const auto analysis = AnalyzeFlight(parsed);
    ASSERT_EQ(analysis.generations.size(), 1u);
    EXPECT_EQ(analysis.generations.front().straggler, 3);
}

/** PEC-shaped 2-rank plan used by the e2e propagation/watchdog tests. */
ShardPlan
SmallPlan(std::size_t ranks) {
    ShardPlan plan(ranks);
    for (RankId r = 0; r < ranks; ++r) {
        plan.Add(r, {"dense/" + std::to_string(r), 16 * kMiB, false});
        plan.Add(r, {"expert/" + std::to_string(r) + "/w", 8 * kMiB, false});
    }
    return plan;
}

AgentCostModel
FastCost() {
    AgentCostModel cost;
    cost.snapshot_bandwidth = 1e9;
    cost.persist_bandwidth = 1e9;
    cost.time_scale = 1.0;
    return cost;
}

TEST(FlightRecorder, ContextPropagatesThroughClusterPersist) {
    auto& tracer = obs::Tracer::Instance();
    tracer.Clear();
    obs::EventJournal::Instance().Clear();
    tracer.set_enabled(true);
    constexpr std::size_t kIteration = 977;  // unique generation id
    {
        PersistentStore store({.write_bandwidth = 1e9,
                               .read_bandwidth = 1e9,
                               .latency = 0.0});
        ClusterCheckpointEngine engine(store, 2, FastCost());
        const auto stats = engine.Execute(SmallPlan(2),
                                          SyntheticBlobProvider(1), kIteration);
        EXPECT_TRUE(stats.sealed);
    }
    tracer.set_enabled(false);
    const auto spans = obs::CollectFlightSpans();
    tracer.Clear();

    std::map<std::string, std::set<std::int32_t>> ranks_by_phase;
    std::size_t seal_spans = 0;
    for (const auto& s : spans) {
        if (s.generation != kIteration) {
            continue;
        }
        EXPECT_EQ(s.iteration, kIteration) << s.name;
        if (!s.phase.empty() && s.rank >= 0) {
            ranks_by_phase[s.phase].insert(s.rank);
        }
        seal_spans += s.name == "cluster.seal" ? 1 : 0;
    }
    // Every rank contributed a serialize, snapshot, and persist span, and
    // the seal barrier was stamped with the generation.
    EXPECT_EQ(ranks_by_phase["serialize"], (std::set<std::int32_t>{0, 1}));
    EXPECT_EQ(ranks_by_phase["snapshot"], (std::set<std::int32_t>{0, 1}));
    EXPECT_EQ(ranks_by_phase["persist"], (std::set<std::int32_t>{0, 1}));
    EXPECT_EQ(seal_spans, 1u);

    const auto analysis = AnalyzeFlight(spans);
    bool found = false;
    for (const auto& gen : analysis.generations) {
        if (gen.generation != kIteration) {
            continue;
        }
        found = true;
        EXPECT_EQ(gen.critical_ns, gen.wall_ns);
        EXPECT_GE(gen.straggler, 0);
        EXPECT_EQ(gen.ranks.size(), 2u);
    }
    EXPECT_TRUE(found);
}

TEST(Watchdog, FiresOnLatencySpikeAndJournalsStall) {
    obs::EventJournal::Instance().Clear();
    constexpr std::size_t kIteration = 983;  // unique generation id
    PersistentStore base({.write_bandwidth = 1e9,
                          .read_bandwidth = 1e9,
                          .latency = 0.0});
    FaultyStore store(base, /*seed=*/11);
    StorageFaultProfile profile;
    profile.latency_spike = 1.0;  // every write sleeps
    profile.latency_spike_seconds = 0.1;
    store.Arm(profile);
    ClusterEngineOptions opt;
    opt.shard_deadline_s = 0.02;  // well under the spike
    {
        ClusterCheckpointEngine engine(store, 2, FastCost(), opt);
        const auto stats = engine.Execute(SmallPlan(2),
                                          SyntheticBlobProvider(2), kIteration);
        EXPECT_TRUE(stats.sealed);
    }
    store.Disarm();

    std::size_t stalls = 0;
    for (const auto& e : obs::EventJournal::Instance().Collect()) {
        if (e.kind != obs::EventKind::kStall || e.gen != kIteration) {
            continue;
        }
        ++stalls;
        EXPECT_GE(e.scope, 0);
        EXPECT_NE(e.detail.find("phase=persist"), std::string::npos);
        EXPECT_NE(e.detail.find("budget_s=0.020"), std::string::npos);
    }
    EXPECT_GE(stalls, 1u);
}

TEST(Watchdog, CleanRunJournalsNoStalls) {
    obs::EventJournal::Instance().Clear();
    constexpr std::size_t kIteration = 991;  // unique generation id
    PersistentStore store({.write_bandwidth = 1e9,
                           .read_bandwidth = 1e9,
                           .latency = 0.0});
    ClusterEngineOptions opt;
    opt.shard_deadline_s = 5.0;  // generous: never overrun
    opt.seal_deadline_s = 5.0;
    {
        ClusterCheckpointEngine engine(store, 2, FastCost(), opt);
        const auto stats = engine.Execute(SmallPlan(2),
                                          SyntheticBlobProvider(3), kIteration);
        EXPECT_TRUE(stats.sealed);
    }
    for (const auto& e : obs::EventJournal::Instance().Collect()) {
        EXPECT_FALSE(e.kind == obs::EventKind::kStall && e.gen == kIteration)
            << e.detail;
    }
}

TEST(Watchdog, DirectOpLifecycle) {
    obs::StallWatchdog watchdog(/*poll_interval_s=*/0.001);
    TraceContext ctx;
    ctx.generation = 5;
    ctx.rank = 1;
    {
        // Over-budget op: must fire exactly once despite many polls.
        const std::uint64_t id =
            watchdog.OpBegin("persist", 0.005, ctx, "key=x");
        while (watchdog.stalls_fired() == 0) {
        }
        watchdog.OpEnd(id);
    }
    EXPECT_EQ(watchdog.stalls_fired(), 1u);
    {
        // Under-budget op: never fires.
        const std::uint64_t id =
            watchdog.OpBegin("seal", 10.0, ctx, "key=y");
        watchdog.OpEnd(id);
    }
    EXPECT_EQ(watchdog.stalls_fired(), 1u);
}

}  // namespace
}  // namespace moc
