/**
 * @file
 * Unit tests for the MocCheckpointSystem facade, the two-level recovery
 * planner, the adaptive configurator, and the overhead model.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/adaptive.h"
#include "core/moc_system.h"
#include "core/overhead.h"
#include "nn/model.h"

namespace moc {
namespace {

LmConfig
TinyLm() {
    LmConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.hidden = 16;
    cfg.num_heads = 2;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 4;
    cfg.top_k = 1;
    cfg.seed = 77;
    return cfg;
}

MocSystemConfig
DefaultSystem(std::size_t k_snapshot = 2, std::size_t k_persist = 1) {
    MocSystemConfig cfg;
    cfg.pec.k_snapshot = k_snapshot;
    cfg.pec.k_persist = k_persist;
    cfg.i_ckpt = 4;
    return cfg;
}

RankTopology
TwoNodeTopology() {
    // dp = ep = 4 ranks over 2 nodes.
    return RankTopology({.dp = 4, .ep = 4, .tp = 1, .pp = 1}, 2);
}

/** Snapshot of all weight values for later comparison. */
std::vector<Tensor>
SnapshotWeights(ParamSource& model) {
    std::vector<Tensor> out;
    for (auto* p : model.AllParameters()) {
        out.push_back(p->value());
    }
    return out;
}

void
PerturbWeights(ParamSource& model, float delta) {
    for (auto* p : model.AllParameters()) {
        for (std::size_t i = 0; i < p->size(); ++i) {
            p->value()[i] += delta;
        }
    }
}

TEST(MocSystem, InitialCheckpointWrittenAtConstruction) {
    MoeTransformerLm model(TinyLm());
    const auto topo = TwoNodeTopology();
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(DefaultSystem(), model, topo,
                               TinyLm().ToModelSpec(), extra);
    EXPECT_GT(system.storage().Count(), 0U);
    EXPECT_EQ(system.manifest().LastCompleteIteration(StoreLevel::kPersist).value(),
              0U);
}

TEST(MocSystem, ShouldCheckpointRespectsInterval) {
    MoeTransformerLm model(TinyLm());
    const auto topo = TwoNodeTopology();
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(DefaultSystem(), model, topo,
                               TinyLm().ToModelSpec(), extra);
    EXPECT_FALSE(system.ShouldCheckpoint(0));
    EXPECT_FALSE(system.ShouldCheckpoint(3));
    EXPECT_TRUE(system.ShouldCheckpoint(4));
    EXPECT_TRUE(system.ShouldCheckpoint(8));
}

TEST(MocSystem, PecCheckpointSmallerThanFull) {
    MoeTransformerLm model_pec(TinyLm());
    const auto topo = TwoNodeTopology();
    ExtraState extra{0, 0, model_pec.gating_rng().GetState()};
    MocCheckpointSystem pec(DefaultSystem(1, 1), model_pec, topo,
                            TinyLm().ToModelSpec(), extra);
    const auto pec_report = pec.Checkpoint(4, extra);

    MoeTransformerLm model_full(TinyLm());
    MocCheckpointSystem full(DefaultSystem(4, 4), model_full, topo,
                             TinyLm().ToModelSpec(), extra);
    const auto full_report = full.Checkpoint(4, extra);

    EXPECT_LT(pec_report.persist_bytes, full_report.persist_bytes);
    EXPECT_LT(pec_report.snapshot_bytes, full_report.snapshot_bytes);
}

TEST(MocSystem, RecoveryRestoresExactWeightsWithFullCheckpoint) {
    MoeTransformerLm model(TinyLm());
    const auto topo = TwoNodeTopology();
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(DefaultSystem(4, 4), model, topo,
                               TinyLm().ToModelSpec(), extra);
    // Checkpoint the current state at iteration 4.
    extra.iteration = 4;
    system.Checkpoint(4, extra);
    const auto before = SnapshotWeights(model);
    // Corrupt everything, then recover.
    PerturbWeights(model, 1.0F);
    const auto report = system.RecoverFromFault({0});
    EXPECT_EQ(report.plan.restart_iteration, 4U);
    const auto params = model.AllParameters();
    for (std::size_t i = 0; i < params.size(); ++i) {
        EXPECT_TRUE(params[i]->value().AllClose(before[i], 0.0F))
            << params[i]->name();
    }
    EXPECT_EQ(report.extra.iteration, 4U);
    EXPECT_DOUBLE_EQ(report.plt, 0.0);
}

TEST(MocSystem, PecRecoveryLeavesUnsavedExpertsStale) {
    // With K = 1 persist-PEC and no two-level recovery, experts not in the
    // persisted set recover to their iteration-0 state.
    MoeTransformerLm model(TinyLm());
    const auto topo = TwoNodeTopology();
    MocSystemConfig cfg = DefaultSystem(1, 1);
    cfg.two_level_recovery = false;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, model, topo, TinyLm().ToModelSpec(), extra);

    const auto initial = SnapshotWeights(model);
    PerturbWeights(model, 0.5F);  // pretend training moved all weights
    extra.iteration = 4;
    system.Checkpoint(4, extra);
    PerturbWeights(model, 0.5F);
    system.RecoverFromFault({0});

    // Non-expert groups must be at the iteration-4 (perturbed once) state;
    // most experts must be back at iteration 0 (initial) values.
    std::size_t stale_experts = 0;
    std::size_t fresh_experts = 0;
    std::size_t param_cursor = 0;
    // Walk params in group order, tracking the flat index used by
    // SnapshotWeights (AllParameters iterates groups in order).
    for (auto& g : model.ParameterGroups()) {
        for (auto* p : g.params) {
            const Tensor& init = initial[param_cursor];
            ++param_cursor;
            if (g.kind != ModuleKind::kExpert) {
                // Saved at iteration 4: exactly one perturbation applied.
                EXPECT_NEAR(p->value()[0], init[0] + 0.5F, 1e-4F) << p->name();
            } else {
                if (std::fabs(p->value()[0] - init[0]) < 1e-6F) {
                    ++stale_experts;
                } else {
                    EXPECT_NEAR(p->value()[0], init[0] + 0.5F, 1e-4F);
                    ++fresh_experts;
                }
            }
        }
    }
    EXPECT_GT(stale_experts, 0U);
    EXPECT_GT(fresh_experts, 0U);
}

TEST(MocSystem, TwoLevelRecoveryReducesStaleness) {
    // Same scenario, but snapshots carry K=4 (all) while persist carries 1.
    // Failing one node: the surviving node's in-memory snapshots recover its
    // experts at the checkpoint iteration, so fewer experts are stale.
    auto run = [](bool two_level) {
        MoeTransformerLm model(TinyLm());
        const auto topo = TwoNodeTopology();
        MocSystemConfig cfg = DefaultSystem(4, 1);
        cfg.two_level_recovery = two_level;
        ExtraState extra{0, 0, model.gating_rng().GetState()};
        MocCheckpointSystem system(cfg, model, topo, TinyLm().ToModelSpec(),
                                   extra);
        PerturbWeights(model, 0.5F);
        extra.iteration = 4;
        system.Checkpoint(4, extra);
        PerturbWeights(model, 0.5F);
        const auto report = system.RecoverFromFault({0});
        Bytes from_memory = report.plan.bytes_from_memory;
        std::size_t stale = 0;
        for (const auto& layer : report.plan.expert_recovered_iteration) {
            for (auto it : layer) {
                if (it < 4) {
                    ++stale;
                }
            }
        }
        return std::make_pair(stale, from_memory);
    };
    const auto [stale_2l, mem_2l] = run(true);
    const auto [stale_flat, mem_flat] = run(false);
    EXPECT_LT(stale_2l, stale_flat);
    EXPECT_GT(mem_2l, 0U);
    EXPECT_EQ(mem_flat, 0U);
}

TEST(MocSystem, ExtraStateRoundTrips) {
    MoeTransformerLm model(TinyLm());
    const auto topo = TwoNodeTopology();
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(DefaultSystem(), model, topo,
                               TinyLm().ToModelSpec(), extra);
    model.gating_rng().Next();
    ExtraState later{8, 42, model.gating_rng().GetState()};
    system.Checkpoint(8, later);
    const auto report = system.RecoverFromFault({1});
    EXPECT_EQ(report.extra.iteration, 8U);
    EXPECT_EQ(report.extra.adam_step, 42U);
    Rng restored(0);
    restored.SetState(report.extra.gating_rng);
    Rng original(0);
    original.SetState(later.gating_rng);
    EXPECT_EQ(restored.Next(), original.Next());
}

TEST(MocSystem, DynamicKEscalates) {
    MoeTransformerLm model(TinyLm());
    const auto topo = TwoNodeTopology();
    MocSystemConfig cfg = DefaultSystem(1, 1);
    cfg.dynamic_k = true;
    cfg.two_level_recovery = false;
    cfg.plt_threshold = 1e-6;  // minuscule budget: escalate immediately
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, model, topo, TinyLm().ToModelSpec(), extra);
    // Create routing traffic so recovery produces PLT > 0.
    std::vector<std::size_t> per_expert(4, 10);
    for (std::size_t m = 0; m < system.ledger().num_moe_layers(); ++m) {
        system.ledger().RecordRouting(m, per_expert, 40);
    }
    extra.iteration = 4;
    system.Checkpoint(4, extra);
    for (std::size_t m = 0; m < system.ledger().num_moe_layers(); ++m) {
        system.ledger().RecordRouting(m, per_expert, 40);
    }
    extra.iteration = 8;
    system.Checkpoint(8, extra);
    const auto report = system.RecoverFromFault({0});
    EXPECT_GT(report.plt, 0.0);
    EXPECT_GT(report.k_after, 1U);
    EXPECT_EQ(system.current_k_snapshot(), report.k_after);
}

// ---------- Adaptive configuration ----------

AdaptiveInputs
BaseInputs() {
    AdaptiveInputs in;
    in.t_fb = 1.0;
    in.t_iter = 1.2;
    in.snapshot_bandwidth = 1e9;
    in.persist_bandwidth = 0.5e9;
    in.nonexpert_bytes_per_rank = 100e6;
    in.expert_unit_bytes = 200e6;
    in.num_moe_layers = 12;
    in.num_experts = 16;
    in.ep = 16;
    return in;
}

TEST(Adaptive, SnapshotTimeMonotoneInK) {
    const auto in = BaseInputs();
    for (std::size_t k = 1; k < 16; ++k) {
        EXPECT_LE(SnapshotTime(in, k), SnapshotTime(in, k + 1));
    }
}

TEST(Adaptive, PicksLargestOverlappableK) {
    const auto in = BaseInputs();
    const auto decision = ConfigureTwoLevelPec(in, 1);
    EXPECT_FALSE(decision.snapshot_overflows);
    EXPECT_LE(SnapshotTime(in, decision.k_snapshot), in.t_fb);
    if (decision.k_snapshot < in.num_experts) {
        EXPECT_GT(SnapshotTime(in, decision.k_snapshot + 1), in.t_fb);
    }
}

TEST(Adaptive, OverflowFlaggedWhenNothingFits) {
    auto in = BaseInputs();
    in.nonexpert_bytes_per_rank = 10e9;  // non-expert alone exceeds the window
    const auto decision = ConfigureTwoLevelPec(in, 1);
    EXPECT_TRUE(decision.snapshot_overflows);
    EXPECT_EQ(decision.k_snapshot, 1U);
}

TEST(Adaptive, IcKptMinCoversPersist) {
    const auto in = BaseInputs();
    const auto decision = ConfigureTwoLevelPec(in, 1);
    EXPECT_GE(static_cast<double>(decision.i_ckpt_min) * in.t_iter,
              decision.t_persist - 1e-9);
}

TEST(Adaptive, KPersistClamped) {
    const auto in = BaseInputs();
    const auto decision = ConfigureTwoLevelPec(in, 99);
    EXPECT_LE(decision.k_persist, decision.k_snapshot);
}

// ---------- Overhead model ----------

TEST(Overhead, SnapshotStallEq10) {
    EXPECT_DOUBLE_EQ(SnapshotStall(2.0, 1.5), 0.5);
    EXPECT_DOUBLE_EQ(SnapshotStall(1.0, 1.5), 0.0);
}

TEST(Overhead, ExpectedFaultsEq11) {
    FaultToleranceModel m;
    m.i_total = 1e5;
    m.lambda = 1e-4;
    EXPECT_DOUBLE_EQ(ExpectedFaults(m), 10.0);
}

TEST(Overhead, TotalOverheadEq12) {
    FaultToleranceModel m;
    m.i_total = 1000;
    m.lambda = 0.001;  // one expected fault
    m.t_iter = 2.0;
    m.o_restart = 100.0;
    // O = o_save * 1000/i + 1 * (100 + i/2 * 2).
    EXPECT_DOUBLE_EQ(TotalCheckpointOverhead(m, 5.0, 100.0),
                     5.0 * 10.0 + (100.0 + 100.0));
}

TEST(Overhead, OptimalIntervalMinimizes) {
    FaultToleranceModel m;
    m.i_total = 1e5;
    m.lambda = 1e-4;
    m.t_iter = 1.0;
    const double o_save = 8.0;
    const double best = OptimalInterval(m, o_save);
    const double at_best = TotalCheckpointOverhead(m, o_save, best);
    EXPECT_LT(at_best, TotalCheckpointOverhead(m, o_save, best * 2.0));
    EXPECT_LT(at_best, TotalCheckpointOverhead(m, o_save, best / 2.0));
}

TEST(Overhead, MocBeatsFullWhenSavingIsCheaper) {
    // Eq. 16: smaller o_save at the same interval always wins; a smaller
    // interval enabled by cheap saving also reduces the fault-loss term.
    FaultToleranceModel m;
    m.i_total = 1e5;
    m.lambda = 1e-4;
    m.t_iter = 1.0;
    m.o_restart = 60.0;
    EXPECT_TRUE(MocBeatsFull(m, 0.1, 100.0, 10.0, 100.0));
    const double i_moc = OptimalInterval(m, 0.1);
    const double i_full = OptimalInterval(m, 10.0);
    EXPECT_LT(i_moc, i_full);
    EXPECT_TRUE(MocBeatsFull(m, 0.1, i_moc, 10.0, i_full));
}

}  // namespace
}  // namespace moc
