/**
 * @file
 * Unit tests for the on-disk FileStore: round trips, nested keys, torn-write
 * detection, crash-consistency damage (truncation, bit flips, zero fill),
 * key validation, and interchangeability with MemoryStore through the
 * ObjectStore interface.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "obs/metrics.h"
#include "storage/file_store.h"
#include "storage/memory_store.h"
#include "storage/store_error.h"

namespace fs = std::filesystem;

namespace moc {
namespace {

/** RAII temp directory for one test. */
class TempDir {
  public:
    explicit TempDir(const char* tag) {
        path_ = fs::temp_directory_path() /
                (std::string("moc_fs_test_") + tag + "_" +
                 std::to_string(::getpid()));
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const fs::path& path() const { return path_; }

  private:
    fs::path path_;
};

Blob
MakeBlob(std::size_t size, std::uint8_t fill) {
    return Blob(size, fill);
}

TEST(FileStore, PutGetRoundTrip) {
    TempDir dir("roundtrip");
    FileStore store(dir.path());
    store.Put("ckpt", MakeBlob(1024, 0x7E));
    ASSERT_TRUE(store.Contains("ckpt"));
    const auto blob = store.Get("ckpt");
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(blob->size(), 1024U);
    EXPECT_EQ(blob->front(), 0x7E);
}

TEST(FileStore, NestedKeysBecomeDirectories) {
    TempDir dir("nested");
    FileStore store(dir.path());
    store.Put("moe/0/expert/3/w", MakeBlob(64, 1));
    store.Put("moe/0/expert/3/o", MakeBlob(64, 2));
    store.Put("layer/1/attn/w", MakeBlob(64, 3));
    EXPECT_EQ(store.Count(), 3U);
    EXPECT_EQ(store.Keys(),
              (std::vector<std::string>{"layer/1/attn/w", "moe/0/expert/3/o",
                                        "moe/0/expert/3/w"}));
    EXPECT_EQ(store.TotalBytes(), 192U);
}

TEST(FileStore, OverwriteReplaces) {
    TempDir dir("overwrite");
    FileStore store(dir.path());
    store.Put("k", MakeBlob(100, 1));
    store.Put("k", MakeBlob(10, 2));
    EXPECT_EQ(store.Get("k")->size(), 10U);
    EXPECT_EQ(store.TotalBytes(), 10U);
}

TEST(FileStore, EraseAndMissingKey) {
    TempDir dir("erase");
    FileStore store(dir.path());
    store.Put("k", MakeBlob(8, 0));
    store.Erase("k");
    EXPECT_FALSE(store.Contains("k"));
    EXPECT_FALSE(store.Get("k").has_value());
    store.Erase("never-existed");  // no-op
}

TEST(FileStore, SurvivesReopen) {
    TempDir dir("reopen");
    {
        FileStore store(dir.path());
        store.Put("persisted/key", MakeBlob(256, 0x42));
    }
    FileStore reopened(dir.path());
    ASSERT_TRUE(reopened.Contains("persisted/key"));
    EXPECT_EQ(reopened.Get("persisted/key")->size(), 256U);
}

TEST(FileStore, DetectsTornWrite) {
    TempDir dir("torn");
    FileStore store(dir.path());
    store.Put("k", MakeBlob(128, 0xAB));
    // Corrupt the file on disk behind the store's back.
    const fs::path file = dir.path() / "k.blob";
    {
        std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(64);
        const char evil = 0x00;
        f.write(&evil, 1);
    }
    EXPECT_THROW(store.Get("k"), std::runtime_error);
}

/** Overwrites byte range [offset, offset+n) of @p file with @p value. */
void
Smash(const fs::path& file, std::size_t offset, std::size_t n, char value) {
    std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(static_cast<std::streamoff>(offset));
    for (std::size_t i = 0; i < n; ++i) {
        f.write(&value, 1);
    }
}

obs::Counter&
CorruptReads() {
    return obs::MetricsRegistry::Instance().GetCounter(
        "store.corrupt_reads_total");
}

/** Every crash-consistency damage mode maps to the typed kCorrupt error. */
TEST(FileStoreCrash, BitFlipIsTypedCorrupt) {
    TempDir dir("bitflip");
    FileStore store(dir.path());
    store.Put("k", MakeBlob(128, 0xAB));
    Smash(dir.path() / "k.blob", 40, 1, 0x12);
    const std::uint64_t before = CorruptReads().value();
    try {
        store.Get("k");
        FAIL() << "corrupt blob read back without error";
    } catch (const StoreError& e) {
        EXPECT_EQ(e.kind(), StoreErrorKind::kCorrupt);
        EXPECT_EQ(e.key(), "k");
    }
    EXPECT_EQ(CorruptReads().value(), before + 1);
}

TEST(FileStoreCrash, TruncationIsTypedCorrupt) {
    TempDir dir("truncate");
    FileStore store(dir.path());
    store.Put("k", MakeBlob(256, 0x33));
    // A crash mid-write leaves a short file: payload and trailer cut off.
    fs::resize_file(dir.path() / "k.blob", 100);
    try {
        store.Get("k");
        FAIL() << "truncated blob read back without error";
    } catch (const StoreError& e) {
        EXPECT_EQ(e.kind(), StoreErrorKind::kCorrupt);
    }
}

TEST(FileStoreCrash, FileShorterThanTrailerIsTypedCorrupt) {
    TempDir dir("stub");
    FileStore store(dir.path());
    store.Put("k", MakeBlob(64, 0x11));
    fs::resize_file(dir.path() / "k.blob", 2);  // shorter than the CRC
    const std::uint64_t before = CorruptReads().value();
    try {
        store.Get("k");
        FAIL() << "trailer-less blob read back without error";
    } catch (const StoreError& e) {
        EXPECT_EQ(e.kind(), StoreErrorKind::kCorrupt);
    }
    EXPECT_EQ(CorruptReads().value(), before + 1);
}

TEST(FileStoreCrash, ZeroFillIsTypedCorrupt) {
    TempDir dir("zerofill");
    FileStore store(dir.path());
    store.Put("k", MakeBlob(512, 0x55));
    // Journal replay after power loss can leave a zero-filled extent.
    Smash(dir.path() / "k.blob", 0, 512 + sizeof(std::uint32_t), 0x00);
    EXPECT_THROW(store.Get("k"), StoreError);
    // The typed error still satisfies legacy std::runtime_error catch sites.
    EXPECT_THROW(store.Get("k"), std::runtime_error);
}

TEST(FileStoreCrash, DamageToOneKeyLeavesOthersReadable) {
    TempDir dir("isolation");
    FileStore store(dir.path());
    store.Put("good", MakeBlob(64, 0x01));
    store.Put("bad", MakeBlob(64, 0x02));
    Smash(dir.path() / "bad.blob", 10, 4, 0x7F);
    EXPECT_THROW(store.Get("bad"), StoreError);
    EXPECT_EQ(store.Get("good")->size(), 64U);
}

TEST(FileStore, RejectsBadKeys) {
    TempDir dir("badkeys");
    FileStore store(dir.path());
    EXPECT_THROW(store.Put("", MakeBlob(1, 0)), std::invalid_argument);
    EXPECT_THROW(store.Put("/abs", MakeBlob(1, 0)), std::invalid_argument);
    EXPECT_THROW(store.Put("trailing/", MakeBlob(1, 0)), std::invalid_argument);
    EXPECT_THROW(store.Put("a//b", MakeBlob(1, 0)), std::invalid_argument);
    EXPECT_THROW(store.Put("../escape", MakeBlob(1, 0)), std::invalid_argument);
    EXPECT_THROW(store.Put("a/./b", MakeBlob(1, 0)), std::invalid_argument);
}

TEST(FileStore, EmptyBlobAllowed) {
    TempDir dir("empty");
    FileStore store(dir.path());
    store.Put("zero", Blob{});
    const auto blob = store.Get("zero");
    ASSERT_TRUE(blob.has_value());
    EXPECT_TRUE(blob->empty());
}

/** The same behavioural contract holds for both ObjectStore backends. */
class StoreContract : public ::testing::TestWithParam<int> {
  protected:
    void SetUp() override {
        if (GetParam() == 0) {
            store_ = std::make_unique<MemoryStore>();
        } else {
            dir_ = std::make_unique<TempDir>("contract");
            store_ = std::make_unique<FileStore>(dir_->path());
        }
    }
    std::unique_ptr<TempDir> dir_;
    std::unique_ptr<ObjectStore> store_;
};

TEST_P(StoreContract, BasicSemantics) {
    auto& store = *store_;
    EXPECT_EQ(store.Count(), 0U);
    store.Put("a/b", MakeBlob(5, 9));
    store.Put("a/c", MakeBlob(7, 9));
    EXPECT_EQ(store.Count(), 2U);
    EXPECT_EQ(store.TotalBytes(), 12U);
    EXPECT_TRUE(store.Contains("a/b"));
    EXPECT_FALSE(store.Contains("a"));
    store.Erase("a/b");
    EXPECT_EQ(store.Keys(), (std::vector<std::string>{"a/c"}));
}

INSTANTIATE_TEST_SUITE_P(Backends, StoreContract, ::testing::Values(0, 1),
                         [](const auto& info) {
                             return info.param == 0 ? "Memory" : "File";
                         });

}  // namespace
}  // namespace moc
