/**
 * @file
 * Unit tests for the on-disk FileStore: round trips, nested keys, torn-write
 * detection, key validation, and interchangeability with MemoryStore
 * through the ObjectStore interface.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "storage/file_store.h"
#include "storage/memory_store.h"

namespace fs = std::filesystem;

namespace moc {
namespace {

/** RAII temp directory for one test. */
class TempDir {
  public:
    explicit TempDir(const char* tag) {
        path_ = fs::temp_directory_path() /
                (std::string("moc_fs_test_") + tag + "_" +
                 std::to_string(::getpid()));
        fs::remove_all(path_);
        fs::create_directories(path_);
    }
    ~TempDir() { fs::remove_all(path_); }
    const fs::path& path() const { return path_; }

  private:
    fs::path path_;
};

Blob
MakeBlob(std::size_t size, std::uint8_t fill) {
    return Blob(size, fill);
}

TEST(FileStore, PutGetRoundTrip) {
    TempDir dir("roundtrip");
    FileStore store(dir.path());
    store.Put("ckpt", MakeBlob(1024, 0x7E));
    ASSERT_TRUE(store.Contains("ckpt"));
    const auto blob = store.Get("ckpt");
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(blob->size(), 1024U);
    EXPECT_EQ(blob->front(), 0x7E);
}

TEST(FileStore, NestedKeysBecomeDirectories) {
    TempDir dir("nested");
    FileStore store(dir.path());
    store.Put("moe/0/expert/3/w", MakeBlob(64, 1));
    store.Put("moe/0/expert/3/o", MakeBlob(64, 2));
    store.Put("layer/1/attn/w", MakeBlob(64, 3));
    EXPECT_EQ(store.Count(), 3U);
    EXPECT_EQ(store.Keys(),
              (std::vector<std::string>{"layer/1/attn/w", "moe/0/expert/3/o",
                                        "moe/0/expert/3/w"}));
    EXPECT_EQ(store.TotalBytes(), 192U);
}

TEST(FileStore, OverwriteReplaces) {
    TempDir dir("overwrite");
    FileStore store(dir.path());
    store.Put("k", MakeBlob(100, 1));
    store.Put("k", MakeBlob(10, 2));
    EXPECT_EQ(store.Get("k")->size(), 10U);
    EXPECT_EQ(store.TotalBytes(), 10U);
}

TEST(FileStore, EraseAndMissingKey) {
    TempDir dir("erase");
    FileStore store(dir.path());
    store.Put("k", MakeBlob(8, 0));
    store.Erase("k");
    EXPECT_FALSE(store.Contains("k"));
    EXPECT_FALSE(store.Get("k").has_value());
    store.Erase("never-existed");  // no-op
}

TEST(FileStore, SurvivesReopen) {
    TempDir dir("reopen");
    {
        FileStore store(dir.path());
        store.Put("persisted/key", MakeBlob(256, 0x42));
    }
    FileStore reopened(dir.path());
    ASSERT_TRUE(reopened.Contains("persisted/key"));
    EXPECT_EQ(reopened.Get("persisted/key")->size(), 256U);
}

TEST(FileStore, DetectsTornWrite) {
    TempDir dir("torn");
    FileStore store(dir.path());
    store.Put("k", MakeBlob(128, 0xAB));
    // Corrupt the file on disk behind the store's back.
    const fs::path file = dir.path() / "k.blob";
    {
        std::fstream f(file, std::ios::binary | std::ios::in | std::ios::out);
        f.seekp(64);
        const char evil = 0x00;
        f.write(&evil, 1);
    }
    EXPECT_THROW(store.Get("k"), std::runtime_error);
}

TEST(FileStore, RejectsBadKeys) {
    TempDir dir("badkeys");
    FileStore store(dir.path());
    EXPECT_THROW(store.Put("", MakeBlob(1, 0)), std::invalid_argument);
    EXPECT_THROW(store.Put("/abs", MakeBlob(1, 0)), std::invalid_argument);
    EXPECT_THROW(store.Put("trailing/", MakeBlob(1, 0)), std::invalid_argument);
    EXPECT_THROW(store.Put("a//b", MakeBlob(1, 0)), std::invalid_argument);
    EXPECT_THROW(store.Put("../escape", MakeBlob(1, 0)), std::invalid_argument);
    EXPECT_THROW(store.Put("a/./b", MakeBlob(1, 0)), std::invalid_argument);
}

TEST(FileStore, EmptyBlobAllowed) {
    TempDir dir("empty");
    FileStore store(dir.path());
    store.Put("zero", Blob{});
    const auto blob = store.Get("zero");
    ASSERT_TRUE(blob.has_value());
    EXPECT_TRUE(blob->empty());
}

/** The same behavioural contract holds for both ObjectStore backends. */
class StoreContract : public ::testing::TestWithParam<int> {
  protected:
    void SetUp() override {
        if (GetParam() == 0) {
            store_ = std::make_unique<MemoryStore>();
        } else {
            dir_ = std::make_unique<TempDir>("contract");
            store_ = std::make_unique<FileStore>(dir_->path());
        }
    }
    std::unique_ptr<TempDir> dir_;
    std::unique_ptr<ObjectStore> store_;
};

TEST_P(StoreContract, BasicSemantics) {
    auto& store = *store_;
    EXPECT_EQ(store.Count(), 0U);
    store.Put("a/b", MakeBlob(5, 9));
    store.Put("a/c", MakeBlob(7, 9));
    EXPECT_EQ(store.Count(), 2U);
    EXPECT_EQ(store.TotalBytes(), 12U);
    EXPECT_TRUE(store.Contains("a/b"));
    EXPECT_FALSE(store.Contains("a"));
    store.Erase("a/b");
    EXPECT_EQ(store.Keys(), (std::vector<std::string>{"a/c"}));
}

INSTANTIATE_TEST_SUITE_P(Backends, StoreContract, ::testing::Values(0, 1),
                         [](const auto& info) {
                             return info.param == 0 ? "Memory" : "File";
                         });

}  // namespace
}  // namespace moc
