/**
 * @file
 * Seeded storage-fault soak: the MoC checkpoint system runs against a
 * fault-injecting backend across many seeds, and for every seed either
 * recovery succeeds with verified bytes or it fails with a typed
 * StoreError. The success path is checked against a weight "lattice":
 * every parameter was perturbed by exactly +1 per iteration, so a restored
 * tensor must sit at initial + r for some checkpointed iteration r — any
 * corruption that slipped through verification lands off-lattice.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <string>
#include <vector>

#include "core/moc_system.h"
#include "nn/model.h"
#include "storage/faulty_store.h"
#include "storage/memory_store.h"
#include "storage/store_error.h"

namespace moc {
namespace {

LmConfig
TinyLm(std::uint64_t seed) {
    LmConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.hidden = 16;
    cfg.num_heads = 2;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 4;
    cfg.top_k = 1;
    cfg.seed = seed;
    return cfg;
}

void
Perturb(ParamSource& model, float delta) {
    for (auto* p : model.AllParameters()) {
        for (std::size_t i = 0; i < p->size(); ++i) {
            p->value()[i] += delta;
        }
    }
}

struct SoakOutcome {
    bool recovered = false;
    /** Non-empty = lattice violation (corruption passed verification). */
    std::string corruption;
};

/**
 * One faulty run: checkpoints every 4 iterations under injected storage
 * faults, then a node fault at iteration 18. Throws nothing: typed
 * recovery failures report recovered=false, anything off-lattice reports
 * a corruption string.
 */
SoakOutcome
RunSoak(std::uint64_t seed) {
    MoeTransformerLm model(TinyLm(7));
    const RankTopology topo({.dp = 4, .ep = 4, .tp = 1, .pp = 1}, 2);

    MemoryStore disk;
    FaultyStore flaky(disk, seed);

    MocSystemConfig cfg;
    cfg.pec.k_snapshot = 2;
    cfg.pec.k_persist = 1;
    cfg.i_ckpt = 4;
    cfg.persist_backend = &flaky;
    cfg.retry.max_attempts = 8;
    cfg.retry.initial_backoff_s = 1e-6;
    cfg.retry.max_backoff_s = 1e-5;
    cfg.persist_generations = 3;

    // Per-parameter snapshot of the pristine model (iteration 0), in
    // parameter-group order so the lattice check can walk it back.
    std::vector<std::vector<float>> initial;
    for (const auto& group : model.ParameterGroups()) {
        for (const auto* p : group.params) {
            const Tensor& v = p->value();
            initial.emplace_back(v.data(), v.data() + v.size());
        }
    }

    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, model, topo, TinyLm(7).ToModelSpec(),
                               extra);

    // The initial checkpoint must land on healthy storage; arm afterwards.
    StorageFaultProfile profile;
    profile.put_transient_error = 0.10;
    profile.get_transient_error = 0.05;
    profile.torn_write = 0.05;
    profile.bit_flip = 0.05;
    profile.lost_write = 0.05;
    profile.read_corrupt = 0.05;
    flaky.Arm(profile);

    constexpr std::size_t kFaultIteration = 18;
    for (std::size_t iter = 1; iter <= kFaultIteration; ++iter) {
        Perturb(model, 1.0f);
        if (system.ShouldCheckpoint(iter)) {
            const ExtraState at{iter, iter, model.gating_rng().GetState()};
            system.Checkpoint(iter, at);
        }
    }

    SoakOutcome outcome;
    RecoveryReport report;
    try {
        report = system.RecoverFromFault({0, 1});
    } catch (const StoreError&) {
        return outcome;  // a typed failure is an acceptable soak outcome
    }
    outcome.recovered = true;

    const std::size_t restart = report.extra.iteration;
    if (restart % cfg.i_ckpt != 0 || restart > kFaultIteration) {
        outcome.corruption = "restart iteration " + std::to_string(restart) +
                             " was never checkpointed";
        return outcome;
    }
    // Lattice check: every element of every parameter must be initial + r
    // (within float accumulation error), with one integer r per group:
    // r == restart for non-expert groups, r <= restart (a checkpointed
    // iteration) for expert groups restored from an older PEC generation.
    std::size_t param_index = 0;
    for (const auto& group : model.ParameterGroups()) {
        const bool expert = group.key.find("/expert/") != std::string::npos;
        std::optional<long> group_r;
        for (const auto* p : group.params) {
            const auto& values = p->value();
            for (std::size_t i = 0; i < values.size(); ++i) {
                const float r = values[i] - initial[param_index][i];
                const float nearest = std::round(r);
                if (std::abs(r - nearest) > 5e-3f || nearest < 0.0f) {
                    outcome.corruption = group.key + " off-lattice: " +
                                         std::to_string(r);
                    return outcome;
                }
                if (!group_r) {
                    group_r = static_cast<long>(nearest);
                } else if (static_cast<long>(nearest) != *group_r) {
                    outcome.corruption =
                        group.key + " mixes iterations " +
                        std::to_string(*group_r) + " and " +
                        std::to_string(nearest);
                    return outcome;
                }
            }
            ++param_index;
        }
        const auto r = static_cast<std::size_t>(*group_r);
        const bool valid =
            expert ? (r <= restart && r % cfg.i_ckpt == 0) : r == restart;
        if (!valid) {
            outcome.corruption = group.key + " restored at iteration " +
                                 std::to_string(r) + ", restart " +
                                 std::to_string(restart);
            return outcome;
        }
    }
    return outcome;
}

TEST(StorageSoak, TwentyFiveSeedsRecoverVerifiedOrFailTyped) {
    std::size_t recovered = 0;
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        const SoakOutcome outcome = RunSoak(seed);
        EXPECT_EQ(outcome.corruption, "") << "seed " << seed;
        recovered += outcome.recovered ? 1 : 0;
    }
    // The soak must actually exercise the success path: with verification
    // and read repair, most seeds recover despite the injected faults.
    EXPECT_GE(recovered, 13u);
}

}  // namespace
}  // namespace moc
