/**
 * @file
 * Unit tests for the cluster observability plane's live half: the clock
 * offset estimator (net/clock_sync.h) under seeded delay and reorder, the
 * kTelemetry wire codec and the drop-never-block publisher
 * (net/telemetry.h), and the coordinator-side aggregator with its
 * cluster-median straggler detector (obs/cluster_view.h).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "net/clock_sync.h"
#include "net/inproc_transport.h"
#include "net/telemetry.h"
#include "obs/cluster_view.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace moc {
namespace {

// ---------------------------------------------------------------- clock ---

TEST(ClusterClock, SingleSymmetricExchangeRecoversOffset) {
    net::ClockOffsetEstimator estimator;
    // Responder's clock runs 5 ms ahead; 100 us each way on the wire.
    net::ClockSample s;
    s.t0 = 1'000'000;
    s.t1 = s.t0 + 100'000 + 5'000'000;
    s.t2 = s.t1 + 10'000;
    s.t3 = s.t0 + 210'000;
    const net::ClockEstimate est = estimator.Add(s);
    EXPECT_EQ(est.offset_ns, 5'000'000);
    EXPECT_EQ(est.rtt_ns, 200'000);
    EXPECT_EQ(est.samples, 1u);
}

TEST(ClusterClock, MinRttFilterConvergesUnderSeededDelay) {
    // True offset 2 ms. Every exchange suffers random asymmetric queueing
    // delay; one clean exchange should dominate the estimate because the
    // filter picks the minimum-RTT sample, whose asymmetry error is least.
    constexpr std::int64_t kTrueOffset = 2'000'000;
    std::mt19937 rng(42);
    std::uniform_int_distribution<std::int64_t> noise(0, 400'000);
    net::ClockOffsetEstimator estimator;
    std::int64_t now = 10'000'000;
    for (int i = 0; i < 30; ++i) {
        const std::int64_t up = 50'000 + noise(rng);
        const std::int64_t down = 50'000 + noise(rng);
        net::ClockSample s;
        s.t0 = now;
        s.t1 = s.t0 + up + kTrueOffset;
        s.t2 = s.t1 + 5'000;
        s.t3 = s.t0 + up + 5'000 + down;
        estimator.Add(s);
        now += 1'000'000;
    }
    const auto est = estimator.Estimate();
    ASSERT_TRUE(est.has_value());
    // The min-RTT sample's error is bounded by half its path asymmetry,
    // itself bounded by half the best-seen RTT spread.
    EXPECT_NEAR(static_cast<double>(est->offset_ns),
                static_cast<double>(kTrueOffset),
                static_cast<double>(est->rtt_ns) / 2.0);
    EXPECT_EQ(est->samples, 30u);
    EXPECT_EQ(estimator.rejected(), 0u);
}

TEST(ClusterClock, NegativeRttSamplesAreRejected) {
    net::ClockOffsetEstimator estimator;
    net::ClockSample good;
    good.t0 = 0;
    good.t1 = 1'000'000;
    good.t2 = 1'010'000;
    good.t3 = 100'000;
    estimator.Add(good);

    // A reordered/garbled exchange: turnaround longer than the round trip.
    net::ClockSample bad = good;
    bad.t2 = bad.t1 + 500'000;
    estimator.Add(bad);
    EXPECT_EQ(estimator.rejected(), 1u);
    const auto est = estimator.Estimate();
    ASSERT_TRUE(est.has_value());
    EXPECT_EQ(est->samples, 1u);  // the bad sample never entered the window
    EXPECT_EQ(est->offset_ns, good.OffsetNs());
}

TEST(ClusterClock, SlidingWindowTracksDrift) {
    net::ClockOffsetEstimator estimator(/*window=*/4);
    // Early samples see offset A, later ones offset B; once A's samples
    // age out of the window, the estimate must follow B.
    const auto feed = [&](std::int64_t offset, std::int64_t t0) {
        net::ClockSample s;
        s.t0 = t0;
        s.t1 = t0 + 50'000 + offset;
        s.t2 = s.t1 + 1'000;
        s.t3 = t0 + 101'000;
        estimator.Add(s);
    };
    for (int i = 0; i < 4; ++i) {
        feed(1'000'000, i * 1'000'000);
    }
    EXPECT_EQ(estimator.Estimate()->offset_ns, 1'000'000);
    for (int i = 4; i < 8; ++i) {
        feed(3'000'000, i * 1'000'000);
    }
    EXPECT_EQ(estimator.Estimate()->offset_ns, 3'000'000);
}

// ------------------------------------------------------------ telemetry ---

obs::TelemetrySample
SampleFixture() {
    obs::TelemetrySample s;
    s.rank = 3;
    s.generation = 7;
    s.iteration = 42;
    s.phase = "persist";
    s.phase_since_ns = 111'222'333;
    s.sent_ns = 999'888'777;
    s.clock_offset_ns = -5'000;
    s.counters = {{"ckpt.events", 12.0}, {"net.frames", 3456.5}};
    return s;
}

TEST(ClusterTelemetry, CodecRoundTripsEveryField) {
    const obs::TelemetrySample in = SampleFixture();
    const obs::TelemetrySample out =
        net::DecodeTelemetry(net::EncodeTelemetry(in));
    EXPECT_EQ(out.rank, in.rank);
    EXPECT_EQ(out.generation, in.generation);
    EXPECT_EQ(out.iteration, in.iteration);
    EXPECT_EQ(out.phase, in.phase);
    EXPECT_EQ(out.phase_since_ns, in.phase_since_ns);
    EXPECT_EQ(out.sent_ns, in.sent_ns);
    EXPECT_EQ(out.clock_offset_ns, in.clock_offset_ns);
    ASSERT_EQ(out.counters.size(), in.counters.size());
    for (std::size_t i = 0; i < in.counters.size(); ++i) {
        EXPECT_EQ(out.counters[i].first, in.counters[i].first);
        EXPECT_DOUBLE_EQ(out.counters[i].second, in.counters[i].second);
    }
}

TEST(ClusterTelemetry, DecodeThrowsOnTruncation) {
    Blob wire = net::EncodeTelemetry(SampleFixture());
    wire.resize(wire.size() / 2);
    EXPECT_THROW(net::DecodeTelemetry(wire), std::runtime_error);
}

TEST(ClusterTelemetry, PublisherDropsInsteadOfBlockingOnFullMailbox) {
    const std::uint64_t dropped_before = obs::MetricsRegistry::Instance()
                                      .GetCounter("obs.telemetry.dropped")
                                      .value();
    // A 2-slot coordinator mailbox that nobody drains: the third and later
    // publishes must shed, and PublishNow must return promptly each time.
    net::InprocHub hub(/*queue_capacity=*/2);
    net::InprocTransport coordinator(hub, net::kCoordinatorPeer);
    net::InprocTransport rank(hub, 1);

    net::TelemetryPublisher::Options options;
    options.coordinator = net::kCoordinatorPeer;
    options.rank = 1;
    net::TelemetryPublisher publisher(rank, options);
    std::size_t sent = 0;
    std::size_t shed = 0;
    for (int i = 0; i < 10; ++i) {
        (publisher.PublishNow() ? sent : shed) += 1;
    }
    EXPECT_EQ(sent, 2u);
    EXPECT_EQ(shed, 8u);
    EXPECT_EQ(publisher.published(), 2u);
    EXPECT_EQ(publisher.dropped(), 8u);
    const std::uint64_t dropped_after = obs::MetricsRegistry::Instance()
                                     .GetCounter("obs.telemetry.dropped")
                                     .value();
    EXPECT_GE(dropped_after - dropped_before, 8u);

    // The two accepted samples decode into real telemetry.
    const auto msg = coordinator.Recv(1.0);
    ASSERT_TRUE(msg.has_value());
    ASSERT_EQ(msg->type, net::MsgType::kTelemetry);
    const obs::TelemetrySample s = net::DecodeTelemetry(msg->payload);
    EXPECT_EQ(s.rank, 1);
    EXPECT_GT(s.sent_ns, 0);
}

// ----------------------------------------------------------- aggregator ---

class ClusterViewTest : public ::testing::Test {
  protected:
    void SetUp() override {
        obs::ClusterAggregator::Instance().Reset();
        obs::EventJournal::Instance().Clear();
    }

    /** Feeds a sample for @p rank sitting in @p phase since @p since_ns. */
    static void Feed(std::int32_t rank, const char* phase,
                     std::int64_t since_ns, std::int64_t sent_ns,
                     std::uint64_t gen = 1) {
        obs::TelemetrySample s;
        s.rank = rank;
        s.generation = gen;
        s.iteration = gen;
        s.phase = phase;
        s.phase_since_ns = since_ns;
        s.sent_ns = sent_ns;
        obs::ClusterAggregator::Instance().Observe(s, sent_ns);
    }

    static std::size_t StragglerEvents() {
        std::size_t n = 0;
        for (const auto& e : obs::EventJournal::Instance().Collect()) {
            n += e.kind == obs::EventKind::kStraggler ? 1 : 0;
        }
        return n;
    }
};

TEST_F(ClusterViewTest, FlagsRankFarBehindClusterMedian) {
    // Ranks 0 and 1 complete a 100 ms persist (idle samples close the
    // phase); rank 2 then reports 600 ms elapsed and still going.
    Feed(0, "persist", 10'000'000, 110'000'000);
    Feed(1, "persist", 10'000'000, 110'000'000);
    Feed(0, "", 110'000'000, 115'000'000);
    Feed(1, "", 110'000'000, 115'000'000);
    Feed(2, "persist", 10'000'000, 610'000'000);

    auto& agg = obs::ClusterAggregator::Instance();
    EXPECT_EQ(agg.Stragglers(), std::vector<std::int32_t>{2});
    EXPECT_EQ(StragglerEvents(), 1u);

    bool found = false;
    for (const auto& h : agg.Health()) {
        if (h.rank == 2) {
            found = true;
            EXPECT_TRUE(h.straggler);
            EXPECT_LT(h.slack_s, 0.0);  // behind the median
            EXPECT_NEAR(h.cluster_median_s, 0.1, 1e-9);
        }
    }
    EXPECT_TRUE(found);
}

TEST_F(ClusterViewTest, JournalsOncePerRankAndGeneration) {
    Feed(0, "persist", 10'000'000, 110'000'000);
    Feed(1, "persist", 10'000'000, 110'000'000);
    Feed(0, "", 110'000'000, 115'000'000);
    Feed(1, "", 110'000'000, 115'000'000);
    Feed(2, "persist", 10'000'000, 610'000'000);
    Feed(2, "persist", 10'000'000, 710'000'000);  // still behind, same gen
    EXPECT_EQ(StragglerEvents(), 1u);

    // A new generation re-arms the journal.
    Feed(0, "persist", 10'000'000, 110'000'000, /*gen=*/2);
    Feed(1, "persist", 10'000'000, 110'000'000, /*gen=*/2);
    Feed(0, "", 110'000'000, 115'000'000, /*gen=*/2);
    Feed(1, "", 110'000'000, 115'000'000, /*gen=*/2);
    Feed(2, "persist", 10'000'000, 610'000'000, /*gen=*/2);
    EXPECT_EQ(StragglerEvents(), 2u);
}

TEST_F(ClusterViewTest, NeedsMinPeersBeforeFlagging) {
    // Only one peer completed the phase: the median is not trustworthy.
    Feed(0, "persist", 10'000'000, 110'000'000);
    Feed(0, "", 110'000'000, 115'000'000);
    Feed(2, "persist", 10'000'000, 910'000'000);
    EXPECT_TRUE(obs::ClusterAggregator::Instance().Stragglers().empty());
    EXPECT_EQ(StragglerEvents(), 0u);
}

TEST_F(ClusterViewTest, PeerDeathFoldsIntoHealthView) {
    Feed(0, "persist", 10'000'000, 50'000'000);
    obs::ClusterAggregator::Instance().ObservePeerDeath(0, "eof");
    const auto health = obs::ClusterAggregator::Instance().Health();
    ASSERT_EQ(health.size(), 1u);
    EXPECT_FALSE(health[0].alive);
    EXPECT_EQ(health[0].death_cause, "eof");

    // Death of a rank never heard from still creates a row.
    obs::ClusterAggregator::Instance().ObservePeerDeath(7,
                                                        "heartbeat_timeout");
    EXPECT_EQ(obs::ClusterAggregator::Instance().Health().size(), 2u);
}

TEST_F(ClusterViewTest, SeriesKeepsBoundedRing) {
    for (int i = 0; i < 300; ++i) {
        Feed(1, "persist", 1, 1'000'000 * (i + 1));
    }
    const auto series = obs::ClusterAggregator::Instance().Series(1);
    EXPECT_EQ(series.size(), obs::ClusterAggregator::kRingCapacity);
    // Oldest first; the newest sample is the last one fed.
    EXPECT_EQ(series.back().sent_ns, 1'000'000 * 300);
}

}  // namespace
}  // namespace moc
