/**
 * @file
 * Tests for the live observability endpoint (obs/http_endpoint.h): the
 * `/metrics` body round-trips through ParsePrometheusText (hostile label
 * values included, no duplicate series), `/healthz` flips to 503 on a peer
 * death, `/ranks` and `/series` parse as their JSON schemas, malformed
 * requests are answered not obeyed, and `moc_cli watch` maps endpoint
 * state onto its 0/1/2 exit codes.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cli_lib.h"
#include "obs/cluster_view.h"
#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/timeseries.h"
#include "util/json.h"

namespace moc {
namespace {

/**
 * Sends @p payload verbatim and returns everything the server answers —
 * for the request shapes HttpGet() itself refuses to produce (POST,
 * oversized request lines).
 */
std::string
RawExchange(std::uint16_t port, const std::string& payload) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        return "";
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
        ::close(fd);
        return "";
    }
    (void)::send(fd, payload.data(), payload.size(), 0);
    std::string reply;
    char buf[1024];
    for (;;) {
        const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
        if (n <= 0) {
            break;
        }
        reply.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return reply;
}

obs::TelemetrySample
Sample(std::int32_t rank, const std::string& phase) {
    obs::TelemetrySample s;
    s.rank = rank;
    s.generation = 1;
    s.iteration = 5;
    s.phase = phase;
    return s;
}

class ObsHttpTest : public ::testing::Test {
  protected:
    void SetUp() override {
        obs::ClusterAggregator::Instance().Reset();
        obs::TimeSeriesRing::Instance().Reset();
    }
    void TearDown() override {
        obs::ClusterAggregator::Instance().Reset();
        obs::TimeSeriesRing::Instance().Reset();
    }
};

TEST_F(ObsHttpTest, ParseHttpUrlAcceptsHostPortAndRejectsJunk) {
    const auto parts = obs::ParseHttpUrl("http://127.0.0.1:8080/metrics");
    ASSERT_TRUE(parts.has_value());
    EXPECT_EQ(parts->host, "127.0.0.1");
    EXPECT_EQ(parts->port, 8080);
    EXPECT_TRUE(obs::ParseHttpUrl("http://localhost:1").has_value());
    EXPECT_FALSE(obs::ParseHttpUrl("https://127.0.0.1:8080").has_value());
    EXPECT_FALSE(obs::ParseHttpUrl("127.0.0.1:8080").has_value());
    EXPECT_FALSE(obs::ParseHttpUrl("http://127.0.0.1").has_value());
    EXPECT_FALSE(obs::ParseHttpUrl("http://127.0.0.1:0").has_value());
    EXPECT_FALSE(obs::ParseHttpUrl("http://127.0.0.1:99999").has_value());
}

TEST_F(ObsHttpTest, MetricsScrapeRoundTripsThroughThePrometheusParser) {
    // Hostile wire strings: phases and death causes arrive from other
    // processes and must come back intact through label escaping.
    const std::string hostile_phase = "per\\sist \"quoted\"\nline";
    const std::string hostile_cause = "kill\\-9 \"now\"";
    auto& cluster = obs::ClusterAggregator::Instance();
    cluster.Observe(Sample(0, hostile_phase), 0);
    cluster.Observe(Sample(1, "persist"), 0);
    cluster.ObservePeerDeath(1, hostile_cause);
    obs::IterationPoint point;
    point.iteration = 5;
    point.iter_seconds = 0.25;
    point.live_ranks = 1;
    obs::TimeSeriesRing::Instance().Append(point);

    obs::HttpEndpoint endpoint;
    endpoint.Start();
    ASSERT_GT(endpoint.port(), 0);
    const auto scrape =
        obs::HttpGet("127.0.0.1", endpoint.port(), "/metrics");
    ASSERT_TRUE(scrape.has_value());
    EXPECT_EQ(scrape->status, 200);

    const auto samples = obs::ParsePrometheusText(scrape->body);
    ASSERT_FALSE(samples.empty());

    // Same (name, labels) pair twice would be an invalid exposition.
    std::set<std::pair<std::string, std::string>> seen;
    for (const auto& s : samples) {
        std::string key;
        for (const auto& [k, v] : s.labels) {
            key += k + "\x1f" + v + "\x1f";
        }
        EXPECT_TRUE(seen.emplace(s.name, key).second)
            << "duplicate series: " << s.name << "{" << key << "}";
    }

    std::map<std::string, const obs::PromSample*> by_rank_phase;
    std::set<std::string> names;
    for (const auto& s : samples) {
        names.insert(s.name);
        if (s.name == "moc_rank_phase") {
            by_rank_phase[s.labels.at("rank")] = &s;
        }
    }
    for (const char* required :
         {"moc_rank_alive", "moc_rank_phase", "moc_rank_straggler",
          "moc_rank_slack_seconds", "moc_rank_death_cause",
          "moc_series_total", "moc_series_last_iteration",
          "moc_series_last_iter_seconds", "moc_series_last_live_ranks"}) {
        EXPECT_TRUE(names.count(required)) << "missing " << required;
    }
    ASSERT_TRUE(by_rank_phase.count("0"));
    EXPECT_EQ(by_rank_phase.at("0")->labels.at("phase"), hostile_phase);

    bool found_cause = false;
    for (const auto& s : samples) {
        if (s.name == "moc_rank_death_cause" && s.labels.at("rank") == "1") {
            found_cause = true;
            EXPECT_EQ(s.labels.at("cause"), hostile_cause);
            EXPECT_DOUBLE_EQ(s.value, 1.0);
        }
        if (s.name == "moc_series_total") {
            EXPECT_DOUBLE_EQ(s.value, 1.0);
        }
        if (s.name == "moc_series_last_iteration") {
            EXPECT_DOUBLE_EQ(s.value, 5.0);
        }
    }
    EXPECT_TRUE(found_cause);
    endpoint.Stop();
}

TEST_F(ObsHttpTest, HealthzFlipsTo503WhenARankDies) {
    auto& cluster = obs::ClusterAggregator::Instance();
    cluster.Observe(Sample(0, "persist"), 0);
    cluster.Observe(Sample(1, "persist"), 0);

    obs::HttpEndpoint endpoint;
    endpoint.Start();
    auto healthz = obs::HttpGet("127.0.0.1", endpoint.port(), "/healthz");
    ASSERT_TRUE(healthz.has_value());
    EXPECT_EQ(healthz->status, 200);
    json::Value doc = json::Parse(healthz->body);
    EXPECT_EQ(doc.At("schema").AsString(), "moc-health/1");
    EXPECT_TRUE(doc.At("healthy").AsBool());
    EXPECT_EQ(doc.At("ranks").AsU64(), 2u);
    EXPECT_EQ(doc.At("alive").AsU64(), 2u);

    cluster.ObservePeerDeath(1, "heartbeat_timeout");
    healthz = obs::HttpGet("127.0.0.1", endpoint.port(), "/healthz");
    ASSERT_TRUE(healthz.has_value());
    EXPECT_EQ(healthz->status, 503);
    doc = json::Parse(healthz->body);
    EXPECT_FALSE(doc.At("healthy").AsBool());
    EXPECT_EQ(doc.At("alive").AsU64(), 1u);
    const json::Array& dead = doc.At("dead").AsArray();
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0].At("rank").AsI64(), 1);
    EXPECT_EQ(dead[0].At("cause").AsString(), "heartbeat_timeout");
    endpoint.Stop();
}

TEST_F(ObsHttpTest, RanksAndSeriesRoutesServeTheirJsonSchemas) {
    obs::ClusterAggregator::Instance().Observe(Sample(3, "persist"), 0);
    for (std::uint64_t i = 1; i <= 4; ++i) {
        obs::IterationPoint point;
        point.iteration = i;
        obs::TimeSeriesRing::Instance().Append(point);
    }

    obs::HttpEndpoint endpoint;
    endpoint.Start();
    const auto ranks = obs::HttpGet("127.0.0.1", endpoint.port(), "/ranks");
    ASSERT_TRUE(ranks.has_value());
    EXPECT_EQ(ranks->status, 200);
    const json::Value rdoc = json::Parse(ranks->body);
    EXPECT_EQ(rdoc.At("schema").AsString(), "moc-ranks/1");
    const json::Array& rows = rdoc.At("ranks").AsArray();
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0].At("rank").AsI64(), 3);
    EXPECT_TRUE(rows[0].At("alive").AsBool());
    EXPECT_EQ(rows[0].At("phase").AsString(), "persist");

    // ?last=N bounds the window; total keeps counting.
    const auto series =
        obs::HttpGet("127.0.0.1", endpoint.port(), "/series?last=2");
    ASSERT_TRUE(series.has_value());
    EXPECT_EQ(series->status, 200);
    const json::Value sdoc = json::Parse(series->body);
    EXPECT_EQ(sdoc.At("schema").AsString(), "moc-series/1");
    EXPECT_EQ(sdoc.At("total").AsU64(), 4u);
    const json::Array& points = sdoc.At("points").AsArray();
    ASSERT_EQ(points.size(), 2u);
    EXPECT_EQ(points[0].At("iteration").AsU64(), 3u);
    EXPECT_EQ(points[1].At("iteration").AsU64(), 4u);
    endpoint.Stop();
}

TEST_F(ObsHttpTest, AnswersMalformedRequestsInsteadOfObeyingThem) {
    obs::HttpOptions options;
    options.max_request_bytes = 128;
    obs::HttpEndpoint endpoint(options);
    endpoint.Start();

    auto& registry = obs::MetricsRegistry::Instance();
    const std::uint64_t errors_before =
        registry.GetCounter("obs.http.errors").value();

    const auto missing = obs::HttpGet("127.0.0.1", endpoint.port(), "/nope");
    ASSERT_TRUE(missing.has_value());
    EXPECT_EQ(missing->status, 404);

    const std::string post = RawExchange(
        endpoint.port(), "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n");
    EXPECT_NE(post.find("405"), std::string::npos) << post;

    // No head terminator: the byte cap must answer 400, not wait it out.
    const std::string oversized =
        RawExchange(endpoint.port(), "GET /" + std::string(512, 'a'));
    EXPECT_NE(oversized.find("400"), std::string::npos) << oversized;

    EXPECT_GE(registry.GetCounter("obs.http.errors").value(),
              errors_before + 3);
    endpoint.Stop();
}

TEST_F(ObsHttpTest, CustomRoutesAndRequestCounting) {
    obs::HttpEndpoint endpoint;
    endpoint.SetRoute("/custom", [](const std::string&, const std::string& q) {
        obs::HttpResponse r;
        r.body = "query=" + q;
        return r;
    });
    endpoint.Start();
    auto& requests =
        obs::MetricsRegistry::Instance().GetCounter("obs.http.requests");
    const std::uint64_t before = requests.value();
    const auto reply =
        obs::HttpGet("127.0.0.1", endpoint.port(), "/custom?k=v");
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->status, 200);
    EXPECT_EQ(reply->body, "query=k=v");
    EXPECT_EQ(requests.value(), before + 1);
    endpoint.Stop();
    // Stop is idempotent, and a stopped endpoint is unreachable.
    endpoint.Stop();
    EXPECT_FALSE(
        obs::HttpGet("127.0.0.1", endpoint.port(), "/custom", 0.2).has_value());
}

TEST_F(ObsHttpTest, WatchExitCodesTrackEndpointState) {
    // Exit 2: nothing listening there at all.
    {
        obs::HttpEndpoint probe;
        probe.Start();
        const std::uint16_t dead_port = probe.port();
        probe.Stop();
        std::ostringstream out, err;
        const int code = cli::Main(
            {"watch", "--url",
             "http://127.0.0.1:" + std::to_string(dead_port), "--once"},
            out, err);
        EXPECT_EQ(code, 2) << out.str() << err.str();
    }

    obs::ClusterAggregator::Instance().Observe(Sample(0, "persist"), 0);
    obs::ClusterAggregator::Instance().Observe(Sample(1, "persist"), 0);
    obs::IterationPoint point;
    point.iteration = 9;
    obs::TimeSeriesRing::Instance().Append(point);
    obs::HttpEndpoint endpoint;
    endpoint.Start();
    const std::string url =
        "http://127.0.0.1:" + std::to_string(endpoint.port());

    // Exit 0: reachable and every rank alive; human table names the ranks.
    {
        std::ostringstream out, err;
        const int code = cli::Main({"watch", "--url", url, "--once"}, out, err);
        EXPECT_EQ(code, 0) << out.str() << err.str();
        EXPECT_NE(out.str().find("HEALTHY"), std::string::npos) << out.str();
    }

    // --watch-json emits one parseable moc-watch/1 document per poll.
    {
        std::ostringstream out, err;
        const int code = cli::Main(
            {"watch", "--url", url, "--once", "--watch-json"}, out, err);
        EXPECT_EQ(code, 0) << out.str() << err.str();
        const json::Value doc = json::Parse(out.str());
        EXPECT_EQ(doc.At("schema").AsString(), "moc-watch/1");
        EXPECT_TRUE(doc.At("reachable").AsBool());
        EXPECT_EQ(doc.At("healthz").At("schema").AsString(), "moc-health/1");
        EXPECT_EQ(doc.At("series").At("schema").AsString(), "moc-series/1");
    }

    // Exit 1: reachable but degraded.
    obs::ClusterAggregator::Instance().ObservePeerDeath(1, "eof");
    {
        std::ostringstream out, err;
        const int code = cli::Main({"watch", "--url", url, "--once"}, out, err);
        EXPECT_EQ(code, 1) << out.str() << err.str();
        EXPECT_NE(out.str().find("DEGRADED"), std::string::npos) << out.str();
    }
    endpoint.Stop();
}

}  // namespace
}  // namespace moc
