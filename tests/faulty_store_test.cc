/**
 * @file
 * Unit tests for the FaultyStore injector: inert until armed, seeded
 * determinism, every fault class observable, metadata path unfaulted.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "storage/faulty_store.h"
#include "storage/memory_store.h"
#include "storage/store_error.h"

namespace moc {
namespace {

Blob
Pattern(std::size_t size) {
    Blob blob(size);
    for (std::size_t i = 0; i < size; ++i) {
        blob[i] = static_cast<std::uint8_t>(i * 37 + 11);
    }
    return blob;
}

/** Bits differing between two equal-length blobs. */
std::size_t
BitDiff(const Blob& a, const Blob& b) {
    std::size_t diff = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        std::uint8_t x = a[i] ^ b[i];
        while (x != 0) {
            diff += x & 1u;
            x >>= 1u;
        }
    }
    return diff;
}

TEST(FaultyStore, InertUntilArmed) {
    MemoryStore base;
    FaultyStore store(base, /*seed=*/1);
    EXPECT_FALSE(store.armed());
    store.Put("k", Pattern(64));
    EXPECT_EQ(*store.Get("k"), Pattern(64));
    EXPECT_EQ(store.injected().Total(), 0u);
}

TEST(FaultyStore, ArmRejectsBadProbabilities) {
    MemoryStore base;
    FaultyStore store(base, 1);
    StorageFaultProfile profile;
    profile.bit_flip = 1.5;
    EXPECT_THROW(store.Arm(profile), std::invalid_argument);
    profile.bit_flip = 0.5;
    profile.latency_spike_seconds = -1.0;
    EXPECT_THROW(store.Arm(profile), std::invalid_argument);
}

TEST(FaultyStore, TransientWriteThrowsTyped) {
    MemoryStore base;
    FaultyStore store(base, 2);
    StorageFaultProfile profile;
    profile.put_transient_error = 1.0;
    store.Arm(profile);
    try {
        store.Put("k", Pattern(16));
        FAIL() << "expected an injected transient error";
    } catch (const StoreError& e) {
        EXPECT_EQ(e.kind(), StoreErrorKind::kTransient);
        EXPECT_EQ(e.key(), "k");
    }
    EXPECT_FALSE(base.Contains("k"));
    EXPECT_EQ(store.injected().transient_errors, 1u);
}

TEST(FaultyStore, LostWriteReportsSuccessStoresNothing) {
    MemoryStore base;
    FaultyStore store(base, 3);
    StorageFaultProfile profile;
    profile.lost_write = 1.0;
    store.Arm(profile);
    store.Put("k", Pattern(16));  // no throw
    EXPECT_FALSE(base.Contains("k"));
    EXPECT_EQ(store.injected().lost_writes, 1u);
}

TEST(FaultyStore, TornWriteTruncates) {
    MemoryStore base;
    FaultyStore store(base, 4);
    StorageFaultProfile profile;
    profile.torn_write = 1.0;
    store.Arm(profile);
    store.Put("k", Pattern(128));
    ASSERT_TRUE(base.Contains("k"));
    EXPECT_LT(base.Get("k")->size(), 128u);
    EXPECT_EQ(store.injected().torn_writes, 1u);
}

TEST(FaultyStore, BitFlipDamagesExactlyOneBit) {
    MemoryStore base;
    FaultyStore store(base, 5);
    StorageFaultProfile profile;
    profile.bit_flip = 1.0;
    store.Arm(profile);
    store.Put("k", Pattern(128));
    const Blob stored = *base.Get("k");
    ASSERT_EQ(stored.size(), 128u);
    EXPECT_EQ(BitDiff(stored, Pattern(128)), 1u);
    EXPECT_EQ(store.injected().bit_flips, 1u);
}

TEST(FaultyStore, ReadCorruptionLeavesStoreIntact) {
    MemoryStore base;
    FaultyStore store(base, 6);
    store.Put("k", Pattern(64));
    StorageFaultProfile profile;
    profile.read_corrupt = 1.0;
    store.Arm(profile);
    const Blob read = *store.Get("k");
    EXPECT_EQ(BitDiff(read, Pattern(64)), 1u);
    store.Disarm();
    EXPECT_EQ(*store.Get("k"), Pattern(64));  // the bytes at rest are fine
    EXPECT_EQ(store.injected().corrupt_reads, 1u);
}

TEST(FaultyStore, MetadataOpsPassThroughWhileArmed) {
    MemoryStore base;
    FaultyStore store(base, 7);
    store.Put("a/b", Pattern(8));
    StorageFaultProfile profile;
    profile.put_transient_error = 1.0;
    profile.get_transient_error = 1.0;
    store.Arm(profile);
    EXPECT_TRUE(store.Contains("a/b"));
    EXPECT_EQ(store.Keys(), (std::vector<std::string>{"a/b"}));
    EXPECT_EQ(store.Count(), 1u);
    EXPECT_EQ(store.TotalBytes(), 8u);
    store.Erase("a/b");
    EXPECT_FALSE(base.Contains("a/b"));
}

TEST(FaultyStore, SameSeedSameFaultSequence) {
    // The whole fault stream is a pure function of (seed, op sequence).
    const auto run = [](std::uint64_t seed) {
        MemoryStore base;
        FaultyStore store(base, seed);
        StorageFaultProfile profile;
        profile.put_transient_error = 0.3;
        profile.torn_write = 0.3;
        profile.bit_flip = 0.2;
        store.Arm(profile);
        std::string trace;
        for (int i = 0; i < 64; ++i) {
            try {
                store.Put("k" + std::to_string(i), Pattern(32));
                const auto blob = base.Get("k" + std::to_string(i));
                trace += blob && blob->size() == 32 ? 'o' : 't';
            } catch (const StoreError&) {
                trace += 'x';
            }
        }
        return trace;
    };
    EXPECT_EQ(run(42), run(42));
    EXPECT_NE(run(42), run(43));  // astronomically unlikely to collide
}

}  // namespace
}  // namespace moc
