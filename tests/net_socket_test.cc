/**
 * @file
 * Unit tests for the TCP transport (net/socket_transport.h): the
 * kHello/kWelcome handshake, context round trips over a real socket, EOF
 * and heartbeat-timeout death detection with peer_death journaling, the
 * kGoodbye orderly-close protocol, and session-epoch reconnects.
 */

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>

#include "net/frame.h"
#include "net/socket_transport.h"
#include "obs/journal.h"

namespace moc::net {
namespace {

/** Heartbeats fast enough that timeout tests finish in tens of ms. */
SocketOptions
FastOptions() {
    SocketOptions options;
    options.heartbeat.interval_s = 0.02;
    options.heartbeat.miss_limit = 4;
    return options;
}

std::size_t
PeerDeathCount(const char* cause) {
    std::size_t n = 0;
    for (const auto& event : obs::EventJournal::Instance().Collect()) {
        if (event.kind == obs::EventKind::kPeerDeath &&
            event.detail.find(std::string("cause=") + cause) !=
                std::string::npos) {
            ++n;
        }
    }
    return n;
}

class NetSocketTest : public ::testing::Test {
  protected:
    void SetUp() override { obs::EventJournal::Instance().Clear(); }
};

TEST_F(NetSocketTest, HandshakeAssignsSessionEpoch) {
    auto listener = SocketTransport::Listen(0, kCoordinatorPeer,
                                            FastOptions());
    ASSERT_NE(listener->port(), 0);

    auto rank = SocketTransport::Connect("127.0.0.1", listener->port(), 1,
                                         FastOptions());
    EXPECT_EQ(rank->epoch(), 1U);
    ASSERT_TRUE(listener->WaitForPeers(1, 5.0));
    EXPECT_TRUE(listener->Alive(1));
    const auto peers = listener->Peers();
    ASSERT_EQ(peers.size(), 1U);
    EXPECT_EQ(peers[0], 1U);
}

TEST_F(NetSocketTest, RoundTripCarriesContextOverTheWire) {
    auto listener = SocketTransport::Listen(0, kCoordinatorPeer,
                                            FastOptions());
    auto rank = SocketTransport::Connect("127.0.0.1", listener->port(), 1,
                                         FastOptions());
    ASSERT_TRUE(listener->WaitForPeers(1, 5.0));

    obs::TraceContext ctx;
    ctx.generation = 6;
    ctx.iteration = 300;
    ctx.rank = 1;
    ctx.phase = "barrier";
    ASSERT_TRUE(rank->Send(kCoordinatorPeer, MsgType::kRankDone,
                           {1, 2, 3, 4}, ctx));

    auto msg = listener->Recv(5.0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->type, MsgType::kRankDone);
    EXPECT_EQ(msg->from, 1U);
    EXPECT_EQ(msg->payload, (Blob{1, 2, 3, 4}));
    EXPECT_EQ(msg->ctx.generation, 6U);
    EXPECT_EQ(msg->ctx.iteration, 300U);
    EXPECT_EQ(msg->ctx.rank, 1);
    EXPECT_STREQ(msg->ctx.phase, "barrier");

    // And the other direction.
    ASSERT_TRUE(listener->Send(1, MsgType::kCkptBegin, {7}));
    auto back = rank->Recv(5.0);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->type, MsgType::kCkptBegin);
    EXPECT_EQ(back->from, kCoordinatorPeer);
}

TEST_F(NetSocketTest, EofIsDeclaredDeathAndJournaled) {
    auto listener = SocketTransport::Listen(0, kCoordinatorPeer,
                                            FastOptions());
    auto rank = SocketTransport::Connect("127.0.0.1", listener->port(), 1,
                                         FastOptions());
    ASSERT_TRUE(listener->WaitForPeers(1, 5.0));

    // Close without a goodbye: the SIGKILL model. The listener's reader
    // hits EOF and must declare death, journal it, and deliver it in-band.
    rank->Close();
    auto msg = listener->Recv(5.0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->type, MsgType::kPeerDeath);
    EXPECT_EQ(msg->from, 1U);
    EXPECT_FALSE(listener->Alive(1));
    EXPECT_EQ(PeerDeathCount("eof"), 1U);
}

TEST_F(NetSocketTest, GoodbyeMakesTheDisconnectOrderly) {
    auto listener = SocketTransport::Listen(0, kCoordinatorPeer,
                                            FastOptions());
    auto rank = SocketTransport::Connect("127.0.0.1", listener->port(), 1,
                                         FastOptions());
    ASSERT_TRUE(listener->WaitForPeers(1, 5.0));

    ASSERT_TRUE(rank->Send(kCoordinatorPeer, MsgType::kGoodbye, {}));
    rank->Close();

    // No death: the goodbye retired the connection before the EOF.
    auto msg = listener->Recv(0.3);
    EXPECT_FALSE(msg.has_value());
    EXPECT_EQ(PeerDeathCount("eof"), 0U);
    EXPECT_EQ(PeerDeathCount("heartbeat_timeout"), 0U);
}

TEST_F(NetSocketTest, SilentPeerDiesByHeartbeatTimeout) {
    auto listener = SocketTransport::Listen(0, kCoordinatorPeer,
                                            FastOptions());

    // Handshake by hand over a raw socket, then go silent with the
    // connection open — the SIGSTOP model: no EOF, only missing beacons.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(listener->port());
    ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)), 0);

    Frame hello;
    hello.type = MsgType::kHello;
    hello.src_peer = 2;
    const Blob wire = EncodeFrame(hello);
    ASSERT_EQ(::send(fd, wire.data(), wire.size(), 0),
              static_cast<ssize_t>(wire.size()));

    // The welcome proves the handshake completed; then: silence.
    ASSERT_TRUE(listener->WaitForPeers(1, 5.0));
    auto msg = listener->Recv(5.0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->type, MsgType::kPeerDeath);
    EXPECT_EQ(msg->from, 2U);
    EXPECT_EQ(PeerDeathCount("heartbeat_timeout"), 1U);
    ::close(fd);
}

TEST_F(NetSocketTest, ReconnectAdmitsAFreshEpoch) {
    auto listener = SocketTransport::Listen(0, kCoordinatorPeer,
                                            FastOptions());
    auto first = SocketTransport::Connect("127.0.0.1", listener->port(), 1,
                                          FastOptions());
    ASSERT_TRUE(listener->WaitForPeers(1, 5.0));
    EXPECT_EQ(first->epoch(), 1U);

    // The rank "restarts": a second connect under the same peer id. The
    // listener admits epoch 2 and supersedes the first connection.
    auto second = SocketTransport::Connect("127.0.0.1", listener->port(), 1,
                                           FastOptions());
    EXPECT_EQ(second->epoch(), 2U);

    // Traffic from the new session flows under the new epoch.
    ASSERT_TRUE(second->Send(kCoordinatorPeer, MsgType::kData, {5}));
    std::optional<Message> msg;
    while ((msg = listener->Recv(5.0))) {
        if (msg->type == MsgType::kData) {
            break;
        }
        // A supersession may synthesize transient messages; skip them.
    }
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->epoch, 2U);
    EXPECT_TRUE(listener->Alive(1));
}

TEST_F(NetSocketTest, ConnectToClosedPortRetriesThenThrows) {
    SocketOptions options = FastOptions();
    options.connect_retry.max_attempts = 2;
    options.connect_retry.initial_timeout_s = 0.01;
    options.connect_retry.op_deadline_s = 0.2;
    // Port 1 on localhost: nothing listens there in the test container.
    EXPECT_THROW(SocketTransport::Connect("127.0.0.1", 1, 3, options),
                 std::runtime_error);
}

TEST_F(NetSocketTest, LateJoinerIsCountedByWaitForPeers) {
    auto listener = SocketTransport::Listen(0, kCoordinatorPeer,
                                            FastOptions());
    const std::uint16_t port = listener->port();
    std::atomic<bool> seen{false};
    std::thread joiner([port, &seen] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        auto rank = SocketTransport::Connect("127.0.0.1", port, 4,
                                             FastOptions());
        // Stay connected until the waiter has counted us; an immediate
        // goodbye could retire the connection between its polls.
        while (!seen.load()) {
            std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        // Leave politely so the listener side stays quiet.
        rank->Send(kCoordinatorPeer, MsgType::kGoodbye, {});
    });
    EXPECT_TRUE(listener->WaitForPeers(1, 5.0));
    seen.store(true);
    joiner.join();
}

}  // namespace
}  // namespace moc::net
