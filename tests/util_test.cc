/**
 * @file
 * Unit tests for the util module: RNG determinism and distributions,
 * statistics accumulators, clocks, thread pool, table rendering, byte
 * formatting, CRC32, and the JSON reader.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <set>
#include <thread>

#include "util/bytes.h"
#include "util/clock.h"
#include "util/crc32.h"
#include "util/hash.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/thread_pool.h"

namespace moc {
namespace {

// ---------- Rng ----------

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(a.Next(), b.Next());
    }
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1);
    Rng b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.Next() == b.Next()) {
            ++same;
        }
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.Uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.Uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversRange) {
    Rng rng(3);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.UniformInt(8);
        EXPECT_LT(v, 8U);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 8U);
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i) {
        stat.Add(rng.Gaussian());
    }
    EXPECT_NEAR(stat.mean(), 0.0, 0.05);
    EXPECT_NEAR(stat.stddev(), 1.0, 0.05);
}

TEST(Rng, GaussianShiftScale) {
    Rng rng(11);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i) {
        stat.Add(rng.Gaussian(5.0, 2.0));
    }
    EXPECT_NEAR(stat.mean(), 5.0, 0.1);
    EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
    Rng rng(13);
    RunningStat stat;
    for (int i = 0; i < 20000; ++i) {
        stat.Add(rng.Exponential(4.0));
    }
    EXPECT_NEAR(stat.mean(), 0.25, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
    Rng a(99);
    Rng b = a.Split();
    int same = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.Next() == b.Next()) {
            ++same;
        }
    }
    EXPECT_LT(same, 2);
}

TEST(Rng, StateRoundTripReproducesStream) {
    Rng rng(17);
    rng.Gaussian();  // populate the cached-gaussian path
    const auto state = rng.GetState();
    std::vector<std::uint64_t> expected;
    for (int i = 0; i < 16; ++i) {
        expected.push_back(rng.Next());
    }
    Rng other(0);
    other.SetState(state);
    for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(other.Next(), expected[static_cast<std::size_t>(i)]);
    }
}

TEST(Rng, ShuffleIsPermutation) {
    Rng rng(23);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto sorted = v;
    rng.Shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, sorted);
}

TEST(ZipfTable, SamplesAreSkewed) {
    ZipfTable table(100, 1.2);
    Rng rng(5);
    std::size_t low = 0;
    for (int i = 0; i < 10000; ++i) {
        if (table.Sample(rng) < 10) {
            ++low;
        }
    }
    // Zipf(1.2): the top-10 of 100 items carry well over half the mass.
    EXPECT_GT(low, 5000U);
}

TEST(ZipfTable, RejectsEmpty) {
    EXPECT_THROW(ZipfTable(0, 1.0), std::invalid_argument);
}

// ---------- RunningStat ----------

TEST(RunningStat, BasicMoments) {
    RunningStat s;
    for (double x : {1.0, 2.0, 3.0, 4.0}) {
        s.Add(x);
    }
    EXPECT_EQ(s.count(), 4U);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
    EXPECT_NEAR(s.variance(), 1.25, 1e-12);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
}

TEST(RunningStat, MergeMatchesCombined) {
    RunningStat a;
    RunningStat b;
    RunningStat all;
    Rng rng(31);
    for (int i = 0; i < 100; ++i) {
        const double x = rng.Gaussian();
        ((i % 2 != 0) ? a : b).Add(x);
        all.Add(x);
    }
    a.Merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(RunningStat, EmptyIsZero) {
    RunningStat s;
    EXPECT_EQ(s.count(), 0U);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
}

// ---------- Histogram ----------

TEST(Histogram, CountsAndClamping) {
    Histogram h(0.0, 10.0, 10);
    h.Add(0.5);
    h.Add(9.5);
    h.Add(-5.0);   // clamps to first bin
    h.Add(100.0);  // clamps to last bin
    EXPECT_EQ(h.total(), 4U);
    EXPECT_EQ(h.bin_count(0), 2U);
    EXPECT_EQ(h.bin_count(9), 2U);
}

TEST(Histogram, PercentileMonotone) {
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i) {
        h.Add(static_cast<double>(i));
    }
    EXPECT_LE(h.Percentile(10), h.Percentile(50));
    EXPECT_LE(h.Percentile(50), h.Percentile(90));
    EXPECT_NEAR(h.Percentile(50), 50.0, 2.0);
}

TEST(Ewma, ConvergesToConstant) {
    Ewma e(0.5);
    EXPECT_TRUE(e.empty());
    for (int i = 0; i < 50; ++i) {
        e.Add(3.0);
    }
    EXPECT_NEAR(e.value(), 3.0, 1e-9);
}

TEST(Ewma, RejectsBadAlpha) {
    EXPECT_THROW(Ewma(0.0), std::invalid_argument);
    EXPECT_THROW(Ewma(1.5), std::invalid_argument);
}

// ---------- Clocks ----------

TEST(VirtualClock, AdvancesExactly) {
    VirtualClock clock;
    EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
    clock.Advance(1.5);
    EXPECT_DOUBLE_EQ(clock.Now(), 1.5);
    clock.AdvanceTo(4.0);
    EXPECT_DOUBLE_EQ(clock.Now(), 4.0);
}

TEST(WallClock, MonotonicAndSleeps) {
    WallClock clock;
    const Seconds t0 = clock.Now();
    clock.Advance(0.01);
    EXPECT_GE(clock.Now() - t0, 0.009);
}

TEST(Stopwatch, MeasuresVirtualTime) {
    VirtualClock clock;
    Stopwatch sw(clock);
    clock.Advance(2.0);
    EXPECT_DOUBLE_EQ(sw.Elapsed(), 2.0);
    sw.Reset();
    EXPECT_DOUBLE_EQ(sw.Elapsed(), 0.0);
}

// ---------- ThreadPool ----------

TEST(ThreadPool, RunsAllTasks) {
    ThreadPool pool(4);
    std::atomic<int> counter{0};
    for (int i = 0; i < 100; ++i) {
        pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, FuturesReturnValues) {
    ThreadPool pool(2);
    auto f = pool.Submit([] { return 7 * 6; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, RejectsZeroThreads) {
    EXPECT_THROW(ThreadPool(0), std::invalid_argument);
}

// ---------- Table ----------

TEST(Table, RendersAlignedRows) {
    Table t({"name", "value"});
    t.AddRow({"alpha", "1"});
    t.AddRow({"b", "22222"});
    const std::string s = t.ToString();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22222"), std::string::npos);
    EXPECT_EQ(t.rows(), 2U);
}

TEST(Table, RejectsArityMismatch) {
    Table t({"a", "b"});
    EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(Table, NumFormatsPrecision) {
    EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::Num(2.0, 0), "2");
}

// ---------- Bytes ----------

TEST(Bytes, FormatPicksUnit) {
    EXPECT_EQ(FormatBytes(512), "512 B");
    EXPECT_NE(FormatBytes(2 * kKiB).find("KiB"), std::string::npos);
    EXPECT_NE(FormatBytes(3 * kMiB).find("MiB"), std::string::npos);
    EXPECT_NE(FormatBytes(5 * kGiB).find("GiB"), std::string::npos);
}

TEST(Bytes, CeilDivRoundsUp) {
    EXPECT_EQ(CeilDiv(10, 3), 4U);
    EXPECT_EQ(CeilDiv(9, 3), 3U);
    EXPECT_EQ(CeilDiv(1, 100), 1U);
}

// ---------- CRC32 ----------

TEST(Crc32, KnownVector) {
    // CRC-32("123456789") = 0xCBF43926 (IEEE 802.3 check value).
    const char* s = "123456789";
    EXPECT_EQ(Crc32(s, 9), 0xCBF43926U);
}

TEST(Crc32, IncrementalMatchesOneShot) {
    const std::string data = "the quick brown fox jumps over the lazy dog";
    const auto full = Crc32(data.data(), data.size());
    std::uint32_t inc = Crc32Update(0, data.data(), 10);
    inc = Crc32Update(inc, data.data() + 10, data.size() - 10);
    EXPECT_EQ(inc, full);
}

TEST(Crc32, DetectsBitFlip) {
    std::vector<std::uint8_t> data(64, 0xAB);
    const auto before = Crc32(data.data(), data.size());
    data[17] ^= 0x01;
    EXPECT_NE(Crc32(data.data(), data.size()), before);
}

TEST(Crc32c, KnownVector) {
    // CRC-32C("123456789") = 0xE3069283 (Castagnoli check value).
    const char* s = "123456789";
    EXPECT_EQ(Crc32c(s, 9), 0xE3069283U);
}

TEST(Crc32c, IncrementalMatchesOneShot) {
    const std::string data = "the quick brown fox jumps over the lazy dog";
    const auto full = Crc32c(data.data(), data.size());
    std::uint32_t inc = Crc32cUpdate(0, data.data(), 10);
    inc = Crc32cUpdate(inc, data.data() + 10, data.size() - 10);
    EXPECT_EQ(inc, full);
}

/**
 * Regression: an outer CRC over sections that each embed their own
 * same-polynomial trailer is constant regardless of the payloads —
 * `crc(M || crc(M))` drives the register to a fixed residue. Checkpoint
 * blobs have exactly this shape (per-tensor IEEE trailers), which once
 * let a lost write of a same-shaped stale shard pass verification. The
 * verification checksum must therefore use a different polynomial.
 */
TEST(Crc32c, DifferentPolynomialSeesThroughEmbeddedTrailers) {
    const auto section_with_trailer = [](std::uint8_t fill) {
        std::vector<std::uint8_t> section(40, fill);
        const std::uint32_t crc = Crc32(section.data(), section.size());
        for (int i = 0; i < 4; ++i) {
            section.push_back(static_cast<std::uint8_t>(crc >> (8 * i)));
        }
        return section;
    };
    const auto blob_a = section_with_trailer(0x11);
    const auto blob_b = section_with_trailer(0x77);
    ASSERT_NE(blob_a, blob_b);
    // The IEEE outer CRC collides: it never saw the payload.
    EXPECT_EQ(Crc32(blob_a.data(), blob_a.size()),
              Crc32(blob_b.data(), blob_b.size()));
    // The Castagnoli outer CRC distinguishes the payloads.
    EXPECT_NE(Crc32c(blob_a.data(), blob_a.size()),
              Crc32c(blob_b.data(), blob_b.size()));
}

/**
 * The production tables are slice-by-8; this bytewise loop is the
 * textbook reference. Any table-generation or stride bug shows up as a
 * mismatch at some length/offset combination.
 */
std::uint32_t
BytewiseCrc(std::uint32_t poly, std::uint32_t crc, const std::uint8_t* p,
            std::size_t n) {
    crc = ~crc;
    for (std::size_t i = 0; i < n; ++i) {
        crc ^= p[i];
        for (int b = 0; b < 8; ++b) {
            crc = (crc >> 1) ^ (poly & (0U - (crc & 1U)));
        }
    }
    return ~crc;
}

TEST(Crc32, SliceBy8MatchesBytewiseReferenceAtEveryLength) {
    Rng rng(7);
    std::vector<std::uint8_t> data(300);
    for (auto& byte : data) {
        byte = static_cast<std::uint8_t>(rng.Next());
    }
    for (std::size_t n = 0; n <= data.size(); n += (n < 24 ? 1 : 7)) {
        EXPECT_EQ(Crc32(data.data(), n),
                  BytewiseCrc(0xEDB88320U, 0, data.data(), n))
            << "IEEE length " << n;
        EXPECT_EQ(Crc32c(data.data(), n),
                  BytewiseCrc(0x82F63B78U, 0, data.data(), n))
            << "Castagnoli length " << n;
    }
    // Unaligned incremental splits exercise the byte head/tail paths
    // around the 8-byte strides.
    for (const std::size_t split : {1U, 3U, 7U, 8U, 9U, 63U, 64U, 65U}) {
        std::uint32_t inc = Crc32cUpdate(0, data.data(), split);
        inc = Crc32cUpdate(inc, data.data() + split, data.size() - split);
        EXPECT_EQ(inc, Crc32c(data.data(), data.size())) << "split " << split;
    }
}

// ---------- FNV-1a ----------

TEST(Fnv1a64, KnownVectorsAndIncrementalUpdate) {
    // Published FNV-1a 64 check values.
    EXPECT_EQ(Fnv1a64(nullptr, 0), 0xCBF29CE484222325ULL);
    const char* a = "a";
    EXPECT_EQ(Fnv1a64(a, 1), 0xAF63DC4C8601EC8CULL);
    const std::string s = "foobar";
    EXPECT_EQ(Fnv1a64(s.data(), s.size()), 0x85944171F73967E8ULL);
    std::uint64_t inc = Fnv1a64Update(kFnv1a64Offset, s.data(), 3);
    inc = Fnv1a64Update(inc, s.data() + 3, 3);
    EXPECT_EQ(inc, Fnv1a64(s.data(), s.size()));
}

// ---------- JSON reader ----------

TEST(Json, ParsesScalars) {
    EXPECT_TRUE(json::Parse("null").is_null());
    EXPECT_EQ(json::Parse("true").AsBool(), true);
    EXPECT_EQ(json::Parse("false").AsBool(), false);
    EXPECT_DOUBLE_EQ(json::Parse("-12.5e2").AsNumber(), -1250.0);
    EXPECT_EQ(json::Parse("\"hi\"").AsString(), "hi");
    EXPECT_EQ(json::Parse("  42 \n").AsNumber(), 42.0);  // outer whitespace
}

TEST(Json, ParsesStringEscapes) {
    EXPECT_EQ(json::Parse("\"a\\\"b\\\\c\\nd\\te\"").AsString(), "a\"b\\c\nd\te");
    // \u escape decodes to UTF-8.
    EXPECT_EQ(json::Parse("\"\\u0041\\u00e9\"").AsString(), "A\xc3\xa9");
}

TEST(Json, ParsesNestedContainers) {
    const json::Value v =
        json::Parse("{\"a\": [1, 2, {\"b\": true}], \"c\": {\"d\": null}}");
    const json::Array& a = v.At("a").AsArray();
    ASSERT_EQ(a.size(), 3U);
    EXPECT_DOUBLE_EQ(a[1].AsNumber(), 2.0);
    EXPECT_TRUE(a[2].At("b").AsBool());
    EXPECT_TRUE(v.At("c").At("d").is_null());
    EXPECT_EQ(v.Find("missing"), nullptr);
    EXPECT_THROW(v.At("missing"), std::invalid_argument);
    EXPECT_DOUBLE_EQ(v.NumberOr("missing", 7.0), 7.0);
    EXPECT_EQ(v.StringOr("missing", "fb"), "fb");
}

TEST(Json, EmptyContainersAndDeepCopy) {
    const json::Value v = json::Parse("{\"a\": [], \"o\": {}}");
    EXPECT_TRUE(v.At("a").AsArray().empty());
    EXPECT_TRUE(v.At("o").AsObject().empty());
    json::Value copy = v;  // deep copy must not alias
    EXPECT_TRUE(copy.At("a").AsArray().empty());
}

TEST(Json, RejectsMalformedDocuments) {
    EXPECT_THROW(json::Parse(""), std::invalid_argument);
    EXPECT_THROW(json::Parse("{"), std::invalid_argument);
    EXPECT_THROW(json::Parse("[1,]"), std::invalid_argument);
    EXPECT_THROW(json::Parse("{\"a\" 1}"), std::invalid_argument);
    EXPECT_THROW(json::Parse("\"unterminated"), std::invalid_argument);
    EXPECT_THROW(json::Parse("nul"), std::invalid_argument);
    EXPECT_THROW(json::Parse("1 2"), std::invalid_argument);  // trailing junk
    EXPECT_THROW(json::Parse("{1: 2}"), std::invalid_argument);
}

TEST(Json, KindMismatchThrows) {
    const json::Value v = json::Parse("3");
    EXPECT_THROW(v.AsString(), std::invalid_argument);
    EXPECT_THROW(v.AsArray(), std::invalid_argument);
    EXPECT_THROW(v.AsBool(), std::invalid_argument);
    EXPECT_EQ(v.Find("x"), nullptr);  // Find on a non-object is just absent
}

TEST(Json, Integer64BitTokensRoundTripExactly) {
    // (1 << 53) + 1 is the first integer a double cannot represent; the
    // manifest's iterations and byte counters must survive it.
    const std::uint64_t odd = (1ULL << 53) + 1;
    EXPECT_EQ(json::Parse("9007199254740993").AsU64(), odd);
    EXPECT_NE(static_cast<std::uint64_t>(
                  json::Parse("9007199254740993").AsNumber()),
              odd)
        << "double path should round — exactness must come from AsU64";
    EXPECT_EQ(json::Parse("18446744073709551615").AsU64(), ~0ULL);
    EXPECT_EQ(json::Parse("-9007199254740993").AsI64(),
              -static_cast<std::int64_t>(odd));
    EXPECT_EQ(json::Parse("-9223372036854775808").AsI64(),
              std::numeric_limits<std::int64_t>::min());

    const json::Value obj = json::Parse("{\"n\": 9007199254740993}");
    EXPECT_EQ(obj.U64Or("n", 0), odd);
    EXPECT_EQ(obj.U64Or("missing", 5), 5U);
}

TEST(Json, InexactIntegerConversionsThrowTyped) {
    // Negative and overflowing values have no u64/i64 representation.
    EXPECT_THROW(json::Parse("-1").AsU64(), std::invalid_argument);
    EXPECT_THROW(json::Parse("18446744073709551616").AsU64(),
                 std::invalid_argument);
    EXPECT_THROW(json::Parse("9223372036854775808").AsI64(),
                 std::invalid_argument);
    // A fractional or huge float token has no exact integer value either.
    EXPECT_THROW(json::Parse("1.5").AsU64(), std::invalid_argument);
    EXPECT_THROW(json::Parse("1e300").AsU64(), std::invalid_argument);
    // Float *syntax* with an integral value stays usable (9e2 has an exact
    // double representation well inside 2^53).
    EXPECT_EQ(json::Parse("9e2").AsU64(), 900U);
}

}  // namespace
}  // namespace moc
