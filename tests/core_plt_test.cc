/**
 * @file
 * Unit tests for the PLT ledger (Eq. 7): lost-token charging on recovery,
 * counter rollback for replay, multi-fault accumulation, and the Dynamic-K
 * controller.
 */

#include <gtest/gtest.h>

#include "core/dynamic_k.h"
#include "core/plt.h"

namespace moc {
namespace {

/** Routes `count` tokens to every expert of every layer. */
void
RouteUniform(PltLedger& ledger, std::size_t layers, std::size_t experts,
             std::size_t count) {
    const std::vector<std::size_t> per_expert(experts, count);
    for (std::size_t m = 0; m < layers; ++m) {
        ledger.RecordRouting(m, per_expert, experts * count);
    }
}

TEST(PltLedger, ZeroBeforeAnyFault) {
    PltLedger ledger(2, 4);
    RouteUniform(ledger, 2, 4, 10);
    EXPECT_DOUBLE_EQ(ledger.Plt(), 0.0);
}

TEST(PltLedger, CumulativeCountsAccumulate) {
    PltLedger ledger(1, 2);
    ledger.RecordRouting(0, {3, 5}, 8);
    ledger.RecordRouting(0, {2, 1}, 3);
    EXPECT_EQ(ledger.CumulativeTokens(0, 0), 5U);
    EXPECT_EQ(ledger.CumulativeTokens(0, 1), 6U);
    EXPECT_EQ(ledger.LayerAssignments(0), 11U);
}

TEST(PltLedger, FullRecoveryLosesNothing) {
    PltLedger ledger(1, 2);
    ledger.RecordRouting(0, {10, 10}, 20);
    ledger.RecordCheckpointEvent(8);
    // Everything recovered at the restart point itself: zero loss.
    ledger.OnFaultRecovery(8, {{8, 8}});
    EXPECT_EQ(ledger.LostTokens(0, 0), 0U);
    EXPECT_DOUBLE_EQ(ledger.Plt(), 0.0);
}

TEST(PltLedger, StaleExpertChargedExactly) {
    PltLedger ledger(1, 2);
    // Checkpoint at iteration 4 with counts (10, 10).
    ledger.RecordRouting(0, {10, 10}, 20);
    ledger.RecordCheckpointEvent(4);
    // More routing, checkpoint at iteration 8 with counts (25, 12).
    ledger.RecordRouting(0, {15, 2}, 17);
    ledger.RecordCheckpointEvent(8);
    // Fault: expert 0 only recovered from iteration 4; expert 1 from 8.
    ledger.OnFaultRecovery(8, {{4, 8}});
    EXPECT_EQ(ledger.LostTokens(0, 0), 15U);  // cum@8 - cum@4 = 25 - 10
    EXPECT_EQ(ledger.LostTokens(0, 1), 0U);
}

TEST(PltLedger, CountersRollBackOnRecovery) {
    PltLedger ledger(1, 2);
    ledger.RecordRouting(0, {10, 10}, 20);
    ledger.RecordCheckpointEvent(4);
    ledger.RecordRouting(0, {5, 5}, 10);  // progress past the checkpoint
    ledger.OnFaultRecovery(4, {{4, 4}});
    // The post-checkpoint tokens are rolled back (they will be replayed).
    EXPECT_EQ(ledger.CumulativeTokens(0, 0), 10U);
    EXPECT_EQ(ledger.LayerAssignments(0), 20U);
    // Replay re-records them exactly once.
    ledger.RecordRouting(0, {5, 5}, 10);
    EXPECT_EQ(ledger.CumulativeTokens(0, 0), 15U);
}

TEST(PltLedger, PltMatchesEq7) {
    PltLedger ledger(2, 2);
    // Layer 0: 100 assignments, 20 lost. Layer 1: 200 assignments, 10 lost.
    ledger.RecordRouting(0, {50, 50}, 100);
    ledger.RecordRouting(1, {100, 100}, 200);
    ledger.RecordCheckpointEvent(10);
    // Build an earlier reference point for expert (0,0) and (1,1).
    // Here iteration 0 is the initial state (counts 0): recovering expert 0
    // of layer 0 from iteration 0 loses its 50... instead craft precisely:
    // recover layer0/expert0 at 0 => loses 50; all else at 10 => 0 lost.
    ledger.OnFaultRecovery(10, {{0, 10}, {10, 10}});
    // PLT = 1/2 * (50/100 + 0/200) = 0.25.
    EXPECT_DOUBLE_EQ(ledger.Plt(), 0.25);
}

TEST(PltLedger, MultipleFaultsAccumulate) {
    PltLedger ledger(1, 1);
    ledger.RecordRouting(0, {10}, 10);
    ledger.RecordCheckpointEvent(2);
    ledger.OnFaultRecovery(2, {{0}});  // lose 10
    // Replay + new progress.
    ledger.RecordRouting(0, {10}, 10);
    ledger.RecordCheckpointEvent(4);
    ledger.OnFaultRecovery(4, {{2}});  // lose the 10 tokens since iter 2
    EXPECT_EQ(ledger.LostTokens(0, 0), 20U);
}

TEST(PltLedger, RejectsUnknownIterations) {
    PltLedger ledger(1, 1);
    ledger.RecordRouting(0, {10}, 10);
    EXPECT_THROW(ledger.OnFaultRecovery(3, {{0}}), std::invalid_argument);
    ledger.RecordCheckpointEvent(3);
    EXPECT_THROW(ledger.OnFaultRecovery(3, {{2}}), std::invalid_argument);
    // Expert cannot be newer than the restart point.
    ledger.RecordCheckpointEvent(5);
    EXPECT_THROW(ledger.OnFaultRecovery(3, {{5}}), std::invalid_argument);
}

TEST(PltLedger, HistoryTruncatedAfterRollback) {
    PltLedger ledger(1, 1);
    ledger.RecordRouting(0, {10}, 10);
    ledger.RecordCheckpointEvent(2);
    ledger.RecordRouting(0, {10}, 10);
    ledger.RecordCheckpointEvent(4);
    ledger.OnFaultRecovery(2, {{2}});
    // Iteration 4's snapshot was dropped; recovering from it must now throw.
    EXPECT_THROW(ledger.OnFaultRecovery(4, {{4}}), std::invalid_argument);
}

// ---------- DynamicKController ----------

TEST(DynamicK, LadderFromInitialToN) {
    DynamicKController ctrl(1, 16);
    EXPECT_EQ(ctrl.levels(), (std::vector<std::size_t>{1, 2, 4, 8, 16}));
    EXPECT_EQ(ctrl.current_k(), 1U);
}

TEST(DynamicK, EscalatesAsPltGrows) {
    DynamicKController ctrl(1, 16, 0.0375);
    // 5 levels -> each level owns 0.0075 of budget.
    EXPECT_EQ(ctrl.OnFaultRecovery(0.001), 1U);
    EXPECT_EQ(ctrl.OnFaultRecovery(0.008), 2U);
    EXPECT_EQ(ctrl.OnFaultRecovery(0.016), 4U);
    EXPECT_EQ(ctrl.OnFaultRecovery(0.024), 8U);
    EXPECT_EQ(ctrl.OnFaultRecovery(0.031), 16U);
    // Saturates at N.
    EXPECT_EQ(ctrl.OnFaultRecovery(0.9), 16U);
}

TEST(DynamicK, NeverDescends) {
    DynamicKController ctrl(1, 8);
    ctrl.OnFaultRecovery(0.02);
    const auto k = ctrl.current_k();
    EXPECT_EQ(ctrl.OnFaultRecovery(0.0), k);
}

TEST(DynamicK, InitialKAboveOne) {
    DynamicKController ctrl(4, 16);
    EXPECT_EQ(ctrl.levels(), (std::vector<std::size_t>{4, 8, 16}));
}

TEST(DynamicK, RejectsBadArgs) {
    EXPECT_THROW(DynamicKController(0, 8), std::invalid_argument);
    EXPECT_THROW(DynamicKController(9, 8), std::invalid_argument);
    EXPECT_THROW(DynamicKController(1, 8, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace moc
