/**
 * @file
 * Unit tests for PEC selection policies and the PEC planner (Sections 3.2,
 * 5.1): the Fig. 4 interleaving pattern, rotation coverage, load-aware
 * prioritization, and snapshot/persist nesting.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "core/pec.h"
#include "core/selection.h"

namespace moc {
namespace {

// ---------- SequentialSelector ----------

TEST(Sequential, MatchesFigure4Pattern) {
    // Fig. 4: N = 3 experts, 4 MoE layers, K = 1. First checkpoint saves
    // experts (0, 1, 2, 0) across layers; next saves (1, 2, 0, 1).
    SequentialSelector sel(3);
    EXPECT_EQ(sel.Select(0, 0, 1), (std::vector<ExpertId>{0}));
    EXPECT_EQ(sel.Select(0, 1, 1), (std::vector<ExpertId>{1}));
    EXPECT_EQ(sel.Select(0, 2, 1), (std::vector<ExpertId>{2}));
    EXPECT_EQ(sel.Select(0, 3, 1), (std::vector<ExpertId>{0}));
    EXPECT_EQ(sel.Select(1, 0, 1), (std::vector<ExpertId>{1}));
    EXPECT_EQ(sel.Select(1, 1, 1), (std::vector<ExpertId>{2}));
    EXPECT_EQ(sel.Select(1, 2, 1), (std::vector<ExpertId>{0}));
    EXPECT_EQ(sel.Select(1, 3, 1), (std::vector<ExpertId>{1}));
}

TEST(Sequential, SelectsKDistinctExperts) {
    SequentialSelector sel(8);
    for (std::size_t k = 1; k <= 8; ++k) {
        for (std::size_t c = 0; c < 10; ++c) {
            const auto chosen = sel.Select(c, 2, k);
            EXPECT_EQ(chosen.size(), k);
            std::set<ExpertId> unique(chosen.begin(), chosen.end());
            EXPECT_EQ(unique.size(), k);
            for (auto e : chosen) {
                EXPECT_LT(e, 8U);
            }
        }
    }
}

TEST(Sequential, EveryExpertSavedWithinCycle) {
    // With K=2 and N=8, every expert must be saved within ceil(8/2)=4
    // consecutive checkpoints, for every layer.
    SequentialSelector sel(8);
    for (std::size_t m = 0; m < 6; ++m) {
        std::set<ExpertId> seen;
        for (std::size_t c = 0; c < 4; ++c) {
            for (auto e : sel.Select(c, m, 2)) {
                seen.insert(e);
            }
        }
        EXPECT_EQ(seen.size(), 8U) << "layer " << m;
    }
}

TEST(Sequential, InterleavesAcrossLayers) {
    // At any single checkpoint, consecutive layers pick staggered experts,
    // spreading the save workload over EP ranks.
    SequentialSelector sel(8);
    std::set<ExpertId> firsts;
    for (std::size_t m = 0; m < 8; ++m) {
        firsts.insert(sel.Select(0, m, 1)[0]);
    }
    EXPECT_EQ(firsts.size(), 8U);
}

TEST(Sequential, FullKSelectsAll) {
    SequentialSelector sel(4);
    const auto all = sel.Select(3, 1, 4);
    std::set<ExpertId> unique(all.begin(), all.end());
    EXPECT_EQ(unique.size(), 4U);
}

TEST(Sequential, RejectsBadK) {
    SequentialSelector sel(4);
    EXPECT_THROW(sel.Select(0, 0, 0), std::invalid_argument);
    EXPECT_THROW(sel.Select(0, 0, 5), std::invalid_argument);
}

// ---------- LoadAwareSelector ----------

TEST(LoadAware, PicksHighestUnsavedLoad) {
    std::map<ExpertId, std::uint64_t> load{{0, 5}, {1, 100}, {2, 30}, {3, 7}};
    LoadAwareSelector sel(4, [&](std::size_t, ExpertId e) { return load[e]; });
    EXPECT_EQ(sel.Select(0, 0, 1), (std::vector<ExpertId>{1}));
    EXPECT_EQ(sel.Select(0, 0, 2), (std::vector<ExpertId>{1, 2}));
}

TEST(LoadAware, DeterministicTieBreakById) {
    LoadAwareSelector sel(4, [](std::size_t, ExpertId) { return 10ULL; });
    EXPECT_EQ(sel.Select(0, 0, 2), (std::vector<ExpertId>{0, 1}));
}

TEST(LoadAware, PerLayerLoads) {
    LoadAwareSelector sel(3, [](std::size_t m, ExpertId e) {
        return static_cast<std::uint64_t>(m == 0 ? e : 2 - e);
    });
    EXPECT_EQ(sel.Select(0, 0, 1), (std::vector<ExpertId>{2}));
    EXPECT_EQ(sel.Select(0, 1, 1), (std::vector<ExpertId>{0}));
}

// ---------- PecPlanner ----------

TEST(PecPlanner, PersistNestedInSnapshot) {
    PecConfig cfg;
    cfg.k_snapshot = 4;
    cfg.k_persist = 1;
    PecPlanner planner(6, 8, cfg, std::make_unique<SequentialSelector>(8));
    for (std::size_t c = 0; c < 5; ++c) {
        const auto sel = planner.Plan(c);
        ASSERT_EQ(sel.snapshot.size(), 6U);
        ASSERT_EQ(sel.persist.size(), 6U);
        for (std::size_t m = 0; m < 6; ++m) {
            EXPECT_EQ(sel.snapshot[m].size(), 4U);
            EXPECT_EQ(sel.persist[m].size(), 1U);
            const std::set<ExpertId> snap(sel.snapshot[m].begin(),
                                          sel.snapshot[m].end());
            for (auto e : sel.persist[m]) {
                EXPECT_TRUE(snap.count(e)) << "persist not subset of snapshot";
            }
        }
    }
}

TEST(PecPlanner, SetKRevalidates) {
    PecConfig cfg;
    cfg.k_snapshot = 2;
    cfg.k_persist = 1;
    PecPlanner planner(4, 8, cfg, std::make_unique<SequentialSelector>(8));
    planner.SetK(8, 8);
    const auto sel = planner.Plan(0);
    EXPECT_EQ(sel.snapshot[0].size(), 8U);
    EXPECT_EQ(sel.persist[0].size(), 8U);
    EXPECT_THROW(planner.SetK(0, 0), std::invalid_argument);
    EXPECT_THROW(planner.SetK(2, 4), std::invalid_argument);
    EXPECT_THROW(planner.SetK(9, 1), std::invalid_argument);
}

TEST(PecPlanner, FullCheckpointIsSpecialCase) {
    PecConfig cfg;
    cfg.k_snapshot = 8;
    cfg.k_persist = 8;
    PecPlanner planner(2, 8, cfg, std::make_unique<SequentialSelector>(8));
    const auto sel = planner.Plan(0);
    std::set<ExpertId> all(sel.persist[0].begin(), sel.persist[0].end());
    EXPECT_EQ(all.size(), 8U);
}

TEST(PecPlanner, PersistRotationCoversAllExperts) {
    // The persist subset must itself rotate: with K_snapshot=4, K_persist=1
    // over 16 experts, every expert is persisted within N/K_persist = 16
    // events (the regression behind inflated Fig. 14 PLT).
    PecConfig cfg;
    cfg.k_snapshot = 4;
    cfg.k_persist = 1;
    PecPlanner planner(3, 16, cfg, std::make_unique<SequentialSelector>(16));
    for (std::size_t m = 0; m < 3; ++m) {
        std::set<ExpertId> persisted;
        for (std::size_t c = 0; c < 16; ++c) {
            const PecSelection sel = planner.Plan(c);
            persisted.insert(sel.persist[m].begin(), sel.persist[m].end());
        }
        EXPECT_EQ(persisted.size(), 16U) << "layer " << m;
    }
}

TEST(PecPlanner, PersistRotationCoversOddShapes) {
    // Non-divisible (N, K) combinations must still persist every expert
    // within a few rotations.
    PecConfig cfg;
    cfg.k_snapshot = 3;
    cfg.k_persist = 2;
    PecPlanner planner(1, 8, cfg, std::make_unique<SequentialSelector>(8));
    std::set<ExpertId> persisted;
    for (std::size_t c = 0; c < 24; ++c) {
        const PecSelection sel = planner.Plan(c);
        persisted.insert(sel.persist[0].begin(), sel.persist[0].end());
    }
    EXPECT_EQ(persisted.size(), 8U);
}

TEST(PecPlanner, RotationChangesSelection) {
    PecConfig cfg;
    cfg.k_snapshot = 1;
    cfg.k_persist = 1;
    PecPlanner planner(1, 8, cfg, std::make_unique<SequentialSelector>(8));
    EXPECT_NE(planner.Plan(0).snapshot[0], planner.Plan(1).snapshot[0]);
}

}  // namespace
}  // namespace moc
