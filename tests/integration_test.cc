/**
 * @file
 * Cross-module integration tests: exact replay determinism, checkpoint
 * byte-level integrity through the store stack, consistency between the
 * analytic inventory and the real model's serialized sizes, and the
 * adaptive configurator driving the simulator.
 */

#include <gtest/gtest.h>

#include "core/adaptive.h"
#include "core/moc_system.h"
#include "data/probes.h"
#include "obs/metrics.h"
#include "storage/store_error.h"
#include "dist/presets.h"
#include "faults/trainer.h"
#include "nn/eval.h"
#include "sim/perf_model.h"
#include "sim/timeline.h"

namespace moc {
namespace {

LmConfig
TinyLm(std::uint64_t seed = 5) {
    LmConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.hidden = 16;
    cfg.num_heads = 2;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 4;
    cfg.seed = seed;
    return cfg;
}

TEST(Integration, IdenticalSeedsYieldIdenticalTraining) {
    CorpusConfig corpus_cfg;
    corpus_cfg.vocab_size = 32;
    corpus_cfg.seed = 3;
    ZipfMarkovCorpus corpus(corpus_cfg);
    LmBatchStream train(corpus, 4, 12, 0);
    LmBatchStream valid(corpus, 4, 12, 1);

    LmTrainerConfig cfg;
    cfg.moc.i_ckpt = 8;
    cfg.parallel = {.dp = 4, .ep = 4, .tp = 1, .pp = 1};
    cfg.gpus_per_node = 2;
    cfg.total_iterations = 24;
    cfg.adam.lr = 3e-3;

    MoeTransformerLm a(TinyLm());
    MoeTransformerLm b(TinyLm());
    FaultInjector none_a(std::vector<FaultEvent>{});
    FaultInjector none_b(std::vector<FaultEvent>{});
    const auto log_a = RunFaultTolerantLmTraining(a, train, valid, cfg, none_a);
    const auto log_b = RunFaultTolerantLmTraining(b, train, valid, cfg, none_b);
    ASSERT_EQ(log_a.train_losses.size(), log_b.train_losses.size());
    for (std::size_t i = 0; i < log_a.train_losses.size(); ++i) {
        EXPECT_DOUBLE_EQ(log_a.train_losses[i].second, log_b.train_losses[i].second);
    }
}

TEST(Integration, CheckpointBlobsSurviveStoreRoundTrip) {
    // Serialize a group through the system, flip a byte in storage, and
    // confirm the CRC layer detects it on recovery: a damaged copy is
    // read-repaired from its generation twin, and when every copy is
    // damaged recovery fails with a typed StoreError.
    MoeTransformerLm model(TinyLm());
    RankTopology topo({.dp = 4, .ep = 4, .tp = 1, .pp = 1}, 2);
    MocSystemConfig cfg;
    cfg.pec.k_snapshot = 4;
    cfg.pec.k_persist = 4;
    cfg.i_ckpt = 4;
    cfg.two_level_recovery = false;  // force the storage read path
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, model, topo, TinyLm().ToModelSpec(), extra);

    auto& storage = system.storage();
    const auto keys = storage.Keys();
    ASSERT_FALSE(keys.empty());
    // Corrupt the plain (latest-wins) copy of one tensor-bearing key.
    std::string victim;
    for (const auto& k : keys) {
        if (k.rfind("gen/", 0) != 0 && k.find("/w") != std::string::npos) {
            victim = k;
            break;
        }
    }
    ASSERT_FALSE(victim.empty());
    const auto pristine = *storage.Get(victim);
    auto blob = pristine;
    blob[blob.size() / 2] ^= 0x1;
    storage.Put(victim, blob);

    auto& repairs = obs::MetricsRegistry::Instance().GetCounter(
        "store.read_repairs_total");
    const std::uint64_t repairs_before = repairs.value();
    const RecoveryReport report = system.RecoverFromFault({0});
    EXPECT_EQ(report.extra.iteration, 0u);
    EXPECT_TRUE(report.degraded.empty());
    EXPECT_GT(repairs.value(), repairs_before);
    // The repair wrote the intact twin back over the damaged plain copy.
    EXPECT_EQ(*storage.Get(victim), pristine);

    // Damage every persisted copy AND all memory replicas (both nodes
    // fail): no repair source is left, so the typed error surfaces.
    storage.Put(victim, blob);
    storage.Put(MocCheckpointSystem::GenKey(0, victim), blob);
    EXPECT_THROW(system.RecoverFromFault({0, 1}), StoreError);
}

TEST(Integration, RealModelSerializedSizesTrackInventory) {
    // The analytic inventory predicts parameter counts per unit; the real
    // serialized blobs must match (4 bytes/param + framing overhead).
    LmConfig cfg = TinyLm();
    MoeTransformerLm model(cfg);
    const ModelStateInventory inv(cfg.ToModelSpec(), StateBytes{});
    for (auto& group : model.ParameterGroups()) {
        const Blob w = SerializeParamList(group.params, /*weights=*/true);
        std::size_t inv_params = 0;
        for (const auto& m : inv.modules()) {
            if (m.key == group.key) {
                inv_params = m.params;
            }
        }
        if (inv_params == 0) {
            continue;  // "head"-like groups absent from LM inventory
        }
        const std::size_t payload = inv_params * sizeof(float);
        EXPECT_GE(w.size(), payload);
        EXPECT_LE(w.size(), payload + 64 * group.params.size() + 16);
    }
}

TEST(Integration, AdaptiveConfigConsistentWithSimulator) {
    // Feed the simulator's own numbers into the adaptive configurator; the
    // chosen K must produce a snapshot that the simulator also deems
    // overlappable.
    TrainingSetup setup;
    setup.model = Gpt350M16E();
    setup.parallel = Case2().parallel;
    setup.gpus_per_node = Case2().GpusPerNode();
    setup.gpu = A800();
    const PerfModel model(setup);

    AdaptiveInputs in;
    in.t_fb = model.FbTime();
    in.t_iter = model.IterTime();
    in.snapshot_bandwidth = setup.gpu.snapshot_bandwidth;
    in.persist_bandwidth = setup.persist_bandwidth;
    // Exact per-unit payloads from the inventory.
    const Bytes per_param = setup.bytes.weight + setup.bytes.optim;
    in.expert_unit_bytes = static_cast<Bytes>(setup.model.FfnParams()) *
                           per_param / model.topology().NumEpGroups();
    in.nonexpert_bytes_per_rank = static_cast<Bytes>(
        setup.model.NonExpertParams()) * per_param / setup.parallel.dp;
    in.num_moe_layers = setup.model.NumMoeLayers();
    in.num_experts = setup.model.num_experts;
    in.ep = setup.parallel.ep;

    const auto decision = ConfigureTwoLevelPec(in, 1);
    if (!decision.snapshot_overflows) {
        const auto timing =
            SimulateMethod(model, CkptMethod::kMocAsync, decision.k_snapshot);
        EXPECT_NEAR(timing.o_save, 0.0, 0.15 * in.t_fb);
    }
}

TEST(Integration, ProbeSuiteEvaluationIsDeterministic) {
    CorpusConfig corpus_cfg;
    corpus_cfg.vocab_size = 32;
    corpus_cfg.seed = 3;
    ZipfMarkovCorpus corpus(corpus_cfg);
    ProbeSuiteConfig probe_cfg;
    probe_cfg.items_per_task = 10;
    probe_cfg.context_len = 8;
    probe_cfg.continuation_len = 2;
    const auto suite = BuildProbeSuite(corpus, probe_cfg);
    // Chain8 items need context (8) + continuation (8) tokens of headroom.
    LmConfig lm_cfg = TinyLm();
    lm_cfg.max_seq = 20;
    MoeTransformerLm model(lm_cfg);
    const auto a = EvalProbeSuite(model, suite);
    const auto b = EvalProbeSuite(model, suite);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].accuracy, b[i].accuracy);
    }
    EXPECT_EQ(a.back().task, "Avg");
}

TEST(Integration, FrozenExpertsFineTuneOnlyMovesNonExpert) {
    // The Table 4 "FT-w.o.E" code path: freezing expert parameters.
    MoeTransformerLm model(TinyLm());
    for (auto& g : model.ParameterGroups()) {
        if (g.kind == ModuleKind::kExpert) {
            for (auto* p : g.params) {
                p->set_frozen(true);
            }
        }
    }
    CorpusConfig corpus_cfg;
    corpus_cfg.vocab_size = 32;
    ZipfMarkovCorpus corpus(corpus_cfg);
    LmBatchStream stream(corpus, 4, 12, 0);
    Adam adam(AdamConfig{.lr = 3e-3});
    const auto params = model.AllParameters();

    std::vector<Tensor> expert_before;
    for (auto& g : model.ParameterGroups()) {
        if (g.kind == ModuleKind::kExpert) {
            for (auto* p : g.params) {
                expert_before.push_back(p->value());
            }
        }
    }
    for (std::size_t i = 0; i < 10; ++i) {
        model.TrainBackward(stream.Get(i));
        adam.Step(params);
    }
    std::size_t idx = 0;
    for (auto& g : model.ParameterGroups()) {
        if (g.kind == ModuleKind::kExpert) {
            for (auto* p : g.params) {
                EXPECT_TRUE(p->value().AllClose(expert_before[idx], 0.0F));
                ++idx;
            }
        }
    }
}

}  // namespace
}  // namespace moc
