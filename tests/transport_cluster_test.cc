/**
 * @file
 * Unit tests for the transport-backed checkpoint barrier
 * (ckpt/rank_coordinator.h): the kRankDone codec, seal/unseal decisions
 * under rank death, the process-fault spec parser, and the in-process
 * cluster engine running its barrier over real transport messages.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "ckpt/cluster_engine.h"
#include "ckpt/rank_coordinator.h"
#include "faults/proc_faults.h"
#include "net/inproc_transport.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "storage/memory_store.h"

namespace moc {
namespace {

using net::InprocHub;
using net::InprocTransport;
using net::MsgType;

ShardReport
GoodReport(const std::string& key, std::size_t iteration) {
    ShardReport report;
    report.key = key;
    report.iteration = iteration;
    report.bytes = 1024;
    report.crc = 0xABCD1234u;
    report.verified = true;
    return report;
}

TEST(TransportCluster, RankDoneCodecRoundTrips) {
    RankDone done;
    done.iteration = 42;
    done.ok = true;
    done.reports.push_back(GoodReport("rank1/dense/1", 42));
    ShardReport dedup = GoodReport("rank1/expert/3/w", 42);
    dedup.deduped = true;
    dedup.ref_iteration = 40;
    done.reports.push_back(dedup);
    ShardReport failed;
    failed.key = "rank1/expert/4/w";
    failed.iteration = 42;
    failed.failed = true;
    done.reports.push_back(failed);

    const RankDone got = DecodeRankDone(1, EncodeRankDone(done));
    EXPECT_EQ(got.rank, 1U);
    EXPECT_EQ(got.iteration, 42U);
    EXPECT_TRUE(got.ok);
    ASSERT_EQ(got.reports.size(), 3U);
    EXPECT_EQ(got.reports[0].key, "rank1/dense/1");
    EXPECT_TRUE(got.reports[0].verified);
    EXPECT_FALSE(got.reports[0].deduped);
    EXPECT_TRUE(got.reports[1].deduped);
    EXPECT_EQ(got.reports[1].ref_iteration, 40U);
    EXPECT_TRUE(got.reports[2].failed);
    EXPECT_FALSE(got.reports[2].verified);
}

TEST(TransportCluster, DecodeThrowsOnTruncatedPayload) {
    RankDone done;
    done.iteration = 7;
    done.ok = true;
    done.reports.push_back(GoodReport("rank0/dense/0", 7));
    Blob wire = EncodeRankDone(done);
    wire.resize(wire.size() / 2);
    EXPECT_THROW(DecodeRankDone(0, wire), std::runtime_error);
}

TEST(TransportCluster, BarrierCompletesWhenEveryRankReports) {
    InprocHub hub;
    InprocTransport coord(hub, net::kCoordinatorPeer);
    InprocTransport rank0(hub, 0);
    InprocTransport rank1(hub, 1);
    CheckpointCoordinator coordinator(coord, {0, 1});

    obs::TraceContext ctx;
    ctx.iteration = 10;
    EXPECT_EQ(coordinator.BeginGeneration(10, ctx), 2U);

    for (auto* t : {&rank0, &rank1}) {
        RankParticipant participant(*t);
        auto begin = participant.AwaitBegin(1.0);
        ASSERT_TRUE(begin.has_value());
        EXPECT_FALSE(begin->shutdown);
        EXPECT_EQ(begin->iteration, 10U);
        const std::string key =
            "rank" + std::to_string(t->self()) + "/dense/0";
        ASSERT_TRUE(participant.SendDone(10, {GoodReport(key, 10)}, true,
                                         ctx));
    }

    const BarrierResult result = coordinator.AwaitReports(10, 5.0);
    EXPECT_TRUE(result.complete);
    EXPECT_FALSE(result.timed_out);
    EXPECT_TRUE(result.dead.empty());
    ASSERT_EQ(result.reports.size(), 2U);
    EXPECT_TRUE(result.AllVerified());
}

TEST(TransportCluster, DeadRankLeavesBarrierIncompleteAndIsDropped) {
    InprocHub hub;
    InprocTransport coord(hub, net::kCoordinatorPeer);
    InprocTransport rank0(hub, 0);
    auto rank1 = std::make_unique<InprocTransport>(hub, 1);
    CheckpointCoordinator coordinator(coord, {0, 1});

    obs::TraceContext ctx;
    ctx.iteration = 5;
    coordinator.BeginGeneration(5, ctx);

    RankParticipant participant(rank0);
    auto begin = participant.AwaitBegin(1.0);
    ASSERT_TRUE(begin.has_value());
    ASSERT_TRUE(participant.SendDone(
        5, {GoodReport("rank0/dense/0", 5)}, true, ctx));
    rank1->Close();  // SIGKILL stand-in: death, not a report

    const BarrierResult result = coordinator.AwaitReports(5, 5.0);
    EXPECT_FALSE(result.complete);
    ASSERT_EQ(result.dead.size(), 1U);
    EXPECT_EQ(result.dead[0], 1U);
    EXPECT_FALSE(result.AllVerified());
    // The dead rank is out of every later barrier.
    EXPECT_EQ(coordinator.participants(),
              (std::vector<net::PeerId>{0}));
}

TEST(TransportCluster, BarrierTimesOutOnSilentRank) {
    InprocHub hub;
    InprocTransport coord(hub, net::kCoordinatorPeer);
    InprocTransport silent(hub, 0);
    CheckpointCoordinator coordinator(coord, {0});
    obs::TraceContext ctx;
    coordinator.BeginGeneration(1, ctx);
    const BarrierResult result = coordinator.AwaitReports(1, 0.05);
    EXPECT_FALSE(result.complete);
    EXPECT_TRUE(result.timed_out);
}

TEST(TransportCluster, StaleIterationReportsAreIgnored) {
    InprocHub hub;
    InprocTransport coord(hub, net::kCoordinatorPeer);
    InprocTransport rank0(hub, 0);
    CheckpointCoordinator coordinator(coord, {0});

    obs::TraceContext ctx;
    coordinator.BeginGeneration(9, ctx);
    RankParticipant participant(rank0);
    ASSERT_TRUE(participant.AwaitBegin(1.0).has_value());
    // A report for an *older* iteration must not satisfy the barrier.
    ASSERT_TRUE(participant.SendDone(
        8, {GoodReport("rank0/dense/0", 8)}, true, ctx));
    ASSERT_TRUE(participant.SendDone(
        9, {GoodReport("rank0/dense/0", 9)}, true, ctx));

    const BarrierResult result = coordinator.AwaitReports(9, 5.0);
    EXPECT_TRUE(result.complete);
    ASSERT_EQ(result.reports.size(), 1U);
    EXPECT_EQ(result.reports[0].iteration, 9U);
}

TEST(TransportCluster, ShutdownEndsAwaitBegin) {
    InprocHub hub;
    InprocTransport coord(hub, net::kCoordinatorPeer);
    InprocTransport rank0(hub, 0);
    CheckpointCoordinator coordinator(coord, {0});
    EXPECT_EQ(coordinator.Shutdown(), 1U);
    RankParticipant participant(rank0);
    auto begin = participant.AwaitBegin(1.0);
    ASSERT_TRUE(begin.has_value());
    EXPECT_TRUE(begin->shutdown);
}

TEST(TransportCluster, CoordinatorDeathEndsAwaitBegin) {
    InprocHub hub;
    auto coord =
        std::make_unique<InprocTransport>(hub, net::kCoordinatorPeer);
    InprocTransport rank0(hub, 0);
    coord->Close();
    RankParticipant participant(rank0);
    auto begin = participant.AwaitBegin(1.0);
    ASSERT_TRUE(begin.has_value());
    EXPECT_TRUE(begin->shutdown);
}

TEST(TransportCluster, SealRequiresEveryShardVerified) {
    CheckpointManifest manifest;
    BarrierResult result;
    result.complete = true;
    RankDone done;
    done.rank = 0;
    done.iteration = 3;
    done.ok = true;
    done.reports.push_back(GoodReport("rank0/dense/0", 3));
    result.reports.push_back(done);

    RecordReports(manifest, result);
    EXPECT_TRUE(SealIfComplete(manifest, 3, result));

    // One unverified shard in the next generation: no seal.
    BarrierResult tainted = result;
    tainted.reports[0].iteration = 4;
    tainted.reports[0].reports[0].iteration = 4;
    tainted.reports[0].reports[0].verified = false;
    RecordReports(manifest, tainted);
    EXPECT_FALSE(SealIfComplete(manifest, 4, tainted));
    const auto eligible = manifest.EligibleGenerations();
    EXPECT_EQ(std::count(eligible.begin(), eligible.end(), 4U), 0);
    EXPECT_EQ(std::count(eligible.begin(), eligible.end(), 3U), 1);
}

TEST(TransportCluster, ProcFaultSpecParsesAndRoundTrips) {
    const ProcFaultSpec spec =
        ParseProcFaultSpec("kill:rank=1:event=2:phase=persist:after=3");
    EXPECT_EQ(spec.action, ProcFaultAction::kKill);
    EXPECT_EQ(spec.rank, 1U);
    EXPECT_EQ(spec.event, 2U);
    EXPECT_EQ(spec.phase, "persist");
    EXPECT_EQ(spec.after_shards, 3U);

    const ProcFaultSpec stop = ParseProcFaultSpec("stop:rank=2:event=3");
    EXPECT_EQ(stop.action, ProcFaultAction::kStop);
    EXPECT_EQ(stop.phase, "persist");
    EXPECT_EQ(stop.after_shards, 0U);

    EXPECT_FALSE(ProcFaultSpecString(spec).empty());
    EXPECT_THROW(ParseProcFaultSpec("maim:rank=1:event=2"),
                 std::invalid_argument);
    EXPECT_THROW(ParseProcFaultSpec("kill:event=2"), std::invalid_argument);
    EXPECT_THROW(ParseProcFaultSpec("kill:rank=1"), std::invalid_argument);
    EXPECT_THROW(ParseProcFaultSpec("kill:rank=1:event=2:phase=nap"),
                 std::invalid_argument);
}

TEST(TransportCluster, ScheduleFiresOnlyForOwnRankOnce) {
    // A schedule built for rank 0 holds only rank-0 specs; polling points
    // that don't match leave it pending.
    ProcFaultSchedule schedule(
        {ParseProcFaultSpec("kill:rank=1:event=2:phase=persist:after=3")},
        /*self_rank=*/0);
    EXPECT_EQ(schedule.pending(), 0U);

    ProcFaultSchedule mine(
        {ParseProcFaultSpec("kill:rank=0:event=2:phase=persist:after=3")},
        /*self_rank=*/0);
    EXPECT_EQ(mine.pending(), 1U);
    // Wrong event / phase / progress: nothing fires (we are still alive to
    // assert it).
    mine.Poll(1, "persist", 5);
    mine.Poll(2, "barrier", 0);
    mine.Poll(2, "persist", 2);
    EXPECT_EQ(mine.pending(), 1U);
}

TEST(TransportCluster, EngineBarrierRunsOverTransport) {
    obs::EventJournal::Instance().Clear();
    MemoryStore store;
    AgentCostModel cost;
    cost.time_scale = 1e-4;
    ClusterEngineOptions options;
    options.barrier_deadline_s = 10.0;
    ClusterCheckpointEngine engine(store, 2, cost, options);

    ShardPlan plan(2);
    for (RankId r = 0; r < 2; ++r) {
        plan.Add(r, {"dense/" + std::to_string(r), 256 * kKiB, false});
    }

    const ClusterRunStats stats =
        engine.Execute(plan, SyntheticBlobProvider(), 1);
    EXPECT_TRUE(stats.barrier_complete);
    EXPECT_GE(stats.barrier_wait, 0.0);
    EXPECT_TRUE(stats.sealed);

    // The barrier actually ran over the transport: messages flowed and the
    // barrier counter moved.
    EXPECT_GT(obs::MetricsRegistry::Instance()
                  .GetCounter("net.barrier.waits")
                  .value(),
              0U);
    EXPECT_GT(obs::MetricsRegistry::Instance()
                  .GetCounter("net.frames_sent")
                  .value(),
              0U);
}

}  // namespace
}  // namespace moc
