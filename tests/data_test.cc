/**
 * @file
 * Unit tests for the data module: corpus determinism and structure, batch
 * streams, classification dataset, probe-suite construction.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <set>

#include "data/classification.h"
#include "data/corpus.h"
#include "data/probes.h"

namespace moc {
namespace {

CorpusConfig
SmallCorpus() {
    CorpusConfig cfg;
    cfg.vocab_size = 64;
    cfg.branching = 3;
    cfg.structure_weight = 0.85;
    cfg.seed = 5;
    return cfg;
}

TEST(Corpus, GenerateIsDeterministic) {
    ZipfMarkovCorpus corpus(SmallCorpus());
    const auto a = corpus.Generate(200, 1);
    const auto b = corpus.Generate(200, 1);
    EXPECT_EQ(a, b);
}

TEST(Corpus, StreamsDifferBySeed) {
    ZipfMarkovCorpus corpus(SmallCorpus());
    EXPECT_NE(corpus.Generate(200, 1), corpus.Generate(200, 2));
}

TEST(Corpus, TokensInRange) {
    ZipfMarkovCorpus corpus(SmallCorpus());
    for (auto t : corpus.Generate(1000, 3)) {
        EXPECT_GE(t, 0);
        EXPECT_LT(static_cast<std::size_t>(t), corpus.vocab_size());
    }
}

TEST(Corpus, HasLearnableBigramStructure) {
    // The most frequent successor of each token should dominate: measure the
    // empirical top-successor share, which must far exceed the uniform 1/V.
    ZipfMarkovCorpus corpus(SmallCorpus());
    const auto stream = corpus.Generate(20000, 7);
    std::map<TokenId, std::map<TokenId, int>> bigram;
    for (std::size_t i = 0; i + 1 < stream.size(); ++i) {
        ++bigram[stream[i]][stream[i + 1]];
    }
    double top_share_sum = 0.0;
    int counted = 0;
    for (const auto& [tok, nexts] : bigram) {
        int total = 0;
        int best = 0;
        for (const auto& [nxt, count] : nexts) {
            total += count;
            best = std::max(best, count);
        }
        if (total >= 50) {
            top_share_sum += static_cast<double>(best) / total;
            ++counted;
        }
    }
    ASSERT_GT(counted, 0);
    EXPECT_GT(top_share_sum / counted, 0.30);  // uniform would be ~1/64
}

TEST(Corpus, ConditionalEntropyBelowUniform) {
    ZipfMarkovCorpus corpus(SmallCorpus());
    EXPECT_LT(corpus.ConditionalEntropy(), std::log(64.0));
    EXPECT_GT(corpus.ConditionalEntropy(), 0.0);
}

TEST(Corpus, RejectsBadConfig) {
    CorpusConfig cfg = SmallCorpus();
    cfg.branching = 64;
    EXPECT_THROW(ZipfMarkovCorpus{cfg}, std::invalid_argument);
    cfg = SmallCorpus();
    cfg.structure_weight = 1.0;
    EXPECT_THROW(ZipfMarkovCorpus{cfg}, std::invalid_argument);
}

TEST(BatchStream, ShapesAndShiftInvariant) {
    ZipfMarkovCorpus corpus(SmallCorpus());
    LmBatchStream stream(corpus, 4, 16, 0);
    const auto batch = stream.Get(0);
    EXPECT_EQ(batch.inputs.size(), 4U * 16U);
    EXPECT_EQ(batch.targets.size(), 4U * 16U);
    // targets are inputs shifted by one within each row.
    for (std::size_t b = 0; b < 4; ++b) {
        for (std::size_t i = 0; i + 1 < 16; ++i) {
            EXPECT_EQ(batch.targets[b * 16 + i], batch.inputs[b * 16 + i + 1]);
        }
    }
}

TEST(BatchStream, RandomAccessIsStateless) {
    ZipfMarkovCorpus corpus(SmallCorpus());
    LmBatchStream stream(corpus, 2, 8, 0);
    const auto once = stream.Get(5);
    stream.Get(9);
    const auto again = stream.Get(5);
    EXPECT_EQ(once.inputs, again.inputs);
}

TEST(BatchStream, DistinctIndicesDiffer) {
    ZipfMarkovCorpus corpus(SmallCorpus());
    LmBatchStream stream(corpus, 2, 8, 0);
    EXPECT_NE(stream.Get(0).inputs, stream.Get(1).inputs);
}

// ---------- Classification ----------

TEST(Classification, DeterministicExamples) {
    ClassificationDataset data(ClassificationConfig{});
    const auto a = data.Get(0, 17);
    const auto b = data.Get(0, 17);
    EXPECT_EQ(a.tokens, b.tokens);
    EXPECT_EQ(a.label, b.label);
}

TEST(Classification, SplitsDiffer) {
    ClassificationDataset data(ClassificationConfig{});
    EXPECT_NE(data.Get(0, 3).tokens, data.Get(1, 3).tokens);
}

TEST(Classification, LabelsCoverClasses) {
    ClassificationConfig cfg;
    cfg.num_classes = 4;
    ClassificationDataset data(cfg);
    std::set<int> labels;
    for (std::size_t i = 0; i < 200; ++i) {
        const auto ex = data.Get(0, i);
        EXPECT_GE(ex.label, 0);
        EXPECT_LT(ex.label, 4);
        labels.insert(ex.label);
    }
    EXPECT_EQ(labels.size(), 4U);
}

TEST(Classification, SequenceShape) {
    ClassificationConfig cfg;
    cfg.seq_len = 10;
    ClassificationDataset data(cfg);
    EXPECT_EQ(data.Get(0, 0).tokens.size(), 10U);
    EXPECT_EQ(data.GetBatch(0, 0, 5).size(), 5U);
}

// ---------- Probes ----------

TEST(Probes, SuiteHasEightTasks) {
    ZipfMarkovCorpus corpus(SmallCorpus());
    ProbeSuiteConfig cfg;
    cfg.items_per_task = 10;
    const auto suite = BuildProbeSuite(corpus, cfg);
    EXPECT_EQ(suite.size(), 8U);
    for (const auto& task : suite) {
        EXPECT_EQ(task.items.size(), 10U);
        EXPECT_FALSE(task.name.empty());
    }
}

TEST(Probes, ItemsWellFormed) {
    ZipfMarkovCorpus corpus(SmallCorpus());
    ProbeSuiteConfig cfg;
    cfg.items_per_task = 20;
    for (const auto& task : BuildProbeSuite(corpus, cfg)) {
        for (const auto& item : task.items) {
            EXPECT_EQ(item.context.size(), cfg.context_len);
            EXPECT_EQ(item.choices.size(), cfg.num_choices);
            EXPECT_GE(item.correct, 0);
            EXPECT_LT(static_cast<std::size_t>(item.correct), cfg.num_choices);
            const auto& correct = item.choices[static_cast<std::size_t>(item.correct)];
            for (const auto& choice : item.choices) {
                EXPECT_EQ(choice.size(), correct.size());
            }
        }
    }
}

TEST(Probes, DeterministicAcrossBuilds) {
    ZipfMarkovCorpus corpus(SmallCorpus());
    ProbeSuiteConfig cfg;
    cfg.items_per_task = 5;
    const auto a = BuildProbeSuite(corpus, cfg);
    const auto b = BuildProbeSuite(corpus, cfg);
    for (std::size_t t = 0; t < a.size(); ++t) {
        for (std::size_t i = 0; i < a[t].items.size(); ++i) {
            EXPECT_EQ(a[t].items[i].context, b[t].items[i].context);
            EXPECT_EQ(a[t].items[i].correct, b[t].items[i].correct);
        }
    }
}

}  // namespace
}  // namespace moc
