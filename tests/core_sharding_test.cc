/**
 * @file
 * Unit tests for shard planning (Section 4): baseline vs equal vs adaptive
 * strategies, byte conservation, bottleneck reduction, and the Fig. 7
 * placement semantics.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/pec.h"
#include "core/selection.h"
#include "core/sharding.h"
#include "dist/presets.h"

namespace moc {
namespace {

struct ShardFixture {
    ModelSpec spec;
    RankTopology topo;
    ModelStateInventory inv;

    ShardFixture(const ModelSpec& s, const ParallelConfig& p, std::size_t gpn)
        : spec(s), topo(p, gpn), inv(spec, StateBytes{}) {}
};

ShardFixture
Case3Setup() {
    return ShardFixture(Gpt350M16E(), Case3().parallel, Case3().GpusPerNode());
}

std::vector<std::vector<ExpertId>>
PecSelectionAt(const ModelSpec& spec, std::size_t k, std::size_t ckpt_index) {
    SequentialSelector sel(spec.num_experts);
    std::vector<std::vector<ExpertId>> out(spec.NumMoeLayers());
    for (std::size_t m = 0; m < out.size(); ++m) {
        out[m] = sel.Select(ckpt_index, m, k);
    }
    return out;
}

// ---------- ShardPlan ----------

TEST(ShardPlan, AccountsLoads) {
    ShardPlan plan(3);
    plan.Add(0, {"a", 100, false});
    plan.Add(0, {"b", 50, true});
    plan.Add(2, {"c", 30, false});
    EXPECT_EQ(plan.RankBytes(0), 150U);
    EXPECT_EQ(plan.RankBytes(1), 0U);
    EXPECT_EQ(plan.BottleneckBytes(), 150U);
    EXPECT_EQ(plan.TotalBytes(), 180U);
    EXPECT_EQ(plan.Items(0).size(), 2U);
}

TEST(ShardPlan, FindWeightOwnerIgnoresOptimizer) {
    ShardPlan plan(2);
    plan.Add(1, {"k", 10, true});
    EXPECT_FALSE(plan.FindWeightOwner("k").has_value());
    plan.Add(1, {"k", 10, false});
    EXPECT_EQ(plan.FindWeightOwner("k").value(), 1U);
}

// ---------- Baseline semantics (Fig. 7a) ----------

TEST(Sharding, BaselineNonExpertWeightsAllOnRank0) {
    ShardFixture s = Case3Setup();
    ShardingPlanner planner(s.inv, s.topo, ShardingOptions{});
    const ShardPlan plan = planner.PlanFull();
    // Rank 0 must hold a weight item for every non-expert module.
    for (const auto* module : s.inv.NonExpertModules()) {
        EXPECT_EQ(plan.FindWeightOwner(module->key).value(), 0U)
            << module->key;
    }
}

TEST(Sharding, BaselineExpertWeightsOnlyInGroup0) {
    ShardFixture s = Case3Setup();
    ShardingPlanner planner(s.inv, s.topo, ShardingOptions{});
    const ShardPlan plan = planner.PlanFull();
    for (RankId r = 0; r < s.topo.dp(); ++r) {
        const bool in_group0 = s.topo.EpGroup(r) == 0;
        bool has_expert_weights = false;
        for (const auto& item : plan.Items(r)) {
            if (!item.optimizer && item.key.rfind("moe/", 0) == 0) {
                has_expert_weights = true;
            }
        }
        if (!in_group0 && r != 0) {
            EXPECT_FALSE(has_expert_weights) << "rank " << r;
        }
        if (in_group0) {
            EXPECT_TRUE(has_expert_weights) << "rank " << r;
        }
    }
}

TEST(Sharding, OptimizerAlwaysPartitioned) {
    // ZeRO-2 semantics: every rank carries optimizer payload even under the
    // baseline plan.
    ShardFixture s = Case3Setup();
    ShardingPlanner planner(s.inv, s.topo, ShardingOptions{});
    const ShardPlan plan = planner.PlanFull();
    for (RankId r = 0; r < s.topo.dp(); ++r) {
        Bytes optim = 0;
        for (const auto& item : plan.Items(r)) {
            if (item.optimizer) {
                optim += item.bytes;
            }
        }
        EXPECT_GT(optim, 0U) << "rank " << r;
    }
}

// ---------- Conservation ----------

TEST(Sharding, TotalBytesConservedAcrossStrategies) {
    ShardFixture s = Case3Setup();
    const Bytes expected =
        static_cast<Bytes>(s.spec.NonExpertParams()) * 14 +
        static_cast<Bytes>(s.spec.ExpertParams()) * 14;
    for (bool ee : {false, true}) {
        for (bool en : {false, true}) {
            for (bool an : {false, true}) {
                ShardingOptions opt{ee, en, an};
                ShardingPlanner planner(s.inv, s.topo, opt);
                EXPECT_EQ(planner.PlanFull().TotalBytes(), expected)
                    << "ee=" << ee << " en=" << en << " an=" << an;
            }
        }
    }
}

TEST(Sharding, PecReducesTotalBytes) {
    ShardFixture s = Case3Setup();
    ShardingPlanner planner(s.inv, s.topo,
                            ShardingOptions{true, true, false});
    const auto k1 = PecSelectionAt(s.spec, 1, 0);
    const Bytes pec_total = planner.Plan(k1, k1).TotalBytes();
    const Bytes full_total = planner.PlanFull().TotalBytes();
    EXPECT_LT(pec_total, full_total);
    // Eq. 6: C_pec = NE + E * k / N (weights + optimizer).
    const Bytes expected =
        static_cast<Bytes>(s.spec.NonExpertParams()) * 14 +
        static_cast<Bytes>(s.spec.ExpertParams()) * 14 / 16;
    EXPECT_EQ(pec_total, expected);
}

// ---------- Bottleneck reduction (Fig. 10b-d) ----------

TEST(Sharding, EqualNonExpertShrinksBottleneck) {
    ShardFixture s = Case3Setup();
    ShardingPlanner baseline(s.inv, s.topo, ShardingOptions{});
    ShardingPlanner sharded(s.inv, s.topo, ShardingOptions{false, true, false});
    EXPECT_LT(sharded.PlanFull().BottleneckBytes(),
              baseline.PlanFull().BottleneckBytes());
}

TEST(Sharding, EqualExpertHelpsOnlyWithMultipleGroups) {
    // Case 2: one EP group -> EE is a no-op on the bottleneck.
    ShardFixture c2(Gpt350M16E(), Case2().parallel, Case2().GpusPerNode());
    ShardingPlanner no_ee2(c2.inv, c2.topo, ShardingOptions{false, true, false});
    ShardingPlanner ee2(c2.inv, c2.topo, ShardingOptions{true, true, false});
    EXPECT_EQ(ee2.PlanFull().BottleneckBytes(),
              no_ee2.PlanFull().BottleneckBytes());

    // Case 3: two EP groups -> EE shrinks the bottleneck.
    ShardFixture c3 = Case3Setup();
    ShardingPlanner no_ee3(c3.inv, c3.topo, ShardingOptions{false, true, false});
    ShardingPlanner ee3(c3.inv, c3.topo, ShardingOptions{true, true, false});
    EXPECT_LT(ee3.PlanFull().BottleneckBytes(),
              no_ee3.PlanFull().BottleneckBytes());
}

TEST(Sharding, FullyShardedReductionMatchesFig10Band) {
    // Fig. 10(b-d): fully sharded checkpointing reduces the bottleneck-rank
    // workload by 12%-28% in full-saving mode (the ZeRO-2 optimizer
    // partition, identical under both plans, bounds the possible gain).
    for (const auto& c : AllCases()) {
        ShardFixture s(Gpt350M16E(), c.parallel, c.GpusPerNode());
        ShardingPlanner baseline(s.inv, s.topo, ShardingOptions{});
        ShardingPlanner full(s.inv, s.topo, ShardingOptions{true, true, false});
        const double reduction =
            1.0 - static_cast<double>(full.PlanFull().BottleneckBytes()) /
                      static_cast<double>(baseline.PlanFull().BottleneckBytes());
        EXPECT_GT(reduction, 0.08) << c.name;
        EXPECT_LT(reduction, 0.35) << c.name;
    }
}

TEST(Sharding, AdaptiveNotWorseThanEqualUnderPec) {
    // With K = 1 PEC, adaptive non-expert sharding exploits the idle ranks.
    ShardFixture s = Case3Setup();
    const auto sel = PecSelectionAt(s.spec, 1, 0);
    ShardingPlanner equal(s.inv, s.topo, ShardingOptions{true, true, false});
    ShardingPlanner adaptive(s.inv, s.topo, ShardingOptions{true, false, true});
    EXPECT_LE(adaptive.Plan(sel, sel).BottleneckBytes(),
              equal.Plan(sel, sel).BottleneckBytes());
}

TEST(Sharding, SelectionAritiesValidated) {
    ShardFixture s = Case3Setup();
    ShardingPlanner planner(s.inv, s.topo, ShardingOptions{});
    std::vector<std::vector<ExpertId>> wrong(3);
    EXPECT_THROW(planner.Plan(wrong, wrong), std::invalid_argument);
}

TEST(Sharding, ExpertFragmentsSplitAcrossGroups) {
    ShardFixture s = Case3Setup();  // 2 EP groups
    ShardingPlanner planner(s.inv, s.topo, ShardingOptions{true, true, false});
    const ShardPlan plan = planner.PlanFull();
    // Expert 0 of MoE layer 0 lives on EP rank 0; its weight fragments must
    // appear on rank 0 (group 0) and rank 8 (group 1).
    bool g0 = false;
    bool g1 = false;
    for (const auto& item : plan.Items(0)) {
        if (item.key == "moe/0/expert/0#g0") {
            g0 = true;
        }
    }
    for (const auto& item : plan.Items(8)) {
        if (item.key == "moe/0/expert/0#g1") {
            g1 = true;
        }
    }
    EXPECT_TRUE(g0);
    EXPECT_TRUE(g1);
}

}  // namespace
}  // namespace moc
