/**
 * @file
 * Edge-case and negative-path tests across modules: logging levels, clock
 * invariants (death tests), thread-pool exception propagation, MoE capacity
 * interaction with the PLT denominator, and selector/planner boundaries.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/plt.h"
#include "nn/moe_layer.h"
#include "util/clock.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace moc {
namespace {

// ---------- Logging ----------

TEST(Logging, LevelFilterSuppressesBelowThreshold) {
    // No crash and no observable side effect required — exercise the paths.
    Logger::Instance().set_level(LogLevel::kSilent);
    MOC_DEBUG << "invisible";
    MOC_WARN << "also invisible";
    Logger::Instance().set_level(LogLevel::kWarn);
    EXPECT_EQ(Logger::Instance().level(), LogLevel::kWarn);
    Logger::Instance().set_level(LogLevel::kInfo);
}

// ---------- Clock invariants ----------

TEST(ClockDeath, VirtualClockRejectsBackwardsTime) {
    VirtualClock clock(10.0);
    EXPECT_DEATH(clock.Advance(-1.0), "backwards");
    EXPECT_DEATH(clock.AdvanceTo(5.0), "backwards");
}

// ---------- ThreadPool exceptions ----------

TEST(ThreadPoolEdge, ExceptionPropagatesThroughFuture) {
    ThreadPool pool(2);
    auto future = pool.Submit([]() -> int {
        throw std::runtime_error("task failed");
    });
    EXPECT_THROW(future.get(), std::runtime_error);
    // The pool survives: subsequent tasks still run.
    EXPECT_EQ(pool.Submit([] { return 5; }).get(), 5);
}

TEST(ThreadPoolEdge, WaitOnIdlePoolReturnsImmediately) {
    ThreadPool pool(1);
    pool.Wait();  // must not deadlock
    SUCCEED();
}

// ---------- MoE capacity vs the PLT denominator ----------

TEST(MoeCapacityPlt, DroppedTokensShrinkNumeratorNotDenominator) {
    // Eq. 7's denominator is T * TopK (attempted assignments); the paper
    // notes the processed count is typically smaller due to capacity drops.
    // The ledger must count attempted assignments in the denominator and
    // only processed tokens in the numerator path.
    MoeLayerConfig cfg;
    cfg.hidden = 8;
    cfg.inter = 16;
    cfg.num_experts = 2;
    cfg.top_k = 1;
    cfg.capacity_factor = 1e-9;  // capacity 1 per expert: heavy drops
    Rng rng(7);
    MoeLayer moe("m", cfg, rng, 0.3F);
    auto x = Tensor::Randn({10, 8}, rng, 1.0F);
    Rng noise(1);
    moe.Forward(x, true, noise);
    const RoutingStats& stats = moe.last_stats();
    ASSERT_GT(stats.dropped, 0U);
    ASSERT_EQ(stats.assignments, 10U);

    PltLedger ledger(1, 2);
    ledger.RecordRouting(0, stats.tokens_per_expert, stats.assignments);
    ledger.RecordCheckpointEvent(1);
    // Recover every expert from the initial state: the whole processed
    // count is lost — but PLT stays below 1 because dropped assignments
    // inflate only the denominator.
    ledger.OnFaultRecovery(1, {{0, 0}});
    std::size_t processed = 0;
    for (auto c : stats.tokens_per_expert) {
        processed += c;
    }
    EXPECT_DOUBLE_EQ(ledger.Plt(),
                     static_cast<double>(processed) / 10.0);
    EXPECT_LT(ledger.Plt(), 1.0);
}

// ---------- RoutingStats arity validation ----------

TEST(PltEdge, RoutingArityChecked) {
    PltLedger ledger(1, 4);
    EXPECT_THROW(ledger.RecordRouting(0, {1, 2}, 3), std::invalid_argument);
    EXPECT_THROW(ledger.RecordRouting(1, {1, 2, 3, 4}, 10),
                 std::invalid_argument);
}

// ---------- Tensor guards ----------

TEST(TensorEdge, RowRequiresRank2) {
    Tensor t({4});
    EXPECT_THROW(t.Row(0), std::invalid_argument);
    Tensor m({2, 2});
    EXPECT_THROW(m.Row(2), std::invalid_argument);
}

TEST(TensorEdge, EmptyTensorBehaves) {
    Tensor t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.size(), 0U);
    EXPECT_DOUBLE_EQ(t.Sum(), 0.0);
    EXPECT_DOUBLE_EQ(t.Mean(), 0.0);
}

// ---------- MoE layer config guards ----------

TEST(MoeEdge, ConfigValidation) {
    Rng rng(1);
    MoeLayerConfig cfg;
    cfg.hidden = 8;
    cfg.inter = 16;
    cfg.num_experts = 4;
    cfg.top_k = 5;  // > num_experts
    EXPECT_THROW(MoeLayer("m", cfg, rng, 0.3F), std::invalid_argument);
    cfg.top_k = 1;
    cfg.capacity_factor = 0.0;
    EXPECT_THROW(MoeLayer("m", cfg, rng, 0.3F), std::invalid_argument);
}

TEST(MoeEdge, InputShapeValidated) {
    Rng rng(1);
    MoeLayerConfig cfg;
    cfg.hidden = 8;
    cfg.inter = 16;
    cfg.num_experts = 2;
    MoeLayer moe("m", cfg, rng, 0.3F);
    Tensor wrong({3, 4});  // hidden mismatch
    Rng noise(1);
    EXPECT_THROW(moe.Forward(wrong, true, noise), std::invalid_argument);
}

}  // namespace
}  // namespace moc
