/**
 * @file
 * Cluster checkpointing under storage faults: the per-shard commit protocol
 * (versioned keys, generation seal, dedup-by-reference) must never offer a
 * torn generation as a restart target, and `moc_cli fsck` must classify a
 * torn directory as repairable, never clean.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <thread>

#include "ckpt/cluster_engine.h"
#include "ckpt/persist_pipeline.h"
#include "cli_lib.h"
#include "core/cluster_recovery.h"
#include "storage/faulty_store.h"
#include "storage/file_store.h"
#include "storage/persistent_store.h"
#include "storage/store_error.h"

namespace moc {
namespace {

/**
 * Deterministic fault scoped to one rank: Put throws for keys containing
 * @p needle while enabled. Models exactly one rank's persist path dying
 * mid-event while every other rank lands its shards (the torn-checkpoint
 * scenario the commit protocol exists for).
 */
class RankFaultStore final : public ObjectStore {
  public:
    RankFaultStore(ObjectStore& base, std::string needle)
        : base_(base), needle_(std::move(needle)) {}

    void set_enabled(bool enabled) { enabled_.store(enabled); }

    void Put(const std::string& key, Blob blob) override {
        if (enabled_.load() && key.find(needle_) != std::string::npos) {
            throw StoreError(StoreErrorKind::kTransient, key,
                             "injected rank fault");
        }
        base_.Put(key, std::move(blob));
    }
    std::optional<Blob> Get(const std::string& key) const override {
        return base_.Get(key);
    }
    bool Contains(const std::string& key) const override {
        return base_.Contains(key);
    }
    void Erase(const std::string& key) override { base_.Erase(key); }
    std::vector<std::string> Keys() const override { return base_.Keys(); }
    Bytes TotalBytes() const override { return base_.TotalBytes(); }
    std::size_t Count() const override { return base_.Count(); }

  private:
    ObjectStore& base_;
    const std::string needle_;
    std::atomic<bool> enabled_{false};
};

AgentCostModel
FastCost() {
    AgentCostModel cost;
    cost.snapshot_bandwidth = 200e6;
    cost.persist_bandwidth = 200e6;
    cost.time_scale = 1.0;
    return cost;
}

/** @p ranks ranks, each holding @p per_rank expert shards of 256 KiB. */
ShardPlan
ExpertPlan(std::size_t ranks, std::size_t per_rank) {
    ShardPlan plan(ranks);
    for (RankId r = 0; r < ranks; ++r) {
        for (std::size_t i = 0; i < per_rank; ++i) {
            plan.Add(r, {"expert/" + std::to_string(r * per_rank + i) + "/w",
                         256 * kKiB, false});
        }
    }
    return plan;
}

// ---------- PersistPipeline ----------

TEST(PersistPipeline, WritesVersionedKeysAndSealsGeneration) {
    PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                           .latency = 0.0});
    CheckpointManifest manifest;
    PersistPipeline pipeline(store, manifest, {});

    pipeline.BeginGeneration(1);
    const auto batch = pipeline.MakeBatch();
    pipeline.Submit("a", Blob(100, 0x11), 1, batch);
    pipeline.Submit("b", Blob(200, 0x22), 1, batch);
    batch->Wait();
    const auto stats = pipeline.FinishGeneration();

    EXPECT_TRUE(stats.sealed);
    EXPECT_EQ(stats.shards, 2U);
    EXPECT_EQ(stats.shards_written, 2U);
    EXPECT_EQ(stats.failures, 0U);
    EXPECT_EQ(stats.bytes_written, 300U);
    EXPECT_TRUE(store.Contains("a@1"));
    EXPECT_TRUE(store.Contains("b@1"));
    EXPECT_EQ(manifest.LatestEligibleGeneration(), 1U);
}

TEST(PersistPipeline, DedupRecordsUnchangedShardByReference) {
    PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                           .latency = 0.0});
    CheckpointManifest manifest;
    PersistPipeline pipeline(store, manifest, {});

    const Blob unchanged(100, 0x11);
    pipeline.BeginGeneration(1);
    pipeline.Submit("a", unchanged, 1);
    pipeline.Submit("b", Blob(200, 0x22), 1);
    ASSERT_TRUE(pipeline.FinishGeneration().sealed);

    pipeline.BeginGeneration(2);
    pipeline.Submit("a", unchanged, 2);       // identical -> dedup
    pipeline.Submit("b", Blob(200, 0x33), 2); // changed -> write
    const auto stats = pipeline.FinishGeneration();

    EXPECT_TRUE(stats.sealed);
    EXPECT_EQ(stats.shards_written, 1U);
    EXPECT_EQ(stats.shards_deduped, 1U);
    EXPECT_EQ(stats.bytes_deduped, 100U);
    EXPECT_FALSE(store.Contains("a@2"));  // no bytes written for the ref
    EXPECT_TRUE(store.Contains("b@2"));

    // The manifest still records a@2 — resolved to the physical blob at 1.
    const auto chain = manifest.PersistFallbackChain("a", 2);
    ASSERT_FALSE(chain.empty());
    EXPECT_EQ(chain.front().iteration, 2U);
    EXPECT_EQ(chain.front().PhysicalIteration(), 1U);

    // A third unchanged event chains the ref back to the original blob.
    pipeline.BeginGeneration(3);
    pipeline.Submit("a", unchanged, 3);
    pipeline.Submit("b", Blob(200, 0x33), 3);
    ASSERT_TRUE(pipeline.FinishGeneration().sealed);
    EXPECT_EQ(manifest.PersistFallbackChain("a", 3).front().PhysicalIteration(),
              1U);
}

TEST(PersistPipeline, UnsealedGenerationNeverBecomesDedupBaseline) {
    PersistentStore base({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                          .latency = 0.0});
    RankFaultStore store(base, "b@");
    CheckpointManifest manifest;
    PersistPipeline pipeline(store, manifest, {});

    pipeline.BeginGeneration(1);
    pipeline.Submit("a", Blob(100, 0x11), 1);
    pipeline.Submit("b", Blob(200, 0x22), 1);
    ASSERT_TRUE(pipeline.FinishGeneration().sealed);

    // Generation 2 tears: both shards change; "a" lands, "b" fails.
    store.set_enabled(true);
    pipeline.BeginGeneration(2);
    pipeline.Submit("a", Blob(100, 0x77), 2);
    pipeline.Submit("b", Blob(200, 0x55), 2);
    const auto torn = pipeline.FinishGeneration();
    EXPECT_FALSE(torn.sealed);
    EXPECT_EQ(torn.failures, 1U);
    store.set_enabled(false);

    // Generation 3 resubmits generation 2's "a" content: it must be
    // WRITTEN, not deduped — the baseline is still the last *sealed*
    // generation (1), whose "a" differs. "b" reverts to generation 1's
    // content and dedups against it.
    pipeline.BeginGeneration(3);
    pipeline.Submit("a", Blob(100, 0x77), 3);
    pipeline.Submit("b", Blob(200, 0x22), 3);
    const auto stats = pipeline.FinishGeneration();
    EXPECT_TRUE(stats.sealed);
    EXPECT_EQ(stats.shards_written, 1U);  // "a" re-persisted
    EXPECT_EQ(stats.shards_deduped, 1U);  // "b" unchanged since gen 1
    EXPECT_EQ(manifest.EligibleGenerations(),
              (std::vector<std::size_t>{3, 1}));
}

TEST(PersistPipeline, VerifyCatchesSilentBitFlip) {
    PersistentStore base({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                          .latency = 0.0});
    FaultyStore store(base, /*seed=*/7);
    CheckpointManifest manifest;
    PersistPipeline pipeline(store, manifest, {});

    StorageFaultProfile profile;
    profile.bit_flip = 1.0;  // every write silently lands damaged
    store.Arm(profile);
    pipeline.BeginGeneration(1);
    pipeline.Submit("a", Blob(100, 0x11), 1);
    const auto stats = pipeline.FinishGeneration();
    store.Disarm();

    EXPECT_FALSE(stats.sealed);
    EXPECT_EQ(stats.failures, 1U);
    EXPECT_GT(store.injected().bit_flips, 0U);
    // The landed-but-unverified version never enters a fallback chain.
    EXPECT_TRUE(manifest.PersistFallbackChain("a", 1).empty());
    EXPECT_FALSE(manifest.LatestEligibleGeneration().has_value());
}

TEST(PersistPipeline, RejectsOverlappingGenerationsAndStraySubmits) {
    PersistentStore store;
    CheckpointManifest manifest;
    PersistPipeline pipeline(store, manifest, {});
    EXPECT_THROW(pipeline.Submit("a", Blob(1), 1), std::invalid_argument);
    pipeline.BeginGeneration(1);
    EXPECT_THROW(pipeline.BeginGeneration(2), std::invalid_argument);
    EXPECT_THROW(pipeline.Submit("a", Blob(1), 2), std::invalid_argument);
    pipeline.FinishGeneration();
    EXPECT_THROW(pipeline.FinishGeneration(), std::invalid_argument);
}

// ---------- ClusterFaults (engine e2e under injected faults) ----------

TEST(ClusterFaults, TransientFaultsLeaveGenerationUnsealed) {
    PersistentStore base({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                          .latency = 0.0});
    FaultyStore store(base, /*seed=*/42);
    ClusterCheckpointEngine engine(store, 2, FastCost());
    const auto plan = ExpertPlan(2, 2);

    const auto ok = engine.Execute(plan, SyntheticBlobProvider(1), 1);
    ASSERT_TRUE(ok.sealed);

    StorageFaultProfile profile;
    profile.put_transient_error = 1.0;
    store.Arm(profile);
    const auto torn = engine.Execute(plan, SyntheticBlobProvider(2), 2);
    store.Disarm();

    EXPECT_FALSE(torn.sealed);
    EXPECT_EQ(torn.keys_persisted, 0U);
    EXPECT_EQ(torn.persist_failures, 4U);
    // The torn generation is never offered as a restart target.
    EXPECT_EQ(engine.manifest().LatestEligibleGeneration(), 1U);
    const auto restore = PlanClusterRestore(engine.manifest());
    ASSERT_TRUE(restore.has_value());
    EXPECT_EQ(restore->generation, 1U);
}

TEST(ClusterFaults, SingleRankFaultFallsBackToSealedGeneration) {
    PersistentStore base({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                          .latency = 0.0});
    RankFaultStore store(base, "rank1/");
    ClusterCheckpointEngine engine(store, 2, FastCost());
    const auto plan = ExpertPlan(2, 2);

    ASSERT_TRUE(engine.Execute(plan, SyntheticBlobProvider(1), 1).sealed);

    // Rank 1's persist path dies mid-event; rank 0 lands all its shards.
    store.set_enabled(true);
    const auto torn = engine.Execute(plan, SyntheticBlobProvider(2), 2);
    store.set_enabled(false);
    EXPECT_FALSE(torn.sealed);
    EXPECT_EQ(torn.keys_persisted, 2U);   // rank 0's shards landed...
    EXPECT_EQ(torn.persist_failures, 2U); // ...rank 1's did not
    EXPECT_TRUE(store.Contains(VersionedShardKey("rank0/expert/0/w", 2)));

    // Recovery selects generation 1 and never references an @2 blob, even
    // for the shards that landed: a torn set must not be mixed.
    const auto restore = PlanClusterRestore(engine.manifest());
    ASSERT_TRUE(restore.has_value());
    EXPECT_EQ(restore->generation, 1U);
    for (const auto& shard : restore->shards) {
        EXPECT_EQ(shard.iteration, 1U) << shard.key;
        EXPECT_EQ(shard.physical_key.find("@2"), std::string::npos)
            << shard.physical_key;
    }
    const auto result = ExecuteClusterRestore(engine.manifest(), store, *restore);
    EXPECT_EQ(result.shards_restored, 4U);
    EXPECT_TRUE(result.damaged.empty());
    // The restored bytes are generation 1's content, not the torn event's.
    const auto items = plan.Items(0);
    const Blob expected = SyntheticShardBytes(items.front(), 1);
    EXPECT_EQ(result.blobs.at("rank0/" + items.front().key), expected);
}

TEST(ClusterFaults, FsckClassifiesTornGenerationRepairableNeverClean) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "moc_cluster_fsck";
    fs::remove_all(dir);
    FileStore disk(dir);
    RankFaultStore store(disk, "rank1/");
    {
        ClusterCheckpointEngine engine(store, 2, FastCost());
        const auto plan = ExpertPlan(2, 2);
        ASSERT_TRUE(engine.Execute(plan, SyntheticBlobProvider(1), 1).sealed);

        // A clean directory (one sealed generation) fscks clean.
        std::ostringstream out0;
        std::ostringstream err0;
        EXPECT_EQ(cli::Main({"fsck", dir.string()}, out0, err0), 0)
            << out0.str();

        store.set_enabled(true);
        EXPECT_FALSE(engine.Execute(plan, SyntheticBlobProvider(2), 2).sealed);
        store.set_enabled(false);
    }
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(cli::Main({"fsck", dir.string()}, out, err), 1) << out.str();
    EXPECT_NE(out.str().find("torn generation: 2"), std::string::npos)
        << out.str();
    EXPECT_NE(out.str().find("repairable"), std::string::npos) << out.str();
    EXPECT_EQ(out.str().find("clean:"), std::string::npos) << out.str();
    fs::remove_all(dir);
}

TEST(ClusterFaults, PerShardStatsReportPerCallDeltas) {
    // Regression: ClusterRunStats used to report the agents' lifetime
    // totals, double-counting the first event in the second's stats.
    PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                           .latency = 0.0});
    ClusterCheckpointEngine engine(store, 2, FastCost());
    const auto plan = ExpertPlan(2, 2);
    const auto first = engine.Execute(plan, SyntheticBlobProvider(1), 1);
    const auto second = engine.Execute(plan, SyntheticBlobProvider(2), 2);
    EXPECT_EQ(first.keys_persisted, 4U);
    EXPECT_EQ(second.keys_persisted, 4U);  // not 8: per-call, not lifetime
    EXPECT_EQ(first.bytes_persisted, second.bytes_persisted);
}

TEST(ClusterFaults, MonolithicStatsReportPerCallDeltas) {
    PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                           .latency = 0.0});
    ClusterEngineOptions opt;
    opt.per_shard = false;
    ClusterCheckpointEngine engine(store, 2, FastCost(), opt);
    const auto plan = ExpertPlan(2, 2);
    const auto first = engine.Execute(plan, SyntheticBlobProvider(1), 1);
    const auto second = engine.Execute(plan, SyntheticBlobProvider(2), 2);
    EXPECT_EQ(first.keys_persisted, 2U);   // one blob per rank
    EXPECT_EQ(second.keys_persisted, 2U);  // not 4: per-call, not lifetime
    EXPECT_EQ(first.bytes_persisted, second.bytes_persisted);
}

TEST(ClusterFaults, UnchangedEventDedupsEverything) {
    PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                           .latency = 0.0});
    ClusterCheckpointEngine engine(store, 2, FastCost());
    const auto plan = ExpertPlan(2, 2);
    ASSERT_TRUE(engine.Execute(plan, SyntheticBlobProvider(1), 1).sealed);
    // Same salt -> bit-identical shards -> every one dedups by reference.
    const auto stats = engine.Execute(plan, SyntheticBlobProvider(1), 2);
    EXPECT_TRUE(stats.sealed);
    EXPECT_EQ(stats.keys_persisted, 0U);
    EXPECT_EQ(stats.bytes_persisted, 0U);
    EXPECT_EQ(stats.keys_deduped, 4U);
    EXPECT_GT(stats.bytes_deduped, 0U);
    EXPECT_EQ(engine.manifest().LatestEligibleGeneration(), 2U);
}

TEST(ClusterFaults, SerializationTimedSeparatelyFromSnapshot) {
    // Regression: per_rank_snapshot used to include the CPU-side provider
    // time, inflating the reported GPU->CPU phase.
    PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                           .latency = 0.0});
    ClusterCheckpointEngine engine(store, 2, FastCost());
    ShardPlan plan(2);
    for (RankId r = 0; r < 2; ++r) {
        plan.Add(r, {"unit/" + std::to_string(r), 64 * kKiB, false});
    }
    const BlobProvider slow = [](const ShardItem& item) {
        std::this_thread::sleep_for(std::chrono::milliseconds(40));
        return SyntheticShardBytes(item, 1);
    };
    const auto stats = engine.Execute(plan, slow, 1);
    for (RankId r = 0; r < 2; ++r) {
        EXPECT_GE(stats.per_rank_serialize[r], 0.035) << "rank " << r;
        EXPECT_LT(stats.per_rank_snapshot[r], stats.per_rank_serialize[r])
            << "rank " << r;
    }
}

TEST(ClusterFaults, SyntheticBytesAreSeededNotConstant) {
    // Regression: the provider used to fill blobs with one constant byte,
    // which made dedup trivially collide and CRC checks vacuous.
    const ShardItem a{"expert/0/w", 256 * kKiB, false};
    const ShardItem b{"expert/1/w", 256 * kKiB, false};
    const Blob blob_a = SyntheticShardBytes(a, 1);
    EXPECT_EQ(blob_a.size(), 256U);  // 1/1024 size scale
    bool varied = false;
    for (const auto byte : blob_a) {
        if (byte != blob_a.front()) {
            varied = true;
            break;
        }
    }
    EXPECT_TRUE(varied) << "blob is a constant fill";
    EXPECT_EQ(blob_a, SyntheticShardBytes(a, 1));  // deterministic
    EXPECT_NE(blob_a, SyntheticShardBytes(b, 1));  // per-key
    EXPECT_NE(blob_a, SyntheticShardBytes(a, 2));  // per-salt
}

// ---------- ClusterRecovery ----------

TEST(ClusterRecovery, RestoreResolvesDedupReferences) {
    PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                           .latency = 0.0});
    ClusterCheckpointEngine engine(store, 2, FastCost());
    const auto plan = ExpertPlan(2, 1);
    ASSERT_TRUE(engine.Execute(plan, SyntheticBlobProvider(1), 1).sealed);
    ASSERT_TRUE(engine.Execute(plan, SyntheticBlobProvider(1), 2).sealed);

    const auto restore = PlanClusterRestore(engine.manifest());
    ASSERT_TRUE(restore.has_value());
    EXPECT_EQ(restore->generation, 2U);
    for (const auto& shard : restore->shards) {
        EXPECT_EQ(shard.iteration, 2U);
        // Generation 2 deduped everything; blobs physically live at @1.
        EXPECT_NE(shard.physical_key.find("@1"), std::string::npos)
            << shard.physical_key;
    }
    const auto result = ExecuteClusterRestore(engine.manifest(), store, *restore);
    EXPECT_TRUE(result.damaged.empty());
    const auto items = plan.Items(1);
    EXPECT_EQ(result.blobs.at("rank1/" + items.front().key),
              SyntheticShardBytes(items.front(), 1));
}

TEST(ClusterRecovery, DamagedBlobFallsBackDownTheChain) {
    PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                           .latency = 0.0});
    ClusterCheckpointEngine engine(store, 1, FastCost());
    const auto plan = ExpertPlan(1, 1);
    ASSERT_TRUE(engine.Execute(plan, SyntheticBlobProvider(1), 1).sealed);
    ASSERT_TRUE(engine.Execute(plan, SyntheticBlobProvider(2), 2).sealed);

    // Rot generation 2's blob after it sealed.
    const std::string key = "rank0/" + plan.Items(0).front().key;
    store.Put(VersionedShardKey(key, 2), Blob(16, 0xFF));

    const auto restore = PlanClusterRestore(engine.manifest());
    ASSERT_TRUE(restore.has_value());
    EXPECT_EQ(restore->generation, 2U);
    const auto result = ExecuteClusterRestore(engine.manifest(), store, *restore);
    EXPECT_TRUE(result.damaged.empty());
    ASSERT_EQ(result.degraded.size(), 1U);
    EXPECT_EQ(result.degraded.front().key, key);
    EXPECT_EQ(result.degraded.front().restored_iteration, 1U);
    EXPECT_EQ(result.blobs.at(key),
              SyntheticShardBytes(plan.Items(0).front(), 1));
}

TEST(ClusterRecovery, NoSealedGenerationMeansNoRestartTarget) {
    PersistentStore base({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                          .latency = 0.0});
    FaultyStore store(base, /*seed=*/3);
    ClusterCheckpointEngine engine(store, 2, FastCost());
    StorageFaultProfile profile;
    profile.put_transient_error = 1.0;
    store.Arm(profile);
    EXPECT_FALSE(
        engine.Execute(ExpertPlan(2, 2), SyntheticBlobProvider(1), 1).sealed);
    store.Disarm();
    EXPECT_FALSE(PlanClusterRestore(engine.manifest()).has_value());
}

TEST(ClusterRecovery, MaxIterationBoundsTheTarget) {
    PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                           .latency = 0.0});
    ClusterCheckpointEngine engine(store, 1, FastCost());
    const auto plan = ExpertPlan(1, 1);
    ASSERT_TRUE(engine.Execute(plan, SyntheticBlobProvider(1), 1).sealed);
    ASSERT_TRUE(engine.Execute(plan, SyntheticBlobProvider(2), 2).sealed);
    const auto restore = PlanClusterRestore(engine.manifest(), 1);
    ASSERT_TRUE(restore.has_value());
    EXPECT_EQ(restore->generation, 1U);
}

}  // namespace
}  // namespace moc
