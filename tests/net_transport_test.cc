/**
 * @file
 * Unit tests for the in-process transport, the liveness state machines
 * (HeartbeatMonitor / EpochGate), the lazy-pirate Call retry loop, and the
 * seeded message-fault decorator (net/net_faults.h).
 */

#include <gtest/gtest.h>

#include <thread>

#include "net/inproc_transport.h"
#include "net/net_faults.h"
#include "net/transport.h"

namespace moc::net {
namespace {

TEST(NetTransport, InprocSendRecvRoundTrip) {
    InprocHub hub;
    InprocTransport a(hub, 1);
    InprocTransport b(hub, 2);

    obs::TraceContext ctx;
    ctx.generation = 4;
    ctx.iteration = 128;
    ctx.rank = 1;
    ctx.phase = "persist";
    ASSERT_TRUE(a.Send(2, MsgType::kData, {1, 2, 3}, ctx));

    auto msg = b.Recv(1.0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->type, MsgType::kData);
    EXPECT_EQ(msg->from, 1U);
    EXPECT_EQ(msg->payload, (Blob{1, 2, 3}));
    // The TraceContext rides the frame header through the codec.
    EXPECT_EQ(msg->ctx.generation, 4U);
    EXPECT_EQ(msg->ctx.iteration, 128U);
    EXPECT_EQ(msg->ctx.rank, 1);
    EXPECT_STREQ(msg->ctx.phase, "persist");
}

TEST(NetTransport, RecvTimesOutEmpty) {
    InprocHub hub;
    InprocTransport a(hub, 1);
    EXPECT_FALSE(a.Recv(0.01).has_value());
}

TEST(NetTransport, SendToUnknownPeerFails) {
    InprocHub hub;
    InprocTransport a(hub, 1);
    EXPECT_FALSE(a.Send(42, MsgType::kData, {}));
}

TEST(NetTransport, DetachDeliversPeerDeathInBand) {
    InprocHub hub;
    InprocTransport a(hub, 1);
    {
        InprocTransport doomed(hub, 2);
        doomed.Close();  // non-orderly: synthesizes a death
    }
    auto msg = a.Recv(1.0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->type, MsgType::kPeerDeath);
    EXPECT_EQ(msg->from, 2U);
    EXPECT_FALSE(a.Alive(2));
}

TEST(NetTransport, OrderlyGoodbyeSuppressesDeath) {
    InprocHub hub;
    InprocTransport a(hub, 1);
    {
        InprocTransport leaver(hub, 2);
        leaver.CloseOrderly();
    }
    EXPECT_FALSE(a.Recv(0.02).has_value());
}

TEST(NetTransport, RejoinSupersedesOldEpochAndDropsStaleSends) {
    InprocHub hub;
    InprocTransport coordinator(hub, 100);
    auto zombie = std::make_unique<InprocTransport>(hub, 2);
    const std::uint32_t old_epoch = zombie->epoch();

    // The rank "rejoins": a fresh endpoint with the same peer id admits a
    // new session epoch, superseding the zombie.
    InprocTransport rejoined(hub, 2);
    EXPECT_GT(rejoined.epoch(), old_epoch);

    // The zombie's ack must be dropped (stale epoch), not delivered.
    EXPECT_FALSE(zombie->Send(100, MsgType::kRankDone, {9}));
    EXPECT_FALSE(coordinator.Recv(0.02).has_value());
    EXPECT_GE(hub.epochs().stale_rejected(), 1U);

    // The rejoined endpoint's frames flow.
    ASSERT_TRUE(rejoined.Send(100, MsgType::kRankDone, {7}));
    auto msg = coordinator.Recv(1.0);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->payload, (Blob{7}));
    EXPECT_EQ(msg->epoch, rejoined.epoch());

    // Destroying the zombie must not kill the successor's mailbox.
    zombie.reset();
    ASSERT_TRUE(rejoined.Send(100, MsgType::kData, {}));
    EXPECT_TRUE(hub.Attached(2));
}

TEST(NetTransport, RequeuePreservesFrontOrder) {
    InprocHub hub;
    InprocTransport a(hub, 1);
    InprocTransport b(hub, 2);
    ASSERT_TRUE(a.Send(2, MsgType::kData, {1}));
    ASSERT_TRUE(a.Send(2, MsgType::kData, {2}));

    auto first = b.Recv(1.0);
    ASSERT_TRUE(first.has_value());
    b.Requeue(*first);
    auto again = b.Recv(1.0);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(again->payload, (Blob{1}));
    auto second = b.Recv(1.0);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->payload, (Blob{2}));
}

TEST(NetTransport, CallRetriesUntilReplyArrives) {
    InprocHub hub;
    InprocTransport client(hub, 1);
    InprocTransport server(hub, 2);

    std::thread responder([&server] {
        // Ignore the first two attempts; answer the third.
        std::size_t seen = 0;
        while (seen < 3) {
            auto msg = server.Recv(2.0);
            if (!msg || msg->type != MsgType::kData) {
                continue;
            }
            if (++seen == 3) {
                server.Send(1, MsgType::kRankDone, {42});
            }
        }
    });

    CallPolicy policy;
    policy.max_attempts = 5;
    policy.initial_timeout_s = 0.02;
    policy.op_deadline_s = 5.0;
    auto reply = Call(client, 2, MsgType::kData, {7}, MsgType::kRankDone,
                      policy);
    responder.join();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MsgType::kRankDone);
    EXPECT_EQ(reply->payload, (Blob{42}));
}

TEST(NetTransport, CallGivesUpAfterAttemptBudget) {
    InprocHub hub;
    InprocTransport client(hub, 1);
    InprocTransport silent(hub, 2);

    CallPolicy policy;
    policy.max_attempts = 2;
    policy.initial_timeout_s = 0.01;
    policy.max_timeout_s = 0.02;
    policy.op_deadline_s = 1.0;
    auto reply =
        Call(client, 2, MsgType::kData, {}, MsgType::kRankDone, policy);
    EXPECT_FALSE(reply.has_value());
}

TEST(NetTransport, CallPreservesUnrelatedMessages) {
    InprocHub hub;
    InprocTransport client(hub, 1);
    InprocTransport server(hub, 2);
    InprocTransport bystander(hub, 3);

    // An unrelated message lands while Call waits; it must survive.
    ASSERT_TRUE(bystander.Send(1, MsgType::kData, {0xAA}));
    std::thread responder([&server] {
        auto msg = server.Recv(2.0);
        if (msg) {
            server.Send(1, MsgType::kRankDone, {1});
        }
    });
    auto reply = Call(client, 2, MsgType::kData, {}, MsgType::kRankDone);
    responder.join();
    ASSERT_TRUE(reply.has_value());

    auto kept = client.Recv(1.0);
    ASSERT_TRUE(kept.has_value());
    EXPECT_EQ(kept->from, 3U);
    EXPECT_EQ(kept->payload, (Blob{0xAA}));
}

TEST(NetTransport, CallReturnsPeerDeathWhenTargetDies) {
    InprocHub hub;
    InprocTransport client(hub, 1);
    auto victim = std::make_unique<InprocTransport>(hub, 2);

    std::thread killer([&victim] {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        victim->Close();
    });
    CallPolicy policy;
    policy.max_attempts = 10;
    policy.initial_timeout_s = 0.01;
    policy.op_deadline_s = 5.0;
    auto reply =
        Call(client, 2, MsgType::kData, {}, MsgType::kRankDone, policy);
    killer.join();
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(reply->type, MsgType::kPeerDeath);
    EXPECT_EQ(reply->from, 2U);
}

TEST(NetLiveness, MonitorDeclaresDeathAfterMissLimit) {
    HeartbeatOptions options;
    options.interval_s = 1.0;
    options.miss_limit = 3;
    HeartbeatMonitor monitor(options);
    monitor.Register(7, 0.0);

    EXPECT_TRUE(monitor.Alive(7));
    EXPECT_TRUE(monitor.Expired(2.9).empty());
    auto dead = monitor.Expired(3.1);
    ASSERT_EQ(dead.size(), 1U);
    EXPECT_EQ(dead[0], 7U);
    EXPECT_FALSE(monitor.Alive(7));
    // Death is declared exactly once.
    EXPECT_TRUE(monitor.Expired(10.0).empty());
}

TEST(NetLiveness, HeardResetsTheSilenceClock) {
    HeartbeatOptions options;
    options.interval_s = 1.0;
    options.miss_limit = 3;
    HeartbeatMonitor monitor(options);
    monitor.Register(7, 0.0);
    monitor.Heard(7, 2.5);
    EXPECT_TRUE(monitor.Expired(4.0).empty());
    EXPECT_DOUBLE_EQ(monitor.SilentFor(7, 4.0), 1.5);
    ASSERT_EQ(monitor.Expired(6.0).size(), 1U);
}

TEST(NetLiveness, HeardDoesNotReviveTheDeadButRegisterDoes) {
    HeartbeatOptions options;
    options.interval_s = 0.1;
    options.miss_limit = 2;
    HeartbeatMonitor monitor(options);
    monitor.Register(7, 0.0);
    ASSERT_EQ(monitor.Expired(1.0).size(), 1U);

    // A late frame from the dead session must not resurrect it...
    monitor.Heard(7, 1.1);
    EXPECT_FALSE(monitor.Alive(7));
    // ...but an explicit re-Register (a reconnect) does.
    monitor.Register(7, 2.0);
    EXPECT_TRUE(monitor.Alive(7));
}

TEST(NetLiveness, RemoveIsAnOrderlyGoodbye) {
    HeartbeatMonitor monitor;
    monitor.Register(7, 0.0);
    monitor.Remove(7);
    EXPECT_FALSE(monitor.Alive(7));
    EXPECT_TRUE(monitor.Expired(1e9).empty());
}

TEST(NetLiveness, EpochGateRejectsStaleSessions) {
    EpochGate gate;
    EXPECT_EQ(gate.Current(5), 0U);
    const std::uint32_t first = gate.Admit(5);
    EXPECT_EQ(first, 1U);
    EXPECT_TRUE(gate.Accept(5, first));

    const std::uint32_t second = gate.Admit(5);
    EXPECT_EQ(second, 2U);
    EXPECT_FALSE(gate.Accept(5, first));  // the old session is gone
    EXPECT_TRUE(gate.Accept(5, second));
    EXPECT_EQ(gate.stale_rejected(), 1U);
    // Epochs are per peer.
    EXPECT_EQ(gate.Admit(6), 1U);
}

TEST(NetFaults, SeededDropIsDeterministic) {
    const auto run = [](std::uint64_t seed) {
        InprocHub hub;
        InprocTransport sender(hub, 1);
        InprocTransport receiver(hub, 2);
        NetFaultProfile profile;
        profile.drop = 0.5;
        profile.seed = seed;
        FaultyTransport faulty(sender, profile);
        std::vector<int> delivered;
        for (int i = 0; i < 64; ++i) {
            faulty.Send(2, MsgType::kData, {static_cast<std::uint8_t>(i)});
        }
        while (auto msg = receiver.Recv(0.01)) {
            delivered.push_back(msg->payload.at(0));
        }
        return delivered;
    };
    const auto a = run(0xABCD);
    const auto b = run(0xABCD);
    const auto c = run(0x1234);
    EXPECT_EQ(a, b);           // same seed, same carnage
    EXPECT_NE(a, c);           // different seed, different stream
    EXPECT_LT(a.size(), 64U);  // something actually dropped
    EXPECT_GT(a.size(), 0U);
}

TEST(NetFaults, DuplicateSendsTwice) {
    InprocHub hub;
    InprocTransport sender(hub, 1);
    InprocTransport receiver(hub, 2);
    NetFaultProfile profile;
    profile.duplicate = 1.0;
    FaultyTransport faulty(sender, profile);
    ASSERT_TRUE(faulty.Send(2, MsgType::kData, {5}));

    auto first = receiver.Recv(0.5);
    auto second = receiver.Recv(0.5);
    ASSERT_TRUE(first.has_value());
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(first->payload, second->payload);
    EXPECT_EQ(faulty.stats().duplicated, 1U);
}

TEST(NetFaults, ReorderHoldsOneFrameBack) {
    InprocHub hub;
    InprocTransport sender(hub, 1);
    InprocTransport receiver(hub, 2);
    NetFaultProfile profile;
    profile.reorder = 1.0;
    FaultyTransport faulty(sender, profile);

    // First send is held; second send is reordered ahead of it — but only
    // one frame is ever in the hold slot.
    ASSERT_TRUE(faulty.Send(2, MsgType::kData, {1}));
    EXPECT_FALSE(receiver.Recv(0.02).has_value());
    ASSERT_TRUE(faulty.Send(2, MsgType::kData, {2}));

    std::vector<std::uint8_t> order;
    while (auto msg = receiver.Recv(0.05)) {
        order.push_back(msg->payload.at(0));
    }
    ASSERT_EQ(order.size(), 2U);
    EXPECT_EQ(order[0], 2);  // the later frame overtook the held one
    EXPECT_EQ(order[1], 1);
    EXPECT_GE(faulty.stats().reordered, 1U);
}

TEST(NetFaults, CloseFlushesHeldFrame) {
    InprocHub hub;
    InprocTransport sender(hub, 1);
    InprocTransport receiver(hub, 2);
    NetFaultProfile profile;
    profile.reorder = 1.0;
    {
        FaultyTransport faulty(sender, profile);
        ASSERT_TRUE(faulty.Send(2, MsgType::kData, {9}));
        faulty.Close();
    }
    auto msg = receiver.Recv(0.5);
    ASSERT_TRUE(msg.has_value());
    EXPECT_EQ(msg->payload, (Blob{9}));
}

TEST(NetFaults, SparedHeartbeatsPassThroughUnfaulted) {
    InprocHub hub;
    InprocTransport sender(hub, 1);
    InprocTransport receiver(hub, 2);
    NetFaultProfile profile;
    profile.drop = 1.0;  // drop every data frame
    FaultyTransport faulty(sender, profile);

    EXPECT_TRUE(faulty.Send(2, MsgType::kHeartbeat, {}));
    EXPECT_EQ(faulty.stats().dropped, 0U);
    // A dropped data frame still reports success — the loss is silent,
    // exactly like the network — but nothing is delivered.
    EXPECT_TRUE(faulty.Send(2, MsgType::kData, {1}));
    EXPECT_EQ(faulty.stats().dropped, 1U);
    bool saw_data = false;
    while (auto msg = receiver.Recv(0.02)) {
        saw_data |= msg->type == MsgType::kData;
    }
    EXPECT_FALSE(saw_data);
}

}  // namespace
}  // namespace moc::net
