/**
 * @file
 * Tests for the moc_cli tool's argument parsing and subcommands.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "cli_lib.h"
#include "core/moc_system.h"
#include "core/cold_start.h"
#include "nn/model.h"
#include "storage/file_store.h"

namespace moc {
namespace {

using cli::Args;
using cli::Main;
using cli::ParseArgs;

TEST(CliArgs, ParsesOptionsAndPositionals) {
    const Args args = ParseArgs({"pos1", "--dp", "16", "pos2", "--ep", "8"});
    EXPECT_EQ(args.positional, (std::vector<std::string>{"pos1", "pos2"}));
    EXPECT_EQ(args.Get("dp", ""), "16");
    EXPECT_EQ(args.GetInt("ep", 0), 8);
    EXPECT_EQ(args.GetInt("missing", 42), 42);
}

TEST(CliArgs, RejectsDanglingFlagAndJunkInts) {
    EXPECT_THROW(ParseArgs({"--dp"}), std::invalid_argument);
    const Args args = ParseArgs({"--dp", "abc"});
    EXPECT_THROW(args.GetInt("dp", 0), std::invalid_argument);
}

TEST(Cli, UsageOnNoCommand) {
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({}, out, err), 2);
    EXPECT_NE(err.str().find("usage"), std::string::npos);
}

TEST(Cli, UnknownCommand) {
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({"frobnicate"}, out, err), 2);
}

TEST(Cli, PlanPrintsPerRankSummary) {
    std::ostringstream out;
    std::ostringstream err;
    const int rc = Main({"plan", "--dp", "16", "--ep", "8", "--k", "1",
                         "--strategy", "full"},
                        out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("bottleneck"), std::string::npos);
    EXPECT_NE(out.str().find("2 EP groups"), std::string::npos);
}

TEST(Cli, PlanValidatesDegrees) {
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({"plan", "--dp", "10", "--ep", "4"}, out, err), 2);
}

TEST(Cli, SimulatePrintsGantts) {
    std::ostringstream out;
    std::ostringstream err;
    const int rc = Main({"simulate", "--gpus", "16", "--gpu", "a800"}, out, err);
    EXPECT_EQ(rc, 0) << err.str();
    EXPECT_NE(out.str().find("Baseline"), std::string::npos);
    EXPECT_NE(out.str().find("MoC-Async"), std::string::npos);
    EXPECT_NE(out.str().find("Snapshot"), std::string::npos);
}

TEST(Cli, TraceCheckValidatesGoodAndBad) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "moc_cli_trace";
    fs::create_directories(dir);
    const fs::path good = dir / "good.txt";
    const fs::path bad = dir / "bad.txt";
    {
        std::ofstream(good) << "# ok\n10 0\n20 1,2\n";
        std::ofstream(bad) << "oops\n";
    }
    std::ostringstream out1;
    std::ostringstream err;
    EXPECT_EQ(Main({"trace-check", good.string()}, out1, err), 0);
    EXPECT_NE(out1.str().find("2 fault event(s)"), std::string::npos);
    std::ostringstream out2;
    EXPECT_EQ(Main({"trace-check", bad.string()}, out2, err), 1);
    EXPECT_NE(out2.str().find("invalid trace"), std::string::npos);
    fs::remove_all(dir);
}

TEST(Cli, InspectReadsRealCheckpoint) {
    // Build a real checkpoint on disk, then inspect it.
    LmConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.hidden = 16;
    cfg.num_heads = 2;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 4;
    MoeTransformerLm model(cfg);
    RankTopology topo({.dp = 4, .ep = 4, .tp = 1, .pp = 1}, 2);
    MocSystemConfig sys_cfg;
    sys_cfg.pec.k_snapshot = 4;
    sys_cfg.pec.k_persist = 4;
    sys_cfg.i_ckpt = 4;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(sys_cfg, model, topo, cfg.ToModelSpec(), extra);
    extra.iteration = 12;
    extra.adam_step = 12;
    system.Checkpoint(12, extra);

    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "moc_cli_inspect";
    fs::remove_all(dir);
    {
        FileStore disk(dir);
        CopyStore(system.storage(), disk);
    }
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({"inspect", dir.string()}, out, err), 0) << err.str();
    EXPECT_NE(out.str().find("restart point: iteration 12"), std::string::npos);
    EXPECT_NE(out.str().find("moe/0/expert/0/w"), std::string::npos);
    fs::remove_all(dir);
}

TEST(Cli, InspectWithoutArgIsUsageError) {
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({"inspect"}, out, err), 2);
}

/** Builds a real two-generation checkpoint directory for fsck tests. */
std::filesystem::path
MakeCheckpointDir(const std::string& name) {
    LmConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.hidden = 16;
    cfg.num_heads = 2;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 4;
    MoeTransformerLm model(cfg);
    RankTopology topo({.dp = 4, .ep = 4, .tp = 1, .pp = 1}, 2);
    MocSystemConfig sys_cfg;
    sys_cfg.pec.k_snapshot = 4;
    sys_cfg.pec.k_persist = 4;
    sys_cfg.i_ckpt = 4;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(sys_cfg, model, topo, cfg.ToModelSpec(), extra);
    for (const std::size_t iter : {8, 12}) {
        extra.iteration = iter;
        extra.adam_step = iter;
        system.Checkpoint(iter, extra);
    }
    const auto dir = std::filesystem::temp_directory_path() / name;
    std::filesystem::remove_all(dir);
    FileStore disk(dir);
    CopyStore(system.storage(), disk);
    return dir;
}

/** Flips one payload byte of @p file in place. */
void
CorruptFile(const std::filesystem::path& file) {
    ASSERT_TRUE(std::filesystem::exists(file)) << file;
    std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16);
    char byte = 0;
    f.read(&byte, 1);
    f.seekp(16);
    byte = static_cast<char>(byte ^ 0x40);
    f.write(&byte, 1);
}

TEST(Cli, FsckWithoutArgIsUsageError) {
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({"fsck"}, out, err), 2);
}

TEST(Cli, FsckCleanStoreExitsZero) {
    const auto dir = MakeCheckpointDir("moc_cli_fsck_clean");
    const auto json = dir / "fsck.json";
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({"fsck", dir.string(), "--json", json.string()}, out, err),
              0)
        << err.str();
    EXPECT_NE(out.str().find("clean:"), std::string::npos) << out.str();
    std::ifstream in(json);
    std::stringstream doc;
    doc << in.rdbuf();
    EXPECT_NE(doc.str().find("\"moc-fsck/1\""), std::string::npos);
    EXPECT_NE(doc.str().find("\"exit_code\": 0"), std::string::npos);
    std::filesystem::remove_all(dir);
}

TEST(Cli, FsckDamagedTwinIsRepairable) {
    const auto dir = MakeCheckpointDir("moc_cli_fsck_repairable");
    CorruptFile(dir / "gen" / "8" / "moe" / "0" / "expert" / "0" / "w.blob");
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({"fsck", dir.string()}, out, err), 1) << out.str();
    EXPECT_NE(out.str().find("damaged file"), std::string::npos) << out.str();
    std::filesystem::remove_all(dir);
}

TEST(Cli, FsckNonexistentDirExitsTwoWithoutCreatingIt) {
    const auto dir =
        std::filesystem::temp_directory_path() / "moc_cli_fsck_no_such_dir";
    std::filesystem::remove_all(dir);
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({"fsck", dir.string()}, out, err), 2) << out.str();
    EXPECT_NE(out.str().find("not a directory"), std::string::npos)
        << out.str();
    // The scrub must not have conjured the directory into existence.
    EXPECT_FALSE(std::filesystem::exists(dir));
}

TEST(Cli, ReportMissingMetricsFileExitsTwo) {
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({"report", "--metrics", "/no/such/metrics.json"}, out, err),
              2)
        << out.str();
}

TEST(Cli, ReportUnparsableMetricsExitsTwo) {
    const auto path =
        std::filesystem::temp_directory_path() / "moc_cli_bad_metrics.json";
    std::ofstream(path) << "this is not json {";
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({"report", "--metrics", path.string()}, out, err), 2)
        << out.str();
    std::filesystem::remove(path);
}

TEST(Cli, TraceMissingFileExitsTwo) {
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({"trace", "--trace", "/no/such/trace.json"}, out, err), 2)
        << out.str();
}

TEST(Cli, FsckAllExtraStateCopiesGoneIsFatal) {
    const auto dir = MakeCheckpointDir("moc_cli_fsck_fatal");
    CorruptFile(dir / "extra" / "state.blob");
    CorruptFile(dir / "gen" / "8" / "extra" / "state.blob");
    CorruptFile(dir / "gen" / "12" / "extra" / "state.blob");
    std::ostringstream out;
    std::ostringstream err;
    EXPECT_EQ(Main({"fsck", dir.string()}, out, err), 2) << out.str();
    EXPECT_NE(out.str().find("FATAL"), std::string::npos) << out.str();
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace moc
