/**
 * @file
 * Unit tests for the faults module: injector schedules and the
 * fault-tolerant training drivers (small end-to-end runs).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "faults/injector.h"
#include "faults/trainer.h"

namespace moc {
namespace {

// ---------- FaultInjector ----------

TEST(Injector, FiresOnceAtScheduledIteration) {
    auto injector = FaultInjector::At(10, 1);
    EXPECT_FALSE(injector.Poll(9).has_value());
    const auto event = injector.Poll(10);
    ASSERT_TRUE(event.has_value());
    EXPECT_EQ(event->nodes, (std::vector<NodeId>{1}));
    // Replay must not re-fire it.
    EXPECT_FALSE(injector.Poll(10).has_value());
    EXPECT_EQ(injector.remaining(), 0U);
}

TEST(Injector, EveryGeneratesPeriodicEvents) {
    auto injector = FaultInjector::Every(100, 450, 0);
    EXPECT_EQ(injector.events().size(), 4U);  // 100, 200, 300, 400
    EXPECT_TRUE(injector.Poll(200).has_value());
    EXPECT_EQ(injector.remaining(), 3U);
}

TEST(Injector, PoissonRateRoughlyCorrect) {
    auto injector = FaultInjector::Poisson(0.01, 10000, 4, 7);
    const double count = static_cast<double>(injector.events().size());
    EXPECT_GT(count, 60.0);
    EXPECT_LT(count, 140.0);
    for (const auto& e : injector.events()) {
        EXPECT_LT(e.iteration, 10000U);
        EXPECT_LT(e.nodes[0], 4U);
    }
}

TEST(Injector, PoissonDeterministicBySeed) {
    auto a = FaultInjector::Poisson(0.01, 1000, 2, 3);
    auto b = FaultInjector::Poisson(0.01, 1000, 2, 3);
    ASSERT_EQ(a.events().size(), b.events().size());
    for (std::size_t i = 0; i < a.events().size(); ++i) {
        EXPECT_EQ(a.events()[i].iteration, b.events()[i].iteration);
    }
}

// ---------- End-to-end LM training ----------

LmConfig
TinyLm() {
    LmConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.hidden = 16;
    cfg.num_heads = 2;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 4;
    cfg.seed = 5;
    return cfg;
}

LmTrainerConfig
TinyTrainer(std::size_t iters = 48) {
    LmTrainerConfig cfg;
    cfg.moc.pec.k_snapshot = 2;
    cfg.moc.pec.k_persist = 1;
    cfg.moc.i_ckpt = 8;
    cfg.parallel = {.dp = 4, .ep = 4, .tp = 1, .pp = 1};
    cfg.gpus_per_node = 2;
    cfg.total_iterations = iters;
    cfg.adam.lr = 3e-3;
    return cfg;
}

struct LmFixtures {
    CorpusConfig corpus_cfg;
    ZipfMarkovCorpus corpus;
    LmBatchStream train;
    LmBatchStream valid;

    LmFixtures()
        : corpus_cfg([] {
              CorpusConfig c;
              c.vocab_size = 32;
              c.seed = 3;
              return c;
          }()),
          corpus(corpus_cfg),
          train(corpus, 8, 12, 0),
          valid(corpus, 8, 12, 1) {}
};

TEST(LmTrainer, RunsToCompletionWithoutFaults) {
    LmFixtures fx;
    MoeTransformerLm model(TinyLm());
    auto cfg = TinyTrainer();
    FaultInjector none(std::vector<FaultEvent>{});
    const auto log = RunFaultTolerantLmTraining(model, fx.train, fx.valid, cfg, none);
    EXPECT_EQ(log.train_losses.size(), 48U);
    EXPECT_EQ(log.checkpoints, 6U);  // every 8 of 48
    EXPECT_DOUBLE_EQ(log.plt, 0.0);
    EXPECT_TRUE(log.recoveries.empty());
    // Training learned something.
    EXPECT_LT(log.train_losses.back().second, log.train_losses.front().second);
}

TEST(LmTrainer, RecoversFromMidpointFault) {
    LmFixtures fx;
    MoeTransformerLm model(TinyLm());
    auto cfg = TinyTrainer();
    auto injector = FaultInjector::At(26, 0);
    const auto log = RunFaultTolerantLmTraining(model, fx.train, fx.valid, cfg, injector);
    ASSERT_EQ(log.recoveries.size(), 1U);
    // Restart point is the last completed checkpoint before iteration 26.
    EXPECT_EQ(log.recoveries[0].plan.restart_iteration, 24U);
    // Iterations 25..26 were replayed: the log contains them twice.
    EXPECT_GT(log.train_losses.size(), 48U);
    EXPECT_GT(log.plt, 0.0);
    EXPECT_LT(log.plt, 0.5);
}

TEST(LmTrainer, FullCheckpointFaultIsLossless) {
    LmFixtures fx;
    // Run A: no faults.
    MoeTransformerLm model_a(TinyLm());
    auto cfg = TinyTrainer();
    cfg.moc.pec.k_snapshot = 4;
    cfg.moc.pec.k_persist = 4;
    FaultInjector none(std::vector<FaultEvent>{});
    const auto log_a =
        RunFaultTolerantLmTraining(model_a, fx.train, fx.valid, cfg, none);
    // Run B: fault right after a checkpoint, with full checkpointing:
    // recovery replays deterministically -> identical final loss.
    MoeTransformerLm model_b(TinyLm());
    auto injector = FaultInjector::At(24, 1);
    const auto log_b =
        RunFaultTolerantLmTraining(model_b, fx.train, fx.valid, cfg, injector);
    EXPECT_DOUBLE_EQ(log_b.plt, 0.0);
    EXPECT_NEAR(log_a.final_eval_loss, log_b.final_eval_loss, 1e-9);
}

TEST(LmTrainer, PecFaultKeepsLossComparable) {
    LmFixtures fx;
    MoeTransformerLm model_a(TinyLm());
    auto cfg = TinyTrainer(64);
    FaultInjector none(std::vector<FaultEvent>{});
    const auto log_a =
        RunFaultTolerantLmTraining(model_a, fx.train, fx.valid, cfg, none);

    MoeTransformerLm model_b(TinyLm());
    auto injector = FaultInjector::At(34, 0);
    const auto log_b =
        RunFaultTolerantLmTraining(model_b, fx.train, fx.valid, cfg, injector);
    // PEC loses some expert updates but the final loss stays in the same
    // neighbourhood (the Fig. 5 phenomenon, coarse version).
    EXPECT_LT(std::fabs(log_a.final_eval_loss - log_b.final_eval_loss), 0.3);
}

TEST(LmTrainer, MoreFaultsMorePlt) {
    LmFixtures fx;
    auto cfg = TinyTrainer(64);
    cfg.moc.pec.k_snapshot = 1;
    cfg.moc.pec.k_persist = 1;
    cfg.moc.two_level_recovery = false;

    MoeTransformerLm one_model(TinyLm());
    auto one = FaultInjector::At(34, 0);
    const auto log_one =
        RunFaultTolerantLmTraining(one_model, fx.train, fx.valid, cfg, one);

    MoeTransformerLm many_model(TinyLm());
    auto many = FaultInjector::Every(16, 64, 0);
    const auto log_many =
        RunFaultTolerantLmTraining(many_model, fx.train, fx.valid, cfg, many);
    EXPECT_GT(log_many.plt, log_one.plt);
}

TEST(LmTrainer, TwoLevelRecoveryLowersPlt) {
    LmFixtures fx;
    auto base_cfg = TinyTrainer(64);
    base_cfg.moc.pec.k_snapshot = 4;
    base_cfg.moc.pec.k_persist = 1;

    auto run = [&](bool two_level) {
        MoeTransformerLm model(TinyLm());
        auto cfg = base_cfg;
        cfg.moc.two_level_recovery = two_level;
        auto injector = FaultInjector::At(34, 0);
        return RunFaultTolerantLmTraining(model, fx.train, fx.valid, cfg, injector)
            .plt;
    };
    EXPECT_LE(run(true), run(false));
    EXPECT_GT(run(false), 0.0);
}

// ---------- End-to-end classifier training ----------

TEST(ClassifierTrainer, AccuracyImprovesAcrossEpochsDespiteFaults) {
    ClassificationConfig data_cfg;
    data_cfg.num_classes = 4;
    data_cfg.vocab_size = 32;
    data_cfg.seq_len = 12;
    data_cfg.noise = 0.1;
    ClassificationDataset data(data_cfg);

    ClassifierConfig model_cfg;
    model_cfg.vocab = 32;
    model_cfg.max_seq = 12;
    model_cfg.num_classes = 4;
    model_cfg.hidden = 16;
    model_cfg.num_heads = 2;
    model_cfg.head_dim = 8;
    model_cfg.num_layers = 2;
    model_cfg.ffn_mult = 2;
    model_cfg.num_experts = 4;
    MoeClassifier model(model_cfg);

    ClassifierTrainerConfig cfg;
    cfg.moc.pec.k_snapshot = 2;
    cfg.moc.pec.k_persist = 1;
    cfg.moc.i_ckpt = 8;
    cfg.parallel = {.dp = 4, .ep = 4, .tp = 1, .pp = 1};
    cfg.gpus_per_node = 2;
    cfg.epochs = 6;
    cfg.steps_per_epoch = 16;
    cfg.batch = 16;
    cfg.test_examples = 64;
    cfg.adam.lr = 3e-3;

    const auto log =
        RunFaultTolerantClassifierTraining(model, data, cfg, {2, 4});
    EXPECT_EQ(log.recoveries, 2U);
    ASSERT_EQ(log.epoch_accuracy.size(), 6U);
    EXPECT_GT(log.epoch_accuracy.back(), log.epoch_accuracy.front());
}

}  // namespace
}  // namespace moc
