/**
 * @file
 * The elastic placement solver (core/placement.h): replica floors, move
 * minimization, the greedy load-balance bound, the seeded join/leave churn
 * soak, and the RankRemap that makes cluster recovery world-size
 * independent (a generation sealed by N ranks restoring onto N-1
 * survivors must yield byte-identical shards under remapped keys).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>

#include "core/cluster_recovery.h"
#include "core/placement.h"
#include "storage/manifest.h"
#include "storage/memory_store.h"
#include "util/crc32.h"

namespace moc {
namespace {

std::vector<ExpertSpec>
Experts(std::size_t n, Bytes bytes = 1 * kMiB) {
    std::vector<ExpertSpec> experts;
    for (std::size_t id = 0; id < n; ++id) {
        ExpertSpec e;
        e.id = id;
        e.bytes = bytes;
        e.load = 1.0 + static_cast<double>(id % 7);
        experts.push_back(e);
    }
    return experts;
}

std::vector<std::size_t>
Ranks(std::size_t n) {
    std::vector<std::size_t> ranks(n);
    for (std::size_t i = 0; i < n; ++i) {
        ranks[i] = i;
    }
    return ranks;
}

// ---------- solver invariants ----------

TEST(Placement, ColdStartPlacesEveryExpertWithRequestedReplicas) {
    PlacementProblem problem;
    problem.experts = Experts(16);
    problem.live_ranks = Ranks(4);
    problem.replicas = 2;
    const PlacementPlan plan = SolvePlacement(problem);

    EXPECT_EQ(plan.assignments.size(), 16U);
    for (const auto& [id, hosts] : plan.assignments) {
        EXPECT_EQ(hosts.size(), 2U) << "expert " << id;
        const std::set<std::size_t> distinct(hosts.begin(), hosts.end());
        EXPECT_EQ(distinct.size(), hosts.size()) << "duplicate replica host";
    }
    // A cold start moves nothing: every replica loads from the store anyway.
    EXPECT_EQ(plan.moved_bytes, 0U);
    const PlacementCheck check = VerifyPlacement(problem, plan);
    EXPECT_TRUE(check.ok) << check.error;
}

TEST(Placement, ReplicasClampToLiveRankCount) {
    PlacementProblem problem;
    problem.experts = Experts(4);
    problem.live_ranks = Ranks(2);
    problem.replicas = 5;  // only 2 distinct hosts exist
    const PlacementPlan plan = SolvePlacement(problem);
    for (const auto& [id, hosts] : plan.assignments) {
        EXPECT_EQ(hosts.size(), 2U) << "expert " << id;
    }
    EXPECT_TRUE(VerifyPlacement(problem, plan).ok);
}

TEST(Placement, EmptyRankSetThrows) {
    PlacementProblem problem;
    problem.experts = Experts(2);
    EXPECT_THROW(SolvePlacement(problem), std::invalid_argument);
}

TEST(Placement, SurvivingReplicasStayPut) {
    PlacementProblem problem;
    problem.experts = Experts(12);
    problem.live_ranks = Ranks(4);
    problem.replicas = 1;
    problem.policy = PlacementPolicy::kMinMove;
    const PlacementPlan before = SolvePlacement(problem);

    // Rank 3 dies: only its replicas may move.
    std::size_t on_dead_rank = 0;
    for (const auto& [id, hosts] : before.assignments) {
        on_dead_rank += hosts.front() == 3 ? 1 : 0;
    }
    problem.live_ranks = {0, 1, 2};
    problem.current = before.assignments;
    const PlacementPlan after = SolvePlacement(problem);

    EXPECT_EQ(after.moved_replicas, on_dead_rank);
    for (const auto& [id, hosts] : before.assignments) {
        if (hosts.front() != 3) {
            EXPECT_EQ(after.assignments.at(id).front(), hosts.front())
                << "surviving replica of expert " << id << " moved";
        }
    }
    EXPECT_TRUE(VerifyPlacement(problem, after).ok);
}

TEST(Placement, LoadAwareObeysGreedyBalanceBound) {
    PlacementProblem problem;
    problem.experts = Experts(64);
    problem.live_ranks = Ranks(8);
    problem.replicas = 2;
    problem.policy = PlacementPolicy::kLoadAware;
    const PlacementPlan plan = SolvePlacement(problem);
    const PlacementCheck check = VerifyPlacement(problem, plan);
    EXPECT_TRUE(check.ok) << check.error;
    EXPECT_LE(check.max_load,
              check.mean_load + check.max_contribution + 1e-9);
}

TEST(Placement, RoundRobinIsDeterministicAndIgnoresHistory) {
    PlacementProblem problem;
    problem.experts = Experts(10);
    problem.live_ranks = Ranks(3);
    problem.policy = PlacementPolicy::kRoundRobin;
    const PlacementPlan a = SolvePlacement(problem);
    problem.current = a.assignments;  // history must not change the answer
    const PlacementPlan b = SolvePlacement(problem);
    EXPECT_EQ(a.assignments, b.assignments);
    EXPECT_TRUE(VerifyPlacement(problem, b).ok);
}

// ---------- seeded churn soak ----------

TEST(Placement, ChurnSoakKeepsInvariantsAcross25Seeds) {
    // 25 seeds of join/leave churn: after every membership change the
    // re-solved plan must keep >= R replicas per expert on live ranks and
    // obey the balance bound; moved bytes never exceed the total placed.
    for (std::uint32_t seed = 0; seed < 25; ++seed) {
        std::mt19937 rng(seed);
        PlacementProblem problem;
        problem.experts = Experts(32, 2 * kMiB);
        problem.replicas = 2;
        std::set<std::size_t> live = {0, 1, 2, 3, 4, 5};
        problem.live_ranks = {live.begin(), live.end()};
        PlacementPlan plan = SolvePlacement(problem);
        ASSERT_TRUE(VerifyPlacement(problem, plan).ok);

        for (int round = 0; round < 12; ++round) {
            // Leave (if > 2 remain) or join a fresh / returning rank.
            if (live.size() > 2 && rng() % 2 == 0) {
                auto it = live.begin();
                std::advance(it, rng() % live.size());
                live.erase(it);
            } else {
                live.insert(rng() % 12);
            }
            problem.live_ranks = {live.begin(), live.end()};
            problem.current = plan.assignments;
            plan = SolvePlacement(problem);

            const PlacementCheck check = VerifyPlacement(problem, plan);
            ASSERT_TRUE(check.ok)
                << "seed " << seed << " round " << round << ": "
                << check.error;
            // Bounded movement: at worst every replica is refilled once by
            // the greedy pass and moved once by the local search.
            ASSERT_LE(plan.moved_replicas, 2 * 32 * problem.replicas)
                << "seed " << seed << " round " << round;
        }
    }
}

// ---------- RankRemap ----------

TEST(RankRemap, ExactKeysWinOverPrefixRewrites) {
    RankRemap remap;
    remap.ranks[2] = 0;
    remap.keys["rank2/expert/7/w"] = "rank1/expert/7/w";
    EXPECT_EQ(remap.Apply("rank2/expert/7/w"), "rank1/expert/7/w");
    EXPECT_EQ(remap.Apply("rank2/dense/2"), "rank0/dense/2");
    EXPECT_EQ(remap.Apply("rank1/dense/1"), "rank1/dense/1");
    EXPECT_EQ(remap.Apply("meta/manifest"), "meta/manifest");
}

TEST(RankRemap, BuildRankRemapCoversEveryDeadRankDeterministically) {
    const RankRemap remap = BuildRankRemap(6, {0, 2, 5});
    EXPECT_EQ(remap.ranks.size(), 3U);  // ranks 1, 3, 4 died
    for (const std::size_t dead : {1U, 3U, 4U}) {
        const auto it = remap.ranks.find(dead);
        ASSERT_NE(it, remap.ranks.end());
        EXPECT_TRUE(it->second == 0 || it->second == 2 || it->second == 5);
    }
    EXPECT_EQ(remap.ranks.count(0), 0U);  // survivors map to themselves
    // Deterministic: same inputs, same remap.
    const RankRemap again = BuildRankRemap(6, {5, 0, 2});
    EXPECT_EQ(remap.ranks, again.ranks);
}

TEST(RankRemap, AddExpertMovesTracksPrimaryOwnerChanges) {
    std::map<std::size_t, std::vector<std::size_t>> before;
    before[0] = {1};
    before[1] = {2};
    std::map<std::size_t, std::vector<std::size_t>> after;
    after[0] = {1};  // unchanged -> no override
    after[1] = {0};  // moved -> override
    RankRemap remap;
    AddExpertMoves(remap, before, after, [](std::size_t r, std::size_t e) {
        return "rank" + std::to_string(r) + "/expert/" + std::to_string(e) +
               "/w";
    });
    EXPECT_EQ(remap.keys.size(), 1U);
    EXPECT_EQ(remap.keys.at("rank2/expert/1/w"), "rank0/expert/1/w");
}

// ---------- world-size-independent restore ----------

/** Seals one generation of @p world ranks (one shard each) at @p iter. */
void
SealGeneration(CheckpointManifest& manifest, MemoryStore& store,
               std::size_t world, std::size_t iter) {
    for (std::size_t r = 0; r < world; ++r) {
        const std::string key = "rank" + std::to_string(r) + "/dense/" +
                                std::to_string(r);
        Blob blob(1024, static_cast<std::uint8_t>(0x10 + r + iter));
        const std::uint32_t crc = Crc32c(blob.data(), blob.size());
        store.Put(VersionedShardKey(key, iter), std::move(blob));
        manifest.RecordPersistVersion(key, iter, 1024, crc, true,
                                      std::nullopt);
    }
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, iter);
}

TEST(ClusterRecovery, RemappedRestoreIsEquivalentOnFewerSurvivors) {
    CheckpointManifest manifest;
    MemoryStore store;
    SealGeneration(manifest, store, 4, 1);

    // Baseline: the full 4-rank restore.
    const auto full = PlanClusterRestore(manifest);
    ASSERT_TRUE(full.has_value());
    const auto full_result = ExecuteClusterRestore(manifest, store, *full);
    ASSERT_EQ(full_result.shards_restored, 4U);

    // Rank 3 is gone: restore the same generation onto survivors {0,1,2}.
    const RankRemap remap = BuildRankRemap(4, {0, 1, 2});
    const auto remapped = PlanClusterRestore(manifest, std::nullopt, &remap);
    ASSERT_TRUE(remapped.has_value());
    EXPECT_EQ(remapped->generation, full->generation);
    const auto result = ExecuteClusterRestore(manifest, store, *remapped);
    EXPECT_TRUE(result.damaged.empty());
    EXPECT_EQ(result.shards_restored, 4U);

    // Equivalence: every source key's bytes survive, under the remapped
    // target key; survivors' keys are untouched.
    for (std::size_t r = 0; r < 3; ++r) {
        const std::string key =
            "rank" + std::to_string(r) + "/dense/" + std::to_string(r);
        EXPECT_EQ(result.blobs.at(key), full_result.blobs.at(key));
    }
    const std::string absorbed = remap.Apply("rank3/dense/3");
    EXPECT_NE(absorbed, "rank3/dense/3");
    EXPECT_EQ(result.blobs.at(absorbed), full_result.blobs.at("rank3/dense/3"));
}

TEST(ClusterRecovery, RemapCollisionReportsLoserAsMissing) {
    CheckpointManifest manifest;
    MemoryStore store;
    SealGeneration(manifest, store, 2, 1);

    // Force both source keys onto one target: the first restored wins and
    // the loser is reported, never silently overwritten.
    RankRemap remap;
    remap.keys["rank1/dense/1"] = "rank0/dense/0";
    const auto plan = PlanClusterRestore(manifest, std::nullopt, &remap);
    ASSERT_TRUE(plan.has_value());
    EXPECT_EQ(plan->missing.size(), 1U);
    const auto result = ExecuteClusterRestore(manifest, store, *plan);
    EXPECT_EQ(result.shards_restored, 1U);
}

}  // namespace
}  // namespace moc
