/**
 * @file
 * Unit tests for fault-trace parsing/formatting and the recovery-cost
 * estimator.
 */

#include <gtest/gtest.h>

#include "core/recovery_cost.h"
#include "faults/trace.h"

namespace moc {
namespace {

TEST(FaultTrace, ParsesEventsAndComments) {
    const std::string text =
        "# scenario: midpoint fault then double failure\n"
        "512 0\n"
        "\n"
        "1500 0,1   # correlated\n";
    auto injector = ParseFaultTrace(text);
    ASSERT_EQ(injector.events().size(), 2U);
    EXPECT_EQ(injector.events()[0].iteration, 512U);
    EXPECT_EQ(injector.events()[0].nodes, (std::vector<NodeId>{0}));
    EXPECT_EQ(injector.events()[1].iteration, 1500U);
    EXPECT_EQ(injector.events()[1].nodes, (std::vector<NodeId>{0, 1}));
}

TEST(FaultTrace, SortsOutOfOrderEvents) {
    auto injector = ParseFaultTrace("30 1\n10 0\n20 2\n");
    ASSERT_EQ(injector.events().size(), 3U);
    EXPECT_EQ(injector.events()[0].iteration, 10U);
    EXPECT_EQ(injector.events()[2].iteration, 30U);
}

TEST(FaultTrace, RejectsMalformedLines) {
    EXPECT_THROW(ParseFaultTrace("notanumber 0\n"), std::invalid_argument);
    EXPECT_THROW(ParseFaultTrace("12\n"), std::invalid_argument);
    EXPECT_THROW(ParseFaultTrace("12 x\n"), std::invalid_argument);
    EXPECT_THROW(ParseFaultTrace("12 0,,1\n"), std::invalid_argument);
}

TEST(FaultTrace, RoundTripsThroughFormat) {
    const std::string text = "10 0\n20 1,3\n";
    auto injector = ParseFaultTrace(text);
    EXPECT_EQ(FormatFaultTrace(injector), text);
    auto again = ParseFaultTrace(FormatFaultTrace(injector));
    EXPECT_EQ(again.events().size(), injector.events().size());
}

TEST(FaultTrace, LoadRejectsMissingFile) {
    EXPECT_THROW(LoadFaultTrace("/nonexistent/trace.txt"), std::invalid_argument);
}

// ---------- Recovery cost ----------

TEST(RecoveryCost, BreakdownSumsToTotal) {
    RecoveryPlan plan;
    plan.bytes_from_memory = 10'000'000'000ULL;  // 10 GB
    plan.bytes_from_storage = 2'000'000'000ULL;  // 2 GB
    plan.decisions.resize(100);
    RecoveryCostModel model;
    model.memory_read_bandwidth = 10e9;
    model.storage_read_bandwidth = 1e9;
    model.fixed_restart = 60.0;
    model.per_key_latency = 1e-3;
    const auto est = EstimateRecoveryCost(plan, model);
    EXPECT_DOUBLE_EQ(est.fixed, 60.0);
    EXPECT_DOUBLE_EQ(est.memory_read, 1.0);
    EXPECT_DOUBLE_EQ(est.storage_read, 2.0);
    EXPECT_DOUBLE_EQ(est.total, 60.0 + 1.0 + 2.0 + 0.1);
}

TEST(RecoveryCost, TwoLevelReadIsCheaper) {
    // Moving bytes from the storage path to the memory path reduces the
    // estimate — the quantitative version of the paper's recovery claim.
    RecoveryCostModel model;
    RecoveryPlan flat;
    flat.bytes_from_storage = 20'000'000'000ULL;
    RecoveryPlan two_level;
    two_level.bytes_from_memory = 15'000'000'000ULL;
    two_level.bytes_from_storage = 5'000'000'000ULL;
    EXPECT_LT(EstimateRecoveryCost(two_level, model).total,
              EstimateRecoveryCost(flat, model).total);
}

TEST(RecoveryCost, RejectsBadModel) {
    RecoveryPlan plan;
    RecoveryCostModel model;
    model.storage_read_bandwidth = 0.0;
    EXPECT_THROW(EstimateRecoveryCost(plan, model), std::invalid_argument);
}

}  // namespace
}  // namespace moc
