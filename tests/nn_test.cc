/**
 * @file
 * Unit tests for the nn module: per-layer gradient checks against finite
 * differences, MoE routing semantics (top-k, capacity, noise), Adam
 * behaviour, and training sanity for both model types.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <numeric>

#include "data/corpus.h"
#include "nn/adam.h"
#include "nn/attention.h"
#include "nn/classifier.h"
#include "nn/embedding.h"
#include "nn/eval.h"
#include "nn/ffn.h"
#include "nn/linear.h"
#include "nn/model.h"
#include "nn/moe_layer.h"

namespace moc {
namespace {

/** Scalar loss L = sum(output * dy) for gradient checking. */
template <typename Layer>
double
ProbeLoss(Layer& layer, const Tensor& x, const Tensor& dy) {
    Tensor y = layer.Forward(x);
    double loss = 0.0;
    for (std::size_t i = 0; i < y.size(); ++i) {
        loss += static_cast<double>(y[i]) * dy[i];
    }
    return loss;
}

// ---------- Linear ----------

TEST(Linear, ForwardMatchesManualCompute) {
    Rng rng(1);
    Linear lin("t", 3, 2, rng, 0.5F);
    auto x = Tensor::FromValues(1, 3, {1, 2, 3});
    auto y = lin.Forward(x);
    const auto& w = lin.weight().value();
    for (std::size_t j = 0; j < 2; ++j) {
        double acc = lin.bias().value()[j];
        for (std::size_t i = 0; i < 3; ++i) {
            acc += static_cast<double>(x[i]) * w.At(i, j);
        }
        EXPECT_NEAR(y[j], acc, 1e-5);
    }
}

TEST(Linear, GradientCheckInputsAndWeights) {
    Rng rng(2);
    Linear lin("t", 4, 3, rng, 0.5F);
    auto x = Tensor::Randn({2, 4}, rng, 1.0F);
    auto dy = Tensor::Randn({2, 3}, rng, 1.0F);

    lin.weight().ZeroGrad();
    lin.bias().ZeroGrad();
    lin.Forward(x);
    Tensor dx = lin.Backward(dy);

    const float eps = 1e-2F;
    // Input gradient.
    for (std::size_t i = 0; i < x.size(); ++i) {
        Tensor xp = x;
        Tensor xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        const double num = (ProbeLoss(lin, xp, dy) - ProbeLoss(lin, xm, dy)) / (2 * eps);
        EXPECT_NEAR(dx[i], num, 5e-3);
    }
    // Weight gradient (spot check a few entries).
    for (std::size_t i : {0UL, 5UL, 11UL}) {
        const float orig = lin.weight().value()[i];
        lin.weight().value()[i] = orig + eps;
        const double lp = ProbeLoss(lin, x, dy);
        lin.weight().value()[i] = orig - eps;
        const double lm = ProbeLoss(lin, x, dy);
        lin.weight().value()[i] = orig;
        EXPECT_NEAR(lin.weight().grad()[i], (lp - lm) / (2 * eps), 5e-3);
    }
}

// ---------- Embedding ----------

TEST(Embedding, GatherAndScatter) {
    Rng rng(3);
    Embedding emb("e", 10, 4, rng, 1.0F);
    std::vector<TokenId> tokens{3, 3, 7};
    auto y = emb.Forward(tokens);
    EXPECT_EQ(y.dim(0), 3U);
    for (std::size_t d = 0; d < 4; ++d) {
        EXPECT_EQ(y.At(0, d), emb.table().value().At(3, d));
        EXPECT_EQ(y.At(0, d), y.At(1, d));
    }
    Tensor dy({3, 4});
    dy.Fill(1.0F);
    emb.Backward(dy);
    // Token 3 appears twice -> its gradient rows accumulate to 2.
    EXPECT_EQ(emb.table().grad().At(3, 0), 2.0F);
    EXPECT_EQ(emb.table().grad().At(7, 0), 1.0F);
    EXPECT_EQ(emb.table().grad().At(0, 0), 0.0F);
}

TEST(Embedding, RejectsOutOfRangeToken) {
    Rng rng(3);
    Embedding emb("e", 10, 4, rng, 1.0F);
    std::vector<TokenId> tokens{11};
    EXPECT_THROW(emb.Forward(tokens), std::invalid_argument);
}

// ---------- FFN ----------

TEST(Ffn, GradientCheck) {
    Rng rng(4);
    Ffn ffn("f", 4, 8, rng, 0.5F);
    auto x = Tensor::Randn({3, 4}, rng, 1.0F);
    auto dy = Tensor::Randn({3, 4}, rng, 1.0F);
    ffn.Forward(x);
    Tensor dx = ffn.Backward(dy);
    const float eps = 1e-2F;
    for (std::size_t i = 0; i < x.size(); ++i) {
        Tensor xp = x;
        Tensor xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        const double num = (ProbeLoss(ffn, xp, dy) - ProbeLoss(ffn, xm, dy)) / (2 * eps);
        EXPECT_NEAR(dx[i], num, 1e-2);
    }
}

// ---------- Attention ----------

TEST(Attention, CausalMaskBlocksFuture) {
    Rng rng(5);
    MultiHeadAttention attn("a", 8, 2, 4, /*causal=*/true, rng, 0.2F);
    // Two sequences where only the last token differs: causal attention
    // must produce identical outputs at all earlier positions.
    auto x1 = Tensor::Randn({4, 8}, rng, 1.0F);
    Tensor x2 = x1;
    for (std::size_t d = 0; d < 8; ++d) {
        x2.At(3, d) += 1.0F;
    }
    auto y1 = attn.Forward(x1, 1, 4);
    auto y2 = attn.Forward(x2, 1, 4);
    for (std::size_t s = 0; s < 3; ++s) {
        for (std::size_t d = 0; d < 8; ++d) {
            EXPECT_NEAR(y1.At(s, d), y2.At(s, d), 1e-5F);
        }
    }
}

TEST(Attention, GradientCheck) {
    Rng rng(6);
    MultiHeadAttention attn("a", 6, 2, 3, /*causal=*/true, rng, 0.3F);
    auto x = Tensor::Randn({3, 6}, rng, 1.0F);
    auto dy = Tensor::Randn({3, 6}, rng, 1.0F);
    attn.Forward(x, 1, 3);
    Tensor dx = attn.Backward(dy);
    auto loss = [&](const Tensor& xx) {
        Tensor y = attn.Forward(xx, 1, 3);
        double l = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i) {
            l += static_cast<double>(y[i]) * dy[i];
        }
        return l;
    };
    const float eps = 1e-2F;
    for (std::size_t i = 0; i < x.size(); ++i) {
        Tensor xp = x;
        Tensor xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        EXPECT_NEAR(dx[i], (loss(xp) - loss(xm)) / (2 * eps), 2e-2);
    }
}

TEST(Attention, BatchIndependence) {
    Rng rng(7);
    MultiHeadAttention attn("a", 8, 2, 4, /*causal=*/true, rng, 0.2F);
    auto a = Tensor::Randn({3, 8}, rng, 1.0F);
    auto b = Tensor::Randn({3, 8}, rng, 1.0F);
    // Concatenate as a batch of 2.
    Tensor both({6, 8});
    std::copy_n(a.data(), a.size(), both.data());
    std::copy_n(b.data(), b.size(), both.data() + a.size());
    auto ya = attn.Forward(a, 1, 3);
    auto yboth = attn.Forward(both, 2, 3);
    for (std::size_t i = 0; i < ya.size(); ++i) {
        EXPECT_NEAR(ya[i], yboth[i], 1e-5F);
    }
}

// ---------- MoE layer ----------

MoeLayerConfig
TinyMoe(std::size_t experts = 4, std::size_t top_k = 1) {
    MoeLayerConfig cfg;
    cfg.hidden = 8;
    cfg.inter = 16;
    cfg.num_experts = experts;
    cfg.top_k = top_k;
    cfg.capacity_factor = 100.0;  // effectively no drops unless tested
    cfg.noise_std = 0.0F;
    cfg.aux_loss_coeff = 0.0F;
    return cfg;
}

TEST(MoeLayer, RoutesEveryTokenWithoutCapacityPressure) {
    Rng rng(8);
    MoeLayer moe("m", TinyMoe(), rng, 0.3F);
    auto x = Tensor::Randn({10, 8}, rng, 1.0F);
    Rng noise(1);
    moe.Forward(x, /*train=*/true, noise);
    const auto& stats = moe.last_stats();
    EXPECT_EQ(stats.assignments, 10U);
    EXPECT_EQ(stats.dropped, 0U);
    EXPECT_EQ(std::accumulate(stats.tokens_per_expert.begin(),
                              stats.tokens_per_expert.end(), 0UL),
              10UL);
}

TEST(MoeLayer, TopKMeansKAssignmentsPerToken) {
    Rng rng(9);
    MoeLayer moe("m", TinyMoe(4, 2), rng, 0.3F);
    auto x = Tensor::Randn({6, 8}, rng, 1.0F);
    Rng noise(1);
    moe.Forward(x, true, noise);
    EXPECT_EQ(moe.last_stats().assignments, 12U);
    EXPECT_EQ(std::accumulate(moe.last_stats().tokens_per_expert.begin(),
                              moe.last_stats().tokens_per_expert.end(), 0UL),
              12UL);
}

TEST(MoeLayer, CapacityDropsOverflow) {
    Rng rng(10);
    auto cfg = TinyMoe(2, 1);
    cfg.capacity_factor = 0.5;  // capacity = ceil(0.5 * T / 2) = T/4
    MoeLayer moe("m", cfg, rng, 0.3F);
    auto x = Tensor::Randn({16, 8}, rng, 1.0F);
    Rng noise(1);
    moe.Forward(x, true, noise);
    const auto& stats = moe.last_stats();
    EXPECT_GT(stats.dropped, 0U);
    for (auto count : stats.tokens_per_expert) {
        EXPECT_LE(count, 4U);  // ceil(0.5 * 16 * 1 / 2)
    }
}

TEST(MoeLayer, DroppedTokensPassThroughAsZero) {
    Rng rng(11);
    auto cfg = TinyMoe(2, 1);
    cfg.capacity_factor = 1e-9;  // capacity = 1 per expert
    MoeLayer moe("m", cfg, rng, 0.3F);
    auto x = Tensor::Randn({8, 8}, rng, 1.0F);
    Rng noise(1);
    Tensor y = moe.Forward(x, true, noise);
    // At most 2 tokens produce nonzero output rows (one per expert).
    std::size_t nonzero_rows = 0;
    for (std::size_t t = 0; t < 8; ++t) {
        double norm = 0.0;
        for (std::size_t d = 0; d < 8; ++d) {
            norm += std::fabs(y.At(t, d));
        }
        if (norm > 1e-9) {
            ++nonzero_rows;
        }
    }
    EXPECT_LE(nonzero_rows, 2U);
}

TEST(MoeLayer, GradientCheckTop1) {
    Rng rng(12);
    MoeLayer moe("m", TinyMoe(3, 1), rng, 0.4F);
    auto x = Tensor::Randn({5, 8}, rng, 1.0F);
    auto dy = Tensor::Randn({5, 8}, rng, 1.0F);
    Rng noise(1);
    moe.Forward(x, true, noise);
    Tensor dx = moe.Backward(dy);
    auto loss = [&](const Tensor& xx) {
        Rng n2(1);
        Tensor y = moe.Forward(xx, true, n2);
        double l = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i) {
            l += static_cast<double>(y[i]) * dy[i];
        }
        return l;
    };
    const float eps = 1e-2F;
    for (std::size_t i = 0; i < x.size(); ++i) {
        Tensor xp = x;
        Tensor xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        // Routing is piecewise-constant; skip points near a routing switch
        // (finite differences are invalid there).
        const double num = (loss(xp) - loss(xm)) / (2 * eps);
        if (std::fabs(num - dx[i]) > 0.2) {
            continue;
        }
        EXPECT_NEAR(dx[i], num, 3e-2);
    }
}

TEST(MoeLayer, GradientCheckTop2Renormalized) {
    Rng rng(13);
    MoeLayer moe("m", TinyMoe(4, 2), rng, 0.4F);
    auto x = Tensor::Randn({4, 8}, rng, 1.0F);
    auto dy = Tensor::Randn({4, 8}, rng, 1.0F);
    Rng noise(1);
    moe.Forward(x, true, noise);
    Tensor dx = moe.Backward(dy);
    auto loss = [&](const Tensor& xx) {
        Rng n2(1);
        Tensor y = moe.Forward(xx, true, n2);
        double l = 0.0;
        for (std::size_t i = 0; i < y.size(); ++i) {
            l += static_cast<double>(y[i]) * dy[i];
        }
        return l;
    };
    const float eps = 1e-2F;
    for (std::size_t i = 0; i < x.size(); ++i) {
        Tensor xp = x;
        Tensor xm = x;
        xp[i] += eps;
        xm[i] -= eps;
        const double num = (loss(xp) - loss(xm)) / (2 * eps);
        if (std::fabs(num - dx[i]) > 0.2) {
            continue;  // routing boundary
        }
        EXPECT_NEAR(dx[i], num, 3e-2);
    }
}

TEST(MoeLayer, NoiseOnlyInTraining) {
    Rng rng(14);
    auto cfg = TinyMoe(4, 1);
    cfg.noise_std = 0.5F;
    MoeLayer moe("m", cfg, rng, 0.3F);
    auto x = Tensor::Randn({6, 8}, rng, 1.0F);
    Rng n1(1);
    Rng n2(2);
    // Eval mode ignores the rng: identical outputs with different streams.
    auto y1 = moe.Forward(x, false, n1);
    auto y2 = moe.Forward(x, false, n2);
    EXPECT_TRUE(y1.AllClose(y2, 0.0F));
}

TEST(MoeLayer, AuxLossPenalizesImbalance) {
    Rng rng(15);
    auto cfg = TinyMoe(4, 1);
    cfg.aux_loss_coeff = 1.0F;
    MoeLayer moe("m", cfg, rng, 0.3F);
    auto x = Tensor::Randn({32, 8}, rng, 1.0F);
    Rng noise(1);
    moe.Forward(x, true, noise);
    // aux >= 1 with equality iff perfectly balanced.
    EXPECT_GE(moe.aux_loss(), 0.99);
}

TEST(MoeLayer, ExpertParamsCollectedPerExpert) {
    Rng rng(16);
    MoeLayer moe("m", TinyMoe(3, 1), rng, 0.3F);
    std::vector<Parameter*> params;
    moe.CollectExpertParams(1, params);
    EXPECT_EQ(params.size(), 4U);  // fc1 w/b + fc2 w/b
    EXPECT_THROW(moe.CollectExpertParams(3, params), std::invalid_argument);
}

// ---------- Adam ----------

TEST(Adam, ConvergesOnQuadratic) {
    // Minimize (w - 3)^2 via Adam.
    Parameter w("w", Tensor::FromVector({0.0F}));
    AdamConfig cfg;
    cfg.lr = 0.1;
    cfg.clip_norm = 0.0;
    Adam adam(cfg);
    for (int i = 0; i < 500; ++i) {
        w.grad()[0] = 2.0F * (w.value()[0] - 3.0F);
        adam.Step({&w});
    }
    EXPECT_NEAR(w.value()[0], 3.0F, 0.05F);
}

TEST(Adam, FrozenParametersDontMove) {
    Parameter w("w", Tensor::FromVector({1.0F}));
    w.set_frozen(true);
    Adam adam(AdamConfig{});
    w.grad()[0] = 5.0F;
    adam.Step({&w});
    EXPECT_EQ(w.value()[0], 1.0F);
    EXPECT_EQ(w.grad()[0], 0.0F);  // grads still cleared
}

TEST(Adam, GradClippingBoundsUpdate) {
    Parameter w("w", Tensor::FromVector({0.0F}));
    AdamConfig cfg;
    cfg.clip_norm = 1.0;
    Adam adam(cfg);
    w.grad()[0] = 1e6F;
    adam.Step({&w});
    // With clipping the step is the normal Adam step size (~lr).
    EXPECT_LT(std::fabs(w.value()[0]), 0.01F);
}

TEST(Adam, CosineScheduleDecays) {
    AdamConfig cfg;
    cfg.lr = 1.0;
    cfg.lr_min = 0.1;
    cfg.total_steps = 100;
    Adam adam(cfg);
    const double lr0 = adam.CurrentLr();
    Parameter w("w", Tensor::FromVector({0.0F}));
    for (int i = 0; i < 50; ++i) {
        adam.Step({&w});
    }
    const double lr50 = adam.CurrentLr();
    for (int i = 0; i < 60; ++i) {
        adam.Step({&w});
    }
    EXPECT_GT(lr0, lr50);
    EXPECT_NEAR(adam.CurrentLr(), 0.1, 1e-9);
}

TEST(Adam, WarmupRampsUp) {
    AdamConfig cfg;
    cfg.lr = 1.0;
    cfg.warmup_steps = 10;
    Adam adam(cfg);
    EXPECT_NEAR(adam.CurrentLr(), 0.1, 1e-9);
    Parameter w("w", Tensor::FromVector({0.0F}));
    for (int i = 0; i < 9; ++i) {
        adam.Step({&w});
    }
    EXPECT_NEAR(adam.CurrentLr(), 1.0, 1e-9);
}

// ---------- Models ----------

LmConfig
TinyLm() {
    LmConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.hidden = 16;
    cfg.num_heads = 2;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 4;
    cfg.top_k = 1;
    cfg.seed = 33;
    return cfg;
}

TEST(MoeTransformerLm, ParameterGroupsMatchInventory) {
    LmConfig cfg = TinyLm();
    MoeTransformerLm model(cfg);
    const ModelSpec spec = cfg.ToModelSpec();
    const ModelStateInventory inv(spec, StateBytes{});
    auto groups = model.ParameterGroups();
    // Every inventory key must be a model group with the same param count.
    std::map<std::string, std::size_t> group_sizes;
    for (auto& g : groups) {
        group_sizes[g.key] = g.TotalParams();
    }
    for (const auto& m : inv.modules()) {
        ASSERT_TRUE(group_sizes.count(m.key)) << "missing group " << m.key;
        EXPECT_EQ(group_sizes[m.key], m.params) << "size mismatch at " << m.key;
    }
}

TEST(MoeTransformerLm, TrainingReducesLoss) {
    CorpusConfig corpus_cfg;
    corpus_cfg.vocab_size = 32;
    corpus_cfg.seed = 3;
    ZipfMarkovCorpus corpus(corpus_cfg);
    LmBatchStream stream(corpus, 8, 12, 0);
    MoeTransformerLm model(TinyLm());
    AdamConfig adam_cfg;
    adam_cfg.lr = 3e-3;
    Adam adam(adam_cfg);
    const auto params = model.AllParameters();
    const double first = model.EvalLoss(stream.Get(1000));
    for (std::size_t i = 0; i < 60; ++i) {
        model.TrainBackward(stream.Get(i));
        adam.Step(params);
    }
    const double last = model.EvalLoss(stream.Get(1000));
    EXPECT_LT(last, first - 0.2);
}

TEST(MoeTransformerLm, ScoreContinuationPrefersLikely) {
    CorpusConfig corpus_cfg;
    corpus_cfg.vocab_size = 32;
    corpus_cfg.seed = 3;
    ZipfMarkovCorpus corpus(corpus_cfg);
    LmBatchStream stream(corpus, 8, 12, 0);
    MoeTransformerLm model(TinyLm());
    Adam adam(AdamConfig{.lr = 3e-3});
    const auto params = model.AllParameters();
    for (std::size_t i = 0; i < 120; ++i) {
        model.TrainBackward(stream.Get(i));
        adam.Step(params);
    }
    // A chain continuation should outscore a uniformly random one on average.
    ProbeSuiteConfig probe_cfg;
    probe_cfg.items_per_task = 40;
    probe_cfg.context_len = 8;
    probe_cfg.continuation_len = 3;
    const auto suite = BuildProbeSuite(corpus, probe_cfg);
    const double acc = EvalProbeTask(model, suite.front());  // Chain2 vs random
    EXPECT_GT(acc, 0.3);  // chance = 0.25
}

TEST(MoeClassifier, TrainingImprovesAccuracy) {
    ClassificationConfig data_cfg;
    data_cfg.num_classes = 4;
    data_cfg.vocab_size = 32;
    data_cfg.seq_len = 12;
    data_cfg.noise = 0.1;
    ClassificationDataset data(data_cfg);

    ClassifierConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.num_classes = 4;
    cfg.hidden = 16;
    cfg.num_heads = 2;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 4;
    MoeClassifier model(cfg);

    Adam adam(AdamConfig{.lr = 3e-3});
    const auto params = model.AllParameters();
    const auto test = data.GetBatch(1, 0, 64);
    const double before = model.EvalAccuracy(test);
    for (std::size_t i = 0; i < 80; ++i) {
        model.TrainBackward(data.GetBatch(0, i * 16, 16));
        adam.Step(params);
    }
    EXPECT_GT(model.EvalAccuracy(test), std::max(before, 0.3));
}

TEST(MoeClassifier, HasHeadGroup) {
    ClassifierConfig cfg;
    cfg.vocab = 16;
    cfg.max_seq = 8;
    cfg.hidden = 8;
    cfg.num_heads = 1;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.num_experts = 2;
    MoeClassifier model(cfg);
    bool has_head = false;
    for (auto& g : model.ParameterGroups()) {
        if (g.key == "head") {
            has_head = true;
        }
    }
    EXPECT_TRUE(has_head);
}

}  // namespace
}  // namespace moc
