/**
 * @file
 * Additional MocCheckpointSystem behaviours: rotation continuity across
 * recoveries, repeated faults, dense-model rejection, inventory for dense
 * models, and per-level byte accounting.
 */

#include <gtest/gtest.h>

#include "core/moc_system.h"
#include "dist/presets.h"
#include "nn/model.h"

namespace moc {
namespace {

LmConfig
TinyLm() {
    LmConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.hidden = 16;
    cfg.num_heads = 2;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 4;
    cfg.seed = 5;
    return cfg;
}

RankTopology
TwoNodeTopology() {
    return RankTopology({.dp = 4, .ep = 4, .tp = 1, .pp = 1}, 2);
}

TEST(MocSystemExtra, RotationAdvancesAcrossCheckpoints) {
    MoeTransformerLm model(TinyLm());
    const auto topo = TwoNodeTopology();
    MocSystemConfig cfg;
    cfg.pec.k_snapshot = 1;
    cfg.pec.k_persist = 1;
    cfg.i_ckpt = 2;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, model, topo, TinyLm().ToModelSpec(), extra);
    // After N checkpoints with K=1, every expert has a persist newer than 0.
    for (std::size_t c = 1; c <= 4; ++c) {
        extra.iteration = 2 * c;
        system.Checkpoint(2 * c, extra);
    }
    for (ExpertId e = 0; e < 4; ++e) {
        const auto v = system.manifest().Latest(
            StoreLevel::kPersist, "moe/0/expert/" + std::to_string(e) + "/w");
        ASSERT_TRUE(v.has_value());
        EXPECT_GT(v->iteration, 0U) << "expert " << e << " never re-persisted";
    }
    EXPECT_EQ(system.checkpoint_count(), 4U);
}

TEST(MocSystemExtra, RepeatedFaultsRecoverEachTime) {
    MoeTransformerLm model(TinyLm());
    const auto topo = TwoNodeTopology();
    MocSystemConfig cfg;
    cfg.pec.k_snapshot = 2;
    cfg.pec.k_persist = 1;
    cfg.i_ckpt = 4;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, model, topo, TinyLm().ToModelSpec(), extra);
    extra.iteration = 4;
    system.Checkpoint(4, extra);
    const auto first = system.RecoverFromFault({0});
    EXPECT_EQ(first.plan.restart_iteration, 4U);
    // Replay and checkpoint again; a second fault on the other node.
    extra.iteration = 8;
    system.Checkpoint(8, extra);
    const auto second = system.RecoverFromFault({1});
    EXPECT_EQ(second.plan.restart_iteration, 8U);
}

TEST(MocSystemExtra, SnapshotBytesCountNodeReplicas) {
    // With one EP group every expert snapshot lands on exactly one node;
    // the non-expert snapshot on one node: snapshot bytes ~= persist bytes
    // for full checkpointing in a single-group topology.
    MoeTransformerLm model(TinyLm());
    const auto topo = TwoNodeTopology();
    MocSystemConfig cfg;
    cfg.pec.k_snapshot = 4;
    cfg.pec.k_persist = 4;
    cfg.i_ckpt = 4;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, model, topo, TinyLm().ToModelSpec(), extra);
    const auto report = system.Checkpoint(4, extra);
    EXPECT_EQ(report.snapshot_bytes, report.persist_bytes);
    EXPECT_GT(report.persist_bytes, 0U);
}

TEST(MocSystemExtra, MultiGroupTopologyReplicatesSnapshots) {
    // dp=4, ep=2 -> 2 EP groups: each expert's snapshot exists on the owner
    // rank of BOTH groups; with 2 GPUs per node those owners are on distinct
    // nodes, so expert snapshot bytes double.
    LmConfig cfg = TinyLm();
    MoeTransformerLm model(cfg);
    RankTopology topo({.dp = 4, .ep = 2, .tp = 1, .pp = 1}, 2);
    MocSystemConfig sys_cfg;
    sys_cfg.pec.k_snapshot = 4;
    sys_cfg.pec.k_persist = 4;
    sys_cfg.i_ckpt = 4;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(sys_cfg, model, topo, cfg.ToModelSpec(), extra);
    const auto report = system.Checkpoint(4, extra);
    EXPECT_GT(report.snapshot_bytes, report.persist_bytes);
}

TEST(MocSystemExtra, DenseModelRejected) {
    LmConfig cfg = TinyLm();
    cfg.num_experts = 0;
    MoeTransformerLm model(cfg);
    const auto topo = TwoNodeTopology();
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    EXPECT_THROW(MocCheckpointSystem(MocSystemConfig{}, model, topo,
                                     cfg.ToModelSpec(), extra),
                 std::invalid_argument);
}

TEST(InventoryExtra, DenseModelHasNoExpertModules) {
    ModelSpec spec = Gpt125M8E();
    spec.num_experts = 0;
    const ModelStateInventory inv(spec, StateBytes{});
    EXPECT_TRUE(inv.ExpertModules().empty());
    EXPECT_EQ(inv.ExpertParams(), 0U);
    EXPECT_EQ(inv.NonExpertParams(), spec.TotalParams());
}

TEST(MocSystemExtra, CurrentKTracksDynamicEscalation) {
    MoeTransformerLm model(TinyLm());
    const auto topo = TwoNodeTopology();
    MocSystemConfig cfg;
    cfg.pec.k_snapshot = 1;
    cfg.pec.k_persist = 1;
    cfg.i_ckpt = 4;
    cfg.dynamic_k = true;
    cfg.two_level_recovery = false;
    cfg.plt_threshold = 1e-9;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, model, topo, TinyLm().ToModelSpec(), extra);
    EXPECT_EQ(system.current_k_snapshot(), 1U);
    // Route traffic so recovery yields nonzero PLT, then fault.
    std::vector<std::size_t> per_expert(4, 5);
    for (std::size_t m = 0; m < system.ledger().num_moe_layers(); ++m) {
        system.ledger().RecordRouting(m, per_expert, 20);
    }
    extra.iteration = 4;
    system.Checkpoint(4, extra);
    for (std::size_t m = 0; m < system.ledger().num_moe_layers(); ++m) {
        system.ledger().RecordRouting(m, per_expert, 20);
    }
    extra.iteration = 8;
    system.Checkpoint(8, extra);
    system.RecoverFromFault({0});
    EXPECT_GT(system.current_k_snapshot(), 1U);
}

}  // namespace
}  // namespace moc
