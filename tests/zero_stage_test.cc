/**
 * @file
 * Tests for ZeRO-stage generality in the shard planner (Section 4.4) and
 * the concurrent cluster checkpoint engine.
 */

#include <gtest/gtest.h>

#include "ckpt/cluster_engine.h"
#include "core/sharding.h"
#include "dist/presets.h"

namespace moc {
namespace {

struct Fixture {
    ModelSpec spec = Gpt350M16E();
    RankTopology topo;
    ModelStateInventory inv;

    explicit Fixture(const ClusterCase& c = Case3())
        : topo(c.parallel, c.GpusPerNode()), inv(spec, StateBytes{}) {}
};

ShardingOptions
WithZero(ZeroStage stage, bool sharded = false) {
    ShardingOptions opt;
    opt.zero = stage;
    opt.equal_expert = sharded;
    opt.equal_nonexpert = sharded;
    return opt;
}

TEST(ZeroStage, BytesConservedAcrossStages) {
    Fixture f;
    const Bytes expected = f.inv.TotalStateBytes();
    for (ZeroStage stage : {ZeroStage::kNone, ZeroStage::kZero2, ZeroStage::kZero3}) {
        for (bool sharded : {false, true}) {
            ShardingPlanner planner(f.inv, f.topo, WithZero(stage, sharded));
            EXPECT_EQ(planner.PlanFull().TotalBytes(), expected)
                << "stage " << static_cast<int>(stage) << " sharded " << sharded;
        }
    }
}

TEST(ZeroStage, NoZeroBaselinePutsEverythingOnHotRanks) {
    // Without ZeRO, the baseline plan concentrates non-expert weights AND
    // optimizer on rank 0: the worst bottleneck of all configurations.
    Fixture f;
    ShardingPlanner none(f.inv, f.topo, WithZero(ZeroStage::kNone));
    ShardingPlanner zero2(f.inv, f.topo, WithZero(ZeroStage::kZero2));
    const auto none_plan = none.PlanFull();
    const auto zero2_plan = zero2.PlanFull();
    EXPECT_GT(none_plan.BottleneckBytes(), zero2_plan.BottleneckBytes());
    // Some ranks carry nothing at all without ZeRO sharding.
    std::size_t idle = 0;
    for (RankId r = 0; r < f.topo.dp(); ++r) {
        if (none_plan.RankBytes(r) == 0) {
            ++idle;
        }
    }
    EXPECT_GT(idle, 0U);
}

TEST(ZeroStage, NoZeroShardingRecoversBalance) {
    // Section 4.4: without ZeRO, the equal-sharding strategies partition
    // parameters AND optimizer states; the bottleneck approaches total/dp.
    Fixture f;
    ShardingPlanner sharded(f.inv, f.topo, WithZero(ZeroStage::kNone, true));
    const auto plan = sharded.PlanFull();
    const double mean = static_cast<double>(plan.TotalBytes()) /
                        static_cast<double>(f.topo.dp());
    EXPECT_LT(static_cast<double>(plan.BottleneckBytes()), 1.4 * mean);
}

TEST(ZeroStage, Zero3AlwaysFullySharded) {
    // FSDP partitions everything at runtime; even the "baseline" checkpoint
    // is balanced.
    Fixture f;
    ShardingPlanner planner(f.inv, f.topo, WithZero(ZeroStage::kZero3));
    const auto plan = planner.PlanFull();
    const double mean = static_cast<double>(plan.TotalBytes()) /
                        static_cast<double>(f.topo.dp());
    EXPECT_LT(static_cast<double>(plan.BottleneckBytes()), 1.3 * mean);
    // No rank idles.
    for (RankId r = 0; r < f.topo.dp(); ++r) {
        EXPECT_GT(plan.RankBytes(r), 0U) << "rank " << r;
    }
}

TEST(ZeroStage, OrderingNoneWorstZero3Best) {
    Fixture f;
    const Bytes none =
        ShardingPlanner(f.inv, f.topo, WithZero(ZeroStage::kNone)).PlanFull()
            .BottleneckBytes();
    const Bytes zero2 =
        ShardingPlanner(f.inv, f.topo, WithZero(ZeroStage::kZero2)).PlanFull()
            .BottleneckBytes();
    const Bytes zero3 =
        ShardingPlanner(f.inv, f.topo, WithZero(ZeroStage::kZero3)).PlanFull()
            .BottleneckBytes();
    EXPECT_GT(none, zero2);
    EXPECT_GT(zero2, zero3);
}

// ---------- ClusterCheckpointEngine ----------

AgentCostModel
FastCluster() {
    AgentCostModel cost;
    cost.snapshot_bandwidth = 50e6;  // on the synthetic (1/1024) byte scale
    cost.persist_bandwidth = 50e6;
    cost.time_scale = 1.0;
    return cost;
}

TEST(ClusterEngine, ExecutesPlanAndPersistsEveryRankPerShard) {
    StorageIoModel io;
    io.latency = 0.0;
    io.write_bandwidth = 50e6;
    PersistentStore store(io);
    ClusterCheckpointEngine engine(store, 4, FastCluster());

    ShardPlan plan(4);
    for (RankId r = 0; r < 4; ++r) {
        plan.Add(r, {"unit/" + std::to_string(r), 512 * kKiB, false});
    }
    const auto stats = engine.Execute(plan, SyntheticBlobProvider(), 1);
    EXPECT_EQ(stats.keys_persisted, 4U);
    EXPECT_GT(stats.bytes_persisted, 0U);
    EXPECT_GE(stats.total_makespan, stats.snapshot_makespan);
    EXPECT_TRUE(stats.sealed);
    EXPECT_EQ(stats.generation, 1U);
    // Every shard sits under its own versioned key; nothing latest-wins.
    for (RankId r = 0; r < 4; ++r) {
        const std::string key =
            "rank" + std::to_string(r) + "/unit/" + std::to_string(r);
        EXPECT_TRUE(store.Contains(VersionedShardKey(key, 1))) << key;
        EXPECT_FALSE(store.Contains("rank" + std::to_string(r) + "/ckpt"));
    }
    EXPECT_EQ(engine.manifest().LatestEligibleGeneration(), 1U);
    // The manifest JSON itself lands in the store for offline audits.
    EXPECT_TRUE(store.Contains("meta/manifest"));
}

TEST(ClusterEngine, MonolithicModeKeepsLatestWinsBlobs) {
    PersistentStore store;
    ClusterEngineOptions opt;
    opt.per_shard = false;
    ClusterCheckpointEngine engine(store, 2, FastCluster(), opt);

    ShardPlan plan(2);
    for (RankId r = 0; r < 2; ++r) {
        plan.Add(r, {"unit/" + std::to_string(r), 256 * kKiB, false});
    }
    const auto stats = engine.Execute(plan, SyntheticBlobProvider(), 1);
    EXPECT_EQ(stats.keys_persisted, 2U);  // one blob per rank
    EXPECT_FALSE(stats.sealed);           // no commit protocol in this mode
    for (RankId r = 0; r < 2; ++r) {
        EXPECT_TRUE(store.Contains("rank" + std::to_string(r) + "/ckpt"));
    }
}

TEST(ClusterEngine, MakespanSetByBottleneckRank) {
    StorageIoModel io;
    io.latency = 0.0;
    io.write_bandwidth = 500e6;
    PersistentStore store(io);
    // Slow snapshot bandwidth so the modeled per-rank sleeps (~160ms for the
    // bottleneck vs ~20ms for the rest) dwarf scheduler noise; sanitizer CI
    // runs this test and sub-millisecond sleeps get reordered by preemption.
    AgentCostModel cost = FastCluster();
    cost.snapshot_bandwidth = 100e3;
    ClusterCheckpointEngine engine(store, 4, cost);

    // Rank 2 carries 8x the payload of the others.
    ShardPlan plan(4);
    for (RankId r = 0; r < 4; ++r) {
        plan.Add(r, {"unit", r == 2 ? Bytes{16} * kMiB : Bytes{2} * kMiB, false});
    }
    const auto stats = engine.Execute(plan, SyntheticBlobProvider(), 1);
    // The cluster snapshot completes no sooner than the slowest rank, and
    // that rank is rank 2.
    const auto slowest = std::max_element(stats.per_rank_snapshot.begin(),
                                          stats.per_rank_snapshot.end());
    EXPECT_EQ(slowest - stats.per_rank_snapshot.begin(), 2);
    EXPECT_GE(stats.snapshot_makespan + 1e-3, *slowest);
    // Concurrency: the makespan is far below the sum of per-rank times.
    double sum = 0.0;
    for (auto t : stats.per_rank_snapshot) {
        sum += t;
    }
    EXPECT_LT(stats.snapshot_makespan, 0.8 * sum);
}

TEST(ClusterEngine, RejectsMismatchedPlan) {
    PersistentStore store;
    ClusterCheckpointEngine engine(store, 2, FastCluster());
    ShardPlan plan(3);
    EXPECT_THROW(engine.Execute(plan, SyntheticBlobProvider(), 1),
                 std::invalid_argument);
}

}  // namespace
}  // namespace moc
