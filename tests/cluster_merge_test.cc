/**
 * @file
 * Unit tests for the merged cluster flight recorder (obs/merge.h):
 * tolerant parsing of torn per-role journals, the clock-rebase math that
 * puts every role on the coordinator timeline, the merged JSONL/Chrome
 * trace emitters, and a golden cross-process critical path over two
 * rebased role traces.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/critical_path.h"
#include "obs/journal.h"
#include "obs/merge.h"
#include "util/json.h"

namespace moc::obs {
namespace {

TEST(ClusterMerge, RoleFromFilenameTakesBasenameToFirstDot) {
    EXPECT_EQ(RoleFromFilename("out/rank3.events.jsonl"), "rank3");
    EXPECT_EQ(RoleFromFilename("/a/b/coordinator.metrics.json"),
              "coordinator");
    EXPECT_EQ(RoleFromFilename("noext"), "noext");
    EXPECT_EQ(RoleFromFilename("dir.with.dots/rank0.trace.json"), "rank0");
}

TEST(ClusterMerge, TolerantParseSkipsTornTailAndCounts) {
    // A SIGKILL'd rank's journal: good meta, one good event, then a line
    // torn mid-write and one non-JSON stderr stray.
    const std::string text =
        "{\"type\": \"meta\", \"role\": \"rank1\", \"clock_offset_ns\": "
        "500, \"clock_epoch_ns\": 1000, \"events\": 2}\n"
        "{\"type\": \"cluster_seal\", \"seq\": 4, \"t\": 1.5, \"iter\": 3, "
        "\"scope\": -1, \"gen\": 3, \"bytes\": 64, \"plt\": -1, \"k\": 0, "
        "\"detail\": \"sealed\"}\n"
        "{\"type\": \"straggler\", \"seq\": 5, \"t\": 1.6, \"ite\n"
        "not json at all\n";
    const RoleEvents parsed = ParseRoleEventsJsonl(text, "fallback");
    EXPECT_EQ(parsed.role, "rank1");  // meta wins over the fallback
    EXPECT_TRUE(parsed.has_meta);
    EXPECT_EQ(parsed.clock_offset_ns, 500);
    EXPECT_EQ(parsed.clock_epoch_ns, 1000);
    ASSERT_EQ(parsed.events.size(), 1u);
    EXPECT_EQ(parsed.events[0].kind, EventKind::kClusterSeal);
    EXPECT_EQ(parsed.skipped_lines, 2u);
}

TEST(ClusterMerge, FallbackRoleUsedWithoutMeta) {
    const RoleEvents parsed = ParseRoleEventsJsonl(
        "{\"type\": \"cluster_seal\", \"seq\": 0, \"t\": 0.5}\n", "rank7");
    EXPECT_EQ(parsed.role, "rank7");
    EXPECT_FALSE(parsed.has_meta);
    ASSERT_EQ(parsed.events.size(), 1u);
}

/** A role journal with one event at @p wall_s on the role's own clock. */
RoleEvents
OneEventRole(const std::string& role, std::int64_t epoch_ns,
             std::int64_t offset_ns, double wall_s) {
    RoleEvents r;
    r.role = role;
    r.clock_epoch_ns = epoch_ns;
    r.clock_offset_ns = offset_ns;
    JournalEvent e;
    e.kind = EventKind::kClusterSeal;
    e.wall_s = wall_s;
    r.events.push_back(e);
    return r;
}

TEST(ClusterMerge, RebaseOrdersEventsAcrossSkewedClocks) {
    // Role A: epoch 1 s, offset 0, event at t=1.5 -> abs 2.5 s.
    // Role B: epoch 2 s, offset +0.25 s, event at t=0.1 -> abs 2.35 s.
    // On their raw wall_s stamps A's event looks *earlier* (1.5 vs 0.1
    // would sort B first anyway) — use stamps where naive order flips:
    // B's raw t (0.1) is smaller, but its rebased stamp lands first too;
    // flip A to prove rebasing, not raw order, decides.
    const auto a = OneEventRole("a", 1'000'000'000, 0, 1.5);
    const auto b = OneEventRole("b", 2'000'000'000, 250'000'000, 0.1);
    const MergedEvents merged = MergeRoleEvents({a, b});
    ASSERT_EQ(merged.events.size(), 2u);
    EXPECT_EQ(merged.roles, 2u);
    EXPECT_EQ(merged.events[0].event.role, "b");
    EXPECT_EQ(merged.events[0].abs_ns, 2'350'000'000);
    EXPECT_EQ(merged.events[1].event.role, "a");
    EXPECT_EQ(merged.events[1].abs_ns, 2'500'000'000);
    EXPECT_EQ(merged.base_ns, 2'350'000'000);
}

TEST(ClusterMerge, ClusterJsonlRoundTripsThroughTolerantParser) {
    const auto a = OneEventRole("a", 1'000'000'000, 0, 1.5);
    const auto b = OneEventRole("b", 2'000'000'000, 250'000'000, 0.1);
    const std::string jsonl = ClusterEventsJsonl(MergeRoleEvents({a, b}));

    // Line format matches EventsJsonl plus a role on every event, so the
    // tolerant parser reads it back with zero skips.
    const RoleEvents back = ParseRoleEventsJsonl(jsonl, "cluster");
    EXPECT_EQ(back.skipped_lines, 0u);
    ASSERT_EQ(back.events.size(), 2u);
    EXPECT_EQ(back.events[0].role, "b");
    EXPECT_DOUBLE_EQ(back.events[0].wall_s, 0.0);  // re-zeroed to base
    EXPECT_EQ(back.events[1].role, "a");
    EXPECT_NEAR(back.events[1].wall_s, 0.15, 1e-9);

    // The meta line carries the merged-schema header.
    const json::Value meta = json::Parse(jsonl.substr(0, jsonl.find('\n')));
    EXPECT_EQ(meta.At("schema").AsString(), "moc-cluster/1");
    EXPECT_EQ(static_cast<int>(meta.At("roles").AsNumber()), 2);
}

/** One persist span for @p rank in generation 1 on a role's local clock. */
FlightSpan
PersistSpan(std::int32_t rank, std::uint64_t start_ns,
            std::uint64_t duration_ns) {
    FlightSpan s;
    s.name = "gauntlet.persist";
    s.category = "cluster";
    s.phase = "persist";
    s.start_ns = start_ns;
    s.duration_ns = duration_ns;
    s.generation = 1;
    s.iteration = 1;
    s.rank = rank;
    return s;
}

TEST(ClusterMerge, GoldenCrossProcessCriticalPath) {
    // Two role traces on different clocks. Rank 0's clock reads ~10 s,
    // rank 1's reads ~90 s; without rebasing, rank 1's span would dwarf
    // the timeline. After rebasing both onto the coordinator clock the
    // spans overlap, and the critical path lands on rank 1 — whose
    // persist genuinely ran 400 ms against rank 0's 100 ms.
    RoleSpans rank0;
    rank0.role = "rank0";
    rank0.clock_offset_ns = 2'000'000'000;  // coordinator - rank0 = +2 s
    rank0.spans = {PersistSpan(0, 10'000'000'000, 100'000'000)};
    RoleSpans rank1;
    rank1.role = "rank1";
    rank1.clock_offset_ns = -78'000'000'000;  // coordinator - rank1 = -78 s
    rank1.spans = {PersistSpan(1, 90'000'000'000, 400'000'000)};

    const std::vector<FlightSpan> merged = MergeRoleSpans({rank0, rank1});
    ASSERT_EQ(merged.size(), 2u);
    EXPECT_EQ(merged[0].start_ns, 12'000'000'000u);
    EXPECT_EQ(merged[1].start_ns, 12'000'000'000u);

    const FlightAnalysis analysis = AnalyzeFlight(merged);
    ASSERT_EQ(analysis.generations.size(), 1u);
    const GenerationProfile& gen = analysis.generations[0];
    EXPECT_EQ(gen.straggler, 1);
    EXPECT_EQ(gen.wall_ns, 400'000'000u);
    ASSERT_FALSE(gen.critical_path.empty());
    EXPECT_EQ(gen.critical_path.back().rank, 1);
    EXPECT_EQ(gen.critical_path.back().phase, "persist");
}

TEST(ClusterMerge, MergedChromeTraceRebasesAndLabelsRoles) {
    RoleSpans rank0;
    rank0.role = "rank0";
    rank0.clock_offset_ns = 1'000'000;
    rank0.spans = {PersistSpan(0, 5'000'000, 2'000'000)};
    RoleSpans rank1;
    rank1.role = "rank1";
    rank1.clock_offset_ns = -1'000'000;
    rank1.spans = {PersistSpan(1, 9'000'000, 3'000'000)};

    const std::string trace = MergedChromeTraceJson({rank0, rank1});
    const json::Value doc = json::Parse(trace);
    EXPECT_EQ(doc.At("metadata").At("schema").AsString(), "moc-cluster/1");
    EXPECT_EQ(static_cast<int>(doc.At("metadata").At("roles").AsNumber()),
              2);
    // Re-zeroed: the earliest rebased span (rank0 at 6 ms) starts at 0.
    EXPECT_EQ(static_cast<std::int64_t>(
                  doc.At("metadata").At("base_ns").AsNumber()),
              6'000'000);

    // The spans parse back with context intact and rebased, re-zeroed
    // starts: rank1's span at (9 - 1) - 6 = 2 ms.
    const std::vector<FlightSpan> spans = ParseChromeTraceJson(trace);
    ASSERT_EQ(spans.size(), 2u);
    EXPECT_EQ(spans[0].rank, 0);
    EXPECT_EQ(spans[0].start_ns, 0u);
    EXPECT_EQ(spans[1].rank, 1);
    EXPECT_EQ(spans[1].start_ns, 2'000'000u);
    EXPECT_EQ(spans[1].generation, 1u);
}

TEST(ClusterMerge, ParseRoleTraceThrowsOnTornTrace) {
    EXPECT_THROW(ParseRoleTrace("{\"traceEvents\": [", "rank0"),
                 std::invalid_argument);
}

TEST(ClusterMerge, ClusterMetricsSkipsTornDumps) {
    std::size_t skipped = 0;
    const std::string merged = ClusterMetricsJson(
        {{"coordinator", "{\"counters\": {\"a\": 1}}"},
         {"rank0", "{\"counters\": {\"b\": "}},  // torn mid-write
        &skipped);
    EXPECT_EQ(skipped, 1u);
    const json::Value doc = json::Parse(merged);
    EXPECT_EQ(doc.At("schema").AsString(), "moc-cluster/1");
    EXPECT_NE(doc.At("roles").Find("coordinator"), nullptr);
    EXPECT_EQ(doc.At("roles").Find("rank0"), nullptr);
}

}  // namespace
}  // namespace moc::obs
