/**
 * @file
 * End-to-end tests for `moc_cli report`: a small fault-tolerant training
 * run exports metrics + events, the report ingests them, and the
 * machine-readable section must agree with src/core/overhead.h evaluated
 * at the same operating point (the paper's Eq. 11-13). Also covers the
 * malformed-input and fault-free paths.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "cli_lib.h"
#include "core/overhead.h"
#include "faults/trainer.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "util/json.h"

namespace moc {
namespace {

constexpr const char* kMachineMarker = "--- machine-readable (moc-report/1) ---";

/** Runs `moc_cli report <args...>`, returning (exit code, stdout). */
std::pair<int, std::string>
Report(const std::vector<std::string>& args) {
    std::vector<std::string> tokens = {"report"};
    tokens.insert(tokens.end(), args.begin(), args.end());
    std::ostringstream out;
    std::ostringstream err;
    const int code = cli::Main(tokens, out, err);
    return {code, out.str() + err.str()};
}

/** The JSON object following the machine-readable marker. */
json::Value
MachineSection(const std::string& output) {
    const std::size_t marker = output.find(kMachineMarker);
    EXPECT_NE(marker, std::string::npos);
    return json::Parse(output.substr(marker + std::string(kMachineMarker).size()));
}

struct TempDir {
    std::filesystem::path path;
    TempDir() : path(std::filesystem::temp_directory_path() / "moc_report_test") {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~TempDir() { std::filesystem::remove_all(path); }
    std::string File(const char* name) const { return (path / name).string(); }
};

/** A small LM training run with one injected fault, artifacts exported. */
void
RunFaultyTraining(const TempDir& dir) {
    obs::MetricsRegistry::Instance().ResetAll();
    obs::EventJournal::Instance().Clear();

    LmConfig model_cfg;
    model_cfg.vocab = 32;
    model_cfg.max_seq = 12;
    model_cfg.hidden = 16;
    model_cfg.num_heads = 2;
    model_cfg.head_dim = 8;
    model_cfg.num_layers = 2;
    model_cfg.ffn_mult = 2;
    model_cfg.num_experts = 4;
    model_cfg.seed = 5;

    CorpusConfig corpus_cfg;
    corpus_cfg.vocab_size = 32;
    corpus_cfg.seed = 3;
    ZipfMarkovCorpus corpus(corpus_cfg);
    LmBatchStream train(corpus, 8, 12, 0);
    LmBatchStream valid(corpus, 8, 12, 1);

    LmTrainerConfig cfg;
    cfg.moc.pec.k_snapshot = 2;
    cfg.moc.pec.k_persist = 1;
    cfg.moc.i_ckpt = 8;
    cfg.moc.two_level_recovery = true;
    cfg.moc.dynamic_k = true;
    cfg.parallel = {.dp = 4, .ep = 4, .tp = 1, .pp = 1};
    cfg.gpus_per_node = 2;
    cfg.total_iterations = 48;
    cfg.adam.lr = 3e-3;

    MoeTransformerLm model(model_cfg);
    auto injector = FaultInjector::At(26, 0);
    const auto log = RunFaultTolerantLmTraining(model, train, valid, cfg, injector);
    ASSERT_EQ(log.recoveries.size(), 1U);

    ASSERT_TRUE(obs::WriteMetricsJson(dir.File("metrics.json")));
    ASSERT_TRUE(obs::WriteEventsJsonl(dir.File("events.jsonl")));
}

TEST(Report, EndToEndSectionsPresent) {
    TempDir dir;
    RunFaultyTraining(dir);
    const auto [code, out] = Report({"--metrics", dir.File("metrics.json"),
                                     "--events", dir.File("events.jsonl")});
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("== recovery timeline =="), std::string::npos);
    EXPECT_NE(out.find("== PLT trajectory"), std::string::npos);
    EXPECT_NE(out.find("== expert staleness =="), std::string::npos);
    EXPECT_NE(out.find("== overhead model (measured vs Eq. 11-13) =="),
              std::string::npos);
    EXPECT_NE(out.find(kMachineMarker), std::string::npos);
    // One fault at iteration 26, restart at the iteration-24 checkpoint.
    EXPECT_NE(out.find("nodes=0"), std::string::npos);
}

TEST(Report, PredictionsMatchOverheadModelAtOperatingPoint) {
    TempDir dir;
    RunFaultyTraining(dir);
    const auto [code, out] = Report({"--metrics", dir.File("metrics.json"),
                                     "--events", dir.File("events.jsonl")});
    ASSERT_EQ(code, 0) << out;
    const json::Value machine = MachineSection(out);

    // Re-evaluate src/core/overhead.h at the report's own operating point;
    // the predicted section must be exactly this model (modulo the %.9g
    // round-trip through the JSON emitter).
    const json::Value& op = machine.At("operating_point");
    FaultToleranceModel model;
    model.i_total = op.At("i_total").AsNumber();
    model.lambda = op.At("lambda").AsNumber();
    model.t_iter = op.At("t_iter").AsNumber();
    model.o_restart = op.At("o_restart").AsNumber();
    const double o_save = op.At("o_save").AsNumber();
    const double i_ckpt = op.At("i_ckpt").AsNumber();

    const auto near = [](double actual, double expected) {
        EXPECT_NEAR(actual, expected, std::abs(expected) * 1e-6 + 1e-9);
    };
    const json::Value& predicted = machine.At("predicted");
    near(predicted.At("expected_faults").AsNumber(), ExpectedFaults(model));
    near(predicted.At("total_overhead_s").AsNumber(),
         TotalCheckpointOverhead(model, o_save, i_ckpt));
    near(predicted.At("optimal_interval_iters").AsNumber(),
         OptimalInterval(model, o_save));

    // Operating point sanity: the run had 1 fault in 48+replayed iterations,
    // checkpointing every 8 (inferred from the journal, not the config).
    EXPECT_DOUBLE_EQ(machine.At("measured").At("faults").AsNumber(), 1.0);
    EXPECT_DOUBLE_EQ(i_ckpt, 8.0);
    near(model.lambda, 1.0 / model.i_total);

    // Measured = predicted + residual must hold by construction.
    near(machine.At("measured").At("overhead_s").AsNumber(),
         predicted.At("total_overhead_s").AsNumber() +
             machine.At("residual").At("overhead_s").AsNumber());

    EXPECT_DOUBLE_EQ(machine.At("events").At("recoveries").AsNumber(), 1.0);
}

TEST(Report, WritesMachineJsonFile) {
    TempDir dir;
    RunFaultyTraining(dir);
    const auto [code, out] =
        Report({"--metrics", dir.File("metrics.json"), "--events",
                dir.File("events.jsonl"), "--report-json", dir.File("report.json")});
    ASSERT_EQ(code, 0) << out;
    std::ifstream in(dir.File("report.json"));
    std::stringstream content;
    content << in.rdbuf();
    const json::Value machine = json::Parse(content.str());
    EXPECT_EQ(machine.At("schema").AsString(), "moc-report/1");
    EXPECT_DOUBLE_EQ(machine.At("measured").At("faults").AsNumber(), 1.0);
}

TEST(Report, FaultFreeRunDisablesFaultTerms) {
    TempDir dir;
    {
        std::ofstream metrics(dir.File("metrics.json"));
        metrics << "{\"meta\": {\"schema\": \"moc-obs/1\"},\n"
                   " \"counters\": {\"train.iterations\": 100,"
                   " \"ckpt.events\": 5},\n"
                   " \"gauges\": {}, \"histograms\": {}, \"experts\": []}\n";
    }
    const auto [code, out] = Report({"--metrics", dir.File("metrics.json")});
    EXPECT_EQ(code, 0) << out;
    EXPECT_NE(out.find("fault-free run"), std::string::npos);
    const json::Value machine = MachineSection(out);
    EXPECT_DOUBLE_EQ(machine.At("predicted").At("expected_faults").AsNumber(),
                     0.0);
    EXPECT_TRUE(machine.At("predicted").At("optimal_interval_iters").is_null());
    EXPECT_DOUBLE_EQ(machine.At("operating_point").At("i_ckpt").AsNumber(),
                     20.0);  // 100 iterations / 5 checkpoints
}

TEST(Report, MalformedInputsFailCleanly) {
    TempDir dir;
    {
        // Missing/unparsable inputs are exit code 2, the CLI's usage-error
        // convention, so CI scripts can tell them from analysis findings.
        const auto missing = Report({"--metrics", dir.File("nope.json")});
        EXPECT_EQ(missing.first, 2);
        EXPECT_NE(missing.second.find("error:"), std::string::npos);
    }
    {
        std::ofstream bad(dir.File("bad.json"));
        bad << "{\"counters\": [not json";
    }
    {
        const auto malformed = Report({"--metrics", dir.File("bad.json")});
        EXPECT_EQ(malformed.first, 2);
        EXPECT_NE(malformed.second.find("error:"), std::string::npos);
    }
    {
        std::ofstream metrics(dir.File("ok.json"));
        metrics << "{\"counters\": {}}";
        std::ofstream events(dir.File("bad.jsonl"));
        events << "{\"type\": \"no_such_kind\"}\n";
    }
    {
        const auto bad_events = Report({"--metrics", dir.File("ok.json"),
                                        "--events", dir.File("bad.jsonl")});
        EXPECT_EQ(bad_events.first, 2);
        EXPECT_NE(bad_events.second.find("error:"), std::string::npos);
    }
    {
        const auto no_args = Report({});
        EXPECT_EQ(no_args.first, 2);
        EXPECT_NE(no_args.second.find("usage:"), std::string::npos);
    }
}

}  // namespace
}  // namespace moc
