/**
 * @file
 * Unit tests for the transport wire codec (net/frame.h): frame round
 * trips, partial-read reassembly, CRC rejection with magic resync, junk
 * tolerance, torn-frame fuzzing, and the bounds-checked payload codec.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>

#include "net/frame.h"
#include "util/rng.h"

namespace moc::net {
namespace {

Frame
SampleFrame(std::uint64_t seq = 7) {
    Frame frame;
    frame.type = MsgType::kRankDone;
    frame.src_peer = 3;
    frame.epoch = 2;
    frame.seq = seq;
    frame.ctx.generation = 11;
    frame.ctx.iteration = 512;
    frame.ctx.rank = 3;
    frame.ctx.phase = PhaseLiteral(PhaseId::kPersist);
    frame.payload = {0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42};
    return frame;
}

void
ExpectSample(const Frame& got, std::uint64_t seq = 7) {
    EXPECT_EQ(got.type, MsgType::kRankDone);
    EXPECT_EQ(got.src_peer, 3U);
    EXPECT_EQ(got.epoch, 2U);
    EXPECT_EQ(got.seq, seq);
    EXPECT_EQ(got.ctx.generation, 11U);
    EXPECT_EQ(got.ctx.iteration, 512U);
    EXPECT_EQ(got.ctx.rank, 3);
    EXPECT_STREQ(got.ctx.phase, PhaseLiteral(PhaseId::kPersist));
    EXPECT_EQ(got.payload, (Blob{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42}));
}

TEST(NetFrame, RoundTripsThroughEncodeDecode) {
    const Blob wire = EncodeFrame(SampleFrame());
    EXPECT_EQ(wire.size(), kHeaderSize + 6 + kTrailerSize);

    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    auto got = decoder.Next();
    ASSERT_TRUE(got.has_value());
    ExpectSample(*got);
    EXPECT_EQ(decoder.pending_bytes(), 0U);
    EXPECT_EQ(decoder.stats().frames, 1U);
    EXPECT_EQ(decoder.stats().crc_rejects, 0U);
}

TEST(NetFrame, ReassemblesByteAtATime) {
    const Blob wire = EncodeFrame(SampleFrame());
    FrameDecoder decoder;
    for (std::size_t i = 0; i < wire.size(); ++i) {
        EXPECT_FALSE(decoder.Next().has_value());
        decoder.Feed(&wire[i], 1);
    }
    auto got = decoder.Next();
    ASSERT_TRUE(got.has_value());
    ExpectSample(*got);
}

TEST(NetFrame, EmptyPayloadFrame) {
    Frame frame;
    frame.type = MsgType::kHeartbeat;
    frame.src_peer = 9;
    const Blob wire = EncodeFrame(frame);
    EXPECT_EQ(wire.size(), kHeaderSize + kTrailerSize);

    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    auto got = decoder.Next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->type, MsgType::kHeartbeat);
    EXPECT_TRUE(got->payload.empty());
}

TEST(NetFrame, RejectsBitDamageAndResyncsOnNextFrame) {
    Blob stream = EncodeFrame(SampleFrame(1));
    stream[kHeaderSize + 2] ^= 0x40;  // flip one payload bit
    const Blob good = EncodeFrame(SampleFrame(2));
    stream.insert(stream.end(), good.begin(), good.end());

    FrameDecoder decoder;
    decoder.Feed(stream.data(), stream.size());
    auto got = decoder.Next();
    ASSERT_TRUE(got.has_value());
    ExpectSample(*got, 2);
    EXPECT_FALSE(decoder.Next().has_value());
    EXPECT_EQ(decoder.stats().crc_rejects, 1U);
    EXPECT_GE(decoder.stats().resyncs, 1U);
}

TEST(NetFrame, SkipsJunkBeforeMagic) {
    Blob stream = {'g', 'a', 'r', 'b', 'a', 'g', 'e', 0x00, 0xFF};
    const std::size_t junk = stream.size();
    const Blob good = EncodeFrame(SampleFrame());
    stream.insert(stream.end(), good.begin(), good.end());

    FrameDecoder decoder;
    decoder.Feed(stream.data(), stream.size());
    auto got = decoder.Next();
    ASSERT_TRUE(got.has_value());
    ExpectSample(*got);
    EXPECT_EQ(decoder.stats().junk_bytes, junk);
}

TEST(NetFrame, TornTailStaysPendingUntilCompleted) {
    const Blob wire = EncodeFrame(SampleFrame());
    const std::size_t cut = wire.size() - 3;

    FrameDecoder decoder;
    decoder.Feed(wire.data(), cut);
    EXPECT_FALSE(decoder.Next().has_value());
    EXPECT_EQ(decoder.pending_bytes(), cut);

    decoder.Feed(wire.data() + cut, wire.size() - cut);
    auto got = decoder.Next();
    ASSERT_TRUE(got.has_value());
    ExpectSample(*got);
}

TEST(NetFrame, TornFrameFollowedByFreshFrameRecovers) {
    // A sender died mid-write: half a frame, then a new connection's frame.
    const Blob torn = EncodeFrame(SampleFrame(1));
    const Blob good = EncodeFrame(SampleFrame(2));
    Blob stream(torn.begin(), torn.begin() + kHeaderSize + 2);
    stream.insert(stream.end(), good.begin(), good.end());

    FrameDecoder decoder;
    decoder.Feed(stream.data(), stream.size());
    auto got = decoder.Next();
    ASSERT_TRUE(got.has_value());
    ExpectSample(*got, 2);
}

TEST(NetFrame, RejectsOversizePayloadLengthAsJunk) {
    Blob wire = EncodeFrame(SampleFrame());
    // Corrupt payload_len (offset 44) to an absurd value; the decoder must
    // treat the header as junk instead of waiting for 4 GiB.
    const std::uint32_t huge = 0xFFFFFFFFu;
    std::memcpy(wire.data() + 44, &huge, sizeof(huge));
    const Blob good = EncodeFrame(SampleFrame(3));
    wire.insert(wire.end(), good.begin(), good.end());

    FrameDecoder decoder;
    decoder.Feed(wire.data(), wire.size());
    auto got = decoder.Next();
    ASSERT_TRUE(got.has_value());
    ExpectSample(*got, 3);
    EXPECT_GE(decoder.stats().resyncs, 1U);
}

TEST(NetFrame, FuzzSeededDamageNeverDeliversCorruptFrames) {
    // Concatenate many frames, sprinkle seeded damage, and require every
    // delivered frame to be bit-exact with an original.
    Rng rng(0x5EEDF00DULL);
    Blob stream;
    std::size_t sent = 0;
    for (std::uint64_t i = 0; i < 200; ++i) {
        Frame frame = SampleFrame(i);
        frame.payload.resize(rng.UniformInt(64));
        for (auto& b : frame.payload) {
            b = static_cast<std::uint8_t>(rng.UniformInt(256));
        }
        const Blob wire = EncodeFrame(frame);
        stream.insert(stream.end(), wire.begin(), wire.end());
        ++sent;
    }
    std::size_t damaged = 0;
    for (auto& b : stream) {
        if (rng.Uniform() < 0.001) {
            b ^= static_cast<std::uint8_t>(1 + rng.UniformInt(255));
            ++damaged;
        }
    }
    ASSERT_GT(damaged, 0U);

    FrameDecoder decoder;
    std::size_t offset = 0;
    std::size_t delivered = 0;
    while (offset < stream.size()) {
        const std::size_t chunk =
            std::min<std::size_t>(1 + rng.UniformInt(97),
                                  stream.size() - offset);
        decoder.Feed(stream.data() + offset, chunk);
        offset += chunk;
        while (auto got = decoder.Next()) {
            // Delivered frames must be intact: re-encoding reproduces a
            // byte image whose CRC the decoder would accept again.
            EXPECT_EQ(got->src_peer, 3U);
            EXPECT_EQ(got->epoch, 2U);
            ++delivered;
        }
    }
    EXPECT_LE(delivered, sent);
    EXPECT_GT(delivered, 0U);
    EXPECT_EQ(decoder.stats().frames, delivered);
    EXPECT_GT(decoder.stats().crc_rejects + decoder.stats().junk_bytes, 0U);
}

TEST(NetFrame, PhaseMappingRoundTrips) {
    for (const PhaseId id :
         {PhaseId::kNone, PhaseId::kSerialize, PhaseId::kSnapshot,
          PhaseId::kPersist, PhaseId::kVerify, PhaseId::kSeal,
          PhaseId::kRecover, PhaseId::kBarrier}) {
        EXPECT_EQ(PhaseIdOf(PhaseLiteral(id)), id);
    }
    EXPECT_EQ(PhaseIdOf("no-such-phase"), PhaseId::kNone);
    EXPECT_EQ(PhaseIdOf(nullptr), PhaseId::kNone);
}

TEST(NetFrame, PayloadCodecRoundTrips) {
    PayloadWriter w;
    w.U8(7);
    w.U32(0xCAFEBABEu);
    w.U64(1ULL << 40);
    w.I64(-12345);
    w.F64(2.5);
    w.Str("expert/3/w");
    const Blob bytes = w.Take();

    PayloadReader r(bytes);
    EXPECT_EQ(r.U8(), 7);
    EXPECT_EQ(r.U32(), 0xCAFEBABEu);
    EXPECT_EQ(r.U64(), 1ULL << 40);
    EXPECT_EQ(r.I64(), -12345);
    EXPECT_DOUBLE_EQ(r.F64(), 2.5);
    EXPECT_EQ(r.Str(), "expert/3/w");
    EXPECT_EQ(r.remaining(), 0U);
}

TEST(NetFrame, PayloadReaderThrowsOnTruncation) {
    PayloadWriter w;
    w.U64(99);
    w.Str("abc");
    Blob bytes = w.Take();
    bytes.resize(bytes.size() - 2);  // tear the string

    PayloadReader r(bytes);
    EXPECT_EQ(r.U64(), 99U);
    EXPECT_THROW(r.Str(), std::runtime_error);

    PayloadReader empty(bytes);
    empty.U64();
    (void)empty.U32();  // the torn string's length prefix still fits...
    EXPECT_THROW((void)empty.U32(), std::runtime_error);  // ...but no more
}

TEST(NetFrame, MsgTypeNamesAreStable) {
    EXPECT_STREQ(MsgTypeName(MsgType::kHello), "hello");
    EXPECT_STREQ(MsgTypeName(MsgType::kCkptBegin), "ckpt_begin");
    EXPECT_STREQ(MsgTypeName(MsgType::kRankDone), "rank_done");
    EXPECT_STREQ(MsgTypeName(MsgType::kPeerDeath), "peer_death");
}

}  // namespace
}  // namespace moc::net
