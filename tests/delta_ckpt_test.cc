/**
 * @file
 * Per-expert delta checkpointing: the changed-chunk codec
 * (storage/delta_codec.h), the persist pipeline's delta path and its chain
 * bound, restore byte-equivalence across multi-generation chains, `moc_cli
 * fsck`'s chain verification, and the dedup-identity regression (a CRC-32C
 * collision must not dedup two different blobs).
 */

#include <gtest/gtest.h>

#include <array>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ckpt/cluster_engine.h"
#include "ckpt/persist_pipeline.h"
#include "cli_lib.h"
#include "core/cluster_recovery.h"
#include "storage/delta_codec.h"
#include "storage/faulty_store.h"
#include "storage/file_store.h"
#include "storage/persistent_store.h"
#include "storage/store_error.h"
#include "util/crc32.h"
#include "util/hash.h"
#include "util/rng.h"

namespace moc {
namespace {

AgentCostModel
FastCost() {
    AgentCostModel cost;
    cost.snapshot_bandwidth = 200e6;
    cost.persist_bandwidth = 200e6;
    cost.time_scale = 1.0;
    return cost;
}

/** @p ranks ranks, each holding @p per_rank expert shards of @p bytes,
    plus one non-expert "dense/w" shard per rank. */
ShardPlan
MixedPlan(std::size_t ranks, std::size_t per_rank, Bytes bytes) {
    ShardPlan plan(ranks);
    for (RankId r = 0; r < ranks; ++r) {
        for (std::size_t i = 0; i < per_rank; ++i) {
            plan.Add(r, {"expert/" + std::to_string(r * per_rank + i) + "/w",
                         bytes, false});
        }
        plan.Add(r, {"dense/w", bytes, false});
    }
    return plan;
}

/**
 * Hot-shard content at @p version: the base blob with one 64-byte chunk
 * mutated per version step, cumulatively — consecutive versions differ in
 * exactly one chunk, which is what makes a shard delta-eligible.
 */
Blob
ChurnedBytes(const ShardItem& item, std::size_t version) {
    Blob blob = SyntheticShardBytes(item, 1);
    const std::size_t chunks = std::max<std::size_t>(1, blob.size() / 64);
    for (std::size_t v = 2; v <= version; ++v) {
        const std::size_t off = ((v * 131) % chunks) * 64;
        for (std::size_t i = 0; i < 64 && off + i < blob.size(); ++i) {
            blob[off + i] ^= static_cast<std::uint8_t>(0xA5 ^ v);
        }
    }
    return blob;
}

BlobProvider
ChurnProvider(std::size_t version) {
    return [version](const ShardItem& item) {
        return ChurnedBytes(item, version);
    };
}

// ---------- codec ----------

TEST(DeltaCodec, ChunkHashesDifferPerChunkAndCarryBothHashes) {
    Blob blob(300);
    for (std::size_t i = 0; i < blob.size(); ++i) {
        blob[i] = static_cast<std::uint8_t>(i * 7);
    }
    const auto ids = HashChunks(blob, 128);
    ASSERT_EQ(ids.size(), 3U);  // 128 + 128 + 44-byte tail
    EXPECT_NE(ids[0], ids[1]);
    for (const auto& id : ids) {
        EXPECT_NE(id.fnv, 0U);
    }
    // The chunk identity matches hashing the slice directly.
    EXPECT_EQ(ids[0].crc, Crc32c(blob.data(), 128));
    EXPECT_EQ(ids[0].fnv, Fnv1a64(blob.data(), 128));
    EXPECT_EQ(ids[2].crc, Crc32c(blob.data() + 256, 44));
}

TEST(DeltaCodec, EncodeApplyRoundTripsWithShortTailChunk) {
    Blob base(300);
    for (std::size_t i = 0; i < base.size(); ++i) {
        base[i] = static_cast<std::uint8_t>(i);
    }
    Blob next = base;
    next[5] ^= 0xFF;    // chunk 0
    next[299] ^= 0xFF;  // short tail chunk 2
    const Blob record = EncodeDelta(next, {0, 2}, 128, /*base_iteration=*/7);

    const DeltaRecord parsed = ParseDelta(record);
    EXPECT_EQ(parsed.logical_bytes, 300U);
    EXPECT_EQ(parsed.base_iteration, 7U);
    EXPECT_EQ(parsed.chunk_bytes, 128U);
    EXPECT_EQ(parsed.num_chunks, 3U);
    EXPECT_EQ(parsed.changed, (std::vector<std::uint32_t>{0, 2}));
    // Only chunk 0 (128 B) and the 44-byte tail were shipped.
    EXPECT_LT(record.size(), next.size());

    EXPECT_EQ(ApplyDelta(record, base), next);
}

TEST(DeltaCodec, RejectsMalformedRecords) {
    Blob base(256, 0x11);
    Blob next = base;
    next[0] ^= 1;
    Blob record = EncodeDelta(next, {0}, 128, 3);

    Blob bad_magic = record;
    bad_magic[0] = 'X';
    EXPECT_THROW(ParseDelta(bad_magic), std::invalid_argument);

    Blob truncated(record.begin(), record.begin() + record.size() - 1);
    EXPECT_THROW(ParseDelta(truncated), std::invalid_argument);

    Blob short_header(record.begin(), record.begin() + 10);
    EXPECT_THROW(ParseDelta(short_header), std::invalid_argument);

    // Bitmap popcount disagreeing with changed_count.
    Blob bad_bitmap = record;
    bad_bitmap[36] = 0x03;  // two bits set, header says one chunk changed
    EXPECT_THROW(ParseDelta(bad_bitmap), std::invalid_argument);

    // A base of the wrong size cannot host the record's chunk grid.
    EXPECT_THROW(ApplyDelta(record, Blob(100, 0)), std::invalid_argument);
}

TEST(DeltaCodec, DeltaShardKeyLandsBesideVersionedKeys) {
    EXPECT_EQ(DeltaShardKey("rank0/expert/3/w", 12),
              VersionedShardKey("rank0/expert/3/w", 12) + ".delta");
}

// ---------- pipeline + restore ----------

TEST(DeltaCkpt, ChainOfThreeDeltasRestoresByteIdentical) {
    PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                           .latency = 0.0});
    ClusterEngineOptions opt;
    opt.delta = true;
    opt.delta_chunk_bytes = 64;
    ClusterCheckpointEngine engine(store, 2, FastCost(), opt);
    // 4 MiB planned -> 4 KiB synthetic -> 64 chunks of 64 B.
    const auto plan = MixedPlan(2, 4, 4 * kMiB);

    ASSERT_TRUE(engine.Execute(plan, ChurnProvider(1), 1).sealed);
    for (std::size_t gen = 2; gen <= 4; ++gen) {
        const auto stats = engine.Execute(plan, ChurnProvider(gen), gen);
        ASSERT_TRUE(stats.sealed) << "gen " << gen;
        // Every shard changed by exactly one chunk: all deltas, no fulls.
        EXPECT_EQ(stats.keys_delta, 10U) << "gen " << gen;
        EXPECT_EQ(stats.keys_persisted, 10U) << "gen " << gen;
        EXPECT_EQ(stats.keys_deduped, 0U) << "gen " << gen;
        EXPECT_GT(stats.bytes_delta_saved, 0U) << "gen " << gen;
        // A one-chunk delta is a small fraction of the 4 KiB blob.
        EXPECT_LT(stats.bytes_persisted, 10U * 1024U) << "gen " << gen;
    }

    // The manifest chains each generation onto the previous one.
    const auto v4 = engine.manifest().FindPersistVersion("rank0/expert/0/w", 4);
    ASSERT_TRUE(v4.has_value());
    ASSERT_TRUE(v4->is_delta());
    EXPECT_EQ(*v4->delta_base, 3U);
    EXPECT_TRUE(store.Contains(DeltaShardKey("rank0/expert/0/w", 4)));
    EXPECT_FALSE(store.Contains(VersionedShardKey("rank0/expert/0/w", 4)));

    // Restore walks the chain back to the generation-1 full writes and
    // reproduces generation 4 byte-for-byte.
    const auto restore = PlanClusterRestore(engine.manifest());
    ASSERT_TRUE(restore.has_value());
    EXPECT_EQ(restore->generation, 4U);
    EXPECT_TRUE(restore->degraded.empty());
    const auto result =
        ExecuteClusterRestore(engine.manifest(), store, *restore);
    EXPECT_TRUE(result.damaged.empty());
    EXPECT_TRUE(result.degraded.empty());
    for (RankId r = 0; r < 2; ++r) {
        for (const auto& item : plan.Items(r)) {
            const std::string key = "rank" + std::to_string(r) + "/" + item.key;
            ASSERT_TRUE(result.blobs.count(key)) << key;
            EXPECT_EQ(result.blobs.at(key), ChurnedBytes(item, 4)) << key;
        }
    }
}

TEST(DeltaCkpt, ChainBoundForcesFullWriteAndResetsChain) {
    PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                           .latency = 0.0});
    ClusterEngineOptions opt;
    opt.delta = true;
    opt.delta_chunk_bytes = 64;
    opt.max_delta_chain = 2;
    ClusterCheckpointEngine engine(store, 1, FastCost(), opt);
    const auto plan = MixedPlan(1, 2, 4 * kMiB);  // 3 shards

    ASSERT_TRUE(engine.Execute(plan, ChurnProvider(1), 1).sealed);
    EXPECT_EQ(engine.Execute(plan, ChurnProvider(2), 2).keys_delta, 3U);
    EXPECT_EQ(engine.Execute(plan, ChurnProvider(3), 3).keys_delta, 3U);

    // Chain length 2 == bound: generation 4 is forced full.
    const auto forced = engine.Execute(plan, ChurnProvider(4), 4);
    ASSERT_TRUE(forced.sealed);
    EXPECT_EQ(forced.keys_delta, 0U);
    EXPECT_EQ(forced.forced_full, 3U);
    EXPECT_TRUE(store.Contains(VersionedShardKey("rank0/dense/w", 4)));
    EXPECT_FALSE(store.Contains(DeltaShardKey("rank0/dense/w", 4)));

    // The full write resets the chain: generation 5 deltas again, based
    // on 4.
    const auto next = engine.Execute(plan, ChurnProvider(5), 5);
    EXPECT_EQ(next.keys_delta, 3U);
    const auto v5 = engine.manifest().FindPersistVersion("rank0/dense/w", 5);
    ASSERT_TRUE(v5.has_value());
    ASSERT_TRUE(v5->is_delta());
    EXPECT_EQ(*v5->delta_base, 4U);
}

TEST(DeltaCkpt, ManifestDeltaFieldsSurviveJsonRoundTrip) {
    CheckpointManifest manifest;
    manifest.RecordPersistVersion("k", 1, 4096, 0xAABBCCDD, true);
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 1);
    manifest.RecordPersistDelta("k", 2, 4096, 0x11223344, true,
                                /*delta_base=*/1, /*delta_bytes=*/200,
                                /*delta_crc=*/0x55667788);
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 2);

    CheckpointManifest reloaded;
    reloaded.LoadFromJson(manifest.ToJson());
    const auto v = reloaded.FindPersistVersion("k", 2);
    ASSERT_TRUE(v.has_value());
    ASSERT_TRUE(v->is_delta());
    EXPECT_EQ(*v->delta_base, 1U);
    EXPECT_EQ(v->delta_bytes, 200U);
    EXPECT_EQ(v->delta_crc, 0x55667788U);
    EXPECT_EQ(v->bytes, 4096U);
    EXPECT_EQ(v->crc, 0x11223344U);
}

TEST(DeltaCkpt, PruneKeepsDeltaChainBases) {
    CheckpointManifest manifest;
    manifest.RecordPersistVersion("k", 1, 100, 0x1, true);
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 1);
    manifest.RecordPersistDelta("k", 2, 100, 0x2, true, 1, 40, 0x3);
    manifest.MarkCheckpointComplete(StoreLevel::kPersist, 2);

    // Keeping only the newest generation must still keep iteration 1: the
    // kept delta at 2 is unreconstructable without its base.
    const auto pruned = manifest.PrunePersistGenerations(1);
    for (const auto& [key, iteration] : pruned) {
        EXPECT_FALSE(key == "k" && iteration == 1)
            << "pruned the base of a kept delta chain";
    }
    EXPECT_TRUE(manifest.FindPersistVersion("k", 1).has_value());
}

// ---------- dedup identity ----------

/**
 * Crafts a blob that CRC-32C-collides with @p base without being equal to
 * it: flip one leading byte, then solve for the trailing 4 bytes that
 * restore the original CRC. CRC is affine over GF(2) in the message bits,
 * so with everything but the tail fixed, crc(tail) = crc(0) xor L(tail)
 * with L linear and invertible — build L from 32 basis evaluations and
 * Gauss-eliminate.
 */
Blob
CraftCrc32cCollision(const Blob& base) {
    Blob out = base;
    out[0] ^= 0x01;
    const std::size_t tail = out.size() - 4;
    const auto crc_with_tail = [&out, tail](std::uint32_t t) {
        Blob probe = out;
        for (int i = 0; i < 4; ++i) {
            probe[tail + i] = static_cast<std::uint8_t>(t >> (8 * i));
        }
        return Crc32c(probe.data(), probe.size());
    };
    const std::uint32_t target = Crc32c(base.data(), base.size());
    const std::uint32_t f0 = crc_with_tail(0);
    std::array<std::uint32_t, 32> columns;
    for (int i = 0; i < 32; ++i) {
        columns[i] = crc_with_tail(1U << i) ^ f0;
    }
    // Solve sum(columns[i] for chosen i) == target ^ f0 over GF(2).
    std::uint32_t rhs = target ^ f0;
    std::array<std::uint32_t, 32> basis = columns;
    std::array<std::uint32_t, 32> choice;  // tail bits picked per basis row
    for (int i = 0; i < 32; ++i) {
        choice[i] = 1U << i;
    }
    std::uint32_t solution = 0;
    for (int bit = 31; bit >= 0; --bit) {
        int pivot = -1;
        for (int i = 0; i < 32; ++i) {
            if (basis[i] & (1U << bit)) {
                pivot = i;
                break;
            }
        }
        if (pivot < 0) {
            continue;
        }
        for (int i = 0; i < 32; ++i) {
            if (i != pivot && (basis[i] & (1U << bit))) {
                basis[i] ^= basis[pivot];
                choice[i] ^= choice[pivot];
            }
        }
        if (rhs & (1U << bit)) {
            rhs ^= basis[pivot];
            solution ^= choice[pivot];
        }
        basis[pivot] = 0;  // consumed
        choice[pivot] = 0;
    }
    EXPECT_EQ(rhs, 0U) << "CRC tail map unexpectedly singular";
    for (int i = 0; i < 4; ++i) {
        out[tail + i] = static_cast<std::uint8_t>(solution >> (8 * i));
    }
    return out;
}

TEST(DedupIdentity, Crc32cCollisionWithEqualSizeDoesNotDedup) {
    Blob a(64);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<std::uint8_t>(i * 37 + 11);
    }
    const Blob b = CraftCrc32cCollision(a);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_NE(a, b);
    ASSERT_EQ(Crc32c(a.data(), a.size()), Crc32c(b.data(), b.size()))
        << "collision crafting failed";
    // The second identity component tells them apart.
    EXPECT_NE(Fnv1a64(a.data(), a.size()), Fnv1a64(b.data(), b.size()));

    PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                           .latency = 0.0});
    CheckpointManifest manifest;
    PersistPipeline pipeline(store, manifest, {});

    pipeline.BeginGeneration(1);
    pipeline.Submit("k", a, 1);
    ASSERT_TRUE(pipeline.FinishGeneration().sealed);

    // Same size, same CRC-32C, different content: a single-hash identity
    // dedups this and silently persists the wrong bytes.
    pipeline.BeginGeneration(2);
    pipeline.Submit("k", b, 2);
    const auto stats = pipeline.FinishGeneration();
    ASSERT_TRUE(stats.sealed);
    EXPECT_EQ(stats.shards_deduped, 0U);
    EXPECT_EQ(stats.shards_written, 1U);
    ASSERT_TRUE(store.Contains("k@2"));
    EXPECT_EQ(*store.Get("k@2"), b);
}

// ---------- fsck ----------

TEST(DeltaFsck, CorruptMidChainBaseIsRepairableAndExcludesDependents) {
    namespace fs = std::filesystem;
    const fs::path dir = fs::temp_directory_path() / "moc_delta_fsck";
    fs::remove_all(dir);
    {
        FileStore disk(dir);
        ClusterEngineOptions opt;
        opt.delta = true;
        opt.delta_chunk_bytes = 64;
        opt.max_delta_chain = 2;
        ClusterCheckpointEngine engine(disk, 1, FastCost(), opt);
        const auto plan = MixedPlan(1, 2, 4 * kMiB);
        // gen 1 full; 2-3 deltas; 4 forced full; 5-6 deltas on 4.
        for (std::size_t gen = 1; gen <= 6; ++gen) {
            ASSERT_TRUE(engine.Execute(plan, ChurnProvider(gen), gen).sealed)
                << "gen " << gen;
        }
    }
    {
        std::ostringstream out;
        std::ostringstream err;
        ASSERT_EQ(cli::Main({"fsck", dir.string()}, out, err), 0) << out.str();
    }

    // Corrupt the non-expert shard's generation-4 full blob: the base both
    // delta generations 5 and 6 reconstruct from.
    const fs::path victim =
        dir / "rank0" / "dense" / (std::string("w@4") + ".blob");
    ASSERT_TRUE(fs::exists(victim)) << victim;
    {
        std::ofstream f(victim, std::ios::binary | std::ios::trunc);
        f << "rotten";
    }

    std::ostringstream out;
    std::ostringstream err;
    const fs::path json = dir / "fsck.json";
    EXPECT_EQ(cli::Main({"fsck", dir.string(), "--json", json.string()}, out,
                        err),
              1)
        << out.str();
    const std::string text = out.str();
    // The rotted base is plain damage; its dependents are chain breaks —
    // their own records are intact but unreconstructable.
    EXPECT_NE(text.find("missing version: rank0/dense/w @4"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("broken delta chain: rank0/dense/w @5"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("broken delta chain: rank0/dense/w @6"),
              std::string::npos)
        << text;
    // Generations 4-6 lose the non-expert shard at their own iteration, so
    // none of them is a restart target; restart degrades to generation 3.
    EXPECT_NE(text.find("repairable: restart will degrade to generation 3"),
              std::string::npos)
        << text;

    std::ifstream jf(json);
    const std::string jtext((std::istreambuf_iterator<char>(jf)),
                            std::istreambuf_iterator<char>());
    // Chains report newest-first: @6 (base 5) then @5 (base 4).
    EXPECT_NE(jtext.find("\"delta_chain_breaks\": [{\"key\": "
                         "\"rank0/dense/w\", \"iteration\": 6, \"base\": 5}, "
                         "{\"key\": \"rank0/dense/w\", \"iteration\": 5, "
                         "\"base\": 4}]"),
              std::string::npos)
        << jtext;
    EXPECT_NE(jtext.find("\"restartable_generations\": [1, 2, 3]"),
              std::string::npos)
        << jtext;

    // Degraded restore: the damaged chain falls back to generation 3
    // content for the broken key; every other key restores at 6.
    FileStore disk(dir);
    CheckpointManifest manifest;
    const auto blob = disk.Get("meta/manifest");
    ASSERT_TRUE(blob.has_value());
    manifest.LoadFromJson(std::string(blob->begin(), blob->end()));
    const auto restore = PlanClusterRestore(manifest);
    ASSERT_TRUE(restore.has_value());
    EXPECT_EQ(restore->generation, 6U);
    const auto result = ExecuteClusterRestore(manifest, disk, *restore);
    EXPECT_TRUE(result.damaged.empty());
    ASSERT_EQ(result.degraded.size(), 1U);
    EXPECT_EQ(result.degraded.front().key, "rank0/dense/w");
    const auto plan_items = MixedPlan(1, 2, 4 * kMiB).Items(0);
    for (const auto& item : plan_items) {
        const std::string key = "rank0/" + item.key;
        const std::size_t at = item.key == "dense/w" ? 3 : 6;
        EXPECT_EQ(result.blobs.at(key), ChurnedBytes(item, at)) << key;
    }
    fs::remove_all(dir);
}

// ---------- soak ----------

TEST(DeltaSoak, TwentyFiveSeedsMixDeltasWithFaultChurn) {
    for (std::uint64_t seed = 0; seed < 25; ++seed) {
        Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
        PersistentStore store({.write_bandwidth = 1e9, .read_bandwidth = 1e9,
                               .latency = 0.0});
        FaultyStore faulty(store, seed);
        ClusterEngineOptions opt;
        opt.delta = true;
        opt.delta_chunk_bytes = 64;
        opt.max_delta_chain = 1 + seed % 4;
        ClusterCheckpointEngine engine(faulty, 2, FastCost(), opt);
        const auto plan = MixedPlan(2, 3, 1 * kMiB);  // 1 KiB blobs

        // Mutable per-key state: each event leaves some shards untouched
        // (dedup), nudges some by a chunk (delta), and rewrites some
        // (full), then randomly injects write faults that tear the event.
        std::map<std::string, Blob> state;
        for (RankId r = 0; r < 2; ++r) {
            for (const auto& item : plan.Items(r)) {
                state[item.key] = SyntheticShardBytes(item, seed + 1);
            }
        }
        std::map<std::size_t, std::map<std::string, Blob>> sealed_content;
        std::size_t last_sealed = 0;
        const std::size_t events = 6 + seed % 3;
        for (std::size_t gen = 1; gen <= events; ++gen) {
            for (auto& [key, blob] : state) {
                const double roll = rng.Uniform();
                if (roll < 0.3) {
                    continue;  // unchanged -> dedup
                }
                if (roll < 0.45) {  // full rewrite
                    for (auto& byte : blob) {
                        byte = static_cast<std::uint8_t>(rng.Next());
                    }
                    continue;
                }
                const std::size_t chunk =
                    rng.UniformInt(std::max<std::size_t>(1, blob.size() / 64));
                for (std::size_t i = chunk * 64;
                     i < std::min(blob.size(), (chunk + 1) * 64); ++i) {
                    blob[i] ^= static_cast<std::uint8_t>(1 + rng.Next() % 255);
                }
            }
            if (rng.Uniform() < 0.25) {
                StorageFaultProfile profile;
                profile.put_transient_error = 0.5;
                faulty.Arm(profile);
            }
            const BlobProvider provider = [&state](const ShardItem& item) {
                return state.at(item.key);
            };
            const auto stats = engine.Execute(plan, provider, gen);
            faulty.Disarm();
            if (stats.sealed) {
                sealed_content[gen] = state;
                last_sealed = gen;
            }
        }
        ASSERT_GT(last_sealed, 0U) << "seed " << seed;

        // Whatever mix of fulls, deltas, refs, and torn generations the
        // seed produced, restore must reproduce the last *sealed* content
        // byte-for-byte.
        const auto restore = PlanClusterRestore(engine.manifest());
        ASSERT_TRUE(restore.has_value()) << "seed " << seed;
        EXPECT_EQ(restore->generation, last_sealed) << "seed " << seed;
        const auto result =
            ExecuteClusterRestore(engine.manifest(), store, *restore);
        EXPECT_TRUE(result.damaged.empty()) << "seed " << seed;
        const auto& expected = sealed_content.at(last_sealed);
        for (RankId r = 0; r < 2; ++r) {
            for (const auto& item : plan.Items(r)) {
                const std::string key =
                    "rank" + std::to_string(r) + "/" + item.key;
                ASSERT_TRUE(result.blobs.count(key))
                    << "seed " << seed << " " << key;
                EXPECT_EQ(result.blobs.at(key), expected.at(item.key))
                    << "seed " << seed << " " << key;
            }
        }
    }
}

}  // namespace
}  // namespace moc
