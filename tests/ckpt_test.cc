/**
 * @file
 * Unit tests for the ckpt module: the triple-buffer state machine and the
 * threaded asynchronous checkpoint agent vs the blocking baseline.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ckpt/async_agent.h"
#include "ckpt/blocking.h"
#include "ckpt/triple_buffer.h"

namespace moc {
namespace {

Blob
MakeBlob(std::size_t size, std::uint8_t fill = 0xAA) {
    return Blob(size, fill);
}

// ---------- TripleBuffer ----------

TEST(TripleBuffer, InitiallyAllFree) {
    TripleBuffer tb;
    for (std::size_t i = 0; i < TripleBuffer::kNumBuffers; ++i) {
        EXPECT_EQ(tb.state(i), BufferState::kFree);
    }
    EXPECT_FALSE(tb.RecoveryBuffer().has_value());
}

TEST(TripleBuffer, SnapshotPersistRecoveryCycle) {
    TripleBuffer tb;
    const std::size_t idx = tb.AcquireForSnapshot();
    EXPECT_EQ(tb.state(idx), BufferState::kFilling);
    tb.Payload(idx).iteration = 10;
    tb.CompleteSnapshot(idx);
    EXPECT_EQ(tb.state(idx), BufferState::kFilled);

    const auto pidx = tb.AcquireForPersist();
    ASSERT_TRUE(pidx.has_value());
    EXPECT_EQ(*pidx, idx);
    EXPECT_EQ(tb.state(idx), BufferState::kPersisting);
    tb.CompletePersist(idx);
    EXPECT_EQ(tb.state(idx), BufferState::kRecovery);
    EXPECT_EQ(tb.RecoveryBuffer().value(), idx);
}

TEST(TripleBuffer, NewRecoveryReleasesOld) {
    TripleBuffer tb;
    // First checkpoint.
    auto a = tb.AcquireForSnapshot();
    tb.Payload(a).iteration = 1;
    tb.CompleteSnapshot(a);
    tb.CompletePersist(tb.AcquireForPersist().value());
    // Second checkpoint.
    auto b = tb.AcquireForSnapshot();
    tb.Payload(b).iteration = 2;
    tb.CompleteSnapshot(b);
    tb.CompletePersist(tb.AcquireForPersist().value());
    EXPECT_EQ(tb.RecoveryBuffer().value(), b);
    EXPECT_EQ(tb.state(a), BufferState::kFree);
}

TEST(TripleBuffer, OnlyOnePersistInFlight) {
    TripleBuffer tb;
    auto a = tb.AcquireForSnapshot();
    tb.Payload(a).iteration = 1;
    tb.CompleteSnapshot(a);
    auto b = tb.AcquireForSnapshot();
    tb.Payload(b).iteration = 2;
    tb.CompleteSnapshot(b);

    auto first = tb.AcquireForPersist();
    ASSERT_TRUE(first.has_value());
    // While `first` persists, no second persist may start: probe from a
    // thread and verify it blocks until CompletePersist.
    std::atomic<bool> acquired{false};
    std::thread prober([&] {
        auto second = tb.AcquireForPersist();
        acquired = second.has_value();
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(acquired.load());
    tb.CompletePersist(*first);
    prober.join();
    EXPECT_TRUE(acquired.load());
}

TEST(TripleBuffer, PersistsOldestFirst) {
    TripleBuffer tb;
    auto a = tb.AcquireForSnapshot();
    tb.Payload(a).iteration = 5;
    auto b = tb.AcquireForSnapshot();
    tb.Payload(b).iteration = 3;
    tb.CompleteSnapshot(a);
    tb.CompleteSnapshot(b);
    const auto first = tb.AcquireForPersist();
    EXPECT_EQ(tb.Payload(first.value()).iteration, 3U);
}

TEST(TripleBuffer, TryAcquireExhausts) {
    TripleBuffer tb;
    EXPECT_TRUE(tb.TryAcquireForSnapshot().has_value());
    EXPECT_TRUE(tb.TryAcquireForSnapshot().has_value());
    EXPECT_TRUE(tb.TryAcquireForSnapshot().has_value());
    EXPECT_FALSE(tb.TryAcquireForSnapshot().has_value());
}

TEST(TripleBuffer, ShutdownUnblocksPersistWaiter) {
    TripleBuffer tb;
    std::optional<std::size_t> result{99};
    std::thread waiter([&] { result = tb.AcquireForPersist(); });
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    tb.Shutdown();
    waiter.join();
    EXPECT_FALSE(result.has_value());
}

// ---------- AsyncCheckpointAgent ----------

AgentCostModel
FastAgent() {
    AgentCostModel cost;
    cost.snapshot_bandwidth = 1e6;  // 1 MB/s
    cost.persist_bandwidth = 1e6;
    cost.time_scale = 1.0;
    return cost;
}

TEST(AsyncAgent, PersistsRequestedCheckpoints) {
    PersistentStore store;
    {
        AsyncCheckpointAgent agent(store, "node0", FastAgent());
        agent.RequestCheckpoint(MakeBlob(1000), 10);
        agent.Drain();
        EXPECT_EQ(agent.LatestPersistedIteration().value(), 10U);
        const auto stats = agent.stats();
        EXPECT_EQ(stats.checkpoints_requested, 1U);
        EXPECT_EQ(stats.checkpoints_persisted, 1U);
        EXPECT_EQ(stats.bytes_persisted, 1000U);
    }
    EXPECT_TRUE(store.Contains("node0/ckpt"));
}

TEST(AsyncAgent, LatestCheckpointWins) {
    PersistentStore store;
    AsyncCheckpointAgent agent(store, "n", FastAgent());
    agent.RequestCheckpoint(MakeBlob(100, 1), 1);
    agent.RequestCheckpoint(MakeBlob(100, 2), 2);
    agent.Drain();
    EXPECT_EQ(agent.LatestPersistedIteration().value(), 2U);
    EXPECT_EQ(store.Get("n/ckpt")->front(), 2);
}

TEST(AsyncAgent, RequestReturnsBeforePersistCompletes) {
    // Make persist slow: the request must return promptly while the
    // persist phase is still running.
    StorageIoModel io;
    io.write_bandwidth = 10e3;  // 100 KB takes 10 s to persist
    io.latency = 0.0;
    PersistentStore store(io);
    AgentCostModel cost;
    cost.snapshot_bandwidth = 100e6;
    cost.persist_bandwidth = 10e3;
    cost.time_scale = 0.01;  // shrink to ~100 ms of real time
    AsyncCheckpointAgent agent(store, "n", cost);

    WallClock clock;
    const Seconds start = clock.Now();
    agent.RequestCheckpoint(MakeBlob(100000), 1);
    const Seconds stall = agent.WaitSnapshotComplete();
    const Seconds elapsed = clock.Now() - start;
    EXPECT_LT(elapsed, 0.08);  // snapshot is fast; persist (~0.1 s) is hidden
    EXPECT_GE(stall, 0.0);
    agent.Drain();
    EXPECT_EQ(agent.stats().checkpoints_persisted, 1U);
}

TEST(AsyncAgent, StallAccountingWhenSnapshotSlow) {
    PersistentStore store;
    AgentCostModel cost;
    cost.snapshot_bandwidth = 1e6;
    cost.persist_bandwidth = 100e6;
    cost.time_scale = 0.5;  // 100 KB snapshot ~ 50 ms
    AsyncCheckpointAgent agent(store, "n", cost);
    agent.RequestCheckpoint(MakeBlob(100000), 1);
    const Seconds stall = agent.WaitSnapshotComplete();
    EXPECT_GT(stall, 0.01);
    EXPECT_GE(agent.stats().snapshot_stalls, 1U);
    EXPECT_GT(agent.stats().total_stall_time, 0.0);
}

TEST(AsyncAgent, ManyCheckpointsAllPersist) {
    PersistentStore store;
    AsyncCheckpointAgent agent(store, "n", FastAgent());
    for (std::size_t i = 1; i <= 10; ++i) {
        agent.RequestCheckpoint(MakeBlob(500), i);
    }
    agent.Drain();
    EXPECT_EQ(agent.stats().checkpoints_persisted, 10U);
    EXPECT_EQ(agent.LatestPersistedIteration().value(), 10U);
}

// ---------- BlockingCheckpointer ----------

TEST(Blocking, ChargesBothPhases) {
    StorageIoModel io;
    io.latency = 0.0;
    PersistentStore store(io);
    // 100 KB at 1 MB/s snapshot + 1 MB/s persist = 0.2 s, scaled by 0.25.
    BlockingCheckpointer ckpt(store, "n", 1e6, 1e6, 0.25);
    const Seconds blocked = ckpt.Checkpoint(MakeBlob(100000), 7);
    EXPECT_GE(blocked, 0.04);
    EXPECT_EQ(ckpt.LatestPersistedIteration().value(), 7U);
    EXPECT_TRUE(store.Contains("n/ckpt"));
}

TEST(Blocking, BlockingExceedsAsyncOverhead) {
    // The headline property of asynchronous checkpointing: for the same
    // payload and bandwidths, the training-visible overhead is smaller.
    StorageIoModel io;
    io.latency = 0.0;
    PersistentStore store(io);
    const double scale = 0.05;
    BlockingCheckpointer blocking(store, "b", 1e6, 1e6, scale);
    const Seconds blocked = blocking.Checkpoint(MakeBlob(200000), 1);

    AgentCostModel cost;
    cost.snapshot_bandwidth = 1e6;
    cost.persist_bandwidth = 1e6;
    cost.time_scale = scale;
    AsyncCheckpointAgent agent(store, "a", cost);
    WallClock clock;
    const Seconds start = clock.Now();
    agent.RequestCheckpoint(MakeBlob(200000), 1);
    // Simulated F&B work that the snapshot overlaps with.
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    agent.WaitSnapshotComplete();
    const Seconds visible = clock.Now() - start;
    agent.Drain();
    EXPECT_LT(visible, blocked);
}

}  // namespace
}  // namespace moc
