/**
 * @file
 * Parameterized property tests (TEST_P sweeps) over the core invariants:
 *  - sequential selection: coverage, distinctness, balance for all (N, K);
 *  - shard planning: byte conservation and bottleneck ordering across the
 *    topology grid;
 *  - PEC size formula vs planner totals for all K;
 *  - PLT ledger: replay-idempotence under random fault schedules;
 *  - overhead model: optimal-interval optimality across parameter grid.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/overhead.h"
#include "core/pec.h"
#include "core/plt.h"
#include "core/selection.h"
#include "core/sharding.h"
#include "dist/presets.h"
#include "util/rng.h"

namespace moc {
namespace {

// ---------- Sequential selection properties ----------

using NkParam = std::tuple<std::size_t, std::size_t>;  // (N, K)

class SequentialProperty : public ::testing::TestWithParam<NkParam> {};

TEST_P(SequentialProperty, SelectsKDistinctInRange) {
    const auto [n, k] = GetParam();
    SequentialSelector sel(n);
    for (std::size_t c = 0; c < 3 * n; ++c) {
        for (std::size_t m = 0; m < 7; ++m) {
            const auto chosen = sel.Select(c, m, k);
            EXPECT_EQ(chosen.size(), k);
            std::set<ExpertId> unique(chosen.begin(), chosen.end());
            EXPECT_EQ(unique.size(), k);
            for (auto e : chosen) {
                EXPECT_LT(e, n);
            }
        }
    }
}

TEST_P(SequentialProperty, EveryExpertCoveredWithinWindow) {
    const auto [n, k] = GetParam();
    SequentialSelector sel(n);
    const std::size_t window = (n + k - 1) / k + 1;
    for (std::size_t m = 0; m < 5; ++m) {
        std::set<ExpertId> seen;
        for (std::size_t c = 0; c < window; ++c) {
            for (auto e : sel.Select(c, m, k)) {
                seen.insert(e);
            }
        }
        EXPECT_EQ(seen.size(), n) << "N=" << n << " K=" << k << " layer=" << m;
    }
}

TEST_P(SequentialProperty, LongRunSaveCountsBalanced) {
    const auto [n, k] = GetParam();
    SequentialSelector sel(n);
    std::vector<std::size_t> counts(n, 0);
    const std::size_t rounds = 8 * n;
    for (std::size_t c = 0; c < rounds; ++c) {
        for (auto e : sel.Select(c, /*moe_index=*/0, k)) {
            ++counts[e];
        }
    }
    const auto [lo, hi] = std::minmax_element(counts.begin(), counts.end());
    // Rotation keeps per-expert save counts within a small band.
    EXPECT_LE(*hi - *lo, rounds / n + k);
}

INSTANTIATE_TEST_SUITE_P(
    AllNk, SequentialProperty,
    ::testing::Values(NkParam{2, 1}, NkParam{4, 1}, NkParam{4, 3}, NkParam{8, 1},
                      NkParam{8, 2}, NkParam{8, 3}, NkParam{8, 5}, NkParam{16, 1},
                      NkParam{16, 4}, NkParam{16, 7}, NkParam{16, 16},
                      NkParam{64, 8}, NkParam{64, 13}),
    [](const auto& info) {
        return "N" + std::to_string(std::get<0>(info.param)) + "K" +
               std::to_string(std::get<1>(info.param));
    });

// ---------- Sharding properties across the topology grid ----------

struct TopoCase {
    std::size_t dp;
    std::size_t ep;
    std::size_t gpus_per_node;
};

class ShardingProperty : public ::testing::TestWithParam<TopoCase> {};

TEST_P(ShardingProperty, BytesConservedAndOrdered) {
    const auto p = GetParam();
    const ModelSpec spec = Gpt350M16E();
    const ModelStateInventory inv(spec, StateBytes{});
    const RankTopology topo({.dp = p.dp, .ep = p.ep, .tp = 1, .pp = 1},
                            p.gpus_per_node);
    const Bytes expected = inv.TotalStateBytes();

    ShardingPlanner baseline(inv, topo, ShardingOptions{});
    ShardingPlanner sharded(inv, topo, ShardingOptions{true, true, false});
    ShardingPlanner adaptive(inv, topo, ShardingOptions{true, false, true});

    const auto full_baseline = baseline.PlanFull();
    const auto full_sharded = sharded.PlanFull();
    const auto full_adaptive = adaptive.PlanFull();

    EXPECT_EQ(full_baseline.TotalBytes(), expected);
    EXPECT_EQ(full_sharded.TotalBytes(), expected);
    EXPECT_EQ(full_adaptive.TotalBytes(), expected);

    // Sharded strategies never have a worse bottleneck than the baseline.
    EXPECT_LE(full_sharded.BottleneckBytes(), full_baseline.BottleneckBytes());
    EXPECT_LE(full_adaptive.BottleneckBytes(), full_baseline.BottleneckBytes());

    // Bottleneck is bounded below by the mean load.
    const Bytes mean = expected / p.dp;
    EXPECT_GE(full_sharded.BottleneckBytes(), mean);
}

TEST_P(ShardingProperty, PecTotalsMatchEq6ForAllK) {
    const auto p = GetParam();
    const ModelSpec spec = Gpt350M16E();
    const ModelStateInventory inv(spec, StateBytes{});
    const RankTopology topo({.dp = p.dp, .ep = p.ep, .tp = 1, .pp = 1},
                            p.gpus_per_node);
    ShardingPlanner planner(inv, topo, ShardingOptions{true, true, false});
    SequentialSelector selector(spec.num_experts);
    for (std::size_t k = 1; k <= spec.num_experts; k += 3) {
        std::vector<std::vector<ExpertId>> sel(spec.NumMoeLayers());
        for (std::size_t m = 0; m < sel.size(); ++m) {
            sel[m] = selector.Select(0, m, k);
        }
        EXPECT_EQ(planner.Plan(sel, sel).TotalBytes(),
                  PecCheckpointSize(spec, StateBytes{}, k))
            << "k=" << k;
    }
}

INSTANTIATE_TEST_SUITE_P(
    TopologyGrid, ShardingProperty,
    ::testing::Values(TopoCase{8, 8, 8}, TopoCase{16, 16, 8}, TopoCase{16, 8, 8},
                      TopoCase{16, 4, 8}, TopoCase{32, 16, 8}, TopoCase{32, 8, 4},
                      TopoCase{64, 16, 8}),
    [](const auto& info) {
        return "dp" + std::to_string(info.param.dp) + "ep" +
               std::to_string(info.param.ep) + "gpn" +
               std::to_string(info.param.gpus_per_node);
    });

// ---------- PLT ledger properties under random schedules ----------

class PltProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PltProperty, LostNeverExceedsRoutedAndPltInUnitRange) {
    Rng rng(GetParam());
    const std::size_t layers = 1 + rng.UniformInt(4);
    const std::size_t experts = 2 + rng.UniformInt(7);
    PltLedger ledger(layers, experts);

    std::size_t iteration = 0;
    std::size_t faults = 0;
    std::vector<std::size_t> checkpoints{0};

    for (int step = 0; step < 200; ++step) {
        // Route a random amount.
        for (std::size_t m = 0; m < layers; ++m) {
            std::vector<std::size_t> per(experts);
            std::size_t total = 0;
            for (auto& v : per) {
                v = rng.UniformInt(20);
                total += v;
            }
            ledger.RecordRouting(m, per, total);
        }
        ++iteration;
        if (rng.Uniform() < 0.25) {
            ledger.RecordCheckpointEvent(iteration);
            checkpoints.push_back(iteration);
        }
        if (rng.Uniform() < 0.08 && checkpoints.size() > 1) {
            const std::size_t restart = checkpoints.back();
            std::vector<std::vector<std::size_t>> recovered(
                layers, std::vector<std::size_t>(experts, restart));
            // Random subset of experts recovers from an older checkpoint.
            for (std::size_t m = 0; m < layers; ++m) {
                for (std::size_t e = 0; e < experts; ++e) {
                    if (rng.Uniform() < 0.5) {
                        recovered[m][e] =
                            checkpoints[rng.UniformInt(checkpoints.size())];
                    }
                }
            }
            ledger.OnFaultRecovery(restart, recovered);
            ++faults;
            iteration = restart;
            // Checkpoint list must drop entries after the restart.
            while (checkpoints.back() > restart) {
                checkpoints.pop_back();
            }
        }
    }
    const double plt = ledger.Plt();
    EXPECT_GE(plt, 0.0);
    // A single fault can lose at most the unique-token total (PLT <= 1);
    // repeated faults can re-lose replayed tokens, so the bound scales with
    // the fault count.
    EXPECT_LE(plt, static_cast<double>(faults) + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PltProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---------- Overhead model properties ----------

using OverheadParam = std::tuple<double, double>;  // (o_save, lambda)

class OverheadProperty : public ::testing::TestWithParam<OverheadParam> {};

TEST_P(OverheadProperty, OptimalIntervalBeatsNeighbours) {
    const auto [o_save, lambda] = GetParam();
    FaultToleranceModel m;
    m.i_total = 1e5;
    m.lambda = lambda;
    m.t_iter = 1.0;
    m.o_restart = 120.0;
    const double best = OptimalInterval(m, o_save);
    const double at_best = TotalCheckpointOverhead(m, o_save, best);
    for (double factor : {0.25, 0.5, 0.8, 1.25, 2.0, 4.0}) {
        EXPECT_LE(at_best, TotalCheckpointOverhead(m, o_save, best * factor) + 1e-6)
            << "factor " << factor;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OverheadProperty,
    ::testing::Combine(::testing::Values(0.5, 2.0, 10.0, 60.0),
                       ::testing::Values(1e-5, 1e-4, 1e-3)));

}  // namespace
}  // namespace moc
