/**
 * @file
 * Additional coverage: load-aware selection through the full checkpoint
 * system, store concurrency under parallel writers, serialization sweeps
 * over random shapes, classifier recovery semantics, and misc edge cases.
 */

#include <gtest/gtest.h>

#include <thread>

#include "core/moc_system.h"
#include "data/corpus.h"
#include "faults/trainer.h"
#include "nn/model.h"
#include "storage/memory_store.h"
#include "tensor/serialize.h"

namespace moc {
namespace {

LmConfig
TinyLm() {
    LmConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.hidden = 16;
    cfg.num_heads = 2;
    cfg.head_dim = 8;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 4;
    cfg.seed = 5;
    return cfg;
}

// ---------- Load-aware selection end-to-end ----------

TEST(LoadAwareSystem, PrioritizesBusiestExperts) {
    MoeTransformerLm model(TinyLm());
    RankTopology topo({.dp = 4, .ep = 4, .tp = 1, .pp = 1}, 2);
    MocSystemConfig cfg;
    cfg.pec.k_snapshot = 1;
    cfg.pec.k_persist = 1;
    cfg.pec.policy = SelectionPolicy::kLoadAware;
    cfg.i_ckpt = 4;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, model, topo, TinyLm().ToModelSpec(), extra);

    // Route heavily to expert 2 of every layer.
    const std::size_t layers = system.ledger().num_moe_layers();
    for (std::size_t m = 0; m < layers; ++m) {
        system.ledger().RecordRouting(m, {1, 1, 50, 1}, 53);
    }
    extra.iteration = 4;
    system.Checkpoint(4, extra);
    // Expert 2's state must now be persisted at iteration 4.
    for (std::size_t m = 0; m < layers; ++m) {
        const auto v = system.manifest().Latest(
            StoreLevel::kPersist, "moe/" + std::to_string(m) + "/expert/2/w");
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(v->iteration, 4U);
        // A lightly-used expert stays at the initial checkpoint.
        const auto v0 = system.manifest().Latest(
            StoreLevel::kPersist, "moe/" + std::to_string(m) + "/expert/0/w");
        ASSERT_TRUE(v0.has_value());
        EXPECT_EQ(v0->iteration, 0U);
    }
}

TEST(LoadAwareSystem, FullTrainingRunWorks) {
    CorpusConfig cc;
    cc.vocab_size = 32;
    cc.seed = 3;
    ZipfMarkovCorpus corpus(cc);
    LmBatchStream train(corpus, 4, 12, 0);
    LmBatchStream valid(corpus, 4, 12, 1);
    MoeTransformerLm model(TinyLm());
    LmTrainerConfig cfg;
    cfg.moc.pec.k_snapshot = 2;
    cfg.moc.pec.k_persist = 1;
    cfg.moc.pec.policy = SelectionPolicy::kLoadAware;
    cfg.moc.i_ckpt = 8;
    cfg.parallel = {.dp = 4, .ep = 4, .tp = 1, .pp = 1};
    cfg.gpus_per_node = 2;
    cfg.total_iterations = 48;
    cfg.adam.lr = 3e-3;
    auto injector = FaultInjector::At(26, 0);
    const auto log = RunFaultTolerantLmTraining(model, train, valid, cfg, injector);
    EXPECT_EQ(log.recoveries.size(), 1U);
    EXPECT_LT(log.final_eval_loss, 4.0);
}

// ---------- Store concurrency ----------

TEST(Concurrency, ParallelPutsAreConsistent) {
    MemoryStore store;
    constexpr int kThreads = 8;
    constexpr int kKeysPerThread = 200;
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&store, t] {
            for (int i = 0; i < kKeysPerThread; ++i) {
                const std::string key =
                    "k/" + std::to_string(t) + "/" + std::to_string(i);
                store.Put(key, Blob(16, static_cast<std::uint8_t>(t)));
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_EQ(store.Count(), static_cast<std::size_t>(kThreads * kKeysPerThread));
    EXPECT_EQ(store.TotalBytes(),
              static_cast<Bytes>(kThreads * kKeysPerThread * 16));
}

TEST(Concurrency, OverwriteRaceKeepsAccountingSane) {
    MemoryStore store;
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&store] {
            for (int i = 0; i < 500; ++i) {
                store.Put("hot", Blob(static_cast<std::size_t>(8 + i % 8), 0xEE));
            }
        });
    }
    for (auto& th : threads) {
        th.join();
    }
    EXPECT_EQ(store.Count(), 1U);
    const auto blob = store.Get("hot");
    ASSERT_TRUE(blob.has_value());
    EXPECT_EQ(store.TotalBytes(), blob->size());
}

TEST(Concurrency, ManifestParallelRecordAndQuery) {
    CheckpointManifest manifest;
    std::thread writer([&manifest] {
        for (std::size_t i = 1; i <= 500; ++i) {
            manifest.RecordSave(StoreLevel::kPersist, "k", i, 0, 10);
        }
    });
    std::thread reader([&manifest] {
        for (int i = 0; i < 500; ++i) {
            const auto v = manifest.Latest(StoreLevel::kPersist, "k");
            if (v) {
                EXPECT_GE(v->iteration, 1U);
                EXPECT_LE(v->iteration, 500U);
            }
        }
    });
    writer.join();
    reader.join();
    EXPECT_EQ(manifest.Latest(StoreLevel::kPersist, "k")->iteration, 500U);
}

// ---------- Serialization sweep ----------

class SerializeShapes
    : public ::testing::TestWithParam<std::vector<std::size_t>> {};

TEST_P(SerializeShapes, RoundTrip) {
    Rng rng(17);
    const auto t = Tensor::Randn(GetParam(), rng, 1.0F);
    const auto back = DeserializeTensor(SerializeTensor(t));
    EXPECT_EQ(back.shape(), t.shape());
    EXPECT_TRUE(back.AllClose(t, 0.0F));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SerializeShapes,
    ::testing::Values(std::vector<std::size_t>{1}, std::vector<std::size_t>{7},
                      std::vector<std::size_t>{3, 5},
                      std::vector<std::size_t>{1, 1, 1},
                      std::vector<std::size_t>{2, 3, 4},
                      std::vector<std::size_t>{64, 64}));

// ---------- Param-list round trip with optimizer moments ----------

TEST(ParamSerialization, OptimizerMomentsRoundTrip) {
    Rng rng(9);
    Parameter a("a", Tensor::Randn({4, 4}, rng, 1.0F));
    Parameter b("b", Tensor::Randn({8}, rng, 1.0F));
    a.adam_m() = Tensor::Randn({4, 4}, rng, 1.0F);
    a.adam_v() = Tensor::Randn({4, 4}, rng, 1.0F);
    b.adam_m() = Tensor::Randn({8}, rng, 1.0F);
    b.adam_v() = Tensor::Randn({8}, rng, 1.0F);
    const Blob blob = SerializeParamList({&a, &b}, /*weights=*/false);

    Parameter a2("a", Tensor({4, 4}));
    Parameter b2("b", Tensor({8}));
    DeserializeParamList(blob, {&a2, &b2}, /*weights=*/false);
    EXPECT_TRUE(a2.adam_m().AllClose(a.adam_m(), 0.0F));
    EXPECT_TRUE(a2.adam_v().AllClose(a.adam_v(), 0.0F));
    EXPECT_TRUE(b2.adam_m().AllClose(b.adam_m(), 0.0F));
}

TEST(ParamSerialization, ArityMismatchRejected) {
    Rng rng(10);
    Parameter a("a", Tensor::Randn({4}, rng, 1.0F));
    const Blob blob = SerializeParamList({&a}, true);
    Parameter b("b", Tensor({4}));
    Parameter c("c", Tensor({4}));
    EXPECT_THROW(DeserializeParamList(blob, {&b, &c}, true),
                 std::invalid_argument);
}

TEST(ParamSerialization, ShapeMismatchRejected) {
    Rng rng(11);
    Parameter a("a", Tensor::Randn({4}, rng, 1.0F));
    const Blob blob = SerializeParamList({&a}, true);
    Parameter wrong("w", Tensor({5}));
    EXPECT_THROW(DeserializeParamList(blob, {&wrong}, true),
                 std::invalid_argument);
}

// ---------- ExtraState edge cases ----------

TEST(ExtraStateSerialization, RoundTripWithCachedGaussian) {
    Rng rng(12);
    rng.Gaussian();  // arm the cached second sample
    ExtraState extra{123, 456, rng.GetState()};
    const ExtraState back = DeserializeExtraState(SerializeExtraState(extra));
    EXPECT_EQ(back.iteration, 123U);
    EXPECT_EQ(back.adam_step, 456U);
    Rng a(0);
    Rng b(0);
    a.SetState(extra.gating_rng);
    b.SetState(back.gating_rng);
    EXPECT_DOUBLE_EQ(a.Gaussian(), b.Gaussian());
    EXPECT_EQ(a.Next(), b.Next());
}

TEST(ExtraStateSerialization, TruncatedBlobRejected) {
    ExtraState extra{};
    Blob blob = SerializeExtraState(extra);
    blob.resize(blob.size() - 4);
    EXPECT_THROW(DeserializeExtraState(blob), std::invalid_argument);
}

// ---------- Multiple node failures ----------

TEST(MultiNodeFailure, AllNodesDownFallsBackToStorage) {
    MoeTransformerLm model(TinyLm());
    RankTopology topo({.dp = 4, .ep = 4, .tp = 1, .pp = 1}, 2);
    MocSystemConfig cfg;
    cfg.pec.k_snapshot = 4;
    cfg.pec.k_persist = 1;
    cfg.i_ckpt = 4;
    cfg.two_level_recovery = true;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(cfg, model, topo, TinyLm().ToModelSpec(), extra);
    extra.iteration = 4;
    system.Checkpoint(4, extra);
    // Both nodes die: two-level recovery degrades to pure storage recovery.
    const auto report = system.RecoverFromFault({0, 1});
    EXPECT_EQ(report.plan.bytes_from_memory, 0U);
    EXPECT_GT(report.plan.bytes_from_storage, 0U);
    EXPECT_EQ(report.plan.restart_iteration, 4U);
}

}  // namespace
}  // namespace moc
