/**
 * @file
 * The two-phase asynchronous checkpoint pipeline in isolation: real threads,
 * triple buffering, and measurable overlap (the systems layer behind the
 * "MoC-Async" results).
 *
 * A synthetic training loop produces a state blob each "iteration". The
 * blocking baseline pays snapshot + persist inline; the asynchronous agent
 * hides the snapshot under the next iteration's compute and streams persists
 * in the background through the triple buffer. Prints both timelines.
 */

#include <chrono>
#include <cstdio>
#include <thread>

#include "ckpt/async_agent.h"
#include "ckpt/blocking.h"
#include "obs/export.h"
#include "util/table.h"

using namespace moc;

namespace {

constexpr std::size_t kIterations = 12;
constexpr std::size_t kCkptEvery = 3;
constexpr std::size_t kStateBytes = 400000;  // 400 KB "model state"
constexpr double kFbMillis = 25.0;           // simulated F&B compute

/** Pretend forward/backward work. */
void
FakeCompute() {
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(kFbMillis));
}

Blob
FakeState(std::uint8_t fill) {
    return Blob(kStateBytes, fill);
}

}  // namespace

int
main(int argc, char** argv) {
    const obs::ObsExportGuard obs_guard(argc, argv);
    // Cost model: 10 MB/s snapshot, 4 MB/s persist -> a 400 KB checkpoint
    // costs 40 ms to snapshot and 100 ms to persist. The 25 ms F&B window
    // cannot fully hide the snapshot, so the agent reports partial stalls —
    // exactly the regime where PEC would shrink the payload.
    StorageIoModel io;
    io.write_bandwidth = 4e6;
    io.latency = 0.0;
    PersistentStore store(io);

    WallClock clock;

    // --- Blocking baseline ---
    BlockingCheckpointer blocking(store, "baseline", 10e6, 4e6);
    Seconds blocking_total = 0.0;
    Seconds blocking_overhead = 0.0;
    {
        const Seconds start = clock.Now();
        for (std::size_t i = 1; i <= kIterations; ++i) {
            FakeCompute();
            if (i % kCkptEvery == 0) {
                blocking_overhead +=
                    blocking.Checkpoint(FakeState(static_cast<std::uint8_t>(i)), i);
            }
        }
        blocking_total = clock.Now() - start;
    }

    // --- Asynchronous agent with triple buffering ---
    AgentCostModel cost;
    cost.snapshot_bandwidth = 10e6;
    cost.persist_bandwidth = 4e6;
    AsyncCheckpointAgent agent(store, "async", cost);
    Seconds async_total = 0.0;
    Seconds async_stalls = 0.0;
    {
        const Seconds start = clock.Now();
        for (std::size_t i = 1; i <= kIterations; ++i) {
            FakeCompute();
            // Before the weight update, the previous snapshot must be done.
            async_stalls += agent.WaitSnapshotComplete();
            if (i % kCkptEvery == 0) {
                agent.RequestCheckpoint(FakeState(static_cast<std::uint8_t>(i)), i);
            }
        }
        agent.WaitSnapshotComplete();
        async_total = clock.Now() - start;
    }
    agent.Drain();
    const AgentStats stats = agent.stats();

    Table t({"pipeline", "wall time (s)", "train-visible overhead (s)",
             "checkpoints persisted"});
    t.AddRow({"blocking baseline", Table::Num(blocking_total, 3),
              Table::Num(blocking_overhead, 3),
              std::to_string(kIterations / kCkptEvery)});
    t.AddRow({"async triple-buffer", Table::Num(async_total, 3),
              Table::Num(async_stalls, 3),
              std::to_string(stats.checkpoints_persisted)});
    std::printf("%s", t.ToString().c_str());
    std::printf("agent: %zu snapshot stall(s) totalling %.3f s; %s snapshotted, "
                "%s persisted; latest persisted iteration = %zu\n",
                stats.snapshot_stalls, stats.total_stall_time,
                FormatBytes(stats.bytes_snapshotted).c_str(),
                FormatBytes(stats.bytes_persisted).c_str(),
                agent.LatestPersistedIteration().value_or(0));
    std::printf("expected: both pipelines persist every checkpoint, but the\n"
                "async agent's train-visible overhead is a fraction of the\n"
                "blocking baseline's.\n");
    return 0;
}
