/**
 * @file
 * Capacity-planning study with the analytical simulator: given a deployment
 * (GPU model, count, parallelism, model size), compare the three
 * checkpointing methods and let the adaptive configurator pick
 * (K_snapshot, K_persist, I_ckpt) for two-level PEC.
 *
 * Usage: scaling_study [gpus] [a800|h100] [small|medium|large]
 * Defaults: 256 a800 medium.
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/adaptive.h"
#include "core/overhead.h"
#include "dist/presets.h"
#include "sim/perf_model.h"
#include "sim/timeline.h"
#include "util/table.h"
#include "obs/export.h"

using namespace moc;

int
main(int argc, char** argv) {
    // Strips --metrics-out/--trace-out from argv before the positionals
    // below are read; exports at exit.
    const obs::ObsExportGuard obs_guard(argc, argv);
    const std::size_t gpus = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 256;
    const std::string gpu_name = argc > 2 ? argv[2] : "a800";
    const std::string size = argc > 3 ? argv[3] : "medium";
    if (gpus == 0) {
        std::fprintf(stderr, "usage: %s [gpus] [a800|h100] [small|medium|large]\n",
                     argv[0]);
        return 1;
    }

    TrainingSetup setup;
    setup.model = LlamaMoeSim(size, gpus);  // one expert per GPU per MoE layer
    setup.parallel = {.dp = gpus, .ep = gpus, .tp = 1, .pp = 1};
    setup.gpus_per_node = 8;
    setup.gpu = gpu_name == "h100" ? H100() : A800();
    setup.batch_per_gpu = 2;
    setup.seq_len = 2048;
    const PerfModel model(setup);

    std::printf("deployment: %zu x %s, %s model (%.2fB params), DP=EP=%zu\n",
                gpus, setup.gpu.name.c_str(), size.c_str(),
                static_cast<double>(setup.model.TotalParams()) / 1e9, gpus);
    std::printf("T_F&B = %.3f s (compute %.3f + all-to-all %.3f + grad sync "
                "%.3f), T_update = %.3f s\n\n",
                model.FbTime(), model.ComputeTime(), model.AllToAllTime(),
                model.GradSyncTime(), model.UpdateTime());

    Table t({"method", "snapshot (s)", "persist (s)", "O_save (s)",
             "iteration (s)", "I_ckpt_min"});
    for (const auto& m : SimulateAllMethods(model, setup.model.num_experts / 8)) {
        t.AddRow({m.method, Table::Num(m.t_snapshot, 3), Table::Num(m.t_persist, 3),
                  Table::Num(m.o_save, 4), Table::Num(m.iteration, 3),
                  Table::Num(m.i_ckpt_min, 1)});
    }
    std::printf("%s\n", t.ToString().c_str());

    // Adaptive configuration (Section 5.3): feed the simulator's numbers in.
    AdaptiveInputs in;
    in.t_fb = model.FbTime();
    in.t_iter = model.IterTime();
    in.snapshot_bandwidth = setup.gpu.snapshot_bandwidth;
    in.persist_bandwidth = setup.persist_bandwidth;
    // Exact per-unit payloads from the inventory: one expert's state on its
    // owner rank (split across EP-group replicas) and the per-rank share of
    // the K-independent non-expert state.
    const RankTopology& topo = model.topology();
    const Bytes per_param = setup.bytes.weight + setup.bytes.optim;
    in.expert_unit_bytes = static_cast<Bytes>(setup.model.FfnParams()) *
                           per_param / topo.NumEpGroups();
    in.nonexpert_bytes_per_rank = static_cast<Bytes>(
        setup.model.NonExpertParams()) * per_param / setup.parallel.dp;
    in.num_moe_layers = setup.model.NumMoeLayers();
    in.num_experts = setup.model.num_experts;
    in.ep = setup.parallel.ep;
    const AdaptiveDecision decision = ConfigureTwoLevelPec(in, /*k_persist=*/1);

    std::printf("adaptive two-level PEC recommendation:\n");
    std::printf("  K_snapshot = %zu of %zu (snapshot %.3f s %s the %.3f s F&B "
                "window)\n",
                decision.k_snapshot, in.num_experts, decision.t_snapshot,
                decision.snapshot_overflows ? "EXCEEDS" : "fits",
                in.t_fb);
    std::printf("  K_persist  = %zu (persist %.3f s)\n", decision.k_persist,
                decision.t_persist);
    std::printf("  I_ckpt_min = %zu iterations\n", decision.i_ckpt_min);

    // Total-overhead outlook at a typical large-cluster failure rate.
    FaultToleranceModel ft;
    ft.i_total = 100000.0;
    ft.lambda = 1e-4;
    ft.t_iter = model.IterTime();
    ft.o_restart = 300.0;
    const auto full = SimulateMethod(model, CkptMethod::kBaseline, 1);
    const double i_full = OptimalInterval(ft, full.o_save);
    const double i_moc = std::max<double>(decision.i_ckpt_min,
                                          OptimalInterval(ft, 0.0));
    std::printf("\n100k-iteration outlook at lambda = 1e-4 faults/iter:\n");
    std::printf("  Full blocking @ I=%.0f: %.1f h of fault-tolerance overhead\n",
                i_full, TotalCheckpointOverhead(ft, full.o_save, i_full) / 3600.0);
    std::printf("  MoC-Async    @ I=%.0f: %.1f h\n", i_moc,
                TotalCheckpointOverhead(ft, 0.0, i_moc) / 3600.0);
    return 0;
}
