/**
 * @file
 * The multi-process cluster gauntlet: N real rank processes and a
 * coordinator process speaking the checkpoint barrier protocol
 * (ckpt/rank_coordinator.h) over TCP (net/socket_transport.h), against a
 * shared on-disk checkpoint directory. This is the driver behind the CI
 * transport-gauntlet job; `tools/moc_launcher` forks the fleet:
 *
 *   moc_launcher --binary cluster_procs --ranks 3 --events 3 \
 *       --ckpt-dir /tmp/gauntlet --fault kill:rank=1:event=2:phase=persist:after=3
 *
 * Per checkpoint event the coordinator broadcasts kCkptBegin; each rank
 * persists its shards under versioned keys through a ResilientStore
 * (verified writes), then reports kRankDone with per-shard integrity
 * records. The coordinator seals the generation in the manifest only when
 * every rank's every shard verified (the recovery invariant) and writes
 * the manifest for offline audit (`moc_cli fsck`).
 *
 * The `--fault` spec (src/faults/proc_faults.h) makes a rank SIGKILL
 * (vanish: peer sees EOF) or SIGSTOP (freeze: peer sees heartbeat
 * silence) itself at a chosen point. Either way the coordinator journals
 * `peer_death`, leaves the generation unsealed, stops checkpointing, and
 * replans recovery from the newest *sealed* generation — never the torn
 * one.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/cluster_engine.h"
#include "ckpt/rank_coordinator.h"
#include "core/cluster_recovery.h"
#include "faults/proc_faults.h"
#include "net/socket_transport.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/trace.h"
#include "storage/file_store.h"
#include "storage/resilient_store.h"
#include "util/crc32.h"
#include "util/table.h"

using namespace moc;

namespace {

/** `--name value` lookup over argv (after ObsExportGuard stripped its own). */
const char*
FlagStr(int argc, char** argv, const char* name, const char* fallback) {
    const std::string flag = std::string("--") + name;
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag) {
            return argv[i + 1];
        }
    }
    return fallback;
}

double
FlagDouble(int argc, char** argv, const char* name, double fallback) {
    const char* value = FlagStr(argc, argv, name, nullptr);
    return value != nullptr ? std::atof(value) : fallback;
}

std::size_t
FlagSize(int argc, char** argv, const char* name, std::size_t fallback) {
    return static_cast<std::size_t>(
        FlagDouble(argc, argv, name, static_cast<double>(fallback)));
}

/** Every `--fault <spec>` occurrence. */
std::vector<ProcFaultSpec>
FlagFaults(int argc, char** argv) {
    std::vector<ProcFaultSpec> specs;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--fault") {
            specs.push_back(ParseProcFaultSpec(argv[i + 1]));
        }
    }
    return specs;
}

/** The shard plan every process derives identically from the rank count. */
ShardPlan
BuildGauntletPlan(std::size_t ranks) {
    ShardPlan plan(ranks);
    for (RankId r = 0; r < ranks; ++r) {
        plan.Add(r, {"dense/" + std::to_string(r), 64 * kMiB, false});
        for (std::size_t e = 0; e < 4; ++e) {
            const std::size_t id = r * 4 + e;
            plan.Add(r, {"expert/" + std::to_string(id) + "/w", 16 * kMiB,
                         false});
        }
    }
    return plan;
}

/** Atomically publishes the coordinator's bound port for the ranks. */
void
WritePortFile(const std::string& path, std::uint16_t port) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        out << port << "\n";
    }
    std::filesystem::rename(tmp, path);
}

/** Polls the port file until the coordinator published it. */
std::uint16_t
AwaitPortFile(const std::string& path, Seconds timeout_s) {
    const WallClock clock;
    const Seconds deadline = clock.Now() + timeout_s;
    while (clock.Now() < deadline) {
        std::ifstream in(path);
        unsigned port = 0;
        if (in >> port && port > 0 && port <= 65535) {
            return static_cast<std::uint16_t>(port);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return 0;
}

int
RunCoordinator(std::size_t ranks, std::size_t events,
               const std::string& ckpt_dir, const std::string& port_file,
               const net::SocketOptions& net_opts, Seconds join_timeout_s,
               Seconds barrier_deadline_s) {
    FileStore store(ckpt_dir);
    auto transport =
        net::SocketTransport::Listen(0, net::kCoordinatorPeer, net_opts);
    WritePortFile(port_file, transport->port());
    std::printf("coordinator: listening on 127.0.0.1:%u, waiting for %zu "
                "rank(s)\n",
                transport->port(), ranks);
    if (!transport->WaitForPeers(ranks, join_timeout_s)) {
        std::fprintf(stderr, "coordinator: only %zu/%zu ranks joined\n",
                     transport->Peers().size(), ranks);
        return 1;
    }

    std::vector<net::PeerId> participants;
    for (std::size_t r = 0; r < ranks; ++r) {
        participants.push_back(static_cast<net::PeerId>(r));
    }
    CheckpointCoordinator coordinator(*transport, std::move(participants));
    CheckpointManifest manifest;

    auto write_manifest = [&store, &manifest]() {
        const std::string json = manifest.ToJson();
        store.Put("meta/manifest", Blob(json.begin(), json.end()));
    };

    Table t({"generation", "sealed", "reports", "dead", "wait (s)"});
    bool death = false;
    for (std::size_t event = 1; event <= events && !death; ++event) {
        obs::TraceContext ctx;
        ctx.generation = event;
        ctx.iteration = event;
        ctx.phase = "barrier";
        const obs::TraceContextScope scope(ctx);
        coordinator.BeginGeneration(event, ctx);
        WallClock clock;
        const Seconds wait_start = clock.Now();
        BarrierResult barrier;
        {
            const obs::TraceSpan span("net.barrier.wait", "net");
            barrier = coordinator.AwaitReports(event, barrier_deadline_s);
        }
        RecordReports(manifest, barrier);
        const bool sealed = SealIfComplete(manifest, event, barrier);
        write_manifest();
        t.AddRow({std::to_string(event), sealed ? "yes" : "no",
                  std::to_string(barrier.reports.size()),
                  std::to_string(barrier.dead.size()),
                  Table::Num(clock.Now() - wait_start, 3)});
        if (!barrier.dead.empty() || barrier.timed_out) {
            // The recovery invariant in action: once a rank is dead the
            // cluster stops advancing checkpoints — later generations
            // could never seal (a participant is missing), and piling up
            // unsealed generations only obscures the restart target.
            death = true;
        }
    }
    coordinator.Shutdown();
    std::printf("%s", t.ToString().c_str());

    std::size_t deaths_journaled = 0;
    for (const auto& e : obs::EventJournal::Instance().Collect()) {
        deaths_journaled += e.kind == obs::EventKind::kPeerDeath ? 1 : 0;
    }
    std::printf("peer_death events journaled: %zu\n", deaths_journaled);

    // Replan restore from the newest sealed generation. A clean run
    // restores the last event; a faulted run proves the torn generation
    // was skipped.
    const auto plan = PlanClusterRestore(manifest);
    if (!plan) {
        std::fprintf(stderr, "coordinator: no sealed generation to restore "
                             "from\n");
        return 1;
    }
    const ClusterRestoreResult restored =
        ExecuteClusterRestore(manifest, store, *plan);
    std::printf("recovered generation=%zu shards=%zu damaged=%zu "
                "missing=%zu degraded=%zu\n",
                restored.generation, restored.shards_restored,
                restored.damaged.size(), plan->missing.size(),
                restored.degraded.size());
    const bool ok = restored.damaged.empty() && plan->missing.empty() &&
                    restored.shards_restored > 0;
    std::printf("gauntlet: %s\n", ok ? "OK" : "FAILED");
    return ok ? 0 : 1;
}

int
RunRank(std::size_t rank, std::size_t ranks, const std::string& ckpt_dir,
        const std::string& port_file, const net::SocketOptions& net_opts,
        Seconds join_timeout_s, std::vector<ProcFaultSpec> fault_specs) {
    const std::uint16_t port = AwaitPortFile(port_file, join_timeout_s);
    if (port == 0) {
        std::fprintf(stderr, "rank %zu: coordinator port never appeared\n",
                     rank);
        return 1;
    }
    auto transport = net::SocketTransport::Connect(
        "127.0.0.1", port, static_cast<net::PeerId>(rank), net_opts);

    FileStore base(ckpt_dir);
    ResilientStore store(base);
    const ShardPlan plan = BuildGauntletPlan(ranks);
    ProcFaultSchedule faults(std::move(fault_specs), rank);
    RankParticipant participant(*transport);

    while (true) {
        const auto begin = participant.AwaitBegin(join_timeout_s);
        if (!begin) {
            std::fprintf(stderr, "rank %zu: no begin within deadline\n",
                         rank);
            return 1;
        }
        if (begin->shutdown) {
            // Announce the disconnect so the coordinator retires this
            // connection instead of declaring a death on the EOF.
            transport->Send(net::kCoordinatorPeer, net::MsgType::kGoodbye,
                            {});
            break;
        }
        const auto event = static_cast<std::size_t>(begin->iteration);
        obs::TraceContext ctx;
        ctx.generation = begin->ctx.generation;
        ctx.iteration = begin->iteration;
        ctx.rank = static_cast<std::int32_t>(rank);
        ctx.phase = "persist";
        const obs::TraceContextScope scope(ctx);
        const obs::TraceSpan span("gauntlet.persist", "cluster");

        std::vector<ShardReport> reports;
        bool ok = true;
        std::size_t shards_done = 0;
        for (const auto& item : plan.Items(rank)) {
            // The fault schedule fires *between* shard writes, so a kill
            // mid-generation leaves exactly `after` durable shards — a
            // genuinely torn generation for fsck to find.
            faults.Poll(event, "persist", shards_done);
            ShardReport report;
            report.key = "rank" + std::to_string(rank) + "/" + item.key;
            report.iteration = event;
            const Blob blob = SyntheticShardBytes(item, event);
            report.bytes = blob.size();
            report.crc = Crc32c(blob.data(), blob.size());
            try {
                store.Put(VersionedShardKey(report.key, event), blob);
                report.verified = true;  // ResilientStore read-back verified
            } catch (const StoreError&) {
                report.failed = true;
                ok = false;
            }
            reports.push_back(std::move(report));
            ++shards_done;
        }
        faults.Poll(event, "barrier", shards_done);
        participant.SendDone(begin->iteration, std::move(reports), ok, ctx);
    }
    std::printf("rank %zu: shutdown after clean run\n", rank);
    return 0;
}

}  // namespace

int
main(int argc, char** argv) {
    const obs::ObsExportGuard obs_guard(argc, argv);
    const std::string role = FlagStr(argc, argv, "role", "");
    const std::size_t ranks = FlagSize(argc, argv, "ranks", 3);
    const std::size_t events = FlagSize(argc, argv, "events", 3);
    const std::size_t rank = FlagSize(argc, argv, "rank", 0);
    const std::string ckpt_dir =
        FlagStr(argc, argv, "ckpt-dir", "/tmp/moc_gauntlet");
    // Sibling of the checkpoint dir, NOT inside it: fsck scrubs every file
    // under the store root and would flag a CRC-less port file as damage.
    const std::string default_port_file = ckpt_dir + ".port";
    const std::string port_file =
        FlagStr(argc, argv, "port-file", default_port_file.c_str());
    const double join_timeout_s =
        FlagDouble(argc, argv, "join-timeout-s", 30.0);
    const double barrier_deadline_s =
        FlagDouble(argc, argv, "barrier-deadline-s", 10.0);

    net::SocketOptions net_opts;
    net_opts.heartbeat.interval_s =
        FlagDouble(argc, argv, "hb-interval-s", 0.05);
    net_opts.heartbeat.miss_limit = FlagSize(argc, argv, "hb-miss", 5);

    if (role != "coordinator" && role != "rank") {
        std::printf(
            "usage: cluster_procs --role coordinator|rank [--rank R]\n"
            "    [--ranks N] [--events N] [--ckpt-dir DIR] [--port-file F]\n"
            "    [--hb-interval-s S] [--hb-miss N] [--barrier-deadline-s S]\n"
            "    [--join-timeout-s S] [--fault SPEC]...\n"
            "  fault SPEC: kill|stop:rank=R:event=E[:phase=persist|barrier]"
            "[:after=N]\n"
            "(normally launched as a fleet by tools/moc_launcher)\n");
        return 2;
    }
    if (ranks == 0 || events == 0 || (role == "rank" && rank >= ranks)) {
        std::fprintf(stderr, "cluster_procs: bad --ranks/--events/--rank\n");
        return 2;
    }

    try {
        if (role == "coordinator") {
            return RunCoordinator(ranks, events, ckpt_dir, port_file,
                                  net_opts, join_timeout_s,
                                  barrier_deadline_s);
        }
        return RunRank(rank, ranks, ckpt_dir, port_file, net_opts,
                       join_timeout_s, FlagFaults(argc, argv));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "cluster_procs(%s): %s\n", role.c_str(),
                     e.what());
        return 1;
    }
}
