/**
 * @file
 * The multi-process cluster gauntlet: N real rank processes and a
 * coordinator process speaking the checkpoint barrier protocol
 * (ckpt/rank_coordinator.h) over TCP (net/socket_transport.h), against a
 * shared on-disk checkpoint directory. This is the driver behind the CI
 * transport-gauntlet job; `tools/moc_launcher` forks the fleet:
 *
 *   moc_launcher --binary cluster_procs --ranks 3 --events 3 \
 *       --ckpt-dir /tmp/gauntlet --fault kill:rank=1:event=2:phase=persist:after=3
 *
 * Per checkpoint event the coordinator broadcasts kCkptBegin; each rank
 * persists its shards under versioned keys through a ResilientStore
 * (verified writes), then reports kRankDone with per-shard integrity
 * records. The coordinator seals the generation in the manifest only when
 * every rank's every shard verified (the recovery invariant) and writes
 * the manifest for offline audit (`moc_cli fsck`).
 *
 * The `--fault` spec (src/faults/proc_faults.h) makes a rank SIGKILL
 * (vanish: peer sees EOF) or SIGSTOP (freeze: peer sees heartbeat
 * silence) itself at a chosen point. Either way the coordinator journals
 * `peer_death`, leaves the generation unsealed, stops checkpointing, and
 * replans recovery from the newest *sealed* generation — never the torn
 * one.
 *
 * The cluster observability plane rides the same fleet
 * (docs/OBSERVABILITY.md, "Cluster plane"): each rank streams kTelemetry
 * samples from a background publisher (net/telemetry.h) and republishes at
 * phase edges; the coordinator taps every barrier message into
 * obs::ClusterAggregator, which flags stragglers *during* the run.
 * `--ballast-rank R --ballast-ms M` makes rank R sleep M ms between shard
 * writes — a deliberate straggler for the detector to catch. Ranks
 * re-export their observability artifacts after every generation, so a
 * SIGKILL'd rank still leaves a (possibly torn) journal for the
 * launcher's post-teardown merge.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "ckpt/cluster_engine.h"
#include "ckpt/membership.h"
#include "ckpt/rank_coordinator.h"
#include "core/cluster_recovery.h"
#include "core/placement.h"
#include "faults/proc_faults.h"
#include "net/socket_transport.h"
#include "net/telemetry.h"
#include "obs/cluster_view.h"
#include "obs/export.h"
#include "obs/http_endpoint.h"
#include "obs/journal.h"
#include "obs/run_meta.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "storage/file_store.h"
#include "storage/resilient_store.h"
#include "util/bytes.h"
#include "util/crc32.h"
#include "util/table.h"

using namespace moc;

namespace {

/** `--name value` lookup over argv (after ObsExportGuard stripped its own). */
const char*
FlagStr(int argc, char** argv, const char* name, const char* fallback) {
    const std::string flag = std::string("--") + name;
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag) {
            return argv[i + 1];
        }
    }
    return fallback;
}

double
FlagDouble(int argc, char** argv, const char* name, double fallback) {
    const char* value = FlagStr(argc, argv, name, nullptr);
    return value != nullptr ? std::atof(value) : fallback;
}

std::size_t
FlagSize(int argc, char** argv, const char* name, std::size_t fallback) {
    return static_cast<std::size_t>(
        FlagDouble(argc, argv, name, static_cast<double>(fallback)));
}

/** Every `--fault <spec>` occurrence. */
std::vector<ProcFaultSpec>
FlagFaults(int argc, char** argv) {
    std::vector<ProcFaultSpec> specs;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::string(argv[i]) == "--fault") {
            specs.push_back(ParseProcFaultSpec(argv[i + 1]));
        }
    }
    return specs;
}

/** The shard plan every process derives identically from the rank count. */
ShardPlan
BuildGauntletPlan(std::size_t ranks) {
    ShardPlan plan(ranks);
    for (RankId r = 0; r < ranks; ++r) {
        plan.Add(r, {"dense/" + std::to_string(r), 64 * kMiB, false});
        for (std::size_t e = 0; e < 4; ++e) {
            const std::size_t id = r * 4 + e;
            plan.Add(r, {"expert/" + std::to_string(id) + "/w", 16 * kMiB,
                         false});
        }
    }
    return plan;
}

/**
 * The synthetic expert grid of the elastic gauntlet: four experts per
 * initial rank, 16 MiB each, with a deterministic hotness ramp so the
 * load-aware solver has real imbalance to chew on.
 */
std::vector<ExpertSpec>
GauntletExperts(std::size_t ranks) {
    std::vector<ExpertSpec> experts;
    experts.reserve(ranks * 4);
    for (std::size_t id = 0; id < ranks * 4; ++id) {
        ExpertSpec e;
        e.id = id;
        e.bytes = 16 * kMiB;
        e.load = 1.0 + static_cast<double>(id % 5);
        experts.push_back(e);
    }
    return experts;
}

/** The pre-elastic layout: expert id lives on rank id/4 (BuildGauntletPlan). */
std::map<std::size_t, std::vector<std::size_t>>
InitialAssignments(std::size_t ranks) {
    std::map<std::size_t, std::vector<std::size_t>> assignments;
    for (std::size_t id = 0; id < ranks * 4; ++id) {
        assignments[id] = {id / 4};
    }
    return assignments;
}

/** Shard items rank @p rank persists under @p placement (elastic mode). */
std::vector<ShardItem>
ElasticItems(std::size_t rank, const PlacementPlan& placement) {
    std::vector<ShardItem> items;
    items.push_back({"dense/" + std::to_string(rank), 64 * kMiB, false});
    for (const auto& [id, hosts] : placement.assignments) {
        for (const std::size_t host : hosts) {
            if (host == rank) {
                items.push_back({"expert/" + std::to_string(id) + "/w",
                                 16 * kMiB, false});
            }
        }
    }
    return items;
}

/** The shard key an expert's state lives under on a given rank. */
std::string
ExpertShardKey(std::size_t rank, std::size_t expert) {
    return "rank" + std::to_string(rank) + "/expert/" +
           std::to_string(expert) + "/w";
}

/** Atomically publishes the coordinator's bound port for the ranks. */
void
WritePortFile(const std::string& path, std::uint16_t port) {
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::trunc);
        out << port << "\n";
    }
    std::filesystem::rename(tmp, path);
}

/** Polls the port file until the coordinator published it. */
std::uint16_t
AwaitPortFile(const std::string& path, Seconds timeout_s) {
    const WallClock clock;
    const Seconds deadline = clock.Now() + timeout_s;
    while (clock.Now() < deadline) {
        std::ifstream in(path);
        unsigned port = 0;
        if (in >> port && port > 0 && port <= 65535) {
            return static_cast<std::uint16_t>(port);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return 0;
}

/** Live-endpoint wiring shared by both coordinator variants. */
struct LiveEndpointConfig {
    int port = -1;          ///< -1 = disabled; 0 = bind an ephemeral port
    std::string port_file;  ///< published atomically, like the transport's
    double linger_s = 0.0;  ///< keep serving this long after the run ends
};

/**
 * Binds the embedded scrape server (obs/http_endpoint.h) when asked, prints
 * the URL for humans, and publishes the port for CI — before the ranks
 * join, so a scraper can watch the whole run including admission.
 */
std::unique_ptr<obs::HttpEndpoint>
StartLiveEndpoint(const LiveEndpointConfig& cfg) {
    if (cfg.port < 0) {
        return nullptr;
    }
    obs::HttpOptions opts;
    opts.port = static_cast<std::uint16_t>(cfg.port);
    auto endpoint = std::make_unique<obs::HttpEndpoint>(opts);
    endpoint->Start();
    std::printf("live endpoint: http://127.0.0.1:%u\n", endpoint->port());
    std::fflush(stdout);
    if (!cfg.port_file.empty()) {
        WritePortFile(cfg.port_file, endpoint->port());
    }
    return endpoint;
}

/**
 * One /series point per barrier: the generic capture plus the
 * coordinator's authoritative byte totals from the barrier reports.
 */
void
SampleBarrier(std::size_t event, double wait_s, std::uint64_t bytes_total,
              std::uint64_t bytes_saved) {
    obs::IterationPoint point = obs::CapturePoint(event, wait_s);
    point.bytes_persisted = bytes_total;
    point.bytes_saved = bytes_saved;
    obs::TimeSeriesRing::Instance().Append(point);
}

/** Folds one barrier's shard reports into the cumulative byte totals. */
void
AccumulateBarrierBytes(const BarrierResult& barrier,
                       std::uint64_t& bytes_total,
                       std::uint64_t& bytes_saved) {
    for (const auto& done : barrier.reports) {
        for (const auto& shard : done.reports) {
            if (shard.deduped) {
                bytes_saved += shard.bytes;
            } else {
                bytes_total += shard.bytes;
            }
        }
    }
}

/**
 * Holds the endpoint open after the run so a scraper (or the CI gauntlet)
 * can read the post-mortem /healthz and compare /metrics against the
 * teardown export. The transport is already shut down by now; only the
 * scrape threads are still breathing.
 */
void
LingerLiveEndpoint(const obs::HttpEndpoint* endpoint, double linger_s) {
    if (endpoint == nullptr || linger_s <= 0.0) {
        return;
    }
    std::printf("live endpoint: lingering %.1fs for scrapers\n", linger_s);
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::duration<double>(linger_s));
}

int
RunCoordinator(std::size_t ranks, std::size_t events,
               const std::string& ckpt_dir, const std::string& port_file,
               const net::SocketOptions& net_opts, Seconds join_timeout_s,
               Seconds barrier_deadline_s, const LiveEndpointConfig& live) {
    FileStore store(ckpt_dir);
    const auto endpoint = StartLiveEndpoint(live);
    auto transport =
        net::SocketTransport::Listen(0, net::kCoordinatorPeer, net_opts);
    WritePortFile(port_file, transport->port());
    std::printf("coordinator: listening on 127.0.0.1:%u, waiting for %zu "
                "rank(s)\n",
                transport->port(), ranks);
    if (!transport->WaitForPeers(ranks, join_timeout_s)) {
        std::fprintf(stderr, "coordinator: only %zu/%zu ranks joined\n",
                     transport->Peers().size(), ranks);
        return 1;
    }

    std::vector<net::PeerId> participants;
    for (std::size_t r = 0; r < ranks; ++r) {
        participants.push_back(static_cast<net::PeerId>(r));
    }
    CheckpointCoordinator coordinator(*transport, std::move(participants));
    // The cluster plane taps every barrier message: kTelemetry feeds the
    // aggregator (straggler detection fires here, DURING the run),
    // kPeerDeath folds transport verdicts into the health view.
    obs::ClusterAggregator& cluster = obs::ClusterAggregator::Instance();
    coordinator.SetMessageObserver([&cluster](const net::Message& msg) {
        if (msg.type == net::MsgType::kTelemetry) {
            try {
                cluster.Observe(
                    net::DecodeTelemetry(msg.payload),
                    static_cast<std::int64_t>(obs::Tracer::NowNs()));
            } catch (const std::exception&) {
                // A truncated frame from a dying rank; liveness is the
                // transport's job, not the telemetry decoder's.
            }
        } else if (msg.type == net::MsgType::kPeerDeath) {
            cluster.ObservePeerDeath(static_cast<std::int32_t>(msg.from),
                                     "transport");
        }
    });
    CheckpointManifest manifest;

    auto write_manifest = [&store, &manifest]() {
        const std::string json = manifest.ToJson();
        store.Put("meta/manifest", Blob(json.begin(), json.end()));
    };

    Table t({"generation", "sealed", "reports", "dead", "wait (s)"});
    std::uint64_t bytes_total = 0;
    std::uint64_t bytes_saved = 0;
    bool death = false;
    for (std::size_t event = 1; event <= events && !death; ++event) {
        obs::TraceContext ctx;
        ctx.generation = event;
        ctx.iteration = event;
        ctx.phase = "barrier";
        const obs::TraceContextScope scope(ctx);
        coordinator.BeginGeneration(event, ctx);
        WallClock clock;
        const Seconds wait_start = clock.Now();
        BarrierResult barrier;
        {
            const obs::TraceSpan span("net.barrier.wait", "net");
            barrier = coordinator.AwaitReports(event, barrier_deadline_s);
        }
        RecordReports(manifest, barrier);
        const bool sealed = SealIfComplete(manifest, event, barrier);
        write_manifest();
        AccumulateBarrierBytes(barrier, bytes_total, bytes_saved);
        SampleBarrier(event, clock.Now() - wait_start, bytes_total,
                      bytes_saved);
        t.AddRow({std::to_string(event), sealed ? "yes" : "no",
                  std::to_string(barrier.reports.size()),
                  std::to_string(barrier.dead.size()),
                  Table::Num(clock.Now() - wait_start, 3)});
        if (!barrier.dead.empty() || barrier.timed_out) {
            // The recovery invariant in action: once a rank is dead the
            // cluster stops advancing checkpoints — later generations
            // could never seal (a participant is missing), and piling up
            // unsealed generations only obscures the restart target.
            death = true;
        }
    }
    coordinator.Shutdown();
    std::printf("%s", t.ToString().c_str());

    std::size_t deaths_journaled = 0;
    std::size_t stragglers_journaled = 0;
    for (const auto& e : obs::EventJournal::Instance().Collect()) {
        deaths_journaled += e.kind == obs::EventKind::kPeerDeath ? 1 : 0;
        stragglers_journaled += e.kind == obs::EventKind::kStraggler ? 1 : 0;
    }
    std::printf("peer_death events journaled: %zu\n", deaths_journaled);
    std::printf("straggler events journaled: %zu\n", stragglers_journaled);

    const auto health = cluster.Health();
    if (!health.empty()) {
        Table ht({"rank", "alive", "phase", "gen", "slack (s)", "straggler",
                  "samples"});
        for (const auto& h : health) {
            ht.AddRow({std::to_string(h.rank),
                       h.alive ? "yes" : "DEAD (" + h.death_cause + ")",
                       h.phase.empty() ? "idle" : h.phase,
                       std::to_string(h.generation),
                       Table::Num(h.slack_s, 3), h.straggler ? "YES" : "no",
                       std::to_string(h.samples)});
        }
        std::printf("cluster health (%llu telemetry samples):\n%s",
                    static_cast<unsigned long long>(cluster.samples()),
                    ht.ToString().c_str());
    }

    // Replan restore from the newest sealed generation. A clean run
    // restores the last event; a faulted run proves the torn generation
    // was skipped.
    const auto plan = PlanClusterRestore(manifest);
    if (!plan) {
        std::fprintf(stderr, "coordinator: no sealed generation to restore "
                             "from\n");
        return 1;
    }
    const ClusterRestoreResult restored =
        ExecuteClusterRestore(manifest, store, *plan);
    std::printf("recovered generation=%zu shards=%zu damaged=%zu "
                "missing=%zu degraded=%zu\n",
                restored.generation, restored.shards_restored,
                restored.damaged.size(), plan->missing.size(),
                restored.degraded.size());
    const bool ok = restored.damaged.empty() && plan->missing.empty() &&
                    restored.shards_restored > 0;
    std::printf("gauntlet: %s\n", ok ? "OK" : "FAILED");
    LingerLiveEndpoint(endpoint.get(), live.linger_s);
    return ok ? 0 : 1;
}

/**
 * The elastic variant of the coordinator (--elastic 1): a MembershipTable
 * decides who checkpoints, a rank death *continues* the run — the torn
 * generation is marked aborted, the dead rank evicted, expert placement
 * re-solved over the survivors — and a respawned rank rejoins through the
 * kJoinRequest/kJoinAccept handshake with a fresh epoch, under which
 * subsequent generations seal against current live membership. The final
 * restore goes through a RankRemap so the chosen sealed generation loads
 * whatever membership is live *now*, even when its sealing world was
 * bigger (docs/FAULT_MODEL.md, "Elastic recovery").
 */
int
RunElasticCoordinator(std::size_t ranks, std::size_t events,
                      const std::string& ckpt_dir,
                      const std::string& port_file,
                      const net::SocketOptions& net_opts,
                      Seconds join_timeout_s, Seconds barrier_deadline_s,
                      const LiveEndpointConfig& live_cfg) {
    FileStore store(ckpt_dir);
    const auto endpoint = StartLiveEndpoint(live_cfg);
    auto transport =
        net::SocketTransport::Listen(0, net::kCoordinatorPeer, net_opts);
    WritePortFile(port_file, transport->port());
    std::printf("coordinator: elastic, listening on 127.0.0.1:%u, waiting "
                "for %zu rank(s)\n",
                transport->port(), ranks);
    if (!transport->WaitForPeers(ranks, join_timeout_s)) {
        std::fprintf(stderr, "coordinator: only %zu/%zu ranks joined\n",
                     transport->Peers().size(), ranks);
        return 1;
    }

    ckpt::MembershipTable membership;
    CheckpointManifest manifest;
    // Per-generation assignments, for remapped restores: the restore target
    // keys depend on who owned each expert when the generation sealed.
    std::map<std::size_t, std::map<std::size_t, std::vector<std::size_t>>>
        gen_assignments;

    PlacementProblem problem;
    problem.experts = GauntletExperts(ranks);
    problem.replicas = 1;
    problem.policy = PlacementPolicy::kLoadAware;
    problem.current = InitialAssignments(ranks);
    PlacementPlan placement;

    auto write_manifest = [&store, &manifest]() {
        const std::string json = manifest.ToJson();
        store.Put("meta/manifest", Blob(json.begin(), json.end()));
    };
    auto write_membership = [&store, &membership]() {
        const std::string json = membership.ToJson();
        store.Put("meta/membership", Blob(json.begin(), json.end()));
    };
    auto resolve_placement = [&membership, &problem, &placement]() {
        problem.live_ranks = membership.LiveRanks();
        problem.current = placement.assignments.empty()
                              ? problem.current
                              : placement.assignments;
        placement = SolvePlacement(problem);
        placement.version = membership.version();
        std::printf("coordinator: placement v%llu over %zu rank(s), moved "
                    "%zu replica(s) (%s)\n",
                    static_cast<unsigned long long>(placement.version),
                    problem.live_ranks.size(), placement.moved_replicas,
                    FormatBytes(placement.moved_bytes).c_str());
    };

    obs::ClusterAggregator& cluster = obs::ClusterAggregator::Instance();
    CheckpointCoordinator coordinator(*transport, {});
    coordinator.SetMessageObserver([&cluster](const net::Message& msg) {
        if (msg.type == net::MsgType::kTelemetry) {
            try {
                cluster.Observe(
                    net::DecodeTelemetry(msg.payload),
                    static_cast<std::int64_t>(obs::Tracer::NowNs()));
            } catch (const std::exception&) {
            }
        } else if (msg.type == net::MsgType::kPeerDeath) {
            cluster.ObservePeerDeath(static_cast<std::int32_t>(msg.from),
                                     "transport");
        }
    });

    bool had_rejoin = false;
    // One admission + reply, shared by the initial handshake loop and the
    // post-barrier rejoin path.
    auto handle_join = [&](const net::Message& msg) -> bool {
        ckpt::JoinRequest request;
        try {
            request = ckpt::DecodeJoinRequest(msg.payload);
        } catch (const std::runtime_error&) {
            return false;
        }
        ckpt::JoinAccept verdict = membership.OnJoinRequest(
            static_cast<std::size_t>(msg.from), msg.epoch,
            request.incarnation);
        if (verdict.accepted) {
            const bool rejoin =
                membership.Info(static_cast<std::size_t>(msg.from)).state ==
                ckpt::MemberState::kRejoined;
            had_rejoin = had_rejoin || rejoin;
            resolve_placement();
            std::printf("coordinator: rank %u %s (membership v%llu)\n",
                        msg.from, rejoin ? "REJOINED" : "joined",
                        static_cast<unsigned long long>(
                            verdict.membership_version));
        } else {
            std::printf("coordinator: rank %u join REJECTED: %s\n", msg.from,
                        verdict.reason.c_str());
        }
        verdict.placement = placement;
        transport->Send(msg.from, net::MsgType::kJoinAccept,
                        ckpt::EncodeJoinAccept(verdict));
        write_membership();
        return verdict.accepted;
    };

    // Initial admission: every rank asks in over kJoinRequest right after
    // its transport handshake; the membership table records its epoch.
    {
        std::size_t admitted = 0;
        const WallClock clock;
        const Seconds deadline = clock.Now() + join_timeout_s;
        while (admitted < ranks && clock.Now() < deadline) {
            auto msg = transport->Recv(0.1);
            if (!msg) {
                continue;
            }
            if (msg->type == net::MsgType::kJoinRequest) {
                if (handle_join(*msg)) {
                    ++admitted;
                }
            }
            // Telemetry before admission is dropped; the run hasn't begun.
        }
        if (admitted < ranks) {
            std::fprintf(stderr,
                         "coordinator: only %zu/%zu ranks admitted\n",
                         admitted, ranks);
            return 1;
        }
    }

    Table t({"generation", "sealed", "reports", "dead", "live", "wait (s)"});
    std::uint64_t bytes_total = 0;
    std::uint64_t bytes_saved = 0;
    bool sealed_after_rejoin = false;
    for (std::size_t event = 1; event <= events; ++event) {
        const std::vector<std::size_t> live = membership.LiveRanks();
        std::vector<net::PeerId> participants;
        for (const std::size_t r : live) {
            participants.push_back(static_cast<net::PeerId>(r));
        }
        coordinator.SetParticipants(participants);

        obs::TraceContext ctx;
        ctx.generation = event;
        ctx.iteration = event;
        ctx.phase = "barrier";
        const obs::TraceContextScope scope(ctx);
        net::PayloadWriter extra_writer;
        ckpt::EncodePlacementAssignments(placement, extra_writer);
        const Blob extra = extra_writer.Take();
        coordinator.BeginGeneration(event, ctx, &extra);
        gen_assignments[event] = placement.assignments;

        WallClock clock;
        const Seconds wait_start = clock.Now();
        BarrierResult barrier;
        {
            const obs::TraceSpan span("net.barrier.wait", "net");
            barrier = coordinator.AwaitReports(event, barrier_deadline_s);
        }
        RecordReports(manifest, barrier);
        const bool sealed = SealIfComplete(manifest, event, barrier);
        for (const auto& done : barrier.reports) {
            membership.MarkLive(static_cast<std::size_t>(done.rank));
        }
        if (sealed && had_rejoin) {
            sealed_after_rejoin = true;
        }
        if (!barrier.dead.empty()) {
            // The elastic path: evict, abort the torn generation, replan
            // placement over the survivors, and KEEP CHECKPOINTING.
            for (const net::PeerId dead : barrier.dead) {
                membership.OnPeerDeath(static_cast<std::size_t>(dead),
                                       "transport");
            }
            manifest.MarkGenerationAborted(event);
            resolve_placement();
        }
        if (barrier.timed_out) {
            // Silent but transport-alive ranks: suspects, still members.
            std::set<net::PeerId> heard;
            for (const auto& done : barrier.reports) {
                heard.insert(done.rank);
            }
            for (const net::PeerId dead : barrier.dead) {
                heard.insert(dead);
            }
            for (const net::PeerId p : participants) {
                if (heard.count(p) == 0) {
                    membership.MarkSuspect(static_cast<std::size_t>(p));
                }
            }
        }
        // Joins surfaced mid-barrier are admitted here, after the seal
        // decision: a rejoiner first participates in the *next* generation
        // and can never ack the one its old incarnation died in.
        for (const auto& join : barrier.joins) {
            handle_join(join);
        }
        write_manifest();
        write_membership();
        AccumulateBarrierBytes(barrier, bytes_total, bytes_saved);
        SampleBarrier(event, clock.Now() - wait_start, bytes_total,
                      bytes_saved);
        t.AddRow({std::to_string(event), sealed ? "yes" : "no",
                  std::to_string(barrier.reports.size()),
                  std::to_string(barrier.dead.size()),
                  std::to_string(membership.LiveRanks().size()),
                  Table::Num(clock.Now() - wait_start, 3)});
    }
    coordinator.Shutdown();
    std::printf("%s", t.ToString().c_str());

    std::size_t deaths_journaled = 0;
    std::size_t stragglers_journaled = 0;
    std::size_t resurrections_journaled = 0;
    std::size_t membership_changes = 0;
    std::size_t membership_rejoins = 0;
    for (const auto& e : obs::EventJournal::Instance().Collect()) {
        deaths_journaled += e.kind == obs::EventKind::kPeerDeath ? 1 : 0;
        stragglers_journaled += e.kind == obs::EventKind::kStraggler ? 1 : 0;
        membership_changes +=
            e.kind == obs::EventKind::kMembershipChange ? 1 : 0;
        if (e.kind == obs::EventKind::kRejoin) {
            if (e.detail.rfind("resurrected", 0) == 0) {
                ++resurrections_journaled;
            } else {
                ++membership_rejoins;
            }
        }
    }
    std::printf("peer_death events journaled: %zu\n", deaths_journaled);
    std::printf("straggler events journaled: %zu\n", stragglers_journaled);
    std::printf("membership_change events journaled: %zu\n",
                membership_changes);
    std::printf("membership rejoins journaled: %zu\n", membership_rejoins);
    std::printf("resurrections journaled: %zu\n", resurrections_journaled);
    std::printf("sealed after rejoin: %s\n",
                sealed_after_rejoin ? "yes" : "no");

    // Restore against whatever membership is live NOW. When the chosen
    // sealed generation was written by a bigger world, the remap retargets
    // the dead ranks' shards onto the members that absorbed their experts.
    const std::vector<std::size_t> live = membership.LiveRanks();
    if (live.empty()) {
        std::fprintf(stderr, "coordinator: no live ranks to restore onto\n");
        return 1;
    }
    const auto probe = PlanClusterRestore(manifest);
    if (!probe) {
        std::fprintf(stderr, "coordinator: no sealed generation to restore "
                             "from\n");
        return 1;
    }
    RankRemap remap = BuildRankRemap(ranks, live);
    const auto sealed_assignments = gen_assignments.find(probe->generation);
    if (sealed_assignments != gen_assignments.end()) {
        AddExpertMoves(remap, sealed_assignments->second,
                       placement.assignments, ExpertShardKey);
    }
    const auto plan = PlanClusterRestore(manifest, std::nullopt,
                                         remap.empty() ? nullptr : &remap);
    const ClusterRestoreResult restored =
        ExecuteClusterRestore(manifest, store, *plan);
    std::printf("recovered generation=%zu shards=%zu damaged=%zu "
                "missing=%zu degraded=%zu\n",
                restored.generation, restored.shards_restored,
                restored.damaged.size(), plan->missing.size(),
                restored.degraded.size());
    std::printf("restore remap: %zu rank(s), %zu key override(s)\n",
                remap.ranks.size(), remap.keys.size());
    const bool ok = restored.damaged.empty() && plan->missing.empty() &&
                    restored.shards_restored > 0;
    std::printf("gauntlet: %s\n", ok ? "OK" : "FAILED");
    LingerLiveEndpoint(endpoint.get(), live_cfg.linger_s);
    return ok ? 0 : 1;
}

int
RunRank(std::size_t rank, std::size_t ranks, const std::string& ckpt_dir,
        const std::string& port_file, const net::SocketOptions& net_opts,
        Seconds join_timeout_s, std::vector<ProcFaultSpec> fault_specs,
        double ballast_ms, const obs::ObsOptions& obs_options,
        bool elastic = false, std::size_t respawned = 0) {
    const std::uint16_t port = AwaitPortFile(port_file, join_timeout_s);
    if (port == 0) {
        std::fprintf(stderr, "rank %zu: coordinator port never appeared\n",
                     rank);
        return 1;
    }
    auto transport = net::SocketTransport::Connect(
        "127.0.0.1", port, static_cast<net::PeerId>(rank), net_opts);

    FileStore base(ckpt_dir);
    ResilientStore store(base);
    const ShardPlan plan = BuildGauntletPlan(ranks);
    // A respawned incarnation never re-fires the fault that killed its
    // predecessor: the spec targeted the original incarnation's event, and
    // re-raising it would just kill the rejoiner forever.
    if (respawned > 0) {
        fault_specs.clear();
    }
    ProcFaultSchedule faults(std::move(fault_specs), rank);
    RankParticipant participant(*transport);

    // The elastic admission handshake: announce this incarnation, wait for
    // the coordinator's verdict. A stale epoch (a zombie from before the
    // respawn) is rejected here, never at the barrier.
    PlacementPlan current_placement;
    if (elastic) {
        ckpt::JoinRequest request;
        request.rank = rank;
        request.incarnation = respawned + 1;
        transport->Send(net::kCoordinatorPeer, net::MsgType::kJoinRequest,
                        ckpt::EncodeJoinRequest(request));
        const WallClock clock;
        const Seconds deadline = clock.Now() + join_timeout_s;
        bool admitted = false;
        while (!admitted && clock.Now() < deadline) {
            auto msg = transport->Recv(0.1);
            if (!msg) {
                continue;
            }
            if (msg->type == net::MsgType::kJoinAccept) {
                const ckpt::JoinAccept verdict =
                    ckpt::DecodeJoinAccept(msg->payload);
                if (!verdict.accepted) {
                    std::fprintf(stderr, "rank %zu: join rejected: %s\n",
                                 rank, verdict.reason.c_str());
                    return 1;
                }
                current_placement = verdict.placement;
                admitted = true;
            } else if (msg->type == net::MsgType::kPeerDeath) {
                std::fprintf(stderr,
                             "rank %zu: coordinator died before admission\n",
                             rank);
                return 1;
            }
            // No kCkptBegin can precede the verdict: the coordinator admits
            // joins between barriers and TCP preserves ordering, so the
            // kJoinAccept always lands before the next begin frame.
        }
        if (!admitted) {
            std::fprintf(stderr, "rank %zu: no join verdict within "
                                 "deadline\n",
                         rank);
            return 1;
        }
        std::printf("rank %zu: admitted (incarnation %zu, placement v%llu)\n",
                    rank, respawned + 1,
                    static_cast<unsigned long long>(
                        current_placement.version));
    }

    // Stream this rank's pulse to the coordinator. The publisher samples
    // in the background; phase edges additionally PublishNow() so the
    // aggregator sees transitions promptly.
    net::TelemetryPublisher::Options tel_opts;
    tel_opts.coordinator = net::kCoordinatorPeer;
    tel_opts.rank = static_cast<std::int32_t>(rank);
    net::TelemetryPublisher telemetry(*transport, tel_opts);
    telemetry.Start();

    while (true) {
        const auto begin = participant.AwaitBegin(join_timeout_s);
        if (!begin) {
            std::fprintf(stderr, "rank %zu: no begin within deadline\n",
                         rank);
            return 1;
        }
        if (begin->shutdown) {
            // Announce the disconnect so the coordinator retires this
            // connection instead of declaring a death on the EOF.
            transport->Send(net::kCoordinatorPeer, net::MsgType::kGoodbye,
                            {});
            break;
        }
        const auto event = static_cast<std::size_t>(begin->iteration);
        obs::TraceContext ctx;
        ctx.generation = begin->ctx.generation;
        ctx.iteration = begin->iteration;
        ctx.rank = static_cast<std::int32_t>(rank);
        ctx.phase = "persist";
        const obs::TraceContextScope scope(ctx);
        const obs::TraceSpan span("gauntlet.persist", "cluster");
        obs::SetRankActivity("persist", ctx.generation, begin->iteration);
        telemetry.PublishNow();
        const std::int64_t persist_start_ns = obs::Tracer::NowNs();

        // Elastic begins carry the placement the coordinator solved for
        // this generation; the shard list follows it, not the static plan.
        std::vector<ShardItem> items;
        if (elastic) {
            if (!begin->extra.empty()) {
                try {
                    net::PayloadReader extra_reader(begin->extra);
                    current_placement =
                        ckpt::DecodePlacementAssignments(extra_reader);
                } catch (const std::runtime_error&) {
                    // Keep the last good placement; the coordinator's done
                    // report will still CRC-match whatever we persist.
                }
            }
            items = ElasticItems(rank, current_placement);
        } else {
            items = plan.Items(rank);
        }

        std::vector<ShardReport> reports;
        bool ok = true;
        std::size_t shards_done = 0;
        for (const auto& item : items) {
            // The fault schedule fires *between* shard writes, so a kill
            // mid-generation leaves exactly `after` durable shards — a
            // genuinely torn generation for fsck to find.
            faults.Poll(event, "persist", shards_done);
            if (ballast_ms > 0.0) {
                // The deliberate straggler: drag out this rank's persist
                // so the cluster-median detector has something to catch.
                std::this_thread::sleep_for(std::chrono::duration<double,
                                            std::milli>(ballast_ms));
            }
            ShardReport report;
            report.key = "rank" + std::to_string(rank) + "/" + item.key;
            report.iteration = event;
            const Blob blob = SyntheticShardBytes(item, event);
            report.bytes = blob.size();
            report.crc = Crc32c(blob.data(), blob.size());
            try {
                store.Put(VersionedShardKey(report.key, event), blob);
                report.verified = true;  // ResilientStore read-back verified
            } catch (const StoreError&) {
                report.failed = true;
                ok = false;
            }
            reports.push_back(std::move(report));
            ++shards_done;
        }
        faults.Poll(event, "barrier", shards_done);
        participant.SendDone(begin->iteration, std::move(reports), ok, ctx);
        obs::SetRankActivity("", ctx.generation, begin->iteration);
        telemetry.PublishNow();
        // Rank-side trajectory: one point per generation, so a rank's
        // --series-out artifact carries its own persist timings.
        obs::SampleIteration(
            event, static_cast<double>(obs::Tracer::NowNs() -
                                       persist_start_ns) /
                       1e9);
        // Re-export after every generation: a rank SIGKILL'd next gen
        // still leaves artifacts for the launcher's cluster merge.
        obs::ExportObs(obs_options);
    }
    telemetry.Stop();
    std::printf("rank %zu: shutdown after clean run\n", rank);
    return 0;
}

}  // namespace

int
main(int argc, char** argv) {
    const obs::ObsExportGuard obs_guard(argc, argv);
    const std::string role = FlagStr(argc, argv, "role", "");
    const std::size_t ranks = FlagSize(argc, argv, "ranks", 3);
    const std::size_t events = FlagSize(argc, argv, "events", 3);
    const std::size_t rank = FlagSize(argc, argv, "rank", 0);
    const std::string ckpt_dir =
        FlagStr(argc, argv, "ckpt-dir", "/tmp/moc_gauntlet");
    // Sibling of the checkpoint dir, NOT inside it: fsck scrubs every file
    // under the store root and would flag a CRC-less port file as damage.
    const std::string default_port_file = ckpt_dir + ".port";
    const std::string port_file =
        FlagStr(argc, argv, "port-file", default_port_file.c_str());
    const double join_timeout_s =
        FlagDouble(argc, argv, "join-timeout-s", 30.0);
    const double barrier_deadline_s =
        FlagDouble(argc, argv, "barrier-deadline-s", 10.0);
    const bool elastic = FlagSize(argc, argv, "elastic", 0) != 0;
    // Stamped by moc_launcher --respawn supervision on re-forked ranks;
    // doubles as the incarnation counter in the join handshake.
    const std::size_t respawned = FlagSize(argc, argv, "respawned", 0);

    // The live scrape endpoint (coordinator only; docs/OBSERVABILITY.md).
    LiveEndpointConfig live;
    live.port = static_cast<int>(FlagDouble(argc, argv, "http-port", -1.0));
    const std::string default_http_file = ckpt_dir + ".http";
    live.port_file =
        FlagStr(argc, argv, "http-port-file", default_http_file.c_str());
    live.linger_s = FlagDouble(argc, argv, "linger-s", 0.0);

    net::SocketOptions net_opts;
    net_opts.heartbeat.interval_s =
        FlagDouble(argc, argv, "hb-interval-s", 0.05);
    net_opts.heartbeat.miss_limit = FlagSize(argc, argv, "hb-miss", 5);

    if (role != "coordinator" && role != "rank") {
        std::printf(
            "usage: cluster_procs --role coordinator|rank [--rank R]\n"
            "    [--ranks N] [--events N] [--ckpt-dir DIR] [--port-file F]\n"
            "    [--hb-interval-s S] [--hb-miss N] [--barrier-deadline-s S]\n"
            "    [--join-timeout-s S] [--fault SPEC]...\n"
            "    [--ballast-rank R --ballast-ms M] [--elastic 1]\n"
            "    [--http-port P] [--http-port-file F] [--linger-s S]\n"
            "  fault SPEC: kill|stop|respawn:rank=R:event=E"
            "[:phase=persist|barrier][:after=N]\n"
            "  elastic: membership-driven barriers — deaths evict + replan\n"
            "  expert placement and the run continues; respawned ranks\n"
            "  rejoin via the kJoinRequest handshake (moc_launcher\n"
            "  --respawn N re-forks signal-killed ranks)\n"
            "  ballast: rank R sleeps M ms between shard writes — a\n"
            "  deliberate straggler for the cluster plane to flag\n"
            "  http-port: coordinator serves /metrics /healthz /ranks\n"
            "  /series live on 127.0.0.1 (0 = ephemeral; the bound port is\n"
            "  printed and published to http-port-file); linger-s keeps the\n"
            "  endpoint up that long after the run for scrapers\n"
            "(normally launched as a fleet by tools/moc_launcher)\n");
        return 2;
    }
    if (ranks == 0 || events == 0 || (role == "rank" && rank >= ranks)) {
        std::fprintf(stderr, "cluster_procs: bad --ranks/--events/--rank\n");
        return 2;
    }
    // Role-stamp every export so the launcher's merge (obs/merge.h) can
    // attribute events and spans without relying on file names.
    obs::SetRunRole(role == "coordinator"
                        ? role
                        : "rank" + std::to_string(rank));
    const double ballast_rank = FlagDouble(argc, argv, "ballast-rank", -1.0);
    const double ballast_ms =
        role == "rank" && ballast_rank == static_cast<double>(rank)
            ? FlagDouble(argc, argv, "ballast-ms", 0.0)
            : 0.0;

    try {
        if (role == "coordinator") {
            return elastic ? RunElasticCoordinator(ranks, events, ckpt_dir,
                                                   port_file, net_opts,
                                                   join_timeout_s,
                                                   barrier_deadline_s, live)
                           : RunCoordinator(ranks, events, ckpt_dir,
                                            port_file, net_opts,
                                            join_timeout_s,
                                            barrier_deadline_s, live);
        }
        return RunRank(rank, ranks, ckpt_dir, port_file, net_opts,
                       join_timeout_s, FlagFaults(argc, argv), ballast_ms,
                       obs_guard.options(), elastic, respawned);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "cluster_procs(%s): %s\n", role.c_str(),
                     e.what());
        return 1;
    }
}
