/**
 * @file
 * Flight-recorder demo: a multi-rank cluster persist with one deliberately
 * overloaded (straggler) rank and optional storage latency spikes, exported
 * for `moc_cli trace`. This is the driver behind the CI flight-recorder job:
 *
 *   cluster_persist --ranks 4 --events 3 --straggler 2 \
 *       --trace-out trace.json --events-out events.jsonl
 *   moc_cli trace --trace trace.json --events events.jsonl
 *
 * The straggler rank carries extra ballast shards, so it deterministically
 * finishes its serialize/snapshot/persist chain last and the critical-path
 * profiler must name it. With `--spike-prob` > 0 the FaultyStore injects
 * real latency spikes into shard writes; a `--shard-deadline-s` below the
 * spike makes the stall watchdog journal `stall` events for exactly those
 * writes, while a clean run journals none.
 *
 * It also drives the storage-faults CI delta e2e. With `--ckpt-dir` the
 * cluster persists into an on-disk FileStore that `moc_cli fsck` can audit;
 * `--delta` + `--churn F` evolve every shard by XOR-ing ~F of its chunks
 * per event (deterministic in the event number), so generations after the
 * first land as delta records. A later `--restore-only` invocation with the
 * same flags reloads the manifest from the directory, restores the newest
 * sealed generation, and checks each restored blob byte-for-byte against
 * the recomputed churned state at the iteration actually restored —
 * including chains degraded by a corrupted base.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "ckpt/cluster_engine.h"
#include "core/cluster_recovery.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "storage/faulty_store.h"
#include "storage/file_store.h"
#include "storage/persistent_store.h"
#include "util/table.h"

using namespace moc;

namespace {

/** `--name value` lookup over argv (after ObsExportGuard stripped its own). */
double
FlagDouble(int argc, char** argv, const char* name, double fallback) {
    const std::string flag = std::string("--") + name;
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag) {
            return std::atof(argv[i + 1]);
        }
    }
    return fallback;
}

std::size_t
FlagSize(int argc, char** argv, const char* name, std::size_t fallback) {
    return static_cast<std::size_t>(
        FlagDouble(argc, argv, name, static_cast<double>(fallback)));
}

std::string
FlagString(int argc, char** argv, const char* name, const char* fallback) {
    const std::string flag = std::string("--") + name;
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag) {
            return argv[i + 1];
        }
    }
    return fallback;
}

bool
HasFlag(int argc, char** argv, const char* name) {
    const std::string flag = std::string("--") + name;
    for (int i = 1; i < argc; ++i) {
        if (argv[i] == flag) {
            return true;
        }
    }
    return false;
}

/**
 * The live state of one shard after @p event training events under chunk
 * churn: the base synthetic blob with ~@p churn of its chunks XOR-perturbed
 * per event, cumulatively. Pure in (item, event), so a later --restore-only
 * process recomputes the same bytes the persisting process saw.
 */
Blob
ChurnedState(const ShardItem& item, std::uint64_t event, double churn,
             std::size_t chunk_bytes) {
    Blob blob = SyntheticShardBytes(item, 1);
    const std::size_t chunks = (blob.size() + chunk_bytes - 1) / chunk_bytes;
    const auto per_event = std::max<std::size_t>(
        1, static_cast<std::size_t>(static_cast<double>(chunks) * churn));
    for (std::uint64_t v = 2; v <= event; ++v) {
        for (std::size_t i = 0; i < per_event; ++i) {
            const std::size_t off = ((v * 131 + i * 977) % chunks) * chunk_bytes;
            const std::size_t end = std::min(off + chunk_bytes, blob.size());
            for (std::size_t b = off; b < end; ++b) {
                blob[b] ^= static_cast<std::uint8_t>(0xA5 ^ v);
            }
        }
    }
    return blob;
}

}  // namespace

int
main(int argc, char** argv) {
    const obs::ObsExportGuard obs_guard(argc, argv);
    const std::size_t ranks = FlagSize(argc, argv, "ranks", 4);
    const std::size_t events = FlagSize(argc, argv, "events", 3);
    const std::size_t straggler = FlagSize(argc, argv, "straggler", 2);
    const double spike_prob = FlagDouble(argc, argv, "spike-prob", 0.0);
    const double spike_s = FlagDouble(argc, argv, "latency-spike-s", 0.2);
    const double shard_deadline_s =
        FlagDouble(argc, argv, "shard-deadline-s", 0.0);
    const auto seed =
        static_cast<std::uint64_t>(FlagDouble(argc, argv, "seed", 7));
    const std::string ckpt_dir = FlagString(argc, argv, "ckpt-dir", "");
    const bool delta = HasFlag(argc, argv, "delta");
    const std::size_t delta_chunk_bytes =
        FlagSize(argc, argv, "delta-chunk-bytes", 64);
    const std::size_t max_delta_chain =
        FlagSize(argc, argv, "max-delta-chain", 8);
    const double churn = FlagDouble(argc, argv, "churn", 0.0);
    const bool restore_only = HasFlag(argc, argv, "restore-only");
    if (ranks == 0 || events == 0 || (restore_only && ckpt_dir.empty())) {
        std::printf("usage: cluster_persist [--ranks N] [--events N] "
                    "[--straggler R] [--spike-prob P] [--latency-spike-s S] "
                    "[--shard-deadline-s S] [--seed N] [--ckpt-dir DIR] "
                    "[--delta] [--delta-chunk-bytes N] [--max-delta-chain N] "
                    "[--churn F] [--restore-only]\n");
        return 2;
    }

    // PEC-shaped plan: dense + experts per rank, plus ballast on the
    // straggler so it is the bottleneck rank by construction (synthetic
    // scale: 1 planned MiB -> 1 KiB on disk).
    ShardPlan plan(ranks);
    for (RankId r = 0; r < ranks; ++r) {
        plan.Add(r, {"dense/" + std::to_string(r), 128 * kMiB, false});
        for (std::size_t e = 0; e < 8; ++e) {
            const std::size_t id = r * 8 + e;
            plan.Add(r, {"expert/" + std::to_string(id) + "/w", 32 * kMiB,
                         false});
        }
        if (r == straggler) {
            for (std::size_t b = 0; b < 4; ++b) {
                plan.Add(r, {"ballast/" + std::to_string(b), 128 * kMiB,
                             false});
            }
        }
    }

    // Modeled in-memory store by default; an on-disk FileStore when the run
    // must leave an auditable checkpoint directory behind for `moc_cli fsck`
    // and a later --restore-only process.
    std::unique_ptr<ObjectStore> backing;
    if (ckpt_dir.empty()) {
        backing = std::make_unique<PersistentStore>(StorageIoModel{
            .write_bandwidth = 50e6, .read_bandwidth = 200e6, .latency = 0.0});
    } else {
        backing = std::make_unique<FileStore>(ckpt_dir);
    }
    FaultyStore store(*backing, seed);
    if (spike_prob > 0.0) {
        StorageFaultProfile profile;
        profile.latency_spike = spike_prob;
        profile.latency_spike_seconds = spike_s;
        store.Arm(profile);
    }

    if (restore_only) {
        const auto manifest_blob = store.Get("meta/manifest");
        if (!manifest_blob.has_value()) {
            std::printf("restore: no meta/manifest in %s\n", ckpt_dir.c_str());
            return 1;
        }
        CheckpointManifest manifest;
        manifest.LoadFromJson(
            std::string(manifest_blob->begin(), manifest_blob->end()));
        const auto restore_plan = PlanClusterRestore(manifest);
        if (!restore_plan.has_value()) {
            std::printf("restore: no sealed generation\n");
            return 1;
        }
        const auto restored =
            ExecuteClusterRestore(manifest, store, *restore_plan);
        std::printf("restore: generation %zu, %zu shards, %zu degraded, "
                    "%zu damaged\n",
                    restored.generation, restored.shards_restored,
                    restored.degraded.size(), restored.damaged.size());
        // Where each key actually landed: the plan's chosen iteration,
        // overridden by any read-time fallback.
        std::map<std::string, std::size_t> restored_iter;
        for (const auto& shard : restore_plan->shards) {
            restored_iter[shard.key] = shard.iteration;
        }
        for (const auto& d : restored.degraded) {
            restored_iter[d.key] = d.restored_iteration;
            std::printf("degraded: %s planned @%zu restored @%zu (%s)\n",
                        d.key.c_str(), d.planned_iteration,
                        d.restored_iteration, d.reason.c_str());
        }
        if (!restored.damaged.empty()) {
            for (const auto& key : restored.damaged) {
                std::printf("damaged: %s\n", key.c_str());
            }
            return 1;
        }
        // Recompute the churned state each key should hold at its restored
        // iteration and compare byte-for-byte.
        std::size_t verified = 0;
        for (RankId r = 0; r < ranks; ++r) {
            for (const ShardItem& item : plan.Items(r)) {
                const std::string key =
                    "rank" + std::to_string(r) + "/" + item.key;
                const auto it = restored.blobs.find(key);
                const auto iter_it = restored_iter.find(key);
                if (it == restored.blobs.end() ||
                    iter_it == restored_iter.end()) {
                    std::printf("restore verify: %s missing\n", key.c_str());
                    return 1;
                }
                const Blob expect =
                    churn > 0.0
                        ? ChurnedState(item, iter_it->second, churn,
                                       delta_chunk_bytes)
                        : SyntheticShardBytes(item, iter_it->second);
                if (it->second != expect) {
                    std::printf("restore verify: %s differs at iteration "
                                "%zu\n",
                                key.c_str(), iter_it->second);
                    return 1;
                }
                ++verified;
            }
        }
        std::printf("restore verify: %zu shards byte-identical at their "
                    "restored iterations\n",
                    verified);
        return 0;
    }

    AgentCostModel cost;
    cost.snapshot_bandwidth = 100e6;
    cost.persist_bandwidth = 50e6;
    cost.time_scale = 1.0;
    ClusterEngineOptions opt;
    opt.shard_deadline_s = shard_deadline_s;
    opt.delta = delta;
    opt.delta_chunk_bytes = delta_chunk_bytes;
    opt.max_delta_chain = max_delta_chain;
    ClusterCheckpointEngine engine(store, ranks, cost, opt);

    std::printf("cluster_persist: %zu ranks, %zu events, straggler rank %zu"
                ", spike prob %.2f (%.3f s), shard deadline %.3f s"
                ", delta %s (chunk %zu, max chain %zu), churn %.3f\n",
                ranks, events, straggler, spike_prob, spike_s,
                shard_deadline_s, delta ? "on" : "off", delta_chunk_bytes,
                max_delta_chain, churn);

    std::map<std::string, std::uint64_t> version;
    std::uint64_t event_now = 0;
    const BlobProvider provider = [&](const ShardItem& item) {
        if (churn > 0.0) {
            return ChurnedState(item, event_now, churn, delta_chunk_bytes);
        }
        return SyntheticShardBytes(item, version[item.key]);
    };
    Table t({"generation", "sealed", "persisted", "deduped", "delta",
             "failures", "makespan (s)"});
    for (std::size_t event = 1; event <= events; ++event) {
        event_now = event;
        for (RankId r = 0; r < ranks; ++r) {
            for (const auto& item : plan.Items(r)) {
                ++version[item.key];  // everything trains: no dedup hits
            }
        }
        const auto stats = engine.Execute(plan, provider, event);
        t.AddRow({std::to_string(stats.generation),
                  stats.sealed ? "yes" : "no",
                  std::to_string(stats.keys_persisted),
                  std::to_string(stats.keys_deduped),
                  std::to_string(stats.keys_delta),
                  std::to_string(stats.persist_failures),
                  Table::Num(stats.total_makespan, 3)});
    }
    std::printf("%s", t.ToString().c_str());

    const auto snap = obs::MetricsRegistry::Instance().Snapshot();
    const auto stall_it = snap.counters.find("obs.stall.events");
    const std::uint64_t stalls =
        stall_it == snap.counters.end() ? 0 : stall_it->second;
    std::size_t journaled = 0;
    for (const auto& e : obs::EventJournal::Instance().Collect()) {
        journaled += e.kind == obs::EventKind::kStall ? 1 : 0;
    }
    std::printf("stall watchdog: %llu stall(s) fired, %zu journaled\n",
                static_cast<unsigned long long>(stalls), journaled);
    std::printf("expected: every generation seals; rank %zu is the "
                "straggler `moc_cli trace` names;\nlatency spikes over the "
                "shard deadline surface as `stall` journal events.\n",
                straggler);
    return 0;
}
