/**
 * @file
 * Flight-recorder demo: a multi-rank cluster persist with one deliberately
 * overloaded (straggler) rank and optional storage latency spikes, exported
 * for `moc_cli trace`. This is the driver behind the CI flight-recorder job:
 *
 *   cluster_persist --ranks 4 --events 3 --straggler 2 \
 *       --trace-out trace.json --events-out events.jsonl
 *   moc_cli trace --trace trace.json --events events.jsonl
 *
 * The straggler rank carries extra ballast shards, so it deterministically
 * finishes its serialize/snapshot/persist chain last and the critical-path
 * profiler must name it. With `--spike-prob` > 0 the FaultyStore injects
 * real latency spikes into shard writes; a `--shard-deadline-s` below the
 * spike makes the stall watchdog journal `stall` events for exactly those
 * writes, while a clean run journals none.
 */

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "ckpt/cluster_engine.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "storage/faulty_store.h"
#include "storage/persistent_store.h"
#include "util/table.h"

using namespace moc;

namespace {

/** `--name value` lookup over argv (after ObsExportGuard stripped its own). */
double
FlagDouble(int argc, char** argv, const char* name, double fallback) {
    const std::string flag = std::string("--") + name;
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag) {
            return std::atof(argv[i + 1]);
        }
    }
    return fallback;
}

std::size_t
FlagSize(int argc, char** argv, const char* name, std::size_t fallback) {
    return static_cast<std::size_t>(
        FlagDouble(argc, argv, name, static_cast<double>(fallback)));
}

}  // namespace

int
main(int argc, char** argv) {
    const obs::ObsExportGuard obs_guard(argc, argv);
    const std::size_t ranks = FlagSize(argc, argv, "ranks", 4);
    const std::size_t events = FlagSize(argc, argv, "events", 3);
    const std::size_t straggler = FlagSize(argc, argv, "straggler", 2);
    const double spike_prob = FlagDouble(argc, argv, "spike-prob", 0.0);
    const double spike_s = FlagDouble(argc, argv, "latency-spike-s", 0.2);
    const double shard_deadline_s =
        FlagDouble(argc, argv, "shard-deadline-s", 0.0);
    const auto seed =
        static_cast<std::uint64_t>(FlagDouble(argc, argv, "seed", 7));
    if (ranks == 0 || events == 0) {
        std::printf("usage: cluster_persist [--ranks N] [--events N] "
                    "[--straggler R] [--spike-prob P] [--latency-spike-s S] "
                    "[--shard-deadline-s S] [--seed N]\n");
        return 2;
    }

    // PEC-shaped plan: dense + experts per rank, plus ballast on the
    // straggler so it is the bottleneck rank by construction (synthetic
    // scale: 1 planned MiB -> 1 KiB on disk).
    ShardPlan plan(ranks);
    for (RankId r = 0; r < ranks; ++r) {
        plan.Add(r, {"dense/" + std::to_string(r), 128 * kMiB, false});
        for (std::size_t e = 0; e < 8; ++e) {
            const std::size_t id = r * 8 + e;
            plan.Add(r, {"expert/" + std::to_string(id) + "/w", 32 * kMiB,
                         false});
        }
        if (r == straggler) {
            for (std::size_t b = 0; b < 4; ++b) {
                plan.Add(r, {"ballast/" + std::to_string(b), 128 * kMiB,
                             false});
            }
        }
    }

    PersistentStore base(
        {.write_bandwidth = 50e6, .read_bandwidth = 200e6, .latency = 0.0});
    FaultyStore store(base, seed);
    if (spike_prob > 0.0) {
        StorageFaultProfile profile;
        profile.latency_spike = spike_prob;
        profile.latency_spike_seconds = spike_s;
        store.Arm(profile);
    }

    AgentCostModel cost;
    cost.snapshot_bandwidth = 100e6;
    cost.persist_bandwidth = 50e6;
    cost.time_scale = 1.0;
    ClusterEngineOptions opt;
    opt.shard_deadline_s = shard_deadline_s;
    ClusterCheckpointEngine engine(store, ranks, cost, opt);

    std::printf("cluster_persist: %zu ranks, %zu events, straggler rank %zu"
                ", spike prob %.2f (%.3f s), shard deadline %.3f s\n",
                ranks, events, straggler, spike_prob, spike_s,
                shard_deadline_s);

    std::map<std::string, std::uint64_t> version;
    const BlobProvider provider = [&version](const ShardItem& item) {
        return SyntheticShardBytes(item, version[item.key]);
    };
    Table t({"generation", "sealed", "persisted", "deduped", "failures",
             "makespan (s)"});
    for (std::size_t event = 1; event <= events; ++event) {
        for (RankId r = 0; r < ranks; ++r) {
            for (const auto& item : plan.Items(r)) {
                ++version[item.key];  // everything trains: no dedup hits
            }
        }
        const auto stats = engine.Execute(plan, provider, event);
        t.AddRow({std::to_string(stats.generation),
                  stats.sealed ? "yes" : "no",
                  std::to_string(stats.keys_persisted),
                  std::to_string(stats.keys_deduped),
                  std::to_string(stats.persist_failures),
                  Table::Num(stats.total_makespan, 3)});
    }
    std::printf("%s", t.ToString().c_str());

    const auto snap = obs::MetricsRegistry::Instance().Snapshot();
    const auto stall_it = snap.counters.find("obs.stall.events");
    const std::uint64_t stalls =
        stall_it == snap.counters.end() ? 0 : stall_it->second;
    std::size_t journaled = 0;
    for (const auto& e : obs::EventJournal::Instance().Collect()) {
        journaled += e.kind == obs::EventKind::kStall ? 1 : 0;
    }
    std::printf("stall watchdog: %llu stall(s) fired, %zu journaled\n",
                static_cast<unsigned long long>(stalls), journaled);
    std::printf("expected: every generation seals; rank %zu is the "
                "straggler `moc_cli trace` names;\nlatency spikes over the "
                "shard deadline surface as `stall` journal events.\n",
                straggler);
    return 0;
}
