/**
 * @file
 * Fine-tuning with PEC (the Table 4 scenario): pre-train a 16-expert MoE LM
 * on a base distribution, then fine-tune it on a shifted distribution with
 * a fault halfway through, under three regimes:
 *  - frozen experts (FT-w.o.E): only non-expert parameters adapt;
 *  - full-state checkpoints (FT-Full): lossless but expensive;
 *  - PEC checkpoints (FT-PEC): 1/8 of experts per checkpoint.
 * Reports validation loss on the fine-tune distribution for each.
 */

#include <cstdio>

#include "data/corpus.h"
#include "faults/trainer.h"
#include "nn/eval.h"
#include "util/table.h"
#include "obs/export.h"

using namespace moc;

namespace {

LmConfig
ModelCfg() {
    LmConfig cfg;
    cfg.vocab = 64;
    cfg.max_seq = 16;
    cfg.hidden = 32;
    cfg.num_heads = 2;
    cfg.head_dim = 16;
    cfg.num_layers = 4;
    cfg.num_experts = 16;
    cfg.seed = 7;
    return cfg;
}

void
Pretrain(MoeTransformerLm& model, const LmBatchStream& stream, std::size_t iters) {
    Adam adam(AdamConfig{.lr = 3e-3});
    const auto params = model.AllParameters();
    for (std::size_t i = 0; i < iters; ++i) {
        model.TrainBackward(stream.Get(i));
        adam.Step(params);
    }
}

}  // namespace

int
main(int argc, char** argv) {
    const obs::ObsExportGuard obs_guard(argc, argv);
    CorpusConfig base_cfg;
    base_cfg.vocab_size = 64;
    base_cfg.seed = 1234;
    ZipfMarkovCorpus base_corpus(base_cfg);
    CorpusConfig task_cfg = base_cfg;
    task_cfg.seed = 4321;  // a different chain: the downstream "task"
    ZipfMarkovCorpus task_corpus(task_cfg);

    LmBatchStream pretrain(base_corpus, 8, 16, 0);
    LmBatchStream ft_train(task_corpus, 8, 16, 0);
    LmBatchStream ft_valid(task_corpus, 8, 16, 1);

    constexpr std::size_t kPretrainIters = 160;
    constexpr std::size_t kFtIters = 96;

    auto finetune = [&](MoeTransformerLm& model, bool pec, bool freeze_experts) {
        if (freeze_experts) {
            for (auto& g : model.ParameterGroups()) {
                if (g.kind == ModuleKind::kExpert) {
                    for (auto* p : g.params) {
                        p->set_frozen(true);
                    }
                }
            }
        }
        LmTrainerConfig cfg;
        cfg.moc.pec.k_snapshot = pec ? 2 : 16;
        cfg.moc.pec.k_persist = pec ? 2 : 16;
        cfg.moc.i_ckpt = 12;
        cfg.parallel = {.dp = 16, .ep = 16, .tp = 1, .pp = 1};
        cfg.gpus_per_node = 8;
        cfg.total_iterations = kFtIters;
        cfg.adam.lr = 1e-3;
        auto injector = FaultInjector::At(kFtIters / 2 + 2, 0);
        return RunFaultTolerantLmTraining(model, ft_train, ft_valid, cfg, injector);
    };

    Table t({"regime", "val loss (task)", "PLT (%)"});

    MoeTransformerLm base(ModelCfg());
    Pretrain(base, pretrain, kPretrainIters);
    t.AddRow({"Base (no fine-tune)",
              Table::Num(EvalStreamLoss(base, ft_valid, 4), 4), "-"});

    MoeTransformerLm woe(ModelCfg());
    Pretrain(woe, pretrain, kPretrainIters);
    const auto log_woe = finetune(woe, /*pec=*/false, /*freeze_experts=*/true);
    t.AddRow({"FT-w.o.E (frozen experts)", Table::Num(log_woe.final_eval_loss, 4),
              Table::Num(log_woe.plt * 100.0, 2)});

    MoeTransformerLm full(ModelCfg());
    Pretrain(full, pretrain, kPretrainIters);
    const auto log_full = finetune(full, /*pec=*/false, /*freeze_experts=*/false);
    t.AddRow({"FT-Full", Table::Num(log_full.final_eval_loss, 4),
              Table::Num(log_full.plt * 100.0, 2)});

    MoeTransformerLm pec(ModelCfg());
    Pretrain(pec, pretrain, kPretrainIters);
    const auto log_pec = finetune(pec, /*pec=*/true, /*freeze_experts=*/false);
    t.AddRow({"FT-PEC (1/8 experts)", Table::Num(log_pec.final_eval_loss, 4),
              Table::Num(log_pec.plt * 100.0, 2)});

    std::printf("%s", t.ToString().c_str());
    std::printf("expected: fine-tuned regimes beat Base; FT-PEC ~= FT-Full;\n"
                "frozen-expert fine-tuning close behind (experts tolerate\n"
                "missing updates).\n");
    return 0;
}
