/**
 * @file
 * Pre-training under a realistic Poisson fault process.
 *
 * Uses the high-level fault-tolerant trainer: a 16-expert MoE LM trains on
 * a 16-rank (2-node) ZeRO-2 DP + EP deployment while nodes fail at a
 * constant rate; Dynamic-K escalates the PEC budget as faults accumulate.
 * Prints the per-fault recovery trace, the evolving K, PLT, and the final
 * validation loss compared against an identical fault-free run.
 *
 * Storage flags (docs/FAULT_MODEL.md):
 *   --ckpt-dir <path>   persist checkpoints to an on-disk FileStore, so
 *                       `moc_cli fsck <path>` can scrub the result
 *   --storage-faults    arm a transient-error window over the checkpoint
 *                       backend mid-run (retries heal it; the final store
 *                       stays clean)
 *   --restore-only      skip training: manifest-aware cold start of a fresh
 *                       model from --ckpt-dir, printing what restored
 *                       degraded. Exits 0 on success, 2 when no generation
 *                       is restorable.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "core/cold_start.h"
#include "data/corpus.h"
#include "faults/trainer.h"
#include "storage/faulty_store.h"
#include "storage/file_store.h"
#include "storage/store_error.h"
#include "util/table.h"
#include "obs/export.h"
#include "obs/http_endpoint.h"
#include "obs/journal.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

using namespace moc;

namespace {

/** Manifest-aware cold start from an on-disk checkpoint; exit code 0/2. */
int
RestoreOnly(const std::string& ckpt_dir, const LmConfig& model_cfg) {
    FileStore disk(ckpt_dir);
    CheckpointManifest manifest;
    const auto manifest_blob = disk.Get("meta/manifest");
    if (!manifest_blob) {
        std::printf("no meta/manifest in %s\n", ckpt_dir.c_str());
        return 2;
    }
    manifest.LoadFromJson(
        std::string(manifest_blob->begin(), manifest_blob->end()));
    MoeTransformerLm model(model_cfg);
    try {
        const ColdStartReport report = ColdStartFromStore(model, disk, manifest);
        std::printf("restored generation %zu: %zu keys, %s read, "
                    "%zu degraded, %zu missing\n",
                    report.generation, report.keys_restored,
                    FormatBytes(report.bytes_read).c_str(),
                    report.degraded.size(), report.missing.size());
        for (const DegradedKey& d : report.degraded) {
            std::printf("  degraded: %s planned @%zu restored @%zu (%s)\n",
                        d.key.c_str(), d.planned_iteration,
                        d.restored_iteration, d.reason.c_str());
        }
        return 0;
    } catch (const StoreError& e) {
        std::printf("restore failed: %s\n", e.what());
        return 2;
    }
}

}  // namespace

int
main(int argc, char** argv) {
    const obs::ObsExportGuard obs_guard(argc, argv);
    std::string ckpt_dir;
    bool restore_only = false;
    bool storage_faults = false;
    int http_port = -1;  // -1 = no live endpoint; 0 = ephemeral
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--ckpt-dir") == 0 && i + 1 < argc) {
            ckpt_dir = argv[++i];
        } else if (std::strcmp(argv[i], "--restore-only") == 0) {
            restore_only = true;
        } else if (std::strcmp(argv[i], "--storage-faults") == 0) {
            storage_faults = true;
        } else if (std::strcmp(argv[i], "--http-port") == 0 && i + 1 < argc) {
            http_port = std::atoi(argv[++i]);
        }
    }
    CorpusConfig corpus_cfg;
    corpus_cfg.vocab_size = 64;
    ZipfMarkovCorpus corpus(corpus_cfg);
    LmBatchStream train(corpus, 8, 16, 0);
    LmBatchStream valid(corpus, 8, 16, 1);

    LmConfig model_cfg;
    model_cfg.vocab = 64;
    model_cfg.max_seq = 16;
    model_cfg.hidden = 32;
    model_cfg.num_heads = 2;
    model_cfg.head_dim = 16;
    model_cfg.num_layers = 4;
    model_cfg.num_experts = 16;

    if (restore_only) {
        if (ckpt_dir.empty()) {
            std::printf("--restore-only requires --ckpt-dir <path>\n");
            return 2;
        }
        return RestoreOnly(ckpt_dir, model_cfg);
    }

    LmTrainerConfig cfg;
    cfg.moc.pec.k_snapshot = 4;
    cfg.moc.pec.k_persist = 1;
    cfg.moc.i_ckpt = 12;
    cfg.moc.two_level_recovery = true;
    cfg.moc.dynamic_k = true;
    cfg.parallel = {.dp = 16, .ep = 16, .tp = 1, .pp = 1};
    cfg.gpus_per_node = 8;
    cfg.total_iterations = 240;
    cfg.eval_every = 48;
    cfg.adam.lr = 3e-3;

    // Fault-free reference run.
    MoeTransformerLm ref_model(model_cfg);
    FaultInjector none(std::vector<FaultEvent>{});
    const auto ref = RunFaultTolerantLmTraining(ref_model, train, valid, cfg, none);

    // The exports should describe the faulty run only, so drop everything the
    // reference run accumulated.
    obs::MetricsRegistry::Instance().ResetAll();
    obs::EventJournal::Instance().Clear();
    obs::TimeSeriesRing::Instance().Reset();

    // The live scrape surface: /metrics, /healthz, /ranks, /series while
    // the faulty run trains (docs/OBSERVABILITY.md, "Live endpoint").
    std::unique_ptr<obs::HttpEndpoint> endpoint;
    if (http_port >= 0) {
        obs::HttpOptions http_opts;
        http_opts.port = static_cast<std::uint16_t>(http_port);
        endpoint = std::make_unique<obs::HttpEndpoint>(http_opts);
        endpoint->Start();
        std::printf("live endpoint: http://127.0.0.1:%u\n",
                    endpoint->port());
        std::fflush(stdout);
    }

    // The faulty run optionally persists to disk, through a fault injector.
    std::unique_ptr<FileStore> disk;
    std::unique_ptr<FaultyStore> flaky;
    std::unique_ptr<StorageFaultSchedule> schedule;
    if (!ckpt_dir.empty()) {
        disk = std::make_unique<FileStore>(ckpt_dir);
        cfg.moc.persist_backend = disk.get();
    }
    if (storage_faults) {
        if (disk == nullptr) {
            std::printf("--storage-faults requires --ckpt-dir <path>\n");
            return 2;
        }
        StorageFaultProfile profile;
        profile.put_transient_error = 0.2;  // retryable; disk stays clean
        profile.get_transient_error = 0.1;
        flaky = std::make_unique<FaultyStore>(*disk, /*seed=*/7);
        cfg.moc.persist_backend = flaky.get();
        schedule = std::make_unique<StorageFaultSchedule>(
            *flaky, std::vector<StorageFaultWindow>{
                        {.begin_iteration = 60,
                         .end_iteration = 120,
                         .profile = profile}});
        cfg.storage_faults = schedule.get();
    }

    // Poisson faults: expect ~4 over the run, hitting either node.
    MoeTransformerLm model(model_cfg);
    auto injector =
        FaultInjector::Poisson(/*faults_per_iteration=*/1.0 / 60.0,
                               cfg.total_iterations, /*num_nodes=*/2, /*seed=*/2024);
    std::printf("scheduled faults: %zu\n", injector.events().size());
    const auto log = RunFaultTolerantLmTraining(model, train, valid, cfg, injector);

    Table t({"fault #", "restart iter", "from memory", "from storage",
             "PLT after (%)", "K after"});
    for (std::size_t i = 0; i < log.recoveries.size(); ++i) {
        const auto& r = log.recoveries[i];
        t.AddRow({std::to_string(i + 1), std::to_string(r.plan.restart_iteration),
                  FormatBytes(r.plan.bytes_from_memory),
                  FormatBytes(r.plan.bytes_from_storage),
                  Table::Num(r.plt * 100.0, 3), std::to_string(r.k_after)});
    }
    std::printf("%s", t.ToString().c_str());
    std::printf("checkpoints written: %zu; final PLT %.3f%%\n", log.checkpoints,
                log.plt * 100.0);
    std::printf("final validation loss: faulty run %.4f vs fault-free %.4f "
                "(delta %+.4f)\n",
                log.final_eval_loss, ref.final_eval_loss,
                log.final_eval_loss - ref.final_eval_loss);
    return 0;
}
