/**
 * @file
 * Pre-training under a realistic Poisson fault process.
 *
 * Uses the high-level fault-tolerant trainer: a 16-expert MoE LM trains on
 * a 16-rank (2-node) ZeRO-2 DP + EP deployment while nodes fail at a
 * constant rate; Dynamic-K escalates the PEC budget as faults accumulate.
 * Prints the per-fault recovery trace, the evolving K, PLT, and the final
 * validation loss compared against an identical fault-free run.
 */

#include <cstdio>

#include "data/corpus.h"
#include "faults/trainer.h"
#include "util/table.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"

using namespace moc;

int
main(int argc, char** argv) {
    const obs::ObsExportGuard obs_guard(argc, argv);
    CorpusConfig corpus_cfg;
    corpus_cfg.vocab_size = 64;
    ZipfMarkovCorpus corpus(corpus_cfg);
    LmBatchStream train(corpus, 8, 16, 0);
    LmBatchStream valid(corpus, 8, 16, 1);

    LmConfig model_cfg;
    model_cfg.vocab = 64;
    model_cfg.max_seq = 16;
    model_cfg.hidden = 32;
    model_cfg.num_heads = 2;
    model_cfg.head_dim = 16;
    model_cfg.num_layers = 4;
    model_cfg.num_experts = 16;

    LmTrainerConfig cfg;
    cfg.moc.pec.k_snapshot = 4;
    cfg.moc.pec.k_persist = 1;
    cfg.moc.i_ckpt = 12;
    cfg.moc.two_level_recovery = true;
    cfg.moc.dynamic_k = true;
    cfg.parallel = {.dp = 16, .ep = 16, .tp = 1, .pp = 1};
    cfg.gpus_per_node = 8;
    cfg.total_iterations = 240;
    cfg.eval_every = 48;
    cfg.adam.lr = 3e-3;

    // Fault-free reference run.
    MoeTransformerLm ref_model(model_cfg);
    FaultInjector none(std::vector<FaultEvent>{});
    const auto ref = RunFaultTolerantLmTraining(ref_model, train, valid, cfg, none);

    // The exports should describe the faulty run only, so drop everything the
    // reference run accumulated.
    obs::MetricsRegistry::Instance().ResetAll();
    obs::EventJournal::Instance().Clear();

    // Poisson faults: expect ~4 over the run, hitting either node.
    MoeTransformerLm model(model_cfg);
    auto injector =
        FaultInjector::Poisson(/*faults_per_iteration=*/1.0 / 60.0,
                               cfg.total_iterations, /*num_nodes=*/2, /*seed=*/2024);
    std::printf("scheduled faults: %zu\n", injector.events().size());
    const auto log = RunFaultTolerantLmTraining(model, train, valid, cfg, injector);

    Table t({"fault #", "restart iter", "from memory", "from storage",
             "PLT after (%)", "K after"});
    for (std::size_t i = 0; i < log.recoveries.size(); ++i) {
        const auto& r = log.recoveries[i];
        t.AddRow({std::to_string(i + 1), std::to_string(r.plan.restart_iteration),
                  FormatBytes(r.plan.bytes_from_memory),
                  FormatBytes(r.plan.bytes_from_storage),
                  Table::Num(r.plt * 100.0, 3), std::to_string(r.k_after)});
    }
    std::printf("%s", t.ToString().c_str());
    std::printf("checkpoints written: %zu; final PLT %.3f%%\n", log.checkpoints,
                log.plt * 100.0);
    std::printf("final validation loss: faulty run %.4f vs fault-free %.4f "
                "(delta %+.4f)\n",
                log.final_eval_loss, ref.final_eval_loss,
                log.final_eval_loss - ref.final_eval_loss);
    return 0;
}
