/**
 * @file
 * Durable save / cold-start resume across "job restarts".
 *
 * Phase 1 trains a PEC-checkpointed MoE LM, then exports the persistent
 * checkpoint to an on-disk FileStore. Phase 2 simulates a fresh scheduler
 * placement: a brand-new model instance cold-starts from the files and
 * training continues from the restart point. Demonstrates that the durable
 * path alone (no surviving in-memory snapshots) reconstructs a usable
 * state — the O_restart scenario of Eq. 3.
 */

#include <cstdio>
#include <filesystem>

#include "core/cold_start.h"
#include "core/moc_system.h"
#include "data/corpus.h"
#include "nn/adam.h"
#include "nn/eval.h"
#include "nn/model.h"
#include "storage/file_store.h"
#include "obs/export.h"

using namespace moc;

namespace {

LmConfig
ModelCfg() {
    LmConfig cfg;
    cfg.vocab = 64;
    cfg.max_seq = 16;
    cfg.hidden = 24;
    cfg.num_heads = 2;
    cfg.head_dim = 12;
    cfg.num_layers = 4;
    cfg.num_experts = 8;
    cfg.seed = 3;
    return cfg;
}

}  // namespace

int
main(int argc, char** argv) {
    const obs::ObsExportGuard obs_guard(argc, argv);
    const std::filesystem::path ckpt_dir =
        std::filesystem::temp_directory_path() / "moc_save_resume_demo";
    std::filesystem::remove_all(ckpt_dir);

    CorpusConfig corpus_cfg;
    corpus_cfg.vocab_size = 64;
    ZipfMarkovCorpus corpus(corpus_cfg);
    LmBatchStream train(corpus, 8, 16, 0);
    LmBatchStream valid(corpus, 8, 16, 1);

    double loss_before_restart = 0.0;
    // ---- Phase 1: the original job ----
    {
        MoeTransformerLm model(ModelCfg());
        Adam adam(AdamConfig{.lr = 3e-3});
        const auto params = model.AllParameters();
        RankTopology topo({.dp = 8, .ep = 8, .tp = 1, .pp = 1}, 4);
        MocSystemConfig moc_cfg;
        moc_cfg.pec.k_snapshot = 4;
        moc_cfg.pec.k_persist = 2;
        moc_cfg.i_ckpt = 8;
        ExtraState extra{0, 0, model.gating_rng().GetState()};
        MocCheckpointSystem moc(moc_cfg, model, topo, ModelCfg().ToModelSpec(),
                                extra);
        for (std::size_t iter = 1; iter <= 64; ++iter) {
            model.TrainBackward(train.Get(iter - 1));
            moc.RecordRouting(model.MoeLayers());
            adam.Step(params);
            if (moc.ShouldCheckpoint(iter)) {
                moc.Checkpoint(iter, {iter, adam.step_count(),
                                      model.gating_rng().GetState()});
            }
        }
        loss_before_restart = EvalStreamLoss(model, valid, 4);
        // Export the persistent level to disk.
        FileStore disk(ckpt_dir);
        const Bytes copied = CopyStore(moc.storage(), disk);
        std::printf("phase 1: trained 64 iterations, val loss %.4f; exported "
                    "%zu keys (%s) to %s\n",
                    loss_before_restart, disk.Count(),
                    FormatBytes(copied).c_str(), ckpt_dir.string().c_str());
    }

    // ---- Phase 2: a fresh process resumes from disk ----
    {
        MoeTransformerLm model(ModelCfg());  // fresh random init
        FileStore disk(ckpt_dir);
        const ColdStartReport report = ColdStartFromStore(model, disk);
        std::printf("phase 2: cold start restored %zu units (%s), restart "
                    "iteration %zu, %zu units missing\n",
                    report.keys_restored, FormatBytes(report.bytes_read).c_str(),
                    report.extra.iteration, report.missing.size());

        Adam adam(AdamConfig{.lr = 3e-3});
        adam.set_step_count(report.extra.adam_step);
        model.gating_rng().SetState(report.extra.gating_rng);
        const double resumed_loss = EvalStreamLoss(model, valid, 4);
        std::printf("  val loss after restore: %.4f (pre-restart job: %.4f)\n",
                    resumed_loss, loss_before_restart);

        const auto params = model.AllParameters();
        for (std::size_t iter = report.extra.iteration; iter < 128; ++iter) {
            model.TrainBackward(train.Get(iter));
            adam.Step(params);
        }
        std::printf("  continued to iteration 128: val loss %.4f\n",
                    EvalStreamLoss(model, valid, 4));
    }
    std::filesystem::remove_all(ckpt_dir);
    std::printf("expected: the restored loss is close to the pre-restart loss\n"
                "(PEC leaves some experts slightly stale) and keeps improving.\n");
    return 0;
}
