/**
 * @file
 * Quickstart: train a tiny MoE language model with Partial Experts
 * Checkpointing, kill a node mid-training, and recover.
 *
 * Walks through the core public API in ~80 lines:
 *   1. synthesize a corpus and build an MoE transformer;
 *   2. bind a MocCheckpointSystem (PEC K_snapshot=4, K_persist=1,
 *      two-level recovery) to the model;
 *   3. train; checkpoint every 8 iterations; fail node 0 at iteration 20;
 *   4. recover and finish; print the PLT bill and final loss.
 */

#include <cstdio>

#include "core/moc_system.h"
#include "data/corpus.h"
#include "nn/adam.h"
#include "nn/eval.h"
#include "nn/model.h"
#include "obs/export.h"

using namespace moc;

int
main(int argc, char** argv) {
    const obs::ObsExportGuard obs_guard(argc, argv);
    // 1. Data: a deterministic synthetic corpus with learnable structure.
    CorpusConfig corpus_cfg;
    corpus_cfg.vocab_size = 64;
    ZipfMarkovCorpus corpus(corpus_cfg);
    LmBatchStream train(corpus, 8, 16, /*stream_id=*/0);
    LmBatchStream valid(corpus, 8, 16, /*stream_id=*/1);

    // 2. Model: a 4-layer MoE transformer with 8 experts per MoE layer.
    LmConfig model_cfg;
    model_cfg.vocab = 64;
    model_cfg.max_seq = 16;
    model_cfg.hidden = 24;
    model_cfg.num_heads = 2;
    model_cfg.head_dim = 12;
    model_cfg.num_layers = 4;
    model_cfg.num_experts = 8;
    MoeTransformerLm model(model_cfg);
    Adam adam(AdamConfig{.lr = 3e-3});
    const auto params = model.AllParameters();

    // 3. Checkpoint system: PEC + fully sharded + two-level recovery, on a
    //    simulated 8-rank (2-node) ZeRO-2 DP + EP deployment.
    RankTopology topology({.dp = 8, .ep = 8, .tp = 1, .pp = 1},
                          /*gpus_per_node=*/4);
    MocSystemConfig moc_cfg;
    moc_cfg.pec.k_snapshot = 4;  // snapshot 4 of 8 experts per layer
    moc_cfg.pec.k_persist = 1;   // persist 1 of those to durable storage
    moc_cfg.i_ckpt = 8;
    moc_cfg.two_level_recovery = true;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem moc(moc_cfg, model, topology, model_cfg.ToModelSpec(),
                            extra);

    // 4. Train with a fault at iteration 20 (one-shot: faults are wall-clock
    //    events, so the replayed iteration 20 must not re-fire it).
    std::printf("training 48 iterations; node 0 dies after iteration 20...\n");
    std::size_t iter = 0;
    bool fault_pending = true;
    while (iter < 48) {
        const double loss = model.TrainBackward(train.Get(iter));
        moc.RecordRouting(model.MoeLayers());
        adam.Step(params);
        ++iter;
        if (iter % 8 == 0) {
            moc.Checkpoint(iter, {iter, adam.step_count(),
                                  model.gating_rng().GetState()});
        }
        if (iter == 20 && fault_pending) {
            fault_pending = false;
            std::printf("  iteration %zu: loss %.4f — node 0 fails!\n", iter, loss);
            const RecoveryReport report = moc.RecoverFromFault({0});
            adam.set_step_count(report.extra.adam_step);
            model.gating_rng().SetState(report.extra.gating_rng);
            iter = report.extra.iteration;
            std::printf("  recovered to iteration %zu (%s from memory, %s from "
                        "storage), PLT so far %.3f%%\n",
                        iter, FormatBytes(report.plan.bytes_from_memory).c_str(),
                        FormatBytes(report.plan.bytes_from_storage).c_str(),
                        report.plt * 100.0);
        }
        if (iter % 16 == 0) {
            std::printf("  iteration %zu: loss %.4f\n", iter, loss);
        }
    }

    const double final_loss = EvalStreamLoss(model, valid, 4);
    std::printf("done. final validation loss %.4f (corpus entropy floor %.4f), "
                "total PLT %.3f%%\n",
                final_loss, corpus.ConditionalEntropy(),
                moc.ledger().Plt() * 100.0);
    return 0;
}
