/**
 * @file
 * Process launcher for the multi-process cluster gauntlet: forks one
 * coordinator and N rank processes of `examples/cluster_procs` (or any
 * binary speaking its flags), supervises them, and reports the
 * coordinator's verdict.
 *
 *   moc_launcher --binary build/examples/cluster_procs --ranks 3 \
 *       --events 3 --ckpt-dir /tmp/gauntlet \
 *       --fault kill:rank=1:event=2:phase=persist:after=3
 *
 * Supervision rules:
 *  - every flag the launcher does not consume is passed through to every
 *    child (plus `--role`/`--rank`); per-role observability exports get
 *    distinct file names via `--events-out-dir`;
 *  - `--obs-out-dir DIR` wires per-role journal/metrics/trace exports into
 *    DIR and, after teardown — on *every* exit path, including timeout and
 *    SIGKILL'd ranks — merges them onto the coordinator clock as
 *    DIR/cluster_events.jsonl, cluster_trace.json, cluster_metrics.json
 *    (obs/merge.h; torn artifacts of killed ranks are skipped + counted);
 *  - the run's exit code is the coordinator's exit code — a rank dying is
 *    the *experiment*, not a launcher failure;
 *  - when the coordinator exits, every surviving child is SIGKILLed
 *    (SIGKILL also reaps SIGSTOPped ranks left frozen by a `stop:` fault);
 *  - `--timeout-s` bounds the whole run: on expiry everything is killed
 *    and the launcher exits 124 (the `timeout(1)` convention).
 */

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/export.h"
#include "obs/merge.h"

namespace {

struct Child {
    pid_t pid = -1;
    std::string role;  // "coordinator" or "rank<k>"
    bool exited = false;
    bool reported = false;
    int status = 0;
    /** The argv it was spawned with, kept for --respawn re-forks. */
    std::vector<std::string> args;
    bool rank_child = false;
    /** Times this rank has been re-forked after a signal death. */
    std::size_t respawns = 0;
};

/** `--name value` lookup. */
const char*
FlagStr(int argc, char** argv, const char* name, const char* fallback) {
    const std::string flag = std::string("--") + name;
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag) {
            return argv[i + 1];
        }
    }
    return fallback;
}

double
FlagDouble(int argc, char** argv, const char* name, double fallback) {
    const char* value = FlagStr(argc, argv, name, nullptr);
    return value != nullptr ? std::atof(value) : fallback;
}

/** Flags the launcher consumes; everything else passes through. */
bool
LauncherFlag(const std::string& flag) {
    return flag == "--binary" || flag == "--timeout-s" ||
           flag == "--events-out-dir" || flag == "--metrics-out-dir" ||
           flag == "--obs-out-dir" || flag == "--respawn" ||
           flag == "--http-port";
}

pid_t
Spawn(const std::string& binary, const std::vector<std::string>& args) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(binary.c_str()));
    for (const auto& arg : args) {
        argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid == 0) {
        ::execv(binary.c_str(), argv.data());
        std::fprintf(stderr, "moc_launcher: execv %s: %s\n", binary.c_str(),
                     std::strerror(errno));
        ::_exit(127);
    }
    return pid;
}

void
KillSurvivors(std::vector<Child>& children) {
    for (auto& child : children) {
        if (!child.exited && child.pid > 0) {
            // SIGKILL delivers to SIGSTOPped processes too — a rank a
            // `stop:` fault froze is reaped here, not leaked.
            ::kill(child.pid, SIGKILL);
        }
    }
    for (auto& child : children) {
        if (!child.exited && child.pid > 0) {
            ::waitpid(child.pid, &child.status, 0);
            child.exited = true;
        }
    }
}

/** Whole-file read; empty + false when unreadable (never-started rank). */
bool
ReadFileIfAny(const std::string& path, std::string* text) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    *text = buf.str();
    return true;
}

/**
 * Merges the per-role artifacts under @p dir onto the coordinator clock.
 * Runs after teardown on every exit path: the artifacts of SIGKILL'd or
 * timed-out ranks are exactly the evidence a post-mortem needs, so missing
 * files and torn tails are warnings with counts, never failures.
 */
void
MergeObsArtifacts(const std::string& dir,
                  const std::vector<std::string>& roles) {
    std::vector<moc::obs::RoleEvents> role_events;
    std::vector<moc::obs::RoleSpans> role_spans;
    std::vector<std::pair<std::string, std::string>> role_metrics;
    std::size_t torn_traces = 0;
    for (const std::string& role : roles) {
        std::string text;
        if (ReadFileIfAny(dir + "/" + role + ".events.jsonl", &text)) {
            role_events.push_back(
                moc::obs::ParseRoleEventsJsonl(text, role));
        }
        if (ReadFileIfAny(dir + "/" + role + ".trace.json", &text)) {
            try {
                role_spans.push_back(moc::obs::ParseRoleTrace(text, role));
            } catch (const std::exception&) {
                ++torn_traces;  // killed mid-write; the journal still merges
            }
        }
        if (ReadFileIfAny(dir + "/" + role + ".metrics.json", &text)) {
            role_metrics.emplace_back(role, std::move(text));
        }
    }

    const moc::obs::MergedEvents merged =
        moc::obs::MergeRoleEvents(role_events);
    moc::obs::WriteTextFile(dir + "/cluster_events.jsonl",
                            moc::obs::ClusterEventsJsonl(merged),
                            "cluster journal");
    moc::obs::WriteTextFile(dir + "/cluster_trace.json",
                            moc::obs::MergedChromeTraceJson(role_spans),
                            "cluster trace");
    std::size_t torn_metrics = 0;
    moc::obs::WriteTextFile(
        dir + "/cluster_metrics.json",
        moc::obs::ClusterMetricsJson(role_metrics, &torn_metrics),
        "cluster metrics");

    std::printf("moc_launcher: merged %zu/%zu role journal(s) (%zu events) "
                "into %s/cluster_events.jsonl\n",
                role_events.size(), roles.size(), merged.events.size(),
                dir.c_str());
    if (merged.skipped_lines > 0) {
        std::printf("moc_launcher: warning: skipped %zu malformed journal "
                    "line(s) (torn tails of killed ranks)\n",
                    merged.skipped_lines);
    }
    if (torn_traces > 0) {
        std::printf("moc_launcher: warning: %zu role trace(s) unreadable\n",
                    torn_traces);
    }
    if (torn_metrics > 0) {
        std::printf("moc_launcher: warning: %zu role metrics dump(s) "
                    "unreadable\n",
                    torn_metrics);
    }
}

void
ReportChild(Child& child) {
    if (child.reported) {
        return;
    }
    child.reported = true;
    if (WIFSIGNALED(child.status)) {
        std::printf("moc_launcher: %s (pid %d) killed by signal %d%s\n",
                    child.role.c_str(), child.pid, WTERMSIG(child.status),
                    WTERMSIG(child.status) == SIGKILL ? " (SIGKILL)" : "");
    } else if (WIFEXITED(child.status)) {
        std::printf("moc_launcher: %s (pid %d) exited %d\n",
                    child.role.c_str(), child.pid,
                    WEXITSTATUS(child.status));
    }
}

}  // namespace

int
main(int argc, char** argv) {
    const char* binary = FlagStr(argc, argv, "binary", nullptr);
    const double timeout_s = FlagDouble(argc, argv, "timeout-s", 120.0);
    // --respawn N: a rank killed by a signal is re-forked (same argv plus
    // --respawned <count>) up to N times per rank — the supervisor half of
    // the elastic rejoin story. The coordinator is never respawned: it owns
    // the run's identity and verdict.
    const auto respawn_budget =
        static_cast<std::size_t>(FlagDouble(argc, argv, "respawn", 0));
    const char* obs_dir = FlagStr(argc, argv, "obs-out-dir", nullptr);
    // Consumed here and handed to the coordinator only: the ranks must not
    // race for one fixed port — the coordinator owns the scrape surface.
    const char* http_port = FlagStr(argc, argv, "http-port", nullptr);
    // --obs-out-dir implies per-role journal + metrics exports there too.
    const char* events_dir =
        FlagStr(argc, argv, "events-out-dir", obs_dir);
    const char* metrics_dir =
        FlagStr(argc, argv, "metrics-out-dir", obs_dir);
    const auto ranks =
        static_cast<std::size_t>(FlagDouble(argc, argv, "ranks", 3));
    if (binary == nullptr || ranks == 0) {
        std::printf("usage: moc_launcher --binary PATH [--ranks N] "
                    "[--timeout-s S] [--respawn N] [--obs-out-dir DIR] "
                    "[--events-out-dir DIR] [--metrics-out-dir DIR] "
                    "[--http-port P] "
                    "[passthrough flags for the binary...]\n"
                    "  --http-port P: coordinator serves the live endpoint "
                    "on 127.0.0.1:P (0 = ephemeral; port printed and "
                    "published next to the transport port file)\n");
        return 2;
    }
    if (obs_dir != nullptr) {
        ::mkdir(obs_dir, 0755);  // EEXIST is fine
    }

    // Pass-through: every flag pair the launcher didn't consume.
    std::vector<std::string> shared;
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i][0] == '-' && argv[i][1] == '-') {
            if (LauncherFlag(argv[i])) {
                ++i;
                continue;
            }
            shared.push_back(argv[i]);
            shared.push_back(argv[i + 1]);
            ++i;
        }
    }

    std::vector<Child> children;
    {
        std::vector<std::string> args = shared;
        args.emplace_back("--role");
        args.emplace_back("coordinator");
        if (http_port != nullptr) {
            args.emplace_back("--http-port");
            args.emplace_back(http_port);
        }
        if (events_dir != nullptr) {
            args.emplace_back("--events-out");
            args.emplace_back(std::string(events_dir) +
                              "/coordinator.events.jsonl");
        }
        if (metrics_dir != nullptr) {
            args.emplace_back("--metrics-out");
            args.emplace_back(std::string(metrics_dir) +
                              "/coordinator.metrics.json");
        }
        if (obs_dir != nullptr) {
            args.emplace_back("--trace-out");
            args.emplace_back(std::string(obs_dir) +
                              "/coordinator.trace.json");
            args.emplace_back("--prom-out");
            args.emplace_back(std::string(obs_dir) +
                              "/coordinator.prom.txt");
            args.emplace_back("--series-out");
            args.emplace_back(std::string(obs_dir) +
                              "/coordinator.series.jsonl");
        }
        Child child;
        child.pid = Spawn(binary, args);
        child.role = "coordinator";
        child.args = std::move(args);
        children.push_back(std::move(child));
    }
    for (std::size_t r = 0; r < ranks; ++r) {
        std::vector<std::string> args = shared;
        args.emplace_back("--role");
        args.emplace_back("rank");
        args.emplace_back("--rank");
        args.emplace_back(std::to_string(r));
        if (events_dir != nullptr) {
            args.emplace_back("--events-out");
            args.emplace_back(std::string(events_dir) + "/rank" +
                              std::to_string(r) + ".events.jsonl");
        }
        if (metrics_dir != nullptr) {
            args.emplace_back("--metrics-out");
            args.emplace_back(std::string(metrics_dir) + "/rank" +
                              std::to_string(r) + ".metrics.json");
        }
        if (obs_dir != nullptr) {
            args.emplace_back("--trace-out");
            args.emplace_back(std::string(obs_dir) + "/rank" +
                              std::to_string(r) + ".trace.json");
            args.emplace_back("--series-out");
            args.emplace_back(std::string(obs_dir) + "/rank" +
                              std::to_string(r) + ".series.jsonl");
        }
        Child child;
        child.pid = Spawn(binary, args);
        child.role = "rank" + std::to_string(r);
        child.args = std::move(args);
        child.rank_child = true;
        children.push_back(std::move(child));
    }
    for (const auto& child : children) {
        if (child.pid < 0) {
            std::fprintf(stderr, "moc_launcher: fork failed\n");
            KillSurvivors(children);
            return 1;
        }
    }
    std::printf("moc_launcher: %zu rank(s) + coordinator launched from %s\n",
                ranks, binary);

    // Supervise: poll for exits until the coordinator finishes or the
    // global timeout expires. Rank deaths in between are logged and left
    // for the coordinator to handle — they are the experiment.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::duration_cast<
                              std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(timeout_s));
    Child* coordinator = &children.front();
    while (!coordinator->exited) {
        if (std::chrono::steady_clock::now() >= deadline) {
            std::fprintf(stderr,
                         "moc_launcher: timeout after %.1fs, killing fleet\n",
                         timeout_s);
            KillSurvivors(children);
            if (obs_dir != nullptr) {
                std::vector<std::string> roles;
                for (const auto& child : children) {
                    roles.push_back(child.role);
                }
                MergeObsArtifacts(obs_dir, roles);
            }
            return 124;
        }
        int status = 0;
        const pid_t pid = ::waitpid(-1, &status, WNOHANG);
        if (pid <= 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
            continue;
        }
        for (auto& child : children) {
            if (child.pid == pid) {
                child.exited = true;
                child.status = status;
                ReportChild(child);
                if (child.rank_child && WIFSIGNALED(status) &&
                    child.respawns < respawn_budget) {
                    // The elastic rejoin path: same argv, fresh process,
                    // fresh transport epoch. --respawned tells the rank its
                    // incarnation (and to skip re-arming its fault specs —
                    // the death already happened).
                    ++child.respawns;
                    std::vector<std::string> args = child.args;
                    args.emplace_back("--respawned");
                    args.emplace_back(std::to_string(child.respawns));
                    child.pid = Spawn(binary, args);
                    child.exited = false;
                    child.reported = false;
                    std::printf("moc_launcher: respawned %s (attempt %zu, "
                                "pid %d)\n",
                                child.role.c_str(), child.respawns,
                                child.pid);
                }
                break;
            }
        }
    }

    KillSurvivors(children);
    for (auto& child : children) {
        if (&child != coordinator) {
            ReportChild(child);
        }
    }
    if (obs_dir != nullptr) {
        std::vector<std::string> roles;
        for (const auto& child : children) {
            roles.push_back(child.role);
        }
        MergeObsArtifacts(obs_dir, roles);
    }
    const int code = WIFEXITED(coordinator->status)
                         ? WEXITSTATUS(coordinator->status)
                         : 128 + WTERMSIG(coordinator->status);
    std::printf("moc_launcher: coordinator verdict %d\n", code);
    return code;
}
