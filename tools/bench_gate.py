#!/usr/bin/env python3
"""Diff a bench run's moc-bench/1 summary against its checked-in baseline.

Usage:
    bench_gate.py --baseline bench/baselines/BENCH_persist_pipeline.json \
                  --candidate results/BENCH_persist_pipeline.json \
                  [--tolerance 0.02]

Every scalar the baseline records must be present in the candidate and agree
within the relative tolerance (absolute for baseline values of 0). Scalars
only the candidate has are reported but do not fail the gate — they become
gated once added to the baseline. Exit 0 on pass, 1 on any violation,
2 on unreadable/invalid input.
"""

import argparse
import json
import sys


def numeric(value):
    """True for real numbers; bool is a subclass of int but not a scalar."""
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_gate: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc, dict):
        print(f"bench_gate: {path}: top-level JSON is "
              f"{type(doc).__name__}, expected an object", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "moc-bench/1":
        print(f"bench_gate: {path}: schema is {doc.get('schema')!r}, "
              "expected 'moc-bench/1'", file=sys.stderr)
        sys.exit(2)
    if not isinstance(doc.get("scalars"), dict):
        print(f"bench_gate: {path}: missing 'scalars' object",
              file=sys.stderr)
        sys.exit(2)
    for name, value in doc["scalars"].items():
        if not numeric(value):
            print(f"bench_gate: {path}: scalar {name!r} is "
                  f"{value!r}, expected a number", file=sys.stderr)
            sys.exit(2)
    return doc


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--baseline", required=True)
    ap.add_argument("--candidate", required=True)
    ap.add_argument("--tolerance", type=float, default=0.02,
                    help="relative tolerance (default 0.02)")
    args = ap.parse_args()

    baseline = load(args.baseline)
    candidate = load(args.candidate)
    if baseline.get("bench") != candidate.get("bench"):
        print(f"bench_gate: bench mismatch: baseline is "
              f"{baseline.get('bench')!r}, candidate is "
              f"{candidate.get('bench')!r}", file=sys.stderr)
        sys.exit(2)

    base = baseline["scalars"]
    cand = candidate["scalars"]
    failures = []
    print(f"bench_gate: {baseline.get('bench')} "
          f"({len(base)} gated scalar(s), tolerance {args.tolerance:g})")
    for name in sorted(base):
        want = base[name]
        if name not in cand:
            failures.append(f"{name}: missing from candidate")
            print(f"  FAIL {name}: baseline {want:g}, candidate missing")
            continue
        got = cand[name]
        delta = abs(got - want)
        limit = abs(want) * args.tolerance if want != 0 else args.tolerance
        ok = delta <= limit
        status = "ok  " if ok else "FAIL"
        rel = f" ({delta / abs(want) * 100:.2f}%)" if want != 0 else ""
        print(f"  {status} {name}: baseline {want:g}, candidate {got:g}{rel}")
        if not ok:
            failures.append(
                f"{name}: {got:g} vs baseline {want:g} exceeds tolerance")
    for name in sorted(set(cand) - set(base)):
        print(f"  note {name}: {cand[name]:g} (not in baseline, ungated)")

    if failures:
        print(f"bench_gate: FAILED ({len(failures)} violation(s))",
              file=sys.stderr)
        sys.exit(1)
    print("bench_gate: PASS")


if __name__ == "__main__":
    main()
