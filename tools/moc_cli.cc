/**
 * @file
 * `moc_cli` — command-line utilities over the MoC-System library:
 * checkpoint inspection, shard planning, deployment simulation, and
 * fault-trace validation. Logic lives in cli_lib.{h,cc}.
 */

#include <iostream>
#include <string>
#include <vector>

#include "cli_lib.h"

int
main(int argc, char** argv) {
    std::vector<std::string> tokens;
    tokens.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
    for (int i = 1; i < argc; ++i) {
        tokens.emplace_back(argv[i]);
    }
    return moc::cli::Main(tokens, std::cout, std::cerr);
}
