/**
 * @file
 * `moc_cli watch` — a terminal client for the live observability endpoint
 * (src/obs/http_endpoint.h). Polls `/healthz` + `/ranks` + `/series` on a
 * running coordinator (or single-process trainer) and renders a per-rank
 * health table plus the in-flight overhead trajectory.
 *
 *   moc_cli watch --url http://127.0.0.1:8080 [--once] [--watch-json]
 *       [--interval-s S] [--max-polls N] [--series-last N]
 *
 * Exit codes (asserted by the CI gauntlet):
 *   0  the endpoint answered and /healthz was 200 (healthy)
 *   1  the endpoint answered but /healthz was non-200 (degraded: a rank is
 *      dead or suspect)
 *   2  the endpoint was never reachable (connection refused, bad URL,
 *      timeout before the first answer)
 *
 * In loop mode (without --once) the watcher polls every --interval-s until
 * the endpoint disappears — a vanished endpoint after a successful poll
 * means the run ended, and the exit code is the last observed verdict.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cli_lib.h"
#include "obs/http_endpoint.h"
#include "util/bytes.h"
#include "util/json.h"
#include "util/table.h"

namespace moc::cli {

namespace {

/** One poll's fetched pages; reachable == the /healthz GET answered. */
struct PollResult {
    bool reachable = false;
    int health_status = 0;
    std::string healthz;
    std::string ranks;
    std::string series;
};

/** Strips the trailing newline the endpoint bodies carry. */
std::string
Chomp(std::string s) {
    while (!s.empty() && (s.back() == '\n' || s.back() == '\r')) {
        s.pop_back();
    }
    return s;
}

PollResult
Poll(const obs::UrlParts& url, std::size_t series_last) {
    PollResult result;
    const auto health = obs::HttpGet(url.host, url.port, "/healthz");
    if (!health) {
        return result;
    }
    result.reachable = true;
    result.health_status = health->status;
    result.healthz = Chomp(health->body);
    if (const auto ranks = obs::HttpGet(url.host, url.port, "/ranks")) {
        result.ranks = Chomp(ranks->body);
    }
    const std::string series_path =
        "/series?last=" + std::to_string(series_last);
    if (const auto series = obs::HttpGet(url.host, url.port, series_path)) {
        result.series = Chomp(series->body);
    }
    return result;
}

/** "n/a" for the unknown-PLT sentinel, percent otherwise. */
std::string
PltCell(double plt) {
    return plt < 0.0 ? "n/a" : Table::Num(plt * 100.0, 3) + "%";
}

void
RenderHuman(const PollResult& poll, std::ostream& out) {
    try {
        const json::Value health = json::Parse(poll.healthz);
        out << (poll.health_status == 200 ? "HEALTHY" : "DEGRADED")
            << " (healthz " << poll.health_status << "): "
            << health.U64Or("alive", 0) << "/" << health.U64Or("ranks", 0)
            << " rank(s) alive, " << health.U64Or("stragglers", 0)
            << " straggler(s), iteration " << health.U64Or("iteration", 0)
            << ", " << health.U64Or("telemetry_samples", 0)
            << " telemetry sample(s)\n";
    } catch (const std::exception&) {
        out << "healthz " << poll.health_status << " (unparseable body)\n";
    }

    try {
        const json::Value ranks = json::Parse(poll.ranks);
        const json::Array& rows = ranks.At("ranks").AsArray();
        if (!rows.empty()) {
            Table t({"rank", "alive", "phase", "gen", "iter", "slack (s)",
                     "straggler", "samples"});
            for (const json::Value& row : rows) {
                const bool alive =
                    row.Find("alive") != nullptr && row.At("alive").AsBool();
                t.AddRow({std::to_string(
                              static_cast<long long>(row.NumberOr("rank", -1))),
                          alive ? "yes"
                                : "DEAD (" +
                                      row.StringOr("death_cause", "?") + ")",
                          row.StringOr("phase", "idle"),
                          std::to_string(row.U64Or("generation", 0)),
                          std::to_string(row.U64Or("iteration", 0)),
                          Table::Num(row.NumberOr("slack_s", 0.0), 3),
                          row.Find("straggler") != nullptr &&
                                  row.At("straggler").AsBool()
                              ? "YES"
                              : "no",
                          std::to_string(row.U64Or("samples", 0))});
            }
            out << t.ToString();
        }
    } catch (const std::exception&) {
        out << "(no parseable /ranks view)\n";
    }

    try {
        const json::Value series = json::Parse(poll.series);
        const json::Array& points = series.At("points").AsArray();
        out << "overhead trajectory (" << series.U64Or("total", 0)
            << " point(s) total, last " << points.size() << "):\n";
        if (!points.empty()) {
            Table t({"iter", "iter (s)", "persisted", "saved", "PLT",
                     "live", "stragglers"});
            for (const json::Value& p : points) {
                t.AddRow({std::to_string(p.U64Or("iteration", 0)),
                          Table::Num(p.NumberOr("iter_seconds", 0.0), 4),
                          FormatBytes(p.U64Or("bytes_persisted", 0)),
                          FormatBytes(p.U64Or("bytes_saved", 0)),
                          PltCell(p.NumberOr("plt", -1.0)),
                          std::to_string(p.U64Or("live_ranks", 0)),
                          std::to_string(p.U64Or("stragglers", 0))});
            }
            out << t.ToString();
        }
    } catch (const std::exception&) {
        out << "(no parseable /series window)\n";
    }
}

/** One poll as a `moc-watch/1` JSON object (bodies embedded verbatim). */
void
RenderJson(const std::string& url, const PollResult& poll,
           std::ostream& out) {
    out << "{\"schema\": \"moc-watch/1\", \"url\": \"" << url
        << "\", \"reachable\": " << (poll.reachable ? "true" : "false")
        << ", \"health_status\": " << poll.health_status << ", \"healthy\": "
        << (poll.health_status == 200 ? "true" : "false");
    // The endpoint bodies are JSON already; embed, don't re-encode.
    out << ", \"healthz\": " << (poll.healthz.empty() ? "null" : poll.healthz)
        << ", \"ranks\": " << (poll.ranks.empty() ? "null" : poll.ranks)
        << ", \"series\": " << (poll.series.empty() ? "null" : poll.series)
        << "}\n";
}

}  // namespace

int
RunWatch(const Args& args, std::ostream& out) {
    const std::string url_text = args.Get("url", "");
    const auto url = obs::ParseHttpUrl(url_text);
    if (!url) {
        out << "usage: moc_cli watch --url http://HOST:PORT [--once 1]\n"
               "    [--watch-json 1] [--interval-s S] [--max-polls N]\n"
               "    [--series-last N]\n"
               "  polls /healthz + /ranks + /series on a live run\n"
               "  exit 0 healthy, 1 degraded, 2 unreachable\n";
        return 2;
    }
    const bool once = args.GetInt("once", 0) != 0;
    const bool as_json = args.GetInt("watch-json", 0) != 0;
    const double interval_s =
        std::max(0.05, std::atof(args.Get("interval-s", "2.0").c_str()));
    const auto max_polls =
        static_cast<std::size_t>(args.GetInt("max-polls", 0));
    const auto series_last =
        static_cast<std::size_t>(args.GetInt("series-last", 10));

    bool ever_reached = false;
    int verdict = 2;
    std::size_t polls = 0;
    while (true) {
        const PollResult poll = Poll(*url, series_last);
        ++polls;
        if (poll.reachable) {
            ever_reached = true;
            verdict = poll.health_status == 200 ? 0 : 1;
            if (as_json) {
                RenderJson(url_text, poll, out);
            } else {
                RenderHuman(poll, out);
            }
        } else {
            if (!ever_reached) {
                out << (as_json
                            ? "{\"schema\": \"moc-watch/1\", \"url\": \"" +
                                  url_text + "\", \"reachable\": false}\n"
                            : "unreachable: " + url_text + "\n");
                return 2;
            }
            // The run ended out from under us; report the last verdict.
            if (!as_json) {
                out << "endpoint gone (" << url_text
                    << "); last verdict was "
                    << (verdict == 0 ? "healthy" : "degraded") << "\n";
            }
            return verdict;
        }
        if (once || (max_polls > 0 && polls >= max_polls)) {
            return verdict;
        }
        std::this_thread::sleep_for(std::chrono::duration<double>(interval_s));
    }
}

}  // namespace moc::cli
