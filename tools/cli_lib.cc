#include "cli_lib.h"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "core/moc_system.h"
#include "core/selection.h"
#include "obs/export.h"
#include "core/sharding.h"
#include "dist/presets.h"
#include "faults/trace.h"
#include "sim/gantt.h"
#include "sim/hardware.h"
#include "sim/perf_model.h"
#include "sim/timeline.h"
#include "storage/file_store.h"
#include "util/table.h"

namespace moc::cli {

std::string
Args::Get(const std::string& name, const std::string& fallback) const {
    for (const auto& [key, value] : options) {
        if (key == name) {
            return value;
        }
    }
    return fallback;
}

std::vector<std::string>
Args::GetAll(const std::string& name) const {
    std::vector<std::string> values;
    for (const auto& [key, value] : options) {
        if (key == name) {
            values.push_back(value);
        }
    }
    return values;
}

long
Args::GetInt(const std::string& name, long fallback) const {
    const std::string v = Get(name, "");
    if (v.empty()) {
        return fallback;
    }
    std::size_t pos = 0;
    const long parsed = std::stol(v, &pos);
    if (pos != v.size()) {
        throw std::invalid_argument("--" + name + " expects an integer, got '" +
                                    v + "'");
    }
    return parsed;
}

Args
ParseArgs(const std::vector<std::string>& tokens) {
    Args args;
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const std::string& tok = tokens[i];
        if (tok.rfind("--", 0) == 0) {
            if (i + 1 >= tokens.size()) {
                throw std::invalid_argument("option " + tok + " needs a value");
            }
            args.options.emplace_back(tok.substr(2), tokens[i + 1]);
            ++i;
        } else {
            args.positional.push_back(tok);
        }
    }
    return args;
}

int
RunInspect(const Args& args, std::ostream& out) {
    if (args.positional.empty()) {
        out << "usage: moc_cli inspect <ckpt-dir>\n";
        return 2;
    }
    FileStore store(args.positional.front());
    const auto keys = store.Keys();
    Table t({"key", "bytes"});
    Bytes total = 0;
    for (const auto& key : keys) {
        const auto blob = store.Get(key);
        const Bytes size = blob ? blob->size() : 0;
        total += size;
        t.AddRow({key, FormatBytes(size)});
    }
    out << t.ToString();
    out << keys.size() << " keys, " << FormatBytes(total) << " total\n";
    if (const auto extra = store.Get("extra/state")) {
        const ExtraState state = DeserializeExtraState(*extra);
        out << "restart point: iteration " << state.iteration << ", optimizer step "
            << state.adam_step << "\n";
    } else {
        out << "warning: no extra/state — not a complete MoC checkpoint\n";
    }
    return 0;
}

int
RunPlan(const Args& args, std::ostream& out) {
    ParallelConfig parallel;
    parallel.dp = static_cast<std::size_t>(args.GetInt("dp", 16));
    parallel.ep = static_cast<std::size_t>(args.GetInt("ep", 8));
    const auto gpus_per_node =
        static_cast<std::size_t>(args.GetInt("gpus-per-node", 8));
    const auto k = static_cast<std::size_t>(args.GetInt("k", 16));
    const std::string strategy = args.Get("strategy", "full");

    const ModelSpec spec = Gpt350M16E();
    if (parallel.dp % parallel.ep != 0 || spec.num_experts % parallel.ep != 0) {
        out << "error: ep must divide dp and the expert count (16)\n";
        return 2;
    }
    ShardingOptions options;
    if (strategy == "full") {
        options.equal_expert = true;
        options.equal_nonexpert = true;
        options.adaptive_nonexpert = true;
    } else if (strategy != "baseline") {
        out << "error: --strategy must be 'baseline' or 'full'\n";
        return 2;
    }
    const RankTopology topo(parallel, gpus_per_node);
    const ModelStateInventory inv(spec, StateBytes{});
    ShardingPlanner planner(inv, topo, options);
    SequentialSelector selector(spec.num_experts);
    std::vector<std::vector<ExpertId>> sel(spec.NumMoeLayers());
    for (std::size_t m = 0; m < sel.size(); ++m) {
        sel[m] = selector.Select(0, m, std::min(k, spec.num_experts));
    }
    const ShardPlan plan = planner.Plan(sel, sel);

    out << "GPT-350M-16E, dp=" << parallel.dp << " ep=" << parallel.ep << " ("
        << topo.NumEpGroups() << " EP groups), K=" << k << ", strategy "
        << strategy << "\n";
    Table t({"rank", "node", "items", "bytes"});
    for (RankId r = 0; r < topo.dp(); ++r) {
        t.AddRow({std::to_string(r), std::to_string(topo.NodeOf(r)),
                  std::to_string(plan.Items(r).size()),
                  FormatBytes(plan.RankBytes(r))});
    }
    out << t.ToString();
    out << "bottleneck " << FormatBytes(plan.BottleneckBytes()) << ", total "
        << FormatBytes(plan.TotalBytes()) << "\n";
    return 0;
}

int
RunSimulate(const Args& args, std::ostream& out) {
    const auto gpus = static_cast<std::size_t>(args.GetInt("gpus", 64));
    const std::string gpu_name = args.Get("gpu", "a800");
    const std::string size = args.Get("size", "medium");
    if (gpus == 0 || (gpu_name != "a800" && gpu_name != "h100")) {
        out << "usage: moc_cli simulate [--gpus N] [--gpu a800|h100] "
               "[--size small|medium|large] [--k N]\n";
        return 2;
    }
    TrainingSetup setup;
    setup.model = LlamaMoeSim(size, gpus);
    setup.parallel = {.dp = gpus, .ep = gpus, .tp = 1, .pp = 1};
    setup.gpus_per_node = 8;
    setup.gpu = gpu_name == "h100" ? H100() : A800();
    const auto k = static_cast<std::size_t>(
        args.GetInt("k", static_cast<long>(std::max<std::size_t>(1, gpus / 8))));
    const PerfModel model(setup);
    for (const auto& timing : SimulateAllMethods(model, k)) {
        out << RenderIterationGantt(timing, 56);
    }
    return 0;
}

int
RunTraceCheck(const Args& args, std::ostream& out) {
    if (args.positional.empty()) {
        out << "usage: moc_cli trace-check <trace-file>\n";
        return 2;
    }
    try {
        const auto injector = LoadFaultTrace(args.positional.front());
        out << "ok: " << injector.events().size() << " fault event(s)\n";
        out << FormatFaultTrace(injector);
        return 0;
    } catch (const std::exception& e) {
        out << "invalid trace: " << e.what() << "\n";
        return 1;
    }
}

namespace {

/**
 * Lets `watch`'s boolean flags be written bare (`--once`, `--watch-json`)
 * by inserting the implied "1" value where the next token is another
 * option or the end — ParseArgs itself demands `--flag value` pairs.
 */
std::vector<std::string>
ExpandBoolFlags(std::vector<std::string> tokens,
                const std::vector<std::string>& bool_flags) {
    std::vector<std::string> expanded;
    expanded.reserve(tokens.size() + bool_flags.size());
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        expanded.push_back(tokens[i]);
        const bool boolean =
            std::find(bool_flags.begin(), bool_flags.end(), tokens[i]) !=
            bool_flags.end();
        const bool bare = i + 1 >= tokens.size() ||
                          tokens[i + 1].rfind("--", 0) == 0;
        if (boolean && bare) {
            expanded.emplace_back("1");
        }
    }
    return expanded;
}

}  // namespace

int
Main(const std::vector<std::string>& tokens, std::ostream& out, std::ostream& err) {
    try {
        std::vector<std::string> remaining = tokens;
        const obs::ObsOptions obs_options = obs::ExtractObsOptions(remaining);
        if (remaining.empty()) {
            err << "usage: moc_cli "
                   "<inspect|plan|simulate|trace-check|report|fsck|trace"
                   "|watch> [args]\n"
                   "       [--metrics-out <json>] [--trace-out <chrome-trace>]\n"
                   "       [--events-out <jsonl>] [--prom-out <prom-text>]\n"
                   "       [--series-out <jsonl>]\n";
            return 2;
        }
        const std::string command = remaining.front();
        std::vector<std::string> rest(remaining.begin() + 1, remaining.end());
        if (command == "watch") {
            rest = ExpandBoolFlags(std::move(rest),
                                   {"--once", "--watch-json"});
        }
        const Args args = ParseArgs(rest);
        int code = 2;
        if (command == "inspect") {
            code = RunInspect(args, out);
        } else if (command == "plan") {
            code = RunPlan(args, out);
        } else if (command == "simulate") {
            code = RunSimulate(args, out);
        } else if (command == "trace-check") {
            code = RunTraceCheck(args, out);
        } else if (command == "report") {
            code = RunReport(args, out);
        } else if (command == "fsck") {
            code = RunFsck(args, out);
        } else if (command == "trace") {
            code = RunTrace(args, out);
        } else if (command == "watch") {
            code = RunWatch(args, out);
        } else {
            err << "unknown subcommand: " << command << "\n";
            return 2;
        }
        if (!obs::ExportObs(obs_options)) {
            err << "warning: observability export failed\n";
        }
        return code;
    } catch (const std::exception& e) {
        err << "error: " << e.what() << "\n";
        return 1;
    }
}

}  // namespace moc::cli
