/**
 * @file
 * `moc_cli trace`: the flight-recorder analyzer. Ingests a Chrome trace
 * produced by `--trace-out` (whose spans carry the TraceContext in their
 * `args`, see obs/critical_path.h) and prints, per checkpoint generation:
 *
 *   - the critical path (serialize -> snapshot -> persist -> verify ->
 *     seal), with per-segment waits and effective durations that sum to
 *     the measured wall time,
 *   - a per-rank profile with phase totals, shard counts, and slack
 *     against the straggler rank,
 *   - a per-phase O_save attribution against Eq. 11-13: each phase's
 *     share of the checkpoint cost scaled to run-level overhead by
 *     I_total / I_ckpt (src/core/overhead.h),
 *   - stall events from the journal (`--events`), matched by generation.
 *
 * `--annotated-out <path>` re-exports the trace with one Chrome `pid` lane
 * per generation so chrome://tracing groups each checkpoint event.
 * A machine-readable JSON object follows the `--- machine-readable
 * (moc-trace/1) ---` marker; `--trace-json <path>` also writes it to a
 * file. Missing or unparsable inputs exit with code 2.
 */

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

#include "cli_lib.h"
#include "core/overhead.h"
#include "obs/critical_path.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/merge.h"
#include "util/table.h"

namespace moc::cli {

namespace {

/** Whole-file read; nullopt (not a throw) so the caller can exit 2. */
std::optional<std::string>
ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

double
NsToS(std::uint64_t ns) {
    return static_cast<double>(ns) / 1e9;
}

std::string
Ms(std::uint64_t ns) {
    return Table::Num(static_cast<double>(ns) / 1e6, 3);
}

/**
 * The checkpoint interval in iterations, inferred from the gaps between
 * consecutive generation ids (generations are stamped with their
 * iteration). Modal gap; 0 when fewer than two generations.
 */
double
InferIntervalFromGenerations(const obs::FlightAnalysis& analysis) {
    std::map<std::uint64_t, std::size_t> gap_counts;
    for (std::size_t i = 1; i < analysis.generations.size(); ++i) {
        const std::uint64_t prev = analysis.generations[i - 1].generation;
        const std::uint64_t cur = analysis.generations[i].generation;
        if (cur > prev) {
            ++gap_counts[cur - prev];
        }
    }
    std::uint64_t best_gap = 0;
    std::size_t best_count = 0;
    for (const auto& [gap, count] : gap_counts) {
        if (count > best_count) {
            best_gap = gap;
            best_count = count;
        }
    }
    return static_cast<double>(best_gap);
}

/** Re-emits the trace with pid = generation, so each checkpoint event gets
    its own lane group in chrome://tracing. */
std::string
AnnotatedChromeTrace(const std::vector<obs::FlightSpan>& spans) {
    std::ostringstream out;
    out << "{\"traceEvents\": [";
    bool first = true;
    std::map<std::uint64_t, bool> named;
    for (const obs::FlightSpan& s : spans) {
        const std::uint64_t pid = s.generation;  // lane 0 = non-checkpoint
        if (s.generation != 0 && !named[s.generation]) {
            named[s.generation] = true;
            out << (first ? "" : ",")
                << "\n  {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
                << pid << ", \"args\": {\"name\": \"generation "
                << s.generation << "\"}}";
            first = false;
        }
        char ts[40];
        std::snprintf(ts, sizeof(ts), "%llu.%03u",
                      static_cast<unsigned long long>(s.start_ns / 1000),
                      static_cast<unsigned>(s.start_ns % 1000));
        char dur[40];
        std::snprintf(dur, sizeof(dur), "%llu.%03u",
                      static_cast<unsigned long long>(s.duration_ns / 1000),
                      static_cast<unsigned>(s.duration_ns % 1000));
        out << (first ? "" : ",") << "\n  {\"name\": \""
            << obs::JsonEscape(s.name) << "\", \"cat\": \""
            << obs::JsonEscape(s.category) << "\", \"ph\": \"X\", \"ts\": "
            << ts << ", \"dur\": " << dur << ", \"pid\": " << pid
            << ", \"tid\": " << s.tid << ", \"args\": {\"gen\": "
            << s.generation << ", \"iter\": " << s.iteration
            << ", \"rank\": " << s.rank << ", \"phase\": \""
            << obs::JsonEscape(s.phase) << "\"}}";
        first = false;
    }
    out << (spans.empty() ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
    return out.str();
}

}  // namespace

int
RunTrace(const Args& args, std::ostream& out) {
    const std::vector<std::string> trace_paths = args.GetAll("trace");
    const std::vector<std::string> events_paths = args.GetAll("events");
    if (trace_paths.empty()) {
        out << "usage: moc_cli trace --trace <chrome-trace.json> "
               "[--trace <...>] [--events <events.jsonl>] [--events <...>]\n"
               "       [--annotated-out <chrome-trace.json>] "
               "[--trace-json <path>]\n"
               "       [--i-total N] [--lambda X] [--t-iter X] [--i-ckpt N]\n";
        return 2;
    }
    const bool merged_traces = trace_paths.size() > 1;
    const bool merged_events = events_paths.size() > 1;

    std::vector<obs::FlightSpan> spans;
    std::vector<obs::JournalEvent> journal;
    std::vector<obs::RoleSpans> role_spans;
    try {
        for (const std::string& trace_path : trace_paths) {
            const auto trace_text = ReadFile(trace_path);
            if (!trace_text) {
                out << "error: cannot read '" << trace_path << "'\n";
                return 2;
            }
            if (merged_traces) {
                role_spans.push_back(obs::ParseRoleTrace(
                    *trace_text, obs::RoleFromFilename(trace_path)));
            } else {
                spans = obs::ParseChromeTraceJson(*trace_text);
            }
        }
        if (merged_traces) {
            // Every span rebased onto the coordinator clock
            // (obs/merge.h), so the critical path runs across processes.
            spans = obs::MergeRoleSpans(role_spans);
        }
        if (merged_events) {
            std::vector<obs::RoleEvents> role_events;
            for (const std::string& events_path : events_paths) {
                const auto events_text = ReadFile(events_path);
                if (!events_text) {
                    out << "error: cannot read '" << events_path << "'\n";
                    return 2;
                }
                role_events.push_back(obs::ParseRoleEventsJsonl(
                    *events_text, obs::RoleFromFilename(events_path)));
            }
            const obs::MergedEvents merged =
                obs::MergeRoleEvents(role_events);
            if (merged.skipped_lines > 0) {
                out << "warning: skipped " << merged.skipped_lines
                    << " malformed journal line(s) while merging\n";
            }
            journal.reserve(merged.events.size());
            for (const obs::ClusterEvent& ce : merged.events) {
                journal.push_back(ce.event);
            }
        } else if (!events_paths.empty()) {
            const auto events_text = ReadFile(events_paths.front());
            if (!events_text) {
                out << "error: cannot read '" << events_paths.front()
                    << "'\n";
                return 2;
            }
            journal = obs::ParseEventsJsonl(*events_text);
        }
    } catch (const std::exception& e) {
        out << "error: " << e.what() << "\n";
        return 2;
    }

    const obs::FlightAnalysis analysis = obs::AnalyzeFlight(spans);
    out << "MoC checkpoint flight recorder: " << spans.size() << " span(s), "
        << analysis.generations.size() << " generation(s)\n";
    if (merged_traces) {
        out << "merged " << trace_paths.size()
            << " role trace(s) onto the coordinator clock:";
        for (const obs::RoleSpans& rs : role_spans) {
            out << " " << rs.role << " (offset "
                << Table::Num(static_cast<double>(rs.clock_offset_ns) / 1e6,
                              3)
                << " ms)";
        }
        out << "\n";
    }
    if (analysis.generations.empty()) {
        out << "no checkpoint generations in the trace (spans need a "
               "TraceContext; run with --trace-out on a cluster persist)\n";
    }

    // Stalls by generation (gen 0 = unattributed).
    std::map<std::uint64_t, std::vector<const obs::JournalEvent*>> stalls;
    std::size_t stalls_total = 0;
    for (const obs::JournalEvent& e : journal) {
        if (e.kind == obs::EventKind::kStall) {
            stalls[e.gen].push_back(&e);
            ++stalls_total;
        }
    }

    // Overhead model operating point for the O_save attribution.
    FaultToleranceModel model;
    model.i_total = static_cast<double>(args.GetInt("i-total", 0));
    model.lambda = std::stod(args.Get("lambda", "0"));
    model.t_iter = std::stod(args.Get("t-iter", "0"));
    double i_ckpt = static_cast<double>(args.GetInt("i-ckpt", 0));
    if (i_ckpt <= 0.0) {
        i_ckpt = InferIntervalFromGenerations(analysis);
    }

    std::ostringstream machine;
    machine << "{\"schema\": \"moc-trace/1\",\n \"generations\": [";
    bool first_gen = true;

    for (const obs::GenerationProfile& gen : analysis.generations) {
        out << "\n== generation " << gen.generation << " (iteration "
            << gen.iteration << ") ==\n";
        out << "wall " << Ms(gen.wall_ns) << " ms, critical path "
            << Ms(gen.critical_ns) << " ms ("
            << Table::Num(gen.wall_ns > 0
                              ? 100.0 * static_cast<double>(gen.critical_ns) /
                                    static_cast<double>(gen.wall_ns)
                              : 0.0,
                          1)
            << "% of wall)\n";

        Table path({"#", "phase", "span", "rank", "wait (ms)", "dur (ms)",
                    "share"});
        for (std::size_t i = 0; i < gen.critical_path.size(); ++i) {
            const obs::CriticalSegment& seg = gen.critical_path[i];
            const double share =
                gen.critical_ns > 0
                    ? static_cast<double>(seg.duration_ns + seg.wait_ns) /
                          static_cast<double>(gen.critical_ns)
                    : 0.0;
            path.AddRow({std::to_string(i + 1), seg.phase, seg.name,
                         seg.rank >= 0 ? std::to_string(seg.rank) : "-",
                         Ms(seg.wait_ns), Ms(seg.duration_ns),
                         Table::Num(share * 100.0, 1) + "%"});
        }
        out << path.ToString();

        if (!gen.ranks.empty()) {
            Table ranks({"rank", "serialize (ms)", "snapshot (ms)",
                         "persist (ms)", "shards", "slack (ms)", ""});
            for (const obs::RankProfile& r : gen.ranks) {
                ranks.AddRow({std::to_string(r.rank), Ms(r.serialize_ns),
                              Ms(r.snapshot_ns), Ms(r.persist_ns),
                              std::to_string(r.shards), Ms(r.slack_ns),
                              r.rank == gen.straggler ? "<- straggler" : ""});
            }
            out << ranks.ToString();
        }

        // O_save attribution: this generation's cost by phase, scaled to
        // run-level save overhead (the first term of Eq. 12) when the
        // operating point is known.
        const double o_save_s = NsToS(gen.wall_ns);
        const bool scaled = model.i_total > 0.0 && i_ckpt > 0.0;
        out << "O_save (this generation) = " << Table::Num(o_save_s, 6)
            << " s";
        if (scaled) {
            out << "; run-level save overhead (Eq. 12, I_total/I_ckpt = "
                << Table::Num(model.i_total / i_ckpt, 1) << " events) = "
                << Table::Num(o_save_s * model.i_total / i_ckpt, 4) << " s";
        }
        out << "\n";
        Table attribution(
            {"phase", "critical (ms)", "share of O_save",
             scaled ? "run-level (Eq. 12, s)" : "run-level (need --i-total)"});
        for (const auto& [phase, ns] : gen.phase_ns) {
            const double phase_s = NsToS(ns);
            const double share =
                gen.critical_ns > 0 ? static_cast<double>(ns) /
                                          static_cast<double>(gen.critical_ns)
                                    : 0.0;
            attribution.AddRow(
                {phase, Ms(ns), Table::Num(share * 100.0, 1) + "%",
                 scaled ? Table::Num(phase_s * model.i_total / i_ckpt, 4)
                        : "-"});
        }
        out << attribution.ToString();
        if (model.lambda > 0.0 && model.t_iter > 0.0 && scaled) {
            const double total =
                TotalCheckpointOverhead(model, o_save_s, i_ckpt);
            out << "total overhead at this O_save (Eq. 12/13) = "
                << Table::Num(total, 4) << " s; optimal I* (Eq. 13) = "
                << Table::Num(OptimalInterval(model, o_save_s), 1)
                << " iters (run used " << Table::Num(i_ckpt, 1) << ")\n";
        }

        const auto stall_it = stalls.find(gen.generation);
        const std::size_t gen_stalls =
            stall_it == stalls.end() ? 0 : stall_it->second.size();
        if (gen_stalls > 0) {
            out << gen_stalls << " stall(s) in this generation:\n";
            for (const obs::JournalEvent* e : stall_it->second) {
                out << "  rank " << e->scope << ": " << e->detail << "\n";
            }
        }

        machine << (first_gen ? "" : ",") << "\n  {\"generation\": "
                << gen.generation << ", \"iteration\": " << gen.iteration
                << ", \"wall_s\": " << obs::JsonNumber(NsToS(gen.wall_ns))
                << ", \"critical_s\": "
                << obs::JsonNumber(NsToS(gen.critical_ns))
                << ", \"straggler\": " << gen.straggler
                << ", \"stalls\": " << gen_stalls << ",\n   \"phases\": {";
        bool first_phase = true;
        for (const auto& [phase, ns] : gen.phase_ns) {
            machine << (first_phase ? "" : ", ") << "\""
                    << obs::JsonEscape(phase)
                    << "\": " << obs::JsonNumber(NsToS(ns));
            first_phase = false;
        }
        machine << "},\n   \"critical_path\": [";
        for (std::size_t i = 0; i < gen.critical_path.size(); ++i) {
            const obs::CriticalSegment& seg = gen.critical_path[i];
            machine << (i == 0 ? "" : ", ") << "{\"phase\": \""
                    << obs::JsonEscape(seg.phase) << "\", \"rank\": "
                    << seg.rank << ", \"wait_s\": "
                    << obs::JsonNumber(NsToS(seg.wait_ns))
                    << ", \"duration_s\": "
                    << obs::JsonNumber(NsToS(seg.duration_ns)) << "}";
        }
        machine << "],\n   \"ranks\": [";
        for (std::size_t i = 0; i < gen.ranks.size(); ++i) {
            const obs::RankProfile& r = gen.ranks[i];
            machine << (i == 0 ? "" : ", ") << "{\"rank\": " << r.rank
                    << ", \"serialize_s\": "
                    << obs::JsonNumber(NsToS(r.serialize_ns))
                    << ", \"snapshot_s\": "
                    << obs::JsonNumber(NsToS(r.snapshot_ns))
                    << ", \"persist_s\": "
                    << obs::JsonNumber(NsToS(r.persist_ns))
                    << ", \"shards\": " << r.shards << ", \"slack_s\": "
                    << obs::JsonNumber(NsToS(r.slack_ns)) << "}";
        }
        machine << "]}";
        first_gen = false;
    }
    machine << (analysis.generations.empty() ? "" : "\n ") << "],\n"
            << " \"stalls_total\": " << stalls_total
            << ", \"i_ckpt\": " << obs::JsonNumber(i_ckpt)
            << ", \"spans\": " << spans.size()
            << ", \"trace_files\": " << trace_paths.size() << "}\n";

    if (stalls_total > 0) {
        out << "\n" << stalls_total
            << " stall event(s) total — see obs.stall.* metrics\n";
    }
    out << "\n--- machine-readable (moc-trace/1) ---\n" << machine.str();

    const std::string annotated_out = args.Get("annotated-out", "");
    if (!annotated_out.empty()) {
        if (!obs::WriteTextFile(annotated_out, AnnotatedChromeTrace(spans),
                                "annotated trace")) {
            out << "error: cannot write '" << annotated_out << "'\n";
            return 2;
        }
        out << "annotated trace written to " << annotated_out << "\n";
    }
    const std::string trace_json = args.Get("trace-json", "");
    if (!trace_json.empty() &&
        !obs::WriteTextFile(trace_json, machine.str(), "trace JSON")) {
        out << "error: cannot write '" << trace_json << "'\n";
        return 2;
    }
    return 0;
}

}  // namespace moc::cli
