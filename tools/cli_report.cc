/**
 * @file
 * `moc_cli report`: the run analyzer. Ingests a metrics JSON dump
 * (`--metrics-out`) and an event journal (`--events-out`) from any MoC
 * binary and prints:
 *
 *   - the recovery timeline (one row per fault, paired with its recovery,
 *     including how many keys restored degraded),
 *   - a storage-health section (retries, corruption, read repairs, injected
 *     faults, generation fallbacks — see docs/FAULT_MODEL.md),
 *   - the PLT trajectory against the Dynamic-K threshold, with bump markers,
 *   - a per-layer expert staleness / lost-token summary,
 *   - a measured-vs-predicted section that evaluates the paper's overhead
 *     model (src/core/overhead.h, Eq. 11-13) at the run's own operating
 *     point and reports residuals.
 *
 * A machine-readable JSON object follows the `--- machine-readable
 * (moc-report/1) ---` marker so tests and CI can check the numbers without
 * scraping tables; `--report-json <path>` additionally writes it to a file.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <map>
#include <optional>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "cli_lib.h"
#include "core/dynamic_k.h"
#include "core/overhead.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/merge.h"
#include "obs/metrics.h"
#include "util/bytes.h"
#include "util/json.h"
#include "util/table.h"

namespace moc::cli {

namespace {

/** Whole-file read; throws std::invalid_argument when unreadable. */
std::string
ReadFileOrThrow(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::invalid_argument("cannot read '" + path + "'");
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** The metrics dump, decoded back into registry-shaped containers. */
struct MetricsDump {
    std::map<std::string, std::string> meta;
    /** Numeric run-meta fields (clock_offset_ns), kept apart from the
        string table the meta section prints. */
    std::map<std::string, double> meta_numbers;
    std::map<std::string, double> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, obs::HistogramData> histograms;
    std::vector<obs::ExpertStat> experts;

    double Counter(const std::string& name) const {
        const auto it = counters.find(name);
        return it == counters.end() ? 0.0 : it->second;
    }

    const obs::HistogramData* Histogram(const std::string& name) const {
        const auto it = histograms.find(name);
        return it == histograms.end() ? nullptr : &it->second;
    }

    /** sum/count of a histogram, or 0 when absent/empty. */
    double HistogramMean(const std::string& name) const {
        const obs::HistogramData* h = Histogram(name);
        return (h == nullptr || h->count == 0)
                   ? 0.0
                   : h->sum / static_cast<double>(h->count);
    }

    double HistogramSum(const std::string& name) const {
        const obs::HistogramData* h = Histogram(name);
        return h == nullptr ? 0.0 : h->sum;
    }
};

std::uint64_t
AsU64(const json::Value& v) {
    // Counters are serialized as integer tokens; take the exact 64-bit
    // path so byte totals past 2^53 don't round through a double.
    return v.AsU64();
}

MetricsDump
ParseMetricsDump(const std::string& text) {
    const json::Value root = json::Parse(text);
    if (!root.is_object()) {
        throw std::invalid_argument("metrics dump is not a JSON object");
    }
    MetricsDump dump;
    if (const json::Value* meta = root.Find("meta")) {
        for (const auto& [key, value] : meta->AsObject()) {
            if (value.is_string()) {
                dump.meta[key] = value.AsString();
            } else if (value.is_number()) {
                dump.meta_numbers[key] = value.AsNumber();
            }
        }
    }
    if (const json::Value* counters = root.Find("counters")) {
        for (const auto& [name, value] : counters->AsObject()) {
            dump.counters[name] = value.AsNumber();
        }
    }
    if (const json::Value* gauges = root.Find("gauges")) {
        for (const auto& [name, value] : gauges->AsObject()) {
            dump.gauges[name] = value.AsNumber();
        }
    }
    if (const json::Value* histograms = root.Find("histograms")) {
        for (const auto& [name, value] : histograms->AsObject()) {
            obs::HistogramData h;
            h.count = AsU64(value.At("count"));
            h.sum = value.At("sum").AsNumber();
            for (const json::Value& bucket : value.At("buckets").AsArray()) {
                const json::Value& le = bucket.At("le");
                if (le.is_number()) {  // the "+inf" bucket has a string le
                    h.bounds.push_back(le.AsNumber());
                }
                h.bucket_counts.push_back(AsU64(bucket.At("count")));
            }
            dump.histograms[name] = std::move(h);
        }
    }
    if (const json::Value* experts = root.Find("experts")) {
        for (const json::Value& cell : experts->AsArray()) {
            obs::ExpertStat stat;
            stat.layer = static_cast<std::uint32_t>(cell.At("layer").AsNumber());
            stat.expert = static_cast<std::uint32_t>(cell.At("expert").AsNumber());
            stat.last_snapshot_iteration = AsU64(cell.At("last_snapshot_iteration"));
            stat.last_persist_iteration = AsU64(cell.At("last_persist_iteration"));
            stat.snapshot_staleness = AsU64(cell.At("snapshot_staleness"));
            stat.persist_staleness = AsU64(cell.At("persist_staleness"));
            stat.snapshots = AsU64(cell.At("snapshots"));
            stat.persists = AsU64(cell.At("persists"));
            stat.snapshot_bytes = AsU64(cell.At("snapshot_bytes"));
            stat.persist_bytes = AsU64(cell.At("persist_bytes"));
            stat.lost_tokens = AsU64(cell.At("lost_tokens"));
            dump.experts.push_back(stat);
        }
    }
    return dump;
}

/** One fault paired with the recovery that resolved it. */
struct RecoveryRecord {
    std::uint64_t fault_iteration = 0;
    std::string failed_nodes;
    std::uint64_t restart_iteration = 0;
    double duration_s = 0.0;
    std::uint64_t bytes = 0;
    double plt_after = -1.0;
    std::uint64_t k_after = 0;
    bool k_bumped = false;
    /** Keys restored from an older generation than planned. */
    std::uint64_t degraded_keys = 0;
    /** Whole-generation fallbacks during this recovery. */
    std::uint64_t generation_fallbacks = 0;
};

std::vector<RecoveryRecord>
PairRecoveries(const std::vector<obs::JournalEvent>& events) {
    std::vector<RecoveryRecord> records;
    std::optional<RecoveryRecord> open;
    double begin_wall = 0.0;
    for (const obs::JournalEvent& e : events) {
        switch (e.kind) {
            case obs::EventKind::kFault:
                open = RecoveryRecord{};
                open->fault_iteration = e.iteration;
                open->failed_nodes = e.detail;
                begin_wall = e.wall_s;
                break;
            case obs::EventKind::kRecoveryBegin:
                if (open) {
                    begin_wall = e.wall_s;
                }
                break;
            case obs::EventKind::kDynamicKBump:
                if (open) {
                    open->k_bumped = true;
                }
                break;
            case obs::EventKind::kDegradedRecovery:
                if (open) {
                    // Per-key degradations carry "key=..."; generation-level
                    // fallbacks carry a "generation ..." detail.
                    if (e.detail.rfind("key=", 0) == 0) {
                        ++open->degraded_keys;
                    } else {
                        ++open->generation_fallbacks;
                    }
                }
                break;
            case obs::EventKind::kRecoveryEnd:
                if (open) {
                    open->restart_iteration = e.iteration;
                    open->duration_s = e.wall_s - begin_wall;
                    open->bytes = e.bytes;
                    open->plt_after = e.plt;
                    open->k_after = e.k;
                    records.push_back(*open);
                    open.reset();
                }
                break;
            default:
                break;
        }
    }
    return records;
}

/** A PLT sample point on the trajectory. */
struct PltSample {
    std::uint64_t iteration = 0;
    double plt = 0.0;
    const char* source = "";  // "ckpt" or "recovery"
    std::uint64_t bumped_to_k = 0;  // 0 = no Dynamic-K bump at this point
};

std::vector<PltSample>
PltTrajectory(const std::vector<obs::JournalEvent>& events) {
    std::vector<PltSample> samples;
    for (const obs::JournalEvent& e : events) {
        if (e.kind == obs::EventKind::kCkptEnd && e.plt >= 0.0) {
            samples.push_back({e.iteration, e.plt, "ckpt", 0});
        } else if (e.kind == obs::EventKind::kRecoveryEnd && e.plt >= 0.0) {
            samples.push_back({e.iteration, e.plt, "recovery", 0});
        } else if (e.kind == obs::EventKind::kDynamicKBump && !samples.empty()) {
            samples.back().bumped_to_k = e.k;
        }
    }
    return samples;
}

/**
 * The checkpoint interval the run actually used: the most common forward
 * gap between consecutive `ckpt_end` iterations (recoveries rewind the
 * iteration counter, so backward gaps are skipped). Falls back to
 * I_total / checkpoints when the journal has too few checkpoints.
 */
double
InferCheckpointInterval(const std::vector<obs::JournalEvent>& events,
                        double i_total, double ckpt_events) {
    std::map<std::uint64_t, std::size_t> gap_counts;
    std::optional<std::uint64_t> prev;
    for (const obs::JournalEvent& e : events) {
        if (e.kind != obs::EventKind::kCkptEnd || e.iteration == 0) {
            continue;  // iteration 0 is the initial full checkpoint
        }
        if (prev && e.iteration > *prev) {
            ++gap_counts[e.iteration - *prev];
        }
        prev = e.iteration;
    }
    std::uint64_t best_gap = 0;
    std::size_t best_count = 0;
    for (const auto& [gap, count] : gap_counts) {
        if (count > best_count) {
            best_gap = gap;
            best_count = count;
        }
    }
    if (best_gap > 0) {
        return static_cast<double>(best_gap);
    }
    return i_total / std::max(1.0, ckpt_events);
}

std::string
Percent(double fraction, int digits = 3) {
    return Table::Num(fraction * 100.0, digits) + "%";
}

/** A fixed-width bar with a threshold tick, for the PLT trajectory. */
std::string
PltBar(double plt, double threshold, double scale_max, std::size_t width) {
    std::string bar(width, ' ');
    const auto clamp_col = [&](double v) {
        const double frac = scale_max > 0.0 ? v / scale_max : 0.0;
        const auto col = static_cast<std::size_t>(frac * static_cast<double>(width));
        return std::min(col, width - 1);
    };
    const std::size_t filled = plt > 0.0 ? clamp_col(plt) + 1 : 0;
    for (std::size_t i = 0; i < filled; ++i) {
        bar[i] = '#';
    }
    bar[clamp_col(threshold)] = '|';
    return bar;
}

}  // namespace

int
RunReport(const Args& args, std::ostream& out) {
    const std::vector<std::string> metrics_paths = args.GetAll("metrics");
    const std::vector<std::string> events_paths = args.GetAll("events");
    if (metrics_paths.empty()) {
        out << "usage: moc_cli report --metrics <metrics.json> "
               "[--metrics <role2.json> ...]\n"
               "       [--events <events.jsonl>] [--events <role2.jsonl> ...]\n"
               "       [--plt-threshold X] [--report-json <path>]\n";
        return 2;
    }

    // Per-role metrics dumps, in CLI order. The coordinator's dump (by
    // role metadata) anchors the single-run sections below; with one
    // --metrics this is exactly the old single-file behavior.
    std::vector<std::pair<std::string, MetricsDump>> role_dumps;
    std::vector<obs::JournalEvent> events;
    std::size_t merged_skipped = 0;
    std::size_t event_roles = 0;
    double threshold = kDefaultPltThreshold;
    try {
        for (const std::string& path : metrics_paths) {
            MetricsDump d = ParseMetricsDump(ReadFileOrThrow(path));
            const auto it = d.meta.find("role");
            std::string role = it != d.meta.end() && !it->second.empty()
                                   ? it->second
                                   : obs::RoleFromFilename(path);
            role_dumps.emplace_back(std::move(role), std::move(d));
        }
        if (events_paths.size() == 1) {
            // Single journal: the strict parser stays the contract.
            events = obs::ParseEventsJsonl(ReadFileOrThrow(events_paths[0]));
            event_roles = 1;
        } else if (events_paths.size() > 1) {
            // Multiple journals: rebase onto the coordinator clock and
            // interleave. Tolerant parse — a SIGKILL'd rank's torn tail
            // must not sink the cluster post-mortem.
            std::vector<obs::RoleEvents> role_events;
            for (const std::string& path : events_paths) {
                role_events.push_back(obs::ParseRoleEventsJsonl(
                    ReadFileOrThrow(path), obs::RoleFromFilename(path)));
            }
            obs::MergedEvents merged = obs::MergeRoleEvents(role_events);
            merged_skipped = merged.skipped_lines;
            event_roles = merged.roles;
            events.reserve(merged.events.size());
            for (obs::ClusterEvent& ce : merged.events) {
                // Re-stamp onto the merged zero so downstream timing
                // (recovery durations, checkpoint intervals) spans roles.
                ce.event.wall_s =
                    static_cast<double>(ce.abs_ns - merged.base_ns) / 1e9;
                events.push_back(std::move(ce.event));
            }
        }
        const std::string t = args.Get("plt-threshold", "");
        if (!t.empty()) {
            threshold = std::stod(t);
        }
    } catch (const std::exception& e) {
        // Missing or unparsable inputs are a usage-level failure (exit 2,
        // like fsck), distinct from analysis findings.
        out << "error: " << e.what() << "\n";
        return 2;
    }
    const MetricsDump& dump = [&]() -> const MetricsDump& {
        for (const auto& [role, d] : role_dumps) {
            if (role == "coordinator") {
                return d;
            }
        }
        return role_dumps.front().second;
    }();

    out << "MoC run report\n";
    if (merged_skipped > 0) {
        out << "warning: skipped " << merged_skipped
            << " malformed journal line(s) while merging\n";
    }
    Table meta({"meta", "value"});
    for (const char* key : {"schema", "build_type", "git_sha", "config_digest",
                            "role", "command_line"}) {
        const auto it = dump.meta.find(key);
        meta.AddRow({key, it == dump.meta.end() || it->second.empty()
                              ? "-"
                              : it->second});
    }
    out << meta.ToString();

    // -- recovery timeline ---------------------------------------------------
    const std::vector<RecoveryRecord> recoveries = PairRecoveries(events);
    out << "\n== recovery timeline ==\n";
    if (events.empty()) {
        out << "(no event journal given; pass --events <events.jsonl>)\n";
    } else if (recoveries.empty()) {
        out << "no faults recorded\n";
    } else {
        Table t({"#", "fault iter", "nodes", "restart iter", "lost iters",
                 "recovery (s)", "restored", "degraded", "PLT after",
                 "K after"});
        for (std::size_t i = 0; i < recoveries.size(); ++i) {
            const RecoveryRecord& r = recoveries[i];
            const std::uint64_t lost = r.fault_iteration > r.restart_iteration
                                           ? r.fault_iteration - r.restart_iteration
                                           : 0;
            std::string k_after = std::to_string(r.k_after);
            if (r.k_bumped) {
                k_after += " (bumped)";
            }
            std::string degraded = std::to_string(r.degraded_keys) + " keys";
            if (r.generation_fallbacks > 0) {
                degraded +=
                    ", " + std::to_string(r.generation_fallbacks) + " gen";
            }
            t.AddRow({std::to_string(i + 1), std::to_string(r.fault_iteration),
                      r.failed_nodes, std::to_string(r.restart_iteration),
                      std::to_string(lost), Table::Num(r.duration_s, 4),
                      FormatBytes(r.bytes), degraded, Percent(r.plt_after),
                      k_after});
        }
        out << t.ToString();
    }

    // -- PLT trajectory ------------------------------------------------------
    const std::vector<PltSample> trajectory = PltTrajectory(events);
    double max_plt = 0.0;
    for (const PltSample& s : trajectory) {
        max_plt = std::max(max_plt, s.plt);
    }
    out << "\n== PLT trajectory (threshold " << Percent(threshold) << ") ==\n";
    if (trajectory.empty()) {
        out << "no PLT samples in the journal\n";
    } else {
        const double scale_max = std::max(max_plt, threshold) * 1.25;
        Table t({"iter", "event", "PLT", ""});
        for (const PltSample& s : trajectory) {
            std::string annotation = PltBar(s.plt, threshold, scale_max, 32);
            if (s.bumped_to_k > 0) {
                annotation += " <- Dynamic-K -> " + std::to_string(s.bumped_to_k);
            }
            t.AddRow({std::to_string(s.iteration), s.source, Percent(s.plt),
                      annotation});
        }
        out << t.ToString();
        out << "peak PLT " << Percent(max_plt) << " ("
            << (max_plt <= threshold ? "within" : "EXCEEDS") << " the "
            << Percent(threshold) << " budget)\n";
    }

    // -- expert staleness ----------------------------------------------------
    out << "\n== expert staleness ==\n";
    if (dump.experts.empty()) {
        out << "no per-expert telemetry in the metrics dump\n";
    } else {
        std::map<std::size_t, std::vector<const obs::ExpertStat*>> layers;
        for (const obs::ExpertStat& cell : dump.experts) {
            layers[cell.layer].push_back(&cell);
        }
        Table t({"layer", "experts", "snap stale (mean/max)",
                 "persist stale (mean/max)", "snapshots", "lost tokens"});
        for (const auto& [layer, cells] : layers) {
            double snap_sum = 0.0, persist_sum = 0.0;
            std::uint64_t snap_max = 0, persist_max = 0, snapshots = 0, lost = 0;
            for (const obs::ExpertStat* c : cells) {
                snap_sum += static_cast<double>(c->snapshot_staleness);
                persist_sum += static_cast<double>(c->persist_staleness);
                snap_max = std::max(snap_max, c->snapshot_staleness);
                persist_max = std::max(persist_max, c->persist_staleness);
                snapshots += c->snapshots;
                lost += c->lost_tokens;
            }
            const auto n = static_cast<double>(cells.size());
            t.AddRow({std::to_string(layer), std::to_string(cells.size()),
                      Table::Num(snap_sum / n, 1) + " / " + std::to_string(snap_max),
                      Table::Num(persist_sum / n, 1) + " / " +
                          std::to_string(persist_max),
                      std::to_string(snapshots), std::to_string(lost)});
        }
        out << t.ToString();

        std::vector<const obs::ExpertStat*> ranked;
        for (const obs::ExpertStat& cell : dump.experts) {
            if (cell.lost_tokens > 0) {
                ranked.push_back(&cell);
            }
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const obs::ExpertStat* a, const obs::ExpertStat* b) {
                      return a->lost_tokens > b->lost_tokens;
                  });
        if (!ranked.empty()) {
            Table top({"layer", "expert", "lost tokens", "snap stale",
                       "last snapshot iter"});
            const std::size_t n = std::min<std::size_t>(5, ranked.size());
            for (std::size_t i = 0; i < n; ++i) {
                const obs::ExpertStat* c = ranked[i];
                top.AddRow({std::to_string(c->layer), std::to_string(c->expert),
                            std::to_string(c->lost_tokens),
                            std::to_string(c->snapshot_staleness),
                            std::to_string(c->last_snapshot_iteration)});
            }
            out << "top " << n << " experts by lost tokens:\n" << top.ToString();
        }
    }

    // -- storage health ------------------------------------------------------
    // The resilient-store / fault-injection counters (docs/FAULT_MODEL.md).
    const double retries = dump.Counter("store.retries_total");
    const double corrupt_reads = dump.Counter("store.corrupt_reads_total");
    const double read_repairs = dump.Counter("store.read_repairs_total");
    const double put_verify_failures =
        dump.Counter("store.put_verify_failures_total");
    const double store_timeouts = dump.Counter("store.timeouts_total");
    const double shard_failures = dump.Counter("ckpt.persist_shard_failures");
    const double degraded_keys = dump.Counter("recovery.degraded_keys");
    const double generation_fallbacks =
        dump.Counter("recovery.generation_fallbacks");
    double injected_faults = 0.0;
    for (const char* name :
         {"faultystore.transient_errors", "faultystore.torn_writes",
          "faultystore.bit_flips", "faultystore.lost_writes",
          "faultystore.corrupt_reads", "faultystore.latency_spikes"}) {
        injected_faults += dump.Counter(name);
    }
    std::uint64_t storage_fault_events = 0;
    for (const obs::JournalEvent& e : events) {
        storage_fault_events += e.kind == obs::EventKind::kStorageFault ? 1 : 0;
    }
    const bool storage_trouble = retries + corrupt_reads + read_repairs +
                                     put_verify_failures + store_timeouts +
                                     shard_failures + degraded_keys +
                                     generation_fallbacks + injected_faults >
                                 0.0;
    out << "\n== storage health ==\n";
    if (!storage_trouble) {
        out << "healthy: no retries, corruption, or degraded recoveries\n";
    } else {
        Table st({"storage", "count"});
        st.AddRow({"injected faults", Table::Num(injected_faults, 0)});
        st.AddRow({"retries", Table::Num(retries, 0)});
        st.AddRow({"corrupt reads", Table::Num(corrupt_reads, 0)});
        st.AddRow({"read repairs", Table::Num(read_repairs, 0)});
        st.AddRow({"put verify failures", Table::Num(put_verify_failures, 0)});
        st.AddRow({"timeouts", Table::Num(store_timeouts, 0)});
        st.AddRow({"persist shard failures", Table::Num(shard_failures, 0)});
        st.AddRow({"degraded recovery keys", Table::Num(degraded_keys, 0)});
        st.AddRow({"generation fallbacks", Table::Num(generation_fallbacks, 0)});
        out << st.ToString();
        if (storage_fault_events > 0) {
            out << storage_fault_events
                << " storage_fault event(s) in the journal\n";
        }
    }
    // Delta-encoding effectiveness (cluster.delta.*, docs/OBSERVABILITY.md):
    // how much of the persist traffic the changed-chunk path absorbed.
    const double delta_shards = dump.Counter("cluster.delta.shards");
    const double delta_bytes_written =
        dump.Counter("cluster.delta.bytes_written");
    const double delta_bytes_saved = dump.Counter("cluster.delta.bytes_saved");
    const double delta_forced_full = dump.Counter("cluster.delta.forced_full");
    if (delta_shards > 0.0 || delta_forced_full > 0.0) {
        out << "delta encoding: " << Table::Num(delta_shards, 0)
            << " shard(s) as deltas, " << Table::Num(delta_bytes_written, 0)
            << " bytes written, " << Table::Num(delta_bytes_saved, 0)
            << " bytes saved, " << Table::Num(delta_forced_full, 0)
            << " forced full write(s)\n";
    }

    // -- observability health ------------------------------------------------
    // Dropped trace/journal records mean the exports this report reads are
    // incomplete — flag it loudly rather than report over a silent gap.
    const double trace_dropped = dump.Counter("obs.trace.dropped");
    const double journal_dropped = dump.Counter("obs.journal.dropped");
    std::uint64_t stall_events = 0;
    std::uint64_t peer_deaths = 0;
    for (const obs::JournalEvent& e : events) {
        stall_events += e.kind == obs::EventKind::kStall ? 1 : 0;
        peer_deaths += e.kind == obs::EventKind::kPeerDeath ? 1 : 0;
    }
    if (trace_dropped > 0.0) {
        out << "\nWARNING: " << Table::Num(trace_dropped, 0)
            << " trace span(s) dropped (ring overflow) — the exported trace "
               "is a suffix of the run\n";
    }
    if (journal_dropped > 0.0) {
        out << "\nWARNING: " << Table::Num(journal_dropped, 0)
            << " journal event(s) dropped (buffer full) — the event journal "
               "is a prefix of the run\n";
    }
    // The live scrape endpoint's own counters (obs/http_endpoint.h): how
    // hard the run was being watched, and whether scrapers were shed.
    const double http_requests = dump.Counter("obs.http.requests");
    const double http_errors = dump.Counter("obs.http.errors");
    const double http_shed = dump.Counter("obs.http.shed");
    if (http_requests > 0.0 || http_shed > 0.0) {
        out << "\nlive endpoint: " << Table::Num(http_requests, 0)
            << " request(s) served, " << Table::Num(http_errors, 0)
            << " error(s), " << Table::Num(http_shed, 0) << " shed\n";
    }
    if (http_shed > 0.0) {
        out << "WARNING: " << Table::Num(http_shed, 0)
            << " scrape connection(s) shed (worker saturated) — scrapes "
               "were dropped, never blocked on\n";
    }
    if (stall_events > 0) {
        out << "\n" << stall_events
            << " stall event(s) in the journal (checkpoint ops over their "
               "deadline budget; run `moc_cli trace` for the critical path)\n";
    }
    if (peer_deaths > 0) {
        out << "\n" << peer_deaths
            << " peer_death event(s) in the journal (ranks declared dead by "
               "EOF or heartbeat timeout; generations they left incomplete "
               "stay unsealed)\n";
    }

    // -- cluster health ------------------------------------------------------
    // The cross-process view (docs/OBSERVABILITY.md, "Cluster plane"):
    // per-role clock offsets and telemetry counters from the merged metrics,
    // straggler and peer-death events from the merged journal.
    std::vector<const obs::JournalEvent*> straggler_events;
    std::vector<const obs::JournalEvent*> death_events;
    std::vector<const obs::JournalEvent*> membership_events;
    std::size_t rejoin_count = 0;
    for (const obs::JournalEvent& e : events) {
        if (e.kind == obs::EventKind::kStraggler) {
            straggler_events.push_back(&e);
        } else if (e.kind == obs::EventKind::kPeerDeath) {
            death_events.push_back(&e);
        } else if (e.kind == obs::EventKind::kMembershipChange ||
                   e.kind == obs::EventKind::kRejoin) {
            membership_events.push_back(&e);
            rejoin_count += e.kind == obs::EventKind::kRejoin ? 1 : 0;
        }
    }
    const bool cluster_run = role_dumps.size() > 1 || event_roles > 1 ||
                             !straggler_events.empty() ||
                             !membership_events.empty();
    double telemetry_sent = 0.0;
    double telemetry_dropped = 0.0;
    for (const auto& [role, d] : role_dumps) {
        telemetry_sent += d.Counter("obs.telemetry.sent");
        telemetry_dropped += d.Counter("obs.telemetry.dropped");
    }
    if (cluster_run) {
        out << "\n== cluster health ==\n";
        Table roles({"role", "clock offset (ms)", "telemetry sent",
                     "telemetry dropped", "stragglers seen"});
        for (const auto& [role, d] : role_dumps) {
            const auto off = d.meta_numbers.find("clock_offset_ns");
            roles.AddRow(
                {role,
                 off == d.meta_numbers.end()
                     ? "-"
                     : Table::Num(off->second / 1e6, 3),
                 Table::Num(d.Counter("obs.telemetry.sent"), 0),
                 Table::Num(d.Counter("obs.telemetry.dropped"), 0),
                 Table::Num(d.Counter("obs.cluster.stragglers"), 0)});
        }
        out << roles.ToString();
        if (telemetry_dropped > 0.0) {
            out << "WARNING: " << Table::Num(telemetry_dropped, 0)
                << " telemetry sample(s) shed (publisher never blocks; the "
                   "live cluster view lost freshness, not correctness)\n";
        }
        if (straggler_events.empty()) {
            out << "no stragglers flagged\n";
        } else {
            Table st({"t (s)", "rank", "gen", "iter", "detail"});
            for (const obs::JournalEvent* e : straggler_events) {
                st.AddRow({Table::Num(e->wall_s, 3),
                           std::to_string(e->scope),
                           std::to_string(e->gen),
                           std::to_string(e->iteration), e->detail});
            }
            out << "straggler event(s) flagged DURING the run:\n"
                << st.ToString();
        }
        if (!death_events.empty()) {
            Table dt({"t (s)", "role", "peer", "detail"});
            for (const obs::JournalEvent* e : death_events) {
                dt.AddRow({Table::Num(e->wall_s, 3),
                           e->role.empty() ? "-" : e->role,
                           std::to_string(e->scope), e->detail});
            }
            out << "peer death attribution:\n" << dt.ToString();
        }
        // The elastic membership timeline: every state transition the
        // coordinator's MembershipTable journaled, in merged-clock order —
        // how an operator reads a death -> evict -> rejoin cycle after the
        // fact (docs/FAULT_MODEL.md, "Elastic recovery").
        if (!membership_events.empty()) {
            Table mt({"t (s)", "kind", "rank", "detail"});
            for (const obs::JournalEvent* e : membership_events) {
                mt.AddRow({Table::Num(e->wall_s, 3),
                           e->kind == obs::EventKind::kRejoin
                               ? "rejoin"
                               : "membership_change",
                           std::to_string(e->scope), e->detail});
            }
            out << "membership timeline (" << membership_events.size()
                << " transition(s), " << rejoin_count << " rejoin(s)):\n"
                << mt.ToString();
        }
    }

    // -- overhead model ------------------------------------------------------
    // Operating point measured from the run itself.
    const double i_total = dump.Counter("train.iterations");
    const double faults = dump.Counter("faults.injected");
    const double lambda = i_total > 0.0 ? faults / i_total : 0.0;
    const double t_iter = dump.HistogramMean("train.iteration_seconds");
    const double o_save = dump.HistogramMean("ckpt.duration_seconds");
    const double o_restart = dump.HistogramMean("recovery.duration_seconds");
    const double i_ckpt =
        InferCheckpointInterval(events, i_total, dump.Counter("ckpt.events"));

    FaultToleranceModel model;
    model.i_total = i_total;
    model.lambda = lambda;
    model.t_iter = t_iter;
    model.o_restart = o_restart;

    const double predicted_faults = ExpectedFaults(model);
    const double predicted_overhead =
        i_ckpt > 0.0 ? TotalCheckpointOverhead(model, o_save, i_ckpt) : 0.0;
    const bool optimal_defined = lambda > 0.0 && t_iter > 0.0 && o_save > 0.0;
    const double optimal_interval =
        optimal_defined ? OptimalInterval(model, o_save) : 0.0;

    const double ckpt_seconds = dump.HistogramSum("ckpt.duration_seconds");
    const double recovery_seconds = dump.HistogramSum("recovery.duration_seconds");
    const double replay_seconds =
        dump.Counter("faults.replayed_iterations") * t_iter;
    const double measured_overhead = ckpt_seconds + recovery_seconds + replay_seconds;
    const double residual_overhead = measured_overhead - predicted_overhead;

    out << "\n== overhead model (measured vs Eq. 11-13) ==\n";
    Table op({"operating point", "value"});
    op.AddRow({"I_total (iterations)", Table::Num(i_total, 0)});
    op.AddRow({"lambda (faults/iter)", Table::Num(lambda, 6)});
    op.AddRow({"t_iter (s)", Table::Num(t_iter, 6)});
    op.AddRow({"O_save (s/ckpt)", Table::Num(o_save, 6)});
    op.AddRow({"O_restart (s/fault)", Table::Num(o_restart, 6)});
    op.AddRow({"I_ckpt (iters)", Table::Num(i_ckpt, 1)});
    out << op.ToString();
    if (lambda == 0.0) {
        out << "note: fault-free run; fault terms of the model are zero\n";
    }
    Table cmp({"quantity", "predicted", "measured", "residual"});
    cmp.AddRow({"faults (Eq. 11)", Table::Num(predicted_faults, 2),
                Table::Num(faults, 0), Table::Num(faults - predicted_faults, 2)});
    cmp.AddRow({"overhead (Eq. 12/13, s)", Table::Num(predicted_overhead, 4),
                Table::Num(measured_overhead, 4),
                Table::Num(residual_overhead, 4)});
    out << cmp.ToString();
    out << "measured overhead = checkpointing " << Table::Num(ckpt_seconds, 4)
        << "s + recovery " << Table::Num(recovery_seconds, 4) << "s + replay "
        << Table::Num(replay_seconds, 4) << "s\n";
    if (optimal_defined) {
        out << "optimal interval I* (Eq. 13) = " << Table::Num(optimal_interval, 1)
            << " iterations (run used " << Table::Num(i_ckpt, 1) << ")\n";
    }
    if (const obs::HistogramData* iter_h =
            dump.Histogram("train.iteration_seconds")) {
        out << "iteration seconds p50/p95/p99: "
            << Table::Num(obs::HistogramP50(*iter_h), 6) << " / "
            << Table::Num(obs::HistogramP95(*iter_h), 6) << " / "
            << Table::Num(obs::HistogramP99(*iter_h), 6) << "\n";
    }

    // -- machine-readable section -------------------------------------------
    std::uint64_t bumps = 0;
    for (const obs::JournalEvent& e : events) {
        bumps += e.kind == obs::EventKind::kDynamicKBump ? 1 : 0;
    }
    std::ostringstream machine;
    machine << "{\"schema\": \"moc-report/1\",\n"
            << " \"operating_point\": {\"i_total\": " << obs::JsonNumber(i_total)
            << ", \"lambda\": " << obs::JsonNumber(lambda)
            << ", \"t_iter\": " << obs::JsonNumber(t_iter)
            << ", \"o_save\": " << obs::JsonNumber(o_save)
            << ", \"o_restart\": " << obs::JsonNumber(o_restart)
            << ", \"i_ckpt\": " << obs::JsonNumber(i_ckpt) << "},\n"
            << " \"predicted\": {\"expected_faults\": "
            << obs::JsonNumber(predicted_faults)
            << ", \"total_overhead_s\": " << obs::JsonNumber(predicted_overhead)
            << ", \"optimal_interval_iters\": "
            << (optimal_defined ? obs::JsonNumber(optimal_interval) : "null")
            << "},\n"
            << " \"measured\": {\"faults\": " << obs::JsonNumber(faults)
            << ", \"overhead_s\": " << obs::JsonNumber(measured_overhead)
            << ", \"ckpt_seconds\": " << obs::JsonNumber(ckpt_seconds)
            << ", \"recovery_seconds\": " << obs::JsonNumber(recovery_seconds)
            << ", \"replay_seconds\": " << obs::JsonNumber(replay_seconds)
            << "},\n"
            << " \"residual\": {\"faults\": "
            << obs::JsonNumber(faults - predicted_faults)
            << ", \"overhead_s\": " << obs::JsonNumber(residual_overhead)
            << "},\n"
            << " \"plt\": {\"peak\": " << obs::JsonNumber(max_plt)
            << ", \"threshold\": " << obs::JsonNumber(threshold)
            << ", \"within_budget\": " << (max_plt <= threshold ? "true" : "false")
            << "},\n"
            << " \"storage\": {\"injected_faults\": "
            << obs::JsonNumber(injected_faults)
            << ", \"retries\": " << obs::JsonNumber(retries)
            << ", \"corrupt_reads\": " << obs::JsonNumber(corrupt_reads)
            << ", \"read_repairs\": " << obs::JsonNumber(read_repairs)
            << ", \"put_verify_failures\": "
            << obs::JsonNumber(put_verify_failures)
            << ", \"timeouts\": " << obs::JsonNumber(store_timeouts)
            << ", \"persist_shard_failures\": " << obs::JsonNumber(shard_failures)
            << ", \"degraded_keys\": " << obs::JsonNumber(degraded_keys)
            << ", \"generation_fallbacks\": "
            << obs::JsonNumber(generation_fallbacks)
            << ", \"storage_fault_events\": " << storage_fault_events
            << ", \"delta_shards\": " << obs::JsonNumber(delta_shards)
            << ", \"delta_bytes_written\": "
            << obs::JsonNumber(delta_bytes_written)
            << ", \"delta_bytes_saved\": " << obs::JsonNumber(delta_bytes_saved)
            << ", \"delta_forced_full\": "
            << obs::JsonNumber(delta_forced_full) << "},\n"
            << " \"events\": {\"total\": " << events.size()
            << ", \"recoveries\": " << recoveries.size()
            << ", \"dynamic_k_bumps\": " << bumps
            << ", \"stalls\": " << stall_events
            << ", \"peer_deaths\": " << peer_deaths << "},\n"
            << " \"cluster\": {\"metrics_roles\": " << role_dumps.size()
            << ", \"event_roles\": " << event_roles
            << ", \"skipped_lines\": " << merged_skipped
            << ", \"telemetry_sent\": " << obs::JsonNumber(telemetry_sent)
            << ", \"telemetry_dropped\": "
            << obs::JsonNumber(telemetry_dropped)
            << ", \"straggler_events\": " << straggler_events.size()
            << ", \"membership_changes\": "
            << (membership_events.size() - rejoin_count)
            << ", \"rejoins\": " << rejoin_count
            << ", \"stragglers\": [";
    for (std::size_t i = 0; i < straggler_events.size(); ++i) {
        const obs::JournalEvent* e = straggler_events[i];
        machine << (i == 0 ? "" : ", ") << "{\"rank\": " << e->scope
                << ", \"gen\": " << e->gen << ", \"seq\": " << e->seq
                << ", \"detail\": \"" << obs::JsonEscape(e->detail) << "\"}";
    }
    machine << "]},\n"
            << " \"obs_health\": {\"trace_dropped\": "
            << obs::JsonNumber(trace_dropped) << ", \"journal_dropped\": "
            << obs::JsonNumber(journal_dropped) << ", \"http_requests\": "
            << obs::JsonNumber(http_requests) << ", \"http_errors\": "
            << obs::JsonNumber(http_errors) << ", \"http_shed\": "
            << obs::JsonNumber(http_shed) << "}}\n";
    out << "\n--- machine-readable (moc-report/1) ---\n" << machine.str();

    const std::string report_json = args.Get("report-json", "");
    if (!report_json.empty() &&
        !obs::WriteTextFile(report_json, machine.str(), "report JSON")) {
        out << "error: cannot write '" << report_json << "'\n";
        return 1;
    }
    return 0;
}

}  // namespace moc::cli
