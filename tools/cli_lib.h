#ifndef MOC_TOOLS_CLI_LIB_H_
#define MOC_TOOLS_CLI_LIB_H_

/**
 * @file
 * The logic behind the `moc_cli` command-line tool, separated from main()
 * so it is unit-testable. Subcommands:
 *
 *   inspect <ckpt-dir>                 list a FileStore checkpoint's keys,
 *                                      sizes, and restart point
 *   plan [--dp N --ep N --gpus-per-node N --k N --strategy S]
 *                                      print the per-rank shard plan summary
 *                                      for GPT-350M-16E
 *   simulate [--gpus N --gpu a800|h100 --size S --k N]
 *                                      iteration timeline for a deployment
 *   trace-check <trace-file>           validate a fault-trace file
 *   fsck <ckpt-dir> [--json <path>]    scrub a FileStore checkpoint against
 *                                      its manifest: CRC every file, locate
 *                                      every recorded shard version, judge
 *                                      per-generation restartability. Exit
 *                                      0 clean / 1 repairable / 2 fatal
 *                                      (see tools/cli_fsck.cc)
 *   report --metrics <json> [--events <jsonl>]
 *                                      analyze a run's exports: recovery
 *                                      timeline, PLT trajectory, expert
 *                                      staleness, measured-vs-predicted
 *                                      overhead (see tools/cli_report.cc).
 *                                      Both flags repeat: multiple per-role
 *                                      files are merged onto one
 *                                      coordinator-aligned timeline
 *                                      (obs/merge.h) with a cluster health
 *                                      section
 *   trace --trace <chrome.json> [--events <jsonl>]
 *                                      flight-recorder analysis of a
 *                                      checkpoint trace: per-generation
 *                                      critical path, straggler ranking,
 *                                      per-phase O_save attribution, stall
 *                                      events (see tools/cli_trace.cc).
 *                                      --trace/--events repeat for merged
 *                                      cross-process analysis
 *   watch --url http://HOST:PORT [--once] [--watch-json]
 *                                      poll a run's live observability
 *                                      endpoint (/healthz, /ranks, /series)
 *                                      and render the per-rank health table
 *                                      plus the overhead trajectory. Exit 0
 *                                      healthy, 1 degraded, 2 unreachable
 *                                      (see tools/cli_watch.cc)
 *
 * Global flags (any subcommand): `--metrics-out <path>` dumps the process
 * metrics registry as JSON on exit; `--trace-out <path>` enables tracing
 * and writes a chrome://tracing event file on exit; `--events-out <path>`
 * writes the event journal as JSONL; `--prom-out <path>` writes Prometheus
 * text-format metrics.
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace moc::cli {

/** Parsed `--key value` options plus positional arguments. */
struct Args {
    std::vector<std::string> positional;
    std::vector<std::pair<std::string, std::string>> options;

    /** Value of --name, or @p fallback. */
    std::string Get(const std::string& name, const std::string& fallback) const;

    /** Every value of a repeated --name, in command-line order. */
    std::vector<std::string> GetAll(const std::string& name) const;

    /** Integer option with fallback; throws std::invalid_argument on junk. */
    long GetInt(const std::string& name, long fallback) const;
};

/** Splits argv-style tokens into Args. Throws on `--flag` without value. */
Args ParseArgs(const std::vector<std::string>& tokens);

/** Runs one subcommand; returns a process exit code, output to @p out. */
int RunInspect(const Args& args, std::ostream& out);
int RunPlan(const Args& args, std::ostream& out);
int RunSimulate(const Args& args, std::ostream& out);
int RunTraceCheck(const Args& args, std::ostream& out);
int RunReport(const Args& args, std::ostream& out);
int RunFsck(const Args& args, std::ostream& out);
int RunTrace(const Args& args, std::ostream& out);
int RunWatch(const Args& args, std::ostream& out);

/** Dispatches `moc_cli <subcommand> ...`; prints usage on errors. */
int Main(const std::vector<std::string>& tokens, std::ostream& out,
         std::ostream& err);

}  // namespace moc::cli

#endif  // MOC_TOOLS_CLI_LIB_H_
