/**
 * @file
 * `moc_cli fsck`: scrubs a FileStore checkpoint directory against its own
 * manifest (`meta/manifest`, format moc-manifest/1). Three passes:
 *
 *   1. physical — every stored file is read back through the CRC trailer,
 *      so torn writes and bit rot surface as damaged files;
 *   2. logical — every persist version the manifest records is located
 *      (versioned shard key `<key>@<iter>` at its physical iteration —
 *      dedup refs resolved — plain key, or `gen/<iter>/<key>` twin) and its
 *      bytes re-hashed against the recorded CRC. A *delta* version
 *      (`<key>@<iter>.delta`, storage/delta_codec.h) is intact only when
 *      its physical record matches its recorded delta CRC AND every link
 *      below it — base versions down to a full write — is intact: a
 *      damaged or missing base breaks the whole dependent chain, and each
 *      dependent is reported as a broken chain link so the operator can
 *      tell "this file rotted" from "this file is fine but
 *      unreconstructable";
 *   3. restartability — per sealed generation, checks that the extra state
 *      and every non-expert shard are intact at exactly that iteration and
 *      every expert shard at some iteration at or below it (PEC carries
 *      unselected experts forward). An *unsealed* generation with recorded
 *      shards is a torn checkpoint event: the directory is classified
 *      repairable (never clean) while one exists, since restart must fall
 *      back past it. A generation the coordinator *aborted* (elastic
 *      membership: a rank died mid-barrier and the run moved on) is an
 *      acknowledged casualty, not a torn one — it never dirties the
 *      directory;
 *   4. membership — when the elastic coordinator persisted its membership
 *      table (`meta/membership`, format moc-membership/1), each generation's
 *      referenced ranks (the `rank<r>/` key prefixes it recorded) are
 *      checked against *current* live membership. A generation referencing
 *      an evicted rank is classified orphaned: still restartable, but only
 *      through a rank remap (core/placement.h), so the directory is not
 *      clean.
 *
 * Exit codes: 0 = clean; 1 = damage, a torn generation, or an orphaned
 * generation found but at least one generation is still restartable
 * (repairable — recovery will degrade or remap, not die); 2 = fatal (no
 * restartable generation, or the manifest itself is unreadable alongside
 * damage). `--json <path>` writes a moc-fsck/1 document listing every
 * damaged file, torn/aborted generation, and orphaned generation so CI can
 * assert detection coverage.
 */

#include <cstdint>
#include <filesystem>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/membership.h"
#include "cli_lib.h"
#include "core/moc_system.h"
#include "obs/export.h"
#include "storage/delta_codec.h"
#include "storage/file_store.h"
#include "storage/manifest.h"
#include "storage/store_error.h"
#include "util/crc32.h"
#include "util/table.h"

namespace moc::cli {

namespace {

/** One physical key's scrub outcome. */
struct FileHealth {
    bool readable = false;
    /** Payload bytes (without the CRC trailer) when readable. */
    Bytes bytes = 0;
    std::uint32_t crc = 0;
    /** What Get() reported when unreadable. */
    std::string error;
};

/** Reads every physical key once, classifying damage by typed kind. */
std::map<std::string, FileHealth>
ScrubFiles(const FileStore& store) {
    std::map<std::string, FileHealth> health;
    for (const auto& key : store.Keys()) {
        FileHealth h;
        try {
            if (const auto blob = store.Get(key)) {
                h.readable = true;
                h.bytes = blob->size();
                // CRC-32C to match what the manifest records (see
                // util/crc32.h for why it differs from the trailers).
                h.crc = Crc32c(blob->data(), blob->size());
            } else {
                h.error = "missing";
            }
        } catch (const StoreError& e) {
            h.error = std::string(StoreErrorKindName(e.kind())) + ": " +
                      e.what();
        }
        health.emplace(key, std::move(h));
    }
    return health;
}

/** Depth guard for ref/delta chain walks (matches cluster_recovery). */
constexpr std::size_t kMaxChainDepth = 64;

/** True when the delta *record* of @p version is on disk and CRC-matches
    its recorded physical identity (says nothing about the chain below). */
bool
DeltaRecordIntact(const std::map<std::string, FileHealth>& files,
                  const std::string& key, const PersistVersion& version) {
    const auto it = files.find(DeltaShardKey(key, version.iteration));
    return it != files.end() && it->second.readable &&
           it->second.bytes == version.delta_bytes &&
           it->second.crc == version.delta_crc;
}

/**
 * True when (@p key, @p version) is reconstructable from disk: full
 * versions need an intact copy of their blob; dedup refs resolve to the
 * referenced version; delta versions need their own record intact AND the
 * whole chain below them intact, down to a full write.
 */
bool
VersionIntact(const std::map<std::string, FileHealth>& files,
              const CheckpointManifest& manifest, const std::string& key,
              const PersistVersion& version, std::size_t depth = 0) {
    if (depth >= kMaxChainDepth) {
        return false;
    }
    if (version.is_delta()) {
        if (!DeltaRecordIntact(files, key, version)) {
            return false;
        }
        const auto base = manifest.FindPersistVersion(key, *version.delta_base);
        return base.has_value() &&
               VersionIntact(files, manifest, key, *base, depth + 1);
    }
    if (version.ref.has_value()) {
        // A ref may point at a delta version (content unchanged since a
        // delta write): resolve through the manifest so the chain below it
        // is verified too, not just the record's file.
        const auto base = manifest.FindPersistVersion(key, *version.ref);
        if (base.has_value() && base->is_delta()) {
            return VersionIntact(files, manifest, key, *base, depth + 1);
        }
    }
    // Dedup-by-reference versions wrote no bytes of their own: the physical
    // blob lives at the referenced iteration (PhysicalIteration).
    const std::string candidates[] = {
        VersionedShardKey(key, version.PhysicalIteration()),
        MocCheckpointSystem::GenKey(version.PhysicalIteration(), key),
        MocCheckpointSystem::GenKey(version.iteration, key), key};
    for (const auto& physical : candidates) {
        const auto it = files.find(physical);
        if (it == files.end() || !it->second.readable) {
            continue;
        }
        if (it->second.bytes != version.bytes) {
            continue;
        }
        if (version.crc != 0 && it->second.crc != version.crc) {
            continue;
        }
        return true;
    }
    return false;
}

/** Expert shards carry forward across generations; others do not. */
bool
IsExpertKey(const std::string& key) {
    return key.find("/expert/") != std::string::npos;
}

/** A manifest-recorded version found damaged or missing on disk. */
struct MissingVersion {
    std::string key;
    std::size_t iteration = 0;
    /** The version's own record is fine; a base below it in its delta
        chain is damaged or missing, so it cannot be reconstructed. */
    bool chain_break = false;
    /** Base iteration of the first broken link (chain breaks only). */
    std::size_t base = 0;
};

/** The rank a `rank<r>/...` shard key belongs to, or nullopt. */
std::optional<std::size_t>
KeyRank(const std::string& key) {
    if (key.rfind("rank", 0) != 0) {
        return std::nullopt;
    }
    std::size_t pos = 4;
    std::size_t rank = 0;
    bool any = false;
    while (pos < key.size() && key[pos] >= '0' && key[pos] <= '9') {
        rank = rank * 10 + static_cast<std::size_t>(key[pos] - '0');
        ++pos;
        any = true;
    }
    if (!any || pos >= key.size() || key[pos] != '/') {
        return std::nullopt;
    }
    return rank;
}

}  // namespace

int
RunFsck(const Args& args, std::ostream& out) {
    if (args.positional.empty()) {
        out << "usage: moc_cli fsck <ckpt-dir> [--json <path>]\n";
        return 2;
    }
    const std::string root = args.positional.front();
    // FileStore's constructor creates missing directories, which would turn
    // a typo'd path into a silently "clean" empty scrub.
    if (!std::filesystem::is_directory(root)) {
        out << "error: '" << root << "' is not a directory\n";
        return 2;
    }
    const FileStore store(root);
    const auto files = ScrubFiles(store);

    std::vector<std::string> damaged_files;
    for (const auto& [key, health] : files) {
        if (!health.readable) {
            damaged_files.push_back(key);
        }
    }

    // Without a parseable manifest we can only report physical damage.
    CheckpointManifest manifest;
    bool have_manifest = false;
    std::string manifest_error;
    {
        const auto it = files.find("meta/manifest");
        if (it == files.end()) {
            manifest_error = "meta/manifest not found";
        } else if (!it->second.readable) {
            manifest_error = "meta/manifest unreadable (" + it->second.error +
                             ")";
        } else {
            try {
                const auto blob = store.Get("meta/manifest");
                manifest.LoadFromJson(
                    std::string(blob->begin(), blob->end()));
                have_manifest = true;
            } catch (const std::exception& e) {
                manifest_error = e.what();
            }
        }
    }

    // The elastic coordinator persists its membership table next to the
    // manifest; without one (pre-elastic run) the membership pass is
    // skipped entirely.
    std::optional<ckpt::MembershipSnapshot> membership;
    {
        const auto it = files.find("meta/membership");
        if (it != files.end() && it->second.readable) {
            try {
                const auto blob = store.Get("meta/membership");
                membership = ckpt::ParseMembershipJson(
                    std::string(blob->begin(), blob->end()));
            } catch (const std::exception&) {
                // Torn membership doc: skip the pass, the scrub already
                // reported the damage if the file failed its CRC.
            }
        }
    }

    std::vector<MissingVersion> missing;
    struct GenHealth {
        GenerationInfo info;
        bool restartable = false;
        /** Ranks this generation references that are no longer live. */
        std::vector<std::size_t> orphan_ranks;
    };
    std::vector<GenHealth> generations;
    std::vector<std::size_t> restartable;
    std::vector<std::size_t> torn;
    std::vector<std::size_t> aborted;
    std::vector<std::size_t> orphaned;
    if (have_manifest) {
        const auto keys = manifest.KeysAt(StoreLevel::kPersist);
        // Logical pass: every usable version the manifest records must have
        // an intact copy; versions the manifest already knows are damaged
        // (unverified or marked corrupt) are not re-counted.
        std::map<std::string, std::vector<PersistVersion>> chains;
        for (const auto& key : keys) {
            auto chain = manifest.PersistFallbackChain(
                key, static_cast<std::size_t>(-1));
            for (const auto& version : chain) {
                if (!VersionIntact(files, manifest, key, version)) {
                    MissingVersion mv{key, version.iteration, false, 0};
                    // A delta whose own record is intact failed only
                    // because of the chain below it: a repairable class of
                    // its own — re-persisting the base (or a forced full
                    // write) brings every dependent back.
                    if (version.is_delta() &&
                        DeltaRecordIntact(files, key, version)) {
                        mv.chain_break = true;
                        mv.base = *version.delta_base;
                    }
                    missing.push_back(std::move(mv));
                }
            }
            chains.emplace(key, std::move(chain));
        }
        const auto damaged = [&](const std::string& key, std::size_t iter) {
            for (const auto& mv : missing) {
                if (mv.key == key && mv.iteration == iter) {
                    return true;
                }
            }
            return false;
        };
        // Restartability pass, per sealed generation. An unsealed
        // generation with recorded shards is *torn* — a checkpoint event
        // that died mid-persist. Its shards may all be individually intact,
        // but the set is incomplete by definition, so the directory is
        // never "clean" while one exists (recovery must fall back).
        std::set<std::size_t> live_ranks;
        if (membership) {
            const auto live = membership->LiveRanks();
            live_ranks.insert(live.begin(), live.end());
        }
        for (const auto& info : manifest.Generations()) {
            if (!info.sealed && info.shards > 0 && !info.aborted) {
                torn.push_back(info.iteration);
            }
            if (info.aborted) {
                aborted.push_back(info.iteration);
            }
            GenHealth gen{info, info.sealed && !info.marked_corrupt, {}};
            if (membership && gen.restartable) {
                // Membership pass: a sealed generation that recorded shards
                // for a rank no longer live can only restore through a
                // remap — flag it so operators know plain restart is gone.
                std::set<std::size_t> refs;
                for (const auto& [key, chain] : chains) {
                    for (const auto& version : chain) {
                        if (version.iteration == info.iteration) {
                            if (const auto rank = KeyRank(key)) {
                                refs.insert(*rank);
                            }
                        }
                    }
                }
                for (const std::size_t rank : refs) {
                    if (live_ranks.count(rank) == 0) {
                        gen.orphan_ranks.push_back(rank);
                    }
                }
                if (!gen.orphan_ranks.empty()) {
                    orphaned.push_back(info.iteration);
                }
            }
            if (gen.restartable) {
                for (const auto& [key, chain] : chains) {
                    bool ok = false;
                    for (const auto& version : chain) {
                        if (version.iteration > info.iteration ||
                            damaged(key, version.iteration)) {
                            continue;
                        }
                        // Non-expert shards (and extra state) must be from
                        // this very generation; experts may carry forward.
                        ok = IsExpertKey(key) ||
                             version.iteration == info.iteration;
                        break;
                    }
                    if (!ok) {
                        gen.restartable = false;
                        break;
                    }
                }
            }
            if (gen.restartable) {
                restartable.push_back(info.iteration);
            }
            generations.push_back(gen);
        }
    }

    const bool damage = !damaged_files.empty() || !missing.empty();
    int code = 0;
    if (!have_manifest) {
        code = damage ? 1 : 0;
    } else if (damage || !torn.empty() || !orphaned.empty()) {
        code = restartable.empty() ? 2 : 1;
    } else if (restartable.empty() && !generations.empty()) {
        code = 2;
    }

    out << "fsck " << root << ": " << files.size() << " files, "
        << damaged_files.size() << " damaged\n";
    if (!have_manifest) {
        out << "warning: no usable manifest (" << manifest_error
            << ") — physical scrub only\n";
    }
    for (const auto& key : damaged_files) {
        out << "  damaged file: " << key << " (" << files.at(key).error
            << ")\n";
    }
    for (const auto& mv : missing) {
        if (mv.chain_break) {
            out << "  broken delta chain: " << mv.key << " @" << mv.iteration
                << " (record intact; base @" << mv.base
                << " unreconstructable)\n";
        } else {
            out << "  missing version: " << mv.key << " @" << mv.iteration
                << "\n";
        }
    }
    for (const auto iteration : torn) {
        out << "  torn generation: " << iteration
            << " (unsealed; checkpoint event died mid-persist)\n";
    }
    for (const auto iteration : aborted) {
        out << "  aborted generation: " << iteration
            << " (coordinator abandoned it on a membership change; "
               "acknowledged, not torn)\n";
    }
    for (const auto& gen : generations) {
        for (const std::size_t rank : gen.orphan_ranks) {
            out << "  orphaned generation: " << gen.info.iteration
                << " references rank " << rank
                << " absent from live membership (restore needs a remap)\n";
        }
    }
    if (have_manifest) {
        Table t({"generation", "shards", "sealed", "restartable", "note"});
        for (const auto& gen : generations) {
            std::string note;
            if (gen.info.aborted) {
                note = "aborted";
            } else if (!gen.orphan_ranks.empty()) {
                note = "orphaned (" + std::to_string(gen.orphan_ranks.size())
                       + " evicted rank(s))";
            }
            t.AddRow({std::to_string(gen.info.iteration),
                      std::to_string(gen.info.shards),
                      gen.info.sealed ? "yes" : "no",
                      gen.restartable ? "yes" : "no", note});
        }
        out << t.ToString();
        if (membership) {
            out << "membership: v" << membership->version << ", "
                << membership->LiveRanks().size() << "/"
                << membership->members.size() << " live\n";
        }
        if (restartable.empty()) {
            out << "FATAL: no restartable generation\n";
        } else if (damage || !torn.empty() || !orphaned.empty()) {
            out << "repairable: restart will degrade to generation "
                << restartable.back() << "\n";
        } else {
            out << "clean: " << restartable.size()
                << " restartable generation(s), newest "
                << restartable.back() << "\n";
        }
    }

    const std::string json_path = args.Get("json", "");
    if (!json_path.empty()) {
        std::ostringstream j;
        j << "{\n  \"format\": \"moc-fsck/1\",\n  \"root\": \""
          << obs::JsonEscape(root) << "\",\n  \"exit_code\": " << code
          << ",\n  \"files\": " << files.size()
          << ",\n  \"have_manifest\": " << (have_manifest ? "true" : "false")
          << ",\n  \"damaged_files\": [";
        for (std::size_t i = 0; i < damaged_files.size(); ++i) {
            j << (i == 0 ? "" : ", ") << "\""
              << obs::JsonEscape(damaged_files[i]) << "\"";
        }
        j << "],\n  \"missing_versions\": [";
        for (std::size_t i = 0; i < missing.size(); ++i) {
            j << (i == 0 ? "" : ", ") << "{\"key\": \""
              << obs::JsonEscape(missing[i].key)
              << "\", \"iteration\": " << missing[i].iteration << "}";
        }
        j << "],\n  \"delta_chain_breaks\": [";
        {
            std::size_t emitted = 0;
            for (const auto& mv : missing) {
                if (!mv.chain_break) {
                    continue;
                }
                j << (emitted++ == 0 ? "" : ", ") << "{\"key\": \""
                  << obs::JsonEscape(mv.key)
                  << "\", \"iteration\": " << mv.iteration
                  << ", \"base\": " << mv.base << "}";
            }
        }
        j << "],\n  \"torn_generations\": [";
        for (std::size_t i = 0; i < torn.size(); ++i) {
            j << (i == 0 ? "" : ", ") << torn[i];
        }
        j << "],\n  \"aborted_generations\": [";
        for (std::size_t i = 0; i < aborted.size(); ++i) {
            j << (i == 0 ? "" : ", ") << aborted[i];
        }
        j << "],\n  \"orphaned_generations\": [";
        for (std::size_t i = 0; i < orphaned.size(); ++i) {
            j << (i == 0 ? "" : ", ") << orphaned[i];
        }
        j << "],\n  \"membership_live_ranks\": "
          << (membership ? membership->LiveRanks().size() : 0)
          << ",\n  \"have_membership\": "
          << (membership ? "true" : "false")
          << ",\n  \"restartable_generations\": [";
        for (std::size_t i = 0; i < restartable.size(); ++i) {
            j << (i == 0 ? "" : ", ") << restartable[i];
        }
        j << "]\n}\n";
        if (!obs::WriteTextFile(json_path, j.str(), "fsck report")) {
            out << "warning: cannot write " << json_path << "\n";
        }
    }
    return code;
}

}  // namespace moc::cli
