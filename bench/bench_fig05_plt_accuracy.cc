/**
 * @file
 * Figure 5 reproduction: correlation between the Proportion of Lost Tokens
 * (PLT) and final validation loss.
 *
 * The paper trains GPT-125M-8E on Wikitext-2 with a fault at the midpoint
 * under varying (K_pec, I_ckpt); we train the tiny 8-expert stand-in on the
 * synthetic corpus. Expected shape: PLT grows as K_pec shrinks / I_ckpt
 * grows, and the final loss stays within noise of the non-fault case for
 * small PLT, degrading as PLT rises.
 */

#include <cstdio>

#include "bench_common.h"
#include "faults/trainer.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

namespace {

constexpr std::size_t kIterations = 2048;

LmTrainerConfig
TrainerFor(std::size_t k, std::size_t i_ckpt) {
    LmTrainerConfig cfg;
    cfg.moc.pec.k_snapshot = k;
    cfg.moc.pec.k_persist = k;
    cfg.moc.i_ckpt = i_ckpt;
    cfg.moc.two_level_recovery = false;  // isolate pure PEC as in Section 3
    cfg.parallel = {.dp = 8, .ep = 8, .tp = 1, .pp = 1};
    cfg.gpus_per_node = 4;
    cfg.total_iterations = kIterations;
    cfg.adam.lr = 3e-3;
    return cfg;
}

}  // namespace

int
main() {
    PrintHeader("Figure 5", "PLT vs final validation loss (fault at midpoint)");

    ZipfMarkovCorpus corpus(PretrainCorpus());
    LmBatchStream train(corpus, 4, 16, 0);
    LmBatchStream valid(corpus, 4, 16, 1);

    // Non-fault reference.
    MoeTransformerLm ref_model(TinyGpt8E());
    FaultInjector none(std::vector<FaultEvent>{});
    auto ref_cfg = TrainerFor(8, 16);
    const auto ref = RunFaultTolerantLmTraining(ref_model, train, valid, ref_cfg, none);
    std::printf("non-fault reference: final validation loss = %.4f "
                "(corpus conditional entropy floor = %.4f)\n",
                ref.final_eval_loss, corpus.ConditionalEntropy());

    Table table({"K_pec", "I_ckpt", "PLT (%)", "final val loss", "delta vs non-fault"});
    for (std::size_t k : {1UL, 2UL, 4UL, 8UL}) {
        for (std::size_t i_ckpt : {16UL, 32UL, 64UL}) {
            MoeTransformerLm model(TinyGpt8E());
            auto injector = FaultInjector::At(kIterations / 2 + 2, 0);
            auto cfg = TrainerFor(k, i_ckpt);
            const auto log =
                RunFaultTolerantLmTraining(model, train, valid, cfg, injector);
            table.AddRow({std::to_string(k), std::to_string(i_ckpt),
                          Table::Num(log.plt * 100.0, 2),
                          Table::Num(log.final_eval_loss, 4),
                          Table::Num(log.final_eval_loss - ref.final_eval_loss, 4)});
        }
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("expected shape: PLT rises as K_pec falls and I_ckpt grows;\n"
                "loss deltas stay small (|delta| << 1) at low PLT.\n");
    WriteBenchMetrics("fig05_plt_accuracy");
    return 0;
}
