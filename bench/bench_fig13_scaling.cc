/**
 * @file
 * Figure 13 reproduction: scaling and generalizing the three checkpointing
 * methods across (a) A800 GPU counts with DP+EP, (b) DP+EP+TP, (c) H100 GPU
 * counts, (d) sequence length, (e) model size, and (f) the persisted file
 * size per checkpoint.
 *
 * LLaMA-like MoE simulation models (hidden 2048, 16 heads x 128, 24 layers,
 * one expert per GPU for each MoE layer), per the paper's Section 6.2.4.
 * MoC-Async saves 1/8 of the experts per checkpoint.
 */

#include <cstdio>
#include <map>

#include "bench_common.h"
#include "ckpt/cluster_engine.h"
#include "dist/presets.h"
#include "sim/perf_model.h"
#include "sim/timeline.h"
#include "util/csv.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

namespace {

TrainingSetup
DpEpSetup(std::size_t gpus, const GpuSpec& gpu, const std::string& size,
          std::size_t seq_len, std::size_t tp) {
    TrainingSetup setup;
    const std::size_t dp = gpus / tp;
    setup.model = LlamaMoeSim(size, dp);  // one expert per DP rank
    setup.parallel = {.dp = dp, .ep = dp, .tp = tp, .pp = 1};
    setup.gpus_per_node = 8;
    setup.gpu = gpu;
    setup.batch_per_gpu = 2;
    setup.seq_len = seq_len;
    return setup;
}

std::size_t
MocK(const TrainingSetup& setup) {
    return std::max<std::size_t>(1, setup.model.num_experts / 8);
}

void
ScalingTable(const char* id, const char* title, const GpuSpec& gpu, std::size_t tp,
             CsvWriter& csv) {
    PrintHeader(id, title);
    Table t({"GPUs", "F&B (s)", "method", "O_save (s)", "iteration (s)",
             "snapshot (s)"});
    for (std::size_t gpus : {8UL, 16UL, 32UL, 64UL, 128UL, 256UL, 512UL, 1024UL}) {
        if (gpus < tp) {
            continue;
        }
        const auto setup = DpEpSetup(gpus, gpu, "medium", 2048, tp);
        const PerfModel model(setup);
        for (const auto& m : SimulateAllMethods(model, MocK(setup))) {
            t.AddRow({std::to_string(gpus), Table::Num(m.t_fb, 3), m.method,
                      Table::Num(m.o_save, 4), Table::Num(m.iteration, 3),
                      Table::Num(m.t_snapshot, 3)});
            csv.AddRow({id, std::to_string(gpus), gpu.name, std::to_string(tp),
                        m.method, Table::Num(m.t_fb, 4), Table::Num(m.o_save, 4),
                        Table::Num(m.iteration, 4), Table::Num(m.t_snapshot, 4)});
        }
    }
    std::printf("%s", t.ToString().c_str());
}

}  // namespace

int
main() {
    CsvWriter csv({"figure", "gpus", "gpu", "tp", "method", "t_fb_s", "o_save_s",
                   "iteration_s", "t_snapshot_s"});
    ScalingTable("Figure 13(a)", "scaling A800 GPUs, DP+EP", A800(), 1, csv);
    ScalingTable("Figure 13(b)", "scaling A800 GPUs, DP+EP+TP (TP=4)", A800(), 4,
                 csv);
    ScalingTable("Figure 13(c)", "scaling H100 GPUs, DP+EP", H100(), 1, csv);
    csv.WriteFile("results/fig13_scaling.csv");

    PrintHeader("Figure 13(d)", "sequence-length generalization (256 A800)");
    {
        Table t({"seq len", "F&B (s)", "snapshot (s)", "MoC-Async O_save (s)",
                 "Base-Async O_save (s)"});
        for (std::size_t seq : {1024UL, 2048UL, 4096UL, 8192UL}) {
            const auto setup = DpEpSetup(256, A800(), "medium", seq, 1);
            const PerfModel model(setup);
            const auto base = SimulateMethod(model, CkptMethod::kBaseAsync, 1);
            const auto moc = SimulateMethod(model, CkptMethod::kMocAsync, MocK(setup));
            t.AddRow({std::to_string(seq), Table::Num(moc.t_fb, 3),
                      Table::Num(base.t_snapshot, 3), Table::Num(moc.o_save, 4),
                      Table::Num(base.o_save, 4)});
        }
        std::printf("%s", t.ToString().c_str());
        std::printf("expected: F&B grows with sequence length; snapshot constant\n"
                    "(model state, not activations).\n");
    }

    PrintHeader("Figure 13(e)", "model-size generalization (256 A800)");
    {
        Table t({"size", "params", "F&B (s)", "method", "O_save (s)",
                 "iteration (s)"});
        for (const char* size : {"small", "medium", "large"}) {
            const auto setup = DpEpSetup(256, A800(), size, 2048, 1);
            const PerfModel model(setup);
            for (const auto& m : SimulateAllMethods(model, MocK(setup))) {
                t.AddRow({size,
                          Table::Num(static_cast<double>(setup.model.TotalParams()) /
                                         1e9,
                                     2) + "B",
                          Table::Num(m.t_fb, 3), m.method, Table::Num(m.o_save, 4),
                          Table::Num(m.iteration, 3)});
            }
        }
        std::printf("%s", t.ToString().c_str());
        std::printf("expected: MoC-Async's advantage grows with model size.\n");
    }

    PrintHeader("Figure 13(f)", "persist file size per checkpoint (A800, DP+EP)");
    {
        Table t({"GPUs", "full persist", "MoC persist (K=N/8)", "reduction"});
        for (std::size_t gpus : {8UL, 32UL, 128UL, 512UL, 1024UL}) {
            const auto setup = DpEpSetup(gpus, A800(), "medium", 2048, 1);
            const PerfModel model(setup);
            const Bytes full = model.PersistFileBytes(setup.model.num_experts);
            const Bytes moc = model.PersistFileBytes(MocK(setup));
            t.AddRow({std::to_string(gpus), FormatBytes(full), FormatBytes(moc),
                      Table::Num(1.0 - static_cast<double>(moc) /
                                           static_cast<double>(full),
                                 3)});
        }
        std::printf("%s", t.ToString().c_str());
        std::printf("expected: full persist volume grows ~linearly with GPU count\n"
                    "(experts scale with GPUs); MoC-Persist cuts it sharply.\n");
    }

    PrintHeader("Figure 13(f) measured",
                "cluster engine persist bytes, full re-persist vs dedup");
    {
        // The analytic table above predicts the reduction; this measures it
        // through the real persist pipeline: K=N/8 experts change per event,
        // the unchanged ones dedup against the last sealed generation.
        constexpr std::size_t kRanks = 8;
        constexpr std::size_t kExpertsPerRank = 8;
        constexpr std::size_t kPecK = kRanks * kExpertsPerRank / 8;
        constexpr std::size_t kEvents = 4;
        ShardPlan plan(kRanks);
        for (RankId r = 0; r < kRanks; ++r) {
            plan.Add(r, {"dense/" + std::to_string(r), 8 * kMiB, false});
            for (std::size_t e = 0; e < kExpertsPerRank; ++e) {
                plan.Add(r, {"expert/" +
                                 std::to_string(r * kExpertsPerRank + e) + "/w",
                             4 * kMiB, false});
            }
        }
        AgentCostModel cost;
        cost.snapshot_bandwidth = 200e6;
        cost.persist_bandwidth = 100e6;
        Table t({"mode", "bytes persisted", "keys deduped", "makespan (s)"});
        std::map<bool, Bytes> bytes_by_mode;
        for (const bool dedup : {false, true}) {
            PersistentStore store({.write_bandwidth = 100e6,
                                   .read_bandwidth = 400e6,
                                   .latency = 0.0});
            ClusterEngineOptions opt;
            opt.dedup = dedup;
            ClusterCheckpointEngine engine(store, kRanks, cost, opt);
            std::map<std::string, std::uint64_t> version;
            const BlobProvider provider = [&version](const ShardItem& item) {
                return SyntheticShardBytes(item, version[item.key]);
            };
            Bytes total = 0;
            Seconds makespan = 0.0;
            std::size_t deduped = 0;
            std::size_t next_expert = 0;
            for (std::size_t event = 1; event <= kEvents; ++event) {
                for (RankId r = 0; r < kRanks; ++r) {
                    ++version["dense/" + std::to_string(r)];
                }
                for (std::size_t k = 0; k < kPecK; ++k) {
                    const std::size_t id =
                        next_expert++ % (kRanks * kExpertsPerRank);
                    ++version["expert/" + std::to_string(id) + "/w"];
                }
                const auto stats = engine.Execute(plan, provider, event);
                total += stats.bytes_persisted;
                makespan += stats.total_makespan;
                deduped += stats.keys_deduped;
            }
            bytes_by_mode[dedup] = total;
            t.AddRow({dedup ? "per-shard+dedup" : "per-shard full",
                      FormatBytes(total), std::to_string(deduped),
                      Table::Num(makespan, 3)});
        }
        std::printf("%s", t.ToString().c_str());
        // First event persists everything (no baseline yet); afterwards only
        // the dense shards and K changed experts hit storage.
        const double full_event =
            kRanks * 8.0 + kRanks * kExpertsPerRank * 4.0;  // synthetic KiB
        const double pec_event = kRanks * 8.0 + kPecK * 4.0;
        std::printf("measured reduction: %.3f (expected ~%.3f: first event "
                    "full, then K=N/8 per event)\n",
                    1.0 - static_cast<double>(bytes_by_mode[true]) /
                              static_cast<double>(bytes_by_mode[false]),
                    1.0 - (full_event + (kEvents - 1) * pec_event) /
                              (kEvents * full_event));
    }
    WriteBenchMetrics("fig13_scaling");
    return 0;
}
