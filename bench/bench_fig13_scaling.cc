/**
 * @file
 * Figure 13 reproduction: scaling and generalizing the three checkpointing
 * methods across (a) A800 GPU counts with DP+EP, (b) DP+EP+TP, (c) H100 GPU
 * counts, (d) sequence length, (e) model size, and (f) the persisted file
 * size per checkpoint.
 *
 * LLaMA-like MoE simulation models (hidden 2048, 16 heads x 128, 24 layers,
 * one expert per GPU for each MoE layer), per the paper's Section 6.2.4.
 * MoC-Async saves 1/8 of the experts per checkpoint.
 */

#include <cstdio>

#include "bench_common.h"
#include "dist/presets.h"
#include "sim/perf_model.h"
#include "sim/timeline.h"
#include "util/csv.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

namespace {

TrainingSetup
DpEpSetup(std::size_t gpus, const GpuSpec& gpu, const std::string& size,
          std::size_t seq_len, std::size_t tp) {
    TrainingSetup setup;
    const std::size_t dp = gpus / tp;
    setup.model = LlamaMoeSim(size, dp);  // one expert per DP rank
    setup.parallel = {.dp = dp, .ep = dp, .tp = tp, .pp = 1};
    setup.gpus_per_node = 8;
    setup.gpu = gpu;
    setup.batch_per_gpu = 2;
    setup.seq_len = seq_len;
    return setup;
}

std::size_t
MocK(const TrainingSetup& setup) {
    return std::max<std::size_t>(1, setup.model.num_experts / 8);
}

void
ScalingTable(const char* id, const char* title, const GpuSpec& gpu, std::size_t tp,
             CsvWriter& csv) {
    PrintHeader(id, title);
    Table t({"GPUs", "F&B (s)", "method", "O_save (s)", "iteration (s)",
             "snapshot (s)"});
    for (std::size_t gpus : {8UL, 16UL, 32UL, 64UL, 128UL, 256UL, 512UL, 1024UL}) {
        if (gpus < tp) {
            continue;
        }
        const auto setup = DpEpSetup(gpus, gpu, "medium", 2048, tp);
        const PerfModel model(setup);
        for (const auto& m : SimulateAllMethods(model, MocK(setup))) {
            t.AddRow({std::to_string(gpus), Table::Num(m.t_fb, 3), m.method,
                      Table::Num(m.o_save, 4), Table::Num(m.iteration, 3),
                      Table::Num(m.t_snapshot, 3)});
            csv.AddRow({id, std::to_string(gpus), gpu.name, std::to_string(tp),
                        m.method, Table::Num(m.t_fb, 4), Table::Num(m.o_save, 4),
                        Table::Num(m.iteration, 4), Table::Num(m.t_snapshot, 4)});
        }
    }
    std::printf("%s", t.ToString().c_str());
}

}  // namespace

int
main() {
    CsvWriter csv({"figure", "gpus", "gpu", "tp", "method", "t_fb_s", "o_save_s",
                   "iteration_s", "t_snapshot_s"});
    ScalingTable("Figure 13(a)", "scaling A800 GPUs, DP+EP", A800(), 1, csv);
    ScalingTable("Figure 13(b)", "scaling A800 GPUs, DP+EP+TP (TP=4)", A800(), 4,
                 csv);
    ScalingTable("Figure 13(c)", "scaling H100 GPUs, DP+EP", H100(), 1, csv);
    csv.WriteFile("results/fig13_scaling.csv");

    PrintHeader("Figure 13(d)", "sequence-length generalization (256 A800)");
    {
        Table t({"seq len", "F&B (s)", "snapshot (s)", "MoC-Async O_save (s)",
                 "Base-Async O_save (s)"});
        for (std::size_t seq : {1024UL, 2048UL, 4096UL, 8192UL}) {
            const auto setup = DpEpSetup(256, A800(), "medium", seq, 1);
            const PerfModel model(setup);
            const auto base = SimulateMethod(model, CkptMethod::kBaseAsync, 1);
            const auto moc = SimulateMethod(model, CkptMethod::kMocAsync, MocK(setup));
            t.AddRow({std::to_string(seq), Table::Num(moc.t_fb, 3),
                      Table::Num(base.t_snapshot, 3), Table::Num(moc.o_save, 4),
                      Table::Num(base.o_save, 4)});
        }
        std::printf("%s", t.ToString().c_str());
        std::printf("expected: F&B grows with sequence length; snapshot constant\n"
                    "(model state, not activations).\n");
    }

    PrintHeader("Figure 13(e)", "model-size generalization (256 A800)");
    {
        Table t({"size", "params", "F&B (s)", "method", "O_save (s)",
                 "iteration (s)"});
        for (const char* size : {"small", "medium", "large"}) {
            const auto setup = DpEpSetup(256, A800(), size, 2048, 1);
            const PerfModel model(setup);
            for (const auto& m : SimulateAllMethods(model, MocK(setup))) {
                t.AddRow({size,
                          Table::Num(static_cast<double>(setup.model.TotalParams()) /
                                         1e9,
                                     2) + "B",
                          Table::Num(m.t_fb, 3), m.method, Table::Num(m.o_save, 4),
                          Table::Num(m.iteration, 3)});
            }
        }
        std::printf("%s", t.ToString().c_str());
        std::printf("expected: MoC-Async's advantage grows with model size.\n");
    }

    PrintHeader("Figure 13(f)", "persist file size per checkpoint (A800, DP+EP)");
    {
        Table t({"GPUs", "full persist", "MoC persist (K=N/8)", "reduction"});
        for (std::size_t gpus : {8UL, 32UL, 128UL, 512UL, 1024UL}) {
            const auto setup = DpEpSetup(gpus, A800(), "medium", 2048, 1);
            const PerfModel model(setup);
            const Bytes full = model.PersistFileBytes(setup.model.num_experts);
            const Bytes moc = model.PersistFileBytes(MocK(setup));
            t.AddRow({std::to_string(gpus), FormatBytes(full), FormatBytes(moc),
                      Table::Num(1.0 - static_cast<double>(moc) /
                                           static_cast<double>(full),
                                 3)});
        }
        std::printf("%s", t.ToString().c_str());
        std::printf("expected: full persist volume grows ~linearly with GPU count\n"
                    "(experts scale with GPUs); MoC-Persist cuts it sharply.\n");
    }
    WriteBenchMetrics("fig13_scaling");
    return 0;
}
