/**
 * @file
 * Placement-policy sweep at simulated cluster scale: solves the elastic
 * expert placement problem (core/placement.h) cold and across membership
 * churn (one rank killed, then rejoining) for every policy at 64 → 10k
 * ranks, and reports moved bytes, balance, and solve latency per policy.
 *
 * The headline scalars gated by CI (`bench/baselines/BENCH_placement.json`)
 * are the *deterministic* moved-byte counts at the small and mid scales —
 * a regression there means the solver started thrashing replicas on
 * membership change, the exact cost the min-move objective exists to
 * avoid. Wall-clock latencies are printed for eyeballs, never gated.
 *
 * Usage: bench_placement [--max-ranks N]   (default 10240; CI smoke passes
 * 1024 so the gated scalars stay cheap to reproduce on shared runners.)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/placement.h"
#include "util/bytes.h"

namespace moc::bench {
namespace {

std::vector<ExpertSpec>
MakeExperts(std::size_t ranks) {
    // Two experts per rank, 16 MiB each, with a skewed hot/cold load mix.
    std::vector<ExpertSpec> experts(ranks * 2);
    for (std::size_t id = 0; id < experts.size(); ++id) {
        experts[id].id = id;
        experts[id].bytes = 16 * kMiB;
        experts[id].load = 1.0 + static_cast<double>(id % 13);
    }
    return experts;
}

std::vector<std::size_t>
AllRanks(std::size_t n) {
    std::vector<std::size_t> ranks(n);
    for (std::size_t i = 0; i < n; ++i) {
        ranks[i] = i;
    }
    return ranks;
}

double
SolveMs(PlacementProblem& problem, PlacementPlan& out) {
    const auto t0 = std::chrono::steady_clock::now();
    out = SolvePlacement(problem);
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

int
Run(std::size_t max_ranks) {
    PrintHeader("placement", "elastic expert placement policy sweep");

    const std::size_t scales[] = {64, 1024, 10240};
    const PlacementPolicy policies[] = {PlacementPolicy::kLoadAware,
                                        PlacementPolicy::kMinMove,
                                        PlacementPolicy::kRoundRobin};
    BenchScalars scalars;
    std::printf("%-12s %7s %9s %9s %9s %12s %12s\n", "policy", "ranks",
                "cold_ms", "max_load", "mean", "kill_MiB", "rejoin_MiB");
    for (const std::size_t ranks : scales) {
        if (ranks > max_ranks) {
            std::printf("(skipping %zu ranks: --max-ranks %zu)\n", ranks,
                        max_ranks);
            continue;
        }
        for (const PlacementPolicy policy : policies) {
            PlacementProblem problem;
            problem.experts = MakeExperts(ranks);
            problem.live_ranks = AllRanks(ranks);
            problem.replicas = 2;
            problem.policy = policy;

            PlacementPlan cold;
            const double cold_ms = SolveMs(problem, cold);
            const PlacementCheck check = VerifyPlacement(problem, cold);
            if (!check.ok) {
                std::fprintf(stderr, "placement invalid (%s, %zu ranks): %s\n",
                             PlacementPolicyName(policy), ranks,
                             check.error.c_str());
                return 1;
            }

            // Kill one rank mid-cluster: re-solve over the survivors.
            PlacementProblem shrink = problem;
            shrink.live_ranks.erase(shrink.live_ranks.begin() +
                                    static_cast<std::ptrdiff_t>(ranks / 3));
            shrink.current = cold.assignments;
            PlacementPlan after_kill;
            SolveMs(shrink, after_kill);
            if (!VerifyPlacement(shrink, after_kill).ok) {
                std::fprintf(stderr, "post-kill placement invalid (%s)\n",
                             PlacementPolicyName(policy));
                return 1;
            }

            // The killed rank rejoins: re-solve over the full set again.
            PlacementProblem grow = problem;
            grow.current = after_kill.assignments;
            PlacementPlan after_rejoin;
            SolveMs(grow, after_rejoin);
            if (!VerifyPlacement(grow, after_rejoin).ok) {
                std::fprintf(stderr, "post-rejoin placement invalid (%s)\n",
                             PlacementPolicyName(policy));
                return 1;
            }

            std::printf("%-12s %7zu %9.1f %9.1f %9.1f %12.0f %12.0f\n",
                        PlacementPolicyName(policy), ranks, cold_ms,
                        check.max_load, check.mean_load,
                        static_cast<double>(after_kill.moved_bytes) /
                            static_cast<double>(kMiB),
                        static_cast<double>(after_rejoin.moved_bytes) /
                            static_cast<double>(kMiB));

            // Gate moved bytes at the reproducible scales only; the 10k row
            // is for the scaling figure, not the CI smoke.
            if (ranks <= 1024) {
                const std::string prefix =
                    std::string(PlacementPolicyName(policy)) + "." +
                    std::to_string(ranks);
                scalars.emplace_back(
                    prefix + ".kill_moved_bytes",
                    static_cast<double>(after_kill.moved_bytes));
                scalars.emplace_back(
                    prefix + ".rejoin_moved_bytes",
                    static_cast<double>(after_rejoin.moved_bytes));
            }
        }
    }
    WriteBenchMetrics("placement", scalars);
    return 0;
}

}  // namespace
}  // namespace moc::bench

int
main(int argc, char** argv) {
    std::size_t max_ranks = 10240;
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], "--max-ranks") == 0) {
            max_ranks = static_cast<std::size_t>(std::strtoull(
                argv[i + 1], nullptr, 10));
        }
    }
    return moc::bench::Run(max_ranks);
}
