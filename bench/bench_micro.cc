/**
 * @file
 * Micro-benchmarks (google-benchmark) for the hot paths of the MoC system:
 * sequential selection, shard planning, tensor serialization, CRC32, the
 * manifest, MoE forward/backward, and the checkpoint save path.
 */

#include <benchmark/benchmark.h>

#include "core/moc_system.h"
#include "core/selection.h"
#include "core/sharding.h"
#include "dist/presets.h"
#include "nn/model.h"
#include "storage/manifest.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "util/crc32.h"

namespace moc {
namespace {

void
BM_SequentialSelect(benchmark::State& state) {
    SequentialSelector sel(64);
    std::size_t c = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sel.Select(c++, 5, static_cast<std::size_t>(state.range(0))));
    }
}
BENCHMARK(BM_SequentialSelect)->Arg(1)->Arg(8)->Arg(32);

void
BM_ShardPlanFull(benchmark::State& state) {
    const ModelSpec spec = Gpt350M16E();
    const ModelStateInventory inv(spec, StateBytes{});
    const RankTopology topo(Case3().parallel, Case3().GpusPerNode());
    ShardingPlanner planner(inv, topo, ShardingOptions{true, true, true});
    for (auto _ : state) {
        benchmark::DoNotOptimize(planner.PlanFull().BottleneckBytes());
    }
}
BENCHMARK(BM_ShardPlanFull);

void
BM_TensorSerialize(benchmark::State& state) {
    Rng rng(1);
    const auto t = Tensor::Randn({static_cast<std::size_t>(state.range(0)), 64},
                                 rng, 1.0F);
    for (auto _ : state) {
        benchmark::DoNotOptimize(SerializeTensor(t));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(t.size() * sizeof(float)));
}
BENCHMARK(BM_TensorSerialize)->Arg(64)->Arg(1024);

void
BM_TensorRoundTrip(benchmark::State& state) {
    Rng rng(1);
    const auto t = Tensor::Randn({256, 64}, rng, 1.0F);
    const auto blob = SerializeTensor(t);
    for (auto _ : state) {
        benchmark::DoNotOptimize(DeserializeTensor(blob));
    }
}
BENCHMARK(BM_TensorRoundTrip);

void
BM_Crc32(benchmark::State& state) {
    std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 0x5A);
    for (auto _ : state) {
        benchmark::DoNotOptimize(Crc32(data.data(), data.size()));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                            state.range(0));
}
BENCHMARK(BM_Crc32)->Arg(4096)->Arg(1 << 20);

void
BM_MatMul(benchmark::State& state) {
    Rng rng(2);
    const auto n = static_cast<std::size_t>(state.range(0));
    const auto a = Tensor::Randn({n, n}, rng, 1.0F);
    const auto b = Tensor::Randn({n, n}, rng, 1.0F);
    for (auto _ : state) {
        benchmark::DoNotOptimize(MatMul(a, b));
    }
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(128);

void
BM_MoeForwardBackward(benchmark::State& state) {
    LmConfig cfg;
    cfg.vocab = 64;
    cfg.max_seq = 16;
    cfg.hidden = 32;
    cfg.num_heads = 2;
    cfg.head_dim = 16;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = static_cast<std::size_t>(state.range(0));
    MoeTransformerLm model(cfg);
    LmBatch batch;
    batch.batch = 4;
    batch.seq = 16;
    Rng rng(3);
    for (std::size_t i = 0; i < batch.batch * batch.seq; ++i) {
        batch.inputs.push_back(static_cast<TokenId>(rng.UniformInt(64)));
        batch.targets.push_back(static_cast<TokenId>(rng.UniformInt(64)));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(model.TrainBackward(batch));
    }
}
BENCHMARK(BM_MoeForwardBackward)->Arg(4)->Arg(16);

void
BM_ManifestLookup(benchmark::State& state) {
    CheckpointManifest manifest;
    for (int i = 0; i < 1000; ++i) {
        manifest.RecordSave(StoreLevel::kPersist, "key/" + std::to_string(i), 10, 0,
                            100);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(manifest.Latest(StoreLevel::kPersist, "key/500"));
    }
}
BENCHMARK(BM_ManifestLookup);

void
BM_CheckpointEvent(benchmark::State& state) {
    LmConfig cfg;
    cfg.vocab = 64;
    cfg.max_seq = 16;
    cfg.hidden = 32;
    cfg.num_heads = 2;
    cfg.head_dim = 16;
    cfg.num_layers = 2;
    cfg.ffn_mult = 2;
    cfg.num_experts = 8;
    MoeTransformerLm model(cfg);
    RankTopology topo({.dp = 8, .ep = 8, .tp = 1, .pp = 1}, 4);
    MocSystemConfig sys_cfg;
    sys_cfg.pec.k_snapshot = static_cast<std::size_t>(state.range(0));
    sys_cfg.pec.k_persist = 1;
    sys_cfg.i_ckpt = 1;
    ExtraState extra{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(sys_cfg, model, topo, cfg.ToModelSpec(), extra);
    std::size_t iteration = 0;
    for (auto _ : state) {
        ++iteration;
        extra.iteration = iteration;
        benchmark::DoNotOptimize(system.Checkpoint(iteration, extra));
    }
}
BENCHMARK(BM_CheckpointEvent)->Arg(1)->Arg(8);

}  // namespace
}  // namespace moc
