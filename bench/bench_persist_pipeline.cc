/**
 * @file
 * Cluster persist-pipeline A/B: the monolithic latest-wins blob per rank vs
 * the per-shard keyed commit protocol, with and without unchanged-expert
 * dedup, on a PEC-shaped workload (K changed experts per event, K << N —
 * Section 4.2). Measures persisted bytes and event makespan across a run of
 * checkpoint events, then demonstrates the torn-checkpoint failure mode the
 * commit protocol removes: a mid-event persist fault leaves the generation
 * unsealed and recovery falls back to the previous sealed one.
 *
 * A second A/B targets the hot-expert regime dedup cannot touch: every
 * shard changes ~1% of its chunks every event, so whole-blob identity never
 * matches and dedup-only rewrites everything. Delta encoding persists just
 * the changed chunks and the run ends with a full cluster restore that is
 * checked byte-for-byte against the live state.
 */

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "ckpt/cluster_engine.h"
#include "core/cluster_recovery.h"
#include "storage/faulty_store.h"
#include "storage/persistent_store.h"
#include "util/csv.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

namespace {

constexpr std::size_t kRanks = 4;
constexpr std::size_t kExpertsPerRank = 16;
constexpr std::size_t kPecK = 8;  // changed experts per event (K << N = 64)
constexpr std::size_t kEvents = 6;
// Large enough that the modeled write sleeps dwarf per-call scheduler
// overhead (synthetic scale: 1 planned MiB -> 1 KiB on disk).
constexpr Bytes kExpertBytes = 32 * kMiB;
constexpr Bytes kDenseBytes = 128 * kMiB;

ShardPlan
PecPlan() {
    ShardPlan plan(kRanks);
    for (RankId r = 0; r < kRanks; ++r) {
        plan.Add(r, {"dense/" + std::to_string(r), kDenseBytes, false});
        for (std::size_t e = 0; e < kExpertsPerRank; ++e) {
            const std::size_t id = r * kExpertsPerRank + e;
            plan.Add(r, {"expert/" + std::to_string(id) + "/w", kExpertBytes,
                         false});
        }
    }
    return plan;
}

AgentCostModel
BenchCost() {
    AgentCostModel cost;
    cost.snapshot_bandwidth = 100e6;
    cost.persist_bandwidth = 50e6;
    cost.time_scale = 1.0;
    return cost;
}

/** Accumulated outcome of one mode's run. */
struct ModeResult {
    std::size_t keys_written = 0;
    std::size_t keys_deduped = 0;
    Bytes bytes_persisted = 0;
    Seconds total_makespan = 0.0;
    std::size_t sealed = 0;
};

/**
 * Runs @p events PEC-shaped checkpoint events through one engine: every
 * event trains the dense shards and K experts (round-robin), leaving the
 * other N-K experts bit-identical — the state dedup keys on.
 */
ModeResult
RunMode(ClusterCheckpointEngine& engine, const ShardPlan& plan) {
    std::map<std::string, std::uint64_t> version;
    std::size_t next_expert = 0;
    const BlobProvider provider = [&version](const ShardItem& item) {
        return SyntheticShardBytes(item, version[item.key]);
    };
    ModeResult result;
    for (std::size_t event = 1; event <= kEvents; ++event) {
        for (RankId r = 0; r < kRanks; ++r) {
            ++version["dense/" + std::to_string(r)];
        }
        for (std::size_t k = 0; k < kPecK; ++k) {
            const std::size_t id = next_expert++ % (kRanks * kExpertsPerRank);
            ++version["expert/" + std::to_string(id) + "/w"];
        }
        const auto stats = engine.Execute(plan, provider, event);
        result.keys_written += stats.keys_persisted;
        result.keys_deduped += stats.keys_deduped;
        result.bytes_persisted += stats.bytes_persisted;
        result.total_makespan += stats.total_makespan;
        result.sealed += stats.sealed ? 1 : 0;
    }
    return result;
}

// --- hot-expert churn scenario -------------------------------------------

constexpr std::size_t kHotEvents = 12;
constexpr std::size_t kHotChunkBytes = 64;  // matches the synthetic blob scale

/**
 * The live state of one shard after @p event training events: the base
 * synthetic blob with ~1% of its chunks XOR-perturbed per event
 * (cumulative). Every event touches every shard, so whole-blob dedup never
 * fires — only chunk-granular deltas can exploit the 99% that stayed put.
 */
Blob
HotChurnBytes(const ShardItem& item, std::uint64_t event) {
    Blob blob = SyntheticShardBytes(item, 1);
    const std::size_t chunks =
        (blob.size() + kHotChunkBytes - 1) / kHotChunkBytes;
    const std::size_t churn = std::max<std::size_t>(1, chunks / 100);
    for (std::uint64_t v = 2; v <= event; ++v) {
        for (std::size_t i = 0; i < churn; ++i) {
            const std::size_t off =
                ((v * 131 + i * 977) % chunks) * kHotChunkBytes;
            const std::size_t end = std::min(off + kHotChunkBytes, blob.size());
            for (std::size_t b = off; b < end; ++b) {
                blob[b] ^= static_cast<std::uint8_t>(0xA5 ^ v);
            }
        }
    }
    return blob;
}

/** Accumulated outcome of one hot-churn mode's run. */
struct HotResult {
    Bytes bytes_persisted = 0;
    std::size_t keys_delta = 0;
    Bytes bytes_delta_saved = 0;
    std::size_t forced_full = 0;
    std::size_t sealed = 0;
};

HotResult
RunHotMode(ClusterCheckpointEngine& engine, const ShardPlan& plan) {
    std::uint64_t event_now = 0;
    const BlobProvider provider = [&event_now](const ShardItem& item) {
        return HotChurnBytes(item, event_now);
    };
    HotResult result;
    for (std::size_t event = 1; event <= kHotEvents; ++event) {
        event_now = event;
        const auto stats = engine.Execute(plan, provider, event);
        result.bytes_persisted += stats.bytes_persisted;
        result.keys_delta += stats.keys_delta;
        result.bytes_delta_saved += stats.bytes_delta_saved;
        result.forced_full += stats.forced_full;
        result.sealed += stats.sealed ? 1 : 0;
    }
    return result;
}

}  // namespace

int
main() {
    PrintHeader("persist-pipeline", "monolithic vs per-shard keyed commit");
    std::printf("%zu ranks x %zu experts, K=%zu changed per event, %zu events\n",
                kRanks, kExpertsPerRank, kPecK, kEvents);

    const auto plan = PecPlan();
    struct Mode {
        const char* name;
        bool per_shard;
        bool dedup;
    };
    const Mode modes[] = {{"monolithic", false, false},
                          {"per-shard", true, false},
                          {"per-shard+dedup", true, true}};

    CsvWriter csv({"mode", "events", "keys_written", "keys_deduped",
                   "bytes_persisted", "makespan_s", "sealed_generations"});
    Table t({"mode", "keys written", "keys deduped", "bytes persisted",
             "makespan (s)", "sealed gens"});
    Bytes monolithic_bytes = 0;
    Bytes dedup_bytes = 0;
    Seconds monolithic_makespan = 0.0;
    Seconds dedup_makespan = 0.0;
    std::map<std::string, ModeResult> by_mode;
    for (const auto& mode : modes) {
        PersistentStore store(
            {.write_bandwidth = 50e6, .read_bandwidth = 200e6, .latency = 0.0});
        ClusterEngineOptions opt;
        opt.per_shard = mode.per_shard;
        opt.dedup = mode.dedup;
        ClusterCheckpointEngine engine(store, kRanks, BenchCost(), opt);
        const ModeResult r = RunMode(engine, plan);
        t.AddRow({mode.name, std::to_string(r.keys_written),
                  std::to_string(r.keys_deduped), FormatBytes(r.bytes_persisted),
                  Table::Num(r.total_makespan, 3), std::to_string(r.sealed)});
        csv.AddRow({mode.name, std::to_string(kEvents),
                    std::to_string(r.keys_written), std::to_string(r.keys_deduped),
                    std::to_string(r.bytes_persisted),
                    Table::Num(r.total_makespan, 4), std::to_string(r.sealed)});
        if (std::string(mode.name) == "monolithic") {
            monolithic_bytes = r.bytes_persisted;
            monolithic_makespan = r.total_makespan;
        }
        if (std::string(mode.name) == "per-shard+dedup") {
            dedup_bytes = r.bytes_persisted;
            dedup_makespan = r.total_makespan;
        }
        by_mode[mode.name] = r;
    }
    std::printf("%s", t.ToString().c_str());
    if (monolithic_bytes > 0) {
        std::printf(
            "per-shard+dedup vs monolithic: %.1f%% of the bytes, %.2fx the "
            "makespan\n",
            100.0 * static_cast<double>(dedup_bytes) /
                static_cast<double>(monolithic_bytes),
            dedup_makespan / monolithic_makespan);
        std::printf("expected: dedup persists ~(K + dense)/(N + dense) of the "
                    "monolithic bytes,\nwith correspondingly lower makespan "
                    "(unchanged experts never hit storage).\n");
    }
    csv.WriteFile("results/persist_pipeline.csv");

    PrintHeader("torn event", "commit protocol under a mid-event persist fault");
    {
        PersistentStore base(
            {.write_bandwidth = 50e6, .read_bandwidth = 200e6, .latency = 0.0});
        FaultyStore store(base, /*seed=*/2024);
        ClusterCheckpointEngine engine(store, kRanks, BenchCost());
        std::map<std::string, std::uint64_t> version;
        const BlobProvider provider = [&version](const ShardItem& item) {
            return SyntheticShardBytes(item, version[item.key]);
        };
        auto train = [&version](std::uint64_t event) {
            for (RankId r = 0; r < kRanks; ++r) {
                version["dense/" + std::to_string(r)] = event;
            }
        };
        train(1);
        const auto first = engine.Execute(plan, provider, 1);
        train(2);
        StorageFaultProfile profile;
        profile.put_transient_error = 1.0;  // every write of event 2 fails
        store.Arm(profile);
        const auto torn = engine.Execute(plan, provider, 2);
        store.Disarm();
        std::printf("event 1: sealed=%d  event 2 (faulty): sealed=%d, "
                    "%zu of %zu shard writes failed\n",
                    first.sealed ? 1 : 0, torn.sealed ? 1 : 0,
                    torn.persist_failures,
                    torn.keys_persisted + torn.keys_deduped +
                        torn.persist_failures);
        const auto restore = PlanClusterRestore(engine.manifest());
        if (restore.has_value()) {
            std::printf("restart target: generation %zu (torn generation %zu "
                        "never offered)\n",
                        restore->generation, torn.generation);
        } else {
            std::printf("restart target: none\n");
        }
    }

    PrintHeader("hot expert", "1% chunk churn: dedup-only vs delta encoding");
    std::printf("%zu events, every shard perturbs ~1%% of its %zu-byte chunks "
                "per event\n",
                kHotEvents, kHotChunkBytes);
    Bytes hot_dedup_bytes = 0;
    Bytes hot_delta_bytes = 0;
    std::size_t hot_keys_delta = 0;
    std::size_t hot_forced_full = 0;
    bool hot_restore_byte_equal = false;
    {
        CsvWriter hot_csv({"mode", "events", "bytes_persisted", "keys_delta",
                           "bytes_delta_saved", "forced_full",
                           "sealed_generations"});
        Table hot_t({"mode", "bytes persisted", "keys delta", "bytes saved",
                     "forced full", "sealed gens"});
        for (const bool delta : {false, true}) {
            PersistentStore store({.write_bandwidth = 50e6,
                                   .read_bandwidth = 200e6,
                                   .latency = 0.0});
            ClusterEngineOptions opt;
            opt.per_shard = true;
            opt.dedup = true;
            opt.delta = delta;
            opt.delta_chunk_bytes = kHotChunkBytes;
            // Deep enough that no chain hits the bound inside this run; the
            // forced-full cadence is covered by tests/delta_ckpt_test.cc.
            opt.max_delta_chain = 16;
            ClusterCheckpointEngine engine(store, kRanks, BenchCost(), opt);
            const HotResult r = RunHotMode(engine, plan);
            const char* name = delta ? "dedup+delta" : "dedup-only";
            hot_t.AddRow({name, FormatBytes(r.bytes_persisted),
                          std::to_string(r.keys_delta),
                          FormatBytes(r.bytes_delta_saved),
                          std::to_string(r.forced_full),
                          std::to_string(r.sealed)});
            hot_csv.AddRow({name, std::to_string(kHotEvents),
                            std::to_string(r.bytes_persisted),
                            std::to_string(r.keys_delta),
                            std::to_string(r.bytes_delta_saved),
                            std::to_string(r.forced_full),
                            std::to_string(r.sealed)});
            if (delta) {
                hot_delta_bytes = r.bytes_persisted;
                hot_keys_delta = r.keys_delta;
                hot_forced_full = r.forced_full;
                // The savings only count if the chains reconstruct: restore
                // the final sealed generation and compare byte-for-byte
                // against the live churned state.
                const auto restore_plan = PlanClusterRestore(engine.manifest());
                if (restore_plan.has_value()) {
                    const auto restored = ExecuteClusterRestore(
                        engine.manifest(), store, *restore_plan);
                    hot_restore_byte_equal = restored.damaged.empty() &&
                                             restored.degraded.empty();
                    for (RankId rk = 0; rk < kRanks && hot_restore_byte_equal;
                         ++rk) {
                        for (const ShardItem& item : plan.Items(rk)) {
                            const auto it = restored.blobs.find(
                                "rank" + std::to_string(rk) + "/" + item.key);
                            if (it == restored.blobs.end() ||
                                it->second != HotChurnBytes(item, kHotEvents)) {
                                hot_restore_byte_equal = false;
                                break;
                            }
                        }
                    }
                }
            } else {
                hot_dedup_bytes = r.bytes_persisted;
            }
        }
        std::printf("%s", hot_t.ToString().c_str());
        if (hot_delta_bytes > 0) {
            std::printf("dedup+delta vs dedup-only: %.1fx fewer bytes "
                        "persisted; restore byte-identical: %s\n",
                        static_cast<double>(hot_dedup_bytes) /
                            static_cast<double>(hot_delta_bytes),
                        hot_restore_byte_equal ? "yes" : "NO");
        }
        hot_csv.WriteFile("results/persist_pipeline_hot.csv");
    }

    // Headline scalars are all deterministic (byte/count accounting of the
    // synthetic workload) — wall-clock makespans stay out of the CI gate.
    BenchScalars scalars;
    for (const auto& [name, r] : by_mode) {
        scalars.emplace_back(name + ".keys_written",
                             static_cast<double>(r.keys_written));
        scalars.emplace_back(name + ".keys_deduped",
                             static_cast<double>(r.keys_deduped));
        scalars.emplace_back(name + ".bytes_persisted",
                             static_cast<double>(r.bytes_persisted));
        scalars.emplace_back(name + ".sealed_generations",
                             static_cast<double>(r.sealed));
    }
    if (monolithic_bytes > 0) {
        scalars.emplace_back("dedup_bytes_ratio",
                             static_cast<double>(dedup_bytes) /
                                 static_cast<double>(monolithic_bytes));
    }
    scalars.emplace_back("hot_expert.bytes_persisted_dedup_only",
                         static_cast<double>(hot_dedup_bytes));
    scalars.emplace_back("hot_expert.bytes_persisted_delta",
                         static_cast<double>(hot_delta_bytes));
    scalars.emplace_back("hot_expert.keys_delta",
                         static_cast<double>(hot_keys_delta));
    scalars.emplace_back("hot_expert.forced_full",
                         static_cast<double>(hot_forced_full));
    if (hot_delta_bytes > 0) {
        scalars.emplace_back("hot_expert.delta_reduction_x",
                             static_cast<double>(hot_dedup_bytes) /
                                 static_cast<double>(hot_delta_bytes));
    }
    scalars.emplace_back("hot_expert.restore_byte_equal",
                         hot_restore_byte_equal ? 1.0 : 0.0);
    WriteBenchMetrics("persist_pipeline", scalars);
    return 0;
}
