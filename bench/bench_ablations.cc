/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *  A. expert-selection policy — per-EP-rank save-workload balance of
 *     sequential vs load-aware vs a naive "always the first K" policy;
 *  B. adaptive K_snapshot — the O_save / PLT-proxy trade-off of fixed K
 *     versus the Section 5.3 configurator across hardware points;
 *  C. two-level recovery read path — estimated O_restart with and without
 *     in-memory recovery (EstimateRecoveryCost over real recovery plans);
 *  D. sharding-strategy sweep across EP-group counts — where each
 *     optimization starts to matter.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/adaptive.h"
#include "core/moc_system.h"
#include "core/recovery_cost.h"
#include "core/selection.h"
#include "core/sharding.h"
#include "dist/presets.h"
#include "sim/perf_model.h"
#include "sim/timeline.h"
#include "util/stats.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

namespace {

/** Per-EP-rank save counts of a selection policy over many events. */
RunningStat
RankBalance(ExpertSelector& selector, std::size_t k, std::size_t num_experts,
            std::size_t ep, std::size_t moe_layers, std::size_t events) {
    RankTopology topo({.dp = ep, .ep = ep, .tp = 1, .pp = 1}, 8);
    std::vector<std::size_t> per_rank(ep, 0);
    for (std::size_t c = 0; c < events; ++c) {
        for (std::size_t m = 0; m < moe_layers; ++m) {
            for (auto e : selector.Select(c, m, k)) {
                ++per_rank[topo.OwnerEpRank(e, num_experts)];
            }
        }
    }
    RunningStat stat;
    for (auto v : per_rank) {
        stat.Add(static_cast<double>(v));
    }
    return stat;
}

/** A deliberately bad policy: always saves experts [0, k). */
class FirstKSelector final : public ExpertSelector {
  public:
    explicit FirstKSelector(std::size_t n) : n_(n) {}
    std::vector<ExpertId> Select(std::size_t, std::size_t, std::size_t k) override {
        std::vector<ExpertId> out(std::min(k, n_));
        for (std::size_t i = 0; i < out.size(); ++i) {
            out[i] = i;
        }
        return out;
    }
    std::string name() const override { return "first-k"; }

  private:
    std::size_t n_;
};

}  // namespace

int
main() {
    PrintHeader("Ablation A", "selection policy: per-EP-rank workload balance");
    {
        constexpr std::size_t kExperts = 16;
        constexpr std::size_t kEp = 8;
        constexpr std::size_t kLayers = 12;
        constexpr std::size_t kEvents = 64;
        Table t({"policy", "K", "mean saves/rank", "max/mean imbalance"});
        for (std::size_t k : {1UL, 2UL, 4UL}) {
            SequentialSelector seq(kExperts);
            auto s = RankBalance(seq, k, kExperts, kEp, kLayers, kEvents);
            t.AddRow({"sequential", std::to_string(k), Table::Num(s.mean(), 1),
                      Table::Num(s.max() / s.mean(), 3)});
            // Load-aware with uniform load degenerates to id order; model a
            // skewed load (expert 0 always hottest) — the worst case for
            // balance, as the paper's footnote on control cost hints.
            LoadAwareSelector load(kExperts, [](std::size_t, ExpertId e) {
                return static_cast<std::uint64_t>(1000 - e);
            });
            s = RankBalance(load, k, kExperts, kEp, kLayers, kEvents);
            t.AddRow({"load-aware (skewed)", std::to_string(k),
                      Table::Num(s.mean(), 1), Table::Num(s.max() / s.mean(), 3)});
            FirstKSelector naive(kExperts);
            s = RankBalance(naive, k, kExperts, kEp, kLayers, kEvents);
            t.AddRow({"first-K (naive)", std::to_string(k), Table::Num(s.mean(), 1),
                      Table::Num(s.max() / s.mean(), 3)});
        }
        std::printf("%s", t.ToString().c_str());
        std::printf("expected: sequential stays near 1.0 (balanced); skewed\n"
                    "load-aware and naive policies concentrate on one rank.\n");
    }

    PrintHeader("Ablation B", "fixed K vs adaptive K_snapshot (Section 5.3)");
    {
        Table t({"GPU", "F&B (s)", "K", "snapshot (s)", "O_save (s)",
                 "rotation period (events)"});
        for (const GpuSpec& gpu : {A800(), H100()}) {
            TrainingSetup setup;
            setup.model = Gpt350M16E();
            setup.parallel = Case2().parallel;
            setup.gpus_per_node = Case2().GpusPerNode();
            setup.gpu = gpu;
            setup.batch_per_gpu = 256 / setup.parallel.dp;
            const PerfModel model(setup);

            AdaptiveInputs in;
            in.t_fb = model.FbTime();
            in.t_iter = model.IterTime();
            in.snapshot_bandwidth = gpu.snapshot_bandwidth;
            in.persist_bandwidth = setup.persist_bandwidth;
            const Bytes per_param = setup.bytes.weight + setup.bytes.optim;
            in.expert_unit_bytes = static_cast<Bytes>(setup.model.FfnParams()) *
                                   per_param / model.topology().NumEpGroups();
            in.nonexpert_bytes_per_rank =
                static_cast<Bytes>(setup.model.NonExpertParams()) * per_param /
                setup.parallel.dp;
            in.num_moe_layers = setup.model.NumMoeLayers();
            in.num_experts = setup.model.num_experts;
            in.ep = setup.parallel.ep;
            const auto adaptive = ConfigureTwoLevelPec(in, 1);

            for (std::size_t k : {1UL, 4UL, adaptive.k_snapshot, 16UL}) {
                const auto timing = SimulateMethod(model, CkptMethod::kMocAsync, k);
                const bool is_adaptive = k == adaptive.k_snapshot;
                t.AddRow({gpu.name + (is_adaptive ? " (adaptive)" : ""),
                          Table::Num(timing.t_fb, 3), std::to_string(k),
                          Table::Num(timing.t_snapshot, 3),
                          Table::Num(timing.o_save, 4),
                          Table::Num(16.0 / static_cast<double>(k), 1)});
            }
        }
        std::printf("%s", t.ToString().c_str());
        std::printf("expected: the adaptive K is the largest with O_save = 0 —\n"
                    "lowest PLT rotation at zero stall.\n");
    }

    PrintHeader("Ablation C", "recovery read path: two-level vs storage-only");
    {
        LmConfig cfg = TinyGpt16E();
        Table t({"recovery", "from memory", "from storage", "est. restart (s, "
                 "excl. fixed)"});
        for (bool two_level : {true, false}) {
            MoeTransformerLm model(cfg);
            RankTopology topo({.dp = 16, .ep = 16, .tp = 1, .pp = 1}, 8);
            MocSystemConfig sys_cfg;
            sys_cfg.pec.k_snapshot = 16;
            sys_cfg.pec.k_persist = 1;
            sys_cfg.i_ckpt = 4;
            sys_cfg.two_level_recovery = two_level;
            ExtraState extra{0, 0, model.gating_rng().GetState()};
            MocCheckpointSystem system(sys_cfg, model, topo, cfg.ToModelSpec(),
                                       extra);
            extra.iteration = 4;
            system.Checkpoint(4, extra);
            const auto report = system.RecoverFromFault({0});
            RecoveryCostModel cost;
            cost.fixed_restart = 0.0;
            // Scale bandwidths down to the tiny model's byte scale so the
            // ratio is visible.
            cost.memory_read_bandwidth = 10e6;
            cost.storage_read_bandwidth = 1e6;
            const auto est = EstimateRecoveryCost(report.plan, cost);
            t.AddRow({two_level ? "two-level" : "storage-only",
                      FormatBytes(report.plan.bytes_from_memory),
                      FormatBytes(report.plan.bytes_from_storage),
                      Table::Num(est.total, 3)});
        }
        std::printf("%s", t.ToString().c_str());
        std::printf("expected: two-level recovery shifts most bytes to the fast\n"
                    "memory path, shrinking the estimated restart time.\n");
    }

    PrintHeader("Ablation D", "sharding strategy vs EP-group count");
    {
        const ModelSpec spec = Gpt350M16E();
        const ModelStateInventory inv(spec, StateBytes{});
        Table t({"dp", "ep", "groups", "baseline (GiB)", "+EN", "+EE+EN",
                 "+EE+AN (K=1)"});
        for (std::size_t ep : {16UL, 8UL, 4UL, 2UL}) {
            const std::size_t dp = 16;
            RankTopology topo({.dp = dp, .ep = ep, .tp = 1, .pp = 1}, 8);
            ShardingPlanner base(inv, topo, ShardingOptions{});
            ShardingPlanner en(inv, topo, ShardingOptions{false, true, false});
            ShardingPlanner ee_en(inv, topo, ShardingOptions{true, true, false});
            ShardingPlanner ee_an(inv, topo, ShardingOptions{true, false, true});
            SequentialSelector sel(spec.num_experts);
            std::vector<std::vector<ExpertId>> k1(spec.NumMoeLayers());
            for (std::size_t m = 0; m < k1.size(); ++m) {
                k1[m] = sel.Select(0, m, 1);
            }
            const double gib = static_cast<double>(kGiB);
            t.AddRow({std::to_string(dp), std::to_string(ep),
                      std::to_string(topo.NumEpGroups()),
                      Table::Num(static_cast<double>(
                                     base.PlanFull().BottleneckBytes()) / gib, 2),
                      Table::Num(static_cast<double>(
                                     en.PlanFull().BottleneckBytes()) / gib, 2),
                      Table::Num(static_cast<double>(
                                     ee_en.PlanFull().BottleneckBytes()) / gib, 2),
                      Table::Num(static_cast<double>(
                                     ee_an.Plan(k1, k1).BottleneckBytes()) / gib,
                                 2)});
        }
        std::printf("%s", t.ToString().c_str());
        std::printf("expected: EE's benefit grows with the EP-group count;\n"
                    "EN always helps; PEC + AN gives the smallest bottleneck.\n");
    }

    PrintHeader("Ablation E", "ZeRO stage vs checkpoint bottleneck (Section 4.4)");
    {
        const ModelSpec spec = Gpt350M16E();
        const ModelStateInventory inv(spec, StateBytes{});
        const RankTopology topo(Case3().parallel, Case3().GpusPerNode());
        Table t({"runtime partitioning", "baseline ckpt (GiB)",
                 "fully sharded ckpt (GiB)"});
        struct Row {
            const char* name;
            ZeroStage stage;
        };
        for (const Row row : {Row{"no ZeRO (replicated)", ZeroStage::kNone},
                              Row{"ZeRO-2 (paper)", ZeroStage::kZero2},
                              Row{"ZeRO-3 / FSDP", ZeroStage::kZero3}}) {
            ShardingOptions base;
            base.zero = row.stage;
            ShardingOptions sharded{true, true, false, row.stage};
            const double gib = static_cast<double>(kGiB);
            t.AddRow({row.name,
                      Table::Num(static_cast<double>(
                                     ShardingPlanner(inv, topo, base)
                                         .PlanFull()
                                         .BottleneckBytes()) / gib, 2),
                      Table::Num(static_cast<double>(
                                     ShardingPlanner(inv, topo, sharded)
                                         .PlanFull()
                                         .BottleneckBytes()) / gib, 2)});
        }
        std::printf("%s", t.ToString().c_str());
        std::printf("expected: without ZeRO the sharding strategies matter most\n"
                    "(they partition optimizer state too); ZeRO-3 is balanced\n"
                    "even before checkpoint-side sharding.\n");
    }
    WriteBenchMetrics("ablations");
    return 0;
}
