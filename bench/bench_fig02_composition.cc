/**
 * @file
 * Figure 2 reproduction: the composition of a full MoE checkpoint —
 * expert/non-expert parameters and optimizer states as fractions of the
 * total volume (paper: 12% / 2% / 74% / 12% for GPT-350M-16E), plus the
 * dense-model comparison that motivates PEC: the MoE checkpoint is several
 * times the size of its dense twin at comparable compute.
 */

#include <cstdio>

#include "bench_common.h"
#include "dist/presets.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

namespace {

void
Composition(const ModelSpec& spec) {
    const StateBytes bytes;  // B_w = 2, B_o = 12
    const double pe = static_cast<double>(spec.ExpertParams());
    const double pne = static_cast<double>(spec.NonExpertParams());
    const double bw = static_cast<double>(bytes.weight);
    const double bo = static_cast<double>(bytes.optim);
    const double total = (pe + pne) * (bw + bo);

    std::printf("\n-- %s (%.2fB params, %s full checkpoint) --\n",
                spec.name.c_str(), (pe + pne) / 1e9,
                FormatBytes(FullCheckpointSize(spec, bytes)).c_str());
    Table t({"component", "share (%)", "paper (%)"});
    t.AddRow({"expert optimizer states", Table::Num(100.0 * pe * bo / total, 1),
              "74"});
    t.AddRow({"expert parameters", Table::Num(100.0 * pe * bw / total, 1), "12"});
    t.AddRow({"non-expert optimizer states",
              Table::Num(100.0 * pne * bo / total, 1), "12"});
    t.AddRow({"non-expert parameters", Table::Num(100.0 * pne * bw / total, 1),
              "2"});
    std::printf("%s", t.ToString().c_str());
}

}  // namespace

int
main() {
    PrintHeader("Figure 2", "checkpoint composition (weights vs optimizer, "
                            "expert vs non-expert)");
    Composition(Gpt350M16E());
    Composition(Gpt125M8E());

    PrintHeader("Figure 2 (context)", "MoE vs dense twin at comparable compute");
    Table t({"model", "params", "full ckpt", "vs dense"});
    ModelSpec dense = Gpt350M16E();
    dense.num_experts = 0;  // the dense twin: same layers, plain FFNs
    dense.name = "GPT-350M (dense)";
    const StateBytes bytes;
    const Bytes dense_ckpt = FullCheckpointSize(dense, bytes);
    for (const ModelSpec& spec : {dense, Gpt350M16E()}) {
        const Bytes ckpt = FullCheckpointSize(spec, bytes);
        t.AddRow({spec.name,
                  Table::Num(static_cast<double>(spec.TotalParams()) / 1e9, 2) + "B",
                  FormatBytes(ckpt),
                  Table::Num(static_cast<double>(ckpt) /
                                 static_cast<double>(dense_ckpt),
                             2) + "x"});
    }
    // PEC brings the MoE checkpoint back toward dense size (Section 3).
    const Bytes pec1 = PecCheckpointSize(Gpt350M16E(), bytes, 1);
    t.AddRow({"GPT-350M-16E + PEC (K=1)", "-", FormatBytes(pec1),
              Table::Num(static_cast<double>(pec1) /
                             static_cast<double>(dense_ckpt),
                         2) + "x"});
    std::printf("%s", t.ToString().c_str());
    std::printf("expected shape: expert states dominate the MoE checkpoint\n"
                "(~86%%); PEC at K=1 returns it to roughly dense-model size.\n");
    WriteBenchMetrics("fig02_composition");
    return 0;
}
