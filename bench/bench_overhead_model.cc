/**
 * @file
 * Overhead-model harness (Eq. 3/4 and 10-16, Section 6.2.5): total
 * fault-tolerance overhead of Full vs MoC checkpointing across failure
 * rates, the two strategies of the paper's analysis (same interval vs
 * re-optimized interval), and the optimal-interval curve.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/overhead.h"
#include "dist/presets.h"
#include "sim/perf_model.h"
#include "sim/timeline.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

int
main() {
    PrintHeader("Eq. 10-16", "total fault-tolerance overhead: Full vs MoC");

    // Operating point: Case2 on A800, per the timeline simulator.
    TrainingSetup setup;
    setup.model = Gpt350M16E();
    setup.parallel = Case2().parallel;
    setup.gpus_per_node = Case2().GpusPerNode();
    setup.gpu = A800();
    setup.batch_per_gpu = 256 / setup.parallel.dp;
    const PerfModel perf(setup);
    const auto full = SimulateMethod(perf, CkptMethod::kBaseline, 4);
    const auto moc = SimulateMethod(perf, CkptMethod::kMocAsync, 4);

    std::printf("O_save(Full, blocking) = %.3f s; O_save(MoC-Async) = %.4f s; "
                "t_iter = %.3f s\n\n",
                full.o_save, moc.o_save, full.t_fb + full.t_update);

    Table t({"lambda (faults/iter)", "strategy", "I_ckpt", "O_ckpt total (h)",
             "MoC wins?"});
    for (double lambda : {1e-5, 1e-4, 1e-3}) {
        FaultToleranceModel model;
        model.i_total = 100000.0;
        model.lambda = lambda;
        model.t_iter = full.t_fb + full.t_update;
        model.o_restart = 300.0;

        const double i_full = OptimalInterval(model, full.o_save);
        const double o_full = TotalCheckpointOverhead(model, full.o_save, i_full);
        t.AddRow({Table::Num(lambda, 5), "Full @ its optimum",
                  Table::Num(i_full, 1), Table::Num(o_full / 3600.0, 2), "-"});

        // Strategy 1 (Eq. 16): same interval, smaller O_save.
        const double o_moc_same =
            TotalCheckpointOverhead(model, moc.o_save, i_full);
        t.AddRow({Table::Num(lambda, 5), "MoC @ Full's interval",
                  Table::Num(i_full, 1), Table::Num(o_moc_same / 3600.0, 2),
                  MocBeatsFull(model, moc.o_save, i_full, full.o_save, i_full)
                      ? "yes"
                      : "no"});

        // Strategy 2: re-optimize the interval (more frequent checkpoints).
        const double i_moc = OptimalInterval(model, moc.o_save);
        const double o_moc_opt = TotalCheckpointOverhead(model, moc.o_save, i_moc);
        t.AddRow({Table::Num(lambda, 5), "MoC @ its optimum",
                  Table::Num(i_moc, 1), Table::Num(o_moc_opt / 3600.0, 2),
                  MocBeatsFull(model, moc.o_save, i_moc, full.o_save, i_full)
                      ? "yes"
                      : "no"});
    }
    std::printf("%s", t.ToString().c_str());
    std::printf("expected shape: MoC wins under both strategies at every failure\n"
                "rate; its optimal interval is much shorter, shrinking O_lost.\n");
    WriteBenchMetrics("overhead_model");
    return 0;
}
