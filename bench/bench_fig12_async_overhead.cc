/**
 * @file
 * Figure 12 reproduction: duration of a training iteration under the three
 * checkpointing methods (blocking Baseline, Base-Async, MoC-Async) for the
 * three Table 2 cases, plus the headline O_save reduction and speedup.
 *
 * Expected shape: MoC-Async cuts per-checkpoint overhead by >98% vs the
 * blocking baseline and speeds the checkpointing iteration up by ~3-5x;
 * MoC-Async also halves I_ckpt_min vs Base-Async.
 */

#include <cstdio>

#include "bench_common.h"
#include "dist/presets.h"
#include "sim/gantt.h"
#include "sim/perf_model.h"
#include "sim/timeline.h"
#include "util/csv.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

int
main() {
    PrintHeader("Figure 12", "iteration duration per checkpointing method");

    // The paper's MoC configuration for these runs: K = 4 of 16 experts.
    constexpr std::size_t kMocK = 4;

    CsvWriter csv({"case", "method", "t_fb_s", "t_update_s", "t_snapshot_s",
                   "t_persist_s", "o_save_s", "iteration_s", "i_ckpt_min"});

    for (const auto& c : AllCases()) {
        TrainingSetup setup;
        setup.model = Gpt350M16E();
        setup.parallel = c.parallel;
        setup.gpus_per_node = c.GpusPerNode();
        setup.gpu = A800();
        setup.batch_per_gpu = 256 / setup.parallel.dp;  // global batch 256
        setup.seq_len = 2048;
        const PerfModel model(setup);

        const auto timings = SimulateAllMethods(model, kMocK);
        const auto& baseline = timings[0];
        const auto& base_async = timings[1];
        const auto& moc_async = timings[2];

        std::printf("\n-- %s (DP=%zu EP=%zu) --\n", c.name.c_str(), c.parallel.dp,
                    c.parallel.ep);
        Table t({"method", "F&B (s)", "update (s)", "O_save (s)", "iteration (s)",
                 "overlap (%)", "I_ckpt_min"});
        for (const auto& m : timings) {
            const double overlap_pct =
                m.t_snapshot > 0.0 ? 100.0 * m.overlap / m.t_snapshot : 0.0;
            t.AddRow({m.method, Table::Num(m.t_fb, 3), Table::Num(m.t_update, 3),
                      Table::Num(m.o_save, 4), Table::Num(m.iteration, 3),
                      Table::Num(overlap_pct, 1), Table::Num(m.i_ckpt_min, 1)});
            csv.AddRow({c.name, m.method, Table::Num(m.t_fb, 4),
                        Table::Num(m.t_update, 4), Table::Num(m.t_snapshot, 4),
                        Table::Num(m.t_persist, 4), Table::Num(m.o_save, 4),
                        Table::Num(m.iteration, 4), Table::Num(m.i_ckpt_min, 1)});
        }
        std::printf("%s", t.ToString().c_str());
        for (const auto& m : timings) {
            std::printf("%s", RenderIterationGantt(m, 56).c_str());
        }
        std::printf("MoC-Async vs Baseline: O_save reduced by %.1f%%, "
                    "checkpointing iteration %.2fx faster\n",
                    100.0 * (1.0 - moc_async.o_save / baseline.o_save),
                    baseline.iteration / moc_async.iteration);
        std::printf("MoC-Async vs Base-Async: iteration %.1f%% faster, "
                    "I_ckpt_min %.1f -> %.1f\n",
                    100.0 * (1.0 - moc_async.iteration / base_async.iteration),
                    base_async.i_ckpt_min, moc_async.i_ckpt_min);
    }
    if (csv.WriteFile("results/fig12_async_overhead.csv")) {
        std::printf("\nseries written to results/fig12_async_overhead.csv\n");
    }
    std::printf("\nexpected shape: >98%% O_save reduction and a 3-5x faster\n"
                "checkpointing iteration vs the blocking baseline in all cases.\n");
    WriteBenchMetrics("fig12_async_overhead");
    return 0;
}
