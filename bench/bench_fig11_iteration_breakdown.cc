/**
 * @file
 * Figure 11 reproduction: duration of each process in a training iteration
 * with checkpointing, per Table 2 case and per two-level K (both K_snapshot
 * and K_persist set to "K"), on the analytical A800 model.
 *
 * Expected shape: snapshot/persist durations shrink with K; the baseline
 * snapshot exceeds the F&B overlap window in Case1/Case3; fully sharded
 * full saving (K=16) already beats the baseline.
 */

#include <cstdio>

#include "bench_common.h"
#include "dist/presets.h"
#include "sim/perf_model.h"
#include "sim/timeline.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

int
main() {
    PrintHeader("Figure 11", "per-process durations in a checkpointing iteration");

    for (const auto& c : AllCases()) {
        TrainingSetup setup;
        setup.model = Gpt350M16E();
        setup.parallel = c.parallel;
        setup.gpus_per_node = c.GpusPerNode();
        setup.gpu = A800();
        setup.batch_per_gpu = 256 / setup.parallel.dp;  // global batch 256
        setup.seq_len = 2048;
        const PerfModel model(setup);

        std::printf("\n-- %s (DP=%zu EP=%zu) --\n", c.name.c_str(), c.parallel.dp,
                    c.parallel.ep);
        std::printf("F&B (overlap window) = %.3f s, update = %.3f s\n",
                    model.FbTime(), model.UpdateTime());

        Table t({"config", "snapshot (s)", "persist (s)", "fits F&B overlap?"});
        // Baseline: full save, unsharded.
        t.AddRow({"baseline (full, unsharded)",
                  Table::Num(model.SnapshotTime(16, false), 3),
                  Table::Num(model.PersistTime(16, false), 3),
                  model.SnapshotTime(16, false) <= model.FbTime() ? "yes" : "NO"});
        for (std::size_t k : {16UL, 8UL, 4UL, 2UL, 1UL}) {
            const Seconds snap = model.SnapshotTime(k, true);
            const Seconds pers = model.PersistTime(k, true);
            t.AddRow({"K=" + std::to_string(k) + " (fully sharded)",
                      Table::Num(snap, 3), Table::Num(pers, 3),
                      snap <= model.FbTime() ? "yes" : "NO"});
        }
        std::printf("%s", t.ToString().c_str());
    }
    std::printf("\nexpected shape: durations fall with K; even full fully-sharded\n"
                "saving beats the baseline; small K restores full overlap where\n"
                "the baseline snapshot exceeded the F&B window.\n");
    WriteBenchMetrics("fig11_iteration_breakdown");
    return 0;
}
