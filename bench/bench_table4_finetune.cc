/**
 * @file
 * Table 4 reproduction: fault tolerance during fine-tuning.
 *
 * The paper fine-tunes the pre-trained OLMoE on Alpaca with a fault halfway
 * through; we pre-train the 16-expert stand-in on corpus A, then fine-tune
 * on a shifted corpus B under four regimes:
 *   Base      — pre-trained model, no fine-tuning;
 *   FT-w.o.E  — fine-tune with all expert parameters frozen;
 *   FT-Full   — fine-tune with full-state checkpoints (fault at midpoint);
 *   FT-PEC    — fine-tune with PEC saving 1/8 of experts (fault at midpoint).
 *
 * Expected shape: fine-tuning beats Base; FT-PEC ~= FT-Full; FT-w.o.E close
 * behind full fine-tuning (experts tolerate missing updates).
 */

#include <cstdio>

#include "bench_common.h"
#include "faults/trainer.h"
#include "nn/eval.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

namespace {

constexpr std::size_t kPretrainIters = 512;
constexpr std::size_t kFinetuneIters = 512;

/** Pre-trains a fresh model on the base corpus (no faults). */
void
Pretrain(MoeTransformerLm& model, const LmBatchStream& train) {
    Adam adam(AdamConfig{.lr = 3e-3});
    const auto params = model.AllParameters();
    for (std::size_t i = 0; i < kPretrainIters; ++i) {
        model.TrainBackward(train.Get(i));
        adam.Step(params);
    }
}

LmTrainerConfig
FinetuneConfig(bool pec) {
    LmTrainerConfig cfg;
    cfg.moc.pec.k_snapshot = pec ? 2 : 16;  // 1/8 of 16 experts
    cfg.moc.pec.k_persist = pec ? 2 : 16;
    cfg.moc.i_ckpt = 16;
    cfg.parallel = {.dp = 16, .ep = 16, .tp = 1, .pp = 1};
    cfg.gpus_per_node = 8;
    cfg.total_iterations = kFinetuneIters;
    cfg.adam.lr = 1e-3;
    return cfg;
}

}  // namespace

int
main() {
    PrintHeader("Table 4", "fine-tuning with a midpoint fault");

    // Corpus A: pre-training distribution. Corpus B: shifted fine-tune
    // distribution (different chain, same vocabulary).
    ZipfMarkovCorpus corpus_a(PretrainCorpus());
    CorpusConfig ft_cfg = PretrainCorpus();
    ft_cfg.seed = 98765;  // a different Markov chain = the "task" shift
    ZipfMarkovCorpus corpus_b(ft_cfg);

    LmBatchStream pretrain_stream(corpus_a, 8, 16, 0);
    LmBatchStream ft_train(corpus_b, 8, 16, 0);
    LmBatchStream ft_valid(corpus_b, 8, 16, 1);

    // Probes over the fine-tune distribution (the downstream tasks).
    ProbeSuiteConfig probe_cfg;
    probe_cfg.items_per_task = 80;
    probe_cfg.context_len = 10;
    probe_cfg.continuation_len = 4;
    const auto suite = BuildProbeSuite(corpus_b, probe_cfg);

    std::vector<std::string> header{"Method"};
    for (const auto& task : suite) {
        header.push_back(task.name);
    }
    header.push_back("Avg");
    Table table(header);

    auto add_result = [&](const char* name, MoeTransformerLm& model) {
        const auto results = EvalProbeSuite(model, suite);
        std::vector<std::string> row{name};
        for (const auto& r : results) {
            row.push_back(Table::Num(r.accuracy * 100.0, 1));
        }
        table.AddRow(row);
        return results.back().accuracy;
    };

    // Base: pre-trained only.
    MoeTransformerLm base(TinyGpt16E());
    Pretrain(base, pretrain_stream);
    const double base_avg = add_result("Base", base);

    // FT-w.o.E: freeze experts, fine-tune, no fault needed (lossless anyway).
    MoeTransformerLm ft_woe(TinyGpt16E());
    Pretrain(ft_woe, pretrain_stream);
    for (auto& g : ft_woe.ParameterGroups()) {
        if (g.kind == ModuleKind::kExpert) {
            for (auto* p : g.params) {
                p->set_frozen(true);
            }
        }
    }
    {
        FaultInjector none(std::vector<FaultEvent>{});
        auto cfg = FinetuneConfig(false);
        RunFaultTolerantLmTraining(ft_woe, ft_train, ft_valid, cfg, none);
    }
    const double woe_avg = add_result("FT-w.o.E", ft_woe);

    // FT-Full: full-state checkpointing, fault at the midpoint.
    MoeTransformerLm ft_full(TinyGpt16E());
    Pretrain(ft_full, pretrain_stream);
    {
        auto injector = FaultInjector::At(kFinetuneIters / 2 + 2, 0);
        auto cfg = FinetuneConfig(false);
        RunFaultTolerantLmTraining(ft_full, ft_train, ft_valid, cfg, injector);
    }
    const double full_avg = add_result("FT-Full", ft_full);

    // FT-PEC: PEC checkpointing (1/8 of experts), fault at the midpoint.
    MoeTransformerLm ft_pec(TinyGpt16E());
    Pretrain(ft_pec, pretrain_stream);
    double pec_plt = 0.0;
    {
        auto injector = FaultInjector::At(kFinetuneIters / 2 + 2, 0);
        auto cfg = FinetuneConfig(true);
        const auto log =
            RunFaultTolerantLmTraining(ft_pec, ft_train, ft_valid, cfg, injector);
        pec_plt = log.plt;
    }
    const double pec_avg = add_result("FT-PEC", ft_pec);

    std::printf("%s", table.ToString().c_str());
    std::printf("averages: Base %.1f%%, FT-w.o.E %.1f%%, FT-Full %.1f%%, "
                "FT-PEC %.1f%% (PEC PLT %.2f%%)\n",
                base_avg * 100.0, woe_avg * 100.0, full_avg * 100.0,
                pec_avg * 100.0, pec_plt * 100.0);
    std::printf("expected shape: fine-tuned > Base on the shifted distribution;\n"
                "FT-PEC ~= FT-Full; FT-w.o.E close behind full fine-tuning.\n");
    WriteBenchMetrics("table4_finetune");
    return 0;
}
