/**
 * @file
 * Figure 15 reproduction:
 * (a) PLT under combinations of (K_snapshot, K_persist) with two-level
 *     recovery — larger K_snapshot markedly reduces PLT because surviving
 *     nodes recover fresher expert states from memory;
 * (b) the Dynamic-K strategy: under an escalating fault schedule, K_pec
 *     climbs and cumulative PLT stays bounded, whereas constant K=1 grows
 *     roughly linearly with the fault count.
 */

#include <cstdio>

#include "bench_common.h"
#include "faults/trainer.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

namespace {

constexpr std::size_t kIterations = 2048;

LmTrainerConfig
Case2Trainer() {
    LmTrainerConfig cfg;
    cfg.moc.i_ckpt = 16;
    cfg.parallel = {.dp = 16, .ep = 16, .tp = 1, .pp = 1};
    cfg.gpus_per_node = 8;
    cfg.total_iterations = kIterations;
    cfg.adam.lr = 3e-3;
    return cfg;
}

}  // namespace

int
main() {
    ZipfMarkovCorpus corpus(PretrainCorpus());
    LmBatchStream train(corpus, 4, 16, 0);
    LmBatchStream valid(corpus, 4, 16, 1);

    PrintHeader("Figure 15(a)",
                "PLT vs (K_snapshot, K_persist) with two-level recovery");
    Table a({"K_snapshot", "K_persist", "PLT (%)", "bytes from memory",
             "bytes from storage"});
    struct Combo {
        std::size_t snap;
        std::size_t persist;
    };
    for (const Combo combo : {Combo{1, 1}, Combo{2, 1}, Combo{4, 1}, Combo{8, 1},
                              Combo{16, 1}, Combo{4, 2}, Combo{4, 4}}) {
        MoeTransformerLm model(TinyGpt16E());
        auto cfg = Case2Trainer();
        cfg.moc.pec.k_snapshot = combo.snap;
        cfg.moc.pec.k_persist = combo.persist;
        cfg.moc.two_level_recovery = true;
        auto injector = FaultInjector::Every(512, kIterations, 0);
        const auto log = RunFaultTolerantLmTraining(model, train, valid, cfg, injector);
        Bytes mem = 0;
        Bytes sto = 0;
        for (const auto& r : log.recoveries) {
            mem += r.plan.bytes_from_memory;
            sto += r.plan.bytes_from_storage;
        }
        a.AddRow({std::to_string(combo.snap), std::to_string(combo.persist),
                  Table::Num(log.plt * 100.0, 3), FormatBytes(mem),
                  FormatBytes(sto)});
    }
    std::printf("%s", a.ToString().c_str());
    std::printf("expected shape: PLT falls as K_snapshot rises (fresher in-memory\n"
                "states on surviving nodes); K_persist matters less under 2L.\n");

    PrintHeader("Figure 15(b)", "Dynamic-K vs constant K under repeated faults");
    // Faults begin after one full persist rotation so the first fault's PLT
    // reflects steady-state staleness; repeated faults then accumulate.
    auto run = [&](bool dynamic_k, double threshold) {
        MoeTransformerLm model(TinyGpt16E());
        auto cfg = Case2Trainer();
        cfg.moc.pec.k_snapshot = 1;
        cfg.moc.pec.k_persist = 1;
        cfg.moc.two_level_recovery = false;
        cfg.moc.dynamic_k = dynamic_k;
        cfg.moc.plt_threshold = threshold;
        std::vector<FaultEvent> events;
        for (std::size_t it = 512; it < kIterations; it += 128) {
            events.push_back(FaultEvent{it, {0}});
        }
        FaultInjector injector(std::move(events));
        return RunFaultTolerantLmTraining(model, train, valid, cfg, injector);
    };
    // Our 2k-iteration runs compress the paper's multi-thousand-iteration
    // timescale, inflating per-fault PLT proportionally; the scaled budget
    // (~1.25) plays the role the 3.75% threshold plays at paper scale and
    // lets the K ladder unfold gradually. The paper-threshold run shows the
    // controller saturating immediately under the same compression.
    const auto fixed = run(false, kDefaultPltThreshold);
    const auto dyn_paper = run(true, kDefaultPltThreshold);
    const auto dyn_scaled = run(true, 1.25);

    Table b({"fault #", "constant K=1 (%)", "DynK@3.75% (%)", "K",
             "DynK@scaled (%)", "K'"});
    const std::size_t faults =
        std::min({fixed.recoveries.size(), dyn_paper.recoveries.size(),
                  dyn_scaled.recoveries.size()});
    for (std::size_t i = 0; i < faults; ++i) {
        b.AddRow({std::to_string(i + 1),
                  Table::Num(fixed.recoveries[i].plt * 100.0, 3),
                  Table::Num(dyn_paper.recoveries[i].plt * 100.0, 3),
                  std::to_string(dyn_paper.recoveries[i].k_after),
                  Table::Num(dyn_scaled.recoveries[i].plt * 100.0, 3),
                  std::to_string(dyn_scaled.recoveries[i].k_after)});
    }
    std::printf("%s", b.ToString().c_str());
    std::printf("final cumulative PLT: constant K=1 -> %.3f%%, Dynamic-K@3.75%% "
                "-> %.3f%%, Dynamic-K@scaled -> %.3f%%\n",
                fixed.plt * 100.0, dyn_paper.plt * 100.0, dyn_scaled.plt * 100.0);
    std::printf("expected shape: constant K accumulates PLT per fault; Dynamic-K\n"
                "raises K (1 -> 2 -> 4 ... with the scaled budget) and flattens\n"
                "the cumulative PLT.\n");
    WriteBenchMetrics("fig15_two_level_dynk");
    return 0;
}
