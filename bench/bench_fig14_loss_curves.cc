/**
 * @file
 * Figure 14 reproduction:
 * (a) pre-training loss curves of the 16-expert LM stand-in under periodic
 *     faults with five checkpointing variants: Baseline (full), W (PEC on
 *     weights only), O (PEC on optimizer only), WO (both), WO-2L (both +
 *     two-level recovery). K_snapshot = 4, K_persist = 1 as in the paper.
 * (b) test accuracy per epoch of the SwinV2-MoE stand-in classifier with
 *     faults at fixed epochs, under baseline / sequential-PEC / load-aware-
 *     PEC selection.
 *
 * Expected shape: all variants track the baseline loss curve closely; the
 * classifier's accuracy trajectories are nearly indistinguishable across
 * selection policies.
 */

#include <cstdio>
#include <map>
#include <vector>

#include "bench_common.h"
#include "faults/trainer.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

namespace {

constexpr std::size_t kIterations = 2048;
constexpr std::size_t kFaultPeriod = 640;

struct Variant {
    const char* name;
    bool pec_weights;
    bool pec_optim;
    bool two_level;
    bool full;  // baseline: K = N
};

LmTrainerConfig
TrainerFor(const Variant& v, std::size_t num_experts) {
    LmTrainerConfig cfg;
    cfg.moc.pec.k_snapshot = v.full ? num_experts : 4;
    cfg.moc.pec.k_persist = v.full ? num_experts : 1;
    cfg.moc.pec.pec_on_weights = v.pec_weights;
    cfg.moc.pec.pec_on_optimizer = v.pec_optim;
    cfg.moc.two_level_recovery = v.two_level;
    cfg.moc.i_ckpt = 8;
    cfg.parallel = {.dp = 16, .ep = 16, .tp = 1, .pp = 1};
    cfg.gpus_per_node = 8;
    cfg.total_iterations = kIterations;
    cfg.eval_every = 256;
    cfg.adam.lr = 3e-3;
    return cfg;
}

}  // namespace

int
main() {
    PrintHeader("Figure 14(a)", "pre-training loss curves under periodic faults");

    ZipfMarkovCorpus corpus(PretrainCorpus());
    LmBatchStream train(corpus, 4, 16, 0);
    LmBatchStream valid(corpus, 4, 16, 1);

    const Variant variants[] = {
        {"Baseline", false, false, false, true},
        {"W", true, false, false, false},
        {"O", false, true, false, false},
        {"WO", true, true, false, false},
        {"WO-2L", true, true, true, false},
    };

    Table curve({"method", "val@256", "val@512", "val@1024", "val@1536",
                 "val@2048", "final", "PLT (%)"});
    for (const auto& v : variants) {
        MoeTransformerLm model(TinyGpt16E());
        auto injector = FaultInjector::Every(kFaultPeriod, kIterations, 0);
        auto cfg = TrainerFor(v, model.config().num_experts);
        const auto log = RunFaultTolerantLmTraining(model, train, valid, cfg, injector);
        // Collapse the eval trace onto the 32-iteration grid (replayed evals
        // overwrite, as in a real logger).
        std::map<std::size_t, double> evals;
        for (const auto& [it, loss] : log.eval_losses) {
            evals[it] = loss;
        }
        std::vector<std::string> row{v.name};
        for (std::size_t it : {256UL, 512UL, 1024UL, 1536UL, 2048UL}) {
            row.push_back(evals.count(it) ? Table::Num(evals[it], 4) : "-");
        }
        row.push_back(Table::Num(log.final_eval_loss, 4));
        row.push_back(Table::Num(log.plt * 100.0, 2));
        curve.AddRow(row);
    }
    std::printf("%s", curve.ToString().c_str());
    std::printf("expected shape: W/O/WO/WO-2L loss curves track the baseline;\n"
                "WO-2L has the lowest PLT of the PEC variants.\n");

    PrintHeader("Figure 14(b)",
                "classifier test accuracy per epoch (faults at epochs 2, 4, 6)");
    const std::vector<std::size_t> fault_epochs{2, 4, 6};
    struct ClsVariant {
        const char* name;
        bool full;
        SelectionPolicy policy;
    };
    const ClsVariant cls_variants[] = {
        {"baseline (full)", true, SelectionPolicy::kSequential},
        {"PEC sequential", false, SelectionPolicy::kSequential},
        {"PEC load-aware", false, SelectionPolicy::kLoadAware},
    };
    Table acc({"method", "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "PLT (%)"});
    for (const auto& v : cls_variants) {
        MoeClassifier model(TinySwinMoe());
        ClassifierTrainerConfig cfg;
        cfg.moc.pec.k_snapshot = v.full ? 8 : 2;
        cfg.moc.pec.k_persist = v.full ? 8 : 2;
        cfg.moc.pec.policy = v.policy;
        cfg.moc.i_ckpt = 4;
        cfg.parallel = {.dp = 8, .ep = 8, .tp = 1, .pp = 1};
        cfg.gpus_per_node = 4;
        cfg.epochs = 8;
        cfg.steps_per_epoch = 32;
        cfg.batch = 16;
        cfg.test_examples = 128;
        cfg.adam.lr = 3e-3;
        ClassificationConfig data_cfg;
        data_cfg.num_classes = model.config().num_classes;
        data_cfg.vocab_size = model.config().vocab;
        data_cfg.seq_len = model.config().max_seq;
        data_cfg.noise = 0.15;
        const ClassificationDataset dataset(data_cfg);
        const auto log =
            RunFaultTolerantClassifierTraining(model, dataset, cfg, fault_epochs);
        std::vector<std::string> row{v.name};
        for (double a : log.epoch_accuracy) {
            row.push_back(Table::Num(a, 3));
        }
        while (row.size() < 9) {
            row.push_back("-");
        }
        row.push_back(Table::Num(log.plt * 100.0, 2));
        acc.AddRow(row);
    }
    std::printf("%s", acc.ToString().c_str());
    std::printf("expected shape: accuracy climbs across epochs for all methods;\n"
                "sequential vs load-aware selection are nearly identical.\n");
    WriteBenchMetrics("fig14_loss_curves");
    return 0;
}
