#ifndef MOC_BENCH_BENCH_COMMON_H_
#define MOC_BENCH_BENCH_COMMON_H_

/**
 * @file
 * Shared configurations for the figure/table reproduction harnesses: the
 * laptop-scale stand-ins for GPT-125M-8E / GPT-350M-16E / SwinV2-MoE and the
 * synthetic corpora they train on (see DESIGN.md, "Substitutions").
 */

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "data/corpus.h"
#include "nn/classifier.h"
#include "nn/model.h"
#include "obs/export.h"
#include "obs/journal.h"
#include "obs/metrics.h"

namespace moc::bench {

/** Tiny GPT-MoE with 8 experts: the GPT-125M-8E stand-in (Fig. 5). */
inline LmConfig
TinyGpt8E(std::uint64_t seed = 21) {
    LmConfig cfg;
    cfg.vocab = 64;
    cfg.max_seq = 24;  // headroom for probe contexts + 8-token continuations
    cfg.hidden = 24;
    cfg.num_heads = 2;
    cfg.head_dim = 12;
    cfg.num_layers = 4;
    cfg.ffn_mult = 2;
    cfg.num_experts = 8;
    cfg.top_k = 1;
    cfg.moe_every = 2;
    cfg.moe_offset = 1;
    cfg.seed = seed;
    return cfg;
}

/** Slightly larger 16-expert stand-in for GPT-350M-16E (Fig. 14a, Tables). */
inline LmConfig
TinyGpt16E(std::uint64_t seed = 22) {
    LmConfig cfg = TinyGpt8E(seed);
    cfg.num_experts = 16;
    cfg.hidden = 32;
    cfg.head_dim = 16;
    return cfg;
}

/** The SwinV2-MoE stand-in classifier (Fig. 14b). */
inline ClassifierConfig
TinySwinMoe(std::uint64_t seed = 23) {
    ClassifierConfig cfg;
    cfg.vocab = 32;
    cfg.max_seq = 12;
    cfg.num_classes = 8;
    cfg.hidden = 24;
    cfg.num_heads = 2;
    cfg.head_dim = 12;
    cfg.num_layers = 4;
    cfg.ffn_mult = 2;
    cfg.num_experts = 8;
    cfg.seed = seed;
    return cfg;
}

/** The pre-training corpus (Wikitext-2 / SlimPajama stand-in). */
inline CorpusConfig
PretrainCorpus() {
    CorpusConfig cfg;
    cfg.vocab_size = 64;
    cfg.branching = 4;
    cfg.structure_weight = 0.85;
    cfg.zipf_exponent = 1.1;
    cfg.seed = 1234;
    return cfg;
}

inline void
PrintHeader(const char* id, const char* title) {
    std::printf("\n================================================================\n");
    std::printf("%s — %s\n", id, title);
    std::printf("================================================================\n");
}

/** Ordered (name, value) headline scalars a harness wants gated in CI. */
using BenchScalars = std::vector<std::pair<std::string, double>>;

/**
 * Dumps the metrics registry next to the harness's CSV results as
 * `results/<bench_id>_metrics.json` and the event journal as
 * `results/<bench_id>_events.jsonl`, so every benchmark trajectory carries
 * the stall/overlap/byte counters and checkpoint/fault timeline its run
 * accumulated, ready for `moc_cli report`. Latency-shaped histograms also
 * get a p50/p95/p99 stdout summary (see obs::HistogramQuantile).
 *
 * Every harness additionally writes `results/BENCH_<bench_id>.json`
 * (schema `moc-bench/1`): run metadata plus the @p scalars it nominates as
 * headline numbers. Nominate *deterministic* quantities — bytes, counts,
 * ratios — not wall-clock timings; `tools/bench_gate.py` diffs them against
 * the checked-in baseline under `bench/baselines/` with a tolerance gate.
 */
inline void
WriteBenchMetrics(const char* bench_id, const BenchScalars& scalars = {}) {
    {
        std::string j = "{\n  \"schema\": \"moc-bench/1\",\n  \"bench\": \"";
        j += moc::obs::JsonEscape(bench_id);
        j += "\",\n  \"run_meta\": {\"harness\": \"bench_";
        j += moc::obs::JsonEscape(bench_id);
        j += "\", \"results_dir\": \"results\"},\n  \"scalars\": {";
        for (std::size_t i = 0; i < scalars.size(); ++i) {
            j += i == 0 ? "\n" : ",\n";
            j += "    \"" + moc::obs::JsonEscape(scalars[i].first) +
                 "\": " + moc::obs::JsonNumber(scalars[i].second);
        }
        j += scalars.empty() ? "}\n}\n" : "\n  }\n}\n";
        const std::string summary_path =
            std::string("results/BENCH_") + bench_id + ".json";
        if (moc::obs::WriteTextFile(summary_path, j, "bench summary")) {
            std::printf("bench summary written to %s\n", summary_path.c_str());
        }
    }
    const std::string path =
        std::string("results/") + bench_id + "_metrics.json";
    if (moc::obs::WriteMetricsJson(path)) {
        std::printf("metrics written to %s\n", path.c_str());
    }
    const std::string events_path =
        std::string("results/") + bench_id + "_events.jsonl";
    if (moc::obs::EventJournal::Instance().size() > 0 &&
        moc::obs::WriteEventsJsonl(events_path)) {
        std::printf("events written to %s\n", events_path.c_str());
    }
    const auto snap = moc::obs::MetricsRegistry::Instance().Snapshot();
    for (const char* name :
         {"train.iteration_seconds", "ckpt.duration_seconds",
          "recovery.duration_seconds"}) {
        const auto it = snap.histograms.find(name);
        if (it == snap.histograms.end() || it->second.count == 0) {
            continue;
        }
        std::printf("%s p50/p95/p99: %.6f / %.6f / %.6f s (n=%llu)\n", name,
                    moc::obs::HistogramP50(it->second),
                    moc::obs::HistogramP95(it->second),
                    moc::obs::HistogramP99(it->second),
                    static_cast<unsigned long long>(it->second.count));
    }
}

}  // namespace moc::bench

#endif  // MOC_BENCH_BENCH_COMMON_H_
