/**
 * @file
 * Figure 10 reproduction: checkpoint sizes for GPT-350M-16E.
 *
 * (a) total checkpoint size vs K_pec (Eq. 5/6).
 * (b-d) bottleneck-rank checkpoint workload under the Megatron-DeepSpeed
 * baseline vs fully sharded strategies ("EE" equal expert, "EN" equal
 * non-expert, "AN" adaptive non-expert) across the Table 2 cases.
 */

#include <cstdio>

#include "bench_common.h"
#include "core/selection.h"
#include "core/sharding.h"
#include "dist/presets.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

namespace {

std::vector<std::vector<ExpertId>>
Selection(const ModelSpec& spec, std::size_t k) {
    SequentialSelector sel(spec.num_experts);
    std::vector<std::vector<ExpertId>> out(spec.NumMoeLayers());
    for (std::size_t m = 0; m < out.size(); ++m) {
        out[m] = sel.Select(0, m, k);
    }
    return out;
}

}  // namespace

int
main() {
    const ModelSpec spec = Gpt350M16E();
    const StateBytes bytes;  // B_w = 2 (bf16), B_o = 12 (fp32 master + m + v)
    const ModelStateInventory inv(spec, bytes);

    PrintHeader("Figure 10(a)", "total checkpoint size vs K_pec (GPT-350M-16E)");
    const Bytes full = FullCheckpointSize(spec, bytes);
    Table a({"K_pec", "ckpt size", "relative to full"});
    for (std::size_t k : {16UL, 12UL, 8UL, 4UL, 2UL, 1UL}) {
        const Bytes c = PecCheckpointSize(spec, bytes, k);
        a.AddRow({std::to_string(k), FormatBytes(c),
                  Table::Num(static_cast<double>(c) / static_cast<double>(full), 3)});
    }
    std::printf("%s", a.ToString().c_str());
    std::printf("paper: 42.3%% of full at K_pec=1 under the authors' measured\n"
                "composition; with the Fig.2-calibrated byte policy (B_w=2,\n"
                "B_o=12, expert share 86%%) Eq. 6 yields the ~0.19 above —\n"
                "a stronger reduction of the same monotone shape.\n");

    PrintHeader("Figure 10(b-d)", "bottleneck-rank workload per sharding strategy");
    struct Strategy {
        const char* name;
        ShardingOptions options;
    };
    const Strategy strategies[] = {
        {"baseline", {}},
        {"EE", {true, false, false}},
        {"EE+EN", {true, true, false}},
        {"EE+AN", {true, false, true}},
    };
    for (const auto& c : AllCases()) {
        const RankTopology topo = c.Topology();
        std::printf("\n-- %s (DP=%zu EP=%zu, %zu EP groups) --\n", c.name.c_str(),
                    c.parallel.dp, c.parallel.ep, topo.NumEpGroups());
        Table t({"strategy", "save mode", "bottleneck bytes", "vs baseline-full"});
        ShardingPlanner base_planner(inv, topo, ShardingOptions{});
        const double base_full =
            static_cast<double>(base_planner.PlanFull().BottleneckBytes());
        for (const auto& s : strategies) {
            ShardingPlanner planner(inv, topo, s.options);
            const Bytes bn_full = planner.PlanFull().BottleneckBytes();
            const auto sel = Selection(spec, 1);
            const Bytes bn_pec = planner.Plan(sel, sel).BottleneckBytes();
            t.AddRow({s.name, "full (K=16)", FormatBytes(bn_full),
                      Table::Num(static_cast<double>(bn_full) / base_full, 3)});
            t.AddRow({s.name, "PEC (K=1)", FormatBytes(bn_pec),
                      Table::Num(static_cast<double>(bn_pec) / base_full, 3)});
        }
        std::printf("%s", t.ToString().c_str());
    }
    std::printf("\nexpected shape: fully sharded << baseline; EE only helps with\n"
                "multiple EP groups (Case3); AN <= EN under PEC (K=1).\n");
    WriteBenchMetrics("fig10_ckpt_size");
    return 0;
}
