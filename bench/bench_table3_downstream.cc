/**
 * @file
 * Table 3 reproduction: downstream probe-task accuracy of models pre-trained
 * under the five checkpointing variants (Baseline / W / O / WO / WO-2L) with
 * periodic faults, plus each variant's relative total checkpoint volume.
 *
 * The paper's eight downstream tasks (HellaSwag..MathQA) are substituted by
 * the eight synthetic probe tasks over the pre-training distribution; see
 * DESIGN.md. Expected shape: the lossy PEC variants stay within (or above)
 * the baseline's accuracy band — limited update loss acts like dropout.
 */

#include <cstdio>

#include "bench_common.h"
#include "faults/trainer.h"
#include "nn/eval.h"
#include "util/table.h"

using namespace moc;
using namespace moc::bench;

namespace {

constexpr std::size_t kIterations = 2048;

struct Variant {
    const char* name;
    bool pec_weights;
    bool pec_optim;
    bool two_level;
    bool full;
};

}  // namespace

int
main() {
    PrintHeader("Table 3", "downstream probe accuracy per checkpointing variant");

    ZipfMarkovCorpus corpus(PretrainCorpus());
    LmBatchStream train(corpus, 4, 16, 0);
    LmBatchStream valid(corpus, 4, 16, 1);
    ProbeSuiteConfig probe_cfg;
    probe_cfg.items_per_task = 100;
    probe_cfg.context_len = 10;
    probe_cfg.continuation_len = 4;
    const auto suite = BuildProbeSuite(corpus, probe_cfg);

    const Variant variants[] = {
        {"Baseline", false, false, false, true},
        {"W", true, false, false, false},
        {"O", false, true, false, false},
        {"WO", true, true, false, false},
        {"WO-2L", true, true, true, false},
    };

    std::vector<std::string> header{"Method", "Ckpt"};
    for (const auto& task : suite) {
        header.push_back(task.name);
    }
    header.push_back("Avg");
    Table table(header);

    double baseline_avg = 0.0;
    for (const auto& v : variants) {
        MoeTransformerLm model(TinyGpt16E());
        const std::size_t n = model.config().num_experts;
        LmTrainerConfig cfg;
        cfg.moc.pec.k_snapshot = v.full ? n : 4;
        cfg.moc.pec.k_persist = v.full ? n : 1;
        cfg.moc.pec.pec_on_weights = v.pec_weights;
        cfg.moc.pec.pec_on_optimizer = v.pec_optim;
        cfg.moc.two_level_recovery = v.two_level;
        cfg.moc.i_ckpt = 8;
        cfg.parallel = {.dp = 16, .ep = 16, .tp = 1, .pp = 1};
        cfg.gpus_per_node = 8;
        cfg.total_iterations = kIterations;
        cfg.adam.lr = 3e-3;
        auto injector = FaultInjector::Every(640, kIterations, 0);
        const auto log = RunFaultTolerantLmTraining(model, train, valid, cfg, injector);

        // Relative persisted checkpoint volume (analytic, per Eq. 5/6 with
        // PEC applied to the W/O parts this variant covers).
        const ModelSpec spec = model.config().ToModelSpec();
        const double pe = static_cast<double>(spec.ExpertParams());
        const double pne = static_cast<double>(spec.NonExpertParams());
        const double bw = 2.0;
        const double bo = 12.0;
        const double kfrac =
            v.full ? 1.0 : 1.0 / static_cast<double>(n);  // K_persist = 1
        const double expert_w = pe * bw * (v.pec_weights && !v.full ? kfrac : 1.0);
        const double expert_o = pe * bo * (v.pec_optim && !v.full ? kfrac : 1.0);
        const double rel =
            (pne * (bw + bo) + expert_w + expert_o) / ((pne + pe) * (bw + bo));

        const auto results = EvalProbeSuite(model, suite);
        std::vector<std::string> row{v.name, Table::Num(rel, 2)};
        for (const auto& r : results) {
            row.push_back(Table::Num(r.accuracy * 100.0, 1));
        }
        table.AddRow(row);
        if (std::string(v.name) == "Baseline") {
            baseline_avg = results.back().accuracy;
        } else {
            std::printf("%s avg deviation vs baseline: %+.2f%% (PLT %.2f%%)\n",
                        v.name, (results.back().accuracy - baseline_avg) * 100.0,
                        log.plt * 100.0);
        }
    }
    std::printf("%s", table.ToString().c_str());
    std::printf("expected shape: PEC variants within (or above) the baseline's\n"
                "average accuracy band; 'Ckpt' column mirrors Table 3's relative\n"
                "checkpoint volumes (W > O > WO).\n");
    WriteBenchMetrics("table3_downstream");
    return 0;
}
