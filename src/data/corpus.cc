#include "data/corpus.h"

#include <cmath>

#include "util/logging.h"

namespace moc {

ZipfMarkovCorpus::ZipfMarkovCorpus(const CorpusConfig& config)
    : config_(config), noise_(config.vocab_size, config.zipf_exponent) {
    MOC_CHECK_ARG(config.vocab_size >= 2, "vocab_size must be >= 2");
    MOC_CHECK_ARG(config.branching >= 1 && config.branching < config.vocab_size,
                  "branching must be in [1, vocab_size)");
    MOC_CHECK_ARG(config.structure_weight > 0.0 && config.structure_weight < 1.0,
                  "structure_weight must be in (0, 1)");
    Rng rng(config.seed);
    successors_.resize(config.vocab_size);
    successor_weights_.resize(config.vocab_size);
    for (std::size_t t = 0; t < config.vocab_size; ++t) {
        auto& succ = successors_[t];
        auto& w = successor_weights_[t];
        succ.reserve(config.branching);
        w.reserve(config.branching);
        double total = 0.0;
        for (std::size_t b = 0; b < config.branching; ++b) {
            succ.push_back(static_cast<TokenId>(rng.UniformInt(config.vocab_size)));
            // Geometric-ish decay among the structured successors.
            const double weight = std::pow(0.5, static_cast<double>(b));
            w.push_back(weight);
            total += weight;
        }
        for (auto& v : w) {
            v /= total;
        }
    }
}

TokenId
ZipfMarkovCorpus::SampleNext(TokenId current, Rng& rng) const {
    MOC_ASSERT(current >= 0 &&
                   static_cast<std::size_t>(current) < config_.vocab_size,
               "token out of range");
    if (rng.Uniform() < config_.structure_weight) {
        const auto& succ = successors_[static_cast<std::size_t>(current)];
        const auto& w = successor_weights_[static_cast<std::size_t>(current)];
        double u = rng.Uniform();
        for (std::size_t b = 0; b < succ.size(); ++b) {
            if (u < w[b]) {
                return succ[b];
            }
            u -= w[b];
        }
        return succ.back();
    }
    return static_cast<TokenId>(noise_.Sample(rng));
}

std::vector<TokenId>
ZipfMarkovCorpus::Generate(std::size_t length, std::uint64_t stream_seed) const {
    Rng rng(config_.seed ^ (stream_seed * 0x9E3779B97F4A7C15ULL + 0x2545F4914F6CDD1DULL));
    std::vector<TokenId> out;
    out.reserve(length);
    TokenId cur = static_cast<TokenId>(rng.UniformInt(config_.vocab_size));
    for (std::size_t i = 0; i < length; ++i) {
        out.push_back(cur);
        cur = SampleNext(cur, rng);
    }
    return out;
}

double
ZipfMarkovCorpus::ConditionalEntropy() const {
    // Mixture distribution per state: structure_weight on the successor set
    // plus (1 - w) on the Zipf noise. We compute the exact per-state entropy
    // and average under the (approximately Zipf) marginal; a uniform average
    // over states is a close, adequate bound for reporting.
    double total = 0.0;
    const double w = config_.structure_weight;
    // Zipf pmf.
    std::vector<double> zipf(config_.vocab_size);
    double norm = 0.0;
    for (std::size_t i = 0; i < config_.vocab_size; ++i) {
        zipf[i] = 1.0 / std::pow(static_cast<double>(i + 1), config_.zipf_exponent);
        norm += zipf[i];
    }
    for (auto& z : zipf) {
        z /= norm;
    }
    for (std::size_t t = 0; t < config_.vocab_size; ++t) {
        // Build the exact conditional for state t.
        std::vector<double> p = zipf;
        for (auto& v : p) {
            v *= (1.0 - w);
        }
        for (std::size_t b = 0; b < successors_[t].size(); ++b) {
            p[static_cast<std::size_t>(successors_[t][b])] += w * successor_weights_[t][b];
        }
        double h = 0.0;
        for (double v : p) {
            if (v > 0.0) {
                h -= v * std::log(v);
            }
        }
        total += h;
    }
    return total / static_cast<double>(config_.vocab_size);
}

LmBatchStream::LmBatchStream(const ZipfMarkovCorpus& corpus, std::size_t batch,
                             std::size_t seq, std::uint64_t stream_id)
    : corpus_(corpus), batch_(batch), seq_(seq), stream_id_(stream_id) {
    MOC_CHECK_ARG(batch >= 1 && seq >= 1, "batch and seq must be >= 1");
}

LmBatch
LmBatchStream::Get(std::size_t index) const {
    LmBatch out;
    out.batch = batch_;
    out.seq = seq_;
    out.inputs.reserve(batch_ * seq_);
    out.targets.reserve(batch_ * seq_);
    for (std::size_t b = 0; b < batch_; ++b) {
        const std::uint64_t row_seed =
            stream_id_ * 0x100000001B3ULL + index * 1315423911ULL + b;
        const auto tokens = corpus_.Generate(seq_ + 1, row_seed);
        for (std::size_t i = 0; i < seq_; ++i) {
            out.inputs.push_back(tokens[i]);
            out.targets.push_back(tokens[i + 1]);
        }
    }
    return out;
}

}  // namespace moc
