#include "data/probes.h"

#include <algorithm>

#include "util/logging.h"

namespace moc {

namespace {

/** Continues @p context along the corpus chain for @p len tokens. */
std::vector<TokenId>
ChainContinue(const ZipfMarkovCorpus& corpus, TokenId last, std::size_t len, Rng& rng) {
    std::vector<TokenId> out;
    out.reserve(len);
    TokenId cur = last;
    for (std::size_t i = 0; i < len; ++i) {
        cur = corpus.SampleNext(cur, rng);
        out.push_back(cur);
    }
    return out;
}

/** Random tokens from the whole vocabulary. */
std::vector<TokenId>
RandomTokens(std::size_t vocab, std::size_t len, Rng& rng) {
    std::vector<TokenId> out;
    out.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
        out.push_back(static_cast<TokenId>(rng.UniformInt(vocab)));
    }
    return out;
}

enum class DistractorKind {
    kRandom,        // uniform random continuations
    kShuffled,      // correct answer, permuted
    kOffChain,      // chain continuations started from a different token
    kNearMiss,      // correct answer with one token corrupted
};

ProbeTask
BuildTask(const ZipfMarkovCorpus& corpus, const ProbeSuiteConfig& cfg,
          const std::string& name, std::size_t continuation_len, DistractorKind kind,
          std::uint64_t salt) {
    ProbeTask task;
    task.name = name;
    Rng rng(cfg.seed ^ salt);
    task.items.reserve(cfg.items_per_task);
    for (std::size_t i = 0; i < cfg.items_per_task; ++i) {
        ProbeItem item;
        item.context = corpus.Generate(cfg.context_len, salt * 7919 + i);
        const TokenId last = item.context.back();
        auto correct = ChainContinue(corpus, last, continuation_len, rng);
        item.correct = static_cast<int>(rng.UniformInt(cfg.num_choices));
        for (std::size_t c = 0; c < cfg.num_choices; ++c) {
            if (static_cast<int>(c) == item.correct) {
                item.choices.push_back(correct);
                continue;
            }
            switch (kind) {
                case DistractorKind::kRandom:
                    item.choices.push_back(
                        RandomTokens(corpus.vocab_size(), continuation_len, rng));
                    break;
                case DistractorKind::kShuffled: {
                    auto shuffled = correct;
                    // Try to find a differing permutation; a constant
                    // continuation (all tokens equal) has none, so corrupt
                    // one position instead of spinning.
                    for (int attempt = 0; attempt < 8 && shuffled == correct;
                         ++attempt) {
                        rng.Shuffle(shuffled);
                    }
                    if (shuffled == correct) {
                        const std::size_t pos = rng.UniformInt(continuation_len);
                        shuffled[pos] = static_cast<TokenId>(
                            rng.UniformInt(corpus.vocab_size()));
                    }
                    item.choices.push_back(std::move(shuffled));
                    break;
                }
                case DistractorKind::kOffChain: {
                    const auto wrong_start =
                        static_cast<TokenId>(rng.UniformInt(corpus.vocab_size()));
                    item.choices.push_back(
                        ChainContinue(corpus, wrong_start, continuation_len, rng));
                    break;
                }
                case DistractorKind::kNearMiss: {
                    auto corrupted = correct;
                    const std::size_t pos = rng.UniformInt(continuation_len);
                    corrupted[pos] =
                        static_cast<TokenId>(rng.UniformInt(corpus.vocab_size()));
                    item.choices.push_back(std::move(corrupted));
                    break;
                }
            }
        }
        task.items.push_back(std::move(item));
    }
    return task;
}

}  // namespace

std::vector<ProbeTask>
BuildProbeSuite(const ZipfMarkovCorpus& corpus, const ProbeSuiteConfig& cfg) {
    MOC_CHECK_ARG(cfg.num_choices >= 2, "probes need at least 2 choices");
    MOC_CHECK_ARG(cfg.continuation_len >= 1, "continuation_len must be >= 1");
    std::vector<ProbeTask> suite;
    suite.push_back(BuildTask(corpus, cfg, "Chain2", 2, DistractorKind::kRandom, 0x11));
    suite.push_back(BuildTask(corpus, cfg, "Chain4", 4, DistractorKind::kRandom, 0x22));
    suite.push_back(BuildTask(corpus, cfg, "Chain8", 8, DistractorKind::kRandom, 0x33));
    suite.push_back(
        BuildTask(corpus, cfg, "Shuffle4", 4, DistractorKind::kShuffled, 0x44));
    suite.push_back(
        BuildTask(corpus, cfg, "OffChain4", 4, DistractorKind::kOffChain, 0x55));
    suite.push_back(
        BuildTask(corpus, cfg, "NearMiss4", 4, DistractorKind::kNearMiss, 0x66));
    suite.push_back(
        BuildTask(corpus, cfg, "OffChain8", 8, DistractorKind::kOffChain, 0x77));
    suite.push_back(
        BuildTask(corpus, cfg, "NearMiss8", 8, DistractorKind::kNearMiss, 0x88));
    return suite;
}

}  // namespace moc
