#ifndef MOC_DATA_PROBES_H_
#define MOC_DATA_PROBES_H_

/**
 * @file
 * Downstream probe tasks, the stand-in for the paper's downstream evaluation
 * suite (HellaSwag, PIQA, WinoGrande, ... — Tables 3 and 4).
 *
 * Each probe is a multiple-choice task over the pre-training distribution: a
 * context is generated from the corpus chain, the correct continuation
 * follows the chain, and distractors break it in a task-specific way. A
 * language model is scored by the likelihood it assigns to each choice;
 * accuracy is the fraction of items where the correct choice scores highest.
 * Eight probes of varying difficulty mirror the paper's eight tasks.
 */

#include <string>
#include <vector>

#include "data/corpus.h"

namespace moc {

/** One multiple-choice item. */
struct ProbeItem {
    std::vector<TokenId> context;
    /** Candidate continuations (each the same length). */
    std::vector<std::vector<TokenId>> choices;
    int correct = 0;
};

/** A named set of items. */
struct ProbeTask {
    std::string name;
    std::vector<ProbeItem> items;
};

/** Configuration for probe-suite generation. */
struct ProbeSuiteConfig {
    std::size_t items_per_task = 200;
    std::size_t context_len = 12;
    std::size_t continuation_len = 4;
    std::size_t num_choices = 4;
    std::uint64_t seed = 4242;
};

/**
 * Builds the eight-task probe suite over @p corpus.
 *
 * Task roster (difficulty varies via continuation length and distractor
 * construction): chain-2, chain-4, chain-8 (continuation lengths), shuffled
 * (distractors are permuted correct answers), offchain (distractors are
 * plausible-marginal but chain-breaking), repeat (context suffix echo),
 * rare-token, and mixed.
 */
std::vector<ProbeTask> BuildProbeSuite(const ZipfMarkovCorpus& corpus,
                                       const ProbeSuiteConfig& config);

}  // namespace moc

#endif  // MOC_DATA_PROBES_H_
