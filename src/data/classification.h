#ifndef MOC_DATA_CLASSIFICATION_H_
#define MOC_DATA_CLASSIFICATION_H_

/**
 * @file
 * Synthetic sequence-classification dataset, the stand-in for the paper's
 * SwinV2-MoE / ImageNet-1K experiment (Fig. 14b).
 *
 * Each class owns its own Markov transition signature; a sample is a token
 * sequence drawn from its class chain plus label noise. An encoder-style MoE
 * classifier learns to recognize the class-specific transition statistics —
 * the same "accuracy rises over epochs, dips after lossy recovery" dynamics
 * as image classification, at laptop scale.
 */

#include <cstdint>
#include <vector>

#include "data/corpus.h"
#include "util/rng.h"

namespace moc {

/** Configuration for the classification dataset. */
struct ClassificationConfig {
    std::size_t num_classes = 8;
    std::size_t vocab_size = 64;
    std::size_t seq_len = 16;
    /** Fraction of tokens replaced by uniform noise (task difficulty). */
    double noise = 0.25;
    std::uint64_t seed = 99;
};

/** One labelled example. */
struct ClassifiedSequence {
    std::vector<TokenId> tokens;
    int label = 0;
};

/**
 * Deterministic generator of class-conditional Markov sequences.
 */
class ClassificationDataset {
  public:
    explicit ClassificationDataset(const ClassificationConfig& config);

    /** Generates example @p index of split @p split (0=train, 1=test). */
    ClassifiedSequence Get(int split, std::size_t index) const;

    /** Generates a contiguous batch of examples. */
    std::vector<ClassifiedSequence> GetBatch(int split, std::size_t start,
                                             std::size_t count) const;

    std::size_t num_classes() const { return config_.num_classes; }
    std::size_t vocab_size() const { return config_.vocab_size; }
    std::size_t seq_len() const { return config_.seq_len; }

  private:
    ClassificationConfig config_;
    /** Per-class transition tables: chains_[c][token] = successor list. */
    std::vector<std::vector<std::vector<TokenId>>> chains_;
};

}  // namespace moc

#endif  // MOC_DATA_CLASSIFICATION_H_
