#ifndef MOC_DATA_CORPUS_H_
#define MOC_DATA_CORPUS_H_

/**
 * @file
 * Synthetic language-modeling corpora.
 *
 * The paper pre-trains on Wikitext-2 / SlimPajama; we substitute a
 * deterministic Zipf–Markov token stream: a random-but-fixed first-order
 * Markov chain whose stationary distribution is Zipfian. The chain has
 * genuine structure (each token strongly predicts a small successor set), so
 * a language model's validation loss falls well below the unigram entropy as
 * it learns — exactly the property the PLT/accuracy experiments need.
 */

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace moc {

/** Integer token ids. */
using TokenId = std::int32_t;

/** Configuration for the synthetic corpus generator. */
struct CorpusConfig {
    std::size_t vocab_size = 256;
    /** Number of high-probability successors per token. */
    std::size_t branching = 4;
    /** Probability mass placed on the structured successors (rest is Zipf noise). */
    double structure_weight = 0.85;
    /** Zipf exponent of the noise/marginal distribution. */
    double zipf_exponent = 1.1;
    std::uint64_t seed = 1234;
};

/**
 * A deterministic synthetic token stream with learnable bigram structure.
 */
class ZipfMarkovCorpus {
  public:
    explicit ZipfMarkovCorpus(const CorpusConfig& config);

    /** Generates @p length tokens starting from a seed-derived state. */
    std::vector<TokenId> Generate(std::size_t length, std::uint64_t stream_seed) const;

    std::size_t vocab_size() const { return config_.vocab_size; }
    const CorpusConfig& config() const { return config_; }

    /**
     * The entropy (nats/token) of the conditional next-token distribution,
     * i.e. the loss floor a perfect model would reach.
     */
    double ConditionalEntropy() const;

    /** Samples the next token given @p current using @p rng. */
    TokenId SampleNext(TokenId current, Rng& rng) const;

  private:
    CorpusConfig config_;
    /** successors_[t] = the `branching` high-probability successors of t. */
    std::vector<std::vector<TokenId>> successors_;
    /** Per-successor weights (normalized within the structured mass). */
    std::vector<std::vector<double>> successor_weights_;
    ZipfTable noise_;
};

/** A batch of next-token-prediction training data. */
struct LmBatch {
    /** [batch, seq] input token ids, flattened row-major. */
    std::vector<TokenId> inputs;
    /** [batch, seq] target ids (inputs shifted by one). */
    std::vector<TokenId> targets;
    std::size_t batch = 0;
    std::size_t seq = 0;
};

/**
 * Deterministic batch stream over a ZipfMarkovCorpus. Batch `i` is a pure
 * function of (corpus seed, stream id, i): replaying training after a
 * recovery re-reads exactly the same data, as a real dataloader with a
 * restored RNG state would.
 */
class LmBatchStream {
  public:
    LmBatchStream(const ZipfMarkovCorpus& corpus, std::size_t batch, std::size_t seq,
                  std::uint64_t stream_id);

    /** Returns batch @p index (random access, stateless). */
    LmBatch Get(std::size_t index) const;

    std::size_t batch() const { return batch_; }
    std::size_t seq() const { return seq_; }

  private:
    const ZipfMarkovCorpus& corpus_;
    std::size_t batch_;
    std::size_t seq_;
    std::uint64_t stream_id_;
};

}  // namespace moc

#endif  // MOC_DATA_CORPUS_H_
