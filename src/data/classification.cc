#include "data/classification.h"

#include "util/logging.h"

namespace moc {

ClassificationDataset::ClassificationDataset(const ClassificationConfig& config)
    : config_(config) {
    MOC_CHECK_ARG(config.num_classes >= 2, "need at least 2 classes");
    MOC_CHECK_ARG(config.vocab_size >= 4, "need at least 4 tokens");
    MOC_CHECK_ARG(config.seq_len >= 2, "need seq_len >= 2");
    MOC_CHECK_ARG(config.noise >= 0.0 && config.noise < 1.0, "noise must be in [0, 1)");
    Rng rng(config.seed);
    chains_.resize(config.num_classes);
    constexpr std::size_t kBranch = 2;
    for (auto& chain : chains_) {
        chain.resize(config.vocab_size);
        for (auto& succ : chain) {
            succ.reserve(kBranch);
            for (std::size_t b = 0; b < kBranch; ++b) {
                succ.push_back(static_cast<TokenId>(rng.UniformInt(config.vocab_size)));
            }
        }
    }
}

ClassifiedSequence
ClassificationDataset::Get(int split, std::size_t index) const {
    const std::uint64_t seed = config_.seed * 0x100000001B3ULL +
                               static_cast<std::uint64_t>(split) * 0x9E3779B9ULL +
                               index * 2654435761ULL + 17;
    Rng rng(seed);
    ClassifiedSequence out;
    out.label = static_cast<int>(rng.UniformInt(config_.num_classes));
    const auto& chain = chains_[static_cast<std::size_t>(out.label)];
    TokenId cur = static_cast<TokenId>(rng.UniformInt(config_.vocab_size));
    out.tokens.reserve(config_.seq_len);
    for (std::size_t i = 0; i < config_.seq_len; ++i) {
        if (rng.Uniform() < config_.noise) {
            cur = static_cast<TokenId>(rng.UniformInt(config_.vocab_size));
        }
        out.tokens.push_back(cur);
        const auto& succ = chain[static_cast<std::size_t>(cur)];
        cur = succ[rng.UniformInt(succ.size())];
    }
    return out;
}

std::vector<ClassifiedSequence>
ClassificationDataset::GetBatch(int split, std::size_t start, std::size_t count) const {
    std::vector<ClassifiedSequence> out;
    out.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        out.push_back(Get(split, start + i));
    }
    return out;
}

}  // namespace moc
