#include "nn/moe_layer.h"

#include <algorithm>
#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace moc {

MoeLayer::MoeLayer(std::string name, const MoeLayerConfig& config, Rng& rng,
                   float init_std)
    : config_(config), gate_(name + ".gate", config.hidden, config.num_experts, rng,
                             init_std) {
    MOC_CHECK_ARG(config.num_experts >= 1, "MoeLayer needs >= 1 expert");
    MOC_CHECK_ARG(config.top_k >= 1 && config.top_k <= config.num_experts,
                  "top_k must be in [1, num_experts]");
    MOC_CHECK_ARG(config.capacity_factor > 0.0, "capacity_factor must be > 0");
    experts_.reserve(config.num_experts);
    for (std::size_t e = 0; e < config.num_experts; ++e) {
        experts_.emplace_back(name + ".expert" + std::to_string(e), config.hidden,
                              config.inter, rng, init_std);
    }
}

Tensor
MoeLayer::Forward(const Tensor& x, bool train, Rng& rng) {
    MOC_CHECK_ARG(x.rank() == 2 && x.dim(1) == config_.hidden,
                  "MoeLayer: input shape mismatch");
    const std::size_t T = x.dim(0);
    const std::size_t N = config_.num_experts;
    tokens_ = T;

    Tensor logits = gate_.Forward(x);
    if (train && config_.noise_std > 0.0F) {
        float* pl = logits.data();
        for (std::size_t i = 0; i < logits.size(); ++i) {
            pl[i] += static_cast<float>(rng.Gaussian(0.0, config_.noise_std));
        }
    }
    probs_ = RowSoftmax(logits);

    // Top-k selection per token.
    selected_.assign(T, {});
    std::vector<std::vector<std::size_t>> pending_tokens(N);
    std::vector<std::vector<float>> pending_weights(N);
    const float* pp = probs_.data();
    for (std::size_t t = 0; t < T; ++t) {
        // Partial selection of the top_k experts by probability.
        std::vector<std::size_t> order(N);
        for (std::size_t e = 0; e < N; ++e) {
            order[e] = e;
        }
        std::partial_sort(order.begin(), order.begin() + static_cast<long>(config_.top_k),
                          order.end(), [&](std::size_t a, std::size_t b) {
                              return pp[t * N + a] > pp[t * N + b];
                          });
        order.resize(config_.top_k);
        selected_[t] = order;
        double denom = 0.0;
        for (auto e : order) {
            denom += pp[t * N + e];
        }
        for (auto e : order) {
            const float p = pp[t * N + e];
            const float g = config_.top_k == 1
                                ? p
                                : static_cast<float>(p / std::max(denom, 1e-12));
            pending_tokens[e].push_back(t);
            pending_weights[e].push_back(g);
        }
    }

    // Capacity enforcement: first-come-first-served per expert.
    const auto capacity = static_cast<std::size_t>(std::ceil(
        config_.capacity_factor * static_cast<double>(T * config_.top_k) /
        static_cast<double>(N)));
    stats_ = RoutingStats{};
    stats_.tokens_per_expert.assign(N, 0);
    stats_.assignments = T * config_.top_k;
    kept_.clear();
    expert_tokens_.assign(N, {});
    expert_outputs_.assign(N, Tensor());

    Tensor out({T, config_.hidden});
    for (std::size_t e = 0; e < N; ++e) {
        const std::size_t kept_count = std::min(pending_tokens[e].size(), capacity);
        stats_.dropped += pending_tokens[e].size() - kept_count;
        stats_.tokens_per_expert[e] = kept_count;
        if (kept_count == 0) {
            continue;
        }
        Tensor gathered({kept_count, config_.hidden});
        for (std::size_t r = 0; r < kept_count; ++r) {
            const std::size_t t = pending_tokens[e][r];
            expert_tokens_[e].push_back(t);
            kept_.push_back({t, e, r, pending_weights[e][r]});
            std::copy_n(x.data() + t * config_.hidden, config_.hidden,
                        gathered.data() + r * config_.hidden);
        }
        Tensor y = experts_[e].Forward(gathered);
        // Scatter-combine weighted outputs.
        for (std::size_t r = 0; r < kept_count; ++r) {
            const std::size_t t = pending_tokens[e][r];
            const float g = pending_weights[e][r];
            float* orow = out.data() + t * config_.hidden;
            const float* yrow = y.data() + r * config_.hidden;
            for (std::size_t d = 0; d < config_.hidden; ++d) {
                orow[d] += g * yrow[d];
            }
        }
        expert_outputs_[e] = std::move(y);
    }

    // Switch-style auxiliary load-balancing loss: N * sum_e f_e * mean_prob_e,
    // with f_e the fraction of assignments routed to e (pre-capacity).
    assign_frac_.assign(N, 0.0);
    for (std::size_t e = 0; e < N; ++e) {
        assign_frac_[e] = static_cast<double>(pending_tokens[e].size()) /
                          static_cast<double>(std::max<std::size_t>(1, T * config_.top_k));
    }
    double aux = 0.0;
    for (std::size_t e = 0; e < N; ++e) {
        double mean_p = 0.0;
        for (std::size_t t = 0; t < T; ++t) {
            mean_p += pp[t * N + e];
        }
        mean_p /= static_cast<double>(std::max<std::size_t>(1, T));
        aux += assign_frac_[e] * mean_p;
    }
    aux_loss_ = static_cast<double>(N) * aux;
    return out;
}

Tensor
MoeLayer::Backward(const Tensor& dy) {
    MOC_ASSERT(tokens_ > 0, "MoeLayer::Backward without Forward");
    const std::size_t T = tokens_;
    const std::size_t N = config_.num_experts;
    MOC_CHECK_ARG(dy.rank() == 2 && dy.dim(0) == T && dy.dim(1) == config_.hidden,
                  "MoeLayer: gradient shape mismatch");

    Tensor dx({T, config_.hidden});
    Tensor dprobs({T, N});
    // dg for each kept assignment, indexed by (token, expert).
    std::vector<std::vector<float>> dgate(T);
    for (std::size_t t = 0; t < T; ++t) {
        dgate[t].assign(selected_[t].size(), 0.0F);
    }

    // Expert backward: dY_e[row] = g * dy[token]; dg = dy[token] . y_e[row].
    for (std::size_t e = 0; e < N; ++e) {
        const auto& toks = expert_tokens_[e];
        if (toks.empty()) {
            continue;
        }
        Tensor dy_e({toks.size(), config_.hidden});
        const Tensor& y_e = expert_outputs_[e];
        for (std::size_t r = 0; r < toks.size(); ++r) {
            const std::size_t t = toks[r];
            // Find the gate weight for (t, e).
            float g = 0.0F;
            std::size_t sel_idx = 0;
            for (std::size_t si = 0; si < selected_[t].size(); ++si) {
                if (selected_[t][si] == e) {
                    sel_idx = si;
                    break;
                }
            }
            // g is recovered from probs (top-1) or renormalized probs.
            const float* pp = probs_.data();
            if (config_.top_k == 1) {
                g = pp[t * N + e];
            } else {
                double denom = 0.0;
                for (auto se : selected_[t]) {
                    denom += pp[t * N + se];
                }
                g = static_cast<float>(pp[t * N + e] / std::max(denom, 1e-12));
            }
            double dg = 0.0;
            const float* dyrow = dy.data() + t * config_.hidden;
            const float* yrow = y_e.data() + r * config_.hidden;
            float* dyerow = dy_e.data() + r * config_.hidden;
            for (std::size_t d = 0; d < config_.hidden; ++d) {
                dg += static_cast<double>(dyrow[d]) * yrow[d];
                dyerow[d] = g * dyrow[d];
            }
            dgate[t][sel_idx] += static_cast<float>(dg);
        }
        Tensor dx_e = experts_[e].Backward(dy_e);
        for (std::size_t r = 0; r < toks.size(); ++r) {
            const std::size_t t = toks[r];
            float* dxrow = dx.data() + t * config_.hidden;
            const float* srow = dx_e.data() + r * config_.hidden;
            for (std::size_t d = 0; d < config_.hidden; ++d) {
                dxrow[d] += srow[d];
            }
        }
    }

    // Gate-weight gradients back to probabilities.
    const float* pp = probs_.data();
    float* pdp = dprobs.data();
    for (std::size_t t = 0; t < T; ++t) {
        const auto& sel = selected_[t];
        if (config_.top_k == 1) {
            pdp[t * N + sel[0]] += dgate[t][0];
            continue;
        }
        double denom = 0.0;
        for (auto e : sel) {
            denom += pp[t * N + e];
        }
        denom = std::max(denom, 1e-12);
        // g_i = p_i / S  =>  dp_i = sum_l dg_l (delta_il S - p_l) / S^2.
        for (std::size_t i = 0; i < sel.size(); ++i) {
            double acc = 0.0;
            for (std::size_t l = 0; l < sel.size(); ++l) {
                const double delta = (i == l) ? denom : 0.0;
                acc += static_cast<double>(dgate[t][l]) *
                       (delta - pp[t * N + sel[l]]) / (denom * denom);
            }
            pdp[t * N + sel[i]] += static_cast<float>(acc);
        }
    }

    // Auxiliary-loss gradient: d aux / d p[t, e] = coeff * N * f_e / T.
    if (config_.aux_loss_coeff > 0.0F) {
        const float scale = config_.aux_loss_coeff * static_cast<float>(N) /
                            static_cast<float>(std::max<std::size_t>(1, T));
        for (std::size_t t = 0; t < T; ++t) {
            for (std::size_t e = 0; e < N; ++e) {
                pdp[t * N + e] += scale * static_cast<float>(assign_frac_[e]);
            }
        }
    }

    Tensor dlogits = RowSoftmaxBackward(probs_, dprobs);
    Axpy(dx, gate_.Backward(dlogits));
    return dx;
}

void
MoeLayer::CollectGateParams(std::vector<Parameter*>& out) {
    gate_.CollectParams(out);
}

void
MoeLayer::CollectExpertParams(std::size_t e, std::vector<Parameter*>& out) {
    MOC_CHECK_ARG(e < experts_.size(), "expert index out of range");
    experts_[e].CollectParams(out);
}

}  // namespace moc
