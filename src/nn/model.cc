#include "nn/model.h"

#include <cmath>
#include <sstream>

#include "tensor/ops.h"
#include "util/logging.h"

namespace moc {

ModelSpec
LmConfig::ToModelSpec() const {
    ModelSpec spec;
    spec.name = "lm";
    spec.num_layers = num_layers;
    spec.hidden = hidden;
    spec.num_heads = num_heads;
    spec.head_dim = head_dim;
    spec.ffn_mult = ffn_mult;
    spec.vocab = vocab;
    spec.max_seq = max_seq;
    spec.num_experts = num_experts;
    spec.moe_every = moe_every;
    spec.moe_offset = moe_offset;
    spec.top_k = top_k;
    return spec;
}

MoeTransformerLm::MoeTransformerLm(const LmConfig& config)
    : config_(config),
      init_rng_(config.seed),
      gating_rng_(config.seed ^ 0xA5A5A5A5ULL),
      tok_emb_("tok_emb", config.vocab, config.hidden, init_rng_, config.init_std),
      pos_emb_("pos_emb",
               Tensor::Randn({config.max_seq, config.hidden}, init_rng_,
                             config.init_std)),
      final_ln_("final_ln", config.hidden) {
    const ModelSpec spec = config.ToModelSpec();
    blocks_.reserve(config.num_layers);
    for (std::size_t l = 0; l < config.num_layers; ++l) {
        BlockConfig bc;
        bc.hidden = config.hidden;
        bc.num_heads = config.num_heads;
        bc.head_dim = config.head_dim;
        bc.ffn_mult = config.ffn_mult;
        bc.causal = true;
        bc.is_moe = spec.IsMoeLayer(l);
        if (bc.is_moe) {
            bc.moe.hidden = config.hidden;
            bc.moe.inter = config.ffn_mult * config.hidden;
            bc.moe.num_experts = config.num_experts;
            bc.moe.top_k = config.top_k;
            bc.moe.capacity_factor = config.capacity_factor;
            bc.moe.noise_std = config.gate_noise_std;
            bc.moe.aux_loss_coeff = config.aux_loss_coeff;
        }
        std::ostringstream name;
        name << "block" << l;
        blocks_.push_back(
            std::make_unique<TransformerBlock>(name.str(), bc, init_rng_,
                                               config.init_std));
    }
}

Tensor
MoeTransformerLm::Forward(const std::vector<TokenId>& tokens, std::size_t batch,
                          std::size_t seq, bool train) {
    MOC_CHECK_ARG(tokens.size() == batch * seq, "token count mismatch");
    MOC_CHECK_ARG(seq <= config_.max_seq, "sequence longer than max_seq");
    batch_ = batch;
    seq_ = seq;

    Tensor x = tok_emb_.Forward(tokens);
    // Add positional embeddings.
    const float* pp = pos_emb_.value().data();
    float* px = x.data();
    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t s = 0; s < seq; ++s) {
            float* row = px + (b * seq + s) * config_.hidden;
            const float* prow = pp + s * config_.hidden;
            for (std::size_t d = 0; d < config_.hidden; ++d) {
                row[d] += prow[d];
            }
        }
    }

    for (auto& block : blocks_) {
        x = block->Forward(x, batch, seq, train, gating_rng_);
    }
    final_hidden_ = final_ln_.Forward(x);
    // Tied output head: logits = h . E^T.
    return MatMulTransB(final_hidden_, tok_emb_.table().value());
}

void
MoeTransformerLm::Backward(const Tensor& dlogits) {
    // Tied head: dh = dlogits . E ; dE += dlogits^T . h.
    Tensor dh = MatMul(dlogits, tok_emb_.table().value());
    Axpy(tok_emb_.table().grad(), MatMulTransA(dlogits, final_hidden_));

    Tensor dx = final_ln_.Backward(dh);
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
        dx = (*it)->Backward(dx);
    }

    // Positional embedding gradient.
    float* pg = pos_emb_.grad().data();
    const float* pdx = dx.data();
    for (std::size_t b = 0; b < batch_; ++b) {
        for (std::size_t s = 0; s < seq_; ++s) {
            const float* row = pdx + (b * seq_ + s) * config_.hidden;
            float* grow = pg + s * config_.hidden;
            for (std::size_t d = 0; d < config_.hidden; ++d) {
                grow[d] += row[d];
            }
        }
    }
    // Token embedding gradient (gather path).
    tok_emb_.Backward(dx);
}

double
MoeTransformerLm::TrainBackward(const LmBatch& batch) {
    Tensor logits = Forward(batch.inputs, batch.batch, batch.seq, /*train=*/true);
    std::vector<int> targets(batch.targets.begin(), batch.targets.end());
    Tensor dlogits;
    const double loss = CrossEntropy(logits, targets, &dlogits);
    Backward(dlogits);
    double aux = 0.0;
    for (auto* moe : MoeLayers()) {
        aux += moe->aux_loss() * moe->config().aux_loss_coeff;
    }
    return loss + aux;
}

double
MoeTransformerLm::EvalLoss(const LmBatch& batch) {
    Tensor logits = Forward(batch.inputs, batch.batch, batch.seq, /*train=*/false);
    std::vector<int> targets(batch.targets.begin(), batch.targets.end());
    return CrossEntropy(logits, targets, nullptr);
}

double
MoeTransformerLm::ScoreContinuation(const std::vector<TokenId>& context,
                                    const std::vector<TokenId>& continuation) {
    MOC_CHECK_ARG(!context.empty() && !continuation.empty(),
                  "probe scoring needs non-empty context and continuation");
    std::vector<TokenId> tokens = context;
    tokens.insert(tokens.end(), continuation.begin(), continuation.end());
    MOC_CHECK_ARG(tokens.size() <= config_.max_seq + 1, "probe longer than max_seq");
    // Inputs are tokens[0..n-2]; the continuation occupies the tail targets.
    std::vector<TokenId> inputs(tokens.begin(), tokens.end() - 1);
    Tensor logits = Forward(inputs, 1, inputs.size(), /*train=*/false);
    Tensor probs = RowSoftmax(logits);
    double log_likelihood = 0.0;
    const std::size_t vocab = config_.vocab;
    for (std::size_t i = 0; i < continuation.size(); ++i) {
        const std::size_t pos = context.size() - 1 + i;
        const auto target = static_cast<std::size_t>(
            tokens[context.size() + i]);
        const double p =
            std::max(1e-12, static_cast<double>(probs.data()[pos * vocab + target]));
        log_likelihood += std::log(p);
    }
    return log_likelihood;
}

std::vector<ParamGroup>
MoeTransformerLm::ParameterGroups() {
    std::vector<ParamGroup> groups;
    {
        ParamGroup g;
        g.key = "embedding";
        g.params.push_back(&tok_emb_.table());
        g.params.push_back(&pos_emb_);
        groups.push_back(std::move(g));
    }
    const ModelSpec spec = config_.ToModelSpec();
    std::size_t moe_index = 0;
    for (std::size_t l = 0; l < blocks_.size(); ++l) {
        std::vector<Parameter*> ln;
        std::vector<Parameter*> attn;
        std::vector<Parameter*> ffn_or_gate;
        blocks_[l]->CollectNonExpertParams(ln, attn, ffn_or_gate);
        {
            ParamGroup g;
            g.key = "layer/" + std::to_string(l) + "/ln";
            g.params = std::move(ln);
            groups.push_back(std::move(g));
        }
        {
            ParamGroup g;
            g.key = "layer/" + std::to_string(l) + "/attn";
            g.params = std::move(attn);
            groups.push_back(std::move(g));
        }
        if (spec.IsMoeLayer(l)) {
            {
                ParamGroup g;
                g.key = "moe/" + std::to_string(moe_index) + "/gate";
                g.moe_index = moe_index;
                g.params = std::move(ffn_or_gate);
                groups.push_back(std::move(g));
            }
            MoeLayer* moe = blocks_[l]->moe();
            for (ExpertId e = 0; e < config_.num_experts; ++e) {
                ParamGroup g;
                g.key = "moe/" + std::to_string(moe_index) + "/expert/" +
                        std::to_string(e);
                g.kind = ModuleKind::kExpert;
                g.moe_index = moe_index;
                g.expert = e;
                moe->CollectExpertParams(e, g.params);
                groups.push_back(std::move(g));
            }
            ++moe_index;
        } else {
            ParamGroup g;
            g.key = "layer/" + std::to_string(l) + "/ffn";
            g.params = std::move(ffn_or_gate);
            groups.push_back(std::move(g));
        }
    }
    {
        ParamGroup g;
        g.key = "final_ln";
        final_ln_.CollectParams(g.params);
        groups.push_back(std::move(g));
    }
    return groups;
}

std::vector<MoeLayer*>
MoeTransformerLm::MoeLayers() {
    std::vector<MoeLayer*> out;
    for (auto& block : blocks_) {
        if (block->is_moe()) {
            out.push_back(block->moe());
        }
    }
    return out;
}

}  // namespace moc
