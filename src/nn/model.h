#ifndef MOC_NN_MODEL_H_
#define MOC_NN_MODEL_H_

/**
 * @file
 * The MoE transformer language model: a GPT-style decoder with MoE FFN
 * sublayers, trainable end-to-end on CPU at laptop scale. Structurally a
 * scaled-down GPT-125M-8E / GPT-350M-16E (Table 1).
 */

#include <memory>
#include <vector>

#include "data/corpus.h"
#include "dist/model_spec.h"
#include "nn/block.h"
#include "nn/embedding.h"
#include "nn/parameter.h"

namespace moc {

/** Hyperparameters of a trainable LM instance. */
struct LmConfig {
    std::size_t vocab = 256;
    std::size_t max_seq = 32;
    std::size_t hidden = 64;
    std::size_t num_heads = 2;
    std::size_t head_dim = 32;
    std::size_t num_layers = 4;
    std::size_t ffn_mult = 4;
    std::size_t num_experts = 8;
    std::size_t top_k = 1;
    std::size_t moe_every = 2;
    std::size_t moe_offset = 1;
    double capacity_factor = 1.5;
    float gate_noise_std = 1e-2F;
    float aux_loss_coeff = 1e-2F;
    float init_std = 0.02F;
    std::uint64_t seed = 7;

    /** The equivalent ModelSpec (for inventory/byte accounting). */
    ModelSpec ToModelSpec() const;
};

/**
 * GPT-style MoE language model with a tied output head.
 *
 * Parameter groups use ModelStateInventory keys, so the checkpoint system
 * addresses the real model and the analytical model identically.
 */
class MoeTransformerLm : public ParamSource {
  public:
    explicit MoeTransformerLm(const LmConfig& config);

    /** Forward + backward over a batch; returns task loss (aux included). */
    double TrainBackward(const LmBatch& batch);

    /** Forward only (no noise); returns validation loss. */
    double EvalLoss(const LmBatch& batch);

    /**
     * Log-likelihood of @p continuation following @p context (probe scoring,
     * no gating noise).
     */
    double ScoreContinuation(const std::vector<TokenId>& context,
                             const std::vector<TokenId>& continuation);

    std::vector<ParamGroup> ParameterGroups() override;

    const LmConfig& config() const { return config_; }

    /** All MoE layers, in moe_index order. */
    std::vector<MoeLayer*> MoeLayers();

    /** Gating-noise RNG (checkpointable "other state"). */
    Rng& gating_rng() { return gating_rng_; }

  private:
    /** Runs the forward pass; returns logits [B*S, vocab]. */
    Tensor Forward(const std::vector<TokenId>& tokens, std::size_t batch,
                   std::size_t seq, bool train);

    /** Backward from dlogits through the whole network. */
    void Backward(const Tensor& dlogits);

    LmConfig config_;
    Rng init_rng_;
    Rng gating_rng_;
    Embedding tok_emb_;
    Parameter pos_emb_;
    std::vector<std::unique_ptr<TransformerBlock>> blocks_;
    LayerNorm final_ln_;

    // Caches for backward.
    std::size_t batch_ = 0;
    std::size_t seq_ = 0;
    Tensor final_hidden_;  ///< output of final_ln_, input to the tied head
};

}  // namespace moc

#endif  // MOC_NN_MODEL_H_
