#ifndef MOC_NN_FFN_H_
#define MOC_NN_FFN_H_

/**
 * @file
 * The feed-forward network used both as the dense FFN sublayer and as one
 * MoE expert: Linear -> GELU -> Linear.
 */

#include <string>
#include <vector>

#include "nn/linear.h"

namespace moc {

/** Two-layer GELU MLP. */
class Ffn {
  public:
    Ffn(std::string name, std::size_t hidden, std::size_t inter, Rng& rng,
        float init_std);

    Tensor Forward(const Tensor& x);
    Tensor Backward(const Tensor& dy);

    void CollectParams(std::vector<Parameter*>& out);

    std::size_t hidden() const { return fc1_.in_dim(); }

  private:
    Linear fc1_;
    Linear fc2_;
    Tensor cached_pre_act_;
};

}  // namespace moc

#endif  // MOC_NN_FFN_H_
