#include "nn/classifier.h"

#include <sstream>

#include "tensor/ops.h"
#include "util/logging.h"

namespace moc {

MoeClassifier::MoeClassifier(const ClassifierConfig& config)
    : config_(config),
      init_rng_(config.seed),
      gating_rng_(config.seed ^ 0x5A5A5A5AULL),
      tok_emb_("tok_emb", config.vocab, config.hidden, init_rng_, config.init_std),
      pos_emb_("pos_emb",
               Tensor::Randn({config.max_seq, config.hidden}, init_rng_,
                             config.init_std)),
      final_ln_("final_ln", config.hidden),
      head_("head", config.hidden, config.num_classes, init_rng_, config.init_std) {
    blocks_.reserve(config.num_layers);
    for (std::size_t l = 0; l < config.num_layers; ++l) {
        BlockConfig bc;
        bc.hidden = config.hidden;
        bc.num_heads = config.num_heads;
        bc.head_dim = config.head_dim;
        bc.ffn_mult = config.ffn_mult;
        bc.causal = false;
        bc.is_moe = config.num_experts > 0 && l >= config.moe_offset &&
                    (l - config.moe_offset) % config.moe_every == 0;
        if (bc.is_moe) {
            bc.moe.hidden = config.hidden;
            bc.moe.inter = config.ffn_mult * config.hidden;
            bc.moe.num_experts = config.num_experts;
            bc.moe.top_k = config.top_k;
            bc.moe.capacity_factor = config.capacity_factor;
            bc.moe.noise_std = config.gate_noise_std;
            bc.moe.aux_loss_coeff = config.aux_loss_coeff;
        }
        std::ostringstream name;
        name << "cls_block" << l;
        blocks_.push_back(
            std::make_unique<TransformerBlock>(name.str(), bc, init_rng_,
                                               config.init_std));
    }
}

Tensor
MoeClassifier::Forward(const std::vector<ClassifiedSequence>& batch, bool train) {
    MOC_CHECK_ARG(!batch.empty(), "empty classification batch");
    batch_size_ = batch.size();
    seq_ = batch.front().tokens.size();
    MOC_CHECK_ARG(seq_ <= config_.max_seq, "sequence longer than max_seq");

    std::vector<TokenId> tokens;
    tokens.reserve(batch_size_ * seq_);
    for (const auto& ex : batch) {
        MOC_CHECK_ARG(ex.tokens.size() == seq_, "ragged classification batch");
        tokens.insert(tokens.end(), ex.tokens.begin(), ex.tokens.end());
    }

    Tensor x = tok_emb_.Forward(tokens);
    const float* pp = pos_emb_.value().data();
    float* px = x.data();
    for (std::size_t b = 0; b < batch_size_; ++b) {
        for (std::size_t s = 0; s < seq_; ++s) {
            float* row = px + (b * seq_ + s) * config_.hidden;
            const float* prow = pp + s * config_.hidden;
            for (std::size_t d = 0; d < config_.hidden; ++d) {
                row[d] += prow[d];
            }
        }
    }

    for (auto& block : blocks_) {
        x = block->Forward(x, batch_size_, seq_, train, gating_rng_);
    }
    Tensor normed = final_ln_.Forward(x);

    // Mean-pool over the sequence.
    pooled_ = Tensor({batch_size_, config_.hidden});
    const float* pn = normed.data();
    float* pl = pooled_.data();
    const float inv = 1.0F / static_cast<float>(seq_);
    for (std::size_t b = 0; b < batch_size_; ++b) {
        for (std::size_t s = 0; s < seq_; ++s) {
            const float* row = pn + (b * seq_ + s) * config_.hidden;
            for (std::size_t d = 0; d < config_.hidden; ++d) {
                pl[b * config_.hidden + d] += row[d] * inv;
            }
        }
    }
    return head_.Forward(pooled_);
}

void
MoeClassifier::Backward(const Tensor& dlogits) {
    Tensor dpool = head_.Backward(dlogits);
    // Un-pool: broadcast dpool / seq back to every position.
    Tensor dnormed({batch_size_ * seq_, config_.hidden});
    const float inv = 1.0F / static_cast<float>(seq_);
    const float* pdp = dpool.data();
    float* pdn = dnormed.data();
    for (std::size_t b = 0; b < batch_size_; ++b) {
        for (std::size_t s = 0; s < seq_; ++s) {
            float* row = pdn + (b * seq_ + s) * config_.hidden;
            const float* src = pdp + b * config_.hidden;
            for (std::size_t d = 0; d < config_.hidden; ++d) {
                row[d] = src[d] * inv;
            }
        }
    }
    Tensor dx = final_ln_.Backward(dnormed);
    for (auto it = blocks_.rbegin(); it != blocks_.rend(); ++it) {
        dx = (*it)->Backward(dx);
    }
    float* pg = pos_emb_.grad().data();
    const float* pdx = dx.data();
    for (std::size_t b = 0; b < batch_size_; ++b) {
        for (std::size_t s = 0; s < seq_; ++s) {
            const float* row = pdx + (b * seq_ + s) * config_.hidden;
            float* grow = pg + s * config_.hidden;
            for (std::size_t d = 0; d < config_.hidden; ++d) {
                grow[d] += row[d];
            }
        }
    }
    tok_emb_.Backward(dx);
}

double
MoeClassifier::TrainBackward(const std::vector<ClassifiedSequence>& batch) {
    Tensor logits = Forward(batch, /*train=*/true);
    std::vector<int> targets;
    targets.reserve(batch.size());
    for (const auto& ex : batch) {
        targets.push_back(ex.label);
    }
    Tensor dlogits;
    const double loss = CrossEntropy(logits, targets, &dlogits);
    Backward(dlogits);
    double aux = 0.0;
    for (auto* moe : MoeLayers()) {
        aux += moe->aux_loss() * moe->config().aux_loss_coeff;
    }
    return loss + aux;
}

double
MoeClassifier::EvalAccuracy(const std::vector<ClassifiedSequence>& batch) {
    Tensor logits = Forward(batch, /*train=*/false);
    const auto predictions = RowArgmax(logits);
    std::size_t correct = 0;
    for (std::size_t i = 0; i < batch.size(); ++i) {
        if (predictions[i] == batch[i].label) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(batch.size());
}

std::vector<ParamGroup>
MoeClassifier::ParameterGroups() {
    std::vector<ParamGroup> groups;
    {
        ParamGroup g;
        g.key = "embedding";
        g.params.push_back(&tok_emb_.table());
        g.params.push_back(&pos_emb_);
        groups.push_back(std::move(g));
    }
    std::size_t moe_index = 0;
    for (std::size_t l = 0; l < blocks_.size(); ++l) {
        std::vector<Parameter*> ln;
        std::vector<Parameter*> attn;
        std::vector<Parameter*> ffn_or_gate;
        blocks_[l]->CollectNonExpertParams(ln, attn, ffn_or_gate);
        {
            ParamGroup g;
            g.key = "layer/" + std::to_string(l) + "/ln";
            g.params = std::move(ln);
            groups.push_back(std::move(g));
        }
        {
            ParamGroup g;
            g.key = "layer/" + std::to_string(l) + "/attn";
            g.params = std::move(attn);
            groups.push_back(std::move(g));
        }
        if (blocks_[l]->is_moe()) {
            {
                ParamGroup g;
                g.key = "moe/" + std::to_string(moe_index) + "/gate";
                g.moe_index = moe_index;
                g.params = std::move(ffn_or_gate);
                groups.push_back(std::move(g));
            }
            MoeLayer* moe = blocks_[l]->moe();
            for (ExpertId e = 0; e < config_.num_experts; ++e) {
                ParamGroup g;
                g.key = "moe/" + std::to_string(moe_index) + "/expert/" +
                        std::to_string(e);
                g.kind = ModuleKind::kExpert;
                g.moe_index = moe_index;
                g.expert = e;
                moe->CollectExpertParams(e, g.params);
                groups.push_back(std::move(g));
            }
            ++moe_index;
        } else {
            ParamGroup g;
            g.key = "layer/" + std::to_string(l) + "/ffn";
            g.params = std::move(ffn_or_gate);
            groups.push_back(std::move(g));
        }
    }
    {
        ParamGroup g;
        g.key = "final_ln";
        final_ln_.CollectParams(g.params);
        groups.push_back(std::move(g));
    }
    {
        ParamGroup g;
        g.key = "head";
        head_.CollectParams(g.params);
        groups.push_back(std::move(g));
    }
    return groups;
}

std::vector<MoeLayer*>
MoeClassifier::MoeLayers() {
    std::vector<MoeLayer*> out;
    for (auto& block : blocks_) {
        if (block->is_moe()) {
            out.push_back(block->moe());
        }
    }
    return out;
}

}  // namespace moc
