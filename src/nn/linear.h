#ifndef MOC_NN_LINEAR_H_
#define MOC_NN_LINEAR_H_

/**
 * @file
 * Fully-connected layer with cached-activation backward pass.
 */

#include <string>

#include "nn/parameter.h"
#include "tensor/tensor.h"

namespace moc {

/**
 * y = x W + b for x[m, in], W[in, out], b[out].
 */
class Linear {
  public:
    /** Initializes W ~ N(0, init_std), b = 0. */
    Linear(std::string name, std::size_t in, std::size_t out, Rng& rng,
           float init_std);

    /** Forward pass; caches the input for Backward. */
    Tensor Forward(const Tensor& x);

    /** Forward without caching (inference). */
    Tensor ForwardNoCache(const Tensor& x) const;

    /** Backward pass; accumulates dW, db and returns dx. */
    Tensor Backward(const Tensor& dy);

    Parameter& weight() { return weight_; }
    Parameter& bias() { return bias_; }

    std::size_t in_dim() const { return in_; }
    std::size_t out_dim() const { return out_; }

    /** Appends this layer's parameters to @p out. */
    void CollectParams(std::vector<Parameter*>& out);

  private:
    std::size_t in_;
    std::size_t out_;
    Parameter weight_;
    Parameter bias_;
    Tensor cached_input_;
};

}  // namespace moc

#endif  // MOC_NN_LINEAR_H_
