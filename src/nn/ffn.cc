#include "nn/ffn.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace moc {

Ffn::Ffn(std::string name, std::size_t hidden, std::size_t inter, Rng& rng,
         float init_std)
    : fc1_(name + ".fc1", hidden, inter, rng, init_std),
      fc2_(name + ".fc2", inter, hidden, rng, init_std) {}

Tensor
Ffn::Forward(const Tensor& x) {
    cached_pre_act_ = fc1_.Forward(x);
    return fc2_.Forward(Gelu(cached_pre_act_));
}

Tensor
Ffn::Backward(const Tensor& dy) {
    MOC_ASSERT(!cached_pre_act_.empty(), "Ffn::Backward without Forward");
    Tensor dact = fc2_.Backward(dy);
    Tensor dpre = GeluBackward(cached_pre_act_, dact);
    return fc1_.Backward(dpre);
}

void
Ffn::CollectParams(std::vector<Parameter*>& out) {
    fc1_.CollectParams(out);
    fc2_.CollectParams(out);
}

}  // namespace moc
