#include "nn/linear.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace moc {

Linear::Linear(std::string name, std::size_t in, std::size_t out, Rng& rng,
               float init_std)
    : in_(in),
      out_(out),
      weight_(name + ".weight", Tensor::Randn({in, out}, rng, init_std)),
      bias_(name + ".bias", Tensor({out})) {}

Tensor
Linear::Forward(const Tensor& x) {
    cached_input_ = x;
    return ForwardNoCache(x);
}

Tensor
Linear::ForwardNoCache(const Tensor& x) const {
    MOC_CHECK_ARG(x.rank() == 2 && x.dim(1) == in_,
                  "Linear: input shape mismatch for " << weight_.name());
    Tensor y = MatMul(x, weight_.value());
    AddRowBias(y, bias_.value());
    return y;
}

Tensor
Linear::Backward(const Tensor& dy) {
    MOC_ASSERT(!cached_input_.empty(), "Linear::Backward without Forward");
    // dW = x^T dy ; db = sum rows dy ; dx = dy W^T.
    Axpy(weight_.grad(), MatMulTransA(cached_input_, dy));
    Axpy(bias_.grad(), SumRows(dy));
    return MatMulTransB(dy, weight_.value());
}

void
Linear::CollectParams(std::vector<Parameter*>& out) {
    out.push_back(&weight_);
    out.push_back(&bias_);
}

}  // namespace moc
