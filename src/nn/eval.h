#ifndef MOC_NN_EVAL_H_
#define MOC_NN_EVAL_H_

/**
 * @file
 * Evaluation helpers: validation loss over a batch stream and multiple-choice
 * probe scoring (the downstream-task evaluation of Tables 3 and 4).
 */

#include <string>
#include <vector>

#include "data/probes.h"
#include "nn/model.h"

namespace moc {

/** Mean validation loss over @p num_batches batches of @p stream. */
double EvalStreamLoss(MoeTransformerLm& model, const LmBatchStream& stream,
                      std::size_t num_batches, std::size_t start_index = 0);

/** Accuracy of @p model on one probe task (likelihood-ranked choices). */
double EvalProbeTask(MoeTransformerLm& model, const ProbeTask& task);

/** Per-task accuracy result. */
struct ProbeResult {
    std::string task;
    double accuracy = 0.0;
};

/** Evaluates the full suite; also returns the macro average as last entry "Avg". */
std::vector<ProbeResult> EvalProbeSuite(MoeTransformerLm& model,
                                        const std::vector<ProbeTask>& suite);

}  // namespace moc

#endif  // MOC_NN_EVAL_H_
