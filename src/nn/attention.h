#ifndef MOC_NN_ATTENTION_H_
#define MOC_NN_ATTENTION_H_

/**
 * @file
 * Multi-head scaled-dot-product attention with optional causal masking.
 */

#include <string>
#include <vector>

#include "nn/linear.h"
#include "nn/parameter.h"

namespace moc {

/**
 * Multi-head attention over a flattened [batch*seq, hidden] input.
 *
 * The batch/sequence factorization is passed at Forward time so the same
 * module serves the LM (causal) and the classifier (bidirectional).
 */
class MultiHeadAttention {
  public:
    MultiHeadAttention(std::string name, std::size_t hidden, std::size_t num_heads,
                       std::size_t head_dim, bool causal, Rng& rng, float init_std);

    /** Forward over x[batch*seq, hidden]. */
    Tensor Forward(const Tensor& x, std::size_t batch, std::size_t seq);

    /** Backward; returns dx and accumulates projection grads. */
    Tensor Backward(const Tensor& dy);

    void CollectParams(std::vector<Parameter*>& out);

  private:
    std::size_t hidden_;
    std::size_t num_heads_;
    std::size_t head_dim_;
    bool causal_;
    Linear wq_;
    Linear wk_;
    Linear wv_;
    Linear wo_;

    // Cached activations for backward.
    std::size_t batch_ = 0;
    std::size_t seq_ = 0;
    Tensor q_;
    Tensor k_;
    Tensor v_;
    /** attn_[b*H + h] is the [seq, seq] attention matrix. */
    std::vector<Tensor> attn_;
    Tensor concat_;  ///< pre-output-projection heads, [batch*seq, H*D]
};

}  // namespace moc

#endif  // MOC_NN_ATTENTION_H_
