#ifndef MOC_NN_PARAMETER_H_
#define MOC_NN_PARAMETER_H_

/**
 * @file
 * Learnable parameters and the grouping scheme that ties the training stack
 * to the checkpoint engine.
 *
 * Every parameter carries its gradient and Adam moments so that "the state
 * of a module" (what a checkpoint shard stores) is self-contained. Groups
 * use the same keys as ModelStateInventory ("moe/0/expert/3", ...), so the
 * checkpoint planners, the PEC selector, and the real model agree on units.
 */

#include <string>
#include <vector>

#include "dist/inventory.h"
#include "tensor/tensor.h"

namespace moc {

/**
 * One learnable tensor with gradient and Adam optimizer moments.
 */
class Parameter {
  public:
    Parameter() = default;

    /** Creates a parameter named @p name with value @p value. */
    Parameter(std::string name, Tensor value);

    const std::string& name() const { return name_; }

    Tensor& value() { return value_; }
    const Tensor& value() const { return value_; }

    Tensor& grad() { return grad_; }
    const Tensor& grad() const { return grad_; }

    /** First Adam moment (m). */
    Tensor& adam_m() { return adam_m_; }
    const Tensor& adam_m() const { return adam_m_; }

    /** Second Adam moment (v). */
    Tensor& adam_v() { return adam_v_; }
    const Tensor& adam_v() const { return adam_v_; }

    /** Zeroes the gradient. */
    void ZeroGrad() { grad_.Zero(); }

    /** Freezing excludes the parameter from optimizer updates. */
    bool frozen() const { return frozen_; }
    void set_frozen(bool frozen) { frozen_ = frozen; }

    std::size_t size() const { return value_.size(); }

  private:
    std::string name_;
    Tensor value_;
    Tensor grad_;
    Tensor adam_m_;
    Tensor adam_v_;
    bool frozen_ = false;
};

/**
 * A named set of parameters forming one checkpointing unit.
 */
struct ParamGroup {
    /** Inventory-compatible key ("layer/0/attn", "moe/1/expert/2", ...). */
    std::string key;
    ModuleKind kind = ModuleKind::kNonExpert;
    /** Index among MoE layers (experts and gates only). */
    std::size_t moe_index = kNoIndex;
    /** Expert id (expert groups only). */
    ExpertId expert = kNoIndex;
    std::vector<Parameter*> params;

    /** Total parameter count of the group. */
    std::size_t TotalParams() const;
};

/** Interface implemented by anything exposing checkpointable parameters. */
class ParamSource {
  public:
    virtual ~ParamSource() = default;

    /** All parameter groups, in a stable order. */
    virtual std::vector<ParamGroup> ParameterGroups() = 0;

    /** Flat list of all parameters (derived from the groups). */
    std::vector<Parameter*> AllParameters();
};

}  // namespace moc

#endif  // MOC_NN_PARAMETER_H_
