#include "nn/parameter.h"

namespace moc {

Parameter::Parameter(std::string name, Tensor value)
    : name_(std::move(name)),
      value_(std::move(value)),
      grad_(value_.shape()),
      adam_m_(value_.shape()),
      adam_v_(value_.shape()) {}

std::size_t
ParamGroup::TotalParams() const {
    std::size_t total = 0;
    for (const auto* p : params) {
        total += p->size();
    }
    return total;
}

std::vector<Parameter*>
ParamSource::AllParameters() {
    std::vector<Parameter*> out;
    for (auto& group : ParameterGroups()) {
        for (auto* p : group.params) {
            out.push_back(p);
        }
    }
    return out;
}

}  // namespace moc
