#include "nn/block.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace moc {

TransformerBlock::TransformerBlock(std::string name, const BlockConfig& config,
                                   Rng& rng, float init_std)
    : ln1_(name + ".ln1", config.hidden),
      attn_(name + ".attn", config.hidden, config.num_heads, config.head_dim,
            config.causal, rng, init_std),
      ln2_(name + ".ln2", config.hidden) {
    if (config.is_moe) {
        moe_ = std::make_unique<MoeLayer>(name + ".moe", config.moe, rng, init_std);
    } else {
        ffn_ = std::make_unique<Ffn>(name + ".ffn", config.hidden,
                                     config.ffn_mult * config.hidden, rng, init_std);
    }
}

Tensor
TransformerBlock::Forward(const Tensor& x, std::size_t batch, std::size_t seq,
                          bool train, Rng& rng) {
    Tensor h = Add(x, attn_.Forward(ln1_.Forward(x), batch, seq));
    Tensor normed = ln2_.Forward(h);
    Tensor f = moe_ ? moe_->Forward(normed, train, rng) : ffn_->Forward(normed);
    return Add(h, f);
}

Tensor
TransformerBlock::Backward(const Tensor& dy) {
    Tensor df = moe_ ? moe_->Backward(dy) : ffn_->Backward(dy);
    Tensor dh = Add(dy, ln2_.Backward(df));
    Tensor dattn = attn_.Backward(dh);
    return Add(dh, ln1_.Backward(dattn));
}

void
TransformerBlock::CollectNonExpertParams(std::vector<Parameter*>& ln_out,
                                         std::vector<Parameter*>& attn_out,
                                         std::vector<Parameter*>& ffn_or_gate_out) {
    ln1_.CollectParams(ln_out);
    ln2_.CollectParams(ln_out);
    attn_.CollectParams(attn_out);
    if (moe_) {
        moe_->CollectGateParams(ffn_or_gate_out);
    } else {
        ffn_->CollectParams(ffn_or_gate_out);
    }
}

}  // namespace moc
