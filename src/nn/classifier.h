#ifndef MOC_NN_CLASSIFIER_H_
#define MOC_NN_CLASSIFIER_H_

/**
 * @file
 * Encoder-style MoE sequence classifier — the laptop-scale stand-in for the
 * paper's SwinV2-MoE/ImageNet experiment (Fig. 14b).
 */

#include <memory>
#include <vector>

#include "data/classification.h"
#include "nn/block.h"
#include "nn/embedding.h"
#include "nn/linear.h"
#include "nn/parameter.h"

namespace moc {

/** Hyperparameters of the classifier. */
struct ClassifierConfig {
    std::size_t vocab = 64;
    std::size_t max_seq = 16;
    std::size_t num_classes = 8;
    std::size_t hidden = 48;
    std::size_t num_heads = 2;
    std::size_t head_dim = 24;
    std::size_t num_layers = 4;
    std::size_t ffn_mult = 4;
    std::size_t num_experts = 8;
    std::size_t top_k = 1;
    std::size_t moe_every = 2;
    std::size_t moe_offset = 1;
    double capacity_factor = 1.5;
    float gate_noise_std = 1e-2F;
    float aux_loss_coeff = 1e-2F;
    float init_std = 0.02F;
    std::uint64_t seed = 11;
};

/**
 * Bidirectional MoE transformer + mean-pool + linear head.
 */
class MoeClassifier : public ParamSource {
  public:
    explicit MoeClassifier(const ClassifierConfig& config);

    /** Forward + backward over a labelled batch; returns mean loss. */
    double TrainBackward(const std::vector<ClassifiedSequence>& batch);

    /** Classification accuracy over @p batch (no noise). */
    double EvalAccuracy(const std::vector<ClassifiedSequence>& batch);

    std::vector<ParamGroup> ParameterGroups() override;
    std::vector<MoeLayer*> MoeLayers();

    const ClassifierConfig& config() const { return config_; }
    Rng& gating_rng() { return gating_rng_; }

  private:
    Tensor Forward(const std::vector<ClassifiedSequence>& batch, bool train);
    void Backward(const Tensor& dlogits);

    ClassifierConfig config_;
    Rng init_rng_;
    Rng gating_rng_;
    Embedding tok_emb_;
    Parameter pos_emb_;
    std::vector<std::unique_ptr<TransformerBlock>> blocks_;
    LayerNorm final_ln_;
    Linear head_;

    std::size_t batch_size_ = 0;
    std::size_t seq_ = 0;
    Tensor pooled_;
};

}  // namespace moc

#endif  // MOC_NN_CLASSIFIER_H_
