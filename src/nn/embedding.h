#ifndef MOC_NN_EMBEDDING_H_
#define MOC_NN_EMBEDDING_H_

/**
 * @file
 * Token and position embedding with sparse-gather backward.
 */

#include <string>
#include <vector>

#include "data/corpus.h"
#include "nn/parameter.h"

namespace moc {

/**
 * Lookup table [vocab, dim]; Forward gathers rows for a token sequence.
 */
class Embedding {
  public:
    Embedding(std::string name, std::size_t vocab, std::size_t dim, Rng& rng,
              float init_std);

    /** Gathers rows for @p tokens into [tokens.size(), dim]. */
    Tensor Forward(const std::vector<TokenId>& tokens);

    /** Scatters @p dy rows back into the table gradient. */
    void Backward(const Tensor& dy);

    Parameter& table() { return table_; }
    std::size_t vocab() const { return vocab_; }
    std::size_t dim() const { return dim_; }

    void CollectParams(std::vector<Parameter*>& out) { out.push_back(&table_); }

  private:
    std::size_t vocab_;
    std::size_t dim_;
    Parameter table_;
    std::vector<TokenId> cached_tokens_;
};

}  // namespace moc

#endif  // MOC_NN_EMBEDDING_H_
