#include "nn/adam.h"

#include <cmath>

#include "util/logging.h"

namespace moc {

Adam::Adam(const AdamConfig& config) : config_(config) {
    MOC_CHECK_ARG(config.lr > 0.0, "lr must be > 0");
    MOC_CHECK_ARG(config.beta1 >= 0.0 && config.beta1 < 1.0, "beta1 in [0, 1)");
    MOC_CHECK_ARG(config.beta2 >= 0.0 && config.beta2 < 1.0, "beta2 in [0, 1)");
}

double
Adam::CurrentLr() const {
    const std::size_t t = step_ + 1;
    if (config_.warmup_steps > 0 && t <= config_.warmup_steps) {
        return config_.lr * static_cast<double>(t) /
               static_cast<double>(config_.warmup_steps);
    }
    if (config_.total_steps == 0 || t >= config_.total_steps) {
        return config_.total_steps == 0 ? config_.lr : config_.lr_min;
    }
    const double progress =
        static_cast<double>(t - config_.warmup_steps) /
        static_cast<double>(config_.total_steps - config_.warmup_steps);
    return config_.lr_min +
           0.5 * (config_.lr - config_.lr_min) * (1.0 + std::cos(M_PI * progress));
}

void
Adam::Step(const std::vector<Parameter*>& params) {
    // Optional global-norm clipping.
    double scale = 1.0;
    if (config_.clip_norm > 0.0) {
        double sq = 0.0;
        for (auto* p : params) {
            if (p->frozen()) {
                continue;
            }
            const float* g = p->grad().data();
            for (std::size_t i = 0; i < p->size(); ++i) {
                sq += static_cast<double>(g[i]) * g[i];
            }
        }
        const double norm = std::sqrt(sq);
        if (norm > config_.clip_norm) {
            scale = config_.clip_norm / norm;
        }
    }

    const double lr = CurrentLr();
    ++step_;
    const double bc1 = 1.0 - std::pow(config_.beta1, static_cast<double>(step_));
    const double bc2 = 1.0 - std::pow(config_.beta2, static_cast<double>(step_));

    for (auto* p : params) {
        if (p->frozen()) {
            p->ZeroGrad();
            continue;
        }
        float* w = p->value().data();
        float* g = p->grad().data();
        float* m = p->adam_m().data();
        float* v = p->adam_v().data();
        for (std::size_t i = 0; i < p->size(); ++i) {
            const double gi = static_cast<double>(g[i]) * scale +
                              config_.weight_decay * static_cast<double>(w[i]);
            m[i] = static_cast<float>(config_.beta1 * m[i] + (1.0 - config_.beta1) * gi);
            v[i] = static_cast<float>(config_.beta2 * v[i] +
                                      (1.0 - config_.beta2) * gi * gi);
            const double mhat = m[i] / bc1;
            const double vhat = v[i] / bc2;
            w[i] -= static_cast<float>(lr * mhat / (std::sqrt(vhat) + config_.eps));
        }
        p->ZeroGrad();
    }
}

}  // namespace moc
