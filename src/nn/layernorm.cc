#include "nn/layernorm.h"

#include "tensor/ops.h"
#include "util/logging.h"

namespace moc {

LayerNorm::LayerNorm(std::string name, std::size_t dim)
    : gain_(name + ".gain", Tensor({dim})), bias_(name + ".bias", Tensor({dim})) {
    gain_.value().Fill(1.0F);
}

Tensor
LayerNorm::Forward(const Tensor& x) {
    cached_input_ = x;
    return LayerNormForward(x, gain_.value(), bias_.value(), mean_, rstd_);
}

Tensor
LayerNorm::Backward(const Tensor& dy) {
    MOC_ASSERT(!cached_input_.empty(), "LayerNorm::Backward without Forward");
    return LayerNormBackward(cached_input_, dy, gain_.value(), mean_, rstd_,
                             gain_.grad(), bias_.grad());
}

void
LayerNorm::CollectParams(std::vector<Parameter*>& out) {
    out.push_back(&gain_);
    out.push_back(&bias_);
}

}  // namespace moc
