#include "nn/embedding.h"

#include <cstring>

#include "util/logging.h"

namespace moc {

Embedding::Embedding(std::string name, std::size_t vocab, std::size_t dim, Rng& rng,
                     float init_std)
    : vocab_(vocab),
      dim_(dim),
      table_(name + ".table", Tensor::Randn({vocab, dim}, rng, init_std)) {}

Tensor
Embedding::Forward(const std::vector<TokenId>& tokens) {
    cached_tokens_ = tokens;
    Tensor out({tokens.size(), dim_});
    const float* src = table_.value().data();
    float* dst = out.data();
    for (std::size_t i = 0; i < tokens.size(); ++i) {
        const auto t = static_cast<std::size_t>(tokens[i]);
        MOC_CHECK_ARG(t < vocab_, "Embedding: token " << tokens[i] << " out of range");
        std::memcpy(dst + i * dim_, src + t * dim_, dim_ * sizeof(float));
    }
    return out;
}

void
Embedding::Backward(const Tensor& dy) {
    MOC_ASSERT(!cached_tokens_.empty(), "Embedding::Backward without Forward");
    MOC_CHECK_ARG(dy.rank() == 2 && dy.dim(0) == cached_tokens_.size() &&
                      dy.dim(1) == dim_,
                  "Embedding: gradient shape mismatch");
    float* g = table_.grad().data();
    const float* src = dy.data();
    for (std::size_t i = 0; i < cached_tokens_.size(); ++i) {
        const auto t = static_cast<std::size_t>(cached_tokens_[i]);
        for (std::size_t j = 0; j < dim_; ++j) {
            g[t * dim_ + j] += src[i * dim_ + j];
        }
    }
}

}  // namespace moc
