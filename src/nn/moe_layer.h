#ifndef MOC_NN_MOE_LAYER_H_
#define MOC_NN_MOE_LAYER_H_

/**
 * @file
 * The sparse Mixture-of-Experts layer (Section 2.1 of the paper):
 * noisy top-k softmax gating over N expert FFNs with expert capacity.
 *
 * Besides the math, the layer exposes the routing statistics the MoC system
 * needs: how many tokens each expert processed since each checkpoint event —
 * the raw material of the PLT metric (Eq. 7) and of load-aware selection.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "nn/ffn.h"
#include "nn/linear.h"

namespace moc {

/** Hyperparameters of one MoE layer. */
struct MoeLayerConfig {
    std::size_t hidden = 64;
    std::size_t inter = 256;
    std::size_t num_experts = 8;
    std::size_t top_k = 1;
    /** Per-expert capacity = ceil(capacity_factor * T * top_k / N). */
    double capacity_factor = 1.25;
    /** Stddev of the Gaussian gating noise during training. */
    float noise_std = 1e-2F;
    /** Coefficient of the Switch-style load-balancing auxiliary loss. */
    float aux_loss_coeff = 1e-2F;
};

/** Routing outcome of one forward pass. */
struct RoutingStats {
    /** Tokens actually processed per expert (after capacity drops). */
    std::vector<std::size_t> tokens_per_expert;
    /** Assignments dropped due to expert capacity. */
    std::size_t dropped = 0;
    /** Total token-to-expert assignments attempted (= tokens * top_k). */
    std::size_t assignments = 0;
};

/**
 * One sparse MoE layer: router linear + N expert FFNs.
 */
class MoeLayer {
  public:
    MoeLayer(std::string name, const MoeLayerConfig& config, Rng& rng, float init_std);

    /**
     * Forward over x[T, hidden].
     * @param train enables gating noise and activation caching.
     * @param rng source of gating noise (only read when @p train).
     */
    Tensor Forward(const Tensor& x, bool train, Rng& rng);

    /** Backward; returns dx and accumulates router + expert grads. */
    Tensor Backward(const Tensor& dy);

    /** Load-balancing auxiliary loss value of the last Forward. */
    double aux_loss() const { return aux_loss_; }

    /** Routing statistics of the last Forward. */
    const RoutingStats& last_stats() const { return stats_; }

    const MoeLayerConfig& config() const { return config_; }
    std::size_t num_experts() const { return config_.num_experts; }

    Linear& gate() { return gate_; }
    Ffn& expert(std::size_t e) { return experts_.at(e); }

    /** Router parameters (part of the non-expert state). */
    void CollectGateParams(std::vector<Parameter*>& out);

    /** Parameters of expert @p e only (one PEC checkpointing unit). */
    void CollectExpertParams(std::size_t e, std::vector<Parameter*>& out);

  private:
    MoeLayerConfig config_;
    Linear gate_;
    std::vector<Ffn> experts_;

    // --- caches for backward ---
    struct Assignment {
        std::size_t token;
        std::size_t expert;
        std::size_t row;      ///< row in the expert's gathered batch
        float gate_weight;
    };
    std::size_t tokens_ = 0;
    Tensor probs_;                       ///< softmax over (noisy) logits, [T, N]
    std::vector<Assignment> kept_;       ///< capacity-surviving assignments
    std::vector<std::vector<std::size_t>> expert_tokens_;  ///< token idx per expert
    std::vector<Tensor> expert_outputs_; ///< y_e per expert
    /** Per-token selected expert set (for top-k renormalization backward). */
    std::vector<std::vector<std::size_t>> selected_;
    double aux_loss_ = 0.0;
    std::vector<double> assign_frac_;    ///< f_e of the aux loss
    RoutingStats stats_;
};

}  // namespace moc

#endif  // MOC_NN_MOE_LAYER_H_
