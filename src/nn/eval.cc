#include "nn/eval.h"

#include "util/logging.h"

namespace moc {

double
EvalStreamLoss(MoeTransformerLm& model, const LmBatchStream& stream,
               std::size_t num_batches, std::size_t start_index) {
    MOC_CHECK_ARG(num_batches >= 1, "need at least one eval batch");
    double total = 0.0;
    for (std::size_t i = 0; i < num_batches; ++i) {
        total += model.EvalLoss(stream.Get(start_index + i));
    }
    return total / static_cast<double>(num_batches);
}

double
EvalProbeTask(MoeTransformerLm& model, const ProbeTask& task) {
    MOC_CHECK_ARG(!task.items.empty(), "probe task has no items");
    std::size_t correct = 0;
    for (const auto& item : task.items) {
        double best = -1e300;
        int best_choice = 0;
        for (std::size_t c = 0; c < item.choices.size(); ++c) {
            const double score = model.ScoreContinuation(item.context, item.choices[c]);
            if (score > best) {
                best = score;
                best_choice = static_cast<int>(c);
            }
        }
        if (best_choice == item.correct) {
            ++correct;
        }
    }
    return static_cast<double>(correct) / static_cast<double>(task.items.size());
}

std::vector<ProbeResult>
EvalProbeSuite(MoeTransformerLm& model, const std::vector<ProbeTask>& suite) {
    std::vector<ProbeResult> results;
    double sum = 0.0;
    for (const auto& task : suite) {
        ProbeResult r;
        r.task = task.name;
        r.accuracy = EvalProbeTask(model, task);
        sum += r.accuracy;
        results.push_back(r);
    }
    results.push_back({"Avg", suite.empty() ? 0.0 : sum / static_cast<double>(suite.size())});
    return results;
}

}  // namespace moc
