#include "nn/attention.h"

#include <cmath>

#include "tensor/ops.h"
#include "util/logging.h"

namespace moc {

MultiHeadAttention::MultiHeadAttention(std::string name, std::size_t hidden,
                                       std::size_t num_heads, std::size_t head_dim,
                                       bool causal, Rng& rng, float init_std)
    : hidden_(hidden),
      num_heads_(num_heads),
      head_dim_(head_dim),
      causal_(causal),
      wq_(name + ".wq", hidden, num_heads * head_dim, rng, init_std),
      wk_(name + ".wk", hidden, num_heads * head_dim, rng, init_std),
      wv_(name + ".wv", hidden, num_heads * head_dim, rng, init_std),
      wo_(name + ".wo", num_heads * head_dim, hidden, rng, init_std) {}

Tensor
MultiHeadAttention::Forward(const Tensor& x, std::size_t batch, std::size_t seq) {
    MOC_CHECK_ARG(x.rank() == 2 && x.dim(0) == batch * seq && x.dim(1) == hidden_,
                  "attention input shape mismatch");
    batch_ = batch;
    seq_ = seq;
    q_ = wq_.Forward(x);
    k_ = wk_.Forward(x);
    v_ = wv_.Forward(x);

    const std::size_t proj = num_heads_ * head_dim_;
    const float scale = 1.0F / std::sqrt(static_cast<float>(head_dim_));
    attn_.assign(batch * num_heads_, Tensor());
    concat_ = Tensor({batch * seq, proj});

    for (std::size_t b = 0; b < batch; ++b) {
        for (std::size_t h = 0; h < num_heads_; ++h) {
            // Scores[s, t] = q_s . k_t * scale, masked to t <= s if causal.
            Tensor scores({seq, seq});
            const float* pq = q_.data();
            const float* pk = k_.data();
            float* ps = scores.data();
            for (std::size_t s = 0; s < seq; ++s) {
                const float* qrow = pq + (b * seq + s) * proj + h * head_dim_;
                const std::size_t t_end = causal_ ? s + 1 : seq;
                for (std::size_t t = 0; t < seq; ++t) {
                    if (t >= t_end) {
                        ps[s * seq + t] = -1e30F;
                        continue;
                    }
                    const float* krow = pk + (b * seq + t) * proj + h * head_dim_;
                    double dot = 0.0;
                    for (std::size_t d = 0; d < head_dim_; ++d) {
                        dot += static_cast<double>(qrow[d]) * krow[d];
                    }
                    ps[s * seq + t] = static_cast<float>(dot) * scale;
                }
            }
            Tensor weights = RowSoftmax(scores);
            // Head output rows: out_s = sum_t w[s,t] v_t.
            const float* pw = weights.data();
            const float* pv = v_.data();
            float* pc = concat_.data();
            for (std::size_t s = 0; s < seq; ++s) {
                float* orow = pc + (b * seq + s) * proj + h * head_dim_;
                for (std::size_t t = 0; t < seq; ++t) {
                    const float w = pw[s * seq + t];
                    if (w == 0.0F) {
                        continue;
                    }
                    const float* vrow = pv + (b * seq + t) * proj + h * head_dim_;
                    for (std::size_t d = 0; d < head_dim_; ++d) {
                        orow[d] += w * vrow[d];
                    }
                }
            }
            attn_[b * num_heads_ + h] = std::move(weights);
        }
    }
    return wo_.Forward(concat_);
}

Tensor
MultiHeadAttention::Backward(const Tensor& dy) {
    MOC_ASSERT(batch_ > 0, "Attention::Backward without Forward");
    const std::size_t proj = num_heads_ * head_dim_;
    const float scale = 1.0F / std::sqrt(static_cast<float>(head_dim_));

    Tensor dconcat = wo_.Backward(dy);
    Tensor dq({batch_ * seq_, proj});
    Tensor dk({batch_ * seq_, proj});
    Tensor dv({batch_ * seq_, proj});

    const float* pq = q_.data();
    const float* pk = k_.data();
    const float* pv = v_.data();
    const float* pdc = dconcat.data();
    float* pdq = dq.data();
    float* pdk = dk.data();
    float* pdv = dv.data();

    for (std::size_t b = 0; b < batch_; ++b) {
        for (std::size_t h = 0; h < num_heads_; ++h) {
            const Tensor& weights = attn_[b * num_heads_ + h];
            const float* pw = weights.data();
            // dW[s,t] = dout_s . v_t ; dv_t += sum_s w[s,t] dout_s.
            Tensor dweights({seq_, seq_});
            float* pdw = dweights.data();
            for (std::size_t s = 0; s < seq_; ++s) {
                const float* drow = pdc + (b * seq_ + s) * proj + h * head_dim_;
                for (std::size_t t = 0; t < seq_; ++t) {
                    const float w = pw[s * seq_ + t];
                    const float* vrow = pv + (b * seq_ + t) * proj + h * head_dim_;
                    float* dvrow = pdv + (b * seq_ + t) * proj + h * head_dim_;
                    double dot = 0.0;
                    for (std::size_t d = 0; d < head_dim_; ++d) {
                        dot += static_cast<double>(drow[d]) * vrow[d];
                        dvrow[d] += w * drow[d];
                    }
                    pdw[s * seq_ + t] = static_cast<float>(dot);
                }
            }
            // Through softmax.
            Tensor dscores = RowSoftmaxBackward(weights, dweights);
            const float* pds = dscores.data();
            // dq_s += scale * sum_t ds[s,t] k_t ; dk_t += scale * sum_s ds[s,t] q_s.
            for (std::size_t s = 0; s < seq_; ++s) {
                float* dqrow = pdq + (b * seq_ + s) * proj + h * head_dim_;
                const float* qrow = pq + (b * seq_ + s) * proj + h * head_dim_;
                for (std::size_t t = 0; t < seq_; ++t) {
                    const float ds = pds[s * seq_ + t] * scale;
                    if (ds == 0.0F) {
                        continue;
                    }
                    const float* krow = pk + (b * seq_ + t) * proj + h * head_dim_;
                    float* dkrow = pdk + (b * seq_ + t) * proj + h * head_dim_;
                    for (std::size_t d = 0; d < head_dim_; ++d) {
                        dqrow[d] += ds * krow[d];
                        dkrow[d] += ds * qrow[d];
                    }
                }
            }
        }
    }

    Tensor dx = wq_.Backward(dq);
    Axpy(dx, wk_.Backward(dk));
    Axpy(dx, wv_.Backward(dv));
    return dx;
}

void
MultiHeadAttention::CollectParams(std::vector<Parameter*>& out) {
    wq_.CollectParams(out);
    wk_.CollectParams(out);
    wv_.CollectParams(out);
    wo_.CollectParams(out);
}

}  // namespace moc
