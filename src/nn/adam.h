#ifndef MOC_NN_ADAM_H_
#define MOC_NN_ADAM_H_

/**
 * @file
 * Adam optimizer with cosine learning-rate schedule and gradient clipping.
 *
 * Moments live inside each Parameter so that a checkpoint of a parameter
 * group is self-contained (weights + optimizer states), mirroring the
 * paper's "W" / "O" / "WO" checkpointing variants.
 */

#include <vector>

#include "nn/parameter.h"

namespace moc {

/** Adam hyperparameters. */
struct AdamConfig {
    double lr = 1e-3;
    double beta1 = 0.9;
    double beta2 = 0.999;
    double eps = 1e-8;
    double weight_decay = 0.0;
    /** Global-norm gradient clip; <= 0 disables. */
    double clip_norm = 1.0;
    /** Cosine decay to lr_min over total_steps; 0 disables the schedule. */
    std::size_t total_steps = 0;
    double lr_min = 1e-4;
    std::size_t warmup_steps = 0;
};

/**
 * Adam over an external parameter list.
 */
class Adam {
  public:
    explicit Adam(const AdamConfig& config);

    /**
     * Applies one update to @p params from their accumulated grads, then
     * zeroes the grads. Frozen parameters are skipped (grads still zeroed).
     */
    void Step(const std::vector<Parameter*>& params);

    /** Learning rate that the next Step() will use. */
    double CurrentLr() const;

    std::size_t step_count() const { return step_; }

    /** Restores the step counter (part of checkpointed "other state"). */
    void set_step_count(std::size_t step) { step_ = step; }

    const AdamConfig& config() const { return config_; }

  private:
    AdamConfig config_;
    std::size_t step_ = 0;
};

}  // namespace moc

#endif  // MOC_NN_ADAM_H_
