#ifndef MOC_NN_LAYERNORM_H_
#define MOC_NN_LAYERNORM_H_

/**
 * @file
 * Layer normalization module wrapping the tensor kernels with parameter
 * storage and activation caching.
 */

#include <string>
#include <vector>

#include "nn/parameter.h"

namespace moc {

/** LayerNorm over the last dimension with learnable gain/bias. */
class LayerNorm {
  public:
    LayerNorm(std::string name, std::size_t dim);

    Tensor Forward(const Tensor& x);
    Tensor Backward(const Tensor& dy);

    Parameter& gain() { return gain_; }
    Parameter& bias() { return bias_; }

    void CollectParams(std::vector<Parameter*>& out);

  private:
    Parameter gain_;
    Parameter bias_;
    Tensor cached_input_;
    std::vector<float> mean_;
    std::vector<float> rstd_;
};

}  // namespace moc

#endif  // MOC_NN_LAYERNORM_H_
