#ifndef MOC_NN_BLOCK_H_
#define MOC_NN_BLOCK_H_

/**
 * @file
 * One pre-norm transformer block whose FFN sublayer is either dense or MoE.
 */

#include <memory>
#include <string>

#include "nn/attention.h"
#include "nn/ffn.h"
#include "nn/layernorm.h"
#include "nn/moe_layer.h"

namespace moc {

/** Configuration of one block. */
struct BlockConfig {
    std::size_t hidden = 64;
    std::size_t num_heads = 2;
    std::size_t head_dim = 32;
    std::size_t ffn_mult = 4;
    bool causal = true;
    /** Non-null iff this block's FFN is an MoE layer. */
    bool is_moe = false;
    MoeLayerConfig moe;
};

/**
 * x -> x + Attn(LN1(x)) -> y + FFN/MoE(LN2(y)).
 */
class TransformerBlock {
  public:
    TransformerBlock(std::string name, const BlockConfig& config, Rng& rng,
                     float init_std);

    Tensor Forward(const Tensor& x, std::size_t batch, std::size_t seq, bool train,
                   Rng& rng);
    Tensor Backward(const Tensor& dy);

    bool is_moe() const { return moe_ != nullptr; }
    MoeLayer* moe() { return moe_.get(); }
    LayerNorm& ln() { return ln1_; }

    /** Non-expert parameters of the block (both LNs, attention, dense FFN or gate). */
    void CollectNonExpertParams(std::vector<Parameter*>& ln_out,
                                std::vector<Parameter*>& attn_out,
                                std::vector<Parameter*>& ffn_or_gate_out);

  private:
    LayerNorm ln1_;
    MultiHeadAttention attn_;
    LayerNorm ln2_;
    std::unique_ptr<Ffn> ffn_;
    std::unique_ptr<MoeLayer> moe_;
};

}  // namespace moc

#endif  // MOC_NN_BLOCK_H_
