#ifndef MOC_FAULTS_TRAINER_H_
#define MOC_FAULTS_TRAINER_H_

/**
 * @file
 * End-to-end fault-tolerant training drivers: the integration of the real
 * MoE training stack with the MoC checkpoint system and fault injection.
 * These drive the accuracy experiments (Figs. 5, 14, 15; Tables 3, 4).
 */

#include <vector>

#include "core/moc_system.h"
#include "data/classification.h"
#include "faults/injector.h"
#include "faults/storage_faults.h"
#include "nn/adam.h"
#include "nn/classifier.h"
#include "nn/eval.h"
#include "nn/model.h"

namespace moc {

/** Configuration of a fault-tolerant LM pre-training run. */
struct LmTrainerConfig {
    MocSystemConfig moc;
    ParallelConfig parallel{.dp = 8, .ep = 8, .tp = 1, .pp = 1};
    std::size_t gpus_per_node = 4;
    std::size_t total_iterations = 256;
    AdamConfig adam;
    /** Validation batches per evaluation. */
    std::size_t eval_batches = 4;
    /** Evaluate every this many iterations (0 = final eval only). */
    std::size_t eval_every = 0;
    /**
     * Iteration-scheduled storage-fault windows over the checkpoint
     * backend (nullptr = healthy storage). The schedule's FaultyStore must
     * be the system's persist backend (moc.persist_backend) to matter.
     */
    StorageFaultSchedule* storage_faults = nullptr;
};

/** What one training run produced. */
struct TrainLog {
    /** (iteration, training loss) samples, in execution order. */
    std::vector<std::pair<std::size_t, double>> train_losses;
    /** (iteration, validation loss) samples. */
    std::vector<std::pair<std::size_t, double>> eval_losses;
    double final_eval_loss = 0.0;
    /** Ledger PLT at the end of training. */
    double plt = 0.0;
    std::vector<RecoveryReport> recoveries;
    std::size_t checkpoints = 0;
};

/**
 * Runs fault-tolerant LM pre-training: train step, routing accounting,
 * periodic PEC checkpointing, fault injection with two-level recovery, and
 * deterministic replay from the restart point.
 */
TrainLog RunFaultTolerantLmTraining(MoeTransformerLm& model,
                                    const LmBatchStream& train_stream,
                                    const LmBatchStream& valid_stream,
                                    const LmTrainerConfig& config,
                                    FaultInjector& injector);

/** Configuration of a fault-tolerant classifier run (the Fig. 14b stand-in). */
struct ClassifierTrainerConfig {
    MocSystemConfig moc;
    ParallelConfig parallel{.dp = 8, .ep = 8, .tp = 1, .pp = 1};
    std::size_t gpus_per_node = 4;
    std::size_t epochs = 10;
    std::size_t steps_per_epoch = 16;
    std::size_t batch = 16;
    std::size_t test_examples = 128;
    AdamConfig adam;
};

/** Per-epoch accuracy log of a classifier run. */
struct ClassifierLog {
    /** test accuracy at the end of each epoch. */
    std::vector<double> epoch_accuracy;
    double plt = 0.0;
    std::size_t recoveries = 0;
};

/**
 * Runs fault-tolerant classifier training with faults injected at epoch
 * boundaries (epochs listed in @p fault_epochs fail node 1).
 */
ClassifierLog RunFaultTolerantClassifierTraining(
    MoeClassifier& model, const ClassificationDataset& data,
    const ClassifierTrainerConfig& config, const std::vector<std::size_t>& fault_epochs);

}  // namespace moc

#endif  // MOC_FAULTS_TRAINER_H_
