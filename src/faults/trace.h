#ifndef MOC_FAULTS_TRACE_H_
#define MOC_FAULTS_TRACE_H_

/**
 * @file
 * Failure-trace parsing: build a FaultInjector from a textual trace, so
 * recorded production failure logs (or hand-written scenarios) drive the
 * fault-tolerant trainer.
 *
 * Format: one event per line, `<iteration> <node>[,<node>...]`;
 * blank lines and `#` comments are ignored.
 *
 *     # midpoint single-node fault, then a correlated double failure
 *     512 0
 *     1500 0,1
 */

#include <string>

#include "faults/injector.h"

namespace moc {

/**
 * Parses a failure trace.
 * @throws std::invalid_argument on malformed lines.
 */
FaultInjector ParseFaultTrace(const std::string& text);

/** Loads and parses a trace file from disk. */
FaultInjector LoadFaultTrace(const std::string& path);

/** Renders a schedule back to the trace format (round-trip with Parse). */
std::string FormatFaultTrace(const FaultInjector& injector);

}  // namespace moc

#endif  // MOC_FAULTS_TRACE_H_
