#ifndef MOC_FAULTS_INJECTOR_H_
#define MOC_FAULTS_INJECTOR_H_

/**
 * @file
 * Fault injection for fault-tolerant training experiments: deterministic
 * schedules ("a fault at the midpoint", "every 2k iterations") and Poisson
 * arrivals under a constant failure rate (Eq. 11).
 */

#include <optional>
#include <vector>

#include "dist/topology.h"
#include "util/rng.h"

namespace moc {

/** One fault: the given nodes crash after @p iteration completes. */
struct FaultEvent {
    std::size_t iteration = 0;
    std::vector<NodeId> nodes;
};

/**
 * A consumable schedule of fault events. Each event fires once, the first
 * time training passes its iteration — replayed iterations after a recovery
 * do not re-trigger it (faults are wall-clock events, not data events).
 */
class FaultInjector {
  public:
    /** Explicit schedule. */
    explicit FaultInjector(std::vector<FaultEvent> events);

    /** Single fault of @p node after @p iteration. */
    static FaultInjector At(std::size_t iteration, NodeId node);

    /** A fault of @p node every @p period iterations, up to @p total. */
    static FaultInjector Every(std::size_t period, std::size_t total, NodeId node);

    /**
     * Poisson arrivals with @p faults_per_iteration rate over @p total
     * iterations; each fault hits a uniformly random node.
     */
    static FaultInjector Poisson(double faults_per_iteration, std::size_t total,
                                 std::size_t num_nodes, std::uint64_t seed);

    /**
     * Returns the fault firing right after @p iteration completes (if any),
     * consuming it.
     */
    std::optional<FaultEvent> Poll(std::size_t iteration);

    /** Events not yet fired. */
    std::size_t remaining() const;

    const std::vector<FaultEvent>& events() const { return events_; }

  private:
    std::vector<FaultEvent> events_;
    std::vector<bool> fired_;
};

}  // namespace moc

#endif  // MOC_FAULTS_INJECTOR_H_
