#ifndef MOC_FAULTS_PROC_FAULTS_H_
#define MOC_FAULTS_PROC_FAULTS_H_

/**
 * @file
 * Process-level fault self-injection for the multi-process gauntlet
 * (examples/cluster_procs via tools/moc_launcher): a rank process carries a
 * schedule of "kill or stop yourself at this point" specs and polls it at
 * instrumented points of the checkpoint loop, the process-grade sibling of
 * StorageFaultSchedule's iteration windows.
 *
 *  - kill: raise(SIGKILL) — the process vanishes mid-write; its peer sees
 *    connection EOF and declares death immediately. Models a crashed rank.
 *  - stop: raise(SIGSTOP) — the process freezes with its sockets open;
 *    its peer hears nothing and declares death by heartbeat timeout.
 *    Models a partitioned or wedged rank. (The launcher SIGKILLs stopped
 *    children on teardown; SIGKILL works on stopped processes.)
 *
 * Specs parse from launcher flags: "kill:rank=1:event=2:phase=persist:after=3"
 * means rank 1 SIGKILLs itself during checkpoint event 2's persist phase
 * after 3 shards landed. Phases: "persist" (polled per shard, `after`
 * counts shards already written) and "barrier" (polled once, right before
 * kRankDone would be sent — the shards all landed but the coordinator
 * never hears; `after` is ignored).
 *
 * A "respawn:..." spec is a kill at the poll site; the difference lives in
 * tools/moc_launcher, which re-forks a respawn-marked rank after its
 * signal death so it can run the elastic rejoin handshake.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace moc {

/** What the faulty process does to itself. */
enum class ProcFaultAction {
    kKill,  ///< raise(SIGKILL): vanish, peers see EOF
    kStop,  ///< raise(SIGSTOP): freeze, peers see heartbeat silence
    kRespawn, ///< raise(SIGKILL), but the spec also tells the launcher to
              ///< re-fork the rank — the elastic rejoin scenario: die
              ///< mid-persist, come back with a fresh epoch, ask back in
              ///< over kJoinRequest (docs/FAULT_MODEL.md)
};

/** One scheduled process fault. */
struct ProcFaultSpec {
    ProcFaultAction action = ProcFaultAction::kKill;
    /** Rank that injures itself. */
    std::size_t rank = 0;
    /** Checkpoint event (iteration) the fault fires in. */
    std::size_t event = 0;
    /** Poll point: "persist" or "barrier". */
    std::string phase = "persist";
    /** Shards persisted before the fault fires (persist phase only). */
    std::size_t after_shards = 0;
};

/**
 * Parses "kill:rank=1:event=2:phase=persist:after=3" (phase and after
 * optional). @throws std::invalid_argument on junk.
 */
ProcFaultSpec ParseProcFaultSpec(const std::string& text);

/** Human-readable round trip of @p spec, for logs. */
std::string ProcFaultSpecString(const ProcFaultSpec& spec);

/**
 * The schedule one rank process polls. Poll() raises the configured signal
 * when (event, phase, shards_done) matches a spec for this rank — it does
 * not return from a kill, and returns (much) later from a stop.
 */
class ProcFaultSchedule {
  public:
    ProcFaultSchedule(std::vector<ProcFaultSpec> specs, std::size_t self_rank);

    /**
     * Fires any spec matching this rank at (@p event, @p phase,
     * @p shards_done). Each spec fires at most once per process life.
     */
    void Poll(std::size_t event, const char* phase, std::size_t shards_done = 0);

    /** Specs this rank still carries (for logs). */
    std::size_t pending() const;

  private:
    struct Armed {
        ProcFaultSpec spec;
        bool fired = false;
    };

    std::vector<Armed> armed_;
    std::size_t self_rank_;
};

}  // namespace moc

#endif  // MOC_FAULTS_PROC_FAULTS_H_
