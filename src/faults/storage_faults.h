#ifndef MOC_FAULTS_STORAGE_FAULTS_H_
#define MOC_FAULTS_STORAGE_FAULTS_H_

/**
 * @file
 * Iteration-scheduled storage-fault windows: arms and disarms a FaultyStore
 * as training crosses configured iteration ranges, so an experiment can say
 * "the checkpoint backend is flaky between iterations 40 and 80" the same
 * way FaultInjector says "node 2 dies at iteration 100". Every transition
 * is journaled as a storage_fault event.
 */

#include <cstddef>
#include <vector>

#include "storage/faulty_store.h"

namespace moc {

/** One contiguous window of storage trouble. */
struct StorageFaultWindow {
    /** First iteration (inclusive) the profile is armed. */
    std::size_t begin_iteration = 0;
    /** First iteration (exclusive) the store is healthy again. */
    std::size_t end_iteration = 0;
    StorageFaultProfile profile;
};

/**
 * Applies fault windows to one FaultyStore as iterations advance. Windows
 * may not overlap; Apply must see non-decreasing iterations (a training
 * loop replaying after recovery simply re-applies the current window).
 */
class StorageFaultSchedule {
  public:
    /** @throws std::invalid_argument on overlapping or empty windows. */
    StorageFaultSchedule(FaultyStore& store,
                         std::vector<StorageFaultWindow> windows);

    /**
     * Arms/disarms the store for @p iteration. Safe to call every
     * iteration; transitions are journaled once.
     */
    void Apply(std::size_t iteration);

    /** The window covering @p iteration, if any. */
    const StorageFaultWindow* WindowAt(std::size_t iteration) const;

  private:
    FaultyStore& store_;
    std::vector<StorageFaultWindow> windows_;
    /** Index into windows_ of the armed window, or npos. */
    std::size_t armed_window_ = kNone;

    static constexpr std::size_t kNone = static_cast<std::size_t>(-1);
};

}  // namespace moc

#endif  // MOC_FAULTS_STORAGE_FAULTS_H_
