#include "faults/storage_faults.h"

#include <algorithm>
#include <string>

#include "obs/journal.h"
#include "util/logging.h"

namespace moc {

StorageFaultSchedule::StorageFaultSchedule(
    FaultyStore& store, std::vector<StorageFaultWindow> windows)
    : store_(store), windows_(std::move(windows)) {
    std::sort(windows_.begin(), windows_.end(),
              [](const StorageFaultWindow& a, const StorageFaultWindow& b) {
                  return a.begin_iteration < b.begin_iteration;
              });
    for (std::size_t i = 0; i < windows_.size(); ++i) {
        MOC_CHECK_ARG(windows_[i].begin_iteration < windows_[i].end_iteration,
                      "storage-fault window " << i << " is empty");
        MOC_CHECK_ARG(i == 0 || windows_[i - 1].end_iteration <=
                                    windows_[i].begin_iteration,
                      "storage-fault windows overlap");
    }
}

const StorageFaultWindow*
StorageFaultSchedule::WindowAt(std::size_t iteration) const {
    for (const auto& window : windows_) {
        if (iteration >= window.begin_iteration &&
            iteration < window.end_iteration) {
            return &window;
        }
    }
    return nullptr;
}

void
StorageFaultSchedule::Apply(std::size_t iteration) {
    std::size_t current = kNone;
    for (std::size_t i = 0; i < windows_.size(); ++i) {
        if (iteration >= windows_[i].begin_iteration &&
            iteration < windows_[i].end_iteration) {
            current = i;
            break;
        }
    }
    if (current == armed_window_) {
        return;
    }
    auto& journal = obs::EventJournal::Instance();
    if (current == kNone) {
        store_.Disarm();
        journal.Append({.kind = obs::EventKind::kStorageFault,
                        .iteration = iteration,
                        .detail = "storage faults disarmed"});
    } else {
        store_.Arm(windows_[current].profile);
        journal.Append(
            {.kind = obs::EventKind::kStorageFault,
             .iteration = iteration,
             .detail = "storage faults armed for iterations [" +
                       std::to_string(windows_[current].begin_iteration) +
                       ", " +
                       std::to_string(windows_[current].end_iteration) + ")"});
    }
    armed_window_ = current;
}

}  // namespace moc
