#include "faults/proc_faults.h"

#include <csignal>
#include <cstring>
#include <sstream>

#include "util/logging.h"

namespace moc {

namespace {

/** Splits "a:b:c" on ':'. */
std::vector<std::string>
SplitColon(const std::string& text) {
    std::vector<std::string> parts;
    std::string part;
    std::istringstream in(text);
    while (std::getline(in, part, ':')) {
        parts.push_back(part);
    }
    return parts;
}

std::size_t
ParseCount(const std::string& value, const char* what) {
    try {
        std::size_t pos = 0;
        const unsigned long long n = std::stoull(value, &pos);
        MOC_CHECK_ARG(pos == value.size(), "trailing junk in " << what);
        return static_cast<std::size_t>(n);
    } catch (const std::invalid_argument&) {
        throw;
    } catch (const std::exception&) {
        throw std::invalid_argument(std::string("bad ") + what + " '" +
                                    value + "'");
    }
}

}  // namespace

ProcFaultSpec
ParseProcFaultSpec(const std::string& text) {
    const std::vector<std::string> parts = SplitColon(text);
    MOC_CHECK_ARG(!parts.empty(), "empty fault spec");
    ProcFaultSpec spec;
    if (parts[0] == "kill") {
        spec.action = ProcFaultAction::kKill;
    } else if (parts[0] == "stop") {
        spec.action = ProcFaultAction::kStop;
    } else if (parts[0] == "respawn") {
        spec.action = ProcFaultAction::kRespawn;
    } else {
        throw std::invalid_argument(
            "fault action must be kill|stop|respawn, got '" + parts[0] + "'");
    }
    bool have_rank = false;
    bool have_event = false;
    for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::size_t eq = parts[i].find('=');
        MOC_CHECK_ARG(eq != std::string::npos,
                      "fault spec field '" << parts[i] << "' is not key=value");
        const std::string key = parts[i].substr(0, eq);
        const std::string value = parts[i].substr(eq + 1);
        if (key == "rank") {
            spec.rank = ParseCount(value, "fault rank");
            have_rank = true;
        } else if (key == "event") {
            spec.event = ParseCount(value, "fault event");
            have_event = true;
        } else if (key == "phase") {
            MOC_CHECK_ARG(value == "persist" || value == "barrier",
                          "fault phase must be persist|barrier, got '"
                              << value << "'");
            spec.phase = value;
        } else if (key == "after") {
            spec.after_shards = ParseCount(value, "fault after count");
        } else {
            throw std::invalid_argument("unknown fault spec key '" + key +
                                        "'");
        }
    }
    MOC_CHECK_ARG(have_rank && have_event,
                  "fault spec needs rank= and event=");
    return spec;
}

std::string
ProcFaultSpecString(const ProcFaultSpec& spec) {
    std::ostringstream out;
    const char* action = spec.action == ProcFaultAction::kKill    ? "kill"
                         : spec.action == ProcFaultAction::kStop ? "stop"
                                                                 : "respawn";
    out << action << ":rank=" << spec.rank << ":event=" << spec.event
        << ":phase=" << spec.phase;
    if (spec.phase == "persist") {
        out << ":after=" << spec.after_shards;
    }
    return out.str();
}

ProcFaultSchedule::ProcFaultSchedule(std::vector<ProcFaultSpec> specs,
                                     std::size_t self_rank)
    : self_rank_(self_rank) {
    armed_.reserve(specs.size());
    for (auto& spec : specs) {
        armed_.push_back(Armed{std::move(spec), false});
    }
}

void
ProcFaultSchedule::Poll(std::size_t event, const char* phase,
                        std::size_t shards_done) {
    for (auto& armed : armed_) {
        const ProcFaultSpec& spec = armed.spec;
        if (armed.fired || spec.rank != self_rank_ || spec.event != event ||
            spec.phase != phase) {
            continue;
        }
        if (spec.phase == "persist" && shards_done < spec.after_shards) {
            continue;
        }
        armed.fired = true;
        // The log line lands before the signal so a gauntlet transcript
        // shows what was injected even when the process never returns.
        MOC_WARN << "proc-fault: rank " << self_rank_ << " firing "
                 << ProcFaultSpecString(spec) << " (shards_done="
                 << shards_done << ")";
        if (spec.action == ProcFaultAction::kStop) {
            std::raise(SIGSTOP);
        } else {
            // kill and respawn both vanish here; only the launcher treats
            // them differently (respawn re-forks the rank).
            std::raise(SIGKILL);
        }
    }
}

std::size_t
ProcFaultSchedule::pending() const {
    std::size_t n = 0;
    for (const auto& armed : armed_) {
        if (!armed.fired && armed.spec.rank == self_rank_) {
            ++n;
        }
    }
    return n;
}

}  // namespace moc
