#include "faults/trainer.h"

#include <algorithm>
#include <map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace moc {

namespace {

/** Fault/recovery event accounting shared by both trainer drivers. */
void
RecordFaultMetrics(const RecoveryReport& report, std::size_t lost_iterations) {
    auto& registry = obs::MetricsRegistry::Instance();
    static obs::Counter& injected = registry.GetCounter("faults.injected");
    static obs::Counter& replayed =
        registry.GetCounter("faults.replayed_iterations");
    static obs::Gauge& plt = registry.GetGauge("faults.plt_after_recovery");
    injected.Add();
    replayed.Add(lost_iterations);
    plt.Set(report.plt);
}

}  // namespace

TrainLog
RunFaultTolerantLmTraining(MoeTransformerLm& model, const LmBatchStream& train_stream,
                           const LmBatchStream& valid_stream,
                           const LmTrainerConfig& config, FaultInjector& injector) {
    RankTopology topology(config.parallel, config.gpus_per_node);
    const ModelSpec spec = model.config().ToModelSpec();
    Adam adam(config.adam);
    const auto params = model.AllParameters();

    ExtraState initial{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(config.moc, model, topology, spec, initial);

    TrainLog log;
    std::size_t iter = 0;
    static obs::Counter& iterations =
        obs::MetricsRegistry::Instance().GetCounter("train.iterations");
    while (iter < config.total_iterations) {
        const obs::TraceSpan iter_span("train.iteration", "train");
        iterations.Add();
        const LmBatch batch = train_stream.Get(iter);
        const double loss = model.TrainBackward(batch);
        system.RecordRouting(model.MoeLayers());
        adam.Step(params);
        ++iter;
        log.train_losses.emplace_back(iter, loss);

        if (system.ShouldCheckpoint(iter)) {
            const ExtraState extra{iter, adam.step_count(),
                                   model.gating_rng().GetState()};
            system.Checkpoint(iter, extra);
            ++log.checkpoints;
        }

        if (auto fault = injector.Poll(iter)) {
            const obs::TraceSpan span("trainer.fault_recovery", "fault");
            RecoveryReport report = system.RecoverFromFault(fault->nodes);
            adam.set_step_count(report.extra.adam_step);
            model.gating_rng().SetState(report.extra.gating_rng);
            RecordFaultMetrics(report, iter - report.extra.iteration);
            iter = report.extra.iteration;
            log.recoveries.push_back(std::move(report));
            continue;
        }

        if (config.eval_every != 0 && iter % config.eval_every == 0) {
            log.eval_losses.emplace_back(
                iter, EvalStreamLoss(model, valid_stream, config.eval_batches));
        }
    }
    log.final_eval_loss = EvalStreamLoss(model, valid_stream, config.eval_batches);
    log.plt = system.ledger().Plt();
    return log;
}

ClassifierLog
RunFaultTolerantClassifierTraining(MoeClassifier& model,
                                   const ClassificationDataset& data,
                                   const ClassifierTrainerConfig& config,
                                   const std::vector<std::size_t>& fault_epochs) {
    RankTopology topology(config.parallel, config.gpus_per_node);
    // A spec that matches the classifier's expert layout for the ledger and
    // checkpoint planning (the extra "head" group places on rank 0).
    ModelSpec spec;
    spec.name = "classifier";
    spec.num_layers = model.config().num_layers;
    spec.hidden = model.config().hidden;
    spec.num_heads = model.config().num_heads;
    spec.head_dim = model.config().head_dim;
    spec.ffn_mult = model.config().ffn_mult;
    spec.vocab = model.config().vocab;
    spec.max_seq = model.config().max_seq;
    spec.num_experts = model.config().num_experts;
    spec.moe_every = model.config().moe_every;
    spec.moe_offset = model.config().moe_offset;
    spec.top_k = model.config().top_k;

    Adam adam(config.adam);
    const auto params = model.AllParameters();
    ExtraState initial{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(config.moc, model, topology, spec, initial);

    const std::size_t total = config.epochs * config.steps_per_epoch;
    const auto test_set = data.GetBatch(/*split=*/1, 0, config.test_examples);

    std::map<std::size_t, double> epoch_acc;
    ClassifierLog log;
    std::vector<std::size_t> pending_faults = fault_epochs;

    std::size_t iter = 0;
    while (iter < total) {
        const auto batch =
            data.GetBatch(/*split=*/0, iter * config.batch, config.batch);
        model.TrainBackward(batch);
        system.RecordRouting(model.MoeLayers());
        adam.Step(params);
        ++iter;

        if (system.ShouldCheckpoint(iter)) {
            const ExtraState extra{iter, adam.step_count(),
                                   model.gating_rng().GetState()};
            system.Checkpoint(iter, extra);
        }

        if (iter % config.steps_per_epoch == 0) {
            const std::size_t epoch = iter / config.steps_per_epoch;
            epoch_acc[epoch] = model.EvalAccuracy(test_set);
            auto it = std::find(pending_faults.begin(), pending_faults.end(), epoch);
            if (it != pending_faults.end()) {
                pending_faults.erase(it);
                const obs::TraceSpan span("trainer.fault_recovery", "fault");
                RecoveryReport report = system.RecoverFromFault({1});
                adam.set_step_count(report.extra.adam_step);
                model.gating_rng().SetState(report.extra.gating_rng);
                RecordFaultMetrics(report, iter - report.extra.iteration);
                iter = report.extra.iteration;
                ++log.recoveries;
            }
        }
    }

    log.epoch_accuracy.reserve(epoch_acc.size());
    for (const auto& [epoch, acc] : epoch_acc) {
        log.epoch_accuracy.push_back(acc);
    }
    log.plt = system.ledger().Plt();
    return log;
}

}  // namespace moc
