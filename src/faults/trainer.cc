#include "faults/trainer.h"

#include <algorithm>
#include <map>

#include "obs/expert_stats.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace moc {

namespace {

/** Fault/recovery event accounting shared by both trainer drivers. */
void
RecordFaultMetrics(const RecoveryReport& report, std::size_t lost_iterations) {
    auto& registry = obs::MetricsRegistry::Instance();
    static obs::Counter& injected = registry.GetCounter("faults.injected");
    static obs::Counter& replayed =
        registry.GetCounter("faults.replayed_iterations");
    static obs::Gauge& plt = registry.GetGauge("faults.plt_after_recovery");
    injected.Add();
    replayed.Add(lost_iterations);
    plt.Set(report.plt);
}

/** Per-iteration accounting shared by both trainer drivers. */
void
RecordIterationMetrics(std::size_t iteration, Seconds duration) {
    auto& registry = obs::MetricsRegistry::Instance();
    static obs::Counter& iterations = registry.GetCounter("train.iterations");
    static obs::Gauge& position = registry.GetGauge("train.iteration");
    static obs::Histogram& seconds =
        registry.GetHistogram("train.iteration_seconds");
    iterations.Add();
    position.Set(static_cast<double>(iteration));
    seconds.Observe(duration);
    // Anchor the staleness matrix to training progress, not just the last
    // checkpoint, so exports mid-interval read correctly.
    obs::ExpertStatsRegistry::Instance().SetIteration(iteration);
    // Feed the live trajectory ring the HTTP endpoint serves as /series.
    obs::SampleIteration(iteration, duration);
}

/** Monotonic wall seconds for iteration timing. */
Seconds
NowSeconds() {
    return static_cast<double>(obs::Tracer::NowNs()) / 1e9;
}

}  // namespace

TrainLog
RunFaultTolerantLmTraining(MoeTransformerLm& model, const LmBatchStream& train_stream,
                           const LmBatchStream& valid_stream,
                           const LmTrainerConfig& config, FaultInjector& injector) {
    RankTopology topology(config.parallel, config.gpus_per_node);
    const ModelSpec spec = model.config().ToModelSpec();
    Adam adam(config.adam);
    const auto params = model.AllParameters();

    ExtraState initial{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(config.moc, model, topology, spec, initial);

    TrainLog log;
    std::size_t iter = 0;
    while (iter < config.total_iterations) {
        const obs::TraceSpan iter_span("train.iteration", "train");
        const Seconds iter_start = NowSeconds();
        if (config.storage_faults != nullptr) {
            config.storage_faults->Apply(iter);
        }
        const LmBatch batch = train_stream.Get(iter);
        const double loss = model.TrainBackward(batch);
        system.RecordRouting(model.MoeLayers());
        adam.Step(params);
        ++iter;
        RecordIterationMetrics(iter, NowSeconds() - iter_start);
        log.train_losses.emplace_back(iter, loss);

        if (system.ShouldCheckpoint(iter)) {
            const ExtraState extra{iter, adam.step_count(),
                                   model.gating_rng().GetState()};
            system.Checkpoint(iter, extra);
            ++log.checkpoints;
        }

        if (auto fault = injector.Poll(iter)) {
            const obs::TraceSpan span("trainer.fault_recovery", "fault");
            RecoveryReport report = system.RecoverFromFault(fault->nodes);
            adam.set_step_count(report.extra.adam_step);
            model.gating_rng().SetState(report.extra.gating_rng);
            RecordFaultMetrics(report, iter - report.extra.iteration);
            iter = report.extra.iteration;
            log.recoveries.push_back(std::move(report));
            continue;
        }

        if (config.eval_every != 0 && iter % config.eval_every == 0) {
            log.eval_losses.emplace_back(
                iter, EvalStreamLoss(model, valid_stream, config.eval_batches));
        }
    }
    log.final_eval_loss = EvalStreamLoss(model, valid_stream, config.eval_batches);
    log.plt = system.ledger().Plt();
    return log;
}

ClassifierLog
RunFaultTolerantClassifierTraining(MoeClassifier& model,
                                   const ClassificationDataset& data,
                                   const ClassifierTrainerConfig& config,
                                   const std::vector<std::size_t>& fault_epochs) {
    RankTopology topology(config.parallel, config.gpus_per_node);
    // A spec that matches the classifier's expert layout for the ledger and
    // checkpoint planning (the extra "head" group places on rank 0).
    ModelSpec spec;
    spec.name = "classifier";
    spec.num_layers = model.config().num_layers;
    spec.hidden = model.config().hidden;
    spec.num_heads = model.config().num_heads;
    spec.head_dim = model.config().head_dim;
    spec.ffn_mult = model.config().ffn_mult;
    spec.vocab = model.config().vocab;
    spec.max_seq = model.config().max_seq;
    spec.num_experts = model.config().num_experts;
    spec.moe_every = model.config().moe_every;
    spec.moe_offset = model.config().moe_offset;
    spec.top_k = model.config().top_k;

    Adam adam(config.adam);
    const auto params = model.AllParameters();
    ExtraState initial{0, 0, model.gating_rng().GetState()};
    MocCheckpointSystem system(config.moc, model, topology, spec, initial);

    const std::size_t total = config.epochs * config.steps_per_epoch;
    const auto test_set = data.GetBatch(/*split=*/1, 0, config.test_examples);

    std::map<std::size_t, double> epoch_acc;
    ClassifierLog log;
    std::vector<std::size_t> pending_faults = fault_epochs;

    std::size_t iter = 0;
    while (iter < total) {
        const Seconds iter_start = NowSeconds();
        const auto batch =
            data.GetBatch(/*split=*/0, iter * config.batch, config.batch);
        model.TrainBackward(batch);
        system.RecordRouting(model.MoeLayers());
        adam.Step(params);
        ++iter;
        RecordIterationMetrics(iter, NowSeconds() - iter_start);

        if (system.ShouldCheckpoint(iter)) {
            const ExtraState extra{iter, adam.step_count(),
                                   model.gating_rng().GetState()};
            system.Checkpoint(iter, extra);
        }

        if (iter % config.steps_per_epoch == 0) {
            const std::size_t epoch = iter / config.steps_per_epoch;
            epoch_acc[epoch] = model.EvalAccuracy(test_set);
            auto it = std::find(pending_faults.begin(), pending_faults.end(), epoch);
            if (it != pending_faults.end()) {
                pending_faults.erase(it);
                const obs::TraceSpan span("trainer.fault_recovery", "fault");
                RecoveryReport report = system.RecoverFromFault({1});
                adam.set_step_count(report.extra.adam_step);
                model.gating_rng().SetState(report.extra.gating_rng);
                RecordFaultMetrics(report, iter - report.extra.iteration);
                iter = report.extra.iteration;
                ++log.recoveries;
            }
        }
    }

    log.epoch_accuracy.reserve(epoch_acc.size());
    for (const auto& [epoch, acc] : epoch_acc) {
        log.epoch_accuracy.push_back(acc);
    }
    log.plt = system.ledger().Plt();
    return log;
}

}  // namespace moc
