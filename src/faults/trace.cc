#include "faults/trace.h"

#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace moc {

namespace {

std::string
Trim(const std::string& s) {
    const auto begin = s.find_first_not_of(" \t\r");
    if (begin == std::string::npos) {
        return "";
    }
    const auto end = s.find_last_not_of(" \t\r");
    return s.substr(begin, end - begin + 1);
}

std::vector<NodeId>
ParseNodeList(const std::string& text, int line_no) {
    std::vector<NodeId> nodes;
    std::stringstream ss(text);
    std::string part;
    while (std::getline(ss, part, ',')) {
        part = Trim(part);
        MOC_CHECK_ARG(!part.empty() &&
                          part.find_first_not_of("0123456789") == std::string::npos,
                      "trace line " << line_no << ": bad node id '" << part << "'");
        nodes.push_back(static_cast<NodeId>(std::stoull(part)));
    }
    MOC_CHECK_ARG(!nodes.empty(), "trace line " << line_no << ": no nodes");
    return nodes;
}

}  // namespace

FaultInjector
ParseFaultTrace(const std::string& text) {
    std::vector<FaultEvent> events;
    std::stringstream ss(text);
    std::string line;
    int line_no = 0;
    while (std::getline(ss, line)) {
        ++line_no;
        const auto hash = line.find('#');
        if (hash != std::string::npos) {
            line = line.substr(0, hash);
        }
        line = Trim(line);
        if (line.empty()) {
            continue;
        }
        const auto space = line.find_first_of(" \t");
        MOC_CHECK_ARG(space != std::string::npos,
                      "trace line " << line_no << ": expected '<iter> <nodes>'");
        const std::string iter_text = Trim(line.substr(0, space));
        MOC_CHECK_ARG(
            !iter_text.empty() &&
                iter_text.find_first_not_of("0123456789") == std::string::npos,
            "trace line " << line_no << ": bad iteration '" << iter_text << "'");
        FaultEvent event;
        event.iteration = static_cast<std::size_t>(std::stoull(iter_text));
        event.nodes = ParseNodeList(Trim(line.substr(space + 1)), line_no);
        events.push_back(std::move(event));
    }
    return FaultInjector(std::move(events));
}

FaultInjector
LoadFaultTrace(const std::string& path) {
    std::ifstream in(path);
    MOC_CHECK_ARG(static_cast<bool>(in), "cannot open fault trace: " << path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return ParseFaultTrace(buffer.str());
}

std::string
FormatFaultTrace(const FaultInjector& injector) {
    std::ostringstream out;
    for (const auto& event : injector.events()) {
        out << event.iteration << " ";
        for (std::size_t i = 0; i < event.nodes.size(); ++i) {
            out << (i ? "," : "") << event.nodes[i];
        }
        out << "\n";
    }
    return out.str();
}

}  // namespace moc
