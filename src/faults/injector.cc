#include "faults/injector.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace moc {

FaultInjector::FaultInjector(std::vector<FaultEvent> events)
    : events_(std::move(events)), fired_(events_.size(), false) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                         return a.iteration < b.iteration;
                     });
}

FaultInjector
FaultInjector::At(std::size_t iteration, NodeId node) {
    return FaultInjector({FaultEvent{iteration, {node}}});
}

FaultInjector
FaultInjector::Every(std::size_t period, std::size_t total, NodeId node) {
    MOC_CHECK_ARG(period >= 1, "period must be >= 1");
    std::vector<FaultEvent> events;
    for (std::size_t i = period; i < total; i += period) {
        events.push_back(FaultEvent{i, {node}});
    }
    return FaultInjector(std::move(events));
}

FaultInjector
FaultInjector::Poisson(double faults_per_iteration, std::size_t total,
                       std::size_t num_nodes, std::uint64_t seed) {
    MOC_CHECK_ARG(faults_per_iteration > 0.0, "rate must be > 0");
    MOC_CHECK_ARG(num_nodes >= 1, "need at least one node");
    Rng rng(seed);
    std::vector<FaultEvent> events;
    double t = 0.0;
    for (;;) {
        t += rng.Exponential(faults_per_iteration);
        const auto iteration = static_cast<std::size_t>(std::ceil(t));
        if (iteration >= total) {
            break;
        }
        events.push_back(
            FaultEvent{iteration, {static_cast<NodeId>(rng.UniformInt(num_nodes))}});
    }
    return FaultInjector(std::move(events));
}

std::optional<FaultEvent>
FaultInjector::Poll(std::size_t iteration) {
    for (std::size_t i = 0; i < events_.size(); ++i) {
        if (!fired_[i] && events_[i].iteration == iteration) {
            fired_[i] = true;
            return events_[i];
        }
    }
    return std::nullopt;
}

std::size_t
FaultInjector::remaining() const {
    std::size_t count = 0;
    for (std::size_t i = 0; i < events_.size(); ++i) {
        if (!fired_[i]) {
            ++count;
        }
    }
    return count;
}

}  // namespace moc
