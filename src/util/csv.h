#ifndef MOC_UTIL_CSV_H_
#define MOC_UTIL_CSV_H_

/**
 * @file
 * Minimal CSV emission for the benchmark harnesses: every figure/table
 * binary can drop a machine-readable copy of its series next to the printed
 * table, so plots can be regenerated without scraping stdout.
 */

#include <string>
#include <vector>

namespace moc {

/**
 * Accumulates rows and writes an RFC-4180-ish CSV file (quotes fields
 * containing commas, quotes, or newlines).
 */
class CsvWriter {
  public:
    explicit CsvWriter(std::vector<std::string> header);

    /** Appends one row; must match the header arity. */
    void AddRow(std::vector<std::string> cells);

    /** Serializes header + rows. */
    std::string ToString() const;

    /**
     * Writes to @p path, creating parent directories.
     * @return false (with a warning log) if the filesystem refuses.
     */
    bool WriteFile(const std::string& path) const;

    std::size_t rows() const { return rows_.size(); }

  private:
    static std::string EscapeField(const std::string& field);

    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace moc

#endif  // MOC_UTIL_CSV_H_
