#ifndef MOC_UTIL_TABLE_H_
#define MOC_UTIL_TABLE_H_

/**
 * @file
 * ASCII table rendering for the benchmark harnesses, which print the same
 * rows/series the paper's tables and figures report.
 */

#include <string>
#include <vector>

namespace moc {

/**
 * A simple column-aligned ASCII table.
 *
 * Usage:
 *   Table t({"K_pec", "ckpt size (GB)", "relative"});
 *   t.AddRow({"1", "3.1", "0.42"});
 *   std::cout << t.ToString();
 */
class Table {
  public:
    explicit Table(std::vector<std::string> header);

    /** Appends one row; must have the same arity as the header. */
    void AddRow(std::vector<std::string> cells);

    /** Convenience: formats doubles with @p precision decimal places. */
    static std::string Num(double v, int precision = 3);

    /** Renders the table with a separator line under the header. */
    std::string ToString() const;

    std::size_t rows() const { return rows_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace moc

#endif  // MOC_UTIL_TABLE_H_
