#include "util/crc32.h"

#include <array>

namespace moc {

namespace {

/**
 * Slice-by-8 table set: table[0] is the classic bytewise table; table[k]
 * advances a byte through k additional zero bytes, so eight lookups fold
 * eight message bytes into the register per iteration instead of one.
 * Same polynomial, bit-identical outputs to the bytewise loop (locked in
 * by the golden-vector and cross-check tests) — only the checkpoint
 * critical path's cost per byte changes.
 */
using SliceTables = std::array<std::array<std::uint32_t, 256>, 8>;

SliceTables
MakeTables(std::uint32_t poly) {
    SliceTables tables{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1U) ? poly ^ (c >> 1) : c >> 1;
        }
        tables[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = tables[0][i];
        for (std::size_t t = 1; t < 8; ++t) {
            c = tables[0][c & 0xFFU] ^ (c >> 8);
            tables[t][i] = c;
        }
    }
    return tables;
}

std::uint32_t
TableUpdate(const SliceTables& t, std::uint32_t crc, const void* data,
            std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    crc = ~crc;
    // Byte-at-a-time until the hot loop can take full 8-byte strides.
    while (len >= 8) {
        // Bytes are composed manually (not a uint64 load): alignment- and
        // endianness-independent, and the optimizer fuses the loads anyway.
        crc = t[7][(crc ^ p[0]) & 0xFFU] ^ t[6][((crc >> 8) ^ p[1]) & 0xFFU] ^
              t[5][((crc >> 16) ^ p[2]) & 0xFFU] ^
              t[4][((crc >> 24) ^ p[3]) & 0xFFU] ^ t[3][p[4]] ^ t[2][p[5]] ^
              t[1][p[6]] ^ t[0][p[7]];
        p += 8;
        len -= 8;
    }
    for (std::size_t i = 0; i < len; ++i) {
        crc = t[0][(crc ^ p[i]) & 0xFFU] ^ (crc >> 8);
    }
    return ~crc;
}

}  // namespace

std::uint32_t
Crc32Update(std::uint32_t crc, const void* data, std::size_t len) {
    static const auto tables = MakeTables(0xEDB88320U);
    return TableUpdate(tables, crc, data, len);
}

std::uint32_t
Crc32(const void* data, std::size_t len) {
    return Crc32Update(0, data, len);
}

std::uint32_t
Crc32cUpdate(std::uint32_t crc, const void* data, std::size_t len) {
    static const auto tables = MakeTables(0x82F63B78U);
    return TableUpdate(tables, crc, data, len);
}

std::uint32_t
Crc32c(const void* data, std::size_t len) {
    return Crc32cUpdate(0, data, len);
}

}  // namespace moc
