#include "util/crc32.h"

#include <array>

namespace moc {

namespace {

std::array<std::uint32_t, 256>
MakeTable(std::uint32_t poly) {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1U) ? poly ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

std::uint32_t
TableUpdate(const std::array<std::uint32_t, 256>& table, std::uint32_t crc,
            const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    crc = ~crc;
    for (std::size_t i = 0; i < len; ++i) {
        crc = table[(crc ^ p[i]) & 0xFFU] ^ (crc >> 8);
    }
    return ~crc;
}

}  // namespace

std::uint32_t
Crc32Update(std::uint32_t crc, const void* data, std::size_t len) {
    static const auto table = MakeTable(0xEDB88320U);
    return TableUpdate(table, crc, data, len);
}

std::uint32_t
Crc32(const void* data, std::size_t len) {
    return Crc32Update(0, data, len);
}

std::uint32_t
Crc32cUpdate(std::uint32_t crc, const void* data, std::size_t len) {
    static const auto table = MakeTable(0x82F63B78U);
    return TableUpdate(table, crc, data, len);
}

std::uint32_t
Crc32c(const void* data, std::size_t len) {
    return Crc32cUpdate(0, data, len);
}

}  // namespace moc
