#ifndef MOC_UTIL_HASH_H_
#define MOC_UTIL_HASH_H_

/**
 * @file
 * FNV-1a 64-bit content hashing.
 *
 * CRC-32C alone is not a content *identity*: it is a 32-bit error-detecting
 * code, and two different expert blobs collide with probability ~2^-32 —
 * far too likely across millions of dedup decisions. Content-addressed
 * paths (whole-blob dedup, per-chunk delta diffing) therefore key on the
 * pair (CRC-32C, FNV-1a 64) plus the byte size: the two hashes have
 * unrelated structure (one linear over GF(2), one multiplicative mod 2^64),
 * so a simultaneous collision requires ~2^96 luck. CRC-32C alone remains
 * fine for what it was designed for — detecting *corruption* of bytes whose
 * identity is already known.
 */

#include <cstddef>
#include <cstdint>

namespace moc {

inline constexpr std::uint64_t kFnv1a64Offset = 0xCBF29CE484222325ULL;
inline constexpr std::uint64_t kFnv1a64Prime = 0x100000001B3ULL;

/** Incremental FNV-1a 64: feed @p state from a previous call (start with
    kFnv1a64Offset). */
inline std::uint64_t
Fnv1a64Update(std::uint64_t state, const void* data, std::size_t len) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < len; ++i) {
        state ^= p[i];
        state *= kFnv1a64Prime;
    }
    return state;
}

/** FNV-1a 64-bit hash of @p data[0..len). */
inline std::uint64_t
Fnv1a64(const void* data, std::size_t len) {
    return Fnv1a64Update(kFnv1a64Offset, data, len);
}

}  // namespace moc

#endif  // MOC_UTIL_HASH_H_
