#include "util/bytes.h"

#include <iomanip>
#include <sstream>

namespace moc {

std::string
FormatBytes(Bytes n) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(2);
    if (n >= kGiB) {
        os << static_cast<double>(n) / static_cast<double>(kGiB) << " GiB";
    } else if (n >= kMiB) {
        os << static_cast<double>(n) / static_cast<double>(kMiB) << " MiB";
    } else if (n >= kKiB) {
        os << static_cast<double>(n) / static_cast<double>(kKiB) << " KiB";
    } else {
        os << n << " B";
    }
    return os.str();
}

}  // namespace moc
