#ifndef MOC_UTIL_LOGGING_H_
#define MOC_UTIL_LOGGING_H_

/**
 * @file
 * Lightweight leveled logging and check macros.
 *
 * Follows the gem5 convention of distinguishing user-facing fatal errors
 * (bad configuration: `MOC_FATAL`) from internal invariant violations
 * (`MOC_PANIC`, `MOC_ASSERT`).
 */

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>

namespace moc {

/** Severity levels for the logger. */
enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

/**
 * Process-wide logger. Thread-safe for concurrent Log() calls.
 */
class Logger {
  public:
    /** Returns the singleton logger. */
    static Logger& Instance();

    /** Sets the minimum level that will be emitted (any thread, any time). */
    void set_level(LogLevel level) {
        level_.store(level, std::memory_order_relaxed);
    }
    LogLevel level() const { return level_.load(std::memory_order_relaxed); }

    /** Emits one log line at @p level with source location info. */
    void Log(LogLevel level, const char* file, int line, const std::string& msg);

  private:
    Logger() = default;
    /** Atomic: Log() reads it while set_level may run on another thread. */
    std::atomic<LogLevel> level_{LogLevel::kInfo};
};

namespace detail {

/** Builds a message from streamed parts and forwards it to the logger. */
class LogMessage {
  public:
    LogMessage(LogLevel level, const char* file, int line)
        : level_(level), file_(file), line_(line) {}
    ~LogMessage() { Logger::Instance().Log(level_, file_, line_, stream_.str()); }

    template <typename T>
    LogMessage& operator<<(const T& value) {
        stream_ << value;
        return *this;
    }

  private:
    LogLevel level_;
    const char* file_;
    int line_;
    std::ostringstream stream_;
};

[[noreturn]] void FatalExit(const char* file, int line, const std::string& msg);
[[noreturn]] void PanicAbort(const char* file, int line, const std::string& msg);

}  // namespace detail

}  // namespace moc

#define MOC_LOG(level) ::moc::detail::LogMessage(level, __FILE__, __LINE__)
#define MOC_DEBUG MOC_LOG(::moc::LogLevel::kDebug)
#define MOC_INFO MOC_LOG(::moc::LogLevel::kInfo)
#define MOC_WARN MOC_LOG(::moc::LogLevel::kWarn)
#define MOC_ERROR MOC_LOG(::moc::LogLevel::kError)

/** User-error exit: invalid configuration or arguments. */
#define MOC_FATAL(msg)                                                    \
    do {                                                                  \
        std::ostringstream moc_fatal_ss;                                  \
        moc_fatal_ss << msg;                                              \
        ::moc::detail::FatalExit(__FILE__, __LINE__, moc_fatal_ss.str()); \
    } while (0)

/** Internal invariant violation: a bug in this library. */
#define MOC_PANIC(msg)                                                     \
    do {                                                                   \
        std::ostringstream moc_panic_ss;                                   \
        moc_panic_ss << msg;                                               \
        ::moc::detail::PanicAbort(__FILE__, __LINE__, moc_panic_ss.str()); \
    } while (0)

/** Always-on invariant check (independent of NDEBUG). */
#define MOC_ASSERT(cond, msg)                                \
    do {                                                     \
        if (!(cond)) {                                       \
            MOC_PANIC("assertion failed: " #cond ": " << msg); \
        }                                                    \
    } while (0)

/** Argument validation that throws (recoverable, testable). */
#define MOC_CHECK_ARG(cond, msg)                         \
    do {                                                 \
        if (!(cond)) {                                   \
            std::ostringstream moc_check_ss;             \
            moc_check_ss << "invalid argument: " << msg; \
            throw std::invalid_argument(moc_check_ss.str()); \
        }                                                \
    } while (0)

#endif  // MOC_UTIL_LOGGING_H_
