#include "util/clock.h"

#include <chrono>
#include <thread>

#include "util/logging.h"

namespace moc {

void
VirtualClock::Advance(Seconds duration) {
    MOC_ASSERT(duration >= 0.0, "cannot advance a clock backwards");
    now_ += duration;
}

void
VirtualClock::AdvanceTo(Seconds t) {
    MOC_ASSERT(t >= now_, "cannot advance a clock backwards");
    now_ = t;
}

WallClock::WallClock() {
    epoch_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Seconds
WallClock::Now() const {
    const auto now_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
    return static_cast<Seconds>(now_ns - epoch_ns_) * 1e-9;
}

void
WallClock::Advance(Seconds duration) {
    if (duration > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(duration));
    }
}

}  // namespace moc
