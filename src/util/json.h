#ifndef MOC_UTIL_JSON_H_
#define MOC_UTIL_JSON_H_

/**
 * @file
 * A minimal recursive-descent JSON reader.
 *
 * The observability layer *writes* JSON with hand-rolled emitters
 * (obs/export.h); this is the matching reader, used by `moc_cli report` to
 * ingest metrics dumps and event journals, and by the exporter round-trip
 * tests. Objects preserve key order via std::map, and parse errors throw
 * std::invalid_argument with an offset-tagged message.
 *
 * Numbers carry two representations: every number exposes AsNumber()
 * (double), and integer-syntax tokens that fit 64 bits additionally keep
 * their exact value. Iterations, byte counts, and incarnations round-trip
 * through AsU64()/AsI64() losslessly even past 2^53, where the double form
 * silently rounds; the exact accessors throw on a number that was never
 * exactly representable instead of rounding it.
 */

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace moc::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/** One parsed JSON value (null, bool, number, string, array, or object). */
class Value {
  public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Value() = default;
    explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
    explicit Value(double n) : kind_(Kind::kNumber), number_(n) {}
    /** Exact integers: kept losslessly alongside their double image. */
    explicit Value(std::uint64_t n)
        : kind_(Kind::kNumber), number_(static_cast<double>(n)), int_mag_(n),
          exact_(true) {}
    explicit Value(std::int64_t n)
        : kind_(Kind::kNumber), number_(static_cast<double>(n)),
          int_mag_(n < 0 ? 0ULL - static_cast<std::uint64_t>(n)
                         : static_cast<std::uint64_t>(n)),
          negative_(n < 0), exact_(true) {}
    explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
    explicit Value(Array a);
    explicit Value(Object o);

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::kNull; }
    bool is_bool() const { return kind_ == Kind::kBool; }
    bool is_number() const { return kind_ == Kind::kNumber; }
    bool is_string() const { return kind_ == Kind::kString; }
    bool is_array() const { return kind_ == Kind::kArray; }
    bool is_object() const { return kind_ == Kind::kObject; }

    /** Checked accessors; throw std::invalid_argument on a kind mismatch. */
    bool AsBool() const;
    double AsNumber() const;
    const std::string& AsString() const;
    const Array& AsArray() const;
    const Object& AsObject() const;

    /**
     * Exact 64-bit reads of a number. A value parsed from integer syntax
     * ("123", "-7") that fit the target type returns exactly; a fractional,
     * out-of-range, or precision-lossy number (e.g. one that only exists as
     * a rounded double) throws std::invalid_argument rather than silently
     * rounding — manifests and membership tables must never read back a
     * different iteration than was written.
     */
    std::uint64_t AsU64() const;
    std::int64_t AsI64() const;

    /** The parsed token had integer syntax and fit 64 bits exactly. */
    bool is_exact_int() const { return is_number() && exact_; }

    /** Object member, or nullptr when absent (or not an object). */
    const Value* Find(const std::string& key) const;

    /** Object member that must exist; throws when absent. */
    const Value& At(const std::string& key) const;

    /** Member number/string with a fallback for absent keys. */
    double NumberOr(const std::string& key, double fallback) const;
    std::string StringOr(const std::string& key, std::string fallback) const;

    /** Member exact integer with a fallback for absent keys. */
    std::uint64_t U64Or(const std::string& key, std::uint64_t fallback) const;

  private:
    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    /** Exact integer image of the token: magnitude + sign, valid iff
        exact_. Kept beside the double so AsNumber() stays cheap. */
    std::uint64_t int_mag_ = 0;
    bool negative_ = false;
    bool exact_ = false;
    std::string string_;
    /** unique_ptr keeps Value a complete type inside Array/Object. */
    std::unique_ptr<Array> array_;
    std::unique_ptr<Object> object_;

  public:
    Value(const Value& other);
    Value& operator=(const Value& other);
    Value(Value&&) noexcept = default;
    Value& operator=(Value&&) noexcept = default;
    ~Value() = default;
};

/**
 * Parses one JSON document (trailing whitespace allowed, nothing else after).
 * @throws std::invalid_argument on malformed input.
 */
Value Parse(std::string_view text);

}  // namespace moc::json

#endif  // MOC_UTIL_JSON_H_
