#ifndef MOC_UTIL_JSON_H_
#define MOC_UTIL_JSON_H_

/**
 * @file
 * A minimal recursive-descent JSON reader.
 *
 * The observability layer *writes* JSON with hand-rolled emitters
 * (obs/export.h); this is the matching reader, used by `moc_cli report` to
 * ingest metrics dumps and event journals, and by the exporter round-trip
 * tests. Numbers are stored as double (every value we emit fits), objects
 * preserve key order via std::map, and parse errors throw
 * std::invalid_argument with an offset-tagged message.
 */

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace moc::json {

class Value;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

/** One parsed JSON value (null, bool, number, string, array, or object). */
class Value {
  public:
    enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

    Value() = default;
    explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
    explicit Value(double n) : kind_(Kind::kNumber), number_(n) {}
    explicit Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
    explicit Value(Array a);
    explicit Value(Object o);

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::kNull; }
    bool is_bool() const { return kind_ == Kind::kBool; }
    bool is_number() const { return kind_ == Kind::kNumber; }
    bool is_string() const { return kind_ == Kind::kString; }
    bool is_array() const { return kind_ == Kind::kArray; }
    bool is_object() const { return kind_ == Kind::kObject; }

    /** Checked accessors; throw std::invalid_argument on a kind mismatch. */
    bool AsBool() const;
    double AsNumber() const;
    const std::string& AsString() const;
    const Array& AsArray() const;
    const Object& AsObject() const;

    /** Object member, or nullptr when absent (or not an object). */
    const Value* Find(const std::string& key) const;

    /** Object member that must exist; throws when absent. */
    const Value& At(const std::string& key) const;

    /** Member number/string with a fallback for absent keys. */
    double NumberOr(const std::string& key, double fallback) const;
    std::string StringOr(const std::string& key, std::string fallback) const;

  private:
    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double number_ = 0.0;
    std::string string_;
    /** unique_ptr keeps Value a complete type inside Array/Object. */
    std::unique_ptr<Array> array_;
    std::unique_ptr<Object> object_;

  public:
    Value(const Value& other);
    Value& operator=(const Value& other);
    Value(Value&&) noexcept = default;
    Value& operator=(Value&&) noexcept = default;
    ~Value() = default;
};

/**
 * Parses one JSON document (trailing whitespace allowed, nothing else after).
 * @throws std::invalid_argument on malformed input.
 */
Value Parse(std::string_view text);

}  // namespace moc::json

#endif  // MOC_UTIL_JSON_H_
