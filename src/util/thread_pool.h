#ifndef MOC_UTIL_THREAD_POOL_H_
#define MOC_UTIL_THREAD_POOL_H_

/**
 * @file
 * A minimal fixed-size thread pool used for parallel experiment sweeps and
 * the asynchronous checkpoint agents.
 */

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace moc {

/**
 * Fixed-size FIFO thread pool. Tasks may not throw; exceptions propagate
 * through the returned future.
 */
class ThreadPool {
  public:
    /** Spawns @p num_threads workers (>= 1). */
    explicit ThreadPool(std::size_t num_threads);

    /** Drains the queue and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Enqueues @p fn; returns a future for its result. */
    template <typename Fn>
    auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
        using R = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
        std::future<R> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mu_);
            queue_.emplace_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

    /** Blocks until every submitted task has finished. */
    void Wait();

    std::size_t num_threads() const { return workers_.size(); }

  private:
    void WorkerLoop();

    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable idle_cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t active_ = 0;
    bool stop_ = false;
};

}  // namespace moc

#endif  // MOC_UTIL_THREAD_POOL_H_
