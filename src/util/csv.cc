#include "util/csv.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "util/logging.h"

namespace moc {

CsvWriter::CsvWriter(std::vector<std::string> header) : header_(std::move(header)) {
    MOC_CHECK_ARG(!header_.empty(), "CSV needs at least one column");
}

void
CsvWriter::AddRow(std::vector<std::string> cells) {
    MOC_CHECK_ARG(cells.size() == header_.size(),
                  "CSV row arity " << cells.size() << " != header "
                                   << header_.size());
    rows_.push_back(std::move(cells));
}

std::string
CsvWriter::EscapeField(const std::string& field) {
    if (field.find_first_of(",\"\n") == std::string::npos) {
        return field;
    }
    std::string out = "\"";
    for (char c : field) {
        if (c == '"') {
            out += '"';
        }
        out += c;
    }
    out += '"';
    return out;
}

std::string
CsvWriter::ToString() const {
    std::ostringstream os;
    auto emit = [&os](const std::vector<std::string>& row) {
        for (std::size_t i = 0; i < row.size(); ++i) {
            os << (i ? "," : "") << EscapeField(row[i]);
        }
        os << "\n";
    };
    emit(header_);
    for (const auto& row : rows_) {
        emit(row);
    }
    return os.str();
}

bool
CsvWriter::WriteFile(const std::string& path) const {
    std::error_code ec;
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(p, std::ios::trunc);
    if (!out) {
        MOC_WARN << "cannot write CSV to " << path;
        return false;
    }
    out << ToString();
    return static_cast<bool>(out);
}

}  // namespace moc
