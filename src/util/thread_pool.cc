#include "util/thread_pool.h"

#include "util/logging.h"

namespace moc {

ThreadPool::ThreadPool(std::size_t num_threads) {
    MOC_CHECK_ARG(num_threads >= 1, "ThreadPool requires at least one thread");
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i) {
        workers_.emplace_back([this] { WorkerLoop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) {
        w.join();
    }
}

void
ThreadPool::Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void
ThreadPool::WorkerLoop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
            if (stop_ && queue_.empty()) {
                return;
            }
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0) {
                idle_cv_.notify_all();
            }
        }
    }
}

}  // namespace moc
