#include "util/logging.h"

#include <cstdio>
#include <mutex>

namespace moc {

namespace {

const char* LevelName(LogLevel level) {
    switch (level) {
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kSilent: return "SILENT";
    }
    return "?";
}

std::mutex& LogMutex() {
    static std::mutex mu;
    return mu;
}

}  // namespace

Logger&
Logger::Instance() {
    static Logger logger;
    return logger;
}

void
Logger::Log(LogLevel level, const char* file, int line, const std::string& msg) {
    if (level < this->level()) {
        return;
    }
    const char* base = file;
    for (const char* p = file; *p; ++p) {
        if (*p == '/') {
            base = p + 1;
        }
    }
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line, msg.c_str());
}

namespace detail {

void
FatalExit(const char* file, int line, const std::string& msg) {
    Logger::Instance().Log(LogLevel::kError, file, line, "fatal: " + msg);
    std::exit(1);
}

void
PanicAbort(const char* file, int line, const std::string& msg) {
    Logger::Instance().Log(LogLevel::kError, file, line, "panic: " + msg);
    std::abort();
}

}  // namespace detail

}  // namespace moc
