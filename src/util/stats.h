#ifndef MOC_UTIL_STATS_H_
#define MOC_UTIL_STATS_H_

/**
 * @file
 * Streaming statistics accumulators used by benches and the simulator.
 */

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace moc {

/**
 * Welford-style running mean/variance with min/max tracking.
 */
class RunningStat {
  public:
    /** Adds one observation. */
    void Add(double x);

    /** Merges another accumulator into this one. */
    void Merge(const RunningStat& other);

    std::size_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Population variance. */
    double variance() const;
    double stddev() const;
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double sum() const { return count_ ? mean_ * static_cast<double>(count_) : 0.0; }

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-bin histogram over [lo, hi); out-of-range values clamp to edge bins.
 */
class Histogram {
  public:
    Histogram(double lo, double hi, std::size_t bins);

    void Add(double x);
    std::size_t bin_count(std::size_t i) const { return counts_.at(i); }
    std::size_t bins() const { return counts_.size(); }
    std::size_t total() const { return total_; }

    /** Returns the p-th percentile (0..100) estimated from bin midpoints. */
    double Percentile(double p) const;

    /** Human-readable ASCII rendering (for debug output). */
    std::string ToString() const;

  private:
    double lo_;
    double hi_;
    std::vector<std::size_t> counts_;
    std::size_t total_ = 0;
};

/**
 * An exponentially-weighted moving average, used by adaptive controllers.
 */
class Ewma {
  public:
    /** @param alpha weight of the newest observation, in (0, 1]. */
    explicit Ewma(double alpha);

    void Add(double x);
    bool empty() const { return !initialized_; }
    double value() const { return value_; }

  private:
    double alpha_;
    double value_ = 0.0;
    bool initialized_ = false;
};

}  // namespace moc

#endif  // MOC_UTIL_STATS_H_
