#ifndef MOC_UTIL_CLOCK_H_
#define MOC_UTIL_CLOCK_H_

/**
 * @file
 * Time abstraction.
 *
 * Accuracy experiments run in wall-clock time; timing experiments run against
 * a deterministic virtual clock so that figures are reproducible. Code that
 * needs "now" or "sleep" takes a `Clock&` and works in both domains.
 */

#include <cstdint>

namespace moc {

/** Seconds as double: the universal time unit of the library. */
using Seconds = double;

/**
 * Abstract time source.
 */
class Clock {
  public:
    virtual ~Clock() = default;

    /** Returns the current time in seconds since an arbitrary epoch. */
    virtual Seconds Now() const = 0;

    /** Advances (virtual) or blocks (wall) for @p duration seconds. */
    virtual void Advance(Seconds duration) = 0;
};

/**
 * Deterministic simulated clock; Advance() moves time forward instantly.
 */
class VirtualClock final : public Clock {
  public:
    explicit VirtualClock(Seconds start = 0.0) : now_(start) {}

    Seconds Now() const override { return now_; }
    void Advance(Seconds duration) override;

    /** Jumps directly to @p t (must be >= Now()). */
    void AdvanceTo(Seconds t);

  private:
    Seconds now_;
};

/**
 * Real time via std::chrono::steady_clock; Advance() sleeps.
 */
class WallClock final : public Clock {
  public:
    WallClock();

    Seconds Now() const override;
    void Advance(Seconds duration) override;

  private:
    std::uint64_t epoch_ns_;
};

/** RAII stopwatch over an arbitrary Clock. */
class Stopwatch {
  public:
    explicit Stopwatch(const Clock& clock) : clock_(clock), start_(clock.Now()) {}

    /** Seconds elapsed since construction or the last Reset(). */
    Seconds Elapsed() const { return clock_.Now() - start_; }
    void Reset() { start_ = clock_.Now(); }

  private:
    const Clock& clock_;
    Seconds start_;
};

}  // namespace moc

#endif  // MOC_UTIL_CLOCK_H_
