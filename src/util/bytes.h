#ifndef MOC_UTIL_BYTES_H_
#define MOC_UTIL_BYTES_H_

/**
 * @file
 * Byte-size arithmetic and formatting used throughout checkpoint accounting.
 */

#include <cstdint>
#include <string>

namespace moc {

/** Byte counts are 64-bit throughout (trillion-parameter models overflow 32). */
using Bytes = std::uint64_t;

inline constexpr Bytes kKiB = 1024ULL;
inline constexpr Bytes kMiB = 1024ULL * kKiB;
inline constexpr Bytes kGiB = 1024ULL * kMiB;

/** Formats @p n as a human-readable string, e.g. "3.42 GiB". */
std::string FormatBytes(Bytes n);

/** Ceil-division for partitioning byte ranges across ranks. */
constexpr Bytes
CeilDiv(Bytes a, Bytes b) {
    return (a + b - 1) / b;
}

}  // namespace moc

#endif  // MOC_UTIL_BYTES_H_
