#include "util/rng.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace moc {

namespace {

std::uint64_t
SplitMix64(std::uint64_t& x) {
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) {
        s = SplitMix64(sm);
    }
}

std::uint64_t
Rng::Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
}

double
Rng::Uniform() {
    // 53 bits of mantissa from the high bits.
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double
Rng::Uniform(double lo, double hi) {
    return lo + (hi - lo) * Uniform();
}

std::uint64_t
Rng::UniformInt(std::uint64_t n) {
    MOC_ASSERT(n > 0, "UniformInt requires n > 0");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0ULL - n) % n;
    for (;;) {
        std::uint64_t r = Next();
        if (r >= threshold) {
            return r % n;
        }
    }
}

double
Rng::Gaussian() {
    if (have_cached_gaussian_) {
        have_cached_gaussian_ = false;
        return cached_gaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = Uniform();
    } while (u1 <= 1e-300);
    const double u2 = Uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    cached_gaussian_ = r * std::sin(theta);
    have_cached_gaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
}

double
Rng::Exponential(double lambda) {
    MOC_ASSERT(lambda > 0.0, "Exponential requires lambda > 0");
    double u = 0.0;
    do {
        u = Uniform();
    } while (u <= 1e-300);
    return -std::log(u) / lambda;
}

std::uint64_t
Rng::Zipf(std::uint64_t n, double s) {
    MOC_ASSERT(n > 0, "Zipf requires n > 0");
    // Direct inverse-CDF; fine for occasional calls.
    double norm = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
        norm += 1.0 / std::pow(static_cast<double>(i), s);
    }
    const double u = Uniform() * norm;
    double acc = 0.0;
    for (std::uint64_t i = 1; i <= n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i), s);
        if (u <= acc) {
            return i - 1;
        }
    }
    return n - 1;
}

Rng
Rng::Split() {
    return Rng(Next() ^ 0xD1B54A32D192ED03ULL);
}

Rng::State
Rng::GetState() const {
    State st;
    for (int i = 0; i < 4; ++i) {
        st.s[i] = state_[i];
    }
    st.have_cached_gaussian = have_cached_gaussian_;
    st.cached_gaussian = cached_gaussian_;
    return st;
}

void
Rng::SetState(const State& state) {
    for (int i = 0; i < 4; ++i) {
        state_[i] = state.s[i];
    }
    have_cached_gaussian_ = state.have_cached_gaussian;
    cached_gaussian_ = state.cached_gaussian;
}

ZipfTable::ZipfTable(std::size_t n, double s) {
    MOC_CHECK_ARG(n > 0, "ZipfTable requires n > 0");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
        cdf_[i] = acc;
    }
    for (auto& v : cdf_) {
        v /= acc;
    }
}

std::size_t
ZipfTable::Sample(Rng& rng) const {
    const double u = rng.Uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end()) {
        return cdf_.size() - 1;
    }
    return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace moc
