#ifndef MOC_UTIL_CRC32_H_
#define MOC_UTIL_CRC32_H_

/**
 * @file
 * CRC-32 in two polynomials.
 *
 * Crc32 (IEEE 802.3, 0xEDB88320) is the wire-format checksum: tensor
 * blobs and FileStore files carry it as a trailer next to the bytes it
 * covers, so bit rot in transit or at rest is detected on parse.
 *
 * Crc32c (Castagnoli, 0x82F63B78) is the *verification* checksum: the
 * value a manifest records for a shard and later compares against
 * re-read bytes. It MUST be a different polynomial than the trailers
 * embedded inside the blob. CRC is linear over GF(2), and running a CRC
 * across `message || crc(message)` drives the register into a constant
 * state independent of the message — so an outer IEEE CRC over a blob
 * whose sections each end with their own IEEE trailer never sees the
 * payload at all. Two same-shaped blobs from different training
 * iterations then collide, and a lost write that leaves stale
 * same-shaped bytes in place passes verification. A second polynomial
 * breaks the cancellation: the embedded trailer is no longer the outer
 * register's own image of the section.
 */

#include <cstddef>
#include <cstdint>

namespace moc {

/** Computes the CRC-32 (IEEE) of @p data[0..len). */
std::uint32_t Crc32(const void* data, std::size_t len);

/** Incremental form: feed @p crc from a previous call (start with 0). */
std::uint32_t Crc32Update(std::uint32_t crc, const void* data, std::size_t len);

/** Computes the CRC-32C (Castagnoli) of @p data[0..len). */
std::uint32_t Crc32c(const void* data, std::size_t len);

/** Incremental CRC-32C: feed @p crc from a previous call (start with 0). */
std::uint32_t Crc32cUpdate(std::uint32_t crc, const void* data,
                           std::size_t len);

}  // namespace moc

#endif  // MOC_UTIL_CRC32_H_
