#ifndef MOC_UTIL_CRC32_H_
#define MOC_UTIL_CRC32_H_

/**
 * @file
 * CRC-32 (IEEE 802.3) for checkpoint blob integrity verification.
 */

#include <cstddef>
#include <cstdint>

namespace moc {

/** Computes the CRC-32 of @p data[0..len). */
std::uint32_t Crc32(const void* data, std::size_t len);

/** Incremental form: feed @p crc from a previous call (start with 0). */
std::uint32_t Crc32Update(std::uint32_t crc, const void* data, std::size_t len);

}  // namespace moc

#endif  // MOC_UTIL_CRC32_H_
