#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

namespace moc::json {

Value::Value(Array a)
    : kind_(Kind::kArray), array_(std::make_unique<Array>(std::move(a))) {}

Value::Value(Object o)
    : kind_(Kind::kObject), object_(std::make_unique<Object>(std::move(o))) {}

Value::Value(const Value& other)
    : kind_(other.kind_), bool_(other.bool_), number_(other.number_),
      int_mag_(other.int_mag_), negative_(other.negative_),
      exact_(other.exact_), string_(other.string_),
      array_(other.array_ ? std::make_unique<Array>(*other.array_) : nullptr),
      object_(other.object_ ? std::make_unique<Object>(*other.object_)
                            : nullptr) {}

Value&
Value::operator=(const Value& other) {
    if (this != &other) {
        Value copy(other);
        *this = std::move(copy);
    }
    return *this;
}

namespace {

[[noreturn]] void
Fail(const char* what, Value::Kind kind) {
    throw std::invalid_argument(std::string("json: value is not ") + what +
                                " (kind " +
                                std::to_string(static_cast<int>(kind)) + ")");
}

}  // namespace

bool
Value::AsBool() const {
    if (!is_bool()) {
        Fail("a bool", kind_);
    }
    return bool_;
}

double
Value::AsNumber() const {
    if (!is_number()) {
        Fail("a number", kind_);
    }
    return number_;
}

std::uint64_t
Value::AsU64() const {
    if (!is_number()) {
        Fail("a number", kind_);
    }
    if (exact_) {
        if (negative_ && int_mag_ != 0) {
            throw std::invalid_argument("json: number is negative, not u64");
        }
        return int_mag_;
    }
    // No exact token (a computed double, or integer syntax that overflowed
    // 64 bits): accept only doubles that are integral and inside the range
    // where every integer is representable.
    if (number_ < 0.0 || number_ > 9007199254740992.0 ||  // 2^53
        number_ != std::floor(number_)) {
        throw std::invalid_argument(
            "json: number has no exact u64 representation");
    }
    return static_cast<std::uint64_t>(number_);
}

std::int64_t
Value::AsI64() const {
    if (!is_number()) {
        Fail("a number", kind_);
    }
    if (exact_) {
        if (negative_) {
            // |INT64_MIN| = 2^63 still fits the magnitude field.
            if (int_mag_ > 0x8000000000000000ULL) {
                throw std::invalid_argument("json: number overflows i64");
            }
            return static_cast<std::int64_t>(0ULL - int_mag_);
        }
        if (int_mag_ > 0x7FFFFFFFFFFFFFFFULL) {
            throw std::invalid_argument("json: number overflows i64");
        }
        return static_cast<std::int64_t>(int_mag_);
    }
    if (number_ < -9007199254740992.0 || number_ > 9007199254740992.0 ||
        number_ != std::floor(number_)) {
        throw std::invalid_argument(
            "json: number has no exact i64 representation");
    }
    return static_cast<std::int64_t>(number_);
}

const std::string&
Value::AsString() const {
    if (!is_string()) {
        Fail("a string", kind_);
    }
    return string_;
}

const Array&
Value::AsArray() const {
    if (!is_array()) {
        Fail("an array", kind_);
    }
    return *array_;
}

const Object&
Value::AsObject() const {
    if (!is_object()) {
        Fail("an object", kind_);
    }
    return *object_;
}

const Value*
Value::Find(const std::string& key) const {
    if (!is_object()) {
        return nullptr;
    }
    const auto it = object_->find(key);
    return it == object_->end() ? nullptr : &it->second;
}

const Value&
Value::At(const std::string& key) const {
    const Value* v = Find(key);
    if (v == nullptr) {
        throw std::invalid_argument("json: missing key '" + key + "'");
    }
    return *v;
}

double
Value::NumberOr(const std::string& key, double fallback) const {
    const Value* v = Find(key);
    return v != nullptr && v->is_number() ? v->AsNumber() : fallback;
}

std::string
Value::StringOr(const std::string& key, std::string fallback) const {
    const Value* v = Find(key);
    return v != nullptr && v->is_string() ? v->AsString() : std::move(fallback);
}

std::uint64_t
Value::U64Or(const std::string& key, std::uint64_t fallback) const {
    const Value* v = Find(key);
    return v != nullptr && v->is_number() ? v->AsU64() : fallback;
}

namespace {

class Parser {
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    Value ParseDocument() {
        Value v = ParseValue();
        SkipWhitespace();
        if (pos_ != text_.size()) {
            Error("trailing characters after document");
        }
        return v;
    }

  private:
    [[noreturn]] void Error(const std::string& message) const {
        throw std::invalid_argument("json: " + message + " at offset " +
                                    std::to_string(pos_));
    }

    void SkipWhitespace() {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    char Peek() {
        SkipWhitespace();
        if (pos_ >= text_.size()) {
            Error("unexpected end of input");
        }
        return text_[pos_];
    }

    void Expect(char c) {
        if (Peek() != c) {
            Error(std::string("expected '") + c + "', got '" + text_[pos_] +
                  "'");
        }
        ++pos_;
    }

    bool Consume(char c) {
        SkipWhitespace();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void ExpectLiteral(std::string_view literal) {
        if (text_.substr(pos_, literal.size()) != literal) {
            Error("invalid literal");
        }
        pos_ += literal.size();
    }

    Value ParseValue() {
        switch (Peek()) {
            case '{': return ParseObject();
            case '[': return ParseArray();
            case '"': return Value(ParseString());
            case 't': ExpectLiteral("true"); return Value(true);
            case 'f': ExpectLiteral("false"); return Value(false);
            case 'n': ExpectLiteral("null"); return Value();
            default: return ParseNumber();
        }
    }

    Value ParseObject() {
        Expect('{');
        Object members;
        if (!Consume('}')) {
            do {
                std::string key = ParseString();
                Expect(':');
                members.emplace(std::move(key), ParseValue());
            } while (Consume(','));
            Expect('}');
        }
        return Value(std::move(members));
    }

    Value ParseArray() {
        Expect('[');
        Array items;
        if (!Consume(']')) {
            do {
                items.push_back(ParseValue());
            } while (Consume(','));
            Expect(']');
        }
        return Value(std::move(items));
    }

    std::string ParseString() {
        Expect('"');
        std::string out;
        while (true) {
            if (pos_ >= text_.size()) {
                Error("unterminated string");
            }
            const char c = text_[pos_++];
            if (c == '"') {
                return out;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                Error("unterminated escape");
            }
            const char esc = text_[pos_++];
            switch (esc) {
                case '"': out += '"'; break;
                case '\\': out += '\\'; break;
                case '/': out += '/'; break;
                case 'b': out += '\b'; break;
                case 'f': out += '\f'; break;
                case 'n': out += '\n'; break;
                case 'r': out += '\r'; break;
                case 't': out += '\t'; break;
                case 'u': {
                    if (pos_ + 4 > text_.size()) {
                        Error("truncated \\u escape");
                    }
                    unsigned code = 0;
                    for (int i = 0; i < 4; ++i) {
                        const char h = text_[pos_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else if (h >= 'A' && h <= 'F') {
                            code |= static_cast<unsigned>(h - 'A' + 10);
                        } else {
                            Error("invalid \\u escape");
                        }
                    }
                    // Our emitters only escape control characters; encode the
                    // code point as UTF-8 (no surrogate-pair handling).
                    if (code < 0x80) {
                        out += static_cast<char>(code);
                    } else if (code < 0x800) {
                        out += static_cast<char>(0xC0 | (code >> 6));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    } else {
                        out += static_cast<char>(0xE0 | (code >> 12));
                        out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
                        out += static_cast<char>(0x80 | (code & 0x3F));
                    }
                    break;
                }
                default: Error("invalid escape");
            }
        }
    }

    Value ParseNumber() {
        SkipWhitespace();
        const std::size_t start = pos_;
        if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
            ++pos_;
        }
        bool digits = false;
        bool integral = true;
        while (pos_ < text_.size() &&
               ((text_[pos_] >= '0' && text_[pos_] <= '9') ||
                text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
                text_[pos_] == '+' || text_[pos_] == '-')) {
            const char c = text_[pos_];
            digits = digits || (c >= '0' && c <= '9');
            integral = integral && ((c >= '0' && c <= '9') || c == '-');
            ++pos_;
        }
        if (!digits) {
            pos_ = start;
            Error("invalid number");
        }
        const std::string token(text_.substr(start, pos_ - start));
        char* end = nullptr;
        const double value = std::strtod(token.c_str(), &end);
        if (end != token.c_str() + token.size() || !std::isfinite(value)) {
            pos_ = start;
            Error("invalid number");
        }
        // Integer tokens keep their exact 64-bit value alongside the double:
        // iterations and byte counts >= 2^53 must round-trip losslessly.
        if (integral) {
            const bool negative = token[0] == '-';
            errno = 0;
            char* iend = nullptr;
            const unsigned long long mag = std::strtoull(
                token.c_str() + (negative ? 1 : 0), &iend, 10);
            if (errno == 0 && iend == token.c_str() + token.size()) {
                if (!negative) {
                    return Value(static_cast<std::uint64_t>(mag));
                }
                if (mag <= 0x8000000000000000ULL) {
                    return Value(static_cast<std::int64_t>(0ULL - mag));
                }
                // Magnitude past |INT64_MIN|: double-only, like any
                // 64-bit-overflowing token.
            }
        }
        return Value(value);
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

}  // namespace

Value
Parse(std::string_view text) {
    return Parser(text).ParseDocument();
}

}  // namespace moc::json
