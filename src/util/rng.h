#ifndef MOC_UTIL_RNG_H_
#define MOC_UTIL_RNG_H_

/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic behaviour in the library (data synthesis, parameter
 * initialization, gating noise, fault schedules) flows through `Rng` so that
 * every experiment is exactly reproducible from a single seed.
 */

#include <cstdint>
#include <vector>

namespace moc {

/**
 * A small, fast, splittable PRNG (xoshiro256** seeded via SplitMix64).
 *
 * Deliberately not `std::mt19937`: identical streams across platforms and
 * standard-library versions are required for reproducible experiments.
 */
class Rng {
  public:
    /** Constructs a generator from @p seed (any value, including 0). */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Returns the next raw 64-bit value. */
    std::uint64_t Next();

    /** Returns a uniform double in [0, 1). */
    double Uniform();

    /** Returns a uniform double in [lo, hi). */
    double Uniform(double lo, double hi);

    /** Returns a uniform integer in [0, n). Requires n > 0. */
    std::uint64_t UniformInt(std::uint64_t n);

    /** Returns a standard normal sample (Box–Muller, cached pair). */
    double Gaussian();

    /** Returns a normal sample with @p mean and @p stddev. */
    double Gaussian(double mean, double stddev);

    /** Returns an exponential sample with rate @p lambda (> 0). */
    double Exponential(double lambda);

    /**
     * Returns a Zipf-distributed integer in [0, n) with exponent @p s.
     * Uses inverse-CDF over precomputable weights; O(n) per call is avoided
     * by callers via ZipfTable.
     */
    std::uint64_t Zipf(std::uint64_t n, double s);

    /** Creates an independent child stream (split). */
    Rng Split();

    /**
     * Serializable generator state (for checkpointing RNG alongside model
     * state, as the paper's "other crucial states" require).
     */
    struct State {
        std::uint64_t s[4];
        bool have_cached_gaussian;
        double cached_gaussian;
    };

    State GetState() const;
    void SetState(const State& state);

    /** Shuffles @p values in place (Fisher–Yates). */
    template <typename T>
    void Shuffle(std::vector<T>& values) {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(UniformInt(i));
            std::swap(values[i - 1], values[j]);
        }
    }

  private:
    std::uint64_t state_[4];
    bool have_cached_gaussian_ = false;
    double cached_gaussian_ = 0.0;
};

/**
 * Precomputed cumulative table for fast Zipf sampling.
 */
class ZipfTable {
  public:
    /** Builds a table over [0, n) with exponent @p s. */
    ZipfTable(std::size_t n, double s);

    /** Draws one sample using @p rng. */
    std::size_t Sample(Rng& rng) const;

    std::size_t size() const { return cdf_.size(); }

  private:
    std::vector<double> cdf_;
};

}  // namespace moc

#endif  // MOC_UTIL_RNG_H_
