#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.h"

namespace moc {

void
RunningStat::Add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::Merge(const RunningStat& other) {
    if (other.count_ == 0) {
        return;
    }
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double n1 = static_cast<double>(count_);
    const double n2 = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = n1 + n2;
    mean_ += delta * n2 / n;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
RunningStat::variance() const {
    if (count_ < 2) {
        return 0.0;
    }
    return m2_ / static_cast<double>(count_);
}

double
RunningStat::stddev() const {
    return std::sqrt(variance());
}

Histogram::Histogram(double lo, double hi, std::size_t bins) : lo_(lo), hi_(hi) {
    MOC_CHECK_ARG(hi > lo, "Histogram requires hi > lo");
    MOC_CHECK_ARG(bins > 0, "Histogram requires bins > 0");
    counts_.assign(bins, 0);
}

void
Histogram::Add(double x) {
    const double f = (x - lo_) / (hi_ - lo_);
    auto idx = static_cast<long>(f * static_cast<double>(counts_.size()));
    idx = std::clamp<long>(idx, 0, static_cast<long>(counts_.size()) - 1);
    ++counts_[static_cast<std::size_t>(idx)];
    ++total_;
}

double
Histogram::Percentile(double p) const {
    if (total_ == 0) {
        return lo_;
    }
    const double target = p / 100.0 * static_cast<double>(total_);
    double acc = 0.0;
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        acc += static_cast<double>(counts_[i]);
        if (acc >= target) {
            return lo_ + (static_cast<double>(i) + 0.5) * width;
        }
    }
    return hi_;
}

std::string
Histogram::ToString() const {
    std::ostringstream os;
    const std::size_t peak = *std::max_element(counts_.begin(), counts_.end());
    const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        const int bar =
            peak == 0 ? 0 : static_cast<int>(40.0 * static_cast<double>(counts_[i]) /
                                             static_cast<double>(peak));
        os << "[" << lo_ + static_cast<double>(i) * width << ", "
           << lo_ + static_cast<double>(i + 1) * width << ") "
           << std::string(static_cast<std::size_t>(bar), '#') << " " << counts_[i] << "\n";
    }
    return os.str();
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
    MOC_CHECK_ARG(alpha > 0.0 && alpha <= 1.0, "Ewma alpha must be in (0, 1]");
}

void
Ewma::Add(double x) {
    if (!initialized_) {
        value_ = x;
        initialized_ = true;
    } else {
        value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
}

}  // namespace moc
