#include "net/net_faults.h"

#include <chrono>
#include <thread>

#include "obs/metrics.h"
#include "util/logging.h"

namespace moc::net {

namespace {

obs::Counter&
FaultCounter(const char* name) {
    return obs::MetricsRegistry::Instance().GetCounter(name);
}

}  // namespace

FaultyTransport::FaultyTransport(Transport& inner,
                                 const NetFaultProfile& profile)
    : inner_(inner), profile_(profile), rng_(profile.seed) {
    MOC_CHECK_ARG(profile.drop >= 0.0 && profile.drop <= 1.0 &&
                      profile.duplicate >= 0.0 && profile.duplicate <= 1.0 &&
                      profile.reorder >= 0.0 && profile.reorder <= 1.0 &&
                      profile.delay >= 0.0 && profile.delay <= 1.0,
                  "fault probabilities must be in [0, 1]");
}

bool
FaultyTransport::Send(PeerId to, MsgType type, Blob payload,
                      const obs::TraceContext& ctx) {
    static obs::Counter& dropped = FaultCounter("net.faults.dropped");
    static obs::Counter& duplicated = FaultCounter("net.faults.duplicated");
    static obs::Counter& reordered = FaultCounter("net.faults.reordered");
    static obs::Counter& delayed = FaultCounter("net.faults.delayed");

    if (profile_.spare_heartbeats && type == MsgType::kHeartbeat) {
        return inner_.Send(to, type, std::move(payload), ctx);
    }

    bool do_duplicate = false;
    Seconds sleep_s = 0.0;
    std::optional<Held> release;
    {
        std::lock_guard<std::mutex> lock(mu_);
        const double coin = rng_.Uniform();
        double edge = profile_.drop;
        if (coin < edge) {
            ++stats_.dropped;
            dropped.Add();
            return true;  // "sent" as far as the caller can tell
        }
        if (coin < (edge += profile_.duplicate)) {
            ++stats_.duplicated;
            duplicated.Add();
            do_duplicate = true;
        } else if (coin < (edge += profile_.reorder)) {
            if (!held_) {
                // Hold this frame; it goes out after the next send.
                ++stats_.reordered;
                reordered.Add();
                held_ = Held{to, type, std::move(payload), ctx};
                return true;
            }
        } else if (coin < edge + profile_.delay) {
            ++stats_.delayed;
            delayed.Add();
            sleep_s = profile_.delay_s;
        }
        if (held_) {
            release = std::move(held_);
            held_.reset();
        }
    }
    if (sleep_s > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(sleep_s));
    }
    bool ok = inner_.Send(to, type, payload, ctx);
    if (do_duplicate) {
        inner_.Send(to, type, payload, ctx);
    }
    if (release) {
        // The held frame follows the one that just passed: swapped order.
        inner_.Send(release->to, release->type, std::move(release->payload),
                    release->ctx);
    }
    return ok;
}

std::optional<Message>
FaultyTransport::Recv(Seconds timeout_s) {
    return inner_.Recv(timeout_s);
}

FaultyTransport::Stats
FaultyTransport::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

void
FaultyTransport::Close() {
    std::optional<Held> release;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (held_) {
            release = std::move(held_);
            held_.reset();
        }
    }
    if (release) {
        inner_.Send(release->to, release->type, std::move(release->payload),
                    release->ctx);
    }
    inner_.Close();
}

}  // namespace moc::net
