#include "net/frame.h"

#include <cstring>
#include <stdexcept>

#include "util/crc32.h"

namespace moc::net {

namespace {

constexpr std::uint8_t kMagic[4] = {'M', 'O', 'C', 'F'};

void
PutU32(std::uint8_t* p, std::uint32_t v) {
    for (std::size_t i = 0; i < 4; ++i) {
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
}

void
PutU64(std::uint8_t* p, std::uint64_t v) {
    for (std::size_t i = 0; i < 8; ++i) {
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
}

std::uint32_t
GetU32(const std::uint8_t* p) {
    std::uint32_t v = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    }
    return v;
}

std::uint64_t
GetU64(const std::uint8_t* p) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return v;
}

struct PhaseEntry {
    PhaseId id;
    const char* literal;
};

constexpr PhaseEntry kPhases[] = {
    {PhaseId::kNone, ""},         {PhaseId::kSerialize, "serialize"},
    {PhaseId::kSnapshot, "snapshot"}, {PhaseId::kPersist, "persist"},
    {PhaseId::kVerify, "verify"}, {PhaseId::kSeal, "seal"},
    {PhaseId::kRecover, "recover"}, {PhaseId::kBarrier, "barrier"},
};

}  // namespace

const char*
MsgTypeName(MsgType type) {
    switch (type) {
        case MsgType::kHello: return "hello";
        case MsgType::kWelcome: return "welcome";
        case MsgType::kHeartbeat: return "heartbeat";
        case MsgType::kGoodbye: return "goodbye";
        case MsgType::kData: return "data";
        case MsgType::kCkptBegin: return "ckpt_begin";
        case MsgType::kRankDone: return "rank_done";
        case MsgType::kPeerDeath: return "peer_death";
        case MsgType::kShutdown: return "shutdown";
        case MsgType::kTimePing: return "time_ping";
        case MsgType::kTimePong: return "time_pong";
        case MsgType::kTelemetry: return "telemetry";
        case MsgType::kJoinRequest: return "join_request";
        case MsgType::kJoinAccept: return "join_accept";
    }
    return "unknown";
}

const char*
PhaseLiteral(PhaseId id) {
    for (const auto& entry : kPhases) {
        if (entry.id == id) {
            return entry.literal;
        }
    }
    return "";
}

PhaseId
PhaseIdOf(const char* phase) {
    if (phase == nullptr) {
        return PhaseId::kNone;
    }
    for (const auto& entry : kPhases) {
        if (std::strcmp(entry.literal, phase) == 0) {
            return entry.id;
        }
    }
    return PhaseId::kNone;
}

Blob
EncodeFrame(const Frame& frame) {
    if (frame.payload.size() > kMaxPayload) {
        throw std::invalid_argument("frame payload over kMaxPayload");
    }
    Blob out(kHeaderSize + frame.payload.size() + kTrailerSize);
    std::uint8_t* p = out.data();
    std::memcpy(p, kMagic, 4);
    p[4] = kWireVersion;
    p[5] = static_cast<std::uint8_t>(frame.type);
    p[6] = static_cast<std::uint8_t>(PhaseIdOf(frame.ctx.phase));
    p[7] = frame.flags;
    PutU32(p + 8, frame.src_peer);
    PutU32(p + 12, frame.epoch);
    PutU64(p + 16, frame.seq);
    PutU64(p + 24, frame.ctx.generation);
    PutU64(p + 32, frame.ctx.iteration);
    PutU32(p + 40, static_cast<std::uint32_t>(frame.ctx.rank));
    PutU32(p + 44, static_cast<std::uint32_t>(frame.payload.size()));
    if (!frame.payload.empty()) {
        std::memcpy(p + kHeaderSize, frame.payload.data(),
                    frame.payload.size());
    }
    const std::uint32_t crc =
        Crc32c(p, kHeaderSize + frame.payload.size());
    PutU32(p + kHeaderSize + frame.payload.size(), crc);
    return out;
}

void
FrameDecoder::Feed(const void* data, std::size_t len) {
    // Compact once consumed bytes dominate, so the buffer stays bounded by
    // the largest in-flight frame instead of the whole stream history.
    if (offset_ > 4096 && offset_ > buffer_.size() / 2) {
        buffer_.erase(buffer_.begin(),
                      buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
        offset_ = 0;
    }
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), bytes, bytes + len);
}

void
FrameDecoder::SkipJunk(std::size_t n) {
    offset_ += n;
    stats_.junk_bytes += n;
    ++stats_.resyncs;
}

std::optional<Frame>
FrameDecoder::Next() {
    while (true) {
        // Hunt for the magic; everything before it is junk.
        while (buffer_.size() - offset_ >= 4 &&
               std::memcmp(buffer_.data() + offset_, kMagic, 4) != 0) {
            ++offset_;
            ++stats_.junk_bytes;
        }
        const std::size_t avail = buffer_.size() - offset_;
        if (avail < kHeaderSize) {
            return std::nullopt;  // a partial header: wait for more stream
        }
        const std::uint8_t* p = buffer_.data() + offset_;
        const std::uint32_t payload_len = GetU32(p + 44);
        const std::uint8_t type = p[5];
        if (p[4] != kWireVersion || payload_len > kMaxPayload || type == 0 ||
            type > kMaxMsgType) {
            // A magic collision inside junk, or a garbled header: not a
            // frame. Skip one byte and rescan.
            SkipJunk(1);
            continue;
        }
        const std::size_t total = kHeaderSize + payload_len + kTrailerSize;
        if (avail < total) {
            return std::nullopt;  // torn so far: the rest may still arrive
        }
        const std::uint32_t want = GetU32(p + kHeaderSize + payload_len);
        const std::uint32_t got = Crc32c(p, kHeaderSize + payload_len);
        if (want != got) {
            // Bit damage (or a truncated frame whose tail was overwritten
            // by the next one). Drop it; resync on the next magic.
            ++stats_.crc_rejects;
            SkipJunk(1);
            continue;
        }
        Frame frame;
        frame.type = static_cast<MsgType>(type);
        frame.ctx.phase = PhaseLiteral(static_cast<PhaseId>(p[6]));
        frame.flags = p[7];
        frame.src_peer = GetU32(p + 8);
        frame.epoch = GetU32(p + 12);
        frame.seq = GetU64(p + 16);
        frame.ctx.generation = GetU64(p + 24);
        frame.ctx.iteration = GetU64(p + 32);
        frame.ctx.rank = static_cast<std::int32_t>(GetU32(p + 40));
        frame.payload.assign(p + kHeaderSize, p + kHeaderSize + payload_len);
        offset_ += total;
        ++stats_.frames;
        return frame;
    }
}

void
PayloadWriter::U8(std::uint8_t v) {
    bytes_.push_back(v);
}

void
PayloadWriter::U32(std::uint32_t v) {
    const std::size_t at = bytes_.size();
    bytes_.resize(at + 4);
    PutU32(bytes_.data() + at, v);
}

void
PayloadWriter::U64(std::uint64_t v) {
    const std::size_t at = bytes_.size();
    bytes_.resize(at + 8);
    PutU64(bytes_.data() + at, v);
}

void
PayloadWriter::I64(std::int64_t v) {
    U64(static_cast<std::uint64_t>(v));
}

void
PayloadWriter::F64(double v) {
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
}

void
PayloadWriter::Str(const std::string& s) {
    if (s.size() > kMaxPayload) {
        throw std::invalid_argument("payload string too large");
    }
    U32(static_cast<std::uint32_t>(s.size()));
    Raw(s.data(), s.size());
}

void
PayloadWriter::Raw(const void* data, std::size_t len) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    bytes_.insert(bytes_.end(), p, p + len);
}

void
PayloadReader::Need(std::size_t n) const {
    if (bytes_.size() - offset_ < n) {
        throw std::runtime_error("payload truncated");
    }
}

std::uint8_t
PayloadReader::U8() {
    Need(1);
    return bytes_[offset_++];
}

std::uint32_t
PayloadReader::U32() {
    Need(4);
    const std::uint32_t v = GetU32(bytes_.data() + offset_);
    offset_ += 4;
    return v;
}

std::uint64_t
PayloadReader::U64() {
    Need(8);
    const std::uint64_t v = GetU64(bytes_.data() + offset_);
    offset_ += 8;
    return v;
}

std::int64_t
PayloadReader::I64() {
    return static_cast<std::int64_t>(U64());
}

double
PayloadReader::F64() {
    const std::uint64_t bits = U64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
}

std::string
PayloadReader::Str() {
    const std::uint32_t len = U32();
    Need(len);
    std::string s(reinterpret_cast<const char*>(bytes_.data() + offset_),
                  len);
    offset_ += len;
    return s;
}

}  // namespace moc::net
