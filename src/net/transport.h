#ifndef MOC_NET_TRANSPORT_H_
#define MOC_NET_TRANSPORT_H_

/**
 * @file
 * The rank-communication abstraction (docs/TRANSPORT.md): typed, framed,
 * CRC-checked messages between peers, with request/reply under per-op
 * deadlines and bounded seeded-jitter retries (the lazy-pirate pattern,
 * mirroring ResilientStore's RetryPolicy for storage).
 *
 * Two implementations:
 *  - `InprocTransport` (inproc_transport.h) — in-process mailboxes, the
 *    fast default for unit tests and the in-process cluster engine;
 *  - `SocketTransport` (socket_transport.h) — TCP with heartbeat liveness,
 *    session-epoch reconnect, and torn-frame tolerance, for real
 *    multi-process runs (examples/cluster_procs, tools/moc_launcher).
 *
 * Peer death — however detected (EOF, heartbeat timeout, hub detach) — is
 * delivered in-band as a synthetic MsgType::kPeerDeath message, so a
 * receiver blocked in Recv wakes and learns which peer died, and is
 * journaled as a `peer_death` event (obs/journal.h).
 */

#include <cstdint>
#include <optional>
#include <string>

#include "net/frame.h"
#include "net/liveness.h"
#include "util/clock.h"

namespace moc::net {

/** One received message (the deliverable subset of a Frame). */
struct Message {
    MsgType type = MsgType::kData;
    /** Sending peer (for kPeerDeath: the peer that died). */
    PeerId from = 0;
    /** Sender's session epoch at send time. */
    std::uint32_t epoch = 0;
    /** Sender-local sequence number. */
    std::uint64_t seq = 0;
    /** Checkpoint-event identity from the frame header. */
    obs::TraceContext ctx;
    Blob payload;
};

/** Retry/backoff/deadline knobs for request/reply (mirrors RetryPolicy). */
struct CallPolicy {
    /** Send attempts per call (>= 1). */
    std::size_t max_attempts = 4;
    /** Reply wait before the first resend; doubles (multiplier) after. */
    Seconds initial_timeout_s = 0.05;
    double backoff_multiplier = 2.0;
    Seconds max_timeout_s = 1.0;
    /** Uniform +/- fraction applied to each wait (0 = none). */
    double jitter = 0.25;
    /** Wall-clock budget for the whole call, retries included (0 = none). */
    Seconds op_deadline_s = 5.0;
    /** Seed of the jitter stream. */
    std::uint64_t seed = 0x5EEDULL;
};

/**
 * Bidirectional message endpoint. All methods are thread-safe; Recv may be
 * called from one thread at a time.
 */
class Transport {
  public:
    virtual ~Transport() = default;

    /** This endpoint's peer id. */
    virtual PeerId self() const = 0;

    /** This endpoint's current session epoch. */
    virtual std::uint32_t epoch() const = 0;

    /**
     * Sends one message to @p to. Returns false when the peer is unknown,
     * declared dead, or the connection is gone (the lazy-pirate retry in
     * Call — or the caller — decides what to do about it).
     */
    virtual bool Send(PeerId to, MsgType type, Blob payload,
                      const obs::TraceContext& ctx = {}) = 0;

    /**
     * Blocks up to @p timeout_s for the next message (heartbeats are
     * consumed internally and never surface). Returns nullopt on timeout
     * or after Close().
     */
    virtual std::optional<Message> Recv(Seconds timeout_s) = 0;

    /**
     * Pushes @p message back to the front of the receive queue — used by
     * Call to preserve messages that arrive while it waits for its reply.
     */
    virtual void Requeue(Message message) = 0;

    /** Peers currently connected and not declared dead. */
    virtual std::vector<PeerId> Peers() const = 0;

    /** True while @p peer is connected and not declared dead. */
    virtual bool Alive(PeerId peer) const = 0;

    /** Stops delivery; pending and future Recv calls return nullopt. */
    virtual void Close() = 0;
};

/**
 * Request/reply with bounded retries (lazy pirate): sends @p type to
 * @p to, waits for a @p reply_type message from @p to, and resends with
 * exponential backoff and seeded jitter until the reply arrives, the
 * attempt budget runs out, the op deadline passes, or the peer is declared
 * dead. Unrelated messages that arrive while waiting are requeued in
 * order. Counts net.call.{retries,timeouts}.
 */
std::optional<Message> Call(Transport& transport, PeerId to, MsgType type,
                            Blob payload, MsgType reply_type,
                            const CallPolicy& policy = {},
                            const obs::TraceContext& ctx = {});

/**
 * Journals one `peer_death` event (scope = @p peer as a node id when it is
 * a rank, detail = cause + silence + epoch) and bumps net.peer_deaths.
 */
void JournalPeerDeath(PeerId peer, std::uint32_t epoch, const char* cause,
                      Seconds silent_s, Seconds timeout_s);

}  // namespace moc::net

#endif  // MOC_NET_TRANSPORT_H_
