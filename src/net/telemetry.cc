#include "net/telemetry.h"

#include <chrono>

#include "obs/metrics.h"
#include "obs/run_meta.h"
#include "obs/trace.h"

namespace moc::net {

Blob
EncodeTelemetry(const obs::TelemetrySample& sample) {
    PayloadWriter writer;
    writer.U32(static_cast<std::uint32_t>(sample.rank));
    writer.U64(sample.generation);
    writer.U64(sample.iteration);
    writer.Str(sample.phase);
    writer.I64(sample.phase_since_ns);
    writer.I64(sample.sent_ns);
    writer.I64(sample.clock_offset_ns);
    writer.U32(static_cast<std::uint32_t>(sample.counters.size()));
    for (const auto& [name, value] : sample.counters) {
        writer.Str(name);
        writer.F64(value);
    }
    return writer.Take();
}

obs::TelemetrySample
DecodeTelemetry(const Blob& payload) {
    PayloadReader reader(payload);
    obs::TelemetrySample sample;
    sample.rank = static_cast<std::int32_t>(reader.U32());
    sample.generation = reader.U64();
    sample.iteration = reader.U64();
    sample.phase = reader.Str();
    sample.phase_since_ns = reader.I64();
    sample.sent_ns = reader.I64();
    sample.clock_offset_ns = reader.I64();
    const std::uint32_t n = reader.U32();
    sample.counters.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string name = reader.Str();
        const double value = reader.F64();
        sample.counters.emplace_back(std::move(name), value);
    }
    return sample;
}

TelemetryPublisher::TelemetryPublisher(Transport& transport, Options options)
    : transport_(transport), options_(std::move(options)) {}

TelemetryPublisher::~TelemetryPublisher() {
    Stop();
}

void
TelemetryPublisher::Start() {
    if (running_.exchange(true)) {
        return;
    }
    thread_ = std::thread([this] { Loop(); });
}

void
TelemetryPublisher::Stop() {
    running_.store(false);
    if (thread_.joinable()) {
        thread_.join();
    }
}

bool
TelemetryPublisher::PublishNow() {
    const obs::TelemetrySample sample = BuildSample();
    obs::TraceContext ctx;
    ctx.generation = sample.generation;
    ctx.iteration = sample.iteration;
    ctx.rank = sample.rank;
    ctx.phase = "";
    const bool sent = transport_.Send(options_.coordinator,
                                      MsgType::kTelemetry,
                                      EncodeTelemetry(sample), ctx);
    if (sent) {
        published_.fetch_add(1, std::memory_order_relaxed);
    } else {
        // Shed, not blocked: the next sample carries newer cumulative
        // readings, so nothing needs resending.
        dropped_.fetch_add(1, std::memory_order_relaxed);
        static obs::Counter& dropped_ctr =
            obs::MetricsRegistry::Instance().GetCounter(
                "obs.telemetry.dropped");
        dropped_ctr.Add();
    }
    static obs::Counter& sent_ctr =
        obs::MetricsRegistry::Instance().GetCounter("obs.telemetry.sent");
    if (sent) {
        sent_ctr.Add();
    }
    return sent;
}

obs::TelemetrySample
TelemetryPublisher::BuildSample() const {
    obs::TelemetrySample sample;
    sample.rank = options_.rank;
    const obs::RankActivity activity = obs::GetRankActivity();
    sample.generation = activity.generation;
    sample.iteration = activity.iteration;
    sample.phase = activity.phase;
    sample.phase_since_ns = activity.since_ns;
    sample.sent_ns = static_cast<std::int64_t>(obs::Tracer::NowNs());
    sample.clock_offset_ns = obs::ClusterClockOffsetNs();
    const obs::MetricsSnapshot snapshot =
        obs::MetricsRegistry::Instance().Snapshot();
    for (const auto& [name, value] : snapshot.counters) {
        if (sample.counters.size() >= options_.max_counters) {
            break;
        }
        for (const std::string& prefix : options_.counter_prefixes) {
            if (name.rfind(prefix, 0) == 0) {
                sample.counters.emplace_back(name,
                                             static_cast<double>(value));
                break;
            }
        }
    }
    return sample;
}

void
TelemetryPublisher::Loop() {
    // Sleep in small slices so Stop() never waits a whole interval.
    const auto slice = std::chrono::milliseconds(5);
    auto interval =
        std::chrono::duration<double>(options_.interval_s);
    while (running_.load(std::memory_order_relaxed)) {
        PublishNow();
        auto remaining =
            std::chrono::duration_cast<std::chrono::milliseconds>(interval);
        while (remaining.count() > 0 &&
               running_.load(std::memory_order_relaxed)) {
            const auto nap = remaining < slice ? remaining : slice;
            std::this_thread::sleep_for(nap);
            remaining -= nap;
        }
    }
}

}  // namespace moc::net
