#ifndef MOC_NET_INPROC_TRANSPORT_H_
#define MOC_NET_INPROC_TRANSPORT_H_

/**
 * @file
 * The in-process Transport: peers are threads sharing an `InprocHub` of
 * bounded mailboxes. This is the fast default for unit tests and for the
 * in-process ClusterCheckpointEngine barrier — same message vocabulary,
 * same epoch semantics, same in-band kPeerDeath delivery as the socket
 * transport, with none of the kernel in the loop.
 *
 * Frames still round-trip through EncodeFrame/FrameDecoder, so the wire
 * codec (and its CRC) is exercised on every message even in-process.
 *
 * Epoch semantics mirror SocketTransport: every Attach of a peer id admits
 * a fresh session epoch via the hub's EpochGate; sends stamped with an
 * older epoch are dropped (net.stale_frames), which is how tests model a
 * zombie rank acking after its replacement rejoined. Detach (or endpoint
 * destruction) synthesizes a kPeerDeath message into every other mailbox.
 */

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>

#include "net/liveness.h"
#include "net/transport.h"

namespace moc::net {

/**
 * Shared mailbox fabric for InprocTransport endpoints. Thread-safe; must
 * outlive every endpoint attached to it.
 */
class InprocHub {
  public:
    /** Per-peer mailbox capacity; sends beyond it drop (net.queue_drops). */
    explicit InprocHub(std::size_t queue_capacity = 1024);

    /** Opens a mailbox for @p peer and admits a new session epoch. */
    std::uint32_t Attach(PeerId peer);

    /**
     * Closes @p peer's mailbox and delivers a synthetic kPeerDeath for it
     * to every other attached peer (@p orderly suppresses the death, for
     * Goodbye-style clean shutdown).
     */
    void Detach(PeerId peer, bool orderly = false);

    /**
     * Routes one encoded frame from @p from (session @p epoch) to @p to.
     * Stale epochs and unknown destinations are dropped.
     */
    bool Route(PeerId from, std::uint32_t epoch, PeerId to, const Blob& wire);

    /** Blocks up to @p timeout_s for @p peer's next message. */
    std::optional<Message> Wait(PeerId peer, Seconds timeout_s);

    /** Pushes @p message back to the front of @p peer's mailbox. */
    void Requeue(PeerId peer, Message message);

    /** Currently attached peers other than @p self. */
    std::vector<PeerId> PeersExcept(PeerId self) const;

    bool Attached(PeerId peer) const;

    const EpochGate& epochs() const { return epochs_; }

  private:
    struct Mailbox {
        std::deque<Message> queue;
        std::condition_variable cv;
        bool open = true;
    };

    std::size_t capacity_;
    mutable std::mutex mu_;
    std::map<PeerId, std::shared_ptr<Mailbox>> mailboxes_;
    EpochGate epochs_;
};

/**
 * Transport endpoint over an InprocHub. One per logical peer; create a
 * second endpoint with the same peer id to model a rejoin (the new session
 * epoch supersedes the old endpoint, whose sends then drop as stale).
 */
class InprocTransport final : public Transport {
  public:
    InprocTransport(InprocHub& hub, PeerId self);
    ~InprocTransport() override;

    PeerId self() const override { return self_; }
    std::uint32_t epoch() const override { return epoch_; }
    bool Send(PeerId to, MsgType type, Blob payload,
              const obs::TraceContext& ctx = {}) override;
    std::optional<Message> Recv(Seconds timeout_s) override;
    void Requeue(Message message) override;
    std::vector<PeerId> Peers() const override;
    bool Alive(PeerId peer) const override;
    void Close() override;

    /** Leaves the hub without a synthesized death (orderly goodbye). */
    void CloseOrderly();

  private:
    void Leave(bool orderly);

    InprocHub& hub_;
    PeerId self_;
    std::uint32_t epoch_;
    std::uint64_t next_seq_ = 0;
    bool closed_ = false;
};

}  // namespace moc::net

#endif  // MOC_NET_INPROC_TRANSPORT_H_
