#include "net/liveness.h"

#include "util/logging.h"

namespace moc::net {

HeartbeatMonitor::HeartbeatMonitor(const HeartbeatOptions& options)
    : options_(options) {
    MOC_CHECK_ARG(options.interval_s > 0.0, "heartbeat interval must be > 0");
    MOC_CHECK_ARG(options.miss_limit >= 1, "heartbeat miss limit must be >= 1");
}

void
HeartbeatMonitor::Register(PeerId peer, Seconds now) {
    std::lock_guard<std::mutex> lock(mu_);
    peers_[peer] = PeerState{now, false};
}

void
HeartbeatMonitor::Heard(PeerId peer, Seconds now) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = peers_.find(peer);
    if (it == peers_.end() || it->second.dead) {
        // A frame from an untracked or already-buried peer does not revive
        // it: revival requires a fresh session (Register via reconnect).
        return;
    }
    it->second.last_heard = now;
}

void
HeartbeatMonitor::Remove(PeerId peer) {
    std::lock_guard<std::mutex> lock(mu_);
    peers_.erase(peer);
}

std::vector<PeerId>
HeartbeatMonitor::Expired(Seconds now) {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<PeerId> expired;
    const Seconds timeout = options_.DeathTimeout();
    for (auto& [peer, state] : peers_) {
        if (!state.dead && now - state.last_heard > timeout) {
            state.dead = true;
            expired.push_back(peer);
        }
    }
    return expired;
}

bool
HeartbeatMonitor::Alive(PeerId peer) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = peers_.find(peer);
    return it != peers_.end() && !it->second.dead;
}

Seconds
HeartbeatMonitor::SilentFor(PeerId peer, Seconds now) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = peers_.find(peer);
    return it == peers_.end() ? 0.0 : now - it->second.last_heard;
}

std::uint32_t
EpochGate::Admit(PeerId peer) {
    std::lock_guard<std::mutex> lock(mu_);
    return ++epochs_[peer];
}

bool
EpochGate::Accept(PeerId peer, std::uint32_t epoch) {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = epochs_.find(peer);
    if (it != epochs_.end() && epoch == it->second) {
        return true;
    }
    ++stale_rejected_;
    return false;
}

std::uint32_t
EpochGate::Current(PeerId peer) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = epochs_.find(peer);
    return it == epochs_.end() ? 0 : it->second;
}

std::uint64_t
EpochGate::stale_rejected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stale_rejected_;
}

}  // namespace moc::net
