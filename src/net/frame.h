#ifndef MOC_NET_FRAME_H_
#define MOC_NET_FRAME_H_

/**
 * @file
 * The wire codec of the transport layer (docs/TRANSPORT.md): fixed-header
 * frames carrying a typed message, the sender's session epoch, and the
 * checkpoint TraceContext, closed by a CRC-32C trailer over the whole
 * frame.
 *
 * Layout (little-endian, kHeaderSize = 48 bytes):
 *
 *   offset size field
 *   0      4    magic "MOCF"
 *   4      1    version (kWireVersion)
 *   5      1    type (MsgType)
 *   6      1    phase (PhaseId, the TraceContext phase)
 *   7      1    flags (reserved, 0)
 *   8      4    src_peer
 *   12     4    epoch      (sender's session epoch; stale epochs rejected)
 *   16     8    seq        (sender-local, monotonically increasing)
 *   24     8    generation (TraceContext)
 *   32     8    iteration  (TraceContext)
 *   40     4    rank       (TraceContext, int32)
 *   44     4    payload_len
 *   48     ..   payload
 *   48+n   4    CRC-32C over bytes [0, 48+n)
 *
 * `FrameDecoder` is an incremental parser tolerant of everything a real
 * byte stream does to framing: partial reads (frames split at any byte),
 * torn frames (a sender died mid-write), junk between frames, and bit
 * damage (the CRC trailer rejects the frame and the decoder resynchronizes
 * on the next magic). A damaged frame is *dropped*, never delivered —
 * request/reply retries (transport.h) recover the loss.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "obs/trace.h"
#include "storage/object_store.h"

namespace moc::net {

inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 48;
inline constexpr std::size_t kTrailerSize = 4;
/** Upper bound on one frame's payload; bigger lengths are junk. */
inline constexpr std::size_t kMaxPayload = 16u << 20;

/** Typed message vocabulary of the transport (docs/TRANSPORT.md). */
enum class MsgType : std::uint8_t {
    kHello = 1,     ///< connect handshake: "peer <src_peer> joining"
    kWelcome = 2,   ///< handshake reply: header epoch = assigned session epoch
    kHeartbeat = 3, ///< liveness beacon; never queued for Recv
    kGoodbye = 4,   ///< orderly close announcement
    kData = 5,      ///< application payload
    kCkptBegin = 6, ///< coordinator -> rank: start checkpoint `iteration`
    kRankDone = 7,  ///< rank -> coordinator: shard reports for `iteration`
    kPeerDeath = 8, ///< synthetic, local only: a peer was declared dead
    kShutdown = 9,  ///< coordinator -> rank: run is over, exit cleanly
    kTimePing = 10, ///< clock-alignment probe: payload = sender's clock t0
    kTimePong = 11, ///< reply: echoes t0, carries responder's t1 and t2
                    ///< (net/clock_sync.h); never queued for Recv
    kTelemetry = 12, ///< rank -> coordinator: periodic metric deltas +
                     ///< in-flight phase summary (net/telemetry.h); dropped,
                     ///< never blocked, under backpressure
    kJoinRequest = 13, ///< rank -> coordinator: membership admission ask —
                       ///< sent after the transport handshake, carrying the
                       ///< rank's incarnation count (ckpt/membership.h); the
                       ///< frame epoch is the rank's fresh session epoch
    kJoinAccept = 14,  ///< coordinator -> rank: admission verdict + the
                       ///< membership version and current PlacementPlan the
                       ///< rank must checkpoint under
};

/** The highest MsgType value; the decoder rejects bytes beyond it. */
inline constexpr std::uint8_t kMaxMsgType =
    static_cast<std::uint8_t>(MsgType::kJoinAccept);

/** Stable wire name of @p type ("hello", "ckpt_begin", ...). */
const char* MsgTypeName(MsgType type);

/**
 * Checkpoint phases as one wire byte. TraceContext stores its phase as a
 * string literal; the codec maps the known literals onto this enum so the
 * receiving process can re-install an identical context.
 */
enum class PhaseId : std::uint8_t {
    kNone = 0,
    kSerialize,
    kSnapshot,
    kPersist,
    kVerify,
    kSeal,
    kRecover,
    kBarrier,
};

/** The string literal of @p id ("" for kNone); stable storage. */
const char* PhaseLiteral(PhaseId id);

/** Best-effort inverse of PhaseLiteral; unknown phases map to kNone. */
PhaseId PhaseIdOf(const char* phase);

/** One decoded (or to-be-encoded) frame. */
struct Frame {
    MsgType type = MsgType::kData;
    std::uint8_t flags = 0;
    std::uint32_t src_peer = 0;
    std::uint32_t epoch = 0;
    std::uint64_t seq = 0;
    /** Checkpoint-event identity carried in the header. */
    obs::TraceContext ctx;
    Blob payload;
};

/** Serializes @p frame into one contiguous wire image. */
Blob EncodeFrame(const Frame& frame);

/**
 * Incremental frame parser over an arbitrary byte stream.
 * Not thread-safe; each connection owns one.
 */
class FrameDecoder {
  public:
    /** Codec health counters, for net.* metrics. */
    struct Stats {
        std::uint64_t frames = 0;       ///< frames successfully decoded
        std::uint64_t crc_rejects = 0;  ///< frames dropped on CRC mismatch
        std::uint64_t junk_bytes = 0;   ///< bytes discarded hunting for magic
        std::uint64_t resyncs = 0;      ///< times the decoder skipped junk
    };

    /** Appends @p len raw stream bytes. */
    void Feed(const void* data, std::size_t len);

    /**
     * Extracts the next complete, CRC-valid frame, or nullopt when the
     * buffered bytes hold none (call Feed with more stream first). Damaged
     * or torn frames are skipped with resynchronization on the next magic.
     */
    std::optional<Frame> Next();

    const Stats& stats() const { return stats_; }

    /** Bytes buffered but not yet consumed (a partial frame's prefix). */
    std::size_t pending_bytes() const { return buffer_.size() - offset_; }

  private:
    /** Discards @p n bytes as junk, counting one resync. */
    void SkipJunk(std::size_t n);

    std::vector<std::uint8_t> buffer_;
    std::size_t offset_ = 0;
    Stats stats_;
};

/**
 * Bounds-checked payload builder: PODs little-endian, strings and byte
 * ranges length-prefixed (u32) — the writePod/writeString idiom.
 */
class PayloadWriter {
  public:
    void U8(std::uint8_t v);
    void U32(std::uint32_t v);
    void U64(std::uint64_t v);
    void I64(std::int64_t v);
    void F64(double v);
    void Str(const std::string& s);
    void Raw(const void* data, std::size_t len);

    Blob Take() { return std::move(bytes_); }
    const Blob& bytes() const { return bytes_; }

  private:
    Blob bytes_;
};

/**
 * Bounds-checked payload parser; every read throws std::runtime_error on
 * truncation, so a malformed payload surfaces as a typed failure instead
 * of reading past the buffer.
 */
class PayloadReader {
  public:
    explicit PayloadReader(const Blob& bytes) : bytes_(bytes) {}

    std::uint8_t U8();
    std::uint32_t U32();
    std::uint64_t U64();
    std::int64_t I64();
    double F64();
    std::string Str();

    std::size_t remaining() const { return bytes_.size() - offset_; }

  private:
    /** Asserts @p n more bytes exist. @throws std::runtime_error. */
    void Need(std::size_t n) const;

    const Blob& bytes_;
    std::size_t offset_ = 0;
};

}  // namespace moc::net

#endif  // MOC_NET_FRAME_H_
